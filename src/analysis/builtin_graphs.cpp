#include "analysis/builtin_graphs.h"

#include <utility>

#include "core/schema.h"

#include "actors/library.h"
#include "actors/stream_ops.h"
#include "core/composite_actor.h"
#include "core/cost_model.h"
#include "core/workflow.h"
#include "directors/ddf_director.h"
#include "lrb/harness.h"
#include "lrb/workflow_builder.h"
#include "stafilos/qbs_scheduler.h"
#include "stream/stream_source.h"

namespace cwf::analysis {
namespace {

Status NoopWindowFn(const Window&, std::vector<Token>*) {
  return Status::OK();
}

Token Identity(const Token& t) { return t; }

/// Owns a workflow built locally (push channels are retained by their
/// StreamSourceActor; actors by the workflow).
struct WorkflowHolder {
  std::unique_ptr<Workflow> workflow;
};

BuiltinGraph Wrap(std::string name, std::string description,
                  std::string director, std::unique_ptr<Workflow> wf,
                  std::optional<SchedulerConfig> scheduler = std::nullopt) {
  auto holder = std::make_shared<WorkflowHolder>();
  holder->workflow = std::move(wf);
  BuiltinGraph graph;
  graph.name = std::move(name);
  graph.description = std::move(description);
  graph.director = std::move(director);
  graph.scheduler = std::move(scheduler);
  graph.workflow = holder->workflow.get();
  graph.retained = std::move(holder);
  return graph;
}

SchedulerConfig Policy(const char* policy) {
  SchedulerConfig cfg;
  cfg.policy = policy;
  return cfg;
}

/// examples/quickstart.cpp: source -> tumbling average -> sink, SCWF+QBS.
BuiltinGraph Quickstart() {
  auto wf = std::make_unique<Workflow>("quickstart");
  auto* source = wf->AddActor<StreamSourceActor>(
      "readings", std::make_shared<PushChannel>());
  auto* averager = wf->AddActor<WindowFnActor>(
      "avg5", WindowSpec::Tuples(5, 5).DeleteUsedEvents(true), NoopWindowFn);
  auto* sink = wf->AddActor<CollectorSink>("sink");
  source->out()->set_schema(TokenType::Double());
  averager->out()->set_schema(TokenType::Double());
  sink->in()->set_required_schema(TokenType::Double());
  CWF_CHECK(wf->Connect(source->out(), averager->in()).ok());
  CWF_CHECK(wf->Connect(averager->out(), sink->in()).ok());
  BuiltinGraph graph =
      Wrap("quickstart", "minimal source -> window -> sink pipeline", "SCWF",
           std::move(wf), Policy("QBS"));
  graph.source_rates["readings"] = RateInterval::Exact(100.0);
  return graph;
}

/// examples/realtime_pipeline.cpp: live smoothing pipeline under PNCWF.
BuiltinGraph RealtimePipeline() {
  auto wf = std::make_unique<Workflow>("realtime");
  auto* src = wf->AddActor<StreamSourceActor>(
      "sensor", std::make_shared<PushChannel>());
  auto* smooth = wf->AddActor<WindowFnActor>(
      "smooth", WindowSpec::Tuples(3, 1), NoopWindowFn);
  auto* sink = wf->AddActor<CollectorSink>("sink");
  src->out()->set_schema(TokenType::Double());
  smooth->out()->set_schema(TokenType::Double());
  sink->in()->set_required_schema(TokenType::Double());
  CWF_CHECK(wf->Connect(src->out(), smooth->in()).ok());
  CWF_CHECK(wf->Connect(smooth->out(), sink->in()).ok());
  BuiltinGraph graph = Wrap("realtime-pipeline", "OS-thread smoothing pipeline",
                            "PNCWF", std::move(wf));
  graph.source_rates["sensor"] = RateInterval::Exact(50.0);
  return graph;
}

/// examples/supply_chain.cpp: two sources merged into a group-by matcher
/// and a per-warehouse time window, SCWF+RB.
BuiltinGraph SupplyChain() {
  auto wf = std::make_unique<Workflow>("supply_chain");
  auto* order_src = wf->AddActor<StreamSourceActor>(
      "orders", std::make_shared<PushChannel>());
  auto* scan_src = wf->AddActor<StreamSourceActor>(
      "scans", std::make_shared<PushChannel>());
  auto* merge = wf->AddActor<MapActor>("merge", Identity);
  auto* matcher = wf->AddActor<WindowFnActor>(
      "fulfillment",
      WindowSpec::Tuples(2, 2).GroupBy({"order"}).DeleteUsedEvents(true),
      NoopWindowFn);
  auto* throughput = wf->AddActor<WindowFnActor>(
      "throughput",
      WindowSpec::Time(Seconds(60), Seconds(60))
          .GroupBy({"warehouse"})
          .DeleteUsedEvents(true),
      NoopWindowFn);
  auto* fulfilled = wf->AddActor<CollectorSink>("fulfilled");
  auto* stats = wf->AddActor<CollectorSink>("stats");
  RecordSchema order_event;
  order_event.Int("order").Str("warehouse").Double("value").Str("kind");
  RecordSchema scan_event;
  scan_event.Int("order").Str("warehouse").Str("kind");
  order_src->out()->set_schema(TokenType::Record(order_event));
  scan_src->out()->set_schema(TokenType::Record(scan_event));
  // The merged stream carries both kinds: "value" only rides on orders.
  RecordSchema merged;
  merged.Int("order").Str("warehouse").Field("value", ScalarType::Double(),
                                             /*required=*/false);
  merged.Str("kind");
  merge->out()->set_schema(TokenType::Record(merged));
  RecordSchema fulfillment;
  fulfillment.Int("order").Str("status");
  matcher->out()->set_schema(TokenType::Record(fulfillment));
  RecordSchema warehouse_stats;
  warehouse_stats.Str("warehouse").Int("events_per_min");
  throughput->out()->set_schema(TokenType::Record(warehouse_stats));
  fulfilled->in()->set_required_schema(TokenType::Record(fulfillment));
  stats->in()->set_required_schema(TokenType::Record(warehouse_stats));
  CWF_CHECK(wf->Connect(order_src->out(), merge->in()).ok());
  CWF_CHECK(wf->Connect(scan_src->out(), merge->in()).ok());
  CWF_CHECK(wf->Connect(merge->out(), matcher->in()).ok());
  CWF_CHECK(wf->Connect(merge->out(), throughput->in()).ok());
  CWF_CHECK(wf->Connect(matcher->out(), fulfilled->in()).ok());
  CWF_CHECK(wf->Connect(throughput->out(), stats->in()).ok());
  BuiltinGraph graph =
      Wrap("supply-chain", "order/scan join with per-warehouse stats", "SCWF",
           std::move(wf), Policy("RB"));
  graph.source_rates["orders"] = RateInterval::Exact(20.0);
  graph.source_rates["scans"] = RateInterval::Exact(20.0);
  return graph;
}

/// examples/astro_monitor.cpp: DDF detection composite feeding a wave-
/// synchronized annotator, SCWF+EDF.
BuiltinGraph AstroMonitor() {
  auto wf = std::make_unique<Workflow>("astro");
  auto* src = wf->AddActor<StreamSourceActor>(
      "telescope", std::make_shared<PushChannel>());
  auto* detection = wf->AddActor<CompositeActor>(
      "detection", std::make_unique<DDFDirector>());
  auto* spike = detection->inner()->AddActor<WindowFnActor>(
      "spike_detector", WindowSpec::Tuples(4, 1).GroupBy({"object"}),
      NoopWindowFn);
  RecordSchema reading;
  reading.Int("object").Double("brightness").Int("t");
  RecordSchema candidate;
  candidate.Int("object").Int("t").Double("ratio");
  src->out()->set_schema(TokenType::Record(reading));
  spike->in()->set_required_schema(TokenType::Record(reading));
  spike->out()->set_schema(TokenType::Record(candidate));
  // Exposed after the inner declarations so the boundary inherits them.
  detection->ExposeInput("in", spike->in());
  detection->ExposeOutput("out", spike->out());
  auto* bands = wf->AddActor<FlatMapActor>(
      "derive_bands",
      [](const Token& t) { return std::vector<Token>{t}; });
  auto* annotate = wf->AddActor<WindowFnActor>(
      "annotate", WindowSpec::Waves(1, 1), NoopWindowFn);
  auto* alerts = wf->AddActor<CollectorSink>("alerts");
  RecordSchema banded = candidate;
  banded.Str("band");
  bands->in()->set_required_schema(TokenType::Record(candidate));
  bands->out()->set_schema(TokenType::Record(banded));
  annotate->in()->set_required_schema(TokenType::Record(banded));
  RecordSchema annotated;
  annotated.Int("object").Int("bands");
  annotate->out()->set_schema(TokenType::Record(annotated));
  alerts->in()->set_required_schema(TokenType::Record(annotated));
  CWF_CHECK(wf->Connect(src->out(), detection->GetInputPort("in")).ok());
  CWF_CHECK(wf->Connect(detection->GetOutputPort("out"), bands->in()).ok());
  CWF_CHECK(wf->Connect(bands->out(), annotate->in()).ok());
  CWF_CHECK(wf->Connect(annotate->out(), alerts->in()).ok());
  BuiltinGraph graph =
      Wrap("astro-monitor",
           "two-level sky monitoring with wave synchronization", "SCWF",
           std::move(wf), Policy("EDF"));
  graph.source_rates["telescope"] = RateInterval::Exact(25.0);
  return graph;
}

/// examples/multi_workflow.cpp: the two time-shared applications.
BuiltinGraph MultiApp(const char* graph_name, const char* wf_name,
                      const char* policy) {
  auto wf = std::make_unique<Workflow>(wf_name);
  auto* src = wf->AddActor<StreamSourceActor>(
      "src", std::make_shared<PushChannel>());
  auto* work = wf->AddActor<MapActor>("work", Identity);
  auto* sink = wf->AddActor<CollectorSink>("sink");
  src->out()->set_schema(TokenType::Int());
  work->out()->set_schema(TokenType::Int());
  sink->in()->set_required_schema(TokenType::Int());
  CWF_CHECK(wf->Connect(src->out(), work->in()).ok());
  CWF_CHECK(wf->Connect(work->out(), sink->in()).ok());
  BuiltinGraph graph = Wrap(graph_name, "multi-workflow tenant application",
                            "SCWF", std::move(wf), Policy(policy));
  graph.source_rates["src"] = RateInterval::Exact(200.0);
  return graph;
}

/// examples/distributed_links.cpp: edge node -> WAN delay -> core node.
BuiltinGraph DistributedLinks() {
  auto wf = std::make_unique<Workflow>("edge_to_core");
  auto* sensor = wf->AddActor<StreamSourceActor>(
      "edge.sensor", std::make_shared<PushChannel>());
  auto* prefilter = wf->AddActor<FilterActor>(
      "edge.prefilter", [](const Token&) { return true; });
  auto* wan = wf->AddActor<DelayActor>("wan", Millis(50));
  auto* agg = wf->AddActor<WindowFnActor>(
      "core.agg", WindowSpec::Tuples(5, 5).DeleteUsedEvents(true),
      NoopWindowFn);
  auto* alerts = wf->AddActor<CollectorSink>("core.alerts");
  RecordSchema measurement;
  measurement.Double("v");
  sensor->out()->set_schema(TokenType::Record(measurement));
  prefilter->in()->set_required_schema(TokenType::Record(measurement));
  agg->in()->set_required_schema(TokenType::Record(measurement));
  agg->out()->set_schema(TokenType::Double());
  alerts->in()->set_required_schema(TokenType::Double());
  CWF_CHECK(wf->Connect(sensor->out(), prefilter->in()).ok());
  CWF_CHECK(wf->Connect(prefilter->out(), wan->in()).ok());
  CWF_CHECK(wf->Connect(wan->out(), agg->in()).ok());
  CWF_CHECK(wf->Connect(agg->out(), alerts->in()).ok());
  BuiltinGraph graph = Wrap("distributed-links", "edge -> WAN -> core placement",
                            "SCWF", std::move(wf), Policy("QBS"));
  graph.source_rates["edge.sensor"] = RateInterval::Exact(40.0);
  return graph;
}

/// Owns a full LRB application (workflow + database + metric series).
struct LrbHolder {
  lrb::LRBApplication app;
};

BuiltinGraph Lrb(bool hierarchical) {
  auto holder = std::make_shared<LrbHolder>();
  auto app = lrb::BuildLRBApplication(std::make_shared<PushChannel>(),
                                      hierarchical);
  CWF_CHECK_MSG(app.ok(), "LRB builder failed: " << app.status().ToString());
  holder->app = std::move(*app);

  SchedulerConfig cfg = Policy("QBS");
  if (hierarchical) {
    // The deployed priority table (paper Table 3), read back through the
    // scheduler so the analyzer validates what actually runs.
    QBSScheduler scheduler;
    lrb::ApplyLRBPriorities(&scheduler);
    cfg.actor_priorities = scheduler.designer_priorities();
  }

  BuiltinGraph graph;
  graph.name = hierarchical ? "lrb" : "lrb-flat";
  graph.description = hierarchical
                          ? "Linear Road benchmark (DDF detection composite)"
                          : "Linear Road benchmark (flattened)";
  graph.director = "SCWF";
  graph.scheduler = std::move(cfg);
  // The calibrated LRB cost model plus a feed rate well inside the
  // schedulers' saturation point (~160 reports/s in the paper's Figure 8)
  // keep the catalog boundedness-clean while exercising the full
  // quantitative pipeline.
  graph.source_rates["Source"] = RateInterval::Exact(25.0);
  graph.cost_model =
      std::make_shared<const CostModel>(lrb::DefaultLRBCostModel());
  graph.workflow = holder->app.workflow.get();
  graph.retained = std::move(holder);
  return graph;
}

}  // namespace

std::vector<BuiltinGraph> BuildBuiltinGraphs() {
  std::vector<BuiltinGraph> graphs;
  graphs.push_back(Quickstart());
  graphs.push_back(RealtimePipeline());
  graphs.push_back(SupplyChain());
  graphs.push_back(AstroMonitor());
  graphs.push_back(MultiApp("multi-trading", "trading", "QBS"));
  graphs.push_back(MultiApp("multi-logistics", "logistics", "RR"));
  graphs.push_back(DistributedLinks());
  graphs.push_back(Lrb(/*hierarchical=*/true));
  graphs.push_back(Lrb(/*hierarchical=*/false));
  return graphs;
}

AnalysisOptions AnalysisOptionsFor(const BuiltinGraph& graph) {
  AnalysisOptions options;
  options.target_director = graph.director;
  options.scheduler = graph.scheduler;
  options.source_rates = graph.source_rates;
  options.cost_model = graph.cost_model.get();
  return options;
}

}  // namespace cwf::analysis

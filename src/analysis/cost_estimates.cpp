#include "analysis/cost_estimates.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "core/cost_model.h"
#include "core/workflow.h"

namespace cwf::analysis {

double OutputEventsPerFiring(const Workflow& workflow, const Actor* actor) {
  std::set<const OutputPort*> connected;
  for (const ChannelSpec& channel : workflow.channels()) {
    if (channel.from->actor() == actor) {
      connected.insert(channel.from);
    }
  }
  double events = 0.0;
  for (const OutputPort* port : connected) {
    events += static_cast<double>(
        std::max<int64_t>(0, actor->ProductionRate(port)));
  }
  return events;
}

double EstimatedFiringCostMicros(const Workflow& workflow, const Actor* actor,
                                 const RateModel& model,
                                 const CostModel& costs,
                                 const std::string& target_director) {
  auto rates = model.actors.find(actor);
  const double in_events =
      rates == model.actors.end() || !std::isfinite(
                                         rates->second.events_per_firing_max)
          ? 1.0
          : rates->second.events_per_firing_max;
  const double out_events = OutputEventsPerFiring(workflow, actor);

  const CostParams& params = costs.ParamsFor(actor->name());
  double micros = static_cast<double>(params.base) +
                  in_events * static_cast<double>(params.per_input_event) +
                  out_events * static_cast<double>(params.per_output_event);
  if (target_director == "SCWF") {
    micros += static_cast<double>(costs.scheduled_dispatch_overhead);
  } else if (target_director == "PNCWF") {
    micros += (in_events + out_events) *
              static_cast<double>(costs.sync_per_event_overhead);
  }
  return std::max(micros, 1e-3);  // never claim an infinite service rate
}

double ServiceRatePerSecond(const Workflow& workflow, const Actor* actor,
                            const RateModel& model, const CostModel& costs,
                            const std::string& target_director) {
  return 1e6 / EstimatedFiringCostMicros(workflow, actor, model, costs,
                                         target_director);
}

double Utilization(const Workflow& workflow, const Actor* actor,
                   const RateModel& model, const CostModel& costs,
                   const std::string& target_director) {
  auto rates = model.actors.find(actor);
  if (rates == model.actors.end()) {
    return 0.0;
  }
  if (!rates->second.firings.bounded()) {
    return std::numeric_limits<double>::infinity();
  }
  return rates->second.firings.max *
         EstimatedFiringCostMicros(workflow, actor, model, costs,
                                   target_director) /
         1e6;
}

}  // namespace cwf::analysis

#include "analysis/sdf_balance.h"

#include <algorithm>
#include <numeric>

namespace cwf::analysis {
namespace {

/// Exact rational for balance-equation solving.
struct Rational {
  int64_t num = 0;
  int64_t den = 1;

  static Rational Of(int64_t n, int64_t d) {
    CWF_CHECK(d != 0);
    if (d < 0) {
      n = -n;
      d = -d;
    }
    const int64_t g = std::gcd(n < 0 ? -n : n, d);
    return g == 0 ? Rational{0, 1} : Rational{n / g, d / g};
  }

  Rational Times(int64_t n, int64_t d) const {
    return Of(num * n, den * d);
  }

  bool Equals(const Rational& o) const {
    return num == o.num && den == o.den;
  }
};

}  // namespace

int64_t SdfChannelDemand(const ChannelSpec& channel) {
  const WindowSpec& spec = channel.to->spec();
  const int64_t windows = channel.to->actor()->ConsumptionRate(channel.to);
  // One tuple-window of step S absorbs S fresh events in steady state
  // (consumption mode absorbs `size` per window instead).
  const int64_t per_window = spec.delete_used_events ? spec.size : spec.step;
  return windows * per_window;
}

std::vector<const InputPort*> DataDependentRatePorts(
    const Workflow& workflow) {
  std::vector<const InputPort*> out;
  for (const ChannelSpec& ch : workflow.channels()) {
    if (ch.to->spec().unit != WindowUnit::kTuples) {
      if (std::find(out.begin(), out.end(), ch.to) == out.end()) {
        out.push_back(ch.to);
      }
    }
  }
  return out;
}

Result<std::map<const Actor*, int64_t>> SolveSdfRepetitions(
    const Workflow& workflow) {
  std::map<const Actor*, Rational> rates;

  // Propagate firing-rate ratios across each connected component.
  for (const auto& seed : workflow.actors()) {
    if (rates.count(seed.get())) {
      continue;
    }
    rates[seed.get()] = Rational{1, 1};
    std::vector<const Actor*> frontier{seed.get()};
    while (!frontier.empty()) {
      const Actor* a = frontier.back();
      frontier.pop_back();
      for (const ChannelSpec& ch : workflow.channels()) {
        const Actor* from = ch.from->actor();
        const Actor* to = ch.to->actor();
        if (from != a && to != a) {
          continue;
        }
        const int64_t produce = from->ProductionRate(ch.from);
        const int64_t consume = SdfChannelDemand(ch);
        if (produce <= 0 || consume <= 0) {
          return Status::InvalidArgument(
              "SDF rates must be positive on channel " +
              ch.from->FullName() + " -> " + ch.to->FullName());
        }
        // rate(from) * produce == rate(to) * consume
        const Actor* known = rates.count(from) ? from : to;
        const Actor* other = known == from ? to : from;
        Rational derived =
            known == from
                ? rates[from].Times(produce, consume)
                : rates[to].Times(consume, produce);
        auto it = rates.find(other);
        if (it == rates.end()) {
          rates[other] = derived;
          frontier.push_back(other);
        } else if (!it->second.Equals(derived)) {
          return Status::InvalidArgument(
              "inconsistent SDF rates around actor '" + other->name() + "'");
        }
      }
    }
  }

  // Scale each component to the smallest integer repetition vector.
  int64_t lcm_den = 1;
  for (const auto& [actor, r] : rates) {
    lcm_den = std::lcm(lcm_den, r.den);
  }
  int64_t gcd_num = 0;
  for (const auto& [actor, r] : rates) {
    gcd_num = std::gcd(gcd_num, r.num * (lcm_den / r.den));
  }
  if (gcd_num == 0) {
    gcd_num = 1;
  }
  std::map<const Actor*, int64_t> repetitions;
  for (const auto& [actor, r] : rates) {
    repetitions[actor] = (r.num * (lcm_den / r.den)) / gcd_num;
  }
  return repetitions;
}

Result<std::vector<Actor*>> CompileSdfSchedule(
    const Workflow& workflow,
    const std::map<const Actor*, int64_t>& repetitions) {
  std::vector<Actor*> schedule;
  // Symbolic token counts per channel.
  std::map<const ChannelSpec*, int64_t> tokens;
  std::map<const Actor*, int64_t> remaining;
  size_t total = 0;
  for (const auto& actor : workflow.actors()) {
    auto it = repetitions.find(actor.get());
    const int64_t reps = it == repetitions.end() ? 0 : it->second;
    remaining[actor.get()] = reps;
    total += static_cast<size_t>(reps);
  }
  while (schedule.size() < total) {
    bool progressed = false;
    for (const auto& actor : workflow.actors()) {
      Actor* a = actor.get();
      if (remaining[a] <= 0) {
        continue;
      }
      bool ready = true;
      for (const ChannelSpec& ch : workflow.channels()) {
        if (ch.to->actor() == a && tokens[&ch] < SdfChannelDemand(ch)) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        continue;
      }
      for (const ChannelSpec& ch : workflow.channels()) {
        if (ch.to->actor() == a) {
          tokens[&ch] -= SdfChannelDemand(ch);
        }
        if (ch.from->actor() == a) {
          tokens[&ch] += a->ProductionRate(ch.from);
        }
      }
      schedule.push_back(a);
      --remaining[a];
      progressed = true;
    }
    if (!progressed) {
      return Status::FailedPrecondition(
          "SDF schedule deadlocked while compiling (insufficient tokens)");
    }
  }
  return schedule;
}

Result<SdfSolution> SolveSdf(const Workflow& workflow) {
  const std::vector<const InputPort*> bad = DataDependentRatePorts(workflow);
  if (!bad.empty()) {
    return Status::InvalidArgument(
        "SDF requires tuple-based (constant-rate) windows; port " +
        bad.front()->FullName() + " uses " + bad.front()->spec().ToString() +
        " — use DDF for data-dependent rates");
  }
  SdfSolution solution;
  CWF_ASSIGN_OR_RETURN(solution.repetitions, SolveSdfRepetitions(workflow));
  CWF_ASSIGN_OR_RETURN(solution.schedule,
                       CompileSdfSchedule(workflow, solution.repetitions));
  return solution;
}

}  // namespace cwf::analysis

// The diagnostics engine of the static workflow analyzer.
//
// Every finding is a Diagnostic with a stable code (CWFnnnn), a severity,
// a graph location ("wf/Actor.port[ch]") and a human-readable message.
// Passes append diagnostics to a DiagnosticBag; consumers render it as text
// or JSON, or gate on the error-severity subset (Director::Initialize does).
//
// Code ranges mirror the pass structure:
//   CWF10xx  structural        (graph shape, wiring, window-spec validity)
//   CWF20xx  MoC admission     (which directors can legally run the graph)
//   CWF30xx  window/wave       (cross-port window compatibility, liveness)
//   CWF40xx  scheduler config  (QBS/RR/RB/EDF parameter sanity)
//   CWF50xx  quantitative      (rate propagation, boundedness, utilization)
//   CWF60xx  liveness          (artificial deadlock under bounded channels)
//   CWF70xx  schema/type-flow  (typed channels, record layout compatibility)

#ifndef CONFLUENCE_ANALYSIS_DIAGNOSTIC_H_
#define CONFLUENCE_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

namespace cwf {

class Actor;

namespace analysis {

/// \brief How bad a finding is. Errors gate Director::Initialize and make
/// cwf_analyze exit non-zero; warnings and notes are advisory.
enum class Severity {
  kNote,
  kWarning,
  kError,
};

/// \brief "note", "warning" or "error".
const char* SeverityName(Severity severity);

/// \brief One finding of one analysis pass.
struct Diagnostic {
  std::string code;      ///< Stable identifier, e.g. "CWF1003".
  Severity severity = Severity::kError;
  std::string location;  ///< Graph location, e.g. "lrb/Avgs.in[0]".
  std::string message;   ///< Human-readable explanation.
  /// The actor the finding attaches to (for DOT highlighting); may be null
  /// for workflow-level findings. Not owned; valid while the analyzed
  /// workflow lives.
  const Actor* actor = nullptr;
};

/// \brief An ordered collection of diagnostics with rendering helpers.
class DiagnosticBag {
 public:
  void Add(Diagnostic diagnostic);

  void Error(std::string code, std::string location, std::string message,
             const Actor* actor = nullptr);
  void Warning(std::string code, std::string location, std::string message,
               const Actor* actor = nullptr);
  void Note(std::string code, std::string location, std::string message,
            const Actor* actor = nullptr);

  const std::vector<Diagnostic>& all() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }

  size_t ErrorCount() const;
  size_t WarningCount() const;
  size_t NoteCount() const;
  bool HasErrors() const { return ErrorCount() > 0; }

  /// \brief Whether any diagnostic carries `code` (test helper).
  bool HasCode(const std::string& code) const;

  /// \brief All diagnostics carrying `code`.
  std::vector<const Diagnostic*> WithCode(const std::string& code) const;

  /// \brief One line per diagnostic:
  /// "error CWF1003 at w/A: self-loop channel ...".
  std::string ToText() const;

  /// \brief JSON array of {code, severity, location, message} objects.
  std::string ToJson() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// \brief Registry entry describing one diagnostic code.
struct DiagnosticCodeInfo {
  const char* code;
  Severity default_severity;
  const char* summary;
};

/// \brief Every code the built-in passes can emit, in code order. The
/// docs table (docs/STATIC_ANALYSIS.md) and `cwf_analyze --codes` render
/// from this registry.
const std::vector<DiagnosticCodeInfo>& DiagnosticCodes();

/// \brief JSON array of {code, severity, summary} objects over the full
/// registry — the `cwf_analyze --codes --json` payload. Codes are documented
/// as stable; a golden test snapshots this string so renumbering or severity
/// drift is an explicit, reviewed change.
std::string DiagnosticCodesJson();

}  // namespace analysis
}  // namespace cwf

#endif  // CONFLUENCE_ANALYSIS_DIAGNOSTIC_H_

// The static workflow analyzer: drives the built-in passes (structural,
// MoC admission, window, scheduler config — plus any added via AddPass)
// over a workflow and its composite inner workflows, producing one
// DiagnosticBag per run.
//
// Director::Initialize gates on VerifyForDirector (the error-severity
// subset mapped back to Status), so every deployment is analyzed unless
// the designer opts out with set_static_analysis_enabled(false).

#ifndef CONFLUENCE_ANALYSIS_ANALYZER_H_
#define CONFLUENCE_ANALYSIS_ANALYZER_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/pass.h"
#include "common/status.h"

namespace cwf::analysis {

class Analyzer {
 public:
  /// \brief Constructs with the four built-in passes registered.
  Analyzer();

  /// \brief Append a custom pass; it runs after the built-ins at every
  /// hierarchy level.
  void AddPass(std::unique_ptr<AnalysisPass> pass);

  const std::vector<std::unique_ptr<AnalysisPass>>& passes() const {
    return passes_;
  }

  /// \brief Run every pass over `workflow`, recursing into composite inner
  /// workflows (with the inner director's kind as target) unless
  /// options.recurse_composites is false.
  DiagnosticBag Analyze(const Workflow& workflow,
                        const AnalysisOptions& options = {}) const;

 private:
  void AnalyzeLevel(const Workflow& workflow, const AnalysisOptions& options,
                    const std::vector<std::string>& outer_names,
                    DiagnosticBag* diagnostics) const;

  std::vector<std::unique_ptr<AnalysisPass>> passes_;
};

/// \brief Admissibility of one director kind for a workflow.
struct DirectorAdmission {
  std::string director;  ///< "PNCWF", "SCWF", "SDF", "DDF".
  bool admissible = false;
  std::string reason;  ///< First blocking finding when inadmissible.
};

/// \brief Which of the four director kinds can legally run `workflow`
/// (structural errors block all four; MoC errors block per kind).
std::vector<DirectorAdmission> ComputeAdmissionMatrix(
    const Workflow& workflow);

/// \brief The Director::Initialize gate: analyze for `director_kind` and
/// map the first error-severity finding to InvalidArgument. Warnings and
/// notes never block.
Status VerifyForDirector(const Workflow& workflow,
                         const std::string& director_kind);

}  // namespace cwf::analysis

#endif  // CONFLUENCE_ANALYSIS_ANALYZER_H_

// Liveness analysis: does a CapacityPlan deadlock under blocking
// backpressure?
//
// Bounded channels with blocking puts (the PNCWF deployment of a
// CapacityPlan) import the classic artificial-deadlock hazard of Kahn/PN
// execution with finite buffers: a producer blocked against a full channel
// whose consumer can never form a window is stuck forever, and no CWF20xx
// admission diagnostic sees it (those catch token-starvation cycles, not
// capacity-induced ones). This pass classifies a (workflow, plan) pair as
//
//   provably live         — a certificate exists: either the deployment
//                           never blocks (overflow policy stays advisory),
//                           a Geilen–Basten style bounded-execution
//                           simulation of the SDF schedule reached a
//                           periodic state, or every bounded channel is
//                           structurally safe (first-window demand met,
//                           certifiable drain, not on an undirected cycle);
//   provably deadlocking  — with the witness cycle, from either the
//                           first-window demand check (CWF6002: capacity
//                           below what window formation needs) or a stuck
//                           simulation state (CWF6001);
//   unknown               — conservative fallback (CWF6003).
//
// SynthesizeLiveCapacities computes the minimal capacity bumps that remove
// every provable deadlock and records them on the plan; PlanCapacity runs
// it by default (PlanningOptions::ensure_liveness), so emitted plans are
// live by construction. The runtime counterpart — the channel wait-for
// graph watchdog in the PNCWF director — shares the witness machinery
// through core/wait_graph.h, so static and runtime reports render alike.

#ifndef CONFLUENCE_ANALYSIS_LIVENESS_PASS_H_
#define CONFLUENCE_ANALYSIS_LIVENESS_PASS_H_

#include <string>
#include <vector>

#include "analysis/capacity_planner.h"
#include "analysis/pass.h"
#include "core/wait_graph.h"

namespace cwf {

class Workflow;

namespace analysis {

enum class LivenessVerdict {
  kProvablyLive,
  kProvablyDeadlocking,
  kUnknown,
};

/// \brief "provably-live", "provably-deadlocking" or "unknown".
const char* LivenessVerdictName(LivenessVerdict verdict);

/// \brief Classification of one (workflow, plan) pair.
struct LivenessReport {
  std::string workflow;
  std::string director;

  /// Whether the target deployment actually enforces the plan's bounds
  /// with blocking puts (PNCWF). Other directors keep bounds advisory, so
  /// artificial deadlock is impossible there by construction.
  bool blocking_deployment = false;

  /// Verdict under the target deployment.
  LivenessVerdict verdict = LivenessVerdict::kUnknown;
  /// Certificate kind: "non-blocking deployment", "sdf-simulation",
  /// "structural", "channel-demand", "no bounded channels", ...
  std::string method;

  /// What-if verdict assuming blocking backpressure regardless of the
  /// deployment (equals `verdict` when blocking_deployment).
  LivenessVerdict blocking_verdict = LivenessVerdict::kUnknown;
  std::string blocking_method;

  /// Witness when a verdict is provably-deadlocking: the blocked cycle and
  /// the full set of actors unable to progress.
  DeadlockReport witness;

  /// Per-channel explanations: demand violations, unknown-liveness causes.
  std::vector<std::string> notes;

  std::string ToText() const;
  std::string ToJson() const;
};

/// \brief Classify `plan` against `workflow` under the deployment in
/// `options` (options.target_director decides blocking_deployment; the
/// plan's own channel bounds are what is analyzed). Needs no source rates
/// or cost model.
LivenessReport AnalyzeLiveness(const Workflow& workflow,
                               const AnalysisOptions& options,
                               const CapacityPlan& plan);

/// \brief Raise capacities in `plan` minimally until the blocking
/// interpretation no longer proves a deadlock, recording the bumps and the
/// final verdict on the plan. Returns the final report.
LivenessReport SynthesizeLiveCapacities(const Workflow& workflow,
                                        const AnalysisOptions& options,
                                        CapacityPlan* plan);

/// \brief Fold a report into diagnostics: CWF6001/CWF6002 errors for a
/// deadlocking blocking deployment, CWF6003 note when liveness is unknown
/// under blocking backpressure. Non-blocking deployments are silent (their
/// verdict is provably live by construction).
void ReportLiveness(const LivenessReport& report,
                    const AnalysisOptions& options,
                    DiagnosticBag* diagnostics);

/// \brief Analyzer pass: validates the workflow's default synthesized plan
/// and reports CWF6004 when synthesis had to adjust it.
class LivenessPass : public AnalysisPass {
 public:
  const char* name() const override { return "liveness"; }
  void Run(const Workflow& workflow, const AnalysisOptions& options,
           DiagnosticBag* diagnostics) const override;
};

}  // namespace analysis
}  // namespace cwf

#endif  // CONFLUENCE_ANALYSIS_LIVENESS_PASS_H_

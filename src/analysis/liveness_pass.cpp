#include "analysis/liveness_pass.h"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/diagnostic.h"
#include "analysis/sdf_balance.h"
#include "core/composite_actor.h"
#include "core/workflow.h"
#include "window/window_spec.h"

namespace cwf::analysis {

namespace {

// ---------------------------------------------------------------------------
// Channel model
// ---------------------------------------------------------------------------

/// Everything the analysis needs to know about one workflow channel under
/// one capacity plan.
struct ChannelModel {
  const ChannelSpec* spec = nullptr;
  const Actor* producer = nullptr;
  const Actor* consumer = nullptr;
  std::string name;     ///< "A.out -> B.in[0]"
  size_t capacity = 0;  ///< 0 = unbounded under the plan
  /// Events the consumer's window operator must absorb on an initially
  /// empty channel before the first window can possibly form.
  size_t first_window_demand = 1;
  /// Whether window formation is guaranteed once the demand is met: trivial
  /// and non-group-by tuple windows form deterministically; time windows
  /// with a non-negative formation timeout close by timer. Group-by,
  /// wave, and timeout-free time windows are data-dependent.
  bool certifiable_drain = false;
};

std::string ChannelDisplayName(const ChannelSpec& spec) {
  std::ostringstream oss;
  oss << spec.from->FullName() << " -> " << spec.to->FullName() << "["
      << spec.to_channel << "]";
  return oss.str();
}

void ClassifyWindow(const WindowSpec& spec, ChannelModel* model) {
  if (spec.IsTrivial()) {
    model->first_window_demand = 1;
    model->certifiable_drain = true;
    return;
  }
  switch (spec.unit) {
    case WindowUnit::kTuples:
      model->first_window_demand = static_cast<size_t>(spec.size);
      model->certifiable_drain = spec.group_by.empty();
      break;
    case WindowUnit::kTime:
      model->first_window_demand = 1;
      model->certifiable_drain =
          spec.group_by.empty() && spec.formation_timeout >= 0;
      break;
    case WindowUnit::kWaves:
      model->first_window_demand = 1;
      model->certifiable_drain = false;
      break;
  }
}

std::vector<ChannelModel> BuildChannelModels(const Workflow& workflow,
                                             const CapacityPlan& plan) {
  std::vector<ChannelModel> models;
  models.reserve(workflow.channels().size());
  for (const ChannelSpec& spec : workflow.channels()) {
    ChannelModel model;
    model.spec = &spec;
    model.producer = spec.from->actor();
    model.consumer = spec.to->actor();
    model.name = ChannelDisplayName(spec);
    model.capacity = plan.CapacityFor(spec.to->FullName(), spec.to_channel);
    ClassifyWindow(spec.to->spec(), &model);
    models.push_back(std::move(model));
  }
  return models;
}

// ---------------------------------------------------------------------------
// Blocking-interpretation analysis
// ---------------------------------------------------------------------------

struct BlockingAnalysis {
  LivenessVerdict verdict = LivenessVerdict::kUnknown;
  std::string method;
  DeadlockReport witness;
  std::vector<std::string> notes;
  /// Channels whose capacity is below the first-window demand
  /// (channel-model index, required capacity) — synthesis targets.
  std::vector<std::pair<size_t, size_t>> demand_violations;
  /// Channel-model indices full in a stuck simulation state — synthesis
  /// bumps these when no demand violation explains the deadlock.
  std::vector<size_t> stuck_full_channels;
};

/// Phase A: a bounded channel whose capacity cannot even hold the
/// consumer's first window never forms one, so under sustained inflow the
/// producer's Put blocks forever (CWF6002). The witness is the 2-cycle
/// producer -put-> consumer -get-> producer on the same channel.
bool CheckFirstWindowDemand(const std::vector<ChannelModel>& channels,
                            BlockingAnalysis* out) {
  for (size_t i = 0; i < channels.size(); ++i) {
    const ChannelModel& ch = channels[i];
    if (ch.capacity > 0 && ch.capacity < ch.first_window_demand) {
      out->demand_violations.emplace_back(i, ch.first_window_demand);
      std::ostringstream oss;
      oss << "channel '" << ch.name << "' capacity " << ch.capacity
          << " is below the consumer's first-window demand of "
          << ch.first_window_demand
          << " events: no window can ever form, so under sustained inflow "
             "the producer blocks forever";
      out->notes.push_back(oss.str());
    }
  }
  if (out->demand_violations.empty()) {
    return false;
  }
  out->verdict = LivenessVerdict::kProvablyDeadlocking;
  out->method = "channel-demand";
  const ChannelModel& ch = channels[out->demand_violations.front().first];
  DeadlockEdge put;
  put.waiter = ch.producer;
  put.waiter_name = ch.producer->name();
  put.waits_on = ch.consumer;
  put.waits_on_name = ch.consumer->name();
  put.put_blocked = true;
  put.channel = ch.name;
  put.capacity = ch.capacity;
  DeadlockEdge get;
  get.waiter = ch.consumer;
  get.waiter_name = ch.consumer->name();
  get.waits_on = ch.producer;
  get.waits_on_name = ch.producer->name();
  get.put_blocked = false;
  get.channel = ch.name;
  get.capacity = ch.capacity;
  out->witness.cycle = {put, get};
  out->witness.dead = {ch.producer, ch.consumer};
  out->witness.dead_names = {ch.producer->name(), ch.consumer->name()};
  return true;
}

// ---- Bounded-execution simulation (Geilen–Basten style) ----

/// Mirror of the tuple window operator's per-channel counters
/// (window/window_operator.cpp, PutTuple): `queue` buffered-but-unwindowed
/// events, `ready` produced windows awaiting the consumer, `skip` upcoming
/// events that fall in a step>size gap. QueueDepth == queue + ready.
struct SimChannel {
  bool trivial = false;
  int64_t size = 1;
  int64_t step = 1;
  bool delete_used = false;
  size_t capacity = 0;  ///< 0 = unbounded
  int64_t consume_per_firing = 1;  ///< windows the consumer pops per firing

  int64_t queue = 0;
  int64_t ready = 0;
  int64_t skip = 0;

  int64_t depth() const { return queue + ready; }
  bool AtCapacity() const {
    return capacity > 0 && depth() >= static_cast<int64_t>(capacity);
  }

  void Deposit() {
    if (trivial) {
      ++ready;
      return;
    }
    if (skip > 0) {
      --skip;  // gap event: expires without entering any window
      return;
    }
    ++queue;
    while (queue >= size) {
      ++ready;
      if (delete_used) {
        queue -= size;
      } else {
        const int64_t drop = std::min(step, queue);
        queue -= drop;
        skip = step - drop;
      }
    }
  }
};

struct SimState {
  std::vector<SimChannel> channels;  ///< parallel to the channel models
  std::vector<int64_t> firings;      ///< per actor (workflow order)
  /// In-progress firing: channel indices still awaiting their deposit, in
  /// runtime broadcast order. Non-empty = the actor is mid-Put.
  std::vector<std::vector<size_t>> pending;
};

/// Whether the graph is exact enough to simulate: integer balance
/// equations solve, no composites, and every connected input port is a
/// single-channel tuple-unit (or trivial) non-group-by port, so the
/// simulator's window mirror is faithful.
bool SimulationEligible(const Workflow& workflow,
                        const std::vector<ChannelModel>& channels,
                        std::map<const Actor*, int64_t>* repetitions,
                        std::string* why_not) {
  for (const auto& actor : workflow.actors()) {
    if (dynamic_cast<const CompositeActor*>(actor.get()) != nullptr) {
      *why_not = "composite actor '" + actor->name() +
                 "' has unmodeled inner buffering";
      return false;
    }
  }
  std::map<const InputPort*, int> port_channels;
  for (const ChannelModel& ch : channels) {
    ++port_channels[ch.spec->to];
  }
  for (const auto& [port, count] : port_channels) {
    if (count > 1) {
      *why_not = "fan-in port " + port->FullName() +
                 " has schedule-dependent consumption";
      return false;
    }
    const WindowSpec& spec = port->spec();
    if (!spec.IsTrivial() &&
        (spec.unit != WindowUnit::kTuples || !spec.group_by.empty())) {
      *why_not = "port " + port->FullName() +
                 " has a data-dependent window (" + spec.ToString() + ")";
      return false;
    }
  }
  auto solved = SolveSdfRepetitions(workflow);
  if (!solved.ok()) {
    *why_not = "balance equations: " + solved.status().message();
    return false;
  }
  *repetitions = std::move(solved).value();
  return true;
}

/// Simulate fair greedy bounded execution. Returns kProvablyLive when a
/// complete channel state recurs with every actor having advanced an exact
/// multiple of its repetition count (the execution is then periodic and
/// runs forever), kProvablyDeadlocking when no actor can fire and no
/// blocked deposit can proceed, kUnknown when the step budget runs out
/// (e.g. unbounded channels absorbing a dead subgraph's backlog forever).
LivenessVerdict SimulateBoundedExecution(
    const Workflow& workflow, const std::vector<ChannelModel>& channels,
    const std::map<const Actor*, int64_t>& repetitions,
    BlockingAnalysis* out) {
  const auto& actors = workflow.actors();
  std::map<const Actor*, size_t> actor_index;
  for (size_t i = 0; i < actors.size(); ++i) {
    actor_index[actors[i].get()] = i;
  }

  SimState st;
  st.firings.assign(actors.size(), 0);
  st.pending.assign(actors.size(), {});
  st.channels.reserve(channels.size());
  for (const ChannelModel& ch : channels) {
    SimChannel sim;
    const WindowSpec& spec = ch.spec->to->spec();
    sim.trivial = spec.IsTrivial();
    sim.size = spec.size;
    sim.step = spec.step;
    sim.delete_used = spec.delete_used_events;
    sim.capacity = ch.capacity;
    sim.consume_per_firing =
        ch.consumer->ConsumptionRate(ch.spec->to);
    st.channels.push_back(sim);
  }

  // Per-actor channel wiring, in runtime order: inputs per connected port,
  // outputs as the broadcast sequence one firing deposits (port declaration
  // order, one deposit per event per channel of the port).
  std::vector<std::vector<size_t>> in_channels(actors.size());
  std::vector<std::vector<size_t>> out_sequence(actors.size());
  for (size_t i = 0; i < actors.size(); ++i) {
    const Actor* actor = actors[i].get();
    for (const auto& port : actor->input_ports()) {
      for (size_t c = 0; c < channels.size(); ++c) {
        if (channels[c].spec->to == port.get()) {
          in_channels[i].push_back(c);
        }
      }
    }
    for (const auto& port : actor->output_ports()) {
      std::vector<size_t> port_channels;
      for (size_t c = 0; c < channels.size(); ++c) {
        if (channels[c].spec->from == port.get()) {
          port_channels.push_back(c);
        }
      }
      if (port_channels.empty()) {
        continue;
      }
      const int64_t rate = actor->ProductionRate(port.get());
      for (int64_t e = 0; e < rate; ++e) {
        for (size_t c : port_channels) {
          out_sequence[i].push_back(c);
        }
      }
    }
  }

  std::vector<int64_t> reps(actors.size(), 1);
  int64_t total_reps = 0;
  for (size_t i = 0; i < actors.size(); ++i) {
    const auto it = repetitions.find(actors[i].get());
    reps[i] = it == repetitions.end() ? 1 : std::max<int64_t>(1, it->second);
    total_reps += reps[i];
  }

  const auto can_fire = [&](size_t i) {
    if (!st.pending[i].empty()) {
      return false;  // still mid-broadcast from the previous firing
    }
    for (size_t c : in_channels[i]) {
      if (st.channels[c].ready < st.channels[c].consume_per_firing) {
        return false;
      }
    }
    return true;
  };

  const auto flush_pending = [&](size_t i) {
    bool progressed = false;
    auto& queue = st.pending[i];
    while (!queue.empty()) {
      SimChannel& ch = st.channels[queue.front()];
      if (ch.AtCapacity()) {
        break;
      }
      ch.Deposit();
      queue.erase(queue.begin());
      progressed = true;
    }
    return progressed;
  };

  // Stable-state recurrence: channel counters at instants where no deposit
  // is in flight, keyed to the firing counts observed there. A repeat with
  // a firing delta equal to lambda * repetitions (lambda >= 1) certifies a
  // periodic schedule.
  using ChannelKey = std::vector<int64_t>;
  std::map<ChannelKey, std::vector<std::vector<int64_t>>> seen;
  const auto channel_key = [&]() {
    ChannelKey key;
    key.reserve(st.channels.size() * 3);
    for (const SimChannel& ch : st.channels) {
      key.push_back(ch.queue);
      key.push_back(ch.ready);
      key.push_back(ch.skip);
    }
    return key;
  };
  const auto periodic = [&](const std::vector<int64_t>& then) {
    int64_t lambda = -1;
    for (size_t i = 0; i < reps.size(); ++i) {
      const int64_t delta = st.firings[i] - then[i];
      if (delta < 0 || delta % reps[i] != 0) {
        return false;
      }
      const int64_t k = delta / reps[i];
      if (lambda == -1) {
        lambda = k;
      } else if (k != lambda) {
        return false;
      }
    }
    return lambda >= 1;
  };

  const int64_t max_steps = 10000 + 64 * total_reps;
  for (int64_t step = 0; step < max_steps; ++step) {
    // Stable instant: record / check recurrence.
    bool stable = true;
    for (const auto& queue : st.pending) {
      stable = stable && queue.empty();
    }
    if (stable) {
      auto& counts = seen[channel_key()];
      for (const auto& then : counts) {
        if (periodic(then)) {
          std::ostringstream oss;
          oss << "bounded-execution simulation reached a periodic state "
                 "after "
              << std::accumulate(st.firings.begin(), st.firings.end(),
                                 int64_t{0})
              << " firings";
          out->notes.push_back(oss.str());
          return LivenessVerdict::kProvablyLive;
        }
      }
      counts.push_back(st.firings);
    }

    bool progressed = false;
    for (size_t i = 0; i < actors.size(); ++i) {
      if (!st.pending[i].empty()) {
        progressed = flush_pending(i) || progressed;
      }
    }
    // Fire the most-lagging enabled actor (fairness lets warm-up
    // transients fill while keeping the steady state balanced).
    size_t best = actors.size();
    double best_lag = 0.0;
    for (size_t i = 0; i < actors.size(); ++i) {
      if (!can_fire(i)) {
        continue;
      }
      const double lag =
          static_cast<double>(st.firings[i]) / static_cast<double>(reps[i]);
      if (best == actors.size() || lag < best_lag) {
        best = i;
        best_lag = lag;
      }
    }
    if (best != actors.size()) {
      for (size_t c : in_channels[best]) {
        st.channels[c].ready -= st.channels[c].consume_per_firing;
      }
      ++st.firings[best];
      st.pending[best] = out_sequence[best];
      flush_pending(best);
      progressed = true;
    }
    if (progressed) {
      continue;
    }

    // Globally stuck: no actor can fire, no deposit can proceed. Build the
    // wait snapshot and let the shared evaluator extract the witness.
    std::vector<WaitNode> blocked;
    for (size_t i = 0; i < actors.size(); ++i) {
      const Actor* actor = actors[i].get();
      WaitNode node;
      node.actor = actor;
      node.actor_name = actor->name();
      if (!st.pending[i].empty()) {
        const ChannelModel& ch = channels[st.pending[i].front()];
        node.put_blocked = true;
        WaitTarget target;
        target.actor = ch.consumer;
        target.channel = ch.name;
        target.capacity = ch.capacity;
        node.put_targets.push_back(std::move(target));
        out->stuck_full_channels.push_back(st.pending[i].front());
        blocked.push_back(std::move(node));
        continue;
      }
      if (in_channels[i].empty()) {
        continue;  // a source that cannot fire is mid-deposit, handled above
      }
      node.put_blocked = false;
      for (size_t c : in_channels[i]) {
        if (st.channels[c].ready >= st.channels[c].consume_per_firing) {
          continue;
        }
        WaitTarget target;
        target.actor = channels[c].producer;
        target.channel = channels[c].name;
        target.capacity = channels[c].capacity;
        node.get_ports.push_back({std::move(target)});
      }
      if (!node.get_ports.empty()) {
        blocked.push_back(std::move(node));
      }
    }
    out->witness = EvaluateWaitGraph(blocked);
    std::ostringstream oss;
    oss << "simulation stuck after "
        << std::accumulate(st.firings.begin(), st.firings.end(), int64_t{0})
        << " firings: no actor can fire and no blocked deposit can proceed";
    out->notes.push_back(oss.str());
    return LivenessVerdict::kProvablyDeadlocking;
  }
  out->notes.push_back(
      "simulation found no periodic state within its step budget");
  return LivenessVerdict::kUnknown;
}

/// Conservative classification for graphs the simulator cannot model
/// exactly: every bounded channel must meet its first-window demand (phase
/// A already ran), drain certifiably, and sit off every undirected cycle
/// (on a cycle, warm-up skew between branches can wedge a join even when
/// each channel is individually safe).
LivenessVerdict ClassifyStructurally(const std::vector<ChannelModel>& channels,
                                     BlockingAnalysis* out) {
  std::vector<size_t> bounded;
  for (size_t i = 0; i < channels.size(); ++i) {
    if (channels[i].capacity > 0) {
      bounded.push_back(i);
    }
  }
  if (bounded.empty()) {
    out->method = "no bounded channels";
    out->notes.push_back(
        "no channel has a capacity bound: puts never block");
    return LivenessVerdict::kProvablyLive;
  }

  // Undirected-cycle test per channel: drop the channel, union the rest;
  // endpoints still connected => the channel closes a cycle.
  const auto on_undirected_cycle = [&](size_t skip) {
    std::map<const Actor*, const Actor*> parent;
    const std::function<const Actor*(const Actor*)> find =
        [&](const Actor* a) -> const Actor* {
      auto it = parent.find(a);
      if (it == parent.end() || it->second == a) {
        parent[a] = a;
        return a;
      }
      return parent[a] = find(it->second);
    };
    for (size_t i = 0; i < channels.size(); ++i) {
      if (i == skip) {
        continue;
      }
      parent[find(channels[i].producer)] = find(channels[i].consumer);
    }
    return find(channels[skip].producer) == find(channels[skip].consumer);
  };

  bool all_safe = true;
  for (size_t i : bounded) {
    const ChannelModel& ch = channels[i];
    if (!ch.certifiable_drain) {
      all_safe = false;
      out->notes.push_back("channel '" + ch.name +
                           "' has data-dependent window formation (" +
                           ch.spec->to->spec().ToString() + ")");
    } else if (on_undirected_cycle(i)) {
      all_safe = false;
      out->notes.push_back(
          "bounded channel '" + ch.name +
          "' lies on an undirected cycle: branch warm-up skew is not "
          "excluded");
    }
  }
  if (all_safe) {
    out->method = "structural";
    out->notes.push_back(
        "every bounded channel meets its first-window demand, drains "
        "certifiably and lies on no undirected cycle");
    return LivenessVerdict::kProvablyLive;
  }
  out->method = "conservative";
  return LivenessVerdict::kUnknown;
}

BlockingAnalysis AnalyzeBlocking(const Workflow& workflow,
                                 const CapacityPlan& plan) {
  BlockingAnalysis out;
  const std::vector<ChannelModel> channels =
      BuildChannelModels(workflow, plan);
  if (channels.empty()) {
    out.verdict = LivenessVerdict::kProvablyLive;
    out.method = "no channels";
    return out;
  }
  if (CheckFirstWindowDemand(channels, &out)) {
    return out;
  }
  std::map<const Actor*, int64_t> repetitions;
  std::string why_not;
  if (SimulationEligible(workflow, channels, &repetitions, &why_not)) {
    out.method = "sdf-simulation";
    out.verdict =
        SimulateBoundedExecution(workflow, channels, repetitions, &out);
    if (out.verdict != LivenessVerdict::kUnknown) {
      return out;
    }
  } else {
    out.notes.push_back("not exactly simulable: " + why_not);
  }
  out.verdict = ClassifyStructurally(channels, &out);
  return out;
}

void AppendJsonString(std::ostringstream& oss, const std::string& s) {
  oss << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      oss << '\\' << c;
    } else if (c == '\n') {
      oss << "\\n";
    } else {
      oss << c;
    }
  }
  oss << '"';
}

}  // namespace

// ---------------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------------

const char* LivenessVerdictName(LivenessVerdict verdict) {
  switch (verdict) {
    case LivenessVerdict::kProvablyLive:
      return "provably-live";
    case LivenessVerdict::kProvablyDeadlocking:
      return "provably-deadlocking";
    case LivenessVerdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

LivenessReport AnalyzeLiveness(const Workflow& workflow,
                               const AnalysisOptions& options,
                               const CapacityPlan& plan) {
  LivenessReport report;
  report.workflow = workflow.name();
  report.director = options.target_director;
  // Only the PNCWF deployment enforces plan bounds with blocking puts
  // (Director::planned_overflow_policy); everywhere else the bounds stay
  // advisory and an artificial deadlock cannot occur. An unspecified
  // target is analyzed as-if blocking (conservative).
  report.blocking_deployment = options.target_director.empty() ||
                               options.target_director == "PNCWF";

  BlockingAnalysis blocking = AnalyzeBlocking(workflow, plan);
  report.blocking_verdict = blocking.verdict;
  report.blocking_method = blocking.method;
  report.witness = std::move(blocking.witness);
  report.notes = std::move(blocking.notes);
  if (report.blocking_deployment) {
    report.verdict = report.blocking_verdict;
    report.method = report.blocking_method;
  } else {
    report.verdict = LivenessVerdict::kProvablyLive;
    report.method = "non-blocking deployment";
    report.notes.insert(
        report.notes.begin(),
        "capacity bounds are advisory under " + report.director +
            " (overflow policy kUnbounded): puts never block");
  }
  return report;
}

LivenessReport SynthesizeLiveCapacities(const Workflow& workflow,
                                        const AnalysisOptions& options,
                                        CapacityPlan* plan) {
  const auto bump = [&](size_t channel_index, size_t to_capacity,
                        const std::string& reason,
                        const std::vector<ChannelModel>& channels) {
    const ChannelModel& ch = channels[channel_index];
    for (ChannelCapacity& cap : plan->channels) {
      if (cap.consumer == ch.spec->to->FullName() &&
          cap.to_channel == ch.spec->to_channel && cap.bounded &&
          cap.capacity < to_capacity) {
        CapacityBump record;
        record.channel = ch.name;
        record.consumer = cap.consumer;
        record.to_channel = cap.to_channel;
        record.from_capacity = cap.capacity;
        record.to_capacity = to_capacity;
        record.reason = reason;
        cap.capacity = to_capacity;
        plan->liveness_bumps.push_back(std::move(record));
        return true;
      }
    }
    return false;
  };

  // Iterate: re-analyze, repair the provable deadlock the analysis names,
  // until live/unknown or nothing left to raise. Demand violations jump
  // straight to the first-window demand; simulation witnesses grow each
  // full channel of the stuck state by one and retry (Parks-style minimal
  // relaxation).
  for (int round = 0; round < 64; ++round) {
    BlockingAnalysis blocking = AnalyzeBlocking(workflow, *plan);
    if (blocking.verdict != LivenessVerdict::kProvablyDeadlocking) {
      break;
    }
    const std::vector<ChannelModel> channels =
        BuildChannelModels(workflow, *plan);
    bool repaired = false;
    for (const auto& [index, demand] : blocking.demand_violations) {
      repaired = bump(index, demand,
                      "first-window demand " + std::to_string(demand),
                      channels) ||
                 repaired;
    }
    if (!repaired) {
      std::set<size_t> full(blocking.stuck_full_channels.begin(),
                            blocking.stuck_full_channels.end());
      for (size_t index : full) {
        repaired = bump(index, channels[index].capacity + 1,
                        "simulation deadlock witness", channels) ||
                   repaired;
      }
    }
    if (!repaired) {
      break;  // nothing raisable explains the deadlock; report it as-is
    }
  }

  LivenessReport report = AnalyzeLiveness(workflow, options, *plan);
  plan->liveness_verdict = LivenessVerdictName(report.verdict);
  plan->liveness_method = report.method;
  plan->liveness_witness =
      report.witness.empty() ? "" : report.witness.CycleString();
  return report;
}

void ReportLiveness(const LivenessReport& report,
                    const AnalysisOptions& options,
                    DiagnosticBag* diagnostics) {
  if (!report.blocking_deployment) {
    return;  // bounds advisory: provably live by construction
  }
  const Actor* anchor =
      report.witness.cycle.empty() ? nullptr : report.witness.cycle[0].waiter;
  const std::string location =
      ActorLocation(options, anchor != nullptr ? anchor->name() : "");
  switch (report.verdict) {
    case LivenessVerdict::kProvablyLive:
      return;
    case LivenessVerdict::kProvablyDeadlocking: {
      std::ostringstream oss;
      oss << report.witness.ToString();
      for (const std::string& note : report.notes) {
        oss << "\n  note: " << note;
      }
      diagnostics->Error(
          report.method == "channel-demand" ? "CWF6002" : "CWF6001",
          location, oss.str(), anchor);
      return;
    }
    case LivenessVerdict::kUnknown: {
      std::ostringstream oss;
      oss << "liveness under blocking backpressure not established";
      for (const std::string& note : report.notes) {
        oss << "\n  note: " << note;
      }
      diagnostics->Note("CWF6003", location, oss.str(), nullptr);
      return;
    }
  }
}

void LivenessPass::Run(const Workflow& workflow,
                       const AnalysisOptions& options,
                       DiagnosticBag* diagnostics) const {
  if (workflow.channels().empty()) {
    return;
  }
  // Validate the plan this deployment would actually install: the default
  // synthesized PlanCapacity output (ensure_liveness folds minimal bumps
  // in before we ever see it here).
  const CapacityPlan plan = PlanCapacity(workflow, options);
  const LivenessReport report = AnalyzeLiveness(workflow, options, plan);
  ReportLiveness(report, options, diagnostics);
  if (report.blocking_deployment && !plan.liveness_bumps.empty()) {
    std::ostringstream oss;
    oss << "deadlock-freedom synthesis raised " << plan.liveness_bumps.size()
        << " channel capacit"
        << (plan.liveness_bumps.size() == 1 ? "y" : "ies")
        << " to restore liveness:";
    for (const CapacityBump& b : plan.liveness_bumps) {
      oss << "\n  '" << b.channel << "': " << b.from_capacity << " -> "
          << b.to_capacity << " (" << b.reason << ")";
    }
    diagnostics->Note("CWF6004", ActorLocation(options, ""), oss.str(),
                      nullptr);
  }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string LivenessReport::ToText() const {
  std::ostringstream oss;
  oss << "liveness of '" << workflow << "'";
  if (!director.empty()) {
    oss << " under " << director;
  }
  oss << ": " << LivenessVerdictName(verdict) << " (" << method << ")\n";
  if (!blocking_deployment) {
    oss << "  under blocking backpressure (what-if): "
        << LivenessVerdictName(blocking_verdict) << " (" << blocking_method
        << ")\n";
  }
  if (!witness.empty()) {
    oss << "  witness cycle: " << witness.CycleString() << "\n";
    for (const DeadlockEdge& edge : witness.cycle) {
      oss << "    " << edge.ToString() << "\n";
    }
  }
  for (const std::string& note : notes) {
    oss << "  note: " << note << "\n";
  }
  return oss.str();
}

std::string LivenessReport::ToJson() const {
  std::ostringstream oss;
  oss << "{\"workflow\":";
  AppendJsonString(oss, workflow);
  oss << ",\"director\":";
  AppendJsonString(oss, director);
  oss << ",\"blocking_deployment\":"
      << (blocking_deployment ? "true" : "false");
  oss << ",\"verdict\":";
  AppendJsonString(oss, LivenessVerdictName(verdict));
  oss << ",\"method\":";
  AppendJsonString(oss, method);
  oss << ",\"blocking_verdict\":";
  AppendJsonString(oss, LivenessVerdictName(blocking_verdict));
  oss << ",\"blocking_method\":";
  AppendJsonString(oss, blocking_method);
  oss << ",\"witness_cycle\":[";
  for (size_t i = 0; i < witness.cycle.size(); ++i) {
    if (i > 0) {
      oss << ",";
    }
    const DeadlockEdge& edge = witness.cycle[i];
    oss << "{\"waiter\":";
    AppendJsonString(oss, edge.waiter_name);
    oss << ",\"waits_on\":";
    AppendJsonString(oss, edge.waits_on_name);
    oss << ",\"kind\":" << (edge.put_blocked ? "\"put\"" : "\"get\"");
    oss << ",\"channel\":";
    AppendJsonString(oss, edge.channel);
    oss << ",\"capacity\":" << edge.capacity << "}";
  }
  oss << "],\"notes\":[";
  for (size_t i = 0; i < notes.size(); ++i) {
    if (i > 0) {
      oss << ",";
    }
    AppendJsonString(oss, notes[i]);
  }
  oss << "]}";
  return oss.str();
}

}  // namespace cwf::analysis

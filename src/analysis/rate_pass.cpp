#include "analysis/rate_pass.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/sdf_balance.h"
#include "core/workflow.h"
#include "window/window_spec.h"

namespace cwf::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string FormatRate(double rate) {
  if (rate == kInf) {
    return "inf";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", rate);
  return buf;
}

/// Map the event-rate interval of one channel through the consuming port's
/// window operator into a window-rate interval plus residency estimates.
void ApplyWindowSemantics(const ChannelSpec& channel, ChannelRateInfo* info) {
  const WindowSpec& spec = channel.to->spec();
  const RateInterval& events = info->events;
  switch (spec.unit) {
    case WindowUnit::kTuples: {
      const double step = static_cast<double>(spec.step);
      info->windows = events.Scaled(1.0 / step);
      info->events_per_window_max = static_cast<double>(spec.size);
      // Events persist until they slide out of every future window, so at
      // most ~size (+ one in-formation step) live in the queue per group.
      info->resident_events_max =
          spec.group_by.empty()
              ? static_cast<double>(spec.size + spec.step)
              : kInf;  // one queue per key; key count is a runtime property
      break;
    }
    case WindowUnit::kTime: {
      // One window per `step` microseconds at most, regardless of arrivals.
      const double cap = 1e6 / static_cast<double>(spec.step);
      info->windows = RateInterval::Of(std::min(events.min, cap),
                                       std::min(events.max, cap));
      if (events.bounded()) {
        const double per_window =
            std::max(1.0, events.max * static_cast<double>(spec.size) / 1e6);
        info->events_per_window_max = per_window;
        info->resident_events_max =
            spec.group_by.empty()
                ? events.max *
                      static_cast<double>(spec.size + spec.step) / 1e6
                : kInf;
      } else {
        info->events_per_window_max = 1.0;
        info->resident_events_max = kInf;
      }
      break;
    }
    case WindowUnit::kWaves: {
      // Wave extents are data-dependent: a wave may be one event or a
      // thousand. Envelope: at most one window per `step` waves, and a wave
      // holds at least one event.
      info->windows =
          RateInterval::Of(0.0, events.max / static_cast<double>(spec.step));
      info->events_per_window_max = 1.0;
      info->resident_events_max = kInf;
      info->data_dependent = true;
      break;
    }
  }
}

/// Production rate of the source port feeding channel `index`, >= 1.
double ChannelProduction(const ChannelSpec& channel) {
  const int64_t rate =
      channel.from->actor()->ProductionRate(channel.from);
  return static_cast<double>(std::max<int64_t>(1, rate));
}

}  // namespace

std::string RateInterval::ToString() const {
  return "[" + FormatRate(min) + ", " + FormatRate(max) + "]/s";
}

RateModel ComputeRateModel(const Workflow& workflow,
                           const AnalysisOptions& options) {
  RateModel model;
  const std::vector<ChannelSpec>& channels = workflow.channels();
  model.channels.resize(channels.size());

  // Adjacency by channel index.
  std::map<const Actor*, std::vector<size_t>> out_channels;
  std::map<const Actor*, std::vector<size_t>> in_channels;
  for (size_t i = 0; i < channels.size(); ++i) {
    out_channels[channels[i].from->actor()].push_back(i);
    in_channels[channels[i].to->actor()].push_back(i);
  }

  // Exact relative rates from the balance equations when the deployment is
  // SDF-admissible; the declared source rates then pin the absolute scale.
  std::map<const Actor*, int64_t> repetitions;
  RateInterval iteration = RateInterval::Unknown();
  bool iteration_known = false;
  if (options.target_director == "SDF") {
    Result<std::map<const Actor*, int64_t>> solved =
        SolveSdfRepetitions(workflow);
    if (solved.ok()) {
      repetitions = std::move(solved).value();
      model.exact_sdf = true;
    }
  }

  // Record sources with no declared rate (every director path notes them).
  for (const Actor* source : workflow.Sources()) {
    auto out = out_channels.find(source);
    if (out == out_channels.end()) {
      continue;  // nothing downstream to propagate into
    }
    auto declared = options.source_rates.find(source->name());
    if (declared == options.source_rates.end() || declared->second.unknown()) {
      model.unknown_rate_sources.push_back(source);
    } else if (model.exact_sdf) {
      // declared rate is events/sec per output channel; firings/sec is
      // rate/production, iterations/sec is firings/repetitions.
      const ChannelSpec& first = channels[out->second.front()];
      const double prod = ChannelProduction(first);
      auto reps = repetitions.find(source);
      const double r =
          reps == repetitions.end()
              ? 1.0
              : static_cast<double>(std::max<int64_t>(1, reps->second));
      RateInterval it = declared->second.Scaled(1.0 / (prod * r));
      iteration = iteration_known ? iteration.Meet(it) : it;
      iteration_known = true;
    }
  }

  // Kahn topological order; actors on cycles stay unresolved and keep the
  // top-element rates they are initialized with below.
  std::map<const Actor*, size_t> indegree;
  for (const auto& actor : workflow.actors()) {
    indegree[actor.get()] = 0;
  }
  for (const ChannelSpec& channel : channels) {
    ++indegree[channel.to->actor()];
  }
  std::deque<const Actor*> ready;
  for (const auto& [actor, degree] : indegree) {
    if (degree == 0) {
      ready.push_back(actor);
    }
  }
  std::vector<const Actor*> order;
  while (!ready.empty()) {
    const Actor* actor = ready.front();
    ready.pop_front();
    order.push_back(actor);
    auto out = out_channels.find(actor);
    if (out == out_channels.end()) {
      continue;
    }
    for (size_t index : out->second) {
      if (--indegree[channels[index].to->actor()] == 0) {
        ready.push_back(channels[index].to->actor());
      }
    }
  }

  // Everything starts at the top element; the propagation below tightens.
  for (size_t i = 0; i < channels.size(); ++i) {
    model.channels[i].events = RateInterval::Unknown();
    ApplyWindowSemantics(channels[i], &model.channels[i]);
  }
  for (const auto& actor : workflow.actors()) {
    model.actors[actor.get()] = ActorRateInfo{};
  }

  for (const Actor* actor : order) {
    ActorRateInfo& info = model.actors[actor];
    auto in = in_channels.find(actor);
    if (in == in_channels.end()) {
      // Source: declared rate applies to every output channel.
      auto declared = options.source_rates.find(actor->name());
      RateInterval rate = declared == options.source_rates.end()
                              ? RateInterval::Unknown()
                              : declared->second;
      auto out = out_channels.find(actor);
      if (out != out_channels.end() && !out->second.empty()) {
        const double prod = ChannelProduction(channels[out->second.front()]);
        info.firings = rate.Scaled(1.0 / prod);
      } else {
        info.firings = rate;
      }
      info.events_per_firing_max = 0.0;
    } else {
      // Per-port window rate: fan-in channels into one port add up; the
      // actor fires no faster than its slowest port delivers, divided by
      // its per-firing window demand.
      std::map<const InputPort*, RateInterval> port_windows;
      std::map<const InputPort*, double> port_events;
      for (size_t index : in->second) {
        const ChannelSpec& channel = channels[index];
        const ChannelRateInfo& ch = model.channels[index];
        auto [it, inserted] =
            port_windows.try_emplace(channel.to, ch.windows);
        if (!inserted) {
          it->second = it->second.Plus(ch.windows);
        }
        double& events = port_events[channel.to];
        events = std::max(events, ch.events_per_window_max);
      }
      RateInterval firings = RateInterval::Unknown();
      bool first = true;
      double events_per_firing = 0.0;
      for (const auto& [port, windows] : port_windows) {
        const double demand = static_cast<double>(
            std::max<int64_t>(1, actor->ConsumptionRate(port)));
        RateInterval f = windows.Scaled(1.0 / demand);
        firings = first ? f : firings.Meet(f);
        first = false;
        events_per_firing += demand * port_events[port];
      }
      info.firings = firings;
      info.events_per_firing_max = events_per_firing;
    }

    if (model.exact_sdf && iteration_known) {
      auto reps = repetitions.find(actor);
      if (reps != repetitions.end()) {
        info.firings =
            iteration.Scaled(static_cast<double>(reps->second));
      }
    }

    auto out = out_channels.find(actor);
    if (out == out_channels.end()) {
      continue;
    }
    for (size_t index : out->second) {
      const ChannelSpec& channel = channels[index];
      ChannelRateInfo& ch = model.channels[index];
      if (in == in_channels.end()) {
        // Source channels carry the declared per-channel rate directly.
        auto declared = options.source_rates.find(actor->name());
        ch.events = declared == options.source_rates.end()
                        ? RateInterval::Unknown()
                        : declared->second;
      } else {
        ch.events = info.firings.Scaled(ChannelProduction(channel));
      }
      ApplyWindowSemantics(channel, &ch);
    }
  }

  return model;
}

void RatePass::Run(const Workflow& wf, const AnalysisOptions& original,
                   DiagnosticBag* diags) const {
  AnalysisOptions options = original;
  if (options.location_prefix.empty()) {
    options.location_prefix = wf.name();
  }

  RateModel model = ComputeRateModel(wf, options);

  for (const Actor* source : model.unknown_rate_sources) {
    diags->Note(
        "CWF5001", ActorLocation(options, source->name()),
        "source '" + source->name() +
            "' has no declared arrival rate; downstream rates degrade to "
            "[0, inf]/s and boundedness cannot be established (declare it "
            "via AnalysisOptions::source_rates)",
        source);
  }

  // One note per wave-windowed port whose upstream rate is actually known —
  // the interesting case where precision is lost to data-dependence.
  std::set<const InputPort*> noted;
  const std::vector<ChannelSpec>& channels = wf.channels();
  for (size_t i = 0; i < channels.size(); ++i) {
    const ChannelRateInfo& ch = model.channels[i];
    if (!ch.data_dependent || !ch.events.bounded()) {
      continue;
    }
    if (!noted.insert(channels[i].to).second) {
      continue;
    }
    const Actor* consumer = channels[i].to->actor();
    diags->Note(
        "CWF5005",
        ActorLocation(options, consumer->name()) + "." +
            channels[i].to->name(),
        "wave window rate is data-dependent: inflow " +
            ch.events.ToString() + " maps to the envelope " +
            ch.windows.ToString() +
            " windows; capacity planning falls back to horizon bounds",
        consumer);
  }
}

}  // namespace cwf::analysis

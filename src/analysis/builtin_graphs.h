// The built-in graph catalog: analyzable mirrors of every example program
// plus the Linear Road benchmark workflow.
//
// The cwf_analyze CLI runs the analyzer over these by default, and the
// analyzer tests assert they stay clean — so a change to an example's
// shape (or to LRB) that introduces a diagnostic fails in CI before the
// example itself misbehaves. Each entry retains whatever side objects its
// workflow needs (push channels, the LRB database) via a type-erased
// holder.

#ifndef CONFLUENCE_ANALYSIS_BUILTIN_GRAPHS_H_
#define CONFLUENCE_ANALYSIS_BUILTIN_GRAPHS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/pass.h"

namespace cwf {

class Workflow;

namespace analysis {

/// \brief One analyzable deployment: a workflow plus its intended
/// director and scheduler configuration.
struct BuiltinGraph {
  std::string name;         ///< CLI identifier, e.g. "supply-chain".
  std::string description;  ///< One line for `cwf_analyze --list`.
  std::string director;     ///< Target director kind ("SCWF", "PNCWF", ...).
  std::optional<SchedulerConfig> scheduler;
  Workflow* workflow = nullptr;  ///< Owned by `retained`.
  std::shared_ptr<void> retained;
};

/// \brief Build every built-in graph (examples + LRB hierarchical/flat).
std::vector<BuiltinGraph> BuildBuiltinGraphs();

}  // namespace analysis
}  // namespace cwf

#endif  // CONFLUENCE_ANALYSIS_BUILTIN_GRAPHS_H_

// The built-in graph catalog: analyzable mirrors of every example program
// plus the Linear Road benchmark workflow.
//
// The cwf_analyze CLI runs the analyzer over these by default, and the
// analyzer tests assert they stay clean — so a change to an example's
// shape (or to LRB) that introduces a diagnostic fails in CI before the
// example itself misbehaves. Each entry retains whatever side objects its
// workflow needs (push channels, the LRB database) via a type-erased
// holder.

#ifndef CONFLUENCE_ANALYSIS_BUILTIN_GRAPHS_H_
#define CONFLUENCE_ANALYSIS_BUILTIN_GRAPHS_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/pass.h"

namespace cwf {

class CostModel;
class Workflow;

namespace analysis {

/// \brief One analyzable deployment: a workflow plus its intended
/// director, scheduler configuration and quantitative context (declared
/// source rates, cost model).
struct BuiltinGraph {
  std::string name;         ///< CLI identifier, e.g. "supply-chain".
  std::string description;  ///< One line for `cwf_analyze --list`.
  std::string director;     ///< Target director kind ("SCWF", "PNCWF", ...).
  std::optional<SchedulerConfig> scheduler;
  /// Declared external arrival rates by source-actor name; feeds the
  /// quantitative passes and the capacity planner.
  std::map<std::string, RateInterval> source_rates;
  /// Firing-cost model of the deployment (LRB uses its calibrated model);
  /// nullptr means the default-constructed CostModel.
  std::shared_ptr<const CostModel> cost_model;
  Workflow* workflow = nullptr;  ///< Owned by `retained`.
  std::shared_ptr<void> retained;
};

/// \brief Build every built-in graph (examples + LRB hierarchical/flat).
std::vector<BuiltinGraph> BuildBuiltinGraphs();

/// \brief The AnalysisOptions matching a catalog entry's deployment
/// (director, scheduler, source rates, cost model) — what the CLI and the
/// catalog tests analyze/plan with.
AnalysisOptions AnalysisOptionsFor(const BuiltinGraph& graph);

}  // namespace analysis
}  // namespace cwf

#endif  // CONFLUENCE_ANALYSIS_BUILTIN_GRAPHS_H_

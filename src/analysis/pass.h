// The pass interface of the static workflow analyzer.
//
// A pass inspects one Workflow (the Analyzer drives recursion into
// composite inner workflows) and appends findings to a DiagnosticBag. The
// AnalysisOptions carry deployment intent that changes severities: a graph
// that merely *cannot* run under SDF is unremarkable until someone tries to
// deploy it under an SDF director.

#ifndef CONFLUENCE_ANALYSIS_PASS_H_
#define CONFLUENCE_ANALYSIS_PASS_H_

#include <map>
#include <optional>
#include <string>

#include "analysis/rate_interval.h"
#include "stafilos/edf_scheduler.h"
#include "stafilos/qbs_scheduler.h"
#include "stafilos/rb_scheduler.h"
#include "stafilos/rr_scheduler.h"

namespace cwf {

class CostModel;
class Workflow;

namespace analysis {

class DiagnosticBag;

/// \brief The scheduling deployment the workflow is being validated for
/// (the options normally handed to the policy constructor, plus the
/// designer priority map).
struct SchedulerConfig {
  /// Policy name: "QBS", "RR", "RB", "EDF" or "FIFO".
  std::string policy;
  QBSOptions qbs;
  RROptions rr;
  RBOptions rb;
  EDFOptions edf;
  /// Designer priorities by actor name (SetActorPriority calls).
  std::map<std::string, int> actor_priorities;
};

/// \brief Deployment intent the passes analyze against.
struct AnalysisOptions {
  /// Director kind the graph is meant to run under ("PNCWF", "SCWF",
  /// "SDF", "DDF"); empty means "unknown" — MoC admission findings are
  /// then omitted (query ComputeAdmissionMatrix for the full picture).
  std::string target_director;

  /// Scheduler deployment to validate (SCWF only); nullopt skips the
  /// scheduler-config pass.
  std::optional<SchedulerConfig> scheduler;

  /// Declared/estimated external arrival rates by source-actor name
  /// (tuples per second injected on each of the source's output channels).
  /// Sources absent from the map are treated as rate-unknown ([0, +inf))
  /// and noted as CWF5001 by the rate pass.
  std::map<std::string, RateInterval> source_rates;

  /// Firing-cost model for the quantitative passes (boundedness, capacity
  /// planning). nullptr means "use a default-constructed CostModel" — the
  /// passes never dereference it without a fallback.
  const CostModel* cost_model = nullptr;

  /// Whether the Analyzer descends into CompositeActor inner workflows
  /// (with the inner director's kind as target).
  bool recurse_composites = true;

  /// Location prefix for diagnostics ("outer/Composite" when recursing);
  /// the Analyzer maintains this, callers normally leave it empty.
  std::string location_prefix;
};

/// \brief One analysis over one workflow level.
class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;

  /// \brief Short pass identifier ("structural", "moc-admission", ...).
  virtual const char* name() const = 0;

  /// \brief Append findings for `workflow` to `diagnostics`.
  virtual void Run(const Workflow& workflow, const AnalysisOptions& options,
                   DiagnosticBag* diagnostics) const = 0;
};

/// \brief "prefix/Actor" (or "Actor" with an empty prefix).
std::string ActorLocation(const AnalysisOptions& options,
                          const std::string& actor_name);

}  // namespace analysis
}  // namespace cwf

#endif  // CONFLUENCE_ANALYSIS_PASS_H_

// The static capacity planner: rate intervals + CostModel -> CapacityPlan.
//
// The plan is the first analysis→runtime feedback edge in the engine: it is
// computed once (cwf_analyze --plan, or any caller of PlanCapacity), then
// consumed by the directors at Initialize — receivers are pre-sized to the
// per-channel bounds, and the PNCWF director switches bounded receivers into
// blocking-put/backpressure mode. Floe-style buffer sizing, Execution
// Templates-style validate-once/reuse.
//
// Capacity is measured in *queued units*: pending (buffered-but-unwindowed)
// events plus ready windows, i.e. exactly what Receiver::QueueDepth()
// reports and the high-water-mark counter tracks, so the planner's bound is
// directly comparable to runtime observations.
//
// For a channel with bounded inflow the bound is
//
//   burst_slack + ceil(safety_factor * (resident + windows_max * delay))
//
// where `resident` is the window operator's steady-state residency (a
// 2-minute time window at 10 ev/s holds ~1200 events with a keeping-up
// consumer) and `windows_max * delay` covers ready windows awaiting a
// consumer within the queueing-delay budget. Statically unbounded residency
// (group-by keys, wave windows) falls back to inflow * horizon_seconds;
// unknown inflow leaves the channel unbounded (capacity 0).

#ifndef CONFLUENCE_ANALYSIS_CAPACITY_PLANNER_H_
#define CONFLUENCE_ANALYSIS_CAPACITY_PLANNER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/pass.h"
#include "analysis/rate_pass.h"

namespace cwf {

class Workflow;

namespace analysis {

/// \brief Planner tuning knobs.
struct PlanningOptions {
  /// Fallback bound horizon for statically unbounded residency: a channel
  /// with known inflow but unknown retention is sized to hold this many
  /// seconds of arrivals.
  double horizon_seconds = 60.0;

  /// How long a produced window may wait for its consumer before the plan
  /// considers the queue out of spec.
  double queueing_delay_budget_seconds = 1.0;

  /// Additive slack absorbing startup transients and scheduling jitter.
  size_t burst_slack = 64;

  /// Multiplicative headroom over the steady-state estimate.
  double safety_factor = 2.0;

  /// Run the liveness pass over the finished plan and fold in the minimal
  /// capacity bumps that make it provably deadlock-free under blocking
  /// backpressure (analysis/liveness_pass.h) — every emitted plan is then
  /// live by construction. Off restores the raw quantitative bounds.
  bool ensure_liveness = true;
};

/// \brief Planned bound for one channel (parallel to Workflow::channels()).
struct ChannelCapacity {
  std::string producer;       ///< "Actor.port" of the emitting end.
  std::string consumer;       ///< "Actor.port" of the receiving end.
  size_t to_channel = 0;      ///< Channel slot on the consuming port.
  /// Queued-units bound (pending events + ready windows); 0 = unbounded.
  size_t capacity = 0;
  bool bounded = false;
  /// Steady-state inflow upper bound, events/sec (+inf when unknown).
  double inflow_events_max = 0.0;
  /// Window-operator residency estimate the bound was derived from.
  double resident_events_max = 0.0;
};

/// \brief One capacity raise applied by deadlock-freedom synthesis.
struct CapacityBump {
  std::string channel;        ///< "A.out -> B.in[0]" display name.
  std::string consumer;       ///< "Actor.port" of the receiving end.
  size_t to_channel = 0;      ///< Channel slot on the consuming port.
  size_t from_capacity = 0;
  size_t to_capacity = 0;
  std::string reason;         ///< Why this bump was needed.
};

/// \brief Steady-state load of one actor.
struct ActorLoad {
  std::string actor;
  double firings_per_second_max = 0.0;  ///< +inf when unknown.
  double firing_cost_micros = 0.0;      ///< Modeled cost incl. overheads.
  double utilization = 0.0;             ///< firings * cost; +inf unknown.
};

/// \brief The full plan over one workflow.
struct CapacityPlan {
  std::string workflow;
  std::string director;  ///< Deployment the plan was computed for.
  bool exact_rates = false;  ///< Rates pinned by SDF balance equations.
  std::vector<ChannelCapacity> channels;
  std::vector<ActorLoad> actors;
  /// Longest source→sink chain of modeled firing costs (one-event latency
  /// floor through the pipeline, ignoring queueing).
  std::vector<std::string> critical_path;
  double critical_path_latency_micros = 0.0;
  double total_utilization = 0.0;

  // ---- Liveness certification (analysis/liveness_pass.h) ----
  /// "provably-live", "provably-deadlocking" or "unknown"; empty when the
  /// plan was produced with ensure_liveness off and never analyzed.
  std::string liveness_verdict;
  /// How the verdict was established ("sdf-simulation", "structural", ...).
  std::string liveness_method;
  /// Rendered witness cycle when the verdict is provably-deadlocking.
  std::string liveness_witness;
  /// Capacity raises synthesis applied to restore liveness (empty when the
  /// raw quantitative bounds were already live).
  std::vector<CapacityBump> liveness_bumps;

  /// \brief Bound of the channel feeding `consumer_port_full_name`
  /// ("Actor.port") slot `to_channel`; 0 (unbounded) when absent.
  size_t CapacityFor(const std::string& consumer_port_full_name,
                     size_t to_channel) const;

  std::string ToText() const;
  std::string ToJson() const;
};

/// \brief Compute the plan for one workflow level under the deployment in
/// `options` (target director, source rates, cost model).
CapacityPlan PlanCapacity(const Workflow& workflow,
                          const AnalysisOptions& options,
                          const PlanningOptions& planning = {});

}  // namespace analysis
}  // namespace cwf

#endif  // CONFLUENCE_ANALYSIS_CAPACITY_PLANNER_H_

// Boundedness: can the steady-state inflow of a channel exceed the rate at
// which its consumer drains it?
//
// Under PNCWF every actor is a free-running thread over an unbounded queue,
// so a persistent rate mismatch grows a std::deque without bound — the
// overload regime the STAFiLOS Linear Road evaluation provokes. Under SCWF
// the scheduled executor is a single logical processor: the workload is
// infeasible when the utilization sum exceeds 1 even though no single queue
// is the culprit.
//
// The pass combines the rate model (rate_pass.h) with the CostModel's
// firing costs into service-rate estimates and emits:
//
//   CWF5002  PNCWF channel whose window inflow can exceed the consumer's
//            service rate (unbounded queue growth risk)
//   CWF5003  SCWF workload with total utilization > 1 (overload-infeasible)
//   CWF5004  SCWF actor whose lone utilization exceeds 1
//
// All findings are warnings: the engine still runs such graphs (that is the
// point of the STAFiLOS overload experiments), the analyzer just refuses to
// let it be a surprise.

#ifndef CONFLUENCE_ANALYSIS_BOUNDEDNESS_PASS_H_
#define CONFLUENCE_ANALYSIS_BOUNDEDNESS_PASS_H_

#include "analysis/pass.h"

namespace cwf::analysis {

class BoundednessPass : public AnalysisPass {
 public:
  const char* name() const override { return "boundedness"; }
  void Run(const Workflow& workflow, const AnalysisOptions& options,
           DiagnosticBag* diagnostics) const override;
};

}  // namespace cwf::analysis

#endif  // CONFLUENCE_ANALYSIS_BOUNDEDNESS_PASS_H_

#include "analysis/boundedness_pass.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "analysis/cost_estimates.h"
#include "analysis/diagnostic.h"
#include "analysis/rate_pass.h"
#include "core/cost_model.h"
#include "core/workflow.h"

namespace cwf::analysis {

namespace {

std::string FormatNumber(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", value);
  return buf;
}

}  // namespace

void BoundednessPass::Run(const Workflow& wf, const AnalysisOptions& original,
                          DiagnosticBag* diags) const {
  AnalysisOptions options = original;
  if (options.location_prefix.empty()) {
    options.location_prefix = wf.name();
  }
  // Boundedness is a property of the deployment: thread-per-actor queues
  // grow, scheduled executors saturate. Without a declared target there is
  // nothing to check against.
  const std::string& director = options.target_director;
  if (director != "PNCWF" && director != "SCWF") {
    return;
  }

  const RateModel model = ComputeRateModel(wf, options);
  const CostModel fallback_costs;
  const CostModel& costs =
      options.cost_model != nullptr ? *options.cost_model : fallback_costs;

  if (director == "PNCWF") {
    // Per consuming port: total window inflow (fan-in channels add) vs the
    // consumer thread's service rate. A bounded inflow that can outpace the
    // service rate grows the queue without bound.
    std::map<const InputPort*, RateInterval> port_windows;
    const std::vector<ChannelSpec>& channels = wf.channels();
    for (size_t i = 0; i < channels.size(); ++i) {
      auto [it, inserted] =
          port_windows.try_emplace(channels[i].to, model.channels[i].windows);
      if (!inserted) {
        it->second = it->second.Plus(model.channels[i].windows);
      }
    }
    for (const auto& [port, windows] : port_windows) {
      if (!windows.bounded()) {
        continue;  // unknown inflow is CWF5001's finding, not ours
      }
      const Actor* consumer = port->actor();
      const double demand = static_cast<double>(
          std::max<int64_t>(1, consumer->ConsumptionRate(port)));
      const double firing_demand = windows.max / demand;
      const double service = ServiceRatePerSecond(wf, consumer, model, costs,
                                                  options.target_director);
      if (firing_demand > service) {
        diags->Warning(
            "CWF5002",
            ActorLocation(options, consumer->name()) + "." + port->name(),
            "steady-state inflow can exceed service rate under PNCWF: up to " +
                FormatNumber(firing_demand) + " firings/s demanded vs ~" +
                FormatNumber(service) +
                "/s sustainable; the unbounded queue grows without limit "
                "(raise capacity via the planner or rebalance rates/costs)",
            consumer);
      }
    }
    return;
  }

  // SCWF: the scheduled executor is one logical processor.
  double total = 0.0;
  bool total_bounded = true;
  for (const auto& actor : wf.actors()) {
    const double u = Utilization(wf, actor.get(), model, costs,
                                 options.target_director);
    if (!std::isfinite(u)) {
      total_bounded = false;  // unknown rate: already noted as CWF5001
      continue;
    }
    total += u;
    if (u > 1.0) {
      diags->Warning(
          "CWF5004", ActorLocation(options, actor->name()),
          "actor '" + actor->name() + "' alone demands " +
              FormatNumber(u * 100.0) +
              "% of the scheduled executor; no scheduling policy can keep "
              "up (reduce its firing rate or cost)",
          actor.get());
    }
  }
  if (total > 1.0) {
    diags->Warning(
        "CWF5003", options.location_prefix,
        std::string("workload is overload-infeasible under SCWF: total "
                    "utilization ") +
            FormatNumber(total * 100.0) +
            (total_bounded ? "%" : "% (lower bound; some rates unknown)") +
            " exceeds the single scheduled executor; queues grow regardless "
            "of policy");
  }
}

}  // namespace cwf::analysis

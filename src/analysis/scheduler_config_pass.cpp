#include "analysis/scheduler_config_pass.h"

#include <set>
#include <string>

#include "core/composite_actor.h"
#include "core/workflow.h"

namespace cwf::analysis {
namespace {

/// Actor names at every hierarchy level: SetActorPriority targets inner
/// composite actors too (the LRB builder prioritizes DetectStoppedCars,
/// which lives inside the segstats composite).
void CollectActorNames(const Workflow& wf, std::set<std::string>* names) {
  for (const auto& actor : wf.actors()) {
    names->insert(actor->name());
    if (const auto* composite =
            dynamic_cast<const CompositeActor*>(actor.get())) {
      CollectActorNames(*composite->inner(), names);
    }
  }
}

}  // namespace

void SchedulerConfigPass::Run(const Workflow& wf,
                              const AnalysisOptions& original,
                              DiagnosticBag* diags) const {
  if (!original.scheduler.has_value()) {
    return;
  }
  AnalysisOptions options = original;
  if (options.location_prefix.empty()) {
    options.location_prefix = wf.name();
  }
  const SchedulerConfig& cfg = *options.scheduler;
  const std::string loc = options.location_prefix + " [" + cfg.policy + "]";

  int source_interval = -1;
  bool has_source_interval = false;
  if (cfg.policy == "QBS") {
    if (cfg.qbs.basic_quantum <= 0) {
      diags->Error("CWF4001", loc,
                   "QBS basic quantum must be positive, got " +
                       std::to_string(cfg.qbs.basic_quantum));
    }
    if (cfg.qbs.max_banked_epochs < 1) {
      diags->Error("CWF4004", loc,
                   "QBS max banked epochs must be >= 1, got " +
                       std::to_string(cfg.qbs.max_banked_epochs));
    }
    source_interval = cfg.qbs.source_interval;
    has_source_interval = true;
  } else if (cfg.policy == "RR") {
    if (cfg.rr.slice <= 0) {
      diags->Error("CWF4005", loc,
                   "RR slice must be positive, got " +
                       std::to_string(cfg.rr.slice));
    }
    source_interval = cfg.rr.source_interval;
    has_source_interval = true;
  } else if (cfg.policy == "RB") {
    source_interval = cfg.rb.source_interval;
    has_source_interval = true;
  } else if (cfg.policy == "EDF") {
    source_interval = cfg.edf.source_interval;
    has_source_interval = true;

    // CWF4007: EDF orders actors by output-deadline urgency; with no sink
    // there is no terminal output whose deadline the policy could serve.
    bool has_sink = false;
    for (const auto& actor : wf.actors()) {
      bool has_output = false;
      for (const ChannelSpec& ch : wf.channels()) {
        if (ch.from->actor() == actor.get()) {
          has_output = true;
          break;
        }
      }
      if (!has_output) {
        has_sink = true;
        break;
      }
    }
    if (!has_sink && !wf.actors().empty()) {
      diags->Warning("CWF4007", loc,
                     "EDF scheduling a workflow with no sink actor: no "
                     "deadline-bearing output exists for the policy to "
                     "prioritize");
    }
  }

  if (has_source_interval && source_interval < 0) {
    diags->Error("CWF4006", loc,
                 "source interval must be non-negative, got " +
                     std::to_string(source_interval));
  }

  // Designer priorities: range check (QBS quantum formula goes to zero or
  // negative at p >= 40) and existence check against all hierarchy levels.
  std::set<std::string> names;
  CollectActorNames(wf, &names);
  for (const auto& [actor_name, priority] : cfg.actor_priorities) {
    if (cfg.policy == "QBS" && (priority < 0 || priority > 39)) {
      diags->Error("CWF4002",
                   ActorLocation(options, actor_name) + " [" + cfg.policy +
                       "]",
                   "designer priority " + std::to_string(priority) +
                       " for actor '" + actor_name +
                       "' is outside [0, 39]; Eq. 1 yields a non-positive "
                       "quantum");
    }
    if (names.count(actor_name) == 0) {
      diags->Warning("CWF4003",
                     ActorLocation(options, actor_name) + " [" + cfg.policy +
                         "]",
                     "designer priority names actor '" + actor_name +
                         "' which does not exist at any workflow level");
    }
  }
}

}  // namespace cwf::analysis

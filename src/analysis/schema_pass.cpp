#include "analysis/schema_pass.h"

#include <sstream>

#include "core/composite_actor.h"
#include "core/workflow.h"
#include "window/window_spec.h"

namespace cwf::analysis {

namespace {

void AppendJsonString(std::ostringstream& oss, const std::string& s) {
  oss << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        oss << "\\\"";
        break;
      case '\\':
        oss << "\\\\";
        break;
      case '\n':
        oss << "\\n";
        break;
      case '\t':
        oss << "\\t";
        break;
      default:
        oss << c;
    }
  }
  oss << '"';
}

using OutTypes = std::map<const OutputPort*, TokenType>;
using BoundaryTypes = std::map<const InputPort*, TokenType>;

/// Join of everything flowing into `port`: the composite-boundary binding
/// (when resolving an inner workflow) plus every in-level channel.
TokenType InputTypeOf(const Workflow& workflow, const InputPort* port,
                      const OutTypes& out_types,
                      const BoundaryTypes& boundary) {
  TokenType t;
  auto bound = boundary.find(port);
  if (bound != boundary.end()) {
    t = t.Join(bound->second);
  }
  for (const ChannelSpec& ch : workflow.channels()) {
    if (ch.to == port) {
      auto it = out_types.find(ch.from);
      if (it != out_types.end()) {
        t = t.Join(it->second);
      }
    }
  }
  return t;
}

std::vector<TokenType> GatherInputs(const Workflow& workflow,
                                    const Actor* actor,
                                    const OutTypes& out_types,
                                    const BoundaryTypes& boundary) {
  std::vector<TokenType> inputs;
  inputs.reserve(actor->input_ports().size());
  for (const auto& port : actor->input_ports()) {
    inputs.push_back(InputTypeOf(workflow, port.get(), out_types, boundary));
  }
  return inputs;
}

void ResolveLevel(const Workflow& workflow, const BoundaryTypes& boundary,
                  OutTypes* out_types);

void ResolveActor(const Workflow& workflow, const Actor* actor,
                  const BoundaryTypes& boundary, OutTypes* out_types,
                  bool* changed) {
  const std::vector<TokenType> inputs =
      GatherInputs(workflow, actor, *out_types, boundary);
  const auto* composite = dynamic_cast<const CompositeActor*>(actor);
  OutTypes inner_out;
  if (composite != nullptr) {
    // Bind the outer types to the exposed inner ports and resolve the inner
    // workflow with them — this is how a type declared outside a composite
    // reaches a consumer inside it, and vice versa.
    BoundaryTypes inner_boundary;
    for (size_t i = 0; i < actor->input_ports().size(); ++i) {
      InputPort* inner =
          composite->BoundInnerInput(actor->input_ports()[i].get());
      if (inner != nullptr) {
        TokenType& slot = inner_boundary[inner];
        slot = slot.Join(inputs[i]);
      }
    }
    ResolveLevel(*composite->inner(), inner_boundary, &inner_out);
  }
  for (const auto& port : actor->output_ports()) {
    TokenType t;
    if (composite != nullptr) {
      t = port->schema();  // an explicit boundary declaration wins
      if (t.is_unknown()) {
        OutputPort* inner = composite->BoundInnerOutput(port.get());
        auto it = inner_out.find(inner);
        if (inner != nullptr && it != inner_out.end()) {
          t = it->second;
        }
      }
    } else {
      t = actor->OutputTokenType(port.get(), inputs);
    }
    TokenType& slot = (*out_types)[port.get()];
    if (slot != t) {
      slot = t;
      *changed = true;
    }
  }
}

void ResolveLevel(const Workflow& workflow, const BoundaryTypes& boundary,
                  OutTypes* out_types) {
  // Forward propagation to a fixpoint. Rounds are bounded so a cycle (or a
  // non-monotone custom transfer function) cannot spin: each round
  // recomputes every output from scratch, and acyclic graphs settle within
  // one round per topological layer.
  const size_t max_rounds = workflow.actors().size() + 2;
  for (size_t round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (const auto& actor : workflow.actors()) {
      ResolveActor(workflow, actor.get(), boundary, out_types, &changed);
    }
    if (!changed) {
      break;
    }
  }
}

std::string ChannelDisplayName(const ChannelSpec& ch) {
  std::ostringstream oss;
  oss << ch.from->FullName() << " -> " << ch.to->FullName() << "["
      << ch.to_channel << "]";
  return oss.str();
}

std::string ChannelLocation(const AnalysisOptions& options,
                            const ChannelSpec& ch) {
  std::ostringstream oss;
  oss << ActorLocation(options, ch.to->actor()->name()) << "." << ch.to->name()
      << "[" << ch.to_channel << "]";
  return oss.str();
}

void AddFinding(SchemaReport* report, ChannelSchema* row, std::string code,
                Severity severity, std::string location, std::string message) {
  if (severity == Severity::kError) {
    row->mismatched = true;
  }
  report->findings.push_back(SchemaFinding{
      std::move(code), severity, std::move(location), std::move(message),
      row->to_port->actor()});
}

/// Producer/consumer compatibility of one channel, one distinct code per
/// failure shape.
void CheckChannel(const AnalysisOptions& options, const ChannelSpec& ch,
                  SchemaReport* report, ChannelSchema* row) {
  const TokenType& have = row->resolved;
  const TokenType& need = row->required;
  const std::string loc = ChannelLocation(options, ch);
  const std::string name = ChannelDisplayName(ch);

  if (have.is_unknown()) {
    if (!need.is_unknown()) {
      AddFinding(report, row, "CWF7006", Severity::kWarning, loc,
                 "producer type of channel '" + name +
                     "' is undeclared but the port requires " +
                     need.ToString() +
                     "; declare OutputPort::set_schema (or a transfer "
                     "function) upstream so the channel can be checked");
    }
    return;
  }

  if (!need.is_unknown()) {
    if (have.allows_nil() && !need.allows_nil()) {
      AddFinding(report, row, "CWF7005", Severity::kError, loc,
                 "channel '" + name +
                     "' may carry nil (control) tokens but the port requires " +
                     need.ToString());
    }
    if (have.allows_record() && !need.allows_record()) {
      AddFinding(report, row, "CWF7004", Severity::kError, loc,
                 "channel '" + name + "' carries records " +
                     (have.record_schema() != nullptr
                          ? have.record_schema()->ToString()
                          : std::string("(unconstrained layout)")) +
                     " but the port requires scalar " + need.ToString());
    }
    const ScalarType have_scalars = have.scalars();
    const ScalarType need_scalars = need.scalars();
    if (!have_scalars.empty()) {
      if (need_scalars.empty() && need.allows_record()) {
        AddFinding(report, row, "CWF7004", Severity::kError, loc,
                   "channel '" + name + "' carries scalar " +
                       have_scalars.ToString() +
                       " tokens but the port requires " + need.ToString());
      } else if (!have_scalars.IsSubtypeOf(need_scalars)) {
        AddFinding(report, row, "CWF7001", Severity::kError, loc,
                   "channel '" + name + "' carries " +
                       have_scalars.ToString() + " tokens but the port accepts " +
                       (need_scalars.empty() ? need.ToString()
                                             : need_scalars.ToString()));
      }
    }
    if (have.allows_record() && need.allows_record() &&
        need.record_schema() != nullptr) {
      if (have.record_schema() == nullptr) {
        AddFinding(report, row, "CWF7006", Severity::kWarning, loc,
                   "channel '" + name +
                       "' carries records of undeclared layout but the port "
                       "requires " +
                       need.record_schema()->ToString());
      } else {
        const RecordSchema& have_rec = *have.record_schema();
        for (const FieldSpec& spec : need.record_schema()->fields()) {
          const FieldSpec* got = have_rec.Find(spec.name);
          if (got == nullptr) {
            if (!spec.required) {
              continue;
            }
            AddFinding(report, row, "CWF7003", Severity::kError, loc,
                       "channel '" + name + "': required field '" + spec.name +
                           "' is missing from the resolved layout " +
                           have_rec.ToString());
          } else if (!got->type.Intersects(spec.type)) {
            AddFinding(report, row, "CWF7002", Severity::kError, loc,
                       "channel '" + name + "': field '" + spec.name +
                           "' has type " + got->type.ToString() +
                           " but the port requires " + spec.type.ToString());
          } else if (!got->type.IsSubtypeOf(spec.type)) {
            AddFinding(report, row, "CWF7002", Severity::kWarning, loc,
                       "channel '" + name + "': field '" + spec.name +
                           "' has type " + got->type.ToString() +
                           " which only partially satisfies the required " +
                           spec.type.ToString());
          } else if (spec.required && !got->required) {
            AddFinding(report, row, "CWF7003", Severity::kWarning, loc,
                       "channel '" + name + "': field '" + spec.name +
                           "' is optional in the resolved layout " +
                           have_rec.ToString() +
                           " but the port requires it on every record");
          }
        }
      }
    }
  }

  // Implicit requirement: the consuming port's window group-by fields must
  // exist in whatever records flow in, or window formation dies on a
  // stringly field lookup at runtime.
  const std::vector<std::string>& group_by = ch.to->spec().group_by;
  if (!group_by.empty()) {
    if (!have.allows_record()) {
      AddFinding(report, row, "CWF7007", Severity::kWarning, loc,
                 "port groups by {" + group_by.front() +
                     ", ...} but channel '" + name + "' carries " +
                     have.ToString() + ", not records");
    } else if (have.record_schema() != nullptr) {
      for (const std::string& field : group_by) {
        if (have.record_schema()->Find(field) == nullptr) {
          AddFinding(report, row, "CWF7007", Severity::kWarning, loc,
                     "group-by field '" + field +
                         "' is absent from the resolved layout " +
                         have.record_schema()->ToString() + " of channel '" +
                         name + "'");
        }
      }
    }
  }
}

}  // namespace

SchemaReport AnalyzeSchemas(const Workflow& workflow,
                            const AnalysisOptions& options) {
  SchemaReport report;
  report.workflow = workflow.name();

  OutTypes out_types;
  ResolveLevel(workflow, BoundaryTypes{}, &out_types);

  for (const ChannelSpec& ch : workflow.channels()) {
    ChannelSchema row;
    row.from = ch.from->FullName();
    row.to = ch.to->FullName() + "[" + std::to_string(ch.to_channel) + "]";
    row.from_port = ch.from;
    row.to_port = ch.to;
    row.to_channel = ch.to_channel;
    auto it = out_types.find(ch.from);
    row.resolved = it != out_types.end() ? it->second : TokenType::Unknown();
    row.required = ch.to->required_schema();
    row.declared = !ch.from->schema().is_unknown();
    CheckChannel(options, ch, &report, &row);
    report.channels.push_back(std::move(row));
  }
  return report;
}

std::map<std::pair<const InputPort*, size_t>, ResolvedChannelType>
ResolveChannelTypes(const Workflow& workflow) {
  std::map<std::pair<const InputPort*, size_t>, ResolvedChannelType> resolved;
  OutTypes out_types;
  ResolveLevel(workflow, BoundaryTypes{}, &out_types);
  for (const ChannelSpec& ch : workflow.channels()) {
    auto it = out_types.find(ch.from);
    TokenType type =
        it != out_types.end() ? it->second : TokenType::Unknown();
    if (type.is_unknown()) {
      // No producer-side resolution: fall back to the consumer's own
      // requirement so the runtime check still attributes violations.
      type = ch.to->required_schema();
    }
    if (type.is_unknown()) {
      continue;
    }
    resolved[{ch.to, ch.to_channel}] =
        ResolvedChannelType{std::move(type), ChannelDisplayName(ch)};
  }
  return resolved;
}

void ReportSchemas(const SchemaReport& report, const AnalysisOptions& options,
                   DiagnosticBag* diagnostics) {
  (void)options;  // findings are pre-located during analysis
  for (const SchemaFinding& finding : report.findings) {
    switch (finding.severity) {
      case Severity::kError:
        diagnostics->Error(finding.code, finding.location, finding.message,
                           finding.actor);
        break;
      case Severity::kWarning:
        diagnostics->Warning(finding.code, finding.location, finding.message,
                             finding.actor);
        break;
      case Severity::kNote:
        diagnostics->Note(finding.code, finding.location, finding.message,
                          finding.actor);
        break;
    }
  }
}

void SchemaPass::Run(const Workflow& workflow, const AnalysisOptions& options,
                     DiagnosticBag* diagnostics) const {
  if (workflow.channels().empty()) {
    return;
  }
  const SchemaReport report = AnalyzeSchemas(workflow, options);
  ReportSchemas(report, options, diagnostics);
}

size_t SchemaReport::ErrorCount() const {
  size_t count = 0;
  for (const SchemaFinding& f : findings) {
    if (f.severity == Severity::kError) {
      ++count;
    }
  }
  return count;
}

std::string SchemaReport::ToText() const {
  std::ostringstream oss;
  oss << "schemas of '" << workflow << "': " << channels.size() << " channel"
      << (channels.size() == 1 ? "" : "s") << "\n";
  for (const ChannelSchema& ch : channels) {
    oss << "  " << ch.from << " -> " << ch.to << ": " << ch.resolved.ToString()
        << " (" << (ch.declared ? "declared"
                                : ch.resolved.is_unknown() ? "unknown"
                                                           : "inferred")
        << ")";
    if (!ch.required.is_unknown()) {
      oss << " requires " << ch.required.ToString();
    }
    if (ch.mismatched) {
      oss << "  MISMATCH";
    }
    oss << "\n";
  }
  for (const SchemaFinding& f : findings) {
    oss << "  " << SeverityName(f.severity) << " " << f.code << " at "
        << f.location << ": " << f.message << "\n";
  }
  return oss.str();
}

std::string SchemaReport::ToJson() const {
  std::ostringstream oss;
  oss << "{\"workflow\":";
  AppendJsonString(oss, workflow);
  oss << ",\"channels\":[";
  for (size_t i = 0; i < channels.size(); ++i) {
    if (i > 0) {
      oss << ",";
    }
    const ChannelSchema& ch = channels[i];
    oss << "{\"from\":";
    AppendJsonString(oss, ch.from);
    oss << ",\"to\":";
    AppendJsonString(oss, ch.to);
    oss << ",\"type\":";
    AppendJsonString(oss, ch.resolved.ToString());
    oss << ",\"required\":";
    AppendJsonString(oss, ch.required.ToString());
    oss << ",\"declared\":" << (ch.declared ? "true" : "false");
    oss << ",\"mismatched\":" << (ch.mismatched ? "true" : "false") << "}";
  }
  oss << "],\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) {
      oss << ",";
    }
    const SchemaFinding& f = findings[i];
    oss << "{\"code\":";
    AppendJsonString(oss, f.code);
    oss << ",\"severity\":";
    AppendJsonString(oss, SeverityName(f.severity));
    oss << ",\"location\":";
    AppendJsonString(oss, f.location);
    oss << ",\"message\":";
    AppendJsonString(oss, f.message);
    oss << "}";
  }
  oss << "]}";
  return oss.str();
}

}  // namespace cwf::analysis

// Rate propagation: abstract interpretation of per-channel token rates.
//
// Starting from declared source rates (AnalysisOptions::source_rates), the
// pass pushes RateInterval values through the graph in topological order:
//
//   * a source emits its declared interval on every output channel,
//   * a window operator maps an event-rate interval into a window-rate
//     interval through its size/step (tuple windows: rate/step; time
//     windows: at most 1/step_seconds; wave windows: data-dependent),
//   * an actor fires no faster than its slowest input port delivers
//     windows (interval Meet over ports; a port's window rate is the sum
//     over its fan-in channels),
//   * an output channel carries firing_rate * ProductionRate(port).
//
// Under an SDF deployment the relative rates are *exact*: the balance
// equations (SolveSdf) pin every actor's firings-per-iteration, and the
// declared source rates fix the absolute iteration rate.
//
// ComputeRateModel is the shared engine; the RatePass wrapper only emits
// the informational diagnostics (CWF5001 rate-unknown source, CWF5005
// data-dependent wave rate). The boundedness pass and the capacity planner
// both consume the model.

#ifndef CONFLUENCE_ANALYSIS_RATE_PASS_H_
#define CONFLUENCE_ANALYSIS_RATE_PASS_H_

#include <map>
#include <vector>

#include "analysis/pass.h"
#include "analysis/rate_interval.h"

namespace cwf {

class Actor;

namespace analysis {

/// \brief Derived rates of one channel (indexed like Workflow::channels()).
struct ChannelRateInfo {
  /// Events per second entering the channel in steady state.
  RateInterval events;
  /// Windows per second the consuming port's window operator produces
  /// from this channel's events.
  RateInterval windows;
  /// Upper estimate of events delivered per produced window (for firing
  /// cost estimates); 1.0 when unknown.
  double events_per_window_max = 1.0;
  /// Upper estimate of events *resident* in the receiver's queue in steady
  /// state (a 2-minute time window at 10 ev/s holds ~1200 events even with
  /// a keeping-up consumer). +inf when statically unbounded (group-by keys,
  /// wave windows, unknown arrival rate) — the planner then falls back to a
  /// horizon-based bound.
  double resident_events_max = 1.0;
  /// Wave-unit window: the window rate is data-dependent and the interval
  /// above is only a conservative envelope (CWF5005).
  bool data_dependent = false;
};

/// \brief Derived rates of one actor.
struct ActorRateInfo {
  /// Steady-state firings per second.
  RateInterval firings;
  /// Upper estimate of events consumed per firing (cost-model input).
  double events_per_firing_max = 1.0;
};

/// \brief The rate solution over one workflow level.
struct RateModel {
  /// Parallel to Workflow::channels().
  std::vector<ChannelRateInfo> channels;
  std::map<const Actor*, ActorRateInfo> actors;
  /// Rates were pinned exactly by the SDF balance equations.
  bool exact_sdf = false;
  /// Sources with no declared rate (their intervals are the top element).
  std::vector<const Actor*> unknown_rate_sources;
};

/// \brief Solve the rate intervals for one workflow level (no recursion;
/// the Analyzer recurses for passes, and the planner is top-level only).
RateModel ComputeRateModel(const Workflow& workflow,
                           const AnalysisOptions& options);

/// \brief Informational diagnostics of the rate solution.
class RatePass : public AnalysisPass {
 public:
  const char* name() const override { return "rate"; }
  void Run(const Workflow& workflow, const AnalysisOptions& options,
           DiagnosticBag* diagnostics) const override;
};

}  // namespace analysis
}  // namespace cwf

#endif  // CONFLUENCE_ANALYSIS_RATE_PASS_H_

#include "analysis/diagnostic.h"

#include <sstream>

namespace cwf::analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

void DiagnosticBag::Add(Diagnostic diagnostic) {
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticBag::Error(std::string code, std::string location,
                          std::string message, const Actor* actor) {
  Add({std::move(code), Severity::kError, std::move(location),
       std::move(message), actor});
}

void DiagnosticBag::Warning(std::string code, std::string location,
                            std::string message, const Actor* actor) {
  Add({std::move(code), Severity::kWarning, std::move(location),
       std::move(message), actor});
}

void DiagnosticBag::Note(std::string code, std::string location,
                         std::string message, const Actor* actor) {
  Add({std::move(code), Severity::kNote, std::move(location),
       std::move(message), actor});
}

size_t DiagnosticBag::ErrorCount() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    n += d.severity == Severity::kError ? 1 : 0;
  }
  return n;
}

size_t DiagnosticBag::WarningCount() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    n += d.severity == Severity::kWarning ? 1 : 0;
  }
  return n;
}

size_t DiagnosticBag::NoteCount() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    n += d.severity == Severity::kNote ? 1 : 0;
  }
  return n;
}

bool DiagnosticBag::HasCode(const std::string& code) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) {
      return true;
    }
  }
  return false;
}

std::vector<const Diagnostic*> DiagnosticBag::WithCode(
    const std::string& code) const {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) {
      out.push_back(&d);
    }
  }
  return out;
}

std::string DiagnosticBag::ToText() const {
  std::ostringstream oss;
  for (const Diagnostic& d : diagnostics_) {
    oss << SeverityName(d.severity) << " " << d.code << " at " << d.location
        << ": " << d.message << "\n";
  }
  return oss.str();
}

namespace {

void AppendJsonString(std::ostringstream& oss, const std::string& s) {
  oss << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        oss << "\\\"";
        break;
      case '\\':
        oss << "\\\\";
        break;
      case '\n':
        oss << "\\n";
        break;
      case '\t':
        oss << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          oss << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
              << "0123456789abcdef"[c & 0xf];
        } else {
          oss << c;
        }
    }
  }
  oss << '"';
}

}  // namespace

std::string DiagnosticBag::ToJson() const {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (i > 0) {
      oss << ",";
    }
    oss << "{\"code\":";
    AppendJsonString(oss, d.code);
    oss << ",\"severity\":";
    AppendJsonString(oss, SeverityName(d.severity));
    oss << ",\"location\":";
    AppendJsonString(oss, d.location);
    oss << ",\"message\":";
    AppendJsonString(oss, d.message);
    oss << "}";
  }
  oss << "]";
  return oss.str();
}

const std::vector<DiagnosticCodeInfo>& DiagnosticCodes() {
  static const std::vector<DiagnosticCodeInfo> kCodes = {
      // Structural.
      {"CWF1001", Severity::kWarning,
       "duplicate actor name (error within one workflow level; warning when "
       "an inner composite actor shadows an outer name)"},
      {"CWF1002", Severity::kError, "invalid window spec on an input port"},
      {"CWF1003", Severity::kError, "self-loop channel on an actor"},
      {"CWF1004", Severity::kError,
       "two channels wired into the same input-channel slot"},
      {"CWF1005", Severity::kWarning,
       "actor has both connected and unconnected input ports (the "
       "unconnected port can never receive data and never gates firing)"},
      {"CWF1006", Severity::kWarning,
       "actor unreachable from any source actor (dead subgraph)"},
      {"CWF1007", Severity::kWarning,
       "workflow has no source actor (no external data can enter)"},
      {"CWF1008", Severity::kWarning,
       "workflow has no sink actor (no terminal output)"},
      {"CWF1009", Severity::kWarning, "workflow is empty"},
      // MoC admission.
      {"CWF2001", Severity::kError,
       "SDF inadmissible: data-dependent-rate (time/wave) window"},
      {"CWF2002", Severity::kError,
       "SDF inadmissible: balance equations are inconsistent"},
      {"CWF2003", Severity::kError,
       "SDF inadmissible: static schedule deadlocks (cycle without delay)"},
      {"CWF2004", Severity::kError,
       "PN/DDF inadmissible: directed cycle without delay deadlocks blocking "
       "reads"},
      // Window / wave compatibility.
      {"CWF3001", Severity::kWarning,
       "actor mixes wave-based and non-wave windows across its input ports"},
      {"CWF3002", Severity::kWarning,
       "wave window combined with group-by can strand waves split across "
       "groups"},
      {"CWF3003", Severity::kWarning,
       "wave window on a fan-in port synchronizes each channel independently"},
      {"CWF3004", Severity::kWarning,
       "time window with negative formation timeout may never close under "
       "the SCWF director"},
      {"CWF3005", Severity::kNote,
       "window step exceeds size: events in the gap silently expire"},
      // Scheduler configuration.
      {"CWF4001", Severity::kError, "QBS basic quantum must be positive"},
      {"CWF4002", Severity::kError,
       "designer priority outside [0, 39] breaks the QBS quantum formula"},
      {"CWF4003", Severity::kWarning,
       "designer priority names an actor absent from the workflow"},
      {"CWF4004", Severity::kError, "QBS max banked epochs must be >= 1"},
      {"CWF4005", Severity::kError, "RR slice must be positive"},
      {"CWF4006", Severity::kError, "source interval must be non-negative"},
      {"CWF4007", Severity::kWarning,
       "EDF scheduling without any sink actor has no deadline-bearing "
       "output"},
      // Quantitative (rates, boundedness, capacity).
      {"CWF5001", Severity::kNote,
       "source has no declared arrival rate; downstream rates degrade to "
       "[0, inf]/s"},
      {"CWF5002", Severity::kWarning,
       "PNCWF channel whose steady-state inflow can exceed the consumer's "
       "service rate (unbounded queue growth risk)"},
      {"CWF5003", Severity::kWarning,
       "SCWF workload overload-infeasible: total utilization exceeds the "
       "single scheduled executor"},
      {"CWF5004", Severity::kWarning,
       "SCWF actor whose lone utilization exceeds 1 (no policy can keep "
       "up)"},
      {"CWF5005", Severity::kNote,
       "wave window rate is data-dependent; capacity planning falls back "
       "to horizon bounds"},
      // Liveness (artificial deadlock under bounded blocking channels).
      {"CWF6001", Severity::kError,
       "capacity plan provably deadlocks: bounded-execution simulation "
       "reached a state where a cycle of blocked channels can never "
       "progress"},
      {"CWF6002", Severity::kError,
       "channel capacity below the consumer's first-window demand: the "
       "producer blocks before a window can ever form"},
      {"CWF6003", Severity::kNote,
       "liveness unknown: bounded channel on an undirected cycle or with "
       "data-dependent window formation; blocking deployment may deadlock"},
      {"CWF6004", Severity::kNote,
       "capacity plan adjusted by deadlock-freedom synthesis: minimal "
       "capacity bumps restore provable liveness"},
      {"CWF6005", Severity::kError,
       "artificial deadlock detected at runtime: the channel wait-for "
       "graph contains a cycle of blocked actors (watchdog report)"},
      // Schema/type-flow (typed channels).
      {"CWF7001", Severity::kError,
       "channel token-kind mismatch: producer emits scalar kinds the "
       "consuming port does not accept"},
      {"CWF7002", Severity::kError,
       "record field type mismatch: a field's resolved type is "
       "incompatible with what the consuming port requires"},
      {"CWF7003", Severity::kError,
       "required record field missing from the channel's resolved layout"},
      {"CWF7004", Severity::kError,
       "record-vs-scalar shape mismatch: records into a scalar port, or "
       "scalars into a record-requiring port"},
      {"CWF7005", Severity::kError,
       "nil (control) tokens may flow into a port that requires data"},
      {"CWF7006", Severity::kWarning,
       "producer schema undeclared but the consuming port is strict: the "
       "channel cannot be checked statically"},
      {"CWF7007", Severity::kWarning,
       "window group-by field absent from the channel's resolved record "
       "layout"},
      {"CWF7008", Severity::kError,
       "runtime schema violation: a deposited token failed the channel's "
       "resolved schema (CWF_SCHEMA_CHECK report)"},
  };
  return kCodes;
}

std::string DiagnosticCodesJson() {
  std::ostringstream oss;
  oss << "[";
  bool first = true;
  for (const DiagnosticCodeInfo& info : DiagnosticCodes()) {
    if (!first) {
      oss << ",";
    }
    first = false;
    oss << "{\"code\":";
    AppendJsonString(oss, info.code);
    oss << ",\"severity\":";
    AppendJsonString(oss, SeverityName(info.default_severity));
    oss << ",\"summary\":";
    AppendJsonString(oss, info.summary);
    oss << "}";
  }
  oss << "]";
  return oss.str();
}

}  // namespace cwf::analysis

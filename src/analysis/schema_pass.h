// Schema/type-flow analysis: does every channel carry what its consumer
// expects?
//
// The data plane is dynamically typed — every Token is a runtime variant,
// every record field access a stringly-typed lookup — so wiring a record
// producer into a port that reads AsInt(), or dropping a field a downstream
// aggregation groups by, only surfaces as a CHECK-fail deep inside the
// consuming actor, mid-wave. This pass closes that gap statically:
//
//   - actors declare per-port types (OutputPort::set_schema,
//     InputPort::set_required_schema) or act as transfer functions
//     (Actor::OutputTokenType derives output types from resolved inputs —
//     identity forwards, projections, joins);
//   - AnalyzeSchemas propagates types forward to a fixpoint across the
//     channels of one workflow level, resolving composite-actor outputs by
//     recursively resolving their inner workflow with the outer boundary
//     types bound to the exposed inner ports, and *infers* the types of
//     undeclared intermediate channels;
//   - every channel's resolved producer type is checked against the
//     consumer's requirement — declared (required_schema) and implicit
//     (WindowSpec group-by fields) — yielding stable CWF70xx diagnostics:
//
//       CWF7001  error    token-kind mismatch (e.g. string into int port)
//       CWF7002  error    record field type mismatch (warning when the
//                         types merely overlap instead of being disjoint)
//       CWF7003  error    required record field missing
//       CWF7004  error    record-vs-scalar shape mismatch
//       CWF7005  error    nil (control) token into a data-requiring port
//       CWF7006  warning  undeclared producer into a strict consumer
//       CWF7007  warning  group-by field absent from the resolved layout
//       CWF7008  error    runtime schema violation (emitted by the
//                         CWF_SCHEMA_CHECK deposit validation, not here)
//
// The analysis→runtime edge runs both directions: SchemaPass is registered
// with the Analyzer, so Director::Initialize refuses mistyped graphs like
// it refuses deadlocking plans; and Initialize attaches each channel's
// resolved type to its receiver (ResolveChannelTypes) so the debug-build
// deposit check in OutputPort::Broadcast turns a lying producer into an
// attributed CWF7008 error naming the channel and field.

#ifndef CONFLUENCE_ANALYSIS_SCHEMA_PASS_H_
#define CONFLUENCE_ANALYSIS_SCHEMA_PASS_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/pass.h"
#include "core/schema.h"

namespace cwf {

class InputPort;
class OutputPort;
class Workflow;

namespace analysis {

/// \brief One channel of the analyzed level with its resolved types.
struct ChannelSchema {
  std::string from;  ///< "A.out"
  std::string to;    ///< "B.in[0]"
  const OutputPort* from_port = nullptr;
  const InputPort* to_port = nullptr;
  size_t to_channel = 0;

  /// Resolved producer-side type (declared, transferred or inferred);
  /// Unknown when nothing upstream declares anything.
  TokenType resolved;
  /// Consumer requirement (InputPort::set_required_schema); Unknown = none.
  TokenType required;
  /// Whether `resolved` came straight from a declaration on the producing
  /// port (false: inferred through transfer functions, or unknown).
  bool declared = false;
  /// Whether any error-severity finding attaches to this channel (drives
  /// the red edge in --dot).
  bool mismatched = false;
};

/// \brief One CWF70xx finding, pre-located for the DiagnosticBag.
struct SchemaFinding {
  std::string code;
  Severity severity = Severity::kError;
  std::string location;
  std::string message;
  const Actor* actor = nullptr;
};

/// \brief Resolution + findings for one workflow level.
struct SchemaReport {
  std::string workflow;
  std::vector<ChannelSchema> channels;
  std::vector<SchemaFinding> findings;

  size_t ErrorCount() const;

  std::string ToText() const;
  std::string ToJson() const;
};

/// \brief Propagate types across one workflow level and check every
/// channel. Composite actors on this level are resolved through their
/// boundary (their inner channels are *checked* when the Analyzer recurses
/// into them with its own location prefix).
SchemaReport AnalyzeSchemas(const Workflow& workflow,
                            const AnalysisOptions& options);

/// \brief The resolved type to enforce at runtime for one receiver.
struct ResolvedChannelType {
  TokenType type;
  std::string channel_name;  ///< "A.out -> B.in[0]"
};

/// \brief Per-receiver runtime enforcement map for `workflow`, keyed by
/// (consuming port, channel slot): the resolved producer type when known,
/// else the consumer's declared requirement. Channels with neither are
/// omitted (nothing to enforce). Director::Initialize installs the result
/// on the receivers it builds.
std::map<std::pair<const InputPort*, size_t>, ResolvedChannelType>
ResolveChannelTypes(const Workflow& workflow);

/// \brief Fold a report's findings into `diagnostics`.
void ReportSchemas(const SchemaReport& report, const AnalysisOptions& options,
                   DiagnosticBag* diagnostics);

/// \brief Analyzer pass wrapper (registered by the Analyzer constructor, so
/// schema verdicts gate Director::Initialize like liveness verdicts).
class SchemaPass : public AnalysisPass {
 public:
  const char* name() const override { return "schema"; }
  void Run(const Workflow& workflow, const AnalysisOptions& options,
           DiagnosticBag* diagnostics) const override;
};

}  // namespace analysis
}  // namespace cwf

#endif  // CONFLUENCE_ANALYSIS_SCHEMA_PASS_H_

// The interval lattice of the quantitative dataflow passes.
//
// Every per-channel token rate, per-port window rate and per-actor firing
// rate is abstracted as a closed interval [min, max] in events (or windows,
// or firings) per second. Unknown quantities are the top element [0, +inf):
// abstract interpretation over intervals keeps every derived bound sound —
// a finite maximum is a guarantee, an infinite one an honest "don't know".

#ifndef CONFLUENCE_ANALYSIS_RATE_INTERVAL_H_
#define CONFLUENCE_ANALYSIS_RATE_INTERVAL_H_

#include <limits>
#include <string>

namespace cwf::analysis {

/// \brief A non-negative rate interval in units-per-second.
struct RateInterval {
  double min = 0.0;
  double max = std::numeric_limits<double>::infinity();

  /// \brief The top element [0, +inf): nothing is known about the rate.
  static RateInterval Unknown() { return {}; }

  /// \brief A degenerate (exactly known) rate.
  static RateInterval Exact(double rate) { return {rate, rate}; }

  /// \brief An interval [lo, hi]; callers guarantee 0 <= lo <= hi.
  static RateInterval Of(double lo, double hi) { return {lo, hi}; }

  /// \brief Whether the upper bound is finite (the interval carries
  /// actionable information).
  bool bounded() const {
    return max < std::numeric_limits<double>::infinity();
  }

  /// \brief Whether nothing is known (the top element).
  bool unknown() const { return min == 0.0 && !bounded(); }

  /// \brief Scale both endpoints by a non-negative factor.
  RateInterval Scaled(double factor) const {
    return {min * factor, max * factor};
  }

  /// \brief Pointwise sum (rates of merged/fan-in flows add).
  RateInterval Plus(const RateInterval& other) const {
    return {min + other.min, max + other.max};
  }

  /// \brief Pointwise minimum (a join fires no faster than its slowest
  /// input delivers windows).
  RateInterval Meet(const RateInterval& other) const {
    return {min < other.min ? min : other.min,
            max < other.max ? max : other.max};
  }

  /// \brief "[min, max]/s" with "inf" for the unbounded top.
  std::string ToString() const;
};

}  // namespace cwf::analysis

#endif  // CONFLUENCE_ANALYSIS_RATE_INTERVAL_H_

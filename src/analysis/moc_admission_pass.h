// MoC-admission pass: decides whether the graph can legally run under the
// director it is deployed to, per the model-of-computation taxonomy.
//
//   SDF   needs constant rates (tuple windows), consistent balance
//         equations, and a compilable static schedule (CWF2001-CWF2003).
//   PNCWF blocking reads deadlock on any directed cycle, because no
//   /DDF  CONFLuEnCE actor produces output before consuming input
//         (CWF2004).
//   SCWF  admits any structurally valid graph.
//
// Findings are emitted only when AnalysisOptions::target_director names
// the director being deployed; Analyzer::ComputeAdmissionMatrix gives the
// full per-director picture without attaching diagnostics.

#ifndef CONFLUENCE_ANALYSIS_MOC_ADMISSION_PASS_H_
#define CONFLUENCE_ANALYSIS_MOC_ADMISSION_PASS_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/pass.h"

namespace cwf::analysis {

/// \brief One directed cycle of the actor graph, in traversal order
/// (first element repeats implicitly). Empty when the graph is acyclic.
std::vector<const Actor*> FindCycle(const Workflow& workflow);

class MocAdmissionPass : public AnalysisPass {
 public:
  const char* name() const override { return "moc-admission"; }

  void Run(const Workflow& workflow, const AnalysisOptions& options,
           DiagnosticBag* diagnostics) const override;
};

}  // namespace cwf::analysis

#endif  // CONFLUENCE_ANALYSIS_MOC_ADMISSION_PASS_H_

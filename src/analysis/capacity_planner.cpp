#include "analysis/capacity_planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <sstream>

#include "analysis/cost_estimates.h"
#include "analysis/liveness_pass.h"
#include "core/cost_model.h"
#include "core/workflow.h"

namespace cwf::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string FormatNumber(double value) {
  if (value == kInf) {
    return "inf";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void AppendJsonString(std::ostringstream& oss, const std::string& s) {
  oss << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      oss << '\\' << c;
    } else {
      oss << c;
    }
  }
  oss << '"';
}

void AppendJsonNumber(std::ostringstream& oss, double value) {
  // JSON has no infinity literal; mirror the text renderer with a string.
  if (value == kInf) {
    oss << "\"inf\"";
  } else {
    oss << FormatNumber(value);
  }
}

}  // namespace

size_t CapacityPlan::CapacityFor(const std::string& consumer_port_full_name,
                                 size_t to_channel) const {
  for (const ChannelCapacity& ch : channels) {
    if (ch.consumer == consumer_port_full_name &&
        ch.to_channel == to_channel) {
      return ch.bounded ? ch.capacity : 0;
    }
  }
  return 0;
}

CapacityPlan PlanCapacity(const Workflow& workflow,
                          const AnalysisOptions& options,
                          const PlanningOptions& planning) {
  CapacityPlan plan;
  plan.workflow = workflow.name();
  plan.director = options.target_director;

  const RateModel model = ComputeRateModel(workflow, options);
  plan.exact_rates = model.exact_sdf;
  const CostModel fallback_costs;
  const CostModel& costs =
      options.cost_model != nullptr ? *options.cost_model : fallback_costs;

  const std::vector<ChannelSpec>& channels = workflow.channels();
  plan.channels.reserve(channels.size());
  for (size_t i = 0; i < channels.size(); ++i) {
    const ChannelRateInfo& rates = model.channels[i];
    ChannelCapacity cap;
    cap.producer = channels[i].from->FullName();
    cap.consumer = channels[i].to->FullName();
    cap.to_channel = channels[i].to_channel;
    cap.inflow_events_max = rates.events.max;
    cap.resident_events_max = rates.resident_events_max;
    if (rates.events.bounded()) {
      double resident = rates.resident_events_max;
      if (!std::isfinite(resident)) {
        // Group-by keys / wave extents are runtime properties: hold a full
        // horizon of arrivals instead of claiming a steady-state bound.
        resident = rates.events.max * planning.horizon_seconds;
      }
      const double backlog =
          rates.windows.max * planning.queueing_delay_budget_seconds;
      cap.capacity =
          planning.burst_slack +
          static_cast<size_t>(
              std::ceil(planning.safety_factor * (resident + backlog)));
      cap.bounded = true;
    }
    plan.channels.push_back(std::move(cap));
  }

  double total = 0.0;
  for (const auto& actor : workflow.actors()) {
    ActorLoad load;
    load.actor = actor->name();
    auto rates = model.actors.find(actor.get());
    load.firings_per_second_max =
        rates == model.actors.end() || !rates->second.firings.bounded()
            ? kInf
            : rates->second.firings.max;
    load.firing_cost_micros = EstimatedFiringCostMicros(
        workflow, actor.get(), model, costs, options.target_director);
    load.utilization = Utilization(workflow, actor.get(), model, costs,
                                   options.target_director);
    if (std::isfinite(load.utilization)) {
      total += load.utilization;
    }
    plan.actors.push_back(std::move(load));
  }
  plan.total_utilization = total;

  // Critical path: longest chain of modeled firing costs through the DAG
  // part of the graph (Kahn order; cycle members are unreachable from it).
  std::map<const Actor*, std::vector<const Actor*>> downstream;
  std::map<const Actor*, size_t> indegree;
  for (const auto& actor : workflow.actors()) {
    indegree[actor.get()] = 0;
  }
  for (const ChannelSpec& channel : channels) {
    downstream[channel.from->actor()].push_back(channel.to->actor());
    ++indegree[channel.to->actor()];
  }
  std::deque<const Actor*> ready;
  for (const auto& [actor, degree] : indegree) {
    if (degree == 0) {
      ready.push_back(actor);
    }
  }
  std::map<const Actor*, double> distance;
  std::map<const Actor*, const Actor*> predecessor;
  const Actor* farthest = nullptr;
  while (!ready.empty()) {
    const Actor* actor = ready.front();
    ready.pop_front();
    double cost = 0.0;
    for (const ActorLoad& load : plan.actors) {
      if (load.actor == actor->name()) {
        cost = load.firing_cost_micros;
        break;
      }
    }
    distance[actor] += cost;
    if (farthest == nullptr || distance[actor] > distance[farthest]) {
      farthest = actor;
    }
    for (const Actor* next : downstream[actor]) {
      if (distance[actor] > distance[next]) {
        distance[next] = distance[actor];
        predecessor[next] = actor;
      }
      if (--indegree[next] == 0) {
        ready.push_back(next);
      }
    }
  }
  if (farthest != nullptr) {
    plan.critical_path_latency_micros = distance[farthest];
    for (const Actor* a = farthest; a != nullptr;) {
      plan.critical_path.push_back(a->name());
      auto prev = predecessor.find(a);
      a = prev == predecessor.end() ? nullptr : prev->second;
    }
    std::reverse(plan.critical_path.begin(), plan.critical_path.end());
  }

  if (planning.ensure_liveness) {
    SynthesizeLiveCapacities(workflow, options, &plan);
  }

  return plan;
}

std::string CapacityPlan::ToText() const {
  std::ostringstream oss;
  oss << "capacity plan for '" << workflow << "'";
  if (!director.empty()) {
    oss << " under " << director;
  }
  oss << (exact_rates ? " (exact SDF rates)" : "") << "\n";
  oss << "  channels:\n";
  for (const ChannelCapacity& ch : channels) {
    oss << "    " << ch.producer << " -> " << ch.consumer << "[" << ch.to_channel
        << "]: ";
    if (ch.bounded) {
      oss << "capacity " << ch.capacity << " (inflow <= "
          << FormatNumber(ch.inflow_events_max) << " ev/s, resident <= "
          << FormatNumber(ch.resident_events_max) << ")";
    } else {
      oss << "unbounded (inflow unknown)";
    }
    oss << "\n";
  }
  oss << "  actors:\n";
  for (const ActorLoad& load : actors) {
    oss << "    " << load.actor << ": "
        << FormatNumber(load.firings_per_second_max) << " firings/s x "
        << FormatNumber(load.firing_cost_micros) << "us = utilization "
        << FormatNumber(load.utilization) << "\n";
  }
  oss << "  total utilization: " << FormatNumber(total_utilization) << "\n";
  oss << "  critical path (" << FormatNumber(critical_path_latency_micros)
      << "us):";
  for (const std::string& name : critical_path) {
    oss << " " << name;
  }
  oss << "\n";
  if (!liveness_verdict.empty()) {
    oss << "  liveness: " << liveness_verdict << " (" << liveness_method
        << ")\n";
    if (!liveness_witness.empty()) {
      oss << "    witness cycle: " << liveness_witness << "\n";
    }
    for (const CapacityBump& bump : liveness_bumps) {
      oss << "    bumped '" << bump.channel << "': " << bump.from_capacity
          << " -> " << bump.to_capacity << " (" << bump.reason << ")\n";
    }
  }
  return oss.str();
}

std::string CapacityPlan::ToJson() const {
  std::ostringstream oss;
  oss << "{\"workflow\":";
  AppendJsonString(oss, workflow);
  oss << ",\"director\":";
  AppendJsonString(oss, director);
  oss << ",\"exact_rates\":" << (exact_rates ? "true" : "false");
  oss << ",\"channels\":[";
  for (size_t i = 0; i < channels.size(); ++i) {
    const ChannelCapacity& ch = channels[i];
    if (i > 0) {
      oss << ",";
    }
    oss << "{\"producer\":";
    AppendJsonString(oss, ch.producer);
    oss << ",\"consumer\":";
    AppendJsonString(oss, ch.consumer);
    oss << ",\"to_channel\":" << ch.to_channel;
    oss << ",\"bounded\":" << (ch.bounded ? "true" : "false");
    oss << ",\"capacity\":" << ch.capacity;
    oss << ",\"inflow_events_max\":";
    AppendJsonNumber(oss, ch.inflow_events_max);
    oss << ",\"resident_events_max\":";
    AppendJsonNumber(oss, ch.resident_events_max);
    oss << "}";
  }
  oss << "],\"actors\":[";
  for (size_t i = 0; i < actors.size(); ++i) {
    const ActorLoad& load = actors[i];
    if (i > 0) {
      oss << ",";
    }
    oss << "{\"actor\":";
    AppendJsonString(oss, load.actor);
    oss << ",\"firings_per_second_max\":";
    AppendJsonNumber(oss, load.firings_per_second_max);
    oss << ",\"firing_cost_micros\":";
    AppendJsonNumber(oss, load.firing_cost_micros);
    oss << ",\"utilization\":";
    AppendJsonNumber(oss, load.utilization);
    oss << "}";
  }
  oss << "],\"total_utilization\":";
  AppendJsonNumber(oss, total_utilization);
  oss << ",\"critical_path\":[";
  for (size_t i = 0; i < critical_path.size(); ++i) {
    if (i > 0) {
      oss << ",";
    }
    AppendJsonString(oss, critical_path[i]);
  }
  oss << "],\"critical_path_latency_micros\":";
  AppendJsonNumber(oss, critical_path_latency_micros);
  oss << ",\"liveness\":{\"verdict\":";
  AppendJsonString(oss, liveness_verdict);
  oss << ",\"method\":";
  AppendJsonString(oss, liveness_method);
  oss << ",\"witness\":";
  AppendJsonString(oss, liveness_witness);
  oss << ",\"bumps\":[";
  for (size_t i = 0; i < liveness_bumps.size(); ++i) {
    const CapacityBump& bump = liveness_bumps[i];
    if (i > 0) {
      oss << ",";
    }
    oss << "{\"channel\":";
    AppendJsonString(oss, bump.channel);
    oss << ",\"consumer\":";
    AppendJsonString(oss, bump.consumer);
    oss << ",\"to_channel\":" << bump.to_channel;
    oss << ",\"from_capacity\":" << bump.from_capacity;
    oss << ",\"to_capacity\":" << bump.to_capacity;
    oss << ",\"reason\":";
    AppendJsonString(oss, bump.reason);
    oss << "}";
  }
  oss << "]}}";
  return oss.str();
}

}  // namespace cwf::analysis

#include "analysis/moc_admission_pass.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "analysis/sdf_balance.h"
#include "core/workflow.h"

namespace cwf::analysis {
namespace {

enum class Mark { kUnseen, kOnStack, kDone };

bool CycleDfs(const Workflow& wf, const Actor* node,
              std::map<const Actor*, Mark>* marks,
              std::vector<const Actor*>* stack) {
  (*marks)[node] = Mark::kOnStack;
  stack->push_back(node);
  for (const Actor* next : wf.DownstreamOf(node)) {
    const Mark m = (*marks)[next];
    if (m == Mark::kOnStack) {
      // Trim the stack down to the cycle entry point.
      auto it = std::find(stack->begin(), stack->end(), next);
      stack->erase(stack->begin(), it);
      return true;
    }
    if (m == Mark::kUnseen && CycleDfs(wf, next, marks, stack)) {
      return true;
    }
  }
  stack->pop_back();
  (*marks)[node] = Mark::kDone;
  return false;
}

std::string CyclePath(const std::vector<const Actor*>& cycle) {
  std::string path;
  for (const Actor* a : cycle) {
    path += a->name();
    path += " -> ";
  }
  path += cycle.front()->name();
  return path;
}

}  // namespace

std::vector<const Actor*> FindCycle(const Workflow& workflow) {
  std::map<const Actor*, Mark> marks;
  std::vector<const Actor*> stack;
  for (const auto& actor : workflow.actors()) {
    if (marks[actor.get()] == Mark::kUnseen &&
        CycleDfs(workflow, actor.get(), &marks, &stack)) {
      return stack;
    }
  }
  return {};
}

void MocAdmissionPass::Run(const Workflow& wf, const AnalysisOptions& original,
                           DiagnosticBag* diags) const {
  AnalysisOptions options = original;
  if (options.location_prefix.empty()) {
    options.location_prefix = wf.name();
  }
  const std::string& target = options.target_director;
  if (target.empty()) {
    return;  // no deployment intent — nothing to admit against
  }

  if (target == "SDF") {
    // CWF2001: time/wave windows make consumption rates data-dependent, so
    // the balance equations do not even exist. Report every offending port
    // before giving up on the solver stages.
    const std::vector<const InputPort*> bad = DataDependentRatePorts(wf);
    for (const InputPort* port : bad) {
      diags->Error("CWF2001",
                   ActorLocation(options, port->actor()->name()) + "." +
                       port->name(),
                   "SDF requires tuple-based (constant-rate) windows; port " +
                       port->FullName() + " uses " + port->spec().ToString() +
                       " — use DDF for data-dependent rates",
                   port->actor());
    }
    if (!bad.empty()) {
      return;
    }

    Result<std::map<const Actor*, int64_t>> reps = SolveSdfRepetitions(wf);
    if (!reps.ok()) {
      diags->Error("CWF2002", options.location_prefix,
                   "SDF balance equations have no solution: " +
                       reps.status().message());
      return;
    }
    Result<std::vector<Actor*>> schedule = CompileSdfSchedule(wf, *reps);
    if (!schedule.ok()) {
      std::string message =
          "SDF schedule cannot be compiled: " + schedule.status().message();
      const std::vector<const Actor*> cycle = FindCycle(wf);
      if (!cycle.empty()) {
        message += " (cycle: " + CyclePath(cycle) + ")";
      }
      diags->Error("CWF2003", options.location_prefix, message,
                   cycle.empty() ? nullptr : cycle.front());
    }
    return;
  }

  if (target == "PNCWF" || target == "DDF") {
    // CWF2004: blocking reads around a directed cycle deadlock — every
    // actor in the cycle waits on its upstream neighbour and none can fire
    // first, since no CONFLuEnCE actor emits output before consuming input.
    const std::vector<const Actor*> cycle = FindCycle(wf);
    if (!cycle.empty()) {
      diags->Error("CWF2004",
                   ActorLocation(options, cycle.front()->name()),
                   "directed cycle without delay deadlocks " + target +
                       " blocking reads: " + CyclePath(cycle),
                   cycle.front());
    }
    return;
  }

  // SCWF (and unknown kinds): any structurally valid graph is admissible.
}

}  // namespace cwf::analysis

#include "analysis/window_pass.h"

#include <map>
#include <set>
#include <string>

#include "core/workflow.h"
#include "window/window_spec.h"

namespace cwf::analysis {

void WindowPass::Run(const Workflow& wf, const AnalysisOptions& original,
                     DiagnosticBag* diags) const {
  AnalysisOptions options = original;
  if (options.location_prefix.empty()) {
    options.location_prefix = wf.name();
  }

  // Channels per input port: windows only matter on wired ports, and
  // fan-in (CWF3003) is a property of the channel list.
  std::map<const InputPort*, size_t> fan_in;
  for (const ChannelSpec& ch : wf.channels()) {
    ++fan_in[ch.to];
  }

  for (const auto& actor : wf.actors()) {
    bool has_wave = false;
    bool has_non_wave = false;

    for (const auto& port : actor->input_ports()) {
      auto wired = fan_in.find(port.get());
      if (wired == fan_in.end()) {
        continue;  // unconnected: receiver is never built
      }
      const WindowSpec& spec = port->spec();
      const std::string port_loc =
          ActorLocation(options, actor->name()) + "." + port->name();

      (spec.unit == WindowUnit::kWaves ? has_wave : has_non_wave) = true;

      if (spec.unit == WindowUnit::kWaves) {
        // CWF3002: wave completion needs the last_in_wave event to land in
        // the same group queue as the rest of the wave; a group-by on
        // anything but the wave tag splits waves across queues and each
        // fragment waits forever for a closer it will never see.
        if (!spec.group_by.empty()) {
          diags->Warning(
              "CWF3002", port_loc,
              "wave window with group-by {" + spec.group_by.front() +
                  (spec.group_by.size() > 1 ? ", ..." : "") +
                  "}: waves whose events span groups are split across "
                  "per-key queues and may never complete",
              actor.get());
        }
        // CWF3003: wave receivers track completion per channel; a fan-in
        // port does not merge the channels into one wave timeline.
        if (wired->second > 1) {
          diags->Warning(
              "CWF3003", port_loc,
              "wave window on fan-in port ('" + port->name() + "' has " +
                  std::to_string(wired->second) +
                  " incoming channels): each channel synchronizes its own "
                  "waves independently; cross-channel waves never align",
              actor.get());
        }
      }

      // CWF3004: SCWF receivers have no autonomous thread; a time window
      // with formation_timeout < 0 only closes when a later event arrives,
      // so the final window of a pausing stream is held open forever.
      if (options.target_director == "SCWF" &&
          spec.unit == WindowUnit::kTime && spec.formation_timeout < 0) {
        diags->Warning(
            "CWF3004", port_loc,
            "time window with no formation timeout under SCWF: the window "
            "only closes when a later event arrives, so a pausing stream "
            "holds its last window open forever (set FormationTimeout >= 0)",
            actor.get());
      }

      // CWF3005: a step wider than the window leaves gaps no window ever
      // covers; events landing there expire without being delivered.
      if (spec.step > spec.size) {
        diags->Note("CWF3005", port_loc,
                    "window step " + std::to_string(spec.step) +
                        " exceeds size " + std::to_string(spec.size) +
                        ": events in the gap are never delivered and "
                        "silently expire",
                    actor.get());
      }
    }

    // CWF3001: one actor firing on both wave-aligned and count/time-aligned
    // inputs — the non-wave ports do not wait for wave completion, so the
    // actor observes misaligned slices of the same upstream wave.
    if (has_wave && has_non_wave) {
      diags->Warning(
          "CWF3001", ActorLocation(options, actor->name()),
          "actor '" + actor->name() +
              "' mixes wave-based and non-wave windows across its input "
              "ports; non-wave inputs do not wait for wave completion",
          actor.get());
    }
  }
}

}  // namespace cwf::analysis

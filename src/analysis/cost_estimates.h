// Shared cost/service estimates of the quantitative passes.
//
// Bridges the rate model (how often things happen) and the CostModel (how
// long they take) into the per-actor quantities the boundedness pass and the
// capacity planner agree on: modeled firing cost, service rate, utilization.

#ifndef CONFLUENCE_ANALYSIS_COST_ESTIMATES_H_
#define CONFLUENCE_ANALYSIS_COST_ESTIMATES_H_

#include <cstddef>

#include "analysis/rate_pass.h"

namespace cwf {

class Actor;
class CostModel;
class Workflow;

namespace analysis {

/// \brief Events produced per firing: the sum of ProductionRate over the
/// actor's *connected* output ports.
double OutputEventsPerFiring(const Workflow& workflow, const Actor* actor);

/// \brief Modeled duration of one firing in microseconds, including the
/// director-specific per-firing overhead (scheduled dispatch for "SCWF",
/// per-event synchronization for "PNCWF").
double EstimatedFiringCostMicros(const Workflow& workflow, const Actor* actor,
                                 const RateModel& model,
                                 const CostModel& costs,
                                 const std::string& target_director);

/// \brief Upper bound on sustainable firings per second (1e6 / firing cost).
double ServiceRatePerSecond(const Workflow& workflow, const Actor* actor,
                            const RateModel& model, const CostModel& costs,
                            const std::string& target_director);

/// \brief Fraction of one processor the actor demands in steady state:
/// firings.max * firing cost. +inf when the firing rate is unbounded.
double Utilization(const Workflow& workflow, const Actor* actor,
                   const RateModel& model, const CostModel& costs,
                   const std::string& target_director);

}  // namespace analysis
}  // namespace cwf

#endif  // CONFLUENCE_ANALYSIS_COST_ESTIMATES_H_

// Scheduler-configuration pass: validates the STAFiLOS deployment
// parameters (AnalysisOptions::scheduler) against the graph.
//
//   CWF4001  QBS basic quantum must be positive
//   CWF4002  designer priority outside [0, 39] breaks Eq. 1 (q <= 0)
//   CWF4003  designer priority names an actor absent from the workflow
//   CWF4004  QBS max banked epochs must be >= 1
//   CWF4005  RR slice must be positive
//   CWF4006  source interval must be non-negative
//   CWF4007  EDF with no sink actor has no deadline-bearing output
//
// The pass is a no-op when no SchedulerConfig is supplied.

#ifndef CONFLUENCE_ANALYSIS_SCHEDULER_CONFIG_PASS_H_
#define CONFLUENCE_ANALYSIS_SCHEDULER_CONFIG_PASS_H_

#include "analysis/diagnostic.h"
#include "analysis/pass.h"

namespace cwf::analysis {

class SchedulerConfigPass : public AnalysisPass {
 public:
  const char* name() const override { return "scheduler-config"; }

  void Run(const Workflow& workflow, const AnalysisOptions& options,
           DiagnosticBag* diagnostics) const override;
};

}  // namespace cwf::analysis

#endif  // CONFLUENCE_ANALYSIS_SCHEDULER_CONFIG_PASS_H_

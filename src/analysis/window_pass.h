// Window/wave-compatibility pass: cross-port window findings that are legal
// per WindowSpec::Validate() but interact badly with wave provenance or a
// director's timing model.
//
//   CWF3001  actor mixes wave and non-wave windows across its inputs
//   CWF3002  wave window + group-by strands waves split across groups
//   CWF3003  wave window on a fan-in port syncs each channel independently
//   CWF3004  time window with no formation timeout under SCWF (timer-less
//            receivers only close windows on later-event arrival)
//   CWF3005  step > size: events in the gap silently expire

#ifndef CONFLUENCE_ANALYSIS_WINDOW_PASS_H_
#define CONFLUENCE_ANALYSIS_WINDOW_PASS_H_

#include "analysis/diagnostic.h"
#include "analysis/pass.h"

namespace cwf::analysis {

class WindowPass : public AnalysisPass {
 public:
  const char* name() const override { return "window"; }

  void Run(const Workflow& workflow, const AnalysisOptions& options,
           DiagnosticBag* diagnostics) const override;
};

}  // namespace cwf::analysis

#endif  // CONFLUENCE_ANALYSIS_WINDOW_PASS_H_

// Structural analysis pass: a strict superset of Workflow::Validate().
//
// Errors (CWF1001-CWF1004) are graph states no director can execute and
// gate Director::Initialize; warnings (CWF1005-CWF1009) are shape smells —
// dead subgraphs, unconnected inputs, missing sources/sinks — that run but
// almost never mean what the author intended.

#ifndef CONFLUENCE_ANALYSIS_STRUCTURAL_PASS_H_
#define CONFLUENCE_ANALYSIS_STRUCTURAL_PASS_H_

#include "analysis/diagnostic.h"
#include "analysis/pass.h"

namespace cwf::analysis {

class StructuralPass : public AnalysisPass {
 public:
  const char* name() const override { return "structural"; }

  void Run(const Workflow& workflow, const AnalysisOptions& options,
           DiagnosticBag* diagnostics) const override;
};

}  // namespace cwf::analysis

#endif  // CONFLUENCE_ANALYSIS_STRUCTURAL_PASS_H_

// SDF balance-equation solving and static scheduling, as a standalone
// analysis — THE single home of this logic. The SDF director consumes it at
// Initialize; the MoC-admission pass runs it without constructing a
// director, so schedulability is a deployment-time property.
//
// Rates: a producer emits ProductionRate(port) events per firing on each
// channel of that port; a consumer with a tuple-based window of step S on an
// input port absorbs S events per window in steady state, so its per-firing
// demand on that channel is ConsumptionRate(port) * S (consumption-mode
// windows absorb `size` per window instead). Time- and wave-based windows
// have data-dependent rates and are not SDF-admissible.

#ifndef CONFLUENCE_ANALYSIS_SDF_BALANCE_H_
#define CONFLUENCE_ANALYSIS_SDF_BALANCE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "core/workflow.h"

namespace cwf::analysis {

/// \brief Repetition vector plus a sequential firing order realizing it.
struct SdfSolution {
  /// Firings of each actor per schedule iteration.
  std::map<const Actor*, int64_t> repetitions;
  /// Firing order (length = sum of repetitions).
  std::vector<Actor*> schedule;
};

/// \brief Per-firing event demand of the consumer side of a channel.
int64_t SdfChannelDemand(const ChannelSpec& channel);

/// \brief Input ports whose window unit is not tuple-based — i.e. whose
/// consumption rate is data-dependent, making the graph SDF-inadmissible.
std::vector<const InputPort*> DataDependentRatePorts(const Workflow& workflow);

/// \brief Solve the balance equations into the smallest integer repetition
/// vector. InvalidArgument on non-positive or inconsistent rates.
Result<std::map<const Actor*, int64_t>> SolveSdfRepetitions(
    const Workflow& workflow);

/// \brief Order `repetitions` into a sequential schedule via symbolic token
/// simulation. FailedPrecondition when the graph deadlocks (a cycle with no
/// initial tokens cannot be scheduled).
Result<std::vector<Actor*>> CompileSdfSchedule(
    const Workflow& workflow,
    const std::map<const Actor*, int64_t>& repetitions);

/// \brief Full admission: window-rate check, balance equations, schedule.
Result<SdfSolution> SolveSdf(const Workflow& workflow);

}  // namespace cwf::analysis

#endif  // CONFLUENCE_ANALYSIS_SDF_BALANCE_H_

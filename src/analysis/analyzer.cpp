#include "analysis/analyzer.h"

#include <algorithm>
#include <utility>

#include "analysis/boundedness_pass.h"
#include "analysis/liveness_pass.h"
#include "analysis/moc_admission_pass.h"
#include "analysis/rate_pass.h"
#include "analysis/scheduler_config_pass.h"
#include "analysis/schema_pass.h"
#include "analysis/structural_pass.h"
#include "analysis/window_pass.h"
#include "core/composite_actor.h"
#include "core/workflow.h"

namespace cwf::analysis {

std::string ActorLocation(const AnalysisOptions& options,
                          const std::string& actor_name) {
  if (options.location_prefix.empty()) {
    return actor_name;
  }
  return options.location_prefix + "/" + actor_name;
}

Analyzer::Analyzer() {
  passes_.push_back(std::make_unique<StructuralPass>());
  passes_.push_back(std::make_unique<MocAdmissionPass>());
  passes_.push_back(std::make_unique<WindowPass>());
  passes_.push_back(std::make_unique<SchedulerConfigPass>());
  passes_.push_back(std::make_unique<RatePass>());
  passes_.push_back(std::make_unique<BoundednessPass>());
  passes_.push_back(std::make_unique<LivenessPass>());
  passes_.push_back(std::make_unique<SchemaPass>());
}

void Analyzer::AddPass(std::unique_ptr<AnalysisPass> pass) {
  passes_.push_back(std::move(pass));
}

void Analyzer::AnalyzeLevel(const Workflow& wf, const AnalysisOptions& options,
                            const std::vector<std::string>& outer_names,
                            DiagnosticBag* diags) const {
  for (const auto& pass : passes_) {
    pass->Run(wf, options, diags);
  }

  if (!options.recurse_composites) {
    return;
  }

  // Names visible to inner levels: everything in scope so far plus this
  // level's actors. Shadowing is legal (levels are separate namespaces)
  // but makes priority maps and diagnostics ambiguous — hence CWF1001 as
  // a warning across levels.
  std::vector<std::string> scope = outer_names;
  for (const auto& actor : wf.actors()) {
    scope.push_back(actor->name());
  }

  for (const auto& actor : wf.actors()) {
    const auto* composite = dynamic_cast<const CompositeActor*>(actor.get());
    if (composite == nullptr) {
      continue;
    }
    AnalysisOptions inner = options;
    inner.target_director = composite->inner_director()->kind();
    inner.scheduler.reset();  // scheduler deployment applies to the top only
    inner.location_prefix =
        ActorLocation(options, actor->name());

    for (const auto& inner_actor : composite->inner()->actors()) {
      if (std::find(outer_names.begin(), outer_names.end(),
                    inner_actor->name()) != outer_names.end() ||
          std::any_of(wf.actors().begin(), wf.actors().end(),
                      [&](const auto& outer) {
                        return outer->name() == inner_actor->name();
                      })) {
        diags->Warning(
            "CWF1001",
            ActorLocation(inner, inner_actor->name()),
            "inner actor '" + inner_actor->name() +
                "' shadows an actor of the same name at an outer level; "
                "priority maps and diagnostics become ambiguous",
            inner_actor.get());
      }
    }

    AnalyzeLevel(*composite->inner(), inner, scope, diags);
  }
}

DiagnosticBag Analyzer::Analyze(const Workflow& wf,
                                const AnalysisOptions& options) const {
  AnalysisOptions effective = options;
  if (effective.location_prefix.empty()) {
    effective.location_prefix = wf.name();
  }
  DiagnosticBag diags;
  AnalyzeLevel(wf, effective, {}, &diags);
  return diags;
}

std::vector<DirectorAdmission> ComputeAdmissionMatrix(const Workflow& wf) {
  static const char* kKinds[] = {"PNCWF", "SCWF", "SDF", "DDF"};
  const Analyzer analyzer;
  std::vector<DirectorAdmission> matrix;
  for (const char* kind : kKinds) {
    AnalysisOptions options;
    options.target_director = kind;
    const DiagnosticBag diags = analyzer.Analyze(wf, options);
    DirectorAdmission entry;
    entry.director = kind;
    entry.admissible = !diags.HasErrors();
    if (!entry.admissible) {
      for (const Diagnostic& d : diags.all()) {
        if (d.severity == Severity::kError) {
          entry.reason = d.code + " at " + d.location + ": " + d.message;
          break;
        }
      }
    }
    matrix.push_back(std::move(entry));
  }
  return matrix;
}

Status VerifyForDirector(const Workflow& wf,
                         const std::string& director_kind) {
  AnalysisOptions options;
  options.target_director = director_kind;
  const Analyzer analyzer;
  const DiagnosticBag diags = analyzer.Analyze(wf, options);
  for (const Diagnostic& d : diags.all()) {
    if (d.severity == Severity::kError) {
      return Status::InvalidArgument("static analysis rejected workflow: [" +
                                     d.code + "] at " + d.location + ": " +
                                     d.message);
    }
  }
  return Status::OK();
}

}  // namespace cwf::analysis

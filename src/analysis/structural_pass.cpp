#include "analysis/structural_pass.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/workflow.h"

namespace cwf::analysis {
namespace {

/// Actors with at least one incoming channel.
std::set<const Actor*> ActorsWithConnectedInputs(const Workflow& wf) {
  std::set<const Actor*> out;
  for (const ChannelSpec& ch : wf.channels()) {
    out.insert(ch.to->actor());
  }
  return out;
}

/// Input ports with at least one incoming channel.
std::set<const InputPort*> ConnectedInputPorts(const Workflow& wf) {
  std::set<const InputPort*> out;
  for (const ChannelSpec& ch : wf.channels()) {
    out.insert(ch.to);
  }
  return out;
}

}  // namespace

void StructuralPass::Run(const Workflow& wf, const AnalysisOptions& original,
                         DiagnosticBag* diags) const {
  AnalysisOptions options = original;
  if (options.location_prefix.empty()) {
    options.location_prefix = wf.name();
  }
  const std::string& wf_loc = options.location_prefix;

  if (wf.actors().empty()) {
    diags->Warning("CWF1009", wf_loc, "workflow has no actors");
    return;
  }

  // CWF1001: unique actor names within this level. Unreachable through the
  // public API (AdoptActor aborts on duplicates) but kept so Validate() can
  // never silently regress if construction paths change.
  std::set<std::string> names;
  for (const auto& actor : wf.actors()) {
    if (!names.insert(actor->name()).second) {
      diags->Error("CWF1001", ActorLocation(options, actor->name()),
                   "duplicate actor name '" + actor->name() + "'",
                   actor.get());
    }

    // CWF1002: every input port's window spec must validate, connected or
    // not (a receiver is built from it the moment a channel is wired).
    for (const auto& port : actor->input_ports()) {
      const Status spec_status = port->spec().Validate();
      if (!spec_status.ok()) {
        diags->Error("CWF1002",
                     ActorLocation(options, actor->name()) + "." +
                         port->name(),
                     "invalid window spec: " + spec_status.message(),
                     actor.get());
      }
    }
  }

  // Channel-level checks.
  std::map<std::pair<const InputPort*, size_t>, const ChannelSpec*> slots;
  for (const ChannelSpec& ch : wf.channels()) {
    CWF_CHECK_MSG(ch.from != nullptr && ch.to != nullptr,
                  "null port in channel list of workflow " << wf.name());

    // CWF1003: self-loops deadlock every director (the actor waits on its
    // own output).
    if (ch.from->actor() == ch.to->actor()) {
      diags->Error("CWF1003",
                   ActorLocation(options, ch.from->actor()->name()),
                   "self-loop channel " + ch.from->FullName() + " -> " +
                       ch.to->FullName(),
                   ch.from->actor());
    }

    // CWF1004: at most one channel per (input port, slot); a second wiring
    // would silently replace the first receiver at initialization.
    const auto key = std::make_pair(ch.to, ch.to_channel);
    auto [it, inserted] = slots.emplace(key, &ch);
    if (!inserted) {
      diags->Error(
          "CWF1004",
          ActorLocation(options, ch.to->actor()->name()) + "." +
              ch.to->name() + "[" + std::to_string(ch.to_channel) + "]",
          "channel slot wired twice: " + it->second->from->FullName() +
              " and " + ch.from->FullName() + " both feed " +
              ch.to->FullName() + " channel " +
              std::to_string(ch.to_channel),
          ch.to->actor());
    }
  }

  // CWF1005: an actor with some inputs connected and others not — the
  // unconnected port never gates firing and can never receive data.
  const std::set<const InputPort*> connected_ports = ConnectedInputPorts(wf);
  const std::set<const Actor*> fed_actors = ActorsWithConnectedInputs(wf);
  for (const auto& actor : wf.actors()) {
    if (fed_actors.count(actor.get()) == 0) {
      continue;  // pure source (or isolated): no partially-wired inputs
    }
    for (const auto& port : actor->input_ports()) {
      if (connected_ports.count(port.get()) == 0) {
        diags->Warning(
            "CWF1005",
            ActorLocation(options, actor->name()) + "." + port->name(),
            "input port '" + port->name() +
                "' is unconnected while other inputs of '" + actor->name() +
                "' are wired; it will never receive data and never gates "
                "firing",
            actor.get());
      }
    }
  }

  // CWF1006: reachability from sources. A source is an actor with no
  // connected inputs; actors only fed from within a cycle are dead.
  std::set<const Actor*> reachable;
  std::vector<const Actor*> frontier;
  for (const auto& actor : wf.actors()) {
    if (fed_actors.count(actor.get()) == 0) {
      reachable.insert(actor.get());
      frontier.push_back(actor.get());
    }
  }
  while (!frontier.empty()) {
    const Actor* a = frontier.back();
    frontier.pop_back();
    for (const Actor* next : wf.DownstreamOf(a)) {
      if (reachable.insert(next).second) {
        frontier.push_back(next);
      }
    }
  }
  for (const auto& actor : wf.actors()) {
    if (reachable.count(actor.get()) == 0) {
      diags->Warning("CWF1006", ActorLocation(options, actor->name()),
                     "actor '" + actor->name() +
                         "' is unreachable from every source actor",
                     actor.get());
    }
  }

  // CWF1007 / CWF1008: source/sink sanity.
  if (fed_actors.size() == wf.actors().size()) {
    diags->Warning("CWF1007", wf_loc,
                   "workflow has no source actor: every actor has connected "
                   "inputs, so no external data can enter");
  }
  bool has_sink = false;
  for (const auto& actor : wf.actors()) {
    const bool has_output = std::any_of(
        wf.channels().begin(), wf.channels().end(),
        [&](const ChannelSpec& ch) { return ch.from->actor() == actor.get(); });
    if (!has_output) {
      has_sink = true;
      break;
    }
  }
  if (!has_sink) {
    diags->Warning("CWF1008", wf_loc,
                   "workflow has no sink actor: every actor feeds another "
                   "actor, so no result ever leaves the graph");
  }
}

}  // namespace cwf::analysis

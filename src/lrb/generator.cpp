#include "lrb/generator.h"

#include <algorithm>
#include <vector>

namespace cwf::lrb {
namespace {

constexpr double kFeetPerSecPerMph = 5280.0 / 3600.0;

struct Car {
  int64_t id;
  int64_t xway;
  int64_t dir;
  int64_t lane;
  double pos;    // feet
  double speed;  // mph
  int64_t next_report;
  int64_t stopped_until = -1;  // -1: moving
  double resume_speed = 0;
};

}  // namespace

Generator::Generator(GeneratorOptions options) : options_(options) {}

double Generator::TargetRate(double t_seconds) const {
  return std::min(options_.max_rate,
                  options_.initial_rate +
                      options_.rate_slope_per_sec * t_seconds);
}

Trace Generator::Generate() {
  Rng rng(options_.seed);
  report_ = GeneratorReport();
  Trace trace;

  const int64_t duration_s = options_.duration / Seconds(1);
  const int num_xways = std::max<int>(1, static_cast<int>(options_.l_rating));
  const int num_dirs = options_.l_rating < 1.0 ? 1 : 2;

  std::vector<Car> cars;
  int64_t next_car_id = 1;
  double accident_countdown = rng.NextExponential(options_.mean_accident_gap);

  for (int64_t t = 0; t < duration_s; ++t) {
    // --- keep the fleet sized so the report rate tracks the ramp ---
    const size_t target_cars = static_cast<size_t>(
        TargetRate(static_cast<double>(t)) *
        static_cast<double>(kReportIntervalSeconds));
    while (cars.size() < target_cars) {
      Car car;
      car.id = next_car_id++;
      car.xway = static_cast<int64_t>(rng.NextBounded(num_xways));
      car.dir = static_cast<int64_t>(rng.NextBounded(num_dirs));
      car.lane = rng.NextInRange(1, 3);
      // Enter at a random segment so traffic covers the expressway from the
      // start of the run.
      car.pos = static_cast<double>(
          rng.NextInRange(0, kSegmentsPerXway * kFeetPerSegment - 1));
      car.speed = std::clamp(
          rng.NextGaussian(options_.mean_speed, options_.speed_stddev), 10.0,
          100.0);
      car.next_report = t + rng.NextInRange(0, kReportIntervalSeconds - 1);
      cars.push_back(car);
      ++report_.cars_spawned;
    }

    // --- occasionally crash a pair of cars ---
    accident_countdown -= 1.0;
    if (accident_countdown <= 0 && cars.size() >= 2) {
      accident_countdown = rng.NextExponential(options_.mean_accident_gap);
      const size_t a = rng.NextBounded(cars.size());
      size_t b = rng.NextBounded(cars.size());
      if (b == a) {
        b = (b + 1) % cars.size();
      }
      Car& first = cars[a];
      Car& second = cars[b];
      if (first.stopped_until < 0 && second.stopped_until < 0) {
        // Park the second car exactly on top of the first (same xway,
        // direction, lane, position) — the accident-detection window keys
        // on identical positions of distinct cars.
        second.xway = first.xway;
        second.dir = first.dir;
        second.lane = first.lane;
        second.pos = first.pos;
        first.resume_speed = first.speed;
        second.resume_speed = second.speed;
        first.speed = 0;
        second.speed = 0;
        first.stopped_until = t + options_.accident_duration;
        second.stopped_until = t + options_.accident_duration;
        ++report_.accidents_injected;
      }
    }

    // --- reports and movement ---
    for (Car& car : cars) {
      if (car.stopped_until >= 0 && t >= car.stopped_until) {
        car.stopped_until = -1;
        car.speed = car.resume_speed;
      }
      if (t >= car.next_report) {
        PositionReport pr;
        pr.time = t;
        pr.car = car.id;
        pr.speed = car.speed;
        pr.xway = car.xway;
        pr.lane = car.lane;
        pr.dir = car.dir;
        pr.pos = static_cast<int64_t>(car.pos);
        pr.seg = pr.pos / kFeetPerSegment;
        const Timestamp arrival =
            Timestamp::Seconds(static_cast<double>(t) + rng.NextDouble());
        trace.Add(arrival, pr.ToToken());
        ++report_.position_reports;
        car.next_report += kReportIntervalSeconds;
      }
      if (car.stopped_until < 0) {
        car.pos += car.speed * kFeetPerSecPerMph;
      }
    }

    // --- retire cars that left the expressway ---
    cars.erase(
        std::remove_if(cars.begin(), cars.end(),
                       [](const Car& c) {
                         return c.pos >=
                                static_cast<double>(kSegmentsPerXway *
                                                    kFeetPerSegment);
                       }),
        cars.end());
  }

  trace.Sort();
  return trace;
}

}  // namespace cwf::lrb

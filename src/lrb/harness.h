// Experiment harness: run the Linear Road workflow under a chosen
// director/scheduler on the virtual clock and collect the metrics the
// paper's evaluation section reports.

#ifndef CONFLUENCE_LRB_HARNESS_H_
#define CONFLUENCE_LRB_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "lrb/generator.h"
#include "obs/metrics.h"
#include "lrb/workflow_builder.h"
#include "stafilos/edf_scheduler.h"
#include "stafilos/fifo_scheduler.h"
#include "stafilos/qbs_scheduler.h"
#include "stafilos/rb_scheduler.h"
#include "stafilos/rr_scheduler.h"

namespace cwf::lrb {

/// \brief The execution models compared in the paper's Figure 8 plus the
/// extension policies.
enum class SchedulerKind { kQBS, kRR, kRB, kFIFO, kEDF, kPNCWF };

const char* SchedulerKindName(SchedulerKind kind);

/// \brief The calibrated cost model (see DESIGN.md "Virtual-time
/// methodology"): actor invocation costs plus the thread-vs-scheduled
/// dispatch overheads that set the capacity gap of Figure 8.
CostModel DefaultLRBCostModel();

/// \brief One experiment configuration.
struct ExperimentOptions {
  SchedulerKind scheduler = SchedulerKind::kQBS;
  GeneratorOptions workload;
  QBSOptions qbs;
  RROptions rr;
  RBOptions rb;
  FIFOOptions fifo;
  EDFOptions edf;
  CostModel cost_model = DefaultLRBCostModel();
  /// Package accident detection as a sub-workflow (paper structure).
  bool hierarchical = true;
  /// Extra virtual time after the last tuple for draining.
  Duration drain_slack = Seconds(30);
  /// Response-time curve bucket width.
  Duration bucket = Seconds(10);
};

/// \brief Everything a run produces.
struct ExperimentResult {
  SchedulerKind scheduler;
  Status status;

  /// The Figure 6/7/8 curve: avg response time at TollNotification vs time.
  std::vector<ResponseTimeSeries::Point> toll_curve;

  double toll_avg_response_s = 0;
  double toll_p95_response_s = 0;
  double toll_max_response_s = 0;
  size_t toll_notifications = 0;

  double accident_avg_response_s = 0;
  size_t accident_notifications = 0;
  double accident_fraction_under_5s = 0;  ///< LRB's 5-second requirement

  /// Per-query-type response-time histograms (µs), log-bucketed like the
  /// engine's latency metrics; the bench JSON export renders these.
  obs::HistogramSnapshot toll_response_hist;
  obs::HistogramSnapshot accident_response_hist;

  size_t reports_generated = 0;
  size_t accidents_injected = 0;
  uint64_t accidents_recorded = 0;
  uint64_t tolls_calculated = 0;
  uint64_t total_firings = 0;
  uint64_t director_iterations = 0;

  /// \brief First curve time (seconds) from which the average response time
  /// stays >= `threshold_s` to the end of the run; +inf if it never thrashes.
  double ThrashTimeSeconds(double threshold_s) const;
};

/// \brief Construct the scheduler instance an option set describes
/// (kPNCWF has no scheduler — returns nullptr).
std::unique_ptr<AbstractScheduler> MakeScheduler(
    const ExperimentOptions& options);

/// \brief Generate the workload, build the workflow, run it under the
/// configured execution model on a virtual clock, and collect metrics.
Result<ExperimentResult> RunLRBExperiment(const ExperimentOptions& options);

/// \brief Render a result as an aligned table of curve points (benchmark
/// output format).
std::string RenderCurve(const ExperimentResult& result,
                        const std::string& label);

/// \brief Render a result as the BENCH_*.json document: run metadata,
/// headline QoS numbers, and the per-query-type response-time histograms
/// (count/mean/p50/p95/p99/max plus the non-empty log buckets).
std::string RenderBenchJson(const ExperimentResult& result,
                            const std::string& label);

/// \brief Write RenderBenchJson to `path` (conventionally
/// BENCH_<scheduler>.json next to the harness binary).
Status WriteBenchJson(const ExperimentResult& result, const std::string& label,
                      const std::string& path);

}  // namespace cwf::lrb

#endif  // CONFLUENCE_LRB_HARNESS_H_

// Linear Road workload generator.
//
// Substitutes the MIT/Brandeis generator the paper downloads from the
// Linear Road website: a deterministic (seeded) car simulator for L = 0.5
// expressways producing the paper's Figure-5 workload shape — the input
// rate ramps from ~20 to ~200 position reports per second over a
// 600-second run. Cars enter the expressway, report their position every
// 30 seconds, travel at gaussian-distributed speeds, and occasionally crash
// in pairs (both cars emit identical stopped positions for several reports,
// which is exactly what the workflow's stopped-car / accident-detection
// windows look for).

#ifndef CONFLUENCE_LRB_GENERATOR_H_
#define CONFLUENCE_LRB_GENERATOR_H_

#include "common/rng.h"
#include "lrb/types.h"
#include "stream/trace.h"

namespace cwf::lrb {

/// \brief Generator parameters (defaults reproduce the paper's Table 3 /
/// Figure 5 setup).
struct GeneratorOptions {
  /// Expressway rating; 0.5 = one expressway, one direction.
  double l_rating = 0.5;
  /// Experiment duration.
  Duration duration = Seconds(600);
  /// Input rate ramp: rate(t) = initial + slope * t (reports/second),
  /// capped at max_rate. Defaults match Figure 5 (≈20 at t=0, ≈160 at
  /// 440 s, capped near 200).
  double initial_rate = 20.0;
  double rate_slope_per_sec = 0.32;
  double max_rate = 200.0;
  /// Mean car speed in mph (gaussian, clamped to [10, 100]).
  double mean_speed = 60.0;
  double speed_stddev = 15.0;
  /// Mean seconds between accident injections across the expressway.
  double mean_accident_gap = 90.0;
  /// How long a crashed car pair stays stopped (seconds). Linear Road
  /// crashes block traffic for many minutes; 300 s keeps the accident
  /// "fresh" for the notifier's 60-second recency filter despite the
  /// detection lag of the 4-report stopped-car window.
  int64_t accident_duration = 300;
  /// PRNG seed (runs are bit-reproducible per seed).
  uint64_t seed = 42;
};

/// \brief Summary of what a generated trace contains.
struct GeneratorReport {
  size_t position_reports = 0;
  size_t cars_spawned = 0;
  size_t accidents_injected = 0;
};

/// \brief The car simulator.
class Generator {
 public:
  explicit Generator(GeneratorOptions options = {});

  /// \brief Produce the full position-report trace (sorted by arrival).
  Trace Generate();

  /// \brief Statistics of the last Generate() call.
  const GeneratorReport& report() const { return report_; }

  /// \brief The target input rate at time `t` (for Figure 5).
  double TargetRate(double t_seconds) const;

 private:
  GeneratorOptions options_;
  GeneratorReport report_;
};

}  // namespace cwf::lrb

#endif  // CONFLUENCE_LRB_GENERATOR_H_

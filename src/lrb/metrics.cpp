#include "lrb/metrics.h"

#include <algorithm>
#include <cmath>

namespace cwf::lrb {

void ResponseTimeSeries::Record(Timestamp event_ts, Timestamp completed_at) {
  ScopedLock lock(mutex_);
  samples_.push_back({event_ts, completed_at});
}

size_t ResponseTimeSeries::count() const {
  ScopedLock lock(mutex_);
  return samples_.size();
}

double ResponseTimeSeries::OverallAvgSeconds() const {
  ScopedLock lock(mutex_);
  if (samples_.empty()) {
    return 0;
  }
  double sum = 0;
  for (const Sample& s : samples_) {
    sum += static_cast<double>(s.completed_at - s.event_ts);
  }
  return sum / static_cast<double>(samples_.size()) / 1e6;
}

double ResponseTimeSeries::MaxSeconds() const {
  ScopedLock lock(mutex_);
  Duration max_d = 0;
  for (const Sample& s : samples_) {
    max_d = std::max(max_d, s.completed_at - s.event_ts);
  }
  return static_cast<double>(max_d) / 1e6;
}

double ResponseTimeSeries::PercentileSeconds(double p) const {
  ScopedLock lock(mutex_);
  if (samples_.empty()) {
    return 0;
  }
  std::vector<Duration> durations;
  durations.reserve(samples_.size());
  for (const Sample& s : samples_) {
    durations.push_back(s.completed_at - s.event_ts);
  }
  std::sort(durations.begin(), durations.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(durations.size() - 1);
  return static_cast<double>(durations[static_cast<size_t>(rank)]) / 1e6;
}

double ResponseTimeSeries::FractionUnder(Duration target) const {
  ScopedLock lock(mutex_);
  if (samples_.empty()) {
    return 1.0;
  }
  size_t under = 0;
  for (const Sample& s : samples_) {
    if (s.completed_at - s.event_ts <= target) {
      ++under;
    }
  }
  return static_cast<double>(under) / static_cast<double>(samples_.size());
}

std::vector<ResponseTimeSeries::Point> ResponseTimeSeries::Series(
    Duration bucket) const {
  ScopedLock lock(mutex_);
  std::vector<Point> out;
  if (samples_.empty() || bucket <= 0) {
    return out;
  }
  Timestamp end{0};
  for (const Sample& s : samples_) {
    if (s.completed_at > end) {
      end = s.completed_at;
    }
  }
  const size_t buckets = static_cast<size_t>(end.micros() / bucket) + 1;
  std::vector<double> sums(buckets, 0);
  std::vector<double> maxes(buckets, 0);
  std::vector<size_t> counts(buckets, 0);
  for (const Sample& s : samples_) {
    const size_t b = static_cast<size_t>(s.completed_at.micros() / bucket);
    const double resp = static_cast<double>(s.completed_at - s.event_ts) / 1e6;
    sums[b] += resp;
    maxes[b] = std::max(maxes[b], resp);
    ++counts[b];
  }
  for (size_t b = 0; b < buckets; ++b) {
    if (counts[b] == 0) {
      continue;
    }
    out.push_back({static_cast<double>(b) * static_cast<double>(bucket) / 1e6,
                   sums[b] / static_cast<double>(counts[b]), maxes[b],
                   counts[b]});
  }
  return out;
}

std::vector<int64_t> ResponseTimeSeries::ResponseMicros() const {
  ScopedLock lock(mutex_);
  std::vector<int64_t> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) {
    out.push_back(s.completed_at - s.event_ts);
  }
  return out;
}

OutputActor::OutputActor(std::string name, ResponseTimeSeries* series)
    : Actor(std::move(name)), series_(series) {
  CWF_CHECK(series_ != nullptr);
  in_ = AddInputPort("in");
}

Status OutputActor::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value()) {
    return Status::OK();
  }
  const Timestamp now = ctx_->clock->Now();
  for (const CWEvent& e : w->events) {
    series_->Record(e.timestamp, now);
    ++notifications_;
  }
  return Status::OK();
}

}  // namespace cwf::lrb

// Response-time instrumentation for QoS evaluation.
//
// The paper's figures plot the response time observed at the
// TollNotification output actor over the run: response time of a result is
// the engine time at which the output actor consumes it minus the arrival
// timestamp of the external event (position report) it answers.

#ifndef CONFLUENCE_LRB_METRICS_H_
#define CONFLUENCE_LRB_METRICS_H_

#include <vector>

#include "common/lock_registry.h"
#include "core/actor.h"

namespace cwf::lrb {

/// \brief A recorded series of (event arrival, completion) pairs with
/// time-bucketed aggregation. Thread-safe.
class ResponseTimeSeries {
 public:
  void Record(Timestamp event_ts, Timestamp completed_at);

  size_t count() const;

  /// \brief Mean response time over the whole run, in seconds.
  double OverallAvgSeconds() const;

  /// \brief Maximum response time, in seconds.
  double MaxSeconds() const;

  /// \brief p-th percentile (0..100) response time in seconds.
  double PercentileSeconds(double p) const;

  /// \brief Fraction of results produced within `target` (QoS delay-target
  /// metric).
  double FractionUnder(Duration target) const;

  /// \brief One point of the response-time-vs-time curve.
  struct Point {
    double t_seconds;        ///< bucket start (completion-time axis)
    double avg_response_s;   ///< mean response time in the bucket
    double max_response_s;   ///< max response time in the bucket
    size_t n;                ///< results in the bucket
  };

  /// \brief The curve the paper's Figures 6–8 plot, bucketed by completion
  /// time.
  std::vector<Point> Series(Duration bucket) const;

  /// \brief Every recorded response time in microseconds (insertion order).
  /// Feeds the per-query-type latency histograms of the bench export.
  std::vector<int64_t> ResponseMicros() const;

 private:
  struct Sample {
    Timestamp event_ts;
    Timestamp completed_at;
  };

  mutable OrderedMutex mutex_{"lrb::ResponseTimeSeries::mutex"};
  std::vector<Sample> samples_ CWF_GUARDED_BY(mutex_);
};

/// \brief Terminal output actor that records response times (the paper's
/// TollNotification / AccidentNotificationOut measurement points).
class OutputActor : public Actor {
 public:
  OutputActor(std::string name, ResponseTimeSeries* series);

  InputPort* in() const { return in_; }

  Status Fire() override;

  uint64_t notifications() const { return notifications_; }

 private:
  ResponseTimeSeries* series_;
  InputPort* in_;
  uint64_t notifications_ = 0;
};

}  // namespace cwf::lrb

#endif  // CONFLUENCE_LRB_METRICS_H_

// Linear Road benchmark: tuple types and constants.
//
// Linear Road (Arasu et al., VLDB 2004) simulates variable tolling on the
// expressways of a fictional metropolitan area. Following the paper, only
// the stream-processing aspect is implemented (historical queries are
// excluded): a single feed of car position reports drives accident
// detection/notification, per-segment statistics and toll
// calculation/notification.

#ifndef CONFLUENCE_LRB_TYPES_H_
#define CONFLUENCE_LRB_TYPES_H_

#include <string>

#include "core/schema.h"
#include "core/token.h"

namespace cwf::lrb {

// Field names of the position-report record.
inline constexpr const char* kFieldTime = "time";   // seconds since start
inline constexpr const char* kFieldCar = "car";     // car id
inline constexpr const char* kFieldSpeed = "speed"; // mph
inline constexpr const char* kFieldXway = "xway";   // expressway id
inline constexpr const char* kFieldLane = "lane";   // 0..4 (4 = exit lane)
inline constexpr const char* kFieldDir = "dir";     // 0 = east, 1 = west
inline constexpr const char* kFieldSeg = "seg";     // segment (mile) 0..99
inline constexpr const char* kFieldPos = "pos";     // feet from west end

// Benchmark constants.
inline constexpr int kSegmentsPerXway = 100;
inline constexpr int kFeetPerSegment = 5280;
inline constexpr int kExitLane = 4;
inline constexpr int64_t kReportIntervalSeconds = 30;
/// A car reporting the same position this many consecutive times is stopped.
inline constexpr int kStoppedReportCount = 4;
/// Accident notifications cover this many segments upstream of the crash.
inline constexpr int kAccidentNotifySegments = 4;
/// Toll formula thresholds (from the paper's SQL).
inline constexpr double kTollLavThreshold = 40.0;
inline constexpr int64_t kTollCarsThreshold = 50;

/// \brief A decoded position report.
struct PositionReport {
  int64_t time = 0;  ///< seconds since run start
  int64_t car = 0;
  double speed = 0;
  int64_t xway = 0;
  int64_t lane = 0;
  int64_t dir = 0;
  int64_t seg = 0;
  int64_t pos = 0;

  /// \brief Encode as a record token.
  Token ToToken() const;

  /// \brief Decode from a record token (CHECK-fails on malformed tokens).
  static PositionReport FromToken(const Token& token);

  std::string ToString() const;
};

/// \brief Record layout of a position-report token (for port schemas).
RecordSchema PositionReportSchema();

/// \brief TokenType wrapping PositionReportSchema().
TokenType PositionReportType();

/// \brief Toll formula of the benchmark:
/// 2 * (cars - 50)^2 when LAV < 40 mph, more than 50 cars, and no accident
/// in scope; 0 otherwise.
double ComputeToll(double lav, int64_t cars, bool accident_in_scope);

}  // namespace cwf::lrb

#endif  // CONFLUENCE_LRB_TYPES_H_

#include "lrb/actors.h"

#include <map>
#include <set>

namespace cwf::lrb {
namespace {

using db::AggKind;
using db::ColumnType;
using db::Row;

Token MakeAccidentToken(const PositionReport& a, const PositionReport& b) {
  auto rec = std::make_shared<Record>();
  rec->Set("time", Value(std::max(a.time, b.time)));
  rec->Set("xway", Value(a.xway));
  rec->Set("dir", Value(a.dir));
  rec->Set("seg", Value(a.seg));
  rec->Set("pos", Value(a.pos));
  rec->Set("car1", Value(std::min(a.car, b.car)));
  rec->Set("car2", Value(std::max(a.car, b.car)));
  return Token(RecordPtr(std::move(rec)));
}

// Layouts of the records flowing between the LRB actors (schema pass).
RecordSchema AccidentSchema() {
  RecordSchema s;
  s.Int("time").Int("xway").Int("dir").Int("seg").Int("pos").Int("car1").Int(
      "car2");
  return s;
}

RecordSchema NotificationSchema() {
  RecordSchema s;
  s.Int("car").Int("time").Int("xway").Int("dir").Int("seg");
  return s;
}

RecordSchema AvgsvSchema() {
  RecordSchema s;
  s.Int("car").Int("xway").Int("dir").Int("seg").Int("minute").Double(
      "avg_speed");
  return s;
}

RecordSchema AvgsSchema() {
  RecordSchema s;
  s.Int("xway").Int("dir").Int("seg").Int("minute").Double("lav");
  return s;
}

RecordSchema CarCountSchema() {
  RecordSchema s;
  s.Int("xway").Int("dir").Int("seg").Int("minute").Int("cars");
  return s;
}

RecordSchema TollSchema() {
  RecordSchema s;
  s.Int("car").Int("time").Int("xway").Int("dir").Int("seg").Double("toll");
  return s;
}

}  // namespace

Result<std::shared_ptr<db::Database>> CreateLRBDatabase() {
  auto database = std::make_shared<db::Database>();

  CWF_ASSIGN_OR_RETURN(
      db::Table * stats,
      database->CreateTable(
          kTableSegmentStats,
          db::Schema({{"xway", ColumnType::kInt64},
                      {"dir", ColumnType::kInt64},
                      {"seg", ColumnType::kInt64},
                      {"lav", ColumnType::kDouble},
                      {"cars", ColumnType::kInt64},
                      {"minute", ColumnType::kInt64}})));
  CWF_RETURN_NOT_OK(
      stats->CreateIndex("pk_segment", {"xway", "dir", "seg"}, true));

  CWF_ASSIGN_OR_RETURN(
      db::Table * avg_speed,
      database->CreateTable(
          kTableSegmentAvgSpeed,
          db::Schema({{"xway", ColumnType::kInt64},
                      {"dir", ColumnType::kInt64},
                      {"seg", ColumnType::kInt64},
                      {"minute", ColumnType::kInt64},
                      {"avg_speed", ColumnType::kDouble}})));
  CWF_RETURN_NOT_OK(avg_speed->CreateIndex("idx_segment_minute",
                                           {"xway", "dir", "seg"}, false));

  CWF_ASSIGN_OR_RETURN(
      db::Table * accidents,
      database->CreateTable(
          kTableAccidents,
          db::Schema({{"xway", ColumnType::kInt64},
                      {"dir", ColumnType::kInt64},
                      {"seg", ColumnType::kInt64},
                      {"pos", ColumnType::kInt64},
                      {"car1", ColumnType::kInt64},
                      {"car2", ColumnType::kInt64},
                      {"timestamp", ColumnType::kInt64}})));
  CWF_RETURN_NOT_OK(
      accidents->CreateIndex("idx_xway_dir", {"xway", "dir"}, false));

  return database;
}

Result<bool> AccidentInScope(db::Table* accidents, int64_t xway, int64_t dir,
                             int64_t seg, int64_t since_seconds) {
  // The paper's proximity predicate (its toll SQL): for dir==1 the car's
  // segment lies in [accident, accident+4], i.e. the accident is in
  // [seg-4, seg]; for dir==0 the accident is in [seg, seg+4] — four
  // segments down the road — and registered within the last minute.
  const int64_t lo = dir == 1 ? seg - kAccidentNotifySegments : seg;
  const int64_t hi = dir == 1 ? seg : seg + kAccidentNotifySegments;
  auto pred = db::And({db::Eq("xway", Value(xway)), db::Eq("dir", Value(dir)),
                       db::Ge("seg", Value(lo)), db::Le("seg", Value(hi)),
                       db::Ge("timestamp", Value(since_seconds))});
  auto count = accidents->Aggregate(AggKind::kCount, "", pred);
  if (!count.ok()) {
    return count.status();
  }
  return count.value().AsInt() > 0;
}

// ---------------------------------------------------------------------------
// Accident detection and notification
// ---------------------------------------------------------------------------

StoppedCarDetector::StoppedCarDetector(std::string name)
    : Actor(std::move(name)) {
  in_ = AddInputPort(
      "in", WindowSpec::Tuples(kStoppedReportCount, 1).GroupBy({kFieldCar}));
  out_ = AddOutputPort("out");
  in_->set_required_schema(PositionReportType());
  out_->set_schema(PositionReportType());  // forwards the first stopped report
}

Status StoppedCarDetector::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value() ||
      w->size() < static_cast<size_t>(kStoppedReportCount)) {
    return Status::OK();
  }
  const PositionReport first = PositionReport::FromToken(w->events[0].token);
  if (first.lane == kExitLane) {
    return Status::OK();
  }
  for (size_t i = 1; i < w->size(); ++i) {
    const PositionReport r = PositionReport::FromToken(w->events[i].token);
    if (r.pos != first.pos || r.lane != first.lane || r.xway != first.xway ||
        r.dir != first.dir) {
      return Status::OK();
    }
  }
  // Stopped: forward the first of the four reports.
  Send(out_, w->events[0].token);
  return Status::OK();
}

AccidentDetector::AccidentDetector(std::string name) : Actor(std::move(name)) {
  in_ = AddInputPort("in",
                     WindowSpec::Tuples(2, 1).GroupBy(
                         {kFieldXway, kFieldDir, kFieldSeg, kFieldPos}));
  out_ = AddOutputPort("out");
  in_->set_required_schema(PositionReportType());
  out_->set_schema(TokenType::Record(AccidentSchema()));
}

Status AccidentDetector::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value() || w->size() < 2) {
    return Status::OK();
  }
  const PositionReport a = PositionReport::FromToken(w->events[0].token);
  const PositionReport b = PositionReport::FromToken(w->events[1].token);
  if (a.car == b.car || a.lane == kExitLane || b.lane == kExitLane) {
    return Status::OK();
  }
  Send(out_, MakeAccidentToken(a, b));
  return Status::OK();
}

InsertAccident::InsertAccident(std::string name, db::Database* database)
    : Actor(std::move(name)), database_(database) {
  CWF_CHECK(database_ != nullptr);
  in_ = AddInputPort("in");
  in_->set_required_schema(TokenType::Record(AccidentSchema()));
}

Status InsertAccident::Initialize(ExecutionContext* ctx) {
  CWF_RETURN_NOT_OK(Actor::Initialize(ctx));
  CWF_ASSIGN_OR_RETURN(table_, database_->GetTable(kTableAccidents));
  return Status::OK();
}

Status InsertAccident::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value()) {
    return Status::OK();
  }
  for (const CWEvent& e : w->events) {
    const RecordPtr& rec = e.token.AsRecord();
    // Bookkeeping timestamp = detection time: the arrival of the report
    // that closed the stopped-car window (the CWEvent envelope), not the
    // 90-second-old first report inside it — otherwise the notifier's
    // 60-second recency filter can never match.
    const int64_t detected_at = std::max(
        rec->GetOr("time", Value(int64_t{0})).AsInt(),
        static_cast<int64_t>(e.timestamp.seconds()));
    Row row = {rec->GetOr("xway", Value(0)), rec->GetOr("dir", Value(0)),
               rec->GetOr("seg", Value(0)), rec->GetOr("pos", Value(0)),
               rec->GetOr("car1", Value(0)), rec->GetOr("car2", Value(0)),
               Value(detected_at)};
    auto upserted =
        table_->Upsert({"xway", "dir", "seg", "car1", "car2"}, std::move(row));
    if (!upserted.ok()) {
      return upserted.status();
    }
    if (!upserted.value()) {
      ++recorded_;  // a genuinely new incident
    }
  }
  return Status::OK();
}

AccidentNotifier::AccidentNotifier(std::string name, db::Database* database)
    : Actor(std::move(name)), database_(database) {
  CWF_CHECK(database_ != nullptr);
  in_ = AddInputPort("in");
  out_ = AddOutputPort("out");
  in_->set_required_schema(PositionReportType());
  out_->set_schema(TokenType::Record(NotificationSchema()));
}

Status AccidentNotifier::Initialize(ExecutionContext* ctx) {
  CWF_RETURN_NOT_OK(Actor::Initialize(ctx));
  CWF_ASSIGN_OR_RETURN(table_, database_->GetTable(kTableAccidents));
  return Status::OK();
}

Status AccidentNotifier::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value()) {
    return Status::OK();
  }
  for (const CWEvent& e : w->events) {
    const PositionReport r = PositionReport::FromToken(e.token);
    if (r.lane == kExitLane) {
      continue;
    }
    auto hit = AccidentInScope(table_, r.xway, r.dir, r.seg, r.time - 60);
    if (!hit.ok()) {
      return hit.status();
    }
    if (hit.value()) {
      auto rec = std::make_shared<Record>();
      rec->Set("car", Value(r.car));
      rec->Set("time", Value(r.time));
      rec->Set("xway", Value(r.xway));
      rec->Set("dir", Value(r.dir));
      rec->Set("seg", Value(r.seg));
      Send(out_, Token(RecordPtr(std::move(rec))));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Segment statistics
// ---------------------------------------------------------------------------

AvgsvActor::AvgsvActor(std::string name) : Actor(std::move(name)) {
  in_ = AddInputPort(
      "in", WindowSpec::Time(Seconds(60), Seconds(60))
                .GroupBy({kFieldCar, kFieldXway, kFieldDir, kFieldSeg})
                .DeleteUsedEvents(true));
  out_ = AddOutputPort("out");
  in_->set_required_schema(PositionReportType());
  out_->set_schema(TokenType::Record(AvgsvSchema()));
}

Status AvgsvActor::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value() || w->empty()) {
    return Status::OK();
  }
  double sum = 0;
  for (const CWEvent& e : w->events) {
    sum += e.token.Field(kFieldSpeed).AsDouble();
  }
  const PositionReport r = PositionReport::FromToken(w->events[0].token);
  auto rec = std::make_shared<Record>();
  rec->Set("car", Value(r.car));
  rec->Set("xway", Value(r.xway));
  rec->Set("dir", Value(r.dir));
  rec->Set("seg", Value(r.seg));
  rec->Set("minute", Value(r.time / 60));
  rec->Set("avg_speed", Value(sum / static_cast<double>(w->size())));
  Send(out_, Token(RecordPtr(std::move(rec))));
  return Status::OK();
}

AvgsActor::AvgsActor(std::string name, db::Database* database)
    : Actor(std::move(name)), database_(database) {
  CWF_CHECK(database_ != nullptr);
  in_ = AddInputPort("in", WindowSpec::Time(Seconds(60), Seconds(60))
                               .GroupBy({"xway", "dir", "seg"})
                               .DeleteUsedEvents(true));
  out_ = AddOutputPort("out");
  in_->set_required_schema(TokenType::Record(AvgsvSchema()));
  out_->set_schema(TokenType::Record(AvgsSchema()));
}

Status AvgsActor::Initialize(ExecutionContext* ctx) {
  CWF_RETURN_NOT_OK(Actor::Initialize(ctx));
  CWF_ASSIGN_OR_RETURN(avg_table_, database_->GetTable(kTableSegmentAvgSpeed));
  CWF_ASSIGN_OR_RETURN(stats_table_, database_->GetTable(kTableSegmentStats));
  return Status::OK();
}

Status AvgsActor::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value() || w->empty()) {
    return Status::OK();
  }
  double sum = 0;
  int64_t minute = 0;
  for (const CWEvent& e : w->events) {
    sum += e.token.Field("avg_speed").AsDouble();
    minute = std::max(minute, e.token.Field("minute").AsInt());
  }
  const double avg = sum / static_cast<double>(w->size());
  const RecordPtr& first = w->events[0].token.AsRecord();
  const int64_t xway = first->GetOr("xway", Value(0)).AsInt();
  const int64_t dir = first->GetOr("dir", Value(0)).AsInt();
  const int64_t seg = first->GetOr("seg", Value(0)).AsInt();

  // Record this minute's segment average.
  auto ins = avg_table_->Insert(
      {Value(xway), Value(dir), Value(seg), Value(minute), Value(avg)});
  if (!ins.ok()) {
    return ins.status();
  }

  // LAV = average of the per-minute averages over the last five minutes.
  auto lav = avg_table_->Aggregate(
      AggKind::kAvg, "avg_speed",
      db::And({db::Eq("xway", Value(xway)), db::Eq("dir", Value(dir)),
               db::Eq("seg", Value(seg)),
               db::Ge("minute", Value(minute - 4))}));
  if (!lav.ok()) {
    return lav.status();
  }
  const double lav_value = lav.value().is_null() ? avg : lav.value().AsDouble();

  // Refresh segmentStatistics, keeping the existing car count.
  auto existing = stats_table_->SelectOne(
      db::And({db::Eq("xway", Value(xway)), db::Eq("dir", Value(dir)),
               db::Eq("seg", Value(seg))}));
  if (!existing.ok()) {
    return existing.status();
  }
  const Value cars = existing.value().has_value() ? (*existing.value())[4]
                                                  : Value(int64_t{0});
  auto upsert = stats_table_->Upsert(
      {"xway", "dir", "seg"},
      {Value(xway), Value(dir), Value(seg), Value(lav_value), cars,
       Value(minute)});
  if (!upsert.ok()) {
    return upsert.status();
  }

  auto rec = std::make_shared<Record>();
  rec->Set("xway", Value(xway));
  rec->Set("dir", Value(dir));
  rec->Set("seg", Value(seg));
  rec->Set("minute", Value(minute));
  rec->Set("lav", Value(lav_value));
  Send(out_, Token(RecordPtr(std::move(rec))));
  return Status::OK();
}

CarCountActor::CarCountActor(std::string name, db::Database* database)
    : Actor(std::move(name)), database_(database) {
  CWF_CHECK(database_ != nullptr);
  in_ = AddInputPort("in", WindowSpec::Time(Seconds(60), Seconds(60))
                               .GroupBy({kFieldXway, kFieldDir, kFieldSeg})
                               .DeleteUsedEvents(true));
  out_ = AddOutputPort("out");
  in_->set_required_schema(PositionReportType());
  out_->set_schema(TokenType::Record(CarCountSchema()));
}

Status CarCountActor::Initialize(ExecutionContext* ctx) {
  CWF_RETURN_NOT_OK(Actor::Initialize(ctx));
  CWF_ASSIGN_OR_RETURN(stats_table_, database_->GetTable(kTableSegmentStats));
  return Status::OK();
}

Status CarCountActor::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value() || w->empty()) {
    return Status::OK();
  }
  std::set<int64_t> cars;
  int64_t minute = 0;
  for (const CWEvent& e : w->events) {
    cars.insert(e.token.Field(kFieldCar).AsInt());
    minute = std::max(minute, e.token.Field(kFieldTime).AsInt() / 60);
  }
  const PositionReport r = PositionReport::FromToken(w->events[0].token);
  const int64_t count = static_cast<int64_t>(cars.size());

  // Keep the existing LAV; refresh the car count of the (previous) minute.
  auto existing = stats_table_->SelectOne(
      db::And({db::Eq("xway", Value(r.xway)), db::Eq("dir", Value(r.dir)),
               db::Eq("seg", Value(r.seg))}));
  if (!existing.ok()) {
    return existing.status();
  }
  const Value lav = existing.value().has_value() ? (*existing.value())[3]
                                                 : Value(100.0);
  auto upsert = stats_table_->Upsert(
      {"xway", "dir", "seg"},
      {Value(r.xway), Value(r.dir), Value(r.seg), lav, Value(count),
       Value(minute)});
  if (!upsert.ok()) {
    return upsert.status();
  }

  auto rec = std::make_shared<Record>();
  rec->Set("xway", Value(r.xway));
  rec->Set("dir", Value(r.dir));
  rec->Set("seg", Value(r.seg));
  rec->Set("minute", Value(minute));
  rec->Set("cars", Value(count));
  Send(out_, Token(RecordPtr(std::move(rec))));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Toll calculation
// ---------------------------------------------------------------------------

TollCalculator::TollCalculator(std::string name, db::Database* database)
    : Actor(std::move(name)), database_(database) {
  CWF_CHECK(database_ != nullptr);
  in_ = AddInputPort("in", WindowSpec::Tuples(2, 1).GroupBy({kFieldCar}));
  out_ = AddOutputPort("out");
  in_->set_required_schema(PositionReportType());
  out_->set_schema(TokenType::Record(TollSchema()));
}

Status TollCalculator::Initialize(ExecutionContext* ctx) {
  CWF_RETURN_NOT_OK(Actor::Initialize(ctx));
  CWF_ASSIGN_OR_RETURN(stats_table_, database_->GetTable(kTableSegmentStats));
  CWF_ASSIGN_OR_RETURN(accidents_table_,
                       database_->GetTable(kTableAccidents));
  return Status::OK();
}

Status TollCalculator::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value() || w->size() < 2) {
    return Status::OK();
  }
  const PositionReport prev = PositionReport::FromToken(w->events[0].token);
  const PositionReport curr = PositionReport::FromToken(w->events[1].token);
  if (prev.seg == curr.seg && prev.xway == curr.xway &&
      prev.dir == curr.dir) {
    return Status::OK();  // toll is initiated only on a segment switch
  }

  // The paper's toll SQL against segmentStatistics + accidentInSegment.
  auto row = stats_table_->SelectOne(
      db::And({db::Eq("xway", Value(curr.xway)), db::Eq("dir", Value(curr.dir)),
               db::Eq("seg", Value(curr.seg))}));
  if (!row.ok()) {
    return row.status();
  }
  double lav = 100.0;
  int64_t cars = 0;
  if (row.value().has_value()) {
    const Row& r = *row.value();
    lav = r[3].is_null() ? 100.0 : r[3].AsDouble();
    cars = r[4].is_null() ? 0 : r[4].AsInt();
  }
  auto accident =
      AccidentInScope(accidents_table_, curr.xway, curr.dir, curr.seg,
                      curr.time - 60);
  if (!accident.ok()) {
    return accident.status();
  }
  const double toll = ComputeToll(lav, cars, accident.value());
  ++tolls_;

  auto rec = std::make_shared<Record>();
  rec->Set("car", Value(curr.car));
  rec->Set("time", Value(curr.time));
  rec->Set("xway", Value(curr.xway));
  rec->Set("dir", Value(curr.dir));
  rec->Set("seg", Value(curr.seg));
  rec->Set("toll", Value(toll));
  Send(out_, Token(RecordPtr(std::move(rec))));
  return Status::OK();
}

}  // namespace cwf::lrb

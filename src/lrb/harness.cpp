#include "lrb/harness.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "directors/pncwf_director.h"
#include "directors/scwf_director.h"

namespace cwf::lrb {

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kQBS:
      return "QBS";
    case SchedulerKind::kRR:
      return "RR";
    case SchedulerKind::kRB:
      return "RB";
    case SchedulerKind::kFIFO:
      return "FIFO";
    case SchedulerKind::kEDF:
      return "EDF";
    case SchedulerKind::kPNCWF:
      return "PNCWF";
  }
  return "?";
}

CostModel DefaultLRBCostModel() {
  CostModel model;
  // Baseline per-firing costs (µs). Calibrated so the scheduled directors
  // saturate near the paper's ~160 reports/s and the thread-based PNCWF
  // near ~120 reports/s (see EXPERIMENTS.md for the calibration run).
  CostParams defaults;
  defaults.base = 370;
  defaults.per_input_event = 37;
  defaults.per_output_event = 37;
  model.SetDefault(defaults);

  // The source just decodes and forwards tuples.
  model.SetActorCost("Source", {75, 8, 22});

  // Database-backed actors are the expensive ones (the paper's off-the-shelf
  // actors + relational queries).
  model.SetActorCost("AccidentNotification", {2380, 90, 57});
  model.SetActorCost("TollCalculation", {2380, 90, 57});
  model.SetActorCost("InsertAccident", {590, 57, 0});
  model.SetActorCost("Avgs", {885, 30, 59});
  model.SetActorCost("cars", {885, 22, 59});
  model.SetActorCost("Avgsv", {517, 37, 59});
  // The composite runs its whole inner sub-workflow per firing.
  model.SetActorCost("AccidentDetection", {1330, 66, 66});
  model.SetActorCost("DetectStoppedCars", {665, 44, 44});
  model.SetActorCost("DetectAccidents", {665, 44, 44});
  // Output actors only hand results off.
  model.SetActorCost("TollNotification", {177, 22, 0});
  model.SetActorCost("AccidentNotificationOut", {177, 22, 0});

  // Director overheads: the scheduled dispatch is cheap; the thread-based
  // director pays context switches and per-event synchronization on every
  // token crossing a thread boundary, plus frequent OS preemptions.
  model.scheduled_dispatch_overhead = 10;
  model.context_switch_overhead = 500;
  model.sync_per_event_overhead = 190;
  model.os_time_slice = 2000;
  return model;
}

std::unique_ptr<AbstractScheduler> MakeScheduler(
    const ExperimentOptions& options) {
  std::unique_ptr<AbstractScheduler> scheduler;
  switch (options.scheduler) {
    case SchedulerKind::kQBS:
      scheduler = std::make_unique<QBSScheduler>(options.qbs);
      break;
    case SchedulerKind::kRR:
      scheduler = std::make_unique<RRScheduler>(options.rr);
      break;
    case SchedulerKind::kRB:
      scheduler = std::make_unique<RBScheduler>(options.rb);
      break;
    case SchedulerKind::kFIFO:
      scheduler = std::make_unique<FIFOScheduler>(options.fifo);
      break;
    case SchedulerKind::kEDF:
      scheduler = std::make_unique<EDFScheduler>(options.edf);
      break;
    case SchedulerKind::kPNCWF:
      return nullptr;
  }
  ApplyLRBPriorities(scheduler.get());
  return scheduler;
}

double ExperimentResult::ThrashTimeSeconds(double threshold_s) const {
  double candidate = std::numeric_limits<double>::infinity();
  for (const auto& point : toll_curve) {
    if (point.avg_response_s >= threshold_s) {
      if (!std::isfinite(candidate)) {
        candidate = point.t_seconds;
      }
    } else {
      candidate = std::numeric_limits<double>::infinity();
    }
  }
  return candidate;
}

Result<ExperimentResult> RunLRBExperiment(const ExperimentOptions& options) {
  ExperimentResult result;
  result.scheduler = options.scheduler;

  // 1. Workload.
  Generator generator(options.workload);
  Trace trace = generator.Generate();
  result.reports_generated = generator.report().position_reports;
  result.accidents_injected = generator.report().accidents_injected;

  auto feed = std::make_shared<PushChannel>();
  feed->PushTrace(trace);
  feed->Close();

  // 2. Application.
  CWF_ASSIGN_OR_RETURN(LRBApplication app,
                       BuildLRBApplication(feed, options.hierarchical));

  // 3. Execution model.
  VirtualClock clock;
  std::unique_ptr<Director> director;
  SCWFDirector* scwf = nullptr;
  PNCWFDirector* pncwf = nullptr;
  if (options.scheduler == SchedulerKind::kPNCWF) {
    PNCWFOptions pn;
    pn.mode = PNCWFMode::kSimulatedThreads;
    auto d = std::make_unique<PNCWFDirector>(pn);
    pncwf = d.get();
    director = std::move(d);
  } else {
    auto d = std::make_unique<SCWFDirector>(MakeScheduler(options));
    scwf = d.get();
    director = std::move(d);
  }

  CWF_RETURN_NOT_OK(
      director->Initialize(app.workflow.get(), &clock, &options.cost_model));
  const Timestamp horizon =
      Timestamp(0) + (trace.EndTime() - Timestamp(0)) + options.drain_slack;
  result.status = director->Run(horizon);
  CWF_RETURN_NOT_OK(director->Wrapup());

  // 4. Metrics.
  result.toll_curve = app.toll_series->Series(options.bucket);
  result.toll_avg_response_s = app.toll_series->OverallAvgSeconds();
  result.toll_p95_response_s = app.toll_series->PercentileSeconds(95);
  result.toll_max_response_s = app.toll_series->MaxSeconds();
  result.toll_notifications = app.toll_series->count();
  result.accident_avg_response_s = app.accident_series->OverallAvgSeconds();
  result.accident_notifications = app.accident_series->count();
  result.accident_fraction_under_5s =
      app.accident_series->FractionUnder(Seconds(5));
  result.accidents_recorded = app.insert_accident->accidents_recorded();
  result.tolls_calculated = app.toll_calculator->tolls_calculated();
  {
    obs::Histogram toll_hist;
    for (const int64_t us : app.toll_series->ResponseMicros()) {
      toll_hist.Record(us);
    }
    result.toll_response_hist = toll_hist.Snapshot();
    obs::Histogram accident_hist;
    for (const int64_t us : app.accident_series->ResponseMicros()) {
      accident_hist.Record(us);
    }
    result.accident_response_hist = accident_hist.Snapshot();
  }
  if (scwf != nullptr) {
    result.total_firings = scwf->total_firings();
    result.director_iterations = scwf->director_iterations();
  } else if (pncwf != nullptr) {
    result.total_firings = pncwf->total_firings();
  }
  return result;
}

namespace {

void AppendHistogramJson(std::ostringstream& out, const char* query_type,
                         const obs::HistogramSnapshot& hist) {
  out << "    \"" << query_type << "\": {\"count\": " << hist.count
      << ", \"mean_us\": " << hist.mean << ", \"p50_us\": " << hist.p50
      << ", \"p95_us\": " << hist.p95 << ", \"p99_us\": " << hist.p99
      << ", \"max_us\": " << hist.max << ", \"buckets\": [";
  bool first = true;
  for (const auto& [upper, n] : hist.buckets) {
    if (!first) {
      out << ", ";
    }
    first = false;
    out << "{\"le_us\": " << upper << ", \"n\": " << n << "}";
  }
  out << "]}";
}

}  // namespace

std::string RenderBenchJson(const ExperimentResult& result,
                            const std::string& label) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"" << label << "\",\n";
  out << "  \"scheduler\": \"" << SchedulerKindName(result.scheduler)
      << "\",\n";
  out << "  \"status\": \"" << (result.status.ok() ? "ok" : "error")
      << "\",\n";
#ifdef CWF_OBS_ENABLED
  out << "  \"obs_compiled_in\": true,\n";
#else
  out << "  \"obs_compiled_in\": false,\n";
#endif
  out << "  \"reports_generated\": " << result.reports_generated << ",\n";
  out << "  \"toll_notifications\": " << result.toll_notifications << ",\n";
  out << "  \"accident_notifications\": " << result.accident_notifications
      << ",\n";
  out << "  \"toll_avg_response_s\": " << result.toll_avg_response_s << ",\n";
  out << "  \"toll_p95_response_s\": " << result.toll_p95_response_s << ",\n";
  out << "  \"accident_fraction_under_5s\": "
      << result.accident_fraction_under_5s << ",\n";
  out << "  \"total_firings\": " << result.total_firings << ",\n";
  out << "  \"response_time_histograms_us\": {\n";
  AppendHistogramJson(out, "toll", result.toll_response_hist);
  out << ",\n";
  AppendHistogramJson(out, "accident", result.accident_response_hist);
  out << "\n  }\n";
  out << "}\n";
  return out.str();
}

Status WriteBenchJson(const ExperimentResult& result, const std::string& label,
                      const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  out << RenderBenchJson(result, label);
  out.close();
  if (!out) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

std::string RenderCurve(const ExperimentResult& result,
                        const std::string& label) {
  std::ostringstream oss;
  oss << "# " << label << "\n";
  oss << "# time_s  avg_response_s  max_response_s  n\n";
  for (const auto& p : result.toll_curve) {
    char line[128];
    std::snprintf(line, sizeof(line), "%8.1f  %14.3f  %14.3f  %zu\n",
                  p.t_seconds, p.avg_response_s, p.max_response_s, p.n);
    oss << line;
  }
  return oss.str();
}

}  // namespace cwf::lrb

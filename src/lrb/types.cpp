#include "lrb/types.h"

#include <sstream>

namespace cwf::lrb {

Token PositionReport::ToToken() const {
  auto rec = std::make_shared<Record>();
  rec->Set(kFieldTime, Value(time));
  rec->Set(kFieldCar, Value(car));
  rec->Set(kFieldSpeed, Value(speed));
  rec->Set(kFieldXway, Value(xway));
  rec->Set(kFieldLane, Value(lane));
  rec->Set(kFieldDir, Value(dir));
  rec->Set(kFieldSeg, Value(seg));
  rec->Set(kFieldPos, Value(pos));
  return Token(RecordPtr(std::move(rec)));
}

PositionReport PositionReport::FromToken(const Token& token) {
  PositionReport r;
  r.time = token.Field(kFieldTime).AsInt();
  r.car = token.Field(kFieldCar).AsInt();
  r.speed = token.Field(kFieldSpeed).AsDouble();
  r.xway = token.Field(kFieldXway).AsInt();
  r.lane = token.Field(kFieldLane).AsInt();
  r.dir = token.Field(kFieldDir).AsInt();
  r.seg = token.Field(kFieldSeg).AsInt();
  r.pos = token.Field(kFieldPos).AsInt();
  return r;
}

RecordSchema PositionReportSchema() {
  RecordSchema s;
  s.Int(kFieldTime)
      .Int(kFieldCar)
      .Double(kFieldSpeed)
      .Int(kFieldXway)
      .Int(kFieldLane)
      .Int(kFieldDir)
      .Int(kFieldSeg)
      .Int(kFieldPos);
  return s;
}

TokenType PositionReportType() {
  return TokenType::Record(PositionReportSchema());
}

std::string PositionReport::ToString() const {
  std::ostringstream oss;
  oss << "PR(t=" << time << " car=" << car << " v=" << speed
      << " xway=" << xway << " lane=" << lane << " dir=" << dir
      << " seg=" << seg << " pos=" << pos << ")";
  return oss.str();
}

double ComputeToll(double lav, int64_t cars, bool accident_in_scope) {
  if (lav < kTollLavThreshold && cars > kTollCarsThreshold &&
      !accident_in_scope) {
    const double excess = static_cast<double>(cars - kTollCarsThreshold);
    return 2.0 * excess * excess;
  }
  return 0.0;
}

}  // namespace cwf::lrb

#include "lrb/workflow_builder.h"

#include "core/composite_actor.h"
#include "directors/ddf_director.h"

namespace cwf::lrb {

Result<LRBApplication> BuildLRBApplication(PushChannelPtr feed,
                                           bool hierarchical) {
  LRBApplication app;
  CWF_ASSIGN_OR_RETURN(app.database, CreateLRBDatabase());
  app.toll_series = std::make_unique<ResponseTimeSeries>();
  app.accident_series = std::make_unique<ResponseTimeSeries>();
  app.workflow = std::make_unique<Workflow>("LinearRoad");
  Workflow* wf = app.workflow.get();
  db::Database* database = app.database.get();

  app.source = wf->AddActor<StreamSourceActor>("Source", std::move(feed));
  app.source->out()->set_schema(PositionReportType());

  // ---- Area 1: accident detection & notification ----
  OutputPort* accident_out = nullptr;
  InputPort* detection_in = nullptr;
  if (hierarchical) {
    auto* composite = wf->AddActor<CompositeActor>(
        "AccidentDetection", std::make_unique<DDFDirector>());
    auto* stopped =
        composite->inner()->AddActor<StoppedCarDetector>("DetectStoppedCars");
    auto* detector =
        composite->inner()->AddActor<AccidentDetector>("DetectAccidents");
    CWF_RETURN_NOT_OK(
        composite->inner()->Connect(stopped->out(), detector->in()));
    detection_in = composite->ExposeInput("in", stopped->in());
    accident_out = composite->ExposeOutput("out", detector->out());
  } else {
    auto* stopped = wf->AddActor<StoppedCarDetector>("DetectStoppedCars");
    auto* detector = wf->AddActor<AccidentDetector>("DetectAccidents");
    CWF_RETURN_NOT_OK(wf->Connect(stopped->out(), detector->in()));
    detection_in = stopped->in();
    accident_out = detector->out();
  }
  app.insert_accident =
      wf->AddActor<InsertAccident>("InsertAccident", database);
  auto* notifier =
      wf->AddActor<AccidentNotifier>("AccidentNotification", database);
  app.accident_notification_out = wf->AddActor<OutputActor>(
      "AccidentNotificationOut", app.accident_series.get());

  CWF_RETURN_NOT_OK(wf->Connect(app.source->out(), detection_in));
  CWF_RETURN_NOT_OK(wf->Connect(accident_out, app.insert_accident->in()));
  CWF_RETURN_NOT_OK(wf->Connect(app.source->out(), notifier->in()));
  CWF_RETURN_NOT_OK(
      wf->Connect(notifier->out(), app.accident_notification_out->in()));

  // ---- Area 2: segment statistics ----
  auto* avgsv = wf->AddActor<AvgsvActor>("Avgsv");
  auto* avgs = wf->AddActor<AvgsActor>("Avgs", database);
  auto* cars = wf->AddActor<CarCountActor>("cars", database);
  CWF_RETURN_NOT_OK(wf->Connect(app.source->out(), avgsv->in()));
  CWF_RETURN_NOT_OK(wf->Connect(avgsv->out(), avgs->in()));
  CWF_RETURN_NOT_OK(wf->Connect(app.source->out(), cars->in()));

  // ---- Area 3: toll calculation & notification ----
  app.toll_calculator =
      wf->AddActor<TollCalculator>("TollCalculation", database);
  app.toll_notification =
      wf->AddActor<OutputActor>("TollNotification", app.toll_series.get());
  CWF_RETURN_NOT_OK(
      wf->Connect(app.source->out(), app.toll_calculator->in()));
  CWF_RETURN_NOT_OK(wf->Connect(app.toll_calculator->out(),
                                app.toll_notification->in()));

  CWF_RETURN_NOT_OK(wf->Validate());
  return app;
}

void ApplyLRBPriorities(AbstractScheduler* scheduler) {
  // Paper Table 3: "The highest priority of 5 is given to the actors that
  // handle the immediate output of the workflow ... A priority of 10 was
  // given to the actors relevant to statistics maintenance and accident
  // detection."
  scheduler->SetActorPriority("TollCalculation", 5);
  scheduler->SetActorPriority("TollNotification", 5);
  scheduler->SetActorPriority("AccidentNotification", 5);
  scheduler->SetActorPriority("AccidentNotificationOut", 5);
  scheduler->SetActorPriority("AccidentDetection", 10);
  scheduler->SetActorPriority("DetectStoppedCars", 10);
  scheduler->SetActorPriority("DetectAccidents", 10);
  scheduler->SetActorPriority("InsertAccident", 10);
  scheduler->SetActorPriority("Avgsv", 10);
  scheduler->SetActorPriority("Avgs", 10);
  scheduler->SetActorPriority("cars", 10);
}

}  // namespace cwf::lrb

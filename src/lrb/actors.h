// Linear Road workflow actors (paper Appendix A, Figures 10–15).
//
// Three areas: accident detection/notification, segment statistics, and
// toll calculation/notification. Window semantics on the input ports are
// exactly the ones the paper specifies per actor. Actors that the paper
// backs with a relational database (accident bookkeeping, segment
// statistics, toll lookup) use the embedded store (src/db).

#ifndef CONFLUENCE_LRB_ACTORS_H_
#define CONFLUENCE_LRB_ACTORS_H_

#include <memory>

#include "core/actor.h"
#include "db/database.h"
#include "lrb/types.h"

namespace cwf::lrb {

// Table / column names of the LRB side-store.
inline constexpr const char* kTableSegmentStats = "segmentStatistics";
inline constexpr const char* kTableSegmentAvgSpeed = "segmentAvgSpeed";
inline constexpr const char* kTableAccidents = "accidentInSegment";

/// \brief Create the two LRB relations with their indexes.
Result<std::shared_ptr<db::Database>> CreateLRBDatabase();

/// \brief Detects stopped cars: window {Size: 4 tokens, Step: 1 token,
/// Group-by: car}. If all four reports of a car show the same position (and
/// it is not in the exit lane), the first of those reports is emitted.
class StoppedCarDetector : public Actor {
 public:
  explicit StoppedCarDetector(std::string name);

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Status Fire() override;

 private:
  InputPort* in_;
  OutputPort* out_;
};

/// \brief Detects accidents: window {Size: 2 tokens, Step: 1 token,
/// Group-by: position} over stopped-car reports. Two *different* cars
/// stopped at the same position (not in an exit lane) mean a crash; emits
/// an accident record {time, xway, dir, seg, pos, car1, car2}.
class AccidentDetector : public Actor {
 public:
  explicit AccidentDetector(std::string name);

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Status Fire() override;

 private:
  InputPort* in_;
  OutputPort* out_;
};

/// \brief Records detected accidents into the accidentInSegment relation
/// (upsert keyed on the car pair, so the repeated detections of one crash
/// refresh its timestamp instead of duplicating rows).
class InsertAccident : public Actor {
 public:
  InsertAccident(std::string name, db::Database* database);

  InputPort* in() const { return in_; }

  Status Initialize(ExecutionContext* ctx) override;
  Status Fire() override;

  uint64_t accidents_recorded() const { return recorded_; }

 private:
  db::Database* database_;
  db::Table* table_ = nullptr;
  InputPort* in_;
  uint64_t recorded_ = 0;
};

/// \brief For every position report, checks the database for an accident
/// registered within four segments downstream in the last minute and emits
/// a notification record if one exists.
class AccidentNotifier : public Actor {
 public:
  AccidentNotifier(std::string name, db::Database* database);

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Status Initialize(ExecutionContext* ctx) override;
  Status Fire() override;

 private:
  db::Database* database_;
  db::Table* table_ = nullptr;
  InputPort* in_;
  OutputPort* out_;
};

/// \brief Average speed per car per segment per minute (Avgsv): window
/// {Size: 1 minute, Step: 1 minute, Group-by: car, xway, dir, seg}.
class AvgsvActor : public Actor {
 public:
  explicit AvgsvActor(std::string name);

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Status Fire() override;

 private:
  InputPort* in_;
  OutputPort* out_;
};

/// \brief Per-segment average speed per minute (Avgs): window {Size: 1
/// minute, Step: 1 minute, Group-by: xway, dir, seg} over Avgsv outputs.
/// Stores the minute average and refreshes the segment's LAV (average of
/// the averages of the last five minutes) in segmentStatistics.
class AvgsActor : public Actor {
 public:
  AvgsActor(std::string name, db::Database* database);

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Status Initialize(ExecutionContext* ctx) override;
  Status Fire() override;

 private:
  db::Database* database_;
  db::Table* avg_table_ = nullptr;
  db::Table* stats_table_ = nullptr;
  InputPort* in_;
  OutputPort* out_;
};

/// \brief Cars per segment per minute (cars): window {Size: 1 minute,
/// Step: 1 minute, Group-by: xway, dir, seg}; counts distinct cars and
/// upserts segmentStatistics.cars.
class CarCountActor : public Actor {
 public:
  CarCountActor(std::string name, db::Database* database);

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Status Initialize(ExecutionContext* ctx) override;
  Status Fire() override;

 private:
  db::Database* database_;
  db::Table* stats_table_ = nullptr;
  InputPort* in_;
  OutputPort* out_;
};

/// \brief Toll calculation: window {Size: 2 tokens, Step: 1 token,
/// Group-by: car}. When the two latest reports of a car differ in segment,
/// queries segmentStatistics + accident proximity (the paper's SQL) and
/// emits a toll notification record {car, time, xway, dir, seg, toll}.
class TollCalculator : public Actor {
 public:
  TollCalculator(std::string name, db::Database* database);

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Status Initialize(ExecutionContext* ctx) override;
  Status Fire() override;

  uint64_t tolls_calculated() const { return tolls_; }

 private:
  db::Database* database_;
  db::Table* stats_table_ = nullptr;
  db::Table* accidents_table_ = nullptr;
  InputPort* in_;
  OutputPort* out_;
  uint64_t tolls_ = 0;
};

/// \brief Whether an accident is registered within `kAccidentNotifySegments`
/// downstream of (xway, dir, seg) with a bookkeeping timestamp >= `since`
/// seconds. Shared by AccidentNotifier and TollCalculator.
Result<bool> AccidentInScope(db::Table* accidents, int64_t xway, int64_t dir,
                             int64_t seg, int64_t since_seconds);

}  // namespace cwf::lrb

#endif  // CONFLUENCE_LRB_ACTORS_H_

// Assembles the continuous-workflow implementation of Linear Road
// (paper Figure 10): a single position-report feed fanned out to the three
// areas — accident detection/notification, segment statistics, toll
// calculation/notification — with the accident-detection pipeline packaged
// as a second-level sub-workflow under a DDF director (the paper's
// two-level hierarchy).

#ifndef CONFLUENCE_LRB_WORKFLOW_BUILDER_H_
#define CONFLUENCE_LRB_WORKFLOW_BUILDER_H_

#include <memory>

#include "core/workflow.h"
#include "lrb/actors.h"
#include "lrb/metrics.h"
#include "stafilos/abstract_scheduler.h"
#include "stream/stream_source.h"

namespace cwf::lrb {

/// \brief The built application: workflow + side-store + instrumentation.
struct LRBApplication {
  std::unique_ptr<Workflow> workflow;
  std::shared_ptr<db::Database> database;
  std::unique_ptr<ResponseTimeSeries> toll_series;
  std::unique_ptr<ResponseTimeSeries> accident_series;

  // Not owned (owned by the workflow):
  StreamSourceActor* source = nullptr;
  OutputActor* toll_notification = nullptr;
  OutputActor* accident_notification_out = nullptr;
  TollCalculator* toll_calculator = nullptr;
  InsertAccident* insert_accident = nullptr;
};

/// \brief Build the LRB workflow reading from `feed`.
///
/// `hierarchical` packages stopped-car + accident detection into a
/// CompositeActor with an inner DDF director (the paper's structure);
/// `false` flattens them to top-level actors (used by the structure
/// ablation).
Result<LRBApplication> BuildLRBApplication(PushChannelPtr feed,
                                           bool hierarchical = true);

/// \brief Assign the paper's Table-3 QBS priorities: 5 for the actors
/// handling immediate output (TollCalculation, TollNotification,
/// AccidentNotification, AccidentNotificationOut), 10 for statistics
/// maintenance and accident detection.
void ApplyLRBPriorities(AbstractScheduler* scheduler);

}  // namespace cwf::lrb

#endif  // CONFLUENCE_LRB_WORKFLOW_BUILDER_H_

#include "common/rng.h"

#include <cmath>

#include "common/status.h"

namespace cwf {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CWF_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  CWF_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) {
    u = 1e-18;
  }
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 1e-18;
  }
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

}  // namespace cwf

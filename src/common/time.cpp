#include "common/time.h"

#include <cstdio>

namespace cwf {

std::string Timestamp::ToString() const {
  if (*this == Max()) {
    return "+inf";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6fs", seconds());
  return buf;
}

}  // namespace cwf

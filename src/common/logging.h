// Minimal leveled logging with per-component tags.
//
// The engine logs through a global sink so tests can silence or capture
// output. Levels follow the usual severity ladder; the default threshold is
// kWarn so benchmark output stays clean. Components ("stream", "pncwf",
// "obs", ...) can override the global threshold individually, and every
// record carries a host-monotonic timestamp on the same time base as the
// observability trace spans (obs::HostMonotonicMicros), so log lines can be
// correlated with Perfetto tracks.

#ifndef CONFLUENCE_COMMON_LOGGING_H_
#define CONFLUENCE_COMMON_LOGGING_H_

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace cwf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* LogLevelName(LogLevel level);

/// \brief One log statement, as handed to a structured sink.
struct LogRecord {
  LogLevel level;
  std::string component;  ///< "" for untagged CWF_LOG statements
  int64_t ts_us;          ///< host-monotonic µs; same base as trace spans
  std::string message;
};

/// \brief Global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// \brief Override the threshold for one component (e.g. silence "stream"
/// while debugging "pncwf"). An override wins over the global threshold.
void SetComponentLogLevel(const std::string& component, LogLevel level);

/// \brief Drop every per-component override.
void ClearComponentLogLevels();

/// \brief The threshold that applies to `component` (its override if set,
/// the global level otherwise).
LogLevel EffectiveLogLevel(const std::string& component);

/// \brief Replace the sink (default writes to stderr). Pass nullptr to
/// restore. The plain sink receives the component folded into the message
/// text; prefer SetLogRecordSink for structured capture.
void SetLogSink(std::function<void(LogLevel, const std::string&)> sink);

/// \brief Structured sink receiving full LogRecords (wins over the plain
/// sink when both are set). Pass nullptr to remove.
void SetLogRecordSink(std::function<void(const LogRecord&)> sink);

namespace internal {
void Emit(LogLevel level, const char* component, const std::string& message);

/// \brief The macro fast-path check for tagged statements.
bool Enabled(LogLevel level, const char* component);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level, const char* component = "")
      : level_(level), component_(component) {}
  ~LogMessage() { Emit(level_, component_, oss_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream oss_;
};
}  // namespace internal

}  // namespace cwf

#define CWF_LOG(level)                                      \
  if (static_cast<int>(::cwf::LogLevel::level) <            \
      static_cast<int>(::cwf::GetLogLevel())) {             \
  } else                                                    \
    ::cwf::internal::LogMessage(::cwf::LogLevel::level)

/// \brief Component-tagged log statement: CWF_CLOG(kWarn, "stream") << ...;
/// honors per-component threshold overrides.
#define CWF_CLOG(level, component)                                   \
  if (!::cwf::internal::Enabled(::cwf::LogLevel::level, component)) { \
  } else                                                             \
    ::cwf::internal::LogMessage(::cwf::LogLevel::level, component)

#endif  // CONFLUENCE_COMMON_LOGGING_H_

// Minimal leveled logging.
//
// The engine logs through a global sink so tests can silence or capture
// output. Levels follow the usual severity ladder; the default threshold is
// kWarn so benchmark output stays clean.

#ifndef CONFLUENCE_COMMON_LOGGING_H_
#define CONFLUENCE_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace cwf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// \brief Global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// \brief Replace the sink (default writes to stderr). Pass nullptr to restore.
void SetLogSink(std::function<void(LogLevel, const std::string&)> sink);

namespace internal {
void Emit(LogLevel level, const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}  // NOLINT
  ~LogMessage() { Emit(level_, oss_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};
}  // namespace internal

}  // namespace cwf

#define CWF_LOG(level)                                      \
  if (static_cast<int>(::cwf::LogLevel::level) <            \
      static_cast<int>(::cwf::GetLogLevel())) {             \
  } else                                                    \
    ::cwf::internal::LogMessage(::cwf::LogLevel::level)

#endif  // CONFLUENCE_COMMON_LOGGING_H_

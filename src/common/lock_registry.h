// Debug lock-order deadlock detector.
//
// The PNCWF director is thread-per-actor: actor threads, source threads,
// the TCP accept/client threads and the multi-workflow control plane all
// take engine mutexes, and a lock-order inversion between any two of them
// is a latent deadlock that plain testing almost never triggers. This
// module provides drop-in mutex wrappers that, when built with
// CWF_LOCK_ORDER_CHECKS (CMake option CONFLUENCE_LOCK_ORDER_CHECKS), record
// the global mutex-acquisition graph — an edge A -> B for every "B acquired
// while A is held" — and abort with a readable cycle report the moment an
// acquisition would close a cycle, i.e. *before* the schedule that actually
// deadlocks ever runs. Without the macro the wrappers are zero-cost
// passthroughs to the underlying std mutex.
//
//   cwf::OrderedMutex mu{"PushChannel::mutex"};
//   cwf::ScopedLock lock(mu);                  // RAII, any lockable
//
// Tracking is per mutex *instance* (two different PushChannels may be
// locked in either order without complaint); recursive re-acquisition of a
// LockOrdered<std::recursive_mutex> adds no edges. try_lock never blocks,
// so successful try_locks are recorded as held but add no ordering edges.

// The wrappers double as the engine's Clang Thread Safety Analysis
// capabilities (common/thread_annotations.h): LockOrdered is a
// CWF_CAPABILITY and ScopedLock a CWF_SCOPED_CAPABILITY, so every
// CWF_GUARDED_BY field access in the engine is proven lock-correct at
// compile time by the thread-safety lint lane.

#ifndef CONFLUENCE_COMMON_LOCK_REGISTRY_H_
#define CONFLUENCE_COMMON_LOCK_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <type_traits>

#include "common/thread_annotations.h"

namespace cwf {

#if defined(CWF_LOCK_ORDER_CHECKS) && CWF_LOCK_ORDER_CHECKS

/// \brief Global acquisition-graph bookkeeping behind the OrderedMutex
/// wrappers. Not used directly outside tests.
class LockRegistry {
 public:
  using Report = std::function<void(const std::string&)>;

  static LockRegistry& Instance();

  /// \brief Register a new tracked mutex; returns its node id.
  uint64_t Register(const char* name);

  /// \brief Forget a destroyed mutex and every edge touching it.
  void Unregister(uint64_t id);

  /// \brief Record that the calling thread is about to block on `id`.
  /// Adds held->id edges and aborts (or calls the test handler) when an
  /// edge closes a cycle, or when a non-recursive mutex is re-entered by
  /// its holder (self-deadlock). Call BEFORE the underlying lock().
  void OnAcquire(uint64_t id, bool recursive);

  /// \brief Record a successful non-blocking acquisition (no edges).
  void OnTryAcquire(uint64_t id);

  /// \brief Record that the calling thread released `id`.
  void OnRelease(uint64_t id);

  /// \brief Locks the calling thread currently holds (incl. recursion).
  size_t HeldDepthForTest() const;

  /// \brief Install a handler invoked with the cycle report instead of
  /// aborting; pass nullptr to restore the abort behavior. Test-only.
  void SetReportHandlerForTest(Report handler);

  /// \brief Drop the recorded graph (ids stay valid). Test-only.
  void ResetGraphForTest();

 private:
  LockRegistry();

  struct Impl;
  Impl* const impl_;  // intentionally leaked (outlives static destructors)
};

#endif  // CWF_LOCK_ORDER_CHECKS

/// \brief A Lockable wrapping `M` that feeds the LockRegistry in checked
/// builds and is a zero-cost passthrough otherwise.
template <typename M>
class CWF_CAPABILITY("mutex") LockOrdered {
 public:
#if defined(CWF_LOCK_ORDER_CHECKS) && CWF_LOCK_ORDER_CHECKS
  explicit LockOrdered(const char* name = "mutex")
      : id_(LockRegistry::Instance().Register(name)) {}
  ~LockOrdered() { LockRegistry::Instance().Unregister(id_); }

  void lock() CWF_ACQUIRE() {
    LockRegistry::Instance().OnAcquire(
        id_, std::is_same_v<M, std::recursive_mutex>);
    mu_.lock();
  }

  bool try_lock() CWF_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
    LockRegistry::Instance().OnTryAcquire(id_);
    return true;
  }

  void unlock() CWF_RELEASE() {
    mu_.unlock();
    LockRegistry::Instance().OnRelease(id_);
  }
#else
  explicit LockOrdered(const char* name = "mutex") { (void)name; }

  void lock() CWF_ACQUIRE() { mu_.lock(); }
  bool try_lock() CWF_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() CWF_RELEASE() { mu_.unlock(); }
#endif  // CWF_LOCK_ORDER_CHECKS

  LockOrdered(const LockOrdered&) = delete;
  LockOrdered& operator=(const LockOrdered&) = delete;

 private:
  M mu_;
#if defined(CWF_LOCK_ORDER_CHECKS) && CWF_LOCK_ORDER_CHECKS
  const uint64_t id_;
#endif
};

/// \brief The engine's default mutex type.
using OrderedMutex = LockOrdered<std::mutex>;

/// \brief Recursive variant (the PNCWF per-actor synchronization domain
/// re-enters receiver methods under its own lock).
using OrderedRecursiveMutex = LockOrdered<std::recursive_mutex>;

/// \brief Minimal RAII guard over any Lockable (CTAD: `ScopedLock l(mu);`).
template <typename Mutex>
class CWF_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(Mutex& mu) CWF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~ScopedLock() CWF_RELEASE() { mu_.unlock(); }

  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace cwf

#endif  // CONFLUENCE_COMMON_LOCK_REGISTRY_H_

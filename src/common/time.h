// Virtual time for the continuous-workflow engine.
//
// CONFLuEnCE timestamps every external event on entry and propagates that
// timestamp through the event's wave. The engine measures actor costs,
// window timeouts and response times on a single time axis. To make the
// published 600-second Linear Road runs reproducible and fast, the axis is a
// `Timestamp` in integer microseconds driven by either a real or a virtual
// clock (see core/clock.h).

#ifndef CONFLUENCE_COMMON_TIME_H_
#define CONFLUENCE_COMMON_TIME_H_

#include <cstdint>
#include <limits>
#include <string>

namespace cwf {

/// \brief A signed duration in microseconds.
using Duration = int64_t;

/// \brief A point on the engine time axis, in microseconds since run start.
///
/// Timestamps are totally ordered and cheap to copy. `Timestamp::Max()` is
/// used as the "never" sentinel for timers.
class Timestamp {
 public:
  constexpr Timestamp() : micros_(0) {}
  constexpr explicit Timestamp(int64_t micros) : micros_(micros) {}

  static constexpr Timestamp Micros(int64_t us) { return Timestamp(us); }
  static constexpr Timestamp Millis(int64_t ms) { return Timestamp(ms * 1000); }
  static constexpr Timestamp Seconds(double s) {
    return Timestamp(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Timestamp Max() {
    return Timestamp(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t micros() const { return micros_; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr bool operator==(const Timestamp& o) const { return micros_ == o.micros_; }
  constexpr bool operator!=(const Timestamp& o) const { return micros_ != o.micros_; }
  constexpr bool operator<(const Timestamp& o) const { return micros_ < o.micros_; }
  constexpr bool operator<=(const Timestamp& o) const { return micros_ <= o.micros_; }
  constexpr bool operator>(const Timestamp& o) const { return micros_ > o.micros_; }
  constexpr bool operator>=(const Timestamp& o) const { return micros_ >= o.micros_; }

  constexpr Timestamp operator+(Duration d) const { return Timestamp(micros_ + d); }
  constexpr Timestamp operator-(Duration d) const { return Timestamp(micros_ - d); }
  constexpr Duration operator-(const Timestamp& o) const { return micros_ - o.micros_; }

  Timestamp& operator+=(Duration d) {
    micros_ += d;
    return *this;
  }

  /// \brief Render as "12.345s" (or "+inf" for the Max sentinel).
  std::string ToString() const;

 private:
  int64_t micros_;
};

/// \brief Convenience duration constructors.
constexpr Duration Micros(int64_t us) { return us; }
constexpr Duration Millis(int64_t ms) { return ms * 1000; }
constexpr Duration Seconds(double s) { return static_cast<Duration>(s * 1e6); }

}  // namespace cwf

#endif  // CONFLUENCE_COMMON_TIME_H_

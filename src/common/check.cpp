#include "common/check.h"

#include <cstdlib>
#include <iostream>

namespace cwf {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::cerr << "CWF_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!extra.empty()) {
    std::cerr << " — " << extra;
  }
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace cwf

#include "common/lock_registry.h"

#if defined(CWF_LOCK_ORDER_CHECKS) && CWF_LOCK_ORDER_CHECKS

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cwf {
namespace {

/// One entry of the calling thread's hold stack.
struct Held {
  uint64_t id;
  int depth;  // recursion depth (recursive mutexes)
};

thread_local std::vector<Held> t_held;

}  // namespace

struct LockRegistry::Impl {
  std::mutex mu;
  uint64_t next_id = 1;
  std::unordered_map<uint64_t, std::string> names;
  // edges[a] contains b  <=>  some thread acquired b while holding a.
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> edges;
  Report handler;

  /// DFS from `from` looking for `to`; fills `path` (from .. to) on hit.
  bool FindPath(uint64_t from, uint64_t to, std::vector<uint64_t>* path) {
    std::unordered_set<uint64_t> visited;
    path->clear();
    path->push_back(from);
    return Dfs(from, to, &visited, path);
  }

  bool Dfs(uint64_t at, uint64_t to, std::unordered_set<uint64_t>* visited,
           std::vector<uint64_t>* path) {
    if (at == to) {
      return true;
    }
    visited->insert(at);
    auto it = edges.find(at);
    if (it == edges.end()) {
      return false;
    }
    for (uint64_t next : it->second) {
      if (visited->count(next)) {
        continue;
      }
      path->push_back(next);
      if (Dfs(next, to, visited, path)) {
        return true;
      }
      path->pop_back();
    }
    return false;
  }

  std::string Describe(uint64_t id) {
    std::ostringstream os;
    auto it = names.find(id);
    os << '"' << (it == names.end() ? "?" : it->second) << "\" (#" << id
       << ')';
    return os.str();
  }
};

LockRegistry::LockRegistry() : impl_(new Impl) {}

LockRegistry& LockRegistry::Instance() {
  static LockRegistry* registry = new LockRegistry;  // never destroyed
  return *registry;
}

uint64_t LockRegistry::Register(const char* name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const uint64_t id = impl_->next_id++;
  impl_->names.emplace(id, name);
  return id;
}

void LockRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->names.erase(id);
  impl_->edges.erase(id);
  for (auto& [from, targets] : impl_->edges) {
    targets.erase(id);
  }
}

void LockRegistry::OnAcquire(uint64_t id, bool recursive) {
  for (Held& h : t_held) {
    if (h.id == id) {
      if (!recursive) {
        std::lock_guard<std::mutex> lock(impl_->mu);
        std::ostringstream report;
        report << "self-deadlock: thread re-enters non-recursive mutex "
               << impl_->Describe(id) << " it already holds";
        if (impl_->handler) {
          impl_->handler(report.str());
          return;
        }
        std::cerr << "LockRegistry: " << report.str() << std::endl;
        std::abort();
      }
      ++h.depth;  // recursive re-acquisition: no new ordering information
      return;
    }
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const Held& h : t_held) {
      auto& targets = impl_->edges[h.id];
      if (targets.count(id)) {
        continue;  // edge already recorded and validated
      }
      std::vector<uint64_t> path;
      if (impl_->FindPath(id, h.id, &path)) {
        std::ostringstream report;
        report << "potential deadlock: acquiring " << impl_->Describe(id)
               << " while holding " << impl_->Describe(h.id)
               << " closes a lock-order cycle:\n";
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          report << "  " << impl_->Describe(path[i]) << " -> "
                 << impl_->Describe(path[i + 1]) << " (recorded earlier)\n";
        }
        report << "  " << impl_->Describe(h.id) << " -> "
               << impl_->Describe(id) << " (this acquisition)";
        if (impl_->handler) {
          // Test mode: report, keep the graph acyclic, carry on.
          impl_->handler(report.str());
          continue;
        }
        std::cerr << "LockRegistry: " << report.str() << std::endl;
        std::abort();
      }
      targets.insert(id);
    }
  }
  t_held.push_back({id, 1});
}

void LockRegistry::OnTryAcquire(uint64_t id) {
  for (Held& h : t_held) {
    if (h.id == id) {
      ++h.depth;
      return;
    }
  }
  t_held.push_back({id, 1});
}

void LockRegistry::OnRelease(uint64_t id) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->id == id) {
      if (--it->depth == 0) {
        t_held.erase(std::next(it).base());
      }
      return;
    }
  }
  // Released a lock this thread never recorded — e.g. locked before the
  // checks were enabled. Ignore rather than abort: unlock() has already
  // happened and the graph is unaffected.
}

size_t LockRegistry::HeldDepthForTest() const {
  size_t depth = 0;
  for (const Held& h : t_held) {
    depth += static_cast<size_t>(h.depth);
  }
  return depth;
}

void LockRegistry::SetReportHandlerForTest(Report handler) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->handler = std::move(handler);
}

void LockRegistry::ResetGraphForTest() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->edges.clear();
}

}  // namespace cwf

#endif  // CWF_LOCK_ORDER_CHECKS

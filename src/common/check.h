// Engine invariant checks: the CWF_ASSERT / CWF_DCHECK macro family.
//
// CONFLuEnCE's continuous-execution semantics rest on invariants that no
// Status return can express — wave-tag monotonicity at windowed receivers,
// no put() after channel shutdown, receiver ownership by the initializing
// director. Violations are programming errors, so they abort with a
// diagnostic rather than propagate:
//
//   CWF_ASSERT(expr)            always-on invariant (release builds too)
//   CWF_ASSERT_MSG(expr, msg)   ... with a streamed message
//   CWF_DCHECK(expr)            debug-grade check; compiles to nothing
//   CWF_DCHECK_MSG(expr, msg)   unless CWF_DCHECK_IS_ON (CMake option
//                               CONFLUENCE_DCHECKS, default ON)
//
// CWF_CHECK / CWF_CHECK_MSG (the historical names) are aliases of the
// always-on variants; new code should prefer CWF_ASSERT for invariants.

#ifndef CONFLUENCE_COMMON_CHECK_H_
#define CONFLUENCE_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace cwf {
namespace internal {

/// \brief Print "<file>:<line>: <expr> — <extra>" to stderr and abort.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);

}  // namespace internal
}  // namespace cwf

#define CWF_ASSERT(expr)                                               \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::cwf::internal::CheckFailed(__FILE__, __LINE__, #expr, "");     \
    }                                                                  \
  } while (0)

#define CWF_ASSERT_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream cwf_check_oss_;                               \
      cwf_check_oss_ << msg;                                           \
      ::cwf::internal::CheckFailed(__FILE__, __LINE__, #expr,          \
                                   cwf_check_oss_.str());              \
    }                                                                  \
  } while (0)

/// \brief Historical aliases; same always-on semantics as CWF_ASSERT.
#define CWF_CHECK(expr) CWF_ASSERT(expr)
#define CWF_CHECK_MSG(expr, msg) CWF_ASSERT_MSG(expr, msg)

#if defined(CWF_DCHECK_IS_ON) && CWF_DCHECK_IS_ON

#define CWF_DCHECK(expr) CWF_ASSERT(expr)
#define CWF_DCHECK_MSG(expr, msg) CWF_ASSERT_MSG(expr, msg)

#else  // !CWF_DCHECK_IS_ON

// Swallow the condition without evaluating it, but keep it syntactically
// checked so disabled DCHECKs cannot rot.
#define CWF_DCHECK(expr)         \
  do {                           \
    if (false) {                 \
      static_cast<void>(expr);   \
    }                            \
  } while (0)

#define CWF_DCHECK_MSG(expr, msg) CWF_DCHECK(expr)

#endif  // CWF_DCHECK_IS_ON

#endif  // CONFLUENCE_COMMON_CHECK_H_

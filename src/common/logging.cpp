#include "common/logging.h"

#include <cstdio>
#include <iostream>
#include <map>
#include <mutex>

#include "obs/metrics.h"

namespace cwf {
namespace {

LogLevel g_level = LogLevel::kWarn;
std::function<void(LogLevel, const std::string&)> g_sink;
std::function<void(const LogRecord&)> g_record_sink;
std::map<std::string, LogLevel> g_component_levels;
std::mutex g_mutex;

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void SetComponentLogLevel(const std::string& component, LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_component_levels[component] = level;
}

void ClearComponentLogLevels() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_component_levels.clear();
}

LogLevel EffectiveLogLevel(const std::string& component) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = g_component_levels.find(component);
  return it != g_component_levels.end() ? it->second : g_level;
}

void SetLogSink(std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void SetLogRecordSink(std::function<void(const LogRecord&)> sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_record_sink = std::move(sink);
}

namespace internal {

bool Enabled(LogLevel level, const char* component) {
  return static_cast<int>(level) >=
         static_cast<int>(EffectiveLogLevel(component));
}

void Emit(LogLevel level, const char* component, const std::string& message) {
  LogRecord record;
  record.level = level;
  record.component = component;
  record.ts_us = obs::HostMonotonicMicros();
  record.message = message;

  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_record_sink) {
    g_record_sink(record);
    return;
  }
  if (g_sink) {
    g_sink(level, record.component.empty()
                      ? message
                      : "[" + record.component + "] " + message);
    return;
  }
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%10.6f", record.ts_us / 1e6);
  std::cerr << "[" << stamp << "] [" << LogLevelName(level) << "]";
  if (!record.component.empty()) {
    std::cerr << " [" << record.component << "]";
  }
  std::cerr << " " << message << std::endl;
}

}  // namespace internal
}  // namespace cwf

#include "common/logging.h"

#include <iostream>
#include <mutex>

namespace cwf {
namespace {

LogLevel g_level = LogLevel::kWarn;
std::function<void(LogLevel, const std::string&)> g_sink;
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void SetLogSink(std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

namespace internal {

void Emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::cerr << "[" << LevelName(level) << "] " << message << std::endl;
}

}  // namespace internal
}  // namespace cwf

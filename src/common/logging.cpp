#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <iostream>
#include <map>

#include "common/lock_registry.h"
#include "obs/metrics.h"

namespace cwf {
namespace {

OrderedMutex& GlobalLogMutex() {
  static OrderedMutex* mutex = new OrderedMutex("logging::g_mutex");
  return *mutex;
}

/// The global threshold is read on every CWF_LOG site (possibly from PNCWF
/// actor threads) while tests flip it concurrently: atomic, not guarded.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::function<void(LogLevel, const std::string&)> g_sink
    CWF_GUARDED_BY(GlobalLogMutex());
std::function<void(const LogRecord&)> g_record_sink
    CWF_GUARDED_BY(GlobalLogMutex());
std::map<std::string, LogLevel> g_component_levels
    CWF_GUARDED_BY(GlobalLogMutex());

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetComponentLogLevel(const std::string& component, LogLevel level) {
  ScopedLock lock(GlobalLogMutex());
  g_component_levels[component] = level;
}

void ClearComponentLogLevels() {
  ScopedLock lock(GlobalLogMutex());
  g_component_levels.clear();
}

LogLevel EffectiveLogLevel(const std::string& component) {
  ScopedLock lock(GlobalLogMutex());
  auto it = g_component_levels.find(component);
  return it != g_component_levels.end() ? it->second : GetLogLevel();
}

void SetLogSink(std::function<void(LogLevel, const std::string&)> sink) {
  ScopedLock lock(GlobalLogMutex());
  g_sink = std::move(sink);
}

void SetLogRecordSink(std::function<void(const LogRecord&)> sink) {
  ScopedLock lock(GlobalLogMutex());
  g_record_sink = std::move(sink);
}

namespace internal {

bool Enabled(LogLevel level, const char* component) {
  return static_cast<int>(level) >=
         static_cast<int>(EffectiveLogLevel(component));
}

void Emit(LogLevel level, const char* component, const std::string& message) {
  LogRecord record;
  record.level = level;
  record.component = component;
  record.ts_us = obs::HostMonotonicMicros();
  record.message = message;

  ScopedLock lock(GlobalLogMutex());
  if (g_record_sink) {
    g_record_sink(record);
    return;
  }
  if (g_sink) {
    g_sink(level, record.component.empty()
                      ? message
                      : "[" + record.component + "] " + message);
    return;
  }
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%10.6f", record.ts_us / 1e6);
  std::cerr << "[" << stamp << "] [" << LogLevelName(level) << "]";
  if (!record.component.empty()) {
    std::cerr << " [" << record.component << "]";
  }
  std::cerr << " " << message << std::endl;
}

}  // namespace internal
}  // namespace cwf

// Status-based error handling in the RocksDB / Arrow idiom.
//
// Anticipated failures (bad configuration, malformed workflows, missing rows)
// are reported through `Status` / `Result<T>` return values; exceptions are not
// used on any engine path. Programming errors abort via CWF_CHECK.

#ifndef CONFLUENCE_COMMON_STATUS_H_
#define CONFLUENCE_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>

#include "common/check.h"

namespace cwf {

/// \brief Result category of an engine operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kAborted,
};

/// \brief Human-readable name for a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief A cheap, copyable success-or-error value.
///
/// `Status::OK()` carries no allocation; error statuses carry a code and a
/// message. Follow the RocksDB convention: functions that can fail for
/// data-dependent reasons return Status (or Result<T>), and callers must
/// check it.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief A value-or-Status, analogous to arrow::Result.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                 // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without value");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }

  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

  /// \brief Return the value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace cwf

// CWF_CHECK / CWF_CHECK_MSG and the rest of the invariant macro family live
// in common/check.h (included above).

/// \brief Propagate a non-OK Status to the caller.
#define CWF_RETURN_NOT_OK(expr)          \
  do {                                   \
    ::cwf::Status cwf_status_ = (expr);  \
    if (!cwf_status_.ok()) {             \
      return cwf_status_;                \
    }                                    \
  } while (0)

#define CWF_MACRO_CONCAT_INNER(x, y) x##y
#define CWF_MACRO_CONCAT(x, y) CWF_MACRO_CONCAT_INNER(x, y)

/// \brief Assign from a Result<T>, propagating its error.
#define CWF_ASSIGN_OR_RETURN(lhs, expr) \
  CWF_ASSIGN_OR_RETURN_IMPL(CWF_MACRO_CONCAT(cwf_result_, __LINE__), lhs, expr)

#define CWF_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) {                                \
    return tmp.status();                          \
  }                                               \
  lhs = std::move(tmp).value();

#endif  // CONFLUENCE_COMMON_STATUS_H_

// Clang Thread Safety Analysis annotation macros.
//
// The engine's lock discipline — which mutex guards which field, which
// private helpers assume the lock is already held — is machine-checked at
// compile time by Clang's -Wthread-safety analysis. These macros attach the
// capability annotations the analysis consumes; under compilers without the
// attribute (GCC, MSVC) they expand to nothing, so the annotated tree builds
// everywhere while the dedicated lint lane (CMake option
// CONFLUENCE_THREAD_SAFETY, CI lane "thread-safety", tools/check.sh) builds
// with clang and -Werror=thread-safety-analysis.
//
// Usage pattern (see docs/STATIC_ANALYSIS.md "Compile-time thread safety"):
//
//   class Account {
//    public:
//     void Deposit(int n) {
//       ScopedLock lock(mutex_);
//       balance_ += n;                    // OK: capability held
//     }
//    private:
//     void RebalanceLocked() CWF_REQUIRES(mutex_);  // caller must hold
//     mutable OrderedMutex mutex_{"Account::mutex"};
//     int balance_ CWF_GUARDED_BY(mutex_) = 0;
//   };
//
// Suppressions (CWF_NO_THREAD_SAFETY_ANALYSIS) are allowed only for the
// documented allowlist: condition-variable wait loops, which need
// std::unique_lock (release/reacquire across the wait is a lock pattern the
// analysis cannot model). Every suppression carries a comment naming the
// allowlist entry; the cwf-tidy lint checks and code review keep the list
// from growing silently.

#ifndef CONFLUENCE_COMMON_THREAD_ANNOTATIONS_H_
#define CONFLUENCE_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define CWF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CWF_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a capability (lockable) type. The string is the
/// capability kind used in diagnostics ("mutex").
#define CWF_CAPABILITY(x) CWF_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define CWF_SCOPED_CAPABILITY CWF_THREAD_ANNOTATION(scoped_lockable)

/// Field/variable may only be accessed while holding the given capability.
#define CWF_GUARDED_BY(x) CWF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointed-to* data is protected by the capability
/// (the pointer itself may be read freely).
#define CWF_PT_GUARDED_BY(x) CWF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and does not release it).
#define CWF_ACQUIRE(...) CWF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define CWF_RELEASE(...) CWF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the capability; acquires it iff it returns `ret`.
#define CWF_TRY_ACQUIRE(ret, ...) \
  CWF_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Caller must hold the capability to call this function.
#define CWF_REQUIRES(...) \
  CWF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself —
/// a deadlock guard against re-entry on non-recursive mutexes).
#define CWF_EXCLUDES(...) CWF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares a lock-acquisition ordering between two mutexes, checked
/// statically (complements the runtime lock-order detector).
#define CWF_ACQUIRED_BEFORE(...) \
  CWF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CWF_ACQUIRED_AFTER(...) \
  CWF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to data guarded by the capability.
#define CWF_RETURN_CAPABILITY(x) CWF_THREAD_ANNOTATION(lock_returned(x))

/// Asserts (at runtime) that the capability is held; teaches the analysis
/// the capability is held from here on.
#define CWF_ASSERT_CAPABILITY(x) \
  CWF_THREAD_ANNOTATION(assert_capability(x))

/// Opt a function out of the analysis. ONLY for documented allowlist
/// entries (see file comment); every use carries a `// ts-allowlist:`
/// comment naming the reason.
#define CWF_NO_THREAD_SAFETY_ANALYSIS \
  CWF_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // CONFLUENCE_COMMON_THREAD_ANNOTATIONS_H_

// Deterministic pseudo-random numbers for workload generation.
//
// All stochastic components (the Linear Road car simulator, failure
// injection in tests) draw from an explicitly seeded `Rng` so every
// experiment is reproducible bit-for-bit.

#ifndef CONFLUENCE_COMMON_RNG_H_
#define CONFLUENCE_COMMON_RNG_H_

#include <cstdint>

namespace cwf {

/// \brief A small, fast, seedable PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// \brief Uniform 64-bit value.
  uint64_t Next();

  /// \brief Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Bernoulli trial with probability `p`.
  bool NextBool(double p);

  /// \brief Sample from an exponential distribution with the given mean.
  double NextExponential(double mean);

  /// \brief Sample from a normal distribution (Box–Muller).
  double NextGaussian(double mean, double stddev);

 private:
  uint64_t s_[4];
};

}  // namespace cwf

#endif  // CONFLUENCE_COMMON_RNG_H_

#include "multi/connection_controller.h"

#include <algorithm>
#include <sstream>

namespace cwf {

Status ConnectionController::Register(std::unique_ptr<Manager> manager) {
  CWF_CHECK(manager != nullptr);
  if (Find(manager->name()).ok()) {
    return Status::AlreadyExists("workflow '" + manager->name() +
                                 "' already registered");
  }
  managers_.push_back(std::move(manager));
  return Status::OK();
}

Status ConnectionController::Remove(const std::string& name) {
  auto it = std::find_if(managers_.begin(), managers_.end(),
                         [&](const std::unique_ptr<Manager>& m) {
                           return m->name() == name;
                         });
  if (it == managers_.end()) {
    return Status::NotFound("no workflow '" + name + "'");
  }
  if ((*it)->state() != ManagerState::kStopped) {
    return Status::FailedPrecondition("workflow '" + name +
                                      "' must be stopped before removal");
  }
  managers_.erase(it);
  return Status::OK();
}

Result<Manager*> ConnectionController::Find(const std::string& name) const {
  for (const auto& m : managers_) {
    if (m->name() == name) {
      return m.get();
    }
  }
  return Status::NotFound("no workflow '" + name + "'");
}

std::vector<Manager*> ConnectionController::Managers() const {
  std::vector<Manager*> out;
  out.reserve(managers_.size());
  for (const auto& m : managers_) {
    out.push_back(m.get());
  }
  return out;
}

Result<std::string> ConnectionController::Execute(
    const std::string& command_line) {
  std::istringstream iss(command_line);
  std::string verb;
  iss >> verb;
  if (verb.empty()) {
    return Status::InvalidArgument("empty command");
  }
  if (verb == "list") {
    std::ostringstream oss;
    for (const auto& m : managers_) {
      oss << m->name() << " " << ManagerStateName(m->state()) << "\n";
    }
    return oss.str();
  }
  std::string name;
  iss >> name;
  if (name.empty()) {
    return Status::InvalidArgument("command '" + verb +
                                   "' requires a workflow name");
  }
  if (verb == "remove") {
    CWF_RETURN_NOT_OK(Remove(name));
    return std::string("removed " + name);
  }
  CWF_ASSIGN_OR_RETURN(Manager * manager, Find(name));
  if (verb == "status") {
    std::ostringstream oss;
    oss << manager->name() << " " << ManagerStateName(manager->state())
        << " cpu_used=" << manager->cpu_time_used() << "us";
    return oss.str();
  }
  if (verb == "pause") {
    CWF_RETURN_NOT_OK(manager->Pause());
    return std::string("paused " + name);
  }
  if (verb == "resume") {
    CWF_RETURN_NOT_OK(manager->Resume());
    return std::string("resumed " + name);
  }
  if (verb == "stop") {
    CWF_RETURN_NOT_OK(manager->Stop());
    return std::string("stopped " + name);
  }
  return Status::InvalidArgument("unknown command '" + verb + "'");
}

}  // namespace cwf

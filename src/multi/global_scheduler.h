// The top level of the two-level multi-CWf scheduling design (paper §5).
//
// Each workflow's director runs its own local scheduler; the global
// scheduler distributes CPU capacity across workflow instances by
// allocating execution quanta to their Managers according to a capacity
// distribution policy.

#ifndef CONFLUENCE_MULTI_GLOBAL_SCHEDULER_H_
#define CONFLUENCE_MULTI_GLOBAL_SCHEDULER_H_

#include <vector>

#include "multi/manager.h"

namespace cwf {

/// \brief CPU capacity distribution policies.
enum class CapacityPolicy {
  kEqualShare,     ///< identical quantum for every running workflow
  kWeightedShare,  ///< quantum proportional to workflow weight
};

/// \brief Global-scheduler tuning knobs.
struct GlobalSchedulerOptions {
  CapacityPolicy policy = CapacityPolicy::kEqualShare;
  /// Base CPU quantum per turn, in microseconds.
  Duration base_quantum = 10000;
};

/// \brief Round-robin allocator of CPU quanta over workflow Managers.
class GlobalScheduler {
 public:
  using Options = GlobalSchedulerOptions;

  explicit GlobalScheduler(Options options = {});

  /// \brief Register a managed workflow with a capacity weight.
  void AddManager(Manager* manager, double weight = 1.0);

  /// \brief Drive all running workflows until the shared clock passes
  /// `until` or everything drains.
  Status Run(Clock* clock, Timestamp until);

  /// \brief Number of allocation turns taken so far.
  uint64_t turns() const { return turns_; }

 private:
  struct Slot {
    Manager* manager;
    double weight;
  };

  Duration QuantumFor(const Slot& slot) const;

  Options options_;
  std::vector<Slot> slots_;
  uint64_t turns_ = 0;
};

}  // namespace cwf

#endif  // CONFLUENCE_MULTI_GLOBAL_SCHEDULER_H_

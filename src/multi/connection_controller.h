// The ConnectionController: external control of multiple running workflows.
//
// "When Kepler/Confluence is started in multi-workflow mode the
// ConnectionController is instantiated and is listening for commands to
// manage running workflows as well as add and remove them from the running
// list." This implementation exposes the same command protocol over an
// in-process string interface (a network front-end would forward lines to
// Execute()).

#ifndef CONFLUENCE_MULTI_CONNECTION_CONTROLLER_H_
#define CONFLUENCE_MULTI_CONNECTION_CONTROLLER_H_

#include <memory>
#include <string>
#include <vector>

#include "multi/global_scheduler.h"

namespace cwf {

/// \brief Command console for the multi-workflow runtime.
///
/// Commands: `list` | `status <wf>` | `pause <wf>` | `resume <wf>` |
/// `stop <wf>` | `remove <wf>`. Workflows are registered programmatically
/// via Register() (an `add` over the wire would deserialize a workflow
/// spec, which is out of scope here).
class ConnectionController {
 public:
  ConnectionController() = default;

  /// \brief Take ownership of a managed workflow and make it addressable by
  /// name.
  Status Register(std::unique_ptr<Manager> manager);

  /// \brief Remove a stopped workflow from the running list.
  Status Remove(const std::string& name);

  /// \brief Look up a managed workflow.
  Result<Manager*> Find(const std::string& name) const;

  /// \brief Parse and execute one command line; returns the reply text.
  Result<std::string> Execute(const std::string& command_line);

  /// \brief All managed workflows (for the global scheduler).
  std::vector<Manager*> Managers() const;

 private:
  std::vector<std::unique_ptr<Manager>> managers_;
};

}  // namespace cwf

#endif  // CONFLUENCE_MULTI_CONNECTION_CONTROLLER_H_

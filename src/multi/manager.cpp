#include "multi/manager.h"

namespace cwf {

const char* ManagerStateName(ManagerState state) {
  switch (state) {
    case ManagerState::kCreated:
      return "CREATED";
    case ManagerState::kRunning:
      return "RUNNING";
    case ManagerState::kPaused:
      return "PAUSED";
    case ManagerState::kStopped:
      return "STOPPED";
  }
  return "?";
}

Manager::Manager(std::string name, std::unique_ptr<Workflow> workflow,
                 std::unique_ptr<Director> director)
    : name_(std::move(name)),
      workflow_(std::move(workflow)),
      director_(std::move(director)) {
  CWF_CHECK(workflow_ != nullptr && director_ != nullptr);
}

Status Manager::Initialize(Clock* clock, const CostModel* cost_model) {
  if (state_ != ManagerState::kCreated) {
    return Status::FailedPrecondition("manager '" + name_ +
                                      "' already initialized");
  }
  clock_ = clock;
  CWF_RETURN_NOT_OK(director_->Initialize(workflow_.get(), clock, cost_model));
  state_ = ManagerState::kRunning;
  return Status::OK();
}

Status Manager::RunSlice(Duration quantum) {
  if (state_ != ManagerState::kRunning) {
    return Status::OK();
  }
  const Timestamp start = clock_->Now();
  CWF_RETURN_NOT_OK(director_->Run(start + quantum));
  cpu_used_ += clock_->Now() - start;
  return Status::OK();
}

bool Manager::HasPendingWork() const {
  return state_ == ManagerState::kRunning && director_->HasPendingWork();
}

Timestamp Manager::NextWakeup() const {
  if (state_ != ManagerState::kRunning) {
    return Timestamp::Max();
  }
  return director_->NextWakeup();
}

Status Manager::Pause() {
  if (state_ != ManagerState::kRunning) {
    return Status::FailedPrecondition("manager '" + name_ + "' is not running");
  }
  state_ = ManagerState::kPaused;
  return Status::OK();
}

Status Manager::Resume() {
  if (state_ != ManagerState::kPaused) {
    return Status::FailedPrecondition("manager '" + name_ + "' is not paused");
  }
  state_ = ManagerState::kRunning;
  return Status::OK();
}

Status Manager::Stop() {
  if (state_ == ManagerState::kStopped) {
    return Status::OK();
  }
  if (state_ != ManagerState::kCreated) {
    CWF_RETURN_NOT_OK(director_->Wrapup());
  }
  state_ = ManagerState::kStopped;
  return Status::OK();
}

}  // namespace cwf

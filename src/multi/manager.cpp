#include "multi/manager.h"

#include "common/check.h"

namespace cwf {

const char* ManagerStateName(ManagerState state) {
  switch (state) {
    case ManagerState::kCreated:
      return "CREATED";
    case ManagerState::kRunning:
      return "RUNNING";
    case ManagerState::kPaused:
      return "PAUSED";
    case ManagerState::kStopped:
      return "STOPPED";
  }
  return "?";
}

Manager::Manager(std::string name, std::unique_ptr<Workflow> workflow,
                 std::unique_ptr<Director> director)
    : name_(std::move(name)),
      workflow_(std::move(workflow)),
      director_(std::move(director)) {
  CWF_ASSERT(workflow_ != nullptr && director_ != nullptr);
}

Status Manager::Initialize(Clock* clock, const CostModel* cost_model) {
  {
    ScopedLock lock(mutex_);
    if (state_ != ManagerState::kCreated) {
      return Status::FailedPrecondition("manager '" + name_ +
                                        "' already initialized");
    }
    clock_ = clock;
  }
  CWF_RETURN_NOT_OK(director_->Initialize(workflow_.get(), clock, cost_model));
  ScopedLock lock(mutex_);
  state_ = ManagerState::kRunning;
  return Status::OK();
}

Status Manager::RunSlice(Duration quantum) {
  Timestamp start;
  {
    ScopedLock lock(mutex_);
    if (state_ != ManagerState::kRunning) {
      return Status::OK();
    }
    CWF_ASSERT_MSG(clock_ != nullptr,
                   "manager '" << name_ << "' running without a clock");
    start = clock_->Now();
  }
  // The slice itself runs unlocked: a Pause()/Stop() issued concurrently
  // takes effect at the next slice boundary.
  CWF_RETURN_NOT_OK(director_->Run(start + quantum));
  ScopedLock lock(mutex_);
  cpu_used_ += clock_->Now() - start;
  return Status::OK();
}

bool Manager::HasPendingWork() const {
  return state() == ManagerState::kRunning && director_->HasPendingWork();
}

Timestamp Manager::NextWakeup() const {
  if (state() != ManagerState::kRunning) {
    return Timestamp::Max();
  }
  return director_->NextWakeup();
}

Status Manager::Pause() {
  ScopedLock lock(mutex_);
  if (state_ != ManagerState::kRunning) {
    return Status::FailedPrecondition("manager '" + name_ + "' is not running");
  }
  state_ = ManagerState::kPaused;
  return Status::OK();
}

Status Manager::Resume() {
  ScopedLock lock(mutex_);
  if (state_ != ManagerState::kPaused) {
    return Status::FailedPrecondition("manager '" + name_ + "' is not paused");
  }
  state_ = ManagerState::kRunning;
  return Status::OK();
}

Status Manager::Stop() {
  {
    ScopedLock lock(mutex_);
    if (state_ == ManagerState::kStopped) {
      return Status::OK();
    }
    if (state_ == ManagerState::kCreated) {
      state_ = ManagerState::kStopped;
      return Status::OK();
    }
  }
  CWF_RETURN_NOT_OK(director_->Wrapup());
  ScopedLock lock(mutex_);
  state_ = ManagerState::kStopped;
  return Status::OK();
}

}  // namespace cwf

#include "multi/global_scheduler.h"

namespace cwf {

GlobalScheduler::GlobalScheduler(Options options) : options_(options) {}

void GlobalScheduler::AddManager(Manager* manager, double weight) {
  CWF_CHECK(manager != nullptr);
  CWF_CHECK_MSG(weight > 0, "capacity weight must be positive");
  slots_.push_back({manager, weight});
}

Duration GlobalScheduler::QuantumFor(const Slot& slot) const {
  switch (options_.policy) {
    case CapacityPolicy::kEqualShare:
      return options_.base_quantum;
    case CapacityPolicy::kWeightedShare:
      return static_cast<Duration>(
          static_cast<double>(options_.base_quantum) * slot.weight);
  }
  return options_.base_quantum;
}

Status GlobalScheduler::Run(Clock* clock, Timestamp until) {
  CWF_CHECK(clock != nullptr);
  for (;;) {
    if (clock->Now() >= until) {
      break;
    }
    bool progressed = false;
    for (Slot& slot : slots_) {
      if (clock->Now() >= until) {
        break;
      }
      if (!slot.manager->HasPendingWork()) {
        continue;
      }
      ++turns_;
      CWF_RETURN_NOT_OK(slot.manager->RunSlice(QuantumFor(slot)));
      progressed = true;
    }
    if (progressed) {
      continue;
    }
    // Nothing runnable now: jump to the earliest wakeup of any workflow.
    Timestamp next = Timestamp::Max();
    for (const Slot& slot : slots_) {
      const Timestamp w = slot.manager->NextWakeup();
      if (w < next) {
        next = w;
      }
    }
    if (next == Timestamp::Max() || next > until || !clock->is_virtual()) {
      break;
    }
    if (next > clock->Now()) {
      clock->AdvanceTo(next);
    } else {
      break;
    }
  }
  return Status::OK();
}

}  // namespace cwf

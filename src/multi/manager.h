// The Manager: lifecycle control of one workflow instance.
//
// Mirrors the PtolemyII/Kepler Manager module the paper's multi-workflow
// design (§5, Figure 9) builds on: the top-level global scheduler switches
// between workflows using the Manager methods initialize(), pause(),
// resume(), stop().

#ifndef CONFLUENCE_MULTI_MANAGER_H_
#define CONFLUENCE_MULTI_MANAGER_H_

#include <memory>
#include <string>

#include "common/lock_registry.h"
#include "core/director.h"

namespace cwf {

/// \brief Lifecycle state of a managed workflow.
enum class ManagerState { kCreated, kRunning, kPaused, kStopped };

const char* ManagerStateName(ManagerState state);

/// \brief Owns one workflow plus its (local-scheduler) director and drives
/// it in time slices handed out by the global scheduler.
class Manager {
 public:
  Manager(std::string name, std::unique_ptr<Workflow> workflow,
          std::unique_ptr<Director> director);

  const std::string& name() const { return name_; }
  Workflow* workflow() { return workflow_.get(); }
  Director* director() { return director_.get(); }
  ManagerState state() const {
    ScopedLock lock(mutex_);
    return state_;
  }

  /// \brief Initialize the director; transitions kCreated -> kRunning.
  Status Initialize(Clock* clock, const CostModel* cost_model);

  /// \brief Execute the workflow for one CPU quantum (until the shared
  /// clock passes now + quantum). No-op unless kRunning.
  Status RunSlice(Duration quantum);

  /// \brief Whether a slice now would do useful work.
  bool HasPendingWork() const;

  /// \brief Earliest future wakeup of this workflow (Max when drained).
  Timestamp NextWakeup() const;

  Status Pause();
  Status Resume();
  Status Stop();

  /// \brief Total virtual CPU time this workflow has been allocated.
  Duration cpu_time_used() const {
    ScopedLock lock(mutex_);
    return cpu_used_;
  }

 private:
  std::string name_;
  std::unique_ptr<Workflow> workflow_;
  std::unique_ptr<Director> director_;
  /// Guards state_/clock_/cpu_used_: lifecycle transitions may come from a
  /// control thread (connection controller) while the global scheduler
  /// drives slices. Never held across director_->Run(), so a transition
  /// requested mid-slice takes effect at the next slice boundary.
  mutable OrderedMutex mutex_{"Manager::mutex"};
  ManagerState state_ CWF_GUARDED_BY(mutex_) = ManagerState::kCreated;
  Clock* clock_ CWF_GUARDED_BY(mutex_) = nullptr;
  Duration cpu_used_ CWF_GUARDED_BY(mutex_) = 0;
};

}  // namespace cwf

#endif  // CONFLUENCE_MULTI_MANAGER_H_

// Push communication into the workflow.
//
// CONFLuEnCE supports push communication from external stream sources (the
// paper's actors connect over TCP/HTTP). This module provides the transport
// those actors read from: a thread-safe channel that external producers push
// timestamped tuples into, and that source actors drain "at a rate dictated
// by the director's execution model". For reproducible experiments, a whole
// Trace can be pre-loaded.

#ifndef CONFLUENCE_STREAM_PUSH_CHANNEL_H_
#define CONFLUENCE_STREAM_PUSH_CHANNEL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "common/lock_registry.h"
#include "core/schema.h"
#include "stream/trace.h"

namespace cwf {

/// \brief Result of a non-aborting deposit attempt.
enum class PushOutcome {
  kAccepted,  ///< tuple queued
  kFull,      ///< bounded channel at capacity; tuple NOT queued
  kClosed,    ///< channel closed; tuple NOT queued
};

/// \brief Thread-safe queue of externally arriving tuples.
class PushChannel {
 public:
  PushChannel() = default;

  /// \brief Bound the queue at `capacity` tuples (0 = unbounded, the
  /// default). With a bound, Offer()/TryPush()/TryPushBatch() refuse
  /// deposits at capacity — the hook per-connection ingest backpressure
  /// hangs off. Preloads (PushTrace) and the aborting Push() ignore the
  /// bound: they are harness-side paths, not network producers.
  void SetCapacity(size_t capacity);

  size_t capacity() const;

  /// \brief Producer side: deposit a tuple arriving at `arrival`.
  /// Pushing into a closed channel violates the engine's shutdown
  /// invariant and aborts; racy producers should use TryPush().
  void Push(Token token, Timestamp arrival);

  /// \brief Producer side, shutdown- and capacity-tolerant: deposit the
  /// tuple unless the channel is closed or (when bounded) full, reporting
  /// which. Network producers react to kFull by pausing their connection
  /// until space_available fires.
  PushOutcome Offer(Token token, Timestamp arrival);

  /// \brief Producer side, shutdown-tolerant: deposit the tuple unless the
  /// channel has been closed or is at capacity. Returns false (dropping
  /// the tuple) when refused — the natural semantics for network producers
  /// that race with engine shutdown. Use Offer() to distinguish full from
  /// closed.
  bool TryPush(Token token, Timestamp arrival);

  /// \brief Producer side, bulk: deposit entries from the front of
  /// `entries` under ONE lock acquisition, stopping at capacity or close.
  /// Returns the count accepted (tokens of accepted entries are moved
  /// from). Lets a network read path deposit a whole decoded buffer
  /// without per-tuple lock traffic; check closed() when 0 comes back to
  /// tell a full channel from a dead one.
  size_t TryPushBatch(std::span<TraceEntry> entries);

  /// \brief Register `cb`, invoked (outside the channel lock, from the
  /// consumer thread) when a bounded channel that refused a deposit drains
  /// back to its resume threshold (half capacity). One registration; pass
  /// nullptr to clear. The callback must be cheap and non-blocking — the
  /// ingest server's is an eventfd wakeup.
  void SetSpaceAvailableCallback(std::function<void()> cb);

  /// \brief Pre-load every entry of a trace (producer side, bulk).
  void PushTrace(const Trace& trace);

  /// \brief Declare the token type this channel carries. Set by the owning
  /// StreamSourceActor from its declared output schema at Initialize; debug
  /// builds (CWF_SCHEMA_CHECK) then validate every pushed token against it,
  /// so a malformed external tuple aborts at the ingestion boundary with a
  /// CWF7008 message naming the channel and field instead of CHECK-failing
  /// deep inside a downstream actor.
  void SetExpectedSchema(TokenType type, std::string channel_name);

  /// \brief The declared token type (unknown when never set). Network
  /// front doors validate against it BEFORE depositing so a malformed
  /// external tuple becomes a counted reject instead of tripping the
  /// channel's CWF7008 abort.
  TokenType expected_schema() const;

  /// \brief Non-fatal boundary check of `token` against the declared
  /// schema (OK when none is declared).
  Status CheckToken(const Token& token) const;

  /// \brief Mark the stream finished: no further pushes will come.
  void Close();

  bool closed() const;

  /// \brief Consumer side: remove and return tuples with arrival <= now,
  /// up to `max_batch` (0 = unlimited).
  std::vector<TraceEntry> PopArrived(Timestamp now, size_t max_batch = 0);

  /// \brief Arrival time of the oldest queued tuple; Timestamp::Max() when
  /// empty.
  Timestamp NextArrival() const;

  /// \brief Queued tuple count.
  size_t Pending() const;

  /// \brief Block (real-time mode) until a tuple is queued or the channel is
  /// closed; returns immediately if either already holds.
  void WaitForData() const CWF_EXCLUDES(mutex_);

 private:
  /// \brief CHECK-fails (debug builds) when `token` violates the declared
  /// schema. Caller holds mutex_.
  void ValidateLocked(const Token& token) const CWF_REQUIRES(mutex_);

  /// \brief Whether a deposit must be refused. Caller holds mutex_.
  bool AtCapacityLocked() const CWF_REQUIRES(mutex_) {
    return capacity_ > 0 && queue_.size() >= capacity_;
  }

  /// \brief The space-available callback to run after the current pop, or
  /// nullptr. Caller holds mutex_; the returned copy is invoked unlocked.
  std::function<void()> TakeSpaceSignalLocked() CWF_REQUIRES(mutex_);

  mutable OrderedMutex mutex_{"PushChannel::mutex"};
  mutable std::condition_variable_any cv_;
  std::deque<TraceEntry> queue_ CWF_GUARDED_BY(mutex_);
  bool closed_ CWF_GUARDED_BY(mutex_) = false;
  size_t capacity_ CWF_GUARDED_BY(mutex_) = 0;
  /// A producer was refused with kFull and has not been signaled since.
  bool producer_waiting_ CWF_GUARDED_BY(mutex_) = false;
  std::function<void()> space_cb_ CWF_GUARDED_BY(mutex_);
  TokenType expected_ CWF_GUARDED_BY(mutex_);
  std::string channel_name_ CWF_GUARDED_BY(mutex_);
};

using PushChannelPtr = std::shared_ptr<PushChannel>;

}  // namespace cwf

#endif  // CONFLUENCE_STREAM_PUSH_CHANNEL_H_

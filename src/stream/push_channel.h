// Push communication into the workflow.
//
// CONFLuEnCE supports push communication from external stream sources (the
// paper's actors connect over TCP/HTTP). This module provides the transport
// those actors read from: a thread-safe channel that external producers push
// timestamped tuples into, and that source actors drain "at a rate dictated
// by the director's execution model". For reproducible experiments, a whole
// Trace can be pre-loaded.

#ifndef CONFLUENCE_STREAM_PUSH_CHANNEL_H_
#define CONFLUENCE_STREAM_PUSH_CHANNEL_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <string>

#include "common/lock_registry.h"
#include "core/schema.h"
#include "stream/trace.h"

namespace cwf {

/// \brief Thread-safe queue of externally arriving tuples.
class PushChannel {
 public:
  PushChannel() = default;

  /// \brief Producer side: deposit a tuple arriving at `arrival`.
  /// Pushing into a closed channel violates the engine's shutdown
  /// invariant and aborts; racy producers should use TryPush().
  void Push(Token token, Timestamp arrival);

  /// \brief Producer side, shutdown-tolerant: deposit the tuple unless the
  /// channel has been closed. Returns false (dropping the tuple) when
  /// closed — the natural semantics for network producers that race with
  /// engine shutdown.
  bool TryPush(Token token, Timestamp arrival);

  /// \brief Pre-load every entry of a trace (producer side, bulk).
  void PushTrace(const Trace& trace);

  /// \brief Declare the token type this channel carries. Set by the owning
  /// StreamSourceActor from its declared output schema at Initialize; debug
  /// builds (CWF_SCHEMA_CHECK) then validate every pushed token against it,
  /// so a malformed external tuple aborts at the ingestion boundary with a
  /// CWF7008 message naming the channel and field instead of CHECK-failing
  /// deep inside a downstream actor.
  void SetExpectedSchema(TokenType type, std::string channel_name);

  /// \brief Mark the stream finished: no further pushes will come.
  void Close();

  bool closed() const;

  /// \brief Consumer side: remove and return tuples with arrival <= now,
  /// up to `max_batch` (0 = unlimited).
  std::vector<TraceEntry> PopArrived(Timestamp now, size_t max_batch = 0);

  /// \brief Arrival time of the oldest queued tuple; Timestamp::Max() when
  /// empty.
  Timestamp NextArrival() const;

  /// \brief Queued tuple count.
  size_t Pending() const;

  /// \brief Block (real-time mode) until a tuple is queued or the channel is
  /// closed; returns immediately if either already holds.
  void WaitForData() const CWF_EXCLUDES(mutex_);

 private:
  /// \brief CHECK-fails (debug builds) when `token` violates the declared
  /// schema. Caller holds mutex_.
  void ValidateLocked(const Token& token) const CWF_REQUIRES(mutex_);

  mutable OrderedMutex mutex_{"PushChannel::mutex"};
  mutable std::condition_variable_any cv_;
  std::deque<TraceEntry> queue_ CWF_GUARDED_BY(mutex_);
  bool closed_ CWF_GUARDED_BY(mutex_) = false;
  TokenType expected_ CWF_GUARDED_BY(mutex_);
  std::string channel_name_ CWF_GUARDED_BY(mutex_);
};

using PushChannelPtr = std::shared_ptr<PushChannel>;

}  // namespace cwf

#endif  // CONFLUENCE_STREAM_PUSH_CHANNEL_H_

#include "stream/push_channel.h"

namespace cwf {

void PushChannel::Push(Token token, Timestamp arrival) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CWF_CHECK_MSG(!closed_, "Push() on a closed channel");
    queue_.push_back({arrival, std::move(token)});
  }
  cv_.notify_all();
}

void PushChannel::PushTrace(const Trace& trace) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CWF_CHECK_MSG(!closed_, "PushTrace() on a closed channel");
    for (const TraceEntry& e : trace.entries()) {
      queue_.push_back(e);
    }
  }
  cv_.notify_all();
}

void PushChannel::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool PushChannel::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::vector<TraceEntry> PushChannel::PopArrived(Timestamp now,
                                                size_t max_batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEntry> out;
  while (!queue_.empty() && queue_.front().arrival <= now &&
         (max_batch == 0 || out.size() < max_batch)) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return out;
}

Timestamp PushChannel::NextArrival() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.empty() ? Timestamp::Max() : queue_.front().arrival;
}

size_t PushChannel::Pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void PushChannel::WaitForData() const {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
}

}  // namespace cwf

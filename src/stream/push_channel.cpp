#include "stream/push_channel.h"

#include "common/check.h"

#ifdef CWF_OBS_ENABLED
#include "obs/metrics.h"
#include "obs/telemetry.h"
#endif

namespace cwf {

namespace {

void BumpSchemaViolationCounter() {
#ifdef CWF_OBS_ENABLED
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global().SetHelp(
        "cwf_schema_violations",
        "Tokens rejected by the runtime channel schema check (CWF7008)");
    obs::MetricsRegistry::Global().GetCounter("cwf_schema_violations")->Add(1);
  }
#endif
}

}  // namespace

void PushChannel::SetExpectedSchema(TokenType type, std::string channel_name) {
  ScopedLock lock(mutex_);
  expected_ = std::move(type);
  channel_name_ = std::move(channel_name);
}

void PushChannel::ValidateLocked(const Token& token) const {
  if (expected_.is_unknown()) {
    return;
  }
  Status check = expected_.CheckToken(token);
  if (check.ok()) {
    return;
  }
  BumpSchemaViolationCounter();
  CWF_ASSERT_MSG(false, "CWF7008: runtime schema violation on push channel '"
                            << channel_name_ << "': " << check.message());
}

void PushChannel::Push(Token token, Timestamp arrival) {
  {
    ScopedLock lock(mutex_);
    CWF_ASSERT_MSG(!closed_, "Push() on a closed channel");
#if CWF_SCHEMA_CHECK_IS_ON
    ValidateLocked(token);
#endif
    queue_.push_back({arrival, std::move(token)});
  }
  cv_.notify_all();
}

bool PushChannel::TryPush(Token token, Timestamp arrival) {
  {
    ScopedLock lock(mutex_);
    if (closed_) {
      return false;
    }
#if CWF_SCHEMA_CHECK_IS_ON
    ValidateLocked(token);
#endif
    queue_.push_back({arrival, std::move(token)});
  }
  cv_.notify_all();
  return true;
}

void PushChannel::PushTrace(const Trace& trace) {
  {
    ScopedLock lock(mutex_);
    CWF_ASSERT_MSG(!closed_, "PushTrace() on a closed channel");
    for (const TraceEntry& e : trace.entries()) {
#if CWF_SCHEMA_CHECK_IS_ON
      ValidateLocked(e.token);
#endif
      queue_.push_back(e);
    }
  }
  cv_.notify_all();
}

void PushChannel::Close() {
  {
    ScopedLock lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool PushChannel::closed() const {
  ScopedLock lock(mutex_);
  return closed_;
}

std::vector<TraceEntry> PushChannel::PopArrived(Timestamp now,
                                                size_t max_batch) {
  ScopedLock lock(mutex_);
  std::vector<TraceEntry> out;
  while (!queue_.empty() && queue_.front().arrival <= now &&
         (max_batch == 0 || out.size() < max_batch)) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return out;
}

Timestamp PushChannel::NextArrival() const {
  ScopedLock lock(mutex_);
  return queue_.empty() ? Timestamp::Max() : queue_.front().arrival;
}

size_t PushChannel::Pending() const {
  ScopedLock lock(mutex_);
  return queue_.size();
}

// ts-allowlist: condition-variable wait — the release/reacquire cycle of
// cv_.wait() on a std::unique_lock is a lock pattern the thread-safety
// analysis cannot model (see common/thread_annotations.h).
void PushChannel::WaitForData() const CWF_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<OrderedMutex> lock(mutex_);
  while (queue_.empty() && !closed_) {
    // cwf-tidy-allow(cwf-unbounded-wait): predicate is the enclosing while
    cv_.wait(lock);
  }
}

}  // namespace cwf

#include "stream/push_channel.h"

#include "common/check.h"

#ifdef CWF_OBS_ENABLED
#include "obs/metrics.h"
#include "obs/telemetry.h"
#endif

namespace cwf {

namespace {

void BumpSchemaViolationCounter() {
#ifdef CWF_OBS_ENABLED
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global().SetHelp(
        "cwf_schema_violations",
        "Tokens rejected by the runtime channel schema check (CWF7008)");
    obs::MetricsRegistry::Global().GetCounter("cwf_schema_violations")->Add(1);
  }
#endif
}

}  // namespace

void PushChannel::SetExpectedSchema(TokenType type, std::string channel_name) {
  ScopedLock lock(mutex_);
  expected_ = std::move(type);
  channel_name_ = std::move(channel_name);
}

TokenType PushChannel::expected_schema() const {
  ScopedLock lock(mutex_);
  return expected_;
}

Status PushChannel::CheckToken(const Token& token) const {
  ScopedLock lock(mutex_);
  if (expected_.is_unknown()) {
    return Status::OK();
  }
  return expected_.CheckToken(token);
}

void PushChannel::SetCapacity(size_t capacity) {
  ScopedLock lock(mutex_);
  capacity_ = capacity;
}

size_t PushChannel::capacity() const {
  ScopedLock lock(mutex_);
  return capacity_;
}

void PushChannel::SetSpaceAvailableCallback(std::function<void()> cb) {
  ScopedLock lock(mutex_);
  space_cb_ = std::move(cb);
}

void PushChannel::ValidateLocked(const Token& token) const {
  if (expected_.is_unknown()) {
    return;
  }
  Status check = expected_.CheckToken(token);
  if (check.ok()) {
    return;
  }
  BumpSchemaViolationCounter();
  CWF_ASSERT_MSG(false, "CWF7008: runtime schema violation on push channel '"
                            << channel_name_ << "': " << check.message());
}

void PushChannel::Push(Token token, Timestamp arrival) {
  {
    ScopedLock lock(mutex_);
    CWF_ASSERT_MSG(!closed_, "Push() on a closed channel");
#if CWF_SCHEMA_CHECK_IS_ON
    ValidateLocked(token);
#endif
    queue_.push_back({arrival, std::move(token)});
  }
  cv_.notify_all();
}

PushOutcome PushChannel::Offer(Token token, Timestamp arrival) {
  {
    ScopedLock lock(mutex_);
    if (closed_) {
      return PushOutcome::kClosed;
    }
    if (AtCapacityLocked()) {
      producer_waiting_ = true;
      return PushOutcome::kFull;
    }
#if CWF_SCHEMA_CHECK_IS_ON
    ValidateLocked(token);
#endif
    queue_.push_back({arrival, std::move(token)});
  }
  cv_.notify_all();
  return PushOutcome::kAccepted;
}

bool PushChannel::TryPush(Token token, Timestamp arrival) {
  return Offer(std::move(token), arrival) == PushOutcome::kAccepted;
}

size_t PushChannel::TryPushBatch(std::span<TraceEntry> entries) {
  size_t accepted = 0;
  {
    ScopedLock lock(mutex_);
    if (closed_) {
      return 0;
    }
    for (TraceEntry& entry : entries) {
      if (AtCapacityLocked()) {
        producer_waiting_ = true;
        break;
      }
#if CWF_SCHEMA_CHECK_IS_ON
      ValidateLocked(entry.token);
#endif
      queue_.push_back({entry.arrival, std::move(entry.token)});
      ++accepted;
    }
  }
  if (accepted > 0) {
    cv_.notify_all();
  }
  return accepted;
}

void PushChannel::PushTrace(const Trace& trace) {
  {
    ScopedLock lock(mutex_);
    CWF_ASSERT_MSG(!closed_, "PushTrace() on a closed channel");
    for (const TraceEntry& e : trace.entries()) {
#if CWF_SCHEMA_CHECK_IS_ON
      ValidateLocked(e.token);
#endif
      queue_.push_back(e);
    }
  }
  cv_.notify_all();
}

std::function<void()> PushChannel::TakeSpaceSignalLocked() {
  // Signal once the queue has drained to half its bound (hysteresis: a
  // resumed producer gets a burst of space, not a one-tuple window), or on
  // close (so a paused producer learns the channel is gone).
  if (!producer_waiting_ || !space_cb_) {
    return nullptr;
  }
  const size_t resume_at = capacity_ / 2;  // 0 for capacity 1: full drain
  if (!closed_ && capacity_ > 0 && queue_.size() > resume_at) {
    return nullptr;
  }
  producer_waiting_ = false;
  return space_cb_;
}

void PushChannel::Close() {
  std::function<void()> signal;
  {
    ScopedLock lock(mutex_);
    closed_ = true;
    signal = TakeSpaceSignalLocked();
  }
  cv_.notify_all();
  if (signal) {
    signal();
  }
}

bool PushChannel::closed() const {
  ScopedLock lock(mutex_);
  return closed_;
}

std::vector<TraceEntry> PushChannel::PopArrived(Timestamp now,
                                                size_t max_batch) {
  std::vector<TraceEntry> out;
  std::function<void()> signal;
  {
    ScopedLock lock(mutex_);
    while (!queue_.empty() && queue_.front().arrival <= now &&
           (max_batch == 0 || out.size() < max_batch)) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (!out.empty()) {
      signal = TakeSpaceSignalLocked();
    }
  }
  if (signal) {
    signal();
  }
  return out;
}

Timestamp PushChannel::NextArrival() const {
  ScopedLock lock(mutex_);
  return queue_.empty() ? Timestamp::Max() : queue_.front().arrival;
}

size_t PushChannel::Pending() const {
  ScopedLock lock(mutex_);
  return queue_.size();
}

// ts-allowlist: condition-variable wait — the release/reacquire cycle of
// cv_.wait() on a std::unique_lock is a lock pattern the thread-safety
// analysis cannot model (see common/thread_annotations.h).
void PushChannel::WaitForData() const CWF_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<OrderedMutex> lock(mutex_);
  while (queue_.empty() && !closed_) {
    // cwf-tidy-allow(cwf-unbounded-wait): predicate is the enclosing while
    cv_.wait(lock);
  }
}

}  // namespace cwf

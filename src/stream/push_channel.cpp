#include "stream/push_channel.h"

#include "common/check.h"

namespace cwf {

void PushChannel::Push(Token token, Timestamp arrival) {
  {
    ScopedLock lock(mutex_);
    CWF_ASSERT_MSG(!closed_, "Push() on a closed channel");
    queue_.push_back({arrival, std::move(token)});
  }
  cv_.notify_all();
}

bool PushChannel::TryPush(Token token, Timestamp arrival) {
  {
    ScopedLock lock(mutex_);
    if (closed_) {
      return false;
    }
    queue_.push_back({arrival, std::move(token)});
  }
  cv_.notify_all();
  return true;
}

void PushChannel::PushTrace(const Trace& trace) {
  {
    ScopedLock lock(mutex_);
    CWF_ASSERT_MSG(!closed_, "PushTrace() on a closed channel");
    for (const TraceEntry& e : trace.entries()) {
      queue_.push_back(e);
    }
  }
  cv_.notify_all();
}

void PushChannel::Close() {
  {
    ScopedLock lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool PushChannel::closed() const {
  ScopedLock lock(mutex_);
  return closed_;
}

std::vector<TraceEntry> PushChannel::PopArrived(Timestamp now,
                                                size_t max_batch) {
  ScopedLock lock(mutex_);
  std::vector<TraceEntry> out;
  while (!queue_.empty() && queue_.front().arrival <= now &&
         (max_batch == 0 || out.size() < max_batch)) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return out;
}

Timestamp PushChannel::NextArrival() const {
  ScopedLock lock(mutex_);
  return queue_.empty() ? Timestamp::Max() : queue_.front().arrival;
}

size_t PushChannel::Pending() const {
  ScopedLock lock(mutex_);
  return queue_.size();
}

// ts-allowlist: condition-variable wait — the release/reacquire cycle of
// cv_.wait() on a std::unique_lock is a lock pattern the thread-safety
// analysis cannot model (see common/thread_annotations.h).
void PushChannel::WaitForData() const CWF_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<OrderedMutex> lock(mutex_);
  while (queue_.empty() && !closed_) {
    // cwf-tidy-allow(cwf-unbounded-wait): predicate is the enclosing while
    cv_.wait(lock);
  }
}

}  // namespace cwf

// Recorded streams: (arrival time, token) sequences.
//
// Traces make workloads replayable: the Linear Road generator emits a trace
// once, and every scheduler under comparison consumes the identical tuple
// sequence. Traces serialize to a simple TSV format for offline inspection.

#ifndef CONFLUENCE_STREAM_TRACE_H_
#define CONFLUENCE_STREAM_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "core/token.h"

namespace cwf {

/// \brief One externally arriving tuple.
struct TraceEntry {
  Timestamp arrival;
  Token token;
};

/// \brief Serialize a token as the trace body format
/// ("field=tag:value;field=tag:value"); scalars become a single `value=`
/// field. Shared by trace files and the TCP line protocol.
std::string SerializeTokenBody(const Token& token);

/// \brief Parse a SerializeTokenBody() string back into a record token.
/// An empty body parses to the nil token.
Result<Token> ParseTokenBody(const std::string& body);

/// \brief An ordered, replayable stream recording.
class Trace {
 public:
  Trace() = default;

  /// \brief Append an entry (call Sort() afterwards if arrivals are not
  /// appended in order).
  void Add(Timestamp arrival, Token token) {
    entries_.push_back({arrival, std::move(token)});
  }

  /// \brief Stable-sort by arrival time.
  void Sort();

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<TraceEntry>& entries() const { return entries_; }
  const TraceEntry& operator[](size_t i) const { return entries_[i]; }

  /// \brief Arrival time of the last entry (Timestamp(0) when empty).
  Timestamp EndTime() const;

  /// \brief Tuples with arrival in [from, to), for rate plots.
  size_t CountInRange(Timestamp from, Timestamp to) const;

  /// \brief Write as TSV: arrival_us \t field=value;field=value... Records
  /// only; scalar tokens serialize as a single `value=` field.
  Status SaveToFile(const std::string& path) const;

  /// \brief Parse a file produced by SaveToFile.
  static Result<Trace> LoadFromFile(const std::string& path);

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace cwf

#endif  // CONFLUENCE_STREAM_TRACE_H_

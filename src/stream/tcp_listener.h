// TCP push transport: external data streams connect over the network.
//
// "In order to support push communications on continuous workflows, we have
// implemented various actors which are able to connect to external data
// streams (through TCP or HTTP connections). As data are pushed into those
// connections from the sources these actors pump it into the workflow's
// internal ports at a rate which is again dictated by the director's
// execution model."
//
// TcpLineListener is the network half of that: it accepts client
// connections on a TCP port and turns each newline-delimited line (the same
// `field=tag:value;...` body format used by trace files — see
// SerializeTokenBody in stream/trace.h) into a tuple pushed onto a
// PushChannel, stamped with its arrival time. A StreamSourceActor on the
// same channel then injects the tuples under whatever director is in
// charge.

#ifndef CONFLUENCE_STREAM_TCP_LISTENER_H_
#define CONFLUENCE_STREAM_TCP_LISTENER_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/lock_registry.h"
#include "core/clock.h"
#include "stream/push_channel.h"

namespace cwf {

/// \brief Accepts TCP clients and pushes their newline-delimited tuples
/// onto a channel. Runs its own accept/read threads; Stop() (or the
/// destructor) shuts everything down and closes the channel.
class TcpLineListener {
 public:
  /// \brief Tuples are stamped with `clock->Now()` at the moment their line
  /// is parsed (their external arrival time).
  TcpLineListener(PushChannelPtr channel, Clock* clock);
  ~TcpLineListener();

  TcpLineListener(const TcpLineListener&) = delete;
  TcpLineListener& operator=(const TcpLineListener&) = delete;

  /// \brief Bind 127.0.0.1:`port` (0 picks an ephemeral port) and start
  /// accepting.
  Status Start(uint16_t port = 0);

  /// \brief The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// \brief Stop accepting, drop live connections, join threads and close
  /// the channel. Idempotent.
  void Stop();

  /// \brief Tuples successfully parsed and pushed.
  uint64_t tuples_received() const { return tuples_received_.load(); }

  /// \brief Lines that failed to parse (dropped with a log message).
  uint64_t parse_errors() const { return parse_errors_.load(); }

 private:
  void AcceptLoop();
  void ClientLoop(int client_fd);

  PushChannelPtr channel_;
  Clock* clock_;
  // Written by Start()/Stop() while AcceptLoop() reads it concurrently.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> tuples_received_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::thread accept_thread_;
  OrderedMutex clients_mutex_{"TcpLineListener::clients_mutex"};
  std::vector<std::thread> client_threads_ CWF_GUARDED_BY(clients_mutex_);
  std::vector<int> client_fds_ CWF_GUARDED_BY(clients_mutex_);
};

}  // namespace cwf

#endif  // CONFLUENCE_STREAM_TCP_LISTENER_H_

// TCP push transport: external data streams connect over the network.
//
// "In order to support push communications on continuous workflows, we have
// implemented various actors which are able to connect to external data
// streams (through TCP or HTTP connections). As data are pushed into those
// connections from the sources these actors pump it into the workflow's
// internal ports at a rate which is again dictated by the director's
// execution model."
//
// TcpLineListener is the original single-channel face of that transport:
// accept clients on a TCP port and turn each newline-delimited line (the
// same `field=tag:value;...` body format used by trace files — see
// SerializeTokenBody in stream/trace.h) into a tuple on a PushChannel,
// stamped with its arrival time. It is now a thin compatibility wrapper
// over net::IngestServer (one event-loop shard, the channel registered as
// id 0), which scales the same contract to thousands of connections, adds
// the binary frame protocol, and wires per-connection backpressure — see
// src/net/ingest_server.h and docs/NETWORKING.md.

#ifndef CONFLUENCE_STREAM_TCP_LISTENER_H_
#define CONFLUENCE_STREAM_TCP_LISTENER_H_

#include <cstdint>
#include <memory>

#include "net/ingest_server.h"
#include "core/clock.h"
#include "stream/push_channel.h"

namespace cwf {

/// \brief Accepts TCP clients and pushes their newline-delimited tuples
/// onto a channel. Stop() (or the destructor) shuts everything down and
/// closes the channel.
class TcpLineListener {
 public:
  /// \brief Tuples are stamped with `clock->Now()` at the moment their line
  /// is parsed (their external arrival time).
  TcpLineListener(PushChannelPtr channel, Clock* clock);
  ~TcpLineListener();

  TcpLineListener(const TcpLineListener&) = delete;
  TcpLineListener& operator=(const TcpLineListener&) = delete;

  /// \brief Bind 127.0.0.1:`port` (0 picks an ephemeral port) and start
  /// accepting.
  Status Start(uint16_t port = 0);

  /// \brief The bound port (valid after a successful Start).
  uint16_t port() const { return server_.port(); }

  /// \brief Stop accepting, drop live connections, join threads and close
  /// the channel. Idempotent.
  void Stop() { server_.Stop(); }

  /// \brief Tuples successfully parsed and pushed.
  uint64_t tuples_received() const { return server_.tuples_received(); }

  /// \brief Lines that failed to parse or failed the channel schema check
  /// (dropped with a log message).
  uint64_t parse_errors() const {
    return server_.parse_errors() + server_.schema_rejects();
  }

 private:
  net::IngestServer server_;
};

}  // namespace cwf

#endif  // CONFLUENCE_STREAM_TCP_LISTENER_H_

#include "stream/stream_source.h"

namespace cwf {

StreamSourceActor::StreamSourceActor(std::string name, PushChannelPtr channel,
                                     size_t max_batch_per_firing)
    : Actor(std::move(name)),
      channel_(std::move(channel)),
      max_batch_(max_batch_per_firing) {
  CWF_CHECK_MSG(channel_ != nullptr, "StreamSourceActor needs a channel");
  out_ = AddOutputPort("out");
}

Status StreamSourceActor::Initialize(ExecutionContext* ctx) {
  CWF_RETURN_NOT_OK(Actor::Initialize(ctx));
  if (!out_->schema().is_unknown()) {
    channel_->SetExpectedSchema(out_->schema(), name() + ".out");
  }
  return Status::OK();
}

Result<bool> StreamSourceActor::Prefire() {
  return channel_->NextArrival() <= ctx_->clock->Now();
}

Status StreamSourceActor::Fire() {
  const Timestamp now = ctx_->clock->Now();
  for (TraceEntry& e : channel_->PopArrived(now, max_batch_)) {
    SendStamped(out_, std::move(e.token), e.arrival);
    ++injected_;
  }
  return Status::OK();
}

}  // namespace cwf

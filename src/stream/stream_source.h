// Source actors that pump external streams into the workflow.

#ifndef CONFLUENCE_STREAM_STREAM_SOURCE_H_
#define CONFLUENCE_STREAM_STREAM_SOURCE_H_

#include <memory>
#include <string>

#include "core/actor.h"
#include "stream/push_channel.h"

namespace cwf {

/// \brief Interface directors use to ask any source about pending external
/// data (for virtual-time advancement and source scheduling).
class TimedSource {
 public:
  virtual ~TimedSource() = default;

  /// \brief Arrival time of the next not-yet-injected external tuple;
  /// Timestamp::Max() when none is queued.
  virtual Timestamp NextPendingArrival() const = 0;

  /// \brief Whether the external stream can still deliver data (not closed
  /// or tuples still queued).
  virtual bool Exhausted() const = 0;
};

/// \brief An actor that injects tuples from a PushChannel.
///
/// Each firing drains the tuples whose arrival time has passed (bounded by
/// `max_batch_per_firing`) and emits them stamped with their *arrival* time,
/// so queueing delay before entering the workflow counts toward response
/// time — the effect that penalizes the Rate-Based scheduler in the paper's
/// Figure 8.
class StreamSourceActor : public Actor, public TimedSource {
 public:
  StreamSourceActor(std::string name, PushChannelPtr channel,
                    size_t max_batch_per_firing = 0);

  /// \brief The single output port ("out").
  OutputPort* out() const { return out_; }

  PushChannel* channel() const { return channel_.get(); }

  /// \brief Propagates the declared output schema (OutputPort::set_schema)
  /// onto the push channel so debug builds validate external tuples at the
  /// ingestion boundary.
  Status Initialize(ExecutionContext* ctx) override;

  Result<bool> Prefire() override;
  Status Fire() override;

  Timestamp NextPendingArrival() const override {
    return channel_->NextArrival();
  }

  bool Exhausted() const override {
    return channel_->closed() && channel_->Pending() == 0;
  }

  /// \brief Tuples injected so far.
  uint64_t injected() const { return injected_; }

 private:
  PushChannelPtr channel_;
  size_t max_batch_;
  OutputPort* out_;
  uint64_t injected_ = 0;
};

}  // namespace cwf

#endif  // CONFLUENCE_STREAM_STREAM_SOURCE_H_

#include "stream/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace cwf {
namespace {

std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == ';' || c == '=' || c == '\\' || c == '\n' || c == '\t') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

std::string UnescapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
    }
    out.push_back(s[i]);
  }
  return out;
}

std::string SerializeValue(const Value& v) {
  if (v.is_int()) {
    return "i:" + std::to_string(v.AsInt());
  }
  if (v.is_double()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "d:%.17g", v.AsDouble());
    return buf;
  }
  if (v.is_bool()) {
    return v.AsBool() ? "b:1" : "b:0";
  }
  if (v.is_string()) {
    return "s:" + EscapeField(v.AsString());
  }
  return "n:";
}

Result<Value> ParseValue(const std::string& s) {
  if (s.size() < 2 || s[1] != ':') {
    return Status::InvalidArgument("malformed trace value '" + s + "'");
  }
  const std::string body = s.substr(2);
  switch (s[0]) {
    case 'i':
      return Value(static_cast<int64_t>(std::stoll(body)));
    case 'd':
      return Value(std::stod(body));
    case 'b':
      return Value(body == "1");
    case 's':
      return Value(UnescapeField(body));
    case 'n':
      return Value();
  }
  return Status::InvalidArgument("unknown trace value tag '" + s + "'");
}

}  // namespace

std::string SerializeTokenBody(const Token& token) {
  std::string out;
  if (token.is_record()) {
    const RecordPtr& rec = token.AsRecord();
    bool first = true;
    for (const auto& [name, value] : rec->fields()) {
      if (!first) {
        out += ";";
      }
      first = false;
      out += EscapeField(name);
      out += "=";
      out += SerializeValue(value);
    }
  } else if (!token.is_nil()) {
    Value v;
    if (token.is_int()) v = Value(token.AsInt());
    else if (token.is_double()) v = Value(token.AsDouble());
    else if (token.is_bool()) v = Value(token.AsBool());
    else v = Value(token.AsString());
    out = "value=" + SerializeValue(v);
  }
  return out;
}

Result<Token> ParseTokenBody(const std::string& body) {
  if (body.empty()) {
    return Token();
  }
  auto rec = std::make_shared<Record>();
  // Split on unescaped ';'.
  std::vector<std::string> parts;
  std::string current;
  for (size_t i = 0; i < body.size(); ++i) {
    if (body[i] == '\\' && i + 1 < body.size()) {
      current.push_back(body[i]);
      current.push_back(body[i + 1]);
      ++i;
    } else if (body[i] == ';') {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(body[i]);
    }
  }
  parts.push_back(current);
  for (const std::string& part : parts) {
    // Split on the first unescaped '='.
    size_t eq = std::string::npos;
    for (size_t i = 0; i < part.size(); ++i) {
      if (part[i] == '\\') {
        ++i;
      } else if (part[i] == '=') {
        eq = i;
        break;
      }
    }
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed trace field: " + part);
    }
    auto value = ParseValue(part.substr(eq + 1));
    if (!value.ok()) {
      return value.status();
    }
    rec->Set(UnescapeField(part.substr(0, eq)), std::move(value).value());
  }
  return Token(RecordPtr(std::move(rec)));
}

void Trace::Sort() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.arrival < b.arrival;
                   });
}

Timestamp Trace::EndTime() const {
  return entries_.empty() ? Timestamp(0) : entries_.back().arrival;
}

size_t Trace::CountInRange(Timestamp from, Timestamp to) const {
  size_t count = 0;
  for (const TraceEntry& e : entries_) {
    if (e.arrival >= from && e.arrival < to) {
      ++count;
    }
  }
  return count;
}

Status Trace::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  for (const TraceEntry& e : entries_) {
    out << e.arrival.micros() << "\t" << SerializeTokenBody(e.token) << "\n";
  }
  return out.good() ? Status::OK()
                    : Status::Internal("write to '" + path + "' failed");
}

Result<Trace> Trace::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open trace file '" + path + "'");
  }
  Trace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument("malformed trace line: " + line);
    }
    const Timestamp arrival(std::stoll(line.substr(0, tab)));
    auto token = ParseTokenBody(line.substr(tab + 1));
    if (!token.ok()) {
      return token.status();
    }
    trace.Add(arrival, std::move(token).value());
  }
  return trace;
}

}  // namespace cwf

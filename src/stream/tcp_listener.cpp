#include "stream/tcp_listener.h"

#include "common/check.h"

namespace cwf {

namespace {

net::IngestServer::Options ListenerOptions() {
  net::IngestServer::Options options;
  options.shards = 1;  // the historical listener served a handful of sources
  options.close_channels_on_stop = true;
  return options;
}

}  // namespace

TcpLineListener::TcpLineListener(PushChannelPtr channel, Clock* clock)
    : server_(clock, ListenerOptions()) {
  CWF_CHECK(channel != nullptr && clock != nullptr);
  server_.AddChannel(0, std::move(channel));
}

TcpLineListener::~TcpLineListener() { Stop(); }

Status TcpLineListener::Start(uint16_t port) { return server_.Start(port); }

}  // namespace cwf

#include "stream/tcp_listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/logging.h"
#include "obs/profile.h"
#include "stream/trace.h"

namespace cwf {

TcpLineListener::TcpLineListener(PushChannelPtr channel, Clock* clock)
    : channel_(std::move(channel)), clock_(clock) {
  CWF_CHECK(channel_ != nullptr && clock_ != nullptr);
}

TcpLineListener::~TcpLineListener() { Stop(); }

Status TcpLineListener::Start(uint16_t port) {
  if (listen_fd_.load() >= 0) {
    return Status::FailedPrecondition("listener already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal("bind() failed: " +
                            std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return Status::Internal("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    return Status::Internal("listen() failed: " +
                            std::string(std::strerror(errno)));
  }
  stopping_ = false;
  listen_fd_.store(fd);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpLineListener::AcceptLoop() {
  for (;;) {
    const int fd = listen_fd_.load();
    if (fd < 0) {
      return;  // Stop() already detached the listening socket
    }
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load()) {
        return;  // listening socket closed by Stop()
      }
      continue;
    }
    ScopedLock lock(clients_mutex_);
    if (stopping_.load()) {
      ::close(client);
      return;
    }
    client_fds_.push_back(client);
    client_threads_.emplace_back([this, client] { ClientLoop(client); });
  }
}

void TcpLineListener::ClientLoop(int client_fd) {
  std::string pending;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(client_fd, buf, sizeof(buf));
    if (n <= 0) {
      return;  // peer closed or Stop() shut the socket down
    }
    pending.append(buf, static_cast<size_t>(n));
    size_t newline;
    while ((newline = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      if (line.empty()) {
        continue;
      }
#ifdef CWF_OBS_ENABLED
      static const obs::ProfileSite* decode_site =
          obs::Profiler::Global().Site("<ingest>",
                                       obs::ProfilePhase::kSerialization);
#endif
      CWF_PROFILE_SCOPE(decode_site);
      auto token = ParseTokenBody(line);
      if (!token.ok()) {
        parse_errors_.fetch_add(1);
        CWF_CLOG(kWarn, "stream") << "tcp listener dropped malformed line: "
                       << token.status().ToString();
        continue;
      }
      // TryPush: a closed()-then-Push() pair would race with a concurrent
      // Close() and trip the channel's shutdown invariant.
      if (!channel_->TryPush(std::move(token).value(), clock_->Now())) {
        return;
      }
      tuples_received_.fetch_add(1);
    }
  }
}

void TcpLineListener::Stop() {
  if (stopping_.exchange(true)) {
    // Still join if a previous Stop lost a race with thread creation.
  }
  // A file descriptor may not be close()d while another thread is blocked
  // on it — the kernel may recycle the number into an unrelated resource
  // under the reader's feet. shutdown() first (wakes any blocked accept/
  // read with an error), join the thread, and only then destroy the fd.
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd >= 0) {
    ::close(listen_fd);
  }
  std::vector<std::thread> threads;
  std::vector<int> client_fds;
  {
    ScopedLock lock(clients_mutex_);
    client_fds.swap(client_fds_);
    threads.swap(client_threads_);
  }
  for (int fd : client_fds) {
    ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) {
      t.join();
    }
  }
  for (int fd : client_fds) {
    ::close(fd);
  }
  channel_->Close();
}

}  // namespace cwf

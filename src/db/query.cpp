#include "db/query.h"

#include <sstream>

namespace cwf::db {
namespace {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

/// Numeric-aware comparison: ints and doubles compare by value; other types
/// compare with Value's total order only when the type matches.
int CompareValues(const Value& a, const Value& b) {
  const bool numeric =
      (a.is_int() || a.is_double()) && (b.is_int() || b.is_double());
  if (numeric) {
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

class CmpPredicate : public Predicate {
 public:
  CmpPredicate(std::string column, CmpOp op, Value value)
      : column_(std::move(column)), op_(op), value_(std::move(value)) {}

  Status Bind(const Schema& schema) override {
    CWF_ASSIGN_OR_RETURN(index_, schema.ColumnIndex(column_));
    bound_ = true;
    return Status::OK();
  }

  bool Matches(const Row& row) const override {
    CWF_CHECK_MSG(bound_, "predicate used before Bind()");
    const Value& cell = row[index_];
    if (cell.is_null()) {
      return false;  // SQL-style: comparisons with NULL never match
    }
    const int c = CompareValues(cell, value_);
    switch (op_) {
      case CmpOp::kEq:
        return c == 0;
      case CmpOp::kNe:
        return c != 0;
      case CmpOp::kLt:
        return c < 0;
      case CmpOp::kLe:
        return c <= 0;
      case CmpOp::kGt:
        return c > 0;
      case CmpOp::kGe:
        return c >= 0;
    }
    return false;
  }

  void CollectEqualities(
      std::vector<std::pair<std::string, Value>>* out) const override {
    if (op_ == CmpOp::kEq) {
      out->emplace_back(column_, value_);
    }
  }

  std::string ToString() const override {
    return column_ + " " + CmpOpName(op_) + " " + value_.ToString();
  }

 private:
  std::string column_;
  CmpOp op_;
  Value value_;
  size_t index_ = 0;
  bool bound_ = false;
};

class AndPredicate : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  Status Bind(const Schema& schema) override {
    for (auto& c : children_) {
      CWF_RETURN_NOT_OK(c->Bind(schema));
    }
    return Status::OK();
  }

  bool Matches(const Row& row) const override {
    for (const auto& c : children_) {
      if (!c->Matches(row)) {
        return false;
      }
    }
    return true;
  }

  void CollectEqualities(
      std::vector<std::pair<std::string, Value>>* out) const override {
    for (const auto& c : children_) {
      c->CollectEqualities(out);
    }
  }

  std::string ToString() const override {
    std::ostringstream oss;
    oss << "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) {
        oss << " AND ";
      }
      oss << children_[i]->ToString();
    }
    oss << ")";
    return oss.str();
  }

 private:
  std::vector<PredicatePtr> children_;
};

class OrPredicate : public Predicate {
 public:
  explicit OrPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  Status Bind(const Schema& schema) override {
    for (auto& c : children_) {
      CWF_RETURN_NOT_OK(c->Bind(schema));
    }
    return Status::OK();
  }

  bool Matches(const Row& row) const override {
    for (const auto& c : children_) {
      if (c->Matches(row)) {
        return true;
      }
    }
    return false;
  }

  std::string ToString() const override {
    std::ostringstream oss;
    oss << "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) {
        oss << " OR ";
      }
      oss << children_[i]->ToString();
    }
    oss << ")";
    return oss.str();
  }

 private:
  std::vector<PredicatePtr> children_;
};

class NotPredicate : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr child) : child_(std::move(child)) {}

  Status Bind(const Schema& schema) override { return child_->Bind(schema); }
  bool Matches(const Row& row) const override { return !child_->Matches(row); }
  std::string ToString() const override {
    return "NOT " + child_->ToString();
  }

 private:
  PredicatePtr child_;
};

class TruePredicate : public Predicate {
 public:
  Status Bind(const Schema&) override { return Status::OK(); }
  bool Matches(const Row&) const override { return true; }
  std::string ToString() const override { return "TRUE"; }
};

}  // namespace

PredicatePtr Cmp(std::string column, CmpOp op, Value value) {
  return std::make_shared<CmpPredicate>(std::move(column), op,
                                        std::move(value));
}

PredicatePtr Eq(std::string column, Value value) {
  return Cmp(std::move(column), CmpOp::kEq, std::move(value));
}
PredicatePtr Ne(std::string column, Value value) {
  return Cmp(std::move(column), CmpOp::kNe, std::move(value));
}
PredicatePtr Lt(std::string column, Value value) {
  return Cmp(std::move(column), CmpOp::kLt, std::move(value));
}
PredicatePtr Le(std::string column, Value value) {
  return Cmp(std::move(column), CmpOp::kLe, std::move(value));
}
PredicatePtr Gt(std::string column, Value value) {
  return Cmp(std::move(column), CmpOp::kGt, std::move(value));
}
PredicatePtr Ge(std::string column, Value value) {
  return Cmp(std::move(column), CmpOp::kGe, std::move(value));
}

PredicatePtr Between(std::string column, Value lo, Value hi) {
  // Take an explicit copy: evaluation order of the two arguments below is
  // unspecified, so moving `column` into one of them directly could leave
  // the other with an empty name.
  std::string column_copy = column;
  return And(Ge(std::move(column_copy), std::move(lo)),
             Le(std::move(column), std::move(hi)));
}

PredicatePtr And(std::vector<PredicatePtr> children) {
  return std::make_shared<AndPredicate>(std::move(children));
}
PredicatePtr And(PredicatePtr a, PredicatePtr b) {
  return And(std::vector<PredicatePtr>{std::move(a), std::move(b)});
}
PredicatePtr Or(std::vector<PredicatePtr> children) {
  return std::make_shared<OrPredicate>(std::move(children));
}
PredicatePtr Or(PredicatePtr a, PredicatePtr b) {
  return Or(std::vector<PredicatePtr>{std::move(a), std::move(b)});
}
PredicatePtr Not(PredicatePtr child) {
  return std::make_shared<NotPredicate>(std::move(child));
}

PredicatePtr True() { return std::make_shared<TruePredicate>(); }

}  // namespace cwf::db

// Table schemas for the embedded relational store.

#ifndef CONFLUENCE_DB_SCHEMA_H_
#define CONFLUENCE_DB_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "db/value.h"

namespace cwf::db {

/// \brief Column data types.
enum class ColumnType { kInt64, kDouble, kBool, kString };

const char* ColumnTypeName(ColumnType type);

/// \brief One column: a name and a type. Nullable by default.
struct Column {
  std::string name;
  ColumnType type;
};

/// \brief Ordered column list with name lookup and row type-checking.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const std::vector<Column>& columns() const { return columns_; }
  const Column& column(size_t i) const { return columns_[i]; }

  /// \brief Index of the column named `name`, or error.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// \brief Resolve several column names at once.
  Result<std::vector<size_t>> ColumnIndexes(
      const std::vector<std::string>& names) const;

  /// \brief Whether `value` may be stored in column `i` (nulls always may).
  bool TypeMatches(size_t i, const Value& value) const;

  /// \brief Validate a full row against arity and column types.
  Status CheckRow(const Row& row) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace cwf::db

#endif  // CONFLUENCE_DB_SCHEMA_H_

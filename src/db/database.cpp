#include "db/database.h"

#include <algorithm>

namespace cwf::db {

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  for (const auto& table : tables_) {
    if (table->name() == name) {
      return Status::AlreadyExists("table '" + name + "' exists");
    }
  }
  tables_.push_back(std::make_unique<Table>(name, std::move(schema)));
  return tables_.back().get();
}

Result<Table*> Database::GetTable(const std::string& name) const {
  for (const auto& table : tables_) {
    if (table->name() == name) {
      return table.get();
    }
  }
  return Status::NotFound("no table '" + name + "'");
}

Status Database::DropTable(const std::string& name) {
  auto it = std::find_if(
      tables_.begin(), tables_.end(),
      [&](const std::unique_ptr<Table>& t) { return t->name() == name; });
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& table : tables_) {
    out.push_back(table->name());
  }
  return out;
}

}  // namespace cwf::db

// A named collection of tables.

#ifndef CONFLUENCE_DB_DATABASE_H_
#define CONFLUENCE_DB_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "db/table.h"

namespace cwf::db {

/// \brief The embedded store: a registry of tables shared by the workflow's
/// database-touching actors (the paper's segmentStatistics and
/// accidentInSegment relations live here).
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// \brief Create a table; fails if the name is taken.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// \brief Look up a table; error if absent.
  Result<Table*> GetTable(const std::string& name) const;

  /// \brief Drop a table; error if absent.
  Status DropTable(const std::string& name);

  /// \brief Names of all tables.
  std::vector<std::string> TableNames() const;

 private:
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace cwf::db

#endif  // CONFLUENCE_DB_DATABASE_H_

#include "db/table.h"

#include <algorithm>

namespace cwf::db {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

Status Table::CreateIndex(const std::string& index_name,
                          const std::vector<std::string>& columns,
                          bool unique) {
  ScopedLock lock(mutex_);
  for (const Index& index : indexes_) {
    if (index.name == index_name) {
      return Status::AlreadyExists("index '" + index_name + "' exists on " +
                                   name_);
    }
  }
  Index index;
  index.name = index_name;
  index.column_names = columns;
  index.unique = unique;
  auto idx = schema_.ColumnIndexes(columns);
  if (!idx.ok()) {
    return idx.status();
  }
  index.column_idx = std::move(idx).value();
  // Backfill from live rows.
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (!rows_[id].has_value()) {
      continue;
    }
    std::vector<Value> key;
    key.reserve(index.column_idx.size());
    for (size_t c : index.column_idx) {
      key.push_back((*rows_[id])[c]);
    }
    auto& bucket = index.map[key];
    if (unique && !bucket.empty()) {
      return Status::FailedPrecondition(
          "cannot create unique index '" + index_name +
          "': duplicate keys already present");
    }
    bucket.push_back(id);
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

std::vector<Value> Table::KeyFor(const Index& index, const Row& row) const {
  std::vector<Value> key;
  key.reserve(index.column_idx.size());
  for (size_t c : index.column_idx) {
    key.push_back(row[c]);
  }
  return key;
}

void Table::IndexRow(RowId id, const Row& row) {
  for (Index& index : indexes_) {
    index.map[KeyFor(index, row)].push_back(id);
  }
}

void Table::UnindexRow(RowId id, const Row& row) {
  for (Index& index : indexes_) {
    auto it = index.map.find(KeyFor(index, row));
    if (it == index.map.end()) {
      continue;
    }
    auto& bucket = it->second;
    bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
    if (bucket.empty()) {
      index.map.erase(it);
    }
  }
}

Status Table::CheckUnique(const Row& row, std::optional<RowId> ignore) const {
  for (const Index& index : indexes_) {
    if (!index.unique) {
      continue;
    }
    std::vector<Value> key;
    key.reserve(index.column_idx.size());
    for (size_t c : index.column_idx) {
      key.push_back(row[c]);
    }
    auto it = index.map.find(key);
    if (it == index.map.end()) {
      continue;
    }
    for (RowId id : it->second) {
      if (!ignore.has_value() || id != *ignore) {
        return Status::AlreadyExists("unique index '" + index.name +
                                     "' violated on table " + name_);
      }
    }
  }
  return Status::OK();
}

Result<RowId> Table::Insert(Row row) {
  ScopedLock lock(mutex_);
  return InsertLocked(std::move(row));
}

Result<RowId> Table::InsertLocked(Row row) {
  CWF_RETURN_NOT_OK(schema_.CheckRow(row));
  CWF_RETURN_NOT_OK(CheckUnique(row, std::nullopt));
  RowId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    rows_[id] = std::move(row);
  } else {
    id = rows_.size();
    rows_.push_back(std::move(row));
  }
  IndexRow(id, *rows_[id]);
  ++live_rows_;
  return id;
}

Result<bool> Table::Upsert(const std::vector<std::string>& key_columns,
                           Row row) {
  ScopedLock lock(mutex_);
  CWF_RETURN_NOT_OK(schema_.CheckRow(row));
  auto key_idx = schema_.ColumnIndexes(key_columns);
  if (!key_idx.ok()) {
    return key_idx.status();
  }
  // Find the existing row via an equality predicate on the key columns.
  std::vector<PredicatePtr> eqs;
  eqs.reserve(key_columns.size());
  for (size_t i = 0; i < key_columns.size(); ++i) {
    eqs.push_back(Eq(key_columns[i], row[key_idx.value()[i]]));
  }
  PredicatePtr pred = And(std::move(eqs));
  CWF_RETURN_NOT_OK(pred->Bind(schema_));
  for (RowId id : Candidates(pred)) {
    if (rows_[id].has_value() && pred->Matches(*rows_[id])) {
      UnindexRow(id, *rows_[id]);
      rows_[id] = std::move(row);
      IndexRow(id, *rows_[id]);
      return true;
    }
  }
  auto inserted = InsertLocked(std::move(row));
  if (!inserted.ok()) {
    return inserted.status();
  }
  return false;
}

std::vector<RowId> Table::Candidates(const PredicatePtr& predicate) const {
  std::vector<std::pair<std::string, Value>> equalities;
  predicate->CollectEqualities(&equalities);
  for (const Index& index : indexes_) {
    std::vector<Value> key(index.column_idx.size());
    size_t found = 0;
    for (size_t i = 0; i < index.column_names.size(); ++i) {
      for (const auto& [col, value] : equalities) {
        if (col == index.column_names[i]) {
          key[i] = value;
          ++found;
          break;
        }
      }
    }
    if (found == index.column_names.size()) {
      ++index_lookups_;
      auto it = index.map.find(key);
      if (it == index.map.end()) {
        return {};
      }
      return it->second;
    }
  }
  ++full_scans_;
  std::vector<RowId> all;
  all.reserve(live_rows_);
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (rows_[id].has_value()) {
      all.push_back(id);
    }
  }
  return all;
}

template <typename Fn>
Status Table::ForEachMatch(const PredicatePtr& predicate, Fn&& fn) const {
  if (predicate == nullptr) {
    return Status::InvalidArgument("null predicate");
  }
  CWF_RETURN_NOT_OK(predicate->Bind(schema_));
  for (RowId id : Candidates(predicate)) {
    if (id < rows_.size() && rows_[id].has_value() &&
        predicate->Matches(*rows_[id])) {
      fn(id, *rows_[id]);
    }
  }
  return Status::OK();
}

Result<size_t> Table::Update(const PredicatePtr& predicate,
                             const std::function<void(Row*)>& mutator) {
  ScopedLock lock(mutex_);
  std::vector<RowId> targets;
  CWF_RETURN_NOT_OK(ForEachMatch(
      predicate, [&](RowId id, const Row&) { targets.push_back(id); }));
  for (RowId id : targets) {
    Row updated = *rows_[id];
    mutator(&updated);
    CWF_RETURN_NOT_OK(schema_.CheckRow(updated));
    UnindexRow(id, *rows_[id]);
    CWF_RETURN_NOT_OK(CheckUnique(updated, id));
    rows_[id] = std::move(updated);
    IndexRow(id, *rows_[id]);
  }
  return targets.size();
}

Result<size_t> Table::Delete(const PredicatePtr& predicate) {
  ScopedLock lock(mutex_);
  std::vector<RowId> targets;
  CWF_RETURN_NOT_OK(ForEachMatch(
      predicate, [&](RowId id, const Row&) { targets.push_back(id); }));
  for (RowId id : targets) {
    UnindexRow(id, *rows_[id]);
    rows_[id].reset();
    free_list_.push_back(id);
    --live_rows_;
  }
  return targets.size();
}

Result<std::vector<Row>> Table::Select(const PredicatePtr& predicate) const {
  ScopedLock lock(mutex_);
  std::vector<Row> out;
  CWF_RETURN_NOT_OK(ForEachMatch(
      predicate, [&](RowId, const Row& row) { out.push_back(row); }));
  return out;
}

Result<std::optional<Row>> Table::SelectOne(
    const PredicatePtr& predicate) const {
  ScopedLock lock(mutex_);
  std::optional<Row> out;
  CWF_RETURN_NOT_OK(ForEachMatch(predicate, [&](RowId, const Row& row) {
    if (!out.has_value()) {
      out = row;
    }
  }));
  return out;
}

Result<Value> Table::Aggregate(AggKind kind, const std::string& column,
                               const PredicatePtr& predicate) const {
  ScopedLock lock(mutex_);
  size_t col_idx = 0;
  if (kind != AggKind::kCount || !column.empty()) {
    auto idx = schema_.ColumnIndex(column);
    if (!idx.ok()) {
      return idx.status();
    }
    col_idx = idx.value();
  }
  size_t count = 0;
  double sum = 0;
  bool any = false;
  Value min_v, max_v;
  CWF_RETURN_NOT_OK(ForEachMatch(predicate, [&](RowId, const Row& row) {
    ++count;
    if (kind == AggKind::kCount) {
      return;
    }
    const Value& cell = row[col_idx];
    if (cell.is_null()) {
      return;
    }
    const double x = cell.AsDouble();
    sum += x;
    if (!any || x < min_v.AsDouble()) {
      min_v = cell;
    }
    if (!any || x > max_v.AsDouble()) {
      max_v = cell;
    }
    any = true;
  }));
  switch (kind) {
    case AggKind::kCount:
      return Value(static_cast<int64_t>(count));
    case AggKind::kSum:
      return any ? Value(sum) : Value();
    case AggKind::kAvg:
      return any ? Value(sum / static_cast<double>(count)) : Value();
    case AggKind::kMin:
      return any ? min_v : Value();
    case AggKind::kMax:
      return any ? max_v : Value();
  }
  return Status::Internal("unknown aggregate kind");
}

size_t Table::RowCount() const {
  ScopedLock lock(mutex_);
  return live_rows_;
}

void Table::Truncate() {
  ScopedLock lock(mutex_);
  rows_.clear();
  free_list_.clear();
  live_rows_ = 0;
  for (Index& index : indexes_) {
    index.map.clear();
  }
}

}  // namespace cwf::db

// Predicate combinators and aggregates for the embedded store.
//
// The paper's Linear Road workflow issues SQL against an external RDBMS for
// segment statistics and accident proximity. This module provides the
// equivalent expressiveness as a typed combinator API (no SQL string
// parsing): comparison predicates over named columns composed with AND/OR/
// NOT, plus the aggregate kinds the benchmark needs.

#ifndef CONFLUENCE_DB_QUERY_H_
#define CONFLUENCE_DB_QUERY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/schema.h"

namespace cwf::db {

/// \brief Comparison operators.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// \brief A boolean expression over a row. Build with the factory functions
/// below; bind against a schema once, then evaluate per row.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// \brief Resolve column names to indexes; must run before Matches().
  virtual Status Bind(const Schema& schema) = 0;

  /// \brief Evaluate against a row (after Bind).
  virtual bool Matches(const Row& row) const = 0;

  /// \brief Collect (column, value) pairs that this predicate constrains to
  /// equality in every match — used by the table to pick a hash index.
  virtual void CollectEqualities(
      std::vector<std::pair<std::string, Value>>* out) const {
    (void)out;
  }

  virtual std::string ToString() const = 0;
};

using PredicatePtr = std::shared_ptr<Predicate>;

/// \brief column <op> constant.
PredicatePtr Cmp(std::string column, CmpOp op, Value value);

/// \brief Shorthands.
PredicatePtr Eq(std::string column, Value value);
PredicatePtr Ne(std::string column, Value value);
PredicatePtr Lt(std::string column, Value value);
PredicatePtr Le(std::string column, Value value);
PredicatePtr Gt(std::string column, Value value);
PredicatePtr Ge(std::string column, Value value);

/// \brief column BETWEEN lo AND hi (inclusive).
PredicatePtr Between(std::string column, Value lo, Value hi);

/// \brief Conjunction / disjunction / negation.
PredicatePtr And(std::vector<PredicatePtr> children);
PredicatePtr And(PredicatePtr a, PredicatePtr b);
PredicatePtr Or(std::vector<PredicatePtr> children);
PredicatePtr Or(PredicatePtr a, PredicatePtr b);
PredicatePtr Not(PredicatePtr child);

/// \brief Always-true predicate (full scan).
PredicatePtr True();

/// \brief Aggregate kinds supported by Table::Aggregate.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

}  // namespace cwf::db

#endif  // CONFLUENCE_DB_QUERY_H_

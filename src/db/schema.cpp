#include "db/schema.h"

#include <sstream>

namespace cwf::db {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kBool:
      return "BOOL";
    case ColumnType::kString:
      return "STRING";
  }
  return "?";
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) {
      return i;
    }
  }
  return Status::NotFound("no column '" + name + "' in schema " + ToString());
}

Result<std::vector<size_t>> Schema::ColumnIndexes(
    const std::vector<std::string>& names) const {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    CWF_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(name));
    out.push_back(idx);
  }
  return out;
}

bool Schema::TypeMatches(size_t i, const Value& value) const {
  if (value.is_null()) {
    return true;
  }
  switch (columns_[i].type) {
    case ColumnType::kInt64:
      return value.is_int();
    case ColumnType::kDouble:
      return value.is_double() || value.is_int();
    case ColumnType::kBool:
      return value.is_bool();
    case ColumnType::kString:
      return value.is_string();
  }
  return false;
}

Status Schema::CheckRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!TypeMatches(i, row[i])) {
      return Status::InvalidArgument("value " + row[i].ToString() +
                                     " does not fit column '" +
                                     columns_[i].name + "' of type " +
                                     ColumnTypeName(columns_[i].type));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::ostringstream oss;
  oss << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) {
      oss << ", ";
    }
    oss << columns_[i].name << " " << ColumnTypeName(columns_[i].type);
  }
  oss << ")";
  return oss.str();
}

}  // namespace cwf::db

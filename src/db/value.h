// Cell values for the embedded relational store.
//
// The store reuses the engine's Value type (core/record.h) so tuples move
// between stream records and relations without conversion.

#ifndef CONFLUENCE_DB_VALUE_H_
#define CONFLUENCE_DB_VALUE_H_

#include <cstddef>
#include <vector>

#include "core/record.h"

namespace cwf::db {

using Value = ::cwf::Value;

/// \brief A materialized tuple (cells in schema column order).
using Row = std::vector<Value>;

/// \brief Hash functor for composite keys (index lookups).
struct ValueVectorHash {
  size_t operator()(const std::vector<Value>& values) const;
};

/// \brief Equality functor matching ValueVectorHash.
struct ValueVectorEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    return a == b;
  }
};

}  // namespace cwf::db

#endif  // CONFLUENCE_DB_VALUE_H_

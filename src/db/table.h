// An in-memory table with hash indexes.
//
// Feature set is scoped to what stream workflows need from their relational
// side-store: typed rows, point/predicate selects, upserts keyed on a column
// subset, deletes, aggregates, and secondary hash indexes picked
// automatically from equality predicates. All operations are guarded by a
// per-table mutex so thread-based (PNCWF) workflows can share the store.

#ifndef CONFLUENCE_DB_TABLE_H_
#define CONFLUENCE_DB_TABLE_H_

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lock_registry.h"
#include "db/query.h"
#include "db/schema.h"

namespace cwf::db {

/// \brief Stable row identifier within a table.
using RowId = size_t;

/// \brief A mutable, indexed, in-memory relation.
class Table {
 public:
  Table(std::string name, Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// \brief Build a hash index over `columns`. `unique` enforces key
  /// uniqueness on insert/update. Must be created before rows exist or is
  /// backfilled from current rows.
  Status CreateIndex(const std::string& index_name,
                     const std::vector<std::string>& columns,
                     bool unique = false);

  /// \brief Append a row. Fails on type mismatch or unique-index violation.
  Result<RowId> Insert(Row row);

  /// \brief Insert, or replace the existing row whose `key_columns` cells
  /// equal the new row's. Returns true if an existing row was replaced.
  Result<bool> Upsert(const std::vector<std::string>& key_columns, Row row);

  /// \brief Apply `mutator` to every matching row; reindexes mutated rows.
  /// Returns the number of rows updated.
  Result<size_t> Update(const PredicatePtr& predicate,
                        const std::function<void(Row*)>& mutator);

  /// \brief Remove matching rows; returns how many.
  Result<size_t> Delete(const PredicatePtr& predicate);

  /// \brief All matching rows (copied out).
  Result<std::vector<Row>> Select(const PredicatePtr& predicate) const;

  /// \brief First matching row, if any.
  Result<std::optional<Row>> SelectOne(const PredicatePtr& predicate) const;

  /// \brief COUNT/SUM/AVG/MIN/MAX of `column` over matching rows. For
  /// kCount, `column` may be empty (COUNT(*)). Aggregates over zero rows
  /// yield 0 for COUNT and null otherwise.
  Result<Value> Aggregate(AggKind kind, const std::string& column,
                          const PredicatePtr& predicate) const;

  /// \brief Live row count.
  size_t RowCount() const;

  /// \brief Remove all rows (indexes retained).
  void Truncate();

  /// \brief Access-path statistics for benchmarking.
  uint64_t index_lookups() const {
    ScopedLock lock(mutex_);
    return index_lookups_;
  }
  uint64_t full_scans() const {
    ScopedLock lock(mutex_);
    return full_scans_;
  }

 private:
  struct Index {
    std::string name;
    std::vector<std::string> column_names;
    std::vector<size_t> column_idx;
    bool unique = false;
    std::unordered_map<std::vector<Value>, std::vector<RowId>,
                       ValueVectorHash, ValueVectorEq>
        map;
  };

  std::vector<Value> KeyFor(const Index& index, const Row& row) const
      CWF_REQUIRES(mutex_);
  void IndexRow(RowId id, const Row& row) CWF_REQUIRES(mutex_);
  void UnindexRow(RowId id, const Row& row) CWF_REQUIRES(mutex_);
  Status CheckUnique(const Row& row, std::optional<RowId> ignore) const
      CWF_REQUIRES(mutex_);

  /// Insert body shared by Insert() and Upsert(); caller holds the lock.
  Result<RowId> InsertLocked(Row row) CWF_REQUIRES(mutex_);

  /// Candidate row ids for a predicate: an index subset when the predicate
  /// pins all columns of some index by equality, otherwise every live row.
  std::vector<RowId> Candidates(const PredicatePtr& predicate) const
      CWF_REQUIRES(mutex_);

  template <typename Fn>
  Status ForEachMatch(const PredicatePtr& predicate, Fn&& fn) const
      CWF_REQUIRES(mutex_);

  std::string name_;
  Schema schema_;
  std::vector<std::optional<Row>> rows_ CWF_GUARDED_BY(mutex_);
  std::vector<RowId> free_list_ CWF_GUARDED_BY(mutex_);
  std::vector<Index> indexes_ CWF_GUARDED_BY(mutex_);
  size_t live_rows_ CWF_GUARDED_BY(mutex_) = 0;
  mutable uint64_t index_lookups_ CWF_GUARDED_BY(mutex_) = 0;
  mutable uint64_t full_scans_ CWF_GUARDED_BY(mutex_) = 0;
  mutable OrderedMutex mutex_{"db::Table::mutex"};
};

}  // namespace cwf::db

#endif  // CONFLUENCE_DB_TABLE_H_

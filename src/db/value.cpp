#include "db/value.h"

namespace cwf::db {

size_t ValueVectorHash::operator()(const std::vector<Value>& values) const {
  size_t h = 0x811C9DC5u;
  for (const Value& v : values) {
    h ^= v.Hash();
    h *= 0x01000193u;
  }
  return h;
}

}  // namespace cwf::db

// The Quantum Priority Based Scheduler (QBS).
//
// Modeled on the Linux O(1) process scheduler: the workflow designer assigns
// priorities; the scheduler converts them into execution-time quanta
// (microseconds) via Eq. 1 of the paper:
//
//     q = (40 - p) * b        for p >= 20
//     q = (40 - p) * 4b       for p <  20
//
// Active actors are ordered by ascending priority value (FIFO within a
// priority class) and charged their measured cost; running out of quantum
// moves an actor to the waiting queue. When the active queue drains, a
// re-quantification adds a fresh quantum to every actor (a large negative
// balance can persist) and the queues swap. Source actors are additionally
// dispatched at a regular interval (one source firing per N internal
// firings) to smooth data entry.

#ifndef CONFLUENCE_STAFILOS_QBS_SCHEDULER_H_
#define CONFLUENCE_STAFILOS_QBS_SCHEDULER_H_

#include "stafilos/abstract_scheduler.h"

namespace cwf {

/// \brief QBS tuning knobs (paper Table 3).
struct QBSOptions {
  /// The basic quantum `b` of Eq. 1, in microseconds.
  Duration basic_quantum = 500;
  /// One source firing per this many internal firings.
  int source_interval = 5;
  /// Re-quantification adds a fresh quantum to each actor's balance; an
  /// idle actor may bank up to this many epochs worth. This bounded banking
  /// reproduces the accumulation the paper blames for the b=5000 µs anomaly
  /// in its Figure 7 (long-idle low-priority actors burst and starve the
  /// output actors), while unbounded banking would let one actor monopolize
  /// a whole overload phase.
  int max_banked_epochs = 8;
};

class QBSScheduler : public AbstractScheduler {
 public:
  explicit QBSScheduler(QBSOptions options = {});

  const char* name() const override { return "QBS"; }

  /// \brief Eq. 1: quantum for a designer priority, in microseconds.
  double QuantumFor(int priority) const;

  void OnIterationEnd() override;

 protected:
  void OnRegister(Entry* entry) override;
  bool HigherPriority(const Entry& a, const Entry& b) const override;
  void RecomputeState(Entry* entry) override;
  void ChargeCost(Entry* entry, Duration cost) override;

 private:
  QBSOptions options_;
};

}  // namespace cwf

#endif  // CONFLUENCE_STAFILOS_QBS_SCHEDULER_H_

#include "stafilos/rb_scheduler.h"

namespace cwf {

RBScheduler::RBScheduler(RBOptions options) : options_(options) {
  source_interval_ = options_.source_interval;
}

bool RBScheduler::HigherPriority(const Entry& a, const Entry& b) const {
  if (a.priority != b.priority) {
    return a.priority > b.priority;  // highest rate first
  }
  return a.ready_order < b.ready_order;
}

void RBScheduler::RecomputeState(Entry* entry) {
  if (!entry->is_source) {
    // Table 2, RB column: ACTIVE = events waiting in its queue; WAITING =
    // no events in the queue but events in the next-period buffer;
    // INACTIVE = neither.
    if (!entry->queue.empty()) {
      SetState(entry, ActorState::kActive);
    } else if (!entry->period_buffer.empty()) {
      SetState(entry, ActorState::kWaiting);
    } else {
      SetState(entry, ActorState::kInactive);
    }
    return;
  }
  // Source: ACTIVE = has not yet fired in the current period; WAITING =
  // has fired (sources never become INACTIVE).
  if (SourceHasData(*entry) && !entry->fired_this_iteration) {
    SetState(entry, ActorState::kActive);
  } else {
    SetState(entry, ActorState::kWaiting);
  }
}

void RBScheduler::OnIterationEnd() {
  // Period boundary: refresh the dynamic priorities from the statistics
  // module, then let the base release the period buffers and recompute
  // states.
  ActorStatistics* stats = host_->statistics();
  stats->RecomputeGlobal();
  for (Entry& entry : entries_) {
    entry.priority = stats->RatePriority(entry.actor);
  }
  AbstractScheduler::OnIterationEnd();
}

double RBScheduler::PriorityOf(const Actor* actor) const {
  const Entry* entry = Find(actor);
  return entry == nullptr ? 0.0 : entry->priority;
}

}  // namespace cwf

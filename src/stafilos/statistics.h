// The STAFiLOS actor-statistics module.
//
// "The statistics module keeps track of the cost of each actor (i.e., time
// per invocation), actor input rates and actor output rates, which are in
// turn used to calculate the selectivity of the actor. These statistics are
// dynamically calculated during runtime and are updated with each actor's
// invocation."
//
// It additionally derives the *global* (downstream-aggregated) selectivity
// and cost of Sharaf et al. used by the Rate-Based scheduler: for actor A
// with local selectivity s_A and per-event cost c_A,
//   S_global(A) = s_A * Σ_paths S_global(D),   C_global(A) = c_A + s_A * Σ C_global(D)
// summing over A's downstream actors (paths are added up when an actor is
// shared among multiple workflow paths).

#ifndef CONFLUENCE_STAFILOS_STATISTICS_H_
#define CONFLUENCE_STAFILOS_STATISTICS_H_

#include <map>

#include "common/time.h"
#include "core/workflow.h"
#include "obs/telemetry.h"

namespace cwf {

/// \brief Runtime statistics of one actor.
struct ActorStats {
  uint64_t invocations = 0;
  Duration total_cost = 0;
  /// Exponentially smoothed cost per invocation (µs).
  double ewma_cost = 0;

  /// Events consumed / produced by firings (for selectivity).
  uint64_t events_consumed = 0;
  uint64_t events_produced = 0;

  /// Events that arrived at the actor's queues (for input rate).
  uint64_t events_arrived = 0;

  /// Highest queued-unit depth (pending events + ready windows) observed on
  /// any of the actor's input receivers — the runtime counterpart of the
  /// capacity planner's per-channel bound.
  uint64_t queue_high_water = 0;

  /// Exponentially smoothed arrival/output rates (events per second).
  double input_rate = 0;
  double output_rate = 0;
  Timestamp last_arrival{0};
  Timestamp last_output{0};

  /// \brief Mean cost per invocation in microseconds.
  double AvgCost() const {
    return invocations == 0
               ? 0.0
               : static_cast<double>(total_cost) /
                     static_cast<double>(invocations);
  }

  /// \brief Mean cost per consumed event in microseconds (falls back to
  /// per-invocation cost for sources, which consume nothing).
  double AvgCostPerEvent() const {
    if (events_consumed == 0) {
      return AvgCost();
    }
    return static_cast<double>(total_cost) /
           static_cast<double>(events_consumed);
  }

  /// \brief Local selectivity: produced per consumed event (1.0 until the
  /// actor has consumed anything).
  double Selectivity() const {
    if (events_consumed == 0) {
      return 1.0;
    }
    return static_cast<double>(events_produced) /
           static_cast<double>(events_consumed);
  }
};

/// \brief Statistics registry exposed to every STAFiLOS scheduler.
///
/// Consumes the engine's execution events as an obs::ExecutionObserver
/// registered with the SCWF director's telemetry layer — the same hook
/// points that drive the metrics registry and the wave tracer. The fan-out
/// to this module is unconditional (schedulers need statistics even with
/// metrics collection off or telemetry compiled out).
class ActorStatistics : public obs::ExecutionObserver {
 public:
  /// \brief EWMA smoothing factor for costs and rates.
  explicit ActorStatistics(double alpha = 0.2) : alpha_(alpha) {}

  /// \brief Register all actors of a workflow (resets prior data).
  void Initialize(const Workflow& workflow);

  /// \brief Record a completed firing.
  void OnFiring(const Actor* actor, Duration cost, size_t consumed,
                size_t produced, Timestamp now);

  /// \brief ExecutionObserver entry point; delegates to the above.
  void OnFiring(const obs::FiringRecord& record) override {
    OnFiring(record.actor, record.cost, record.consumed, record.emitted,
             record.end);
  }

  /// \brief Record `n` events arriving at `actor`'s input queues.
  void OnEventsArrived(const Actor* actor, size_t n, Timestamp now) override;

  /// \brief Fold a receiver high-water-mark observation into the actor's
  /// queue_high_water (monotone max). The SCWF director reports the max
  /// over the actor's input receivers after each dispatch.
  void OnQueueDepth(const Actor* actor, uint64_t high_water) override;

  /// \brief Stats of one actor (zeroed entry if unknown).
  const ActorStats& Get(const Actor* actor) const;

  /// \brief Recompute the downstream-aggregated metrics (call at period
  /// boundaries; cycles are cut off conservatively).
  void RecomputeGlobal();

  /// \brief Global selectivity of Sharaf et al. (RecomputeGlobal first).
  double GlobalSelectivity(const Actor* actor) const;

  /// \brief Global cost (µs per input event) of Sharaf et al.
  double GlobalCost(const Actor* actor) const;

  /// \brief Dynamic Rate-Based priority Pr(A) = S_global / C_global.
  double RatePriority(const Actor* actor) const;

 private:
  struct Global {
    double selectivity = 1.0;
    double cost = 1.0;
  };

  Global ComputeGlobal(const Actor* actor,
                       std::map<const Actor*, int>* visiting);

  double alpha_;
  const Workflow* workflow_ = nullptr;
  std::map<const Actor*, ActorStats> stats_;
  std::map<const Actor*, Global> global_;
  ActorStats empty_;
};

}  // namespace cwf

#endif  // CONFLUENCE_STAFILOS_STATISTICS_H_

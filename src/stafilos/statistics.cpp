#include "stafilos/statistics.h"

namespace cwf {
namespace {

/// Update an EWMA rate estimate given `n` events at `now`.
void UpdateRate(double* rate, Timestamp* last, size_t n, Timestamp now,
                double alpha) {
  if (last->micros() == 0) {
    *last = now;
    return;
  }
  const Duration gap = now - *last;
  if (gap <= 0) {
    // Same instant: rates spike; fold in with a small nominal gap.
    return;
  }
  const double instant =
      static_cast<double>(n) / (static_cast<double>(gap) / 1e6);
  *rate = *rate == 0 ? instant : alpha * instant + (1 - alpha) * *rate;
  *last = now;
}

}  // namespace

void ActorStatistics::Initialize(const Workflow& workflow) {
  workflow_ = &workflow;
  stats_.clear();
  global_.clear();
  for (const auto& actor : workflow.actors()) {
    stats_[actor.get()] = ActorStats();
  }
}

void ActorStatistics::OnFiring(const Actor* actor, Duration cost,
                               size_t consumed, size_t produced,
                               Timestamp now) {
  ActorStats& s = stats_[actor];
  ++s.invocations;
  s.total_cost += cost;
  s.ewma_cost = s.invocations == 1
                    ? static_cast<double>(cost)
                    : alpha_ * static_cast<double>(cost) +
                          (1 - alpha_) * s.ewma_cost;
  s.events_consumed += consumed;
  s.events_produced += produced;
  if (produced > 0) {
    UpdateRate(&s.output_rate, &s.last_output, produced, now, alpha_);
  }
}

void ActorStatistics::OnEventsArrived(const Actor* actor, size_t n,
                                      Timestamp now) {
  ActorStats& s = stats_[actor];
  s.events_arrived += n;
  UpdateRate(&s.input_rate, &s.last_arrival, n, now, alpha_);
}

void ActorStatistics::OnQueueDepth(const Actor* actor, uint64_t high_water) {
  ActorStats& s = stats_[actor];
  if (high_water > s.queue_high_water) {
    s.queue_high_water = high_water;
  }
}

const ActorStats& ActorStatistics::Get(const Actor* actor) const {
  auto it = stats_.find(actor);
  return it == stats_.end() ? empty_ : it->second;
}

ActorStatistics::Global ActorStatistics::ComputeGlobal(
    const Actor* actor, std::map<const Actor*, int>* visiting) {
  auto done = global_.find(actor);
  if (done != global_.end()) {
    return done->second;
  }
  int& mark = (*visiting)[actor];
  if (mark == 1) {
    // Cycle: cut off conservatively with local metrics only.
    return Global{Get(actor).Selectivity(),
                  std::max(1.0, Get(actor).AvgCostPerEvent())};
  }
  mark = 1;
  const ActorStats& s = stats_[actor];
  const double local_sel = s.Selectivity();
  const double local_cost = std::max(1.0, s.AvgCostPerEvent());
  double down_sel = 0;
  double down_cost = 0;
  const std::vector<Actor*> downstream = workflow_->DownstreamOf(actor);
  for (const Actor* d : downstream) {
    const Global g = ComputeGlobal(d, visiting);
    down_sel += g.selectivity;
    down_cost += g.cost;
  }
  Global out;
  if (downstream.empty()) {
    // Leaf = output operator: delivering a tuple to the output *is* the
    // useful work, so its path selectivity is 1 regardless of how many
    // tokens it re-emits (a sink emitting nothing would otherwise zero the
    // rate priority of its whole upstream path).
    out.selectivity = 1.0;
    out.cost = local_cost;
  } else {
    out.selectivity = local_sel * down_sel;
    out.cost = local_cost + local_sel * down_cost;
  }
  mark = 2;
  global_[actor] = out;
  return out;
}

void ActorStatistics::RecomputeGlobal() {
  CWF_CHECK_MSG(workflow_ != nullptr, "ActorStatistics not initialized");
  global_.clear();
  std::map<const Actor*, int> visiting;
  for (const auto& actor : workflow_->actors()) {
    ComputeGlobal(actor.get(), &visiting);
  }
}

double ActorStatistics::GlobalSelectivity(const Actor* actor) const {
  auto it = global_.find(actor);
  return it == global_.end() ? 1.0 : it->second.selectivity;
}

double ActorStatistics::GlobalCost(const Actor* actor) const {
  auto it = global_.find(actor);
  return it == global_.end() ? 1.0 : it->second.cost;
}

double ActorStatistics::RatePriority(const Actor* actor) const {
  const double cost = GlobalCost(actor);
  return GlobalSelectivity(actor) / (cost <= 0 ? 1.0 : cost);
}

}  // namespace cwf

// The STAFiLOS Abstract Scheduler.
//
// "The Abstract Scheduler component implements most of the basic
// functionality of a scheduler but it is not a complete scheduler. It
// maintains a list of the workflow's actors, and maps them to queues of
// events (sorted by timestamp) that should be propagated to each actor's
// corresponding input ports when they are scheduled for execution. It also
// maintains a mapping between actors and their current state. Three states
// are defined: ACTIVE ... WAITING ... INACTIVE. State transition rules are
// implemented within each scheduler implementation. [It] keeps two priority
// queues, one for the active actors and one for the waiting actors, sorted
// by a function implemented inside a QueueComparator provided by the
// scheduler implementation, and provides hooks where the director can
// signal the scheduler for state changes."
//
// Policies extend this class by implementing the abstract methods:
// HigherPriority (the queue comparator), RecomputeState (the Table-2 state
// transition rules), ChargeCost (quantum accounting) and the iteration
// hooks.

#ifndef CONFLUENCE_STAFILOS_ABSTRACT_SCHEDULER_H_
#define CONFLUENCE_STAFILOS_ABSTRACT_SCHEDULER_H_

#include <optional>
#include <vector>

#include "core/actor.h"
#include "stafilos/statistics.h"
#include "window/tm_windowed_receiver.h"

namespace cwf {

/// \brief The three scheduler-visible actor states.
enum class ActorState {
  kActive,    ///< may be considered for firing this iteration
  kWaiting,   ///< waiting for a scheduler event (e.g. re-quantification)
  kInactive,  ///< no events to process
};

const char* ActorStateName(ActorState state);

/// \brief A produced window queued at the scheduler, destined for one
/// receiver buffer.
struct ReadyWindow {
  TMWindowedReceiver* receiver = nullptr;
  Window window;
  Timestamp enqueued_at;
  /// Sort keys (oldest event timestamp; tie-broken by event sequence).
  Timestamp key_ts;
  uint64_t key_seq = 0;
};

/// \brief Overload protection (the load-shedding integration point the
/// paper's discussion calls out): when an actor's scheduler queue exceeds
/// the cap, newly produced windows are dropped instead of queued.
struct LoadSheddingOptions {
  /// Maximum windows queued (live queue + period buffer) per actor before
  /// shedding kicks in. 0 disables shedding.
  size_t max_queued_windows_per_actor = 0;
};

/// \brief Services the SCWF director provides to schedulers.
class SchedulerHost {
 public:
  virtual ~SchedulerHost() = default;

  /// \brief Current engine time.
  virtual Timestamp Now() const = 0;

  /// \brief Whether a source actor has external data ready to inject.
  virtual bool SourceHasData(const Actor* actor) const = 0;

  /// \brief The runtime statistics module.
  virtual ActorStatistics* statistics() = 0;

  /// \brief `n` events were queued toward `actor` (AbstractScheduler::
  /// Enqueue). The default feeds the statistics module directly; the SCWF
  /// director overrides this to fan out through its telemetry layer so
  /// metrics and statistics observe one stream.
  virtual void NotifyEventsArrived(const Actor* actor, size_t n,
                                   Timestamp now) {
    statistics()->OnEventsArrived(actor, n, now);
  }
};

/// \brief Base class of every pluggable CWf scheduling policy.
class AbstractScheduler {
 public:
  virtual ~AbstractScheduler() = default;

  /// \brief Policy name for reports ("QBS", "RR", "RB", ...).
  virtual const char* name() const = 0;

  // ---- Framework wiring (driven by the SCWF director) ----

  /// \brief Register the workflow's actors and bind the host services.
  virtual Status Initialize(SchedulerHost* host,
                            const std::vector<Actor*>& actors);

  /// \brief A produced window became ready for `target`; queue it (or, for
  /// period-buffered policies, hold it for the next period).
  void Enqueue(Actor* target, ReadyWindow window);

  /// \brief Pop the timestamp-earliest queued window of `actor`.
  std::optional<ReadyWindow> PopWindow(Actor* actor);

  /// \brief The scheduling decision: next actor to fire, or nullptr to end
  /// the director iteration.
  virtual Actor* GetNextActor();

  /// \brief Director signals: start of a director iteration.
  virtual void OnIterationStart() {}

  /// \brief Director signals: end of a director iteration (active queue
  /// drained). Default behaviour: advance the iteration counter, reset
  /// per-iteration flags, release period buffers (if the policy buffers),
  /// and recompute every actor's state. Policies typically extend this with
  /// re-quantification / priority refresh *before* delegating to the base.
  virtual void OnIterationEnd();

  /// \brief Director signals: `actor` completed a firing attempt. `fired`
  /// is false when prefire() rejected (no cost was incurred).
  virtual void OnActorFired(Actor* actor, Duration cost, bool fired);

  // ---- Introspection (tests, Table-2 verification, benchmarks) ----

  ActorState GetState(const Actor* actor) const;
  size_t QueuedWindows(const Actor* actor) const;
  size_t BufferedWindows(const Actor* actor) const;
  /// \brief Queued events (not windows) across all actors, including
  /// next-period buffers. O(1).
  size_t TotalQueuedEvents() const { return queued_events_; }
  /// \brief Whether GetNextActor() would currently return an actor.
  bool HasImmediateWork();
  uint64_t iteration_count() const { return iterations_; }

  /// \brief Per-actor designer priority (QBS); smaller = more important.
  void SetActorPriority(const std::string& actor_name, int priority) {
    designer_priorities_[actor_name] = priority;
  }

  /// \brief The designer priority map as assigned so far (the static
  /// analyzer validates it via analysis::SchedulerConfig).
  const std::map<std::string, int>& designer_priorities() const {
    return designer_priorities_;
  }

  /// \brief Turn on (or off, with a zero cap) queue-cap load shedding.
  void SetLoadShedding(LoadSheddingOptions options) {
    shedding_ = options;
  }

  /// \brief Windows dropped by the load shedder so far.
  uint64_t shed_windows() const { return shed_windows_; }

  /// \brief Events inside the dropped windows.
  uint64_t shed_events() const { return shed_events_; }

 protected:
  struct Entry {
    Actor* actor = nullptr;
    bool is_source = false;
    ActorState state = ActorState::kInactive;
    /// Timestamp-sorted min-heap of windows awaiting delivery.
    std::vector<ReadyWindow> queue;
    /// Next-period holding buffer (Rate-Based policy).
    std::vector<ReadyWindow> period_buffer;
    /// Remaining quantum in microseconds (quantum policies).
    double quantum = 0;
    /// Designer-assigned priority (QBS; Linux-style, smaller = higher).
    int designer_priority = 20;
    /// Cached dynamic priority (Rate-Based policy).
    double priority = 0;
    bool fired_this_iteration = false;
    /// Monotone stamp taken on each transition into kActive (FIFO ties).
    uint64_t ready_order = 0;
    uint64_t firings = 0;
  };

  // ---- Policy hooks ----

  /// \brief One-time per-actor setup (initial quanta etc.).
  virtual void OnRegister(Entry* entry) { (void)entry; }

  /// \brief Whether freshly produced windows go to the next-period buffer
  /// instead of the live queue (Rate-Based policy).
  virtual bool BufferToNextPeriod() const { return false; }

  /// \brief The queue comparator: true if `a` should fire before `b`
  /// (both ACTIVE).
  virtual bool HigherPriority(const Entry& a, const Entry& b) const = 0;

  /// \brief Apply the policy's state-transition rules to one entry
  /// (the paper's Table 2).
  virtual void RecomputeState(Entry* entry) = 0;

  /// \brief Account a firing's cost (quantum policies decrement here).
  virtual void ChargeCost(Entry* entry, Duration cost) {
    (void)entry;
    (void)cost;
  }

  // ---- Shared machinery ----

  Entry* Find(const Actor* actor);
  const Entry* Find(const Actor* actor) const;

  /// \brief Transition helper; stamps ready_order on entry to kActive.
  void SetState(Entry* entry, ActorState state);

  /// \brief Recompute the state of every entry.
  void RecomputeAllStates();

  /// \brief Whether the source has external data available now.
  bool SourceHasData(const Entry& entry) const;

  /// \brief Dispatch a source every `source_interval_` internal firings
  /// ("the source actors are being scheduled in regular intervals"); 0
  /// disables the mechanism.
  int source_interval_ = 0;

  std::vector<Entry> entries_;
  SchedulerHost* host_ = nullptr;
  std::map<std::string, int> designer_priorities_;
  uint64_t iterations_ = 0;
  uint64_t internal_firings_since_source_ = 0;
  uint64_t ready_counter_ = 0;
  size_t source_rr_cursor_ = 0;
  size_t queued_events_ = 0;
  LoadSheddingOptions shedding_;
  uint64_t shed_windows_ = 0;
  uint64_t shed_events_ = 0;
};

}  // namespace cwf

#endif  // CONFLUENCE_STAFILOS_ABSTRACT_SCHEDULER_H_

// Earliest-Deadline-First (latency-driven) scheduler.
//
// Implements the extension direction the paper's discussion calls out
// ("implementing schedulers which are able to combine priorities with flow
// information would greatly improve performance"): the dynamic priority of
// an actor is the age of the oldest *external* event waiting in its queue,
// so the tuple closest to violating a latency target is pushed through the
// workflow first.

#ifndef CONFLUENCE_STAFILOS_EDF_SCHEDULER_H_
#define CONFLUENCE_STAFILOS_EDF_SCHEDULER_H_

#include "stafilos/abstract_scheduler.h"

namespace cwf {

/// \brief EDF tuning knobs.
struct EDFOptions {
  /// Source dispatch interval (like QBS/RR).
  int source_interval = 5;
};

class EDFScheduler : public AbstractScheduler {
 public:
  explicit EDFScheduler(EDFOptions options = {});

  const char* name() const override { return "EDF"; }

 protected:
  bool HigherPriority(const Entry& a, const Entry& b) const override;
  void RecomputeState(Entry* entry) override;
};

}  // namespace cwf

#endif  // CONFLUENCE_STAFILOS_EDF_SCHEDULER_H_

// The Rate-Based Scheduler (RB).
//
// Based on the Highest Rate scheduler of Sharaf et al. (TODS 2008), the best
// performing CQ scheduler for average response time. Actor priorities are
// dynamic:
//
//     Pr(A) = S_A / C_A
//
// with S_A the actor's *global* selectivity and C_A its *global* average
// cost (downstream paths added up when an actor fans out). Event processing
// is divided into periods: events enqueued during the current period are
// held in a buffer and released into the actors' queues when the period ends
// (the director's end of iteration). Dynamic priorities are re-evaluated at
// the end of each period. Source actors get no special treatment — the
// property that costs RB dearly on response time in the paper's Figure 8.

#ifndef CONFLUENCE_STAFILOS_RB_SCHEDULER_H_
#define CONFLUENCE_STAFILOS_RB_SCHEDULER_H_

#include "stafilos/abstract_scheduler.h"

namespace cwf {

/// \brief RB tuning knobs.
struct RBOptions {
  /// Ablation switch: when > 0, sources are dispatched every N internal
  /// firings like QBS/RR do (OFF in the paper; the ablation bench measures
  /// how much of RB's loss this explains).
  int source_interval = 0;
};

class RBScheduler : public AbstractScheduler {
 public:
  explicit RBScheduler(RBOptions options = {});

  const char* name() const override { return "RB"; }

  void OnIterationEnd() override;

  /// \brief Current dynamic priority of an actor (for tests/benches).
  double PriorityOf(const Actor* actor) const;

 protected:
  bool BufferToNextPeriod() const override { return true; }
  bool HigherPriority(const Entry& a, const Entry& b) const override;
  void RecomputeState(Entry* entry) override;

 private:
  RBOptions options_;
};

}  // namespace cwf

#endif  // CONFLUENCE_STAFILOS_RB_SCHEDULER_H_

#include "stafilos/edf_scheduler.h"

namespace cwf {

EDFScheduler::EDFScheduler(EDFOptions options) {
  source_interval_ = options.source_interval;
}

bool EDFScheduler::HigherPriority(const Entry& a, const Entry& b) const {
  if (a.is_source != b.is_source) {
    return a.is_source;
  }
  if (a.is_source) {
    return a.ready_order < b.ready_order;
  }
  const Timestamp ta =
      a.queue.empty() ? Timestamp::Max() : a.queue.front().key_ts;
  const Timestamp tb =
      b.queue.empty() ? Timestamp::Max() : b.queue.front().key_ts;
  if (ta != tb) {
    return ta < tb;  // oldest external event first
  }
  return a.ready_order < b.ready_order;
}

void EDFScheduler::RecomputeState(Entry* entry) {
  if (!entry->is_source) {
    SetState(entry, entry->queue.empty() ? ActorState::kInactive
                                         : ActorState::kActive);
    return;
  }
  if (SourceHasData(*entry) && !entry->fired_this_iteration) {
    SetState(entry, ActorState::kActive);
  } else {
    SetState(entry, ActorState::kWaiting);
  }
}

}  // namespace cwf

#include "stafilos/rr_scheduler.h"

namespace cwf {

RRScheduler::RRScheduler(RROptions options) : options_(options) {
  source_interval_ = options_.source_interval;
}

void RRScheduler::OnRegister(Entry* entry) {
  entry->quantum = static_cast<double>(options_.slice);
}

bool RRScheduler::HigherPriority(const Entry& a, const Entry& b) const {
  // Pure FIFO ring: the actor that became ready earliest runs first.
  return a.ready_order < b.ready_order;
}

void RRScheduler::RecomputeState(Entry* entry) {
  if (!entry->is_source) {
    if (entry->queue.empty()) {
      // Processed everything: give up the remaining slice.
      entry->quantum = 0;
      SetState(entry, ActorState::kInactive);
      return;
    }
    if (entry->state == ActorState::kInactive) {
      // New events for an inactive actor: fresh slice, end of the ring
      // (SetState stamps a new ready_order).
      entry->quantum = static_cast<double>(options_.slice);
      SetState(entry, ActorState::kActive);
      return;
    }
    SetState(entry, entry->quantum > 0 ? ActorState::kActive
                                       : ActorState::kWaiting);
    return;
  }
  if (SourceHasData(*entry) && entry->quantum > 0 &&
      !entry->fired_this_iteration) {
    SetState(entry, ActorState::kActive);
  } else {
    SetState(entry, ActorState::kWaiting);
  }
}

void RRScheduler::ChargeCost(Entry* entry, Duration cost) {
  entry->quantum -= static_cast<double>(cost);
}

void RRScheduler::OnIterationEnd() {
  // New period: every actor gets a fresh slice (not accumulated).
  for (Entry& entry : entries_) {
    entry.quantum = static_cast<double>(options_.slice);
  }
  AbstractScheduler::OnIterationEnd();
}

}  // namespace cwf

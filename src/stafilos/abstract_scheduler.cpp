#include "stafilos/abstract_scheduler.h"

#include <algorithm>

namespace cwf {
namespace {

/// Min-heap comparator over (key_ts, key_seq): std::push_heap builds a
/// max-heap, so invert.
struct HeapCmp {
  bool operator()(const ReadyWindow& a, const ReadyWindow& b) const {
    if (a.key_ts != b.key_ts) {
      return a.key_ts > b.key_ts;
    }
    return a.key_seq > b.key_seq;
  }
};

}  // namespace

const char* ActorStateName(ActorState state) {
  switch (state) {
    case ActorState::kActive:
      return "ACTIVE";
    case ActorState::kWaiting:
      return "WAITING";
    case ActorState::kInactive:
      return "INACTIVE";
  }
  return "?";
}

Status AbstractScheduler::Initialize(SchedulerHost* host,
                                     const std::vector<Actor*>& actors) {
  if (host == nullptr) {
    return Status::InvalidArgument("scheduler needs a host");
  }
  host_ = host;
  entries_.clear();
  iterations_ = 0;
  internal_firings_since_source_ = 0;
  ready_counter_ = 0;
  source_rr_cursor_ = 0;
  queued_events_ = 0;
  entries_.reserve(actors.size());
  for (Actor* actor : actors) {
    Entry entry;
    entry.actor = actor;
    entry.is_source = actor->IsSource();
    auto it = designer_priorities_.find(actor->name());
    if (it != designer_priorities_.end()) {
      entry.designer_priority = it->second;
    }
    entries_.push_back(std::move(entry));
  }
  for (Entry& entry : entries_) {
    OnRegister(&entry);
    RecomputeState(&entry);
  }
  return Status::OK();
}

AbstractScheduler::Entry* AbstractScheduler::Find(const Actor* actor) {
  for (Entry& entry : entries_) {
    if (entry.actor == actor) {
      return &entry;
    }
  }
  return nullptr;
}

const AbstractScheduler::Entry* AbstractScheduler::Find(
    const Actor* actor) const {
  for (const Entry& entry : entries_) {
    if (entry.actor == actor) {
      return &entry;
    }
  }
  return nullptr;
}

void AbstractScheduler::SetState(Entry* entry, ActorState state) {
  if (entry->state != ActorState::kActive && state == ActorState::kActive) {
    entry->ready_order = ++ready_counter_;
  }
  entry->state = state;
}

void AbstractScheduler::RecomputeAllStates() {
  for (Entry& entry : entries_) {
    RecomputeState(&entry);
  }
}

bool AbstractScheduler::SourceHasData(const Entry& entry) const {
  return entry.is_source && host_ != nullptr &&
         host_->SourceHasData(entry.actor);
}

void AbstractScheduler::Enqueue(Actor* target, ReadyWindow window) {
  Entry* entry = Find(target);
  CWF_CHECK_MSG(entry != nullptr,
                "Enqueue for unregistered actor " << target->name());
  if (shedding_.max_queued_windows_per_actor > 0 &&
      entry->queue.size() + entry->period_buffer.size() >=
          shedding_.max_queued_windows_per_actor) {
    // Drop-tail load shedding: the newest window is sacrificed to bound the
    // queueing delay of everything already admitted.
    ++shed_windows_;
    shed_events_ += window.window.events.size();
    return;
  }
  window.enqueued_at = host_->Now();
  window.key_ts = window.window.OldestTimestamp();
  window.key_seq =
      window.window.events.empty() ? 0 : window.window.events.front().seq;
  host_->NotifyEventsArrived(target, window.window.events.size(),
                             window.enqueued_at);
  queued_events_ += window.window.events.size();
  if (BufferToNextPeriod()) {
    entry->period_buffer.push_back(std::move(window));
  } else {
    entry->queue.push_back(std::move(window));
    std::push_heap(entry->queue.begin(), entry->queue.end(), HeapCmp());
  }
  RecomputeState(entry);
}

std::optional<ReadyWindow> AbstractScheduler::PopWindow(Actor* actor) {
  Entry* entry = Find(actor);
  if (entry == nullptr || entry->queue.empty()) {
    return std::nullopt;
  }
  std::pop_heap(entry->queue.begin(), entry->queue.end(), HeapCmp());
  ReadyWindow out = std::move(entry->queue.back());
  entry->queue.pop_back();
  queued_events_ -= std::min(queued_events_, out.window.events.size());
  return out;
}

Actor* AbstractScheduler::GetNextActor() {
  // Source readiness depends on the clock; refresh source states first.
  for (Entry& entry : entries_) {
    if (entry.is_source) {
      RecomputeState(&entry);
    }
  }

  // Regular-interval source dispatch: every `source_interval_` internal
  // firings, a source with pending data runs next (round-robin among
  // sources), smoothing the flow of data into the workflow.
  if (source_interval_ > 0 &&
      internal_firings_since_source_ >=
          static_cast<uint64_t>(source_interval_)) {
    const size_t n = entries_.size();
    for (size_t k = 0; k < n; ++k) {
      Entry& entry = entries_[(source_rr_cursor_ + k) % n];
      if (entry.is_source && SourceHasData(entry)) {
        source_rr_cursor_ = (source_rr_cursor_ + k + 1) % n;
        return entry.actor;
      }
    }
  }

  Entry* best = nullptr;
  for (Entry& entry : entries_) {
    if (entry.state != ActorState::kActive) {
      continue;
    }
    if (best == nullptr || HigherPriority(entry, *best)) {
      best = &entry;
    }
  }
  return best == nullptr ? nullptr : best->actor;
}

void AbstractScheduler::OnIterationEnd() {
  ++iterations_;
  for (Entry& entry : entries_) {
    entry.fired_this_iteration = false;
    if (BufferToNextPeriod() && !entry.period_buffer.empty()) {
      for (ReadyWindow& w : entry.period_buffer) {
        entry.queue.push_back(std::move(w));
        std::push_heap(entry.queue.begin(), entry.queue.end(), HeapCmp());
      }
      entry.period_buffer.clear();
    }
  }
  RecomputeAllStates();
}

void AbstractScheduler::OnActorFired(Actor* actor, Duration cost, bool fired) {
  Entry* entry = Find(actor);
  CWF_CHECK(entry != nullptr);
  entry->fired_this_iteration = true;
  if (fired) {
    ++entry->firings;
  }
  if (entry->is_source) {
    internal_firings_since_source_ = 0;
  } else {
    ++internal_firings_since_source_;
  }
  ChargeCost(entry, cost);
  RecomputeState(entry);
}

ActorState AbstractScheduler::GetState(const Actor* actor) const {
  const Entry* entry = Find(actor);
  return entry == nullptr ? ActorState::kInactive : entry->state;
}

size_t AbstractScheduler::QueuedWindows(const Actor* actor) const {
  const Entry* entry = Find(actor);
  return entry == nullptr ? 0 : entry->queue.size();
}

size_t AbstractScheduler::BufferedWindows(const Actor* actor) const {
  const Entry* entry = Find(actor);
  return entry == nullptr ? 0 : entry->period_buffer.size();
}

bool AbstractScheduler::HasImmediateWork() { return GetNextActor() != nullptr; }

}  // namespace cwf

#include "stafilos/qbs_scheduler.h"

#include <algorithm>
namespace cwf {

QBSScheduler::QBSScheduler(QBSOptions options) : options_(options) {
  source_interval_ = options_.source_interval;
}

double QBSScheduler::QuantumFor(int priority) const {
  const double b = static_cast<double>(options_.basic_quantum);
  if (priority >= 20) {
    return (40.0 - priority) * b;
  }
  return (40.0 - priority) * 4.0 * b;
}

void QBSScheduler::OnRegister(Entry* entry) {
  entry->quantum = QuantumFor(entry->designer_priority);
}

bool QBSScheduler::HigherPriority(const Entry& a, const Entry& b) const {
  // "The active actors are sorted by ascending priority. If two actors have
  // the same priority then they are treated as FIFO."
  if (a.designer_priority != b.designer_priority) {
    return a.designer_priority < b.designer_priority;
  }
  return a.ready_order < b.ready_order;
}

void QBSScheduler::RecomputeState(Entry* entry) {
  if (!entry->is_source) {
    // Table 2, QBS column: ACTIVE = events waiting AND positive quantum;
    // WAITING = events waiting AND non-positive quantum; INACTIVE = no
    // events (quantum preserved).
    if (entry->queue.empty()) {
      SetState(entry, ActorState::kInactive);
    } else if (entry->quantum > 0) {
      SetState(entry, ActorState::kActive);
    } else {
      SetState(entry, ActorState::kWaiting);
    }
    return;
  }
  // Source actors never become INACTIVE (Table 2): ACTIVE when they hold a
  // positive quantum and have not fired in the current director iteration
  // (the regular-interval mechanism can dispatch them regardless).
  if (SourceHasData(*entry) && entry->quantum > 0 &&
      !entry->fired_this_iteration) {
    SetState(entry, ActorState::kActive);
  } else {
    SetState(entry, ActorState::kWaiting);
  }
}

void QBSScheduler::ChargeCost(Entry* entry, Duration cost) {
  entry->quantum -= static_cast<double>(cost);
}

void QBSScheduler::OnIterationEnd() {
  // Re-quantification: every actor receives a fresh quantum *added to* its
  // balance — an actor that overdrew badly can remain negative (and stays
  // WAITING), while long-idle low-priority actors accumulate quantum (the
  // starvation artifact the paper observes for b = 5000 µs in Figure 7).
  // The bank is capped at max_banked_epochs full quanta.
  for (Entry& entry : entries_) {
    const double q = QuantumFor(entry.designer_priority);
    entry.quantum = std::min(entry.quantum + q,
                             q * static_cast<double>(options_.max_banked_epochs));
  }
  AbstractScheduler::OnIterationEnd();
}

}  // namespace cwf

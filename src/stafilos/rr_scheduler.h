// The Round-Robin Scheduler (RR).
//
// "At each scheduling period it gives the active actors a time slice
// (quantum) on which they are allowed to run. They are then scheduled to
// process their available events in a round robin manner. If they manage to
// process all of their current events they transition to the inactive state
// and give up any remaining slice. If they consume their slice they
// transition to the waiting state until the next period. If an actor is
// inactive and new events arrive, a slice is assigned to it and the actor
// is placed at the end of the Round-Robin queue."

#ifndef CONFLUENCE_STAFILOS_RR_SCHEDULER_H_
#define CONFLUENCE_STAFILOS_RR_SCHEDULER_H_

#include "stafilos/abstract_scheduler.h"

namespace cwf {

/// \brief RR tuning knobs (paper Table 3).
struct RROptions {
  /// The time slice per period, in microseconds.
  Duration slice = 20000;
  /// One source firing per this many internal firings (the paper's
  /// STAFiLOS schedulers other than RB "distinguish the source actors ...
  /// and independently schedule them in regular intervals").
  int source_interval = 5;
};

class RRScheduler : public AbstractScheduler {
 public:
  explicit RRScheduler(RROptions options = {});

  const char* name() const override { return "RR"; }

  void OnIterationEnd() override;

 protected:
  void OnRegister(Entry* entry) override;
  bool HigherPriority(const Entry& a, const Entry& b) const override;
  void RecomputeState(Entry* entry) override;
  void ChargeCost(Entry* entry, Duration cost) override;

 private:
  RROptions options_;
};

}  // namespace cwf

#endif  // CONFLUENCE_STAFILOS_RR_SCHEDULER_H_

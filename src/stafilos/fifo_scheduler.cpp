#include "stafilos/fifo_scheduler.h"

namespace cwf {

FIFOScheduler::FIFOScheduler(FIFOOptions options) {
  source_interval_ = options.source_interval;
}

bool FIFOScheduler::HigherPriority(const Entry& a, const Entry& b) const {
  // Sources (holding data that has not even entered the workflow yet) go
  // first; otherwise the earliest-enqueued head window wins.
  if (a.is_source != b.is_source) {
    return a.is_source;
  }
  if (a.is_source) {
    return a.ready_order < b.ready_order;
  }
  const uint64_t sa = a.queue.empty() ? UINT64_MAX : a.queue.front().key_seq;
  const uint64_t sb = b.queue.empty() ? UINT64_MAX : b.queue.front().key_seq;
  return sa < sb;
}

void FIFOScheduler::RecomputeState(Entry* entry) {
  if (!entry->is_source) {
    SetState(entry, entry->queue.empty() ? ActorState::kInactive
                                         : ActorState::kActive);
    return;
  }
  if (SourceHasData(*entry) && !entry->fired_this_iteration) {
    SetState(entry, ActorState::kActive);
  } else {
    SetState(entry, ActorState::kWaiting);
  }
}

}  // namespace cwf

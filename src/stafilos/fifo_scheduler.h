// FIFO (event-order) scheduler.
//
// The simplest STAFiLOS policy: windows are processed in the order they
// became ready, globally — analogous to Ptolemy's DE event-queue execution.
// Included as the paper's "event order" baseline (Table 1) and as the
// minimal example of extending the Abstract Scheduler.

#ifndef CONFLUENCE_STAFILOS_FIFO_SCHEDULER_H_
#define CONFLUENCE_STAFILOS_FIFO_SCHEDULER_H_

#include "stafilos/abstract_scheduler.h"

namespace cwf {

/// \brief FIFO tuning knobs.
struct FIFOOptions {
  /// Source dispatch interval (0 = sources fire once per iteration).
  int source_interval = 5;
};

class FIFOScheduler : public AbstractScheduler {
 public:
  explicit FIFOScheduler(FIFOOptions options = {});

  const char* name() const override { return "FIFO"; }

 protected:
  bool HigherPriority(const Entry& a, const Entry& b) const override;
  void RecomputeState(Entry* entry) override;
};

}  // namespace cwf

#endif  // CONFLUENCE_STAFILOS_FIFO_SCHEDULER_H_

// Double-buffered background writer for ingest egress and access logging.
//
// A network event loop must never block on disk: the shards append
// structured access-log lines (and any egress payloads) to an in-memory
// buffer under a short lock, while one background thread swaps the two
// buffers and flushes the full one to the sink off the hot path — the
// classic trading-system CLog shape. Appends cost a lock + memcpy;
// flushing never holds the append lock while touching the sink.
//
// Overflow policy: a bounded buffer (default 4 MiB) that fills faster
// than the sink drains drops whole appends and counts them
// (dropped_appends), keeping memory bounded under log storms — an access
// log is diagnostics, not a ledger.

#ifndef CONFLUENCE_NET_BACKGROUND_WRITER_H_
#define CONFLUENCE_NET_BACKGROUND_WRITER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "common/lock_registry.h"
#include "common/status.h"

namespace cwf::net {

class BackgroundWriter {
 public:
  /// \brief Sink invoked on the background thread with each drained
  /// buffer (never concurrently with itself).
  using SinkFn = std::function<void(const std::string&)>;

  struct Options {
    /// Flush cadence when no buffer fills up first.
    int flush_interval_ms = 50;
    /// Per-buffer byte bound; an append that would overflow the active
    /// buffer is dropped and counted.
    size_t buffer_limit = 4 * 1024 * 1024;
    /// Appending past this many bytes wakes the flusher early.
    size_t flush_watermark = 64 * 1024;
  };

  BackgroundWriter() = default;
  ~BackgroundWriter();

  BackgroundWriter(const BackgroundWriter&) = delete;
  BackgroundWriter& operator=(const BackgroundWriter&) = delete;

  /// \brief Start the flusher thread writing into `sink`.
  Status Start(SinkFn sink, Options options);
  Status Start(SinkFn sink) { return Start(std::move(sink), Options()); }

  /// \brief Convenience: append-mode file sink at `path`.
  Status StartFile(const std::string& path, Options options);
  Status StartFile(const std::string& path) {
    return StartFile(path, Options());
  }

  /// \brief Queue `data` for the background flush. Never blocks on the
  /// sink; drops (and counts) when the active buffer is at its bound or
  /// the writer is stopped.
  void Append(std::string_view data);

  /// \brief Append `line` plus '\n'.
  void AppendLine(std::string_view line);

  /// \brief Block until everything appended so far reached the sink.
  void Flush();

  /// \brief Flush remaining data, stop and join the thread. Idempotent.
  void Stop();

  uint64_t bytes_written() const { return bytes_written_.load(); }
  uint64_t dropped_appends() const { return dropped_appends_.load(); }
  bool running() const { return running_.load(); }

 private:
  void FlushLoop();

  /// \brief Swap the active buffer out and hand it to the sink (flusher
  /// thread only).
  void DrainOnce();

  SinkFn sink_;
  Options options_;
  /// Serializes Stop(): concurrent callers (e.g. owner Stop racing the
  /// destructor) must not both run the join-and-drain epilogue, which
  /// would invoke sink_ concurrently with itself.
  OrderedMutex stop_mutex_{"net::BackgroundWriter::stop_mutex"};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> dropped_appends_{0};
  std::thread flusher_;

  mutable OrderedMutex mutex_{"net::BackgroundWriter::mutex"};
  mutable std::condition_variable_any cv_;
  /// Generation counters let Flush() wait for "my bytes hit the sink"
  /// without tracking byte positions: drains_completed_ advances after
  /// every DrainOnce.
  uint64_t drains_requested_ CWF_GUARDED_BY(mutex_) = 0;
  uint64_t drains_completed_ CWF_GUARDED_BY(mutex_) = 0;
  std::string buffers_[2] CWF_GUARDED_BY(mutex_);
  int active_ CWF_GUARDED_BY(mutex_) = 0;
};

}  // namespace cwf::net

#endif  // CONFLUENCE_NET_BACKGROUND_WRITER_H_

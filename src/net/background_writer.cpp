#include "net/background_writer.h"

#include <chrono>
#include <fstream>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace cwf::net {

BackgroundWriter::~BackgroundWriter() { Stop(); }

Status BackgroundWriter::Start(SinkFn sink, Options options) {
  // Serialized against Stop(): starting mid-epilogue would reset
  // stopping_ under the exiting flusher and spawn a second one.
  ScopedLock stop_lock(stop_mutex_);
  if (running_.load()) {
    return Status::FailedPrecondition("background writer already started");
  }
  if (!sink) {
    return Status::InvalidArgument("background writer needs a sink");
  }
  if (options.flush_interval_ms <= 0 || options.buffer_limit == 0) {
    return Status::InvalidArgument("bad background writer options");
  }
  sink_ = std::move(sink);
  options_ = options;
  stopping_ = false;
  running_ = true;
  flusher_ = std::thread([this] { FlushLoop(); });
  return Status::OK();
}

Status BackgroundWriter::StartFile(const std::string& path, Options options) {
  auto out = std::make_shared<std::ofstream>(path, std::ios::app);
  if (!*out) {
    return Status::Internal("cannot open '" + path + "' for append");
  }
  return Start(
      [out](const std::string& chunk) {
        out->write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
        out->flush();
      },
      options);
}

void BackgroundWriter::Append(std::string_view data) {
  bool wake = false;
  {
    ScopedLock lock(mutex_);
    if (!running_.load() || stopping_.load() ||
        buffers_[active_].size() + data.size() > options_.buffer_limit) {
      dropped_appends_.fetch_add(1);
      return;
    }
    buffers_[active_].append(data.data(), data.size());
    wake = buffers_[active_].size() >= options_.flush_watermark;
  }
  if (wake) {
    cv_.notify_all();
  }
}

void BackgroundWriter::AppendLine(std::string_view line) {
  std::string with_newline;
  with_newline.reserve(line.size() + 1);
  with_newline.append(line.data(), line.size());
  with_newline.push_back('\n');
  Append(with_newline);
}

// ts-allowlist: condition-variable wait — the release/reacquire cycle of
// cv_.wait() on a std::unique_lock is a lock pattern the thread-safety
// analysis cannot model (see common/thread_annotations.h).
void BackgroundWriter::Flush() CWF_NO_THREAD_SAFETY_ANALYSIS {
  if (!running_.load()) {
    return;
  }
  std::unique_lock<OrderedMutex> lock(mutex_);
  // Two completed drain cycles cover both the buffer active at call time
  // and one the flusher may already have swapped out mid-write.
  const uint64_t target = drains_completed_ + 2;
  drains_requested_ = target;
  cv_.notify_all();
  while (drains_completed_ < target && running_.load()) {
    // cwf-tidy-allow(cwf-unbounded-wait): predicate is the enclosing while
    cv_.wait(lock);
  }
}

// ts-allowlist: condition-variable wait — see Flush().
void BackgroundWriter::FlushLoop() CWF_NO_THREAD_SAFETY_ANALYSIS {
  const auto interval = std::chrono::milliseconds(options_.flush_interval_ms);
  for (;;) {
    {
      std::unique_lock<OrderedMutex> lock(mutex_);
      cv_.wait_for(lock, interval, [this]() CWF_REQUIRES(mutex_) {
        return stopping_.load() ||
               buffers_[active_].size() >= options_.flush_watermark ||
               drains_requested_ > drains_completed_;
      });
      if (stopping_.load()) {
        return;  // Stop() drains the remainder after the join
      }
    }
    DrainOnce();
  }
}

void BackgroundWriter::DrainOnce() {
  std::string* to_write = nullptr;
  {
    ScopedLock lock(mutex_);
    if (!buffers_[active_].empty()) {
      to_write = &buffers_[active_];
      active_ = 1 - active_;
    }
  }
  if (to_write != nullptr) {
    // The swapped-out buffer is owned by this thread until cleared below:
    // appends go to the other buffer, and there is only one flusher.
    sink_(*to_write);
    bytes_written_.fetch_add(to_write->size());
    to_write->clear();
  }
  {
    ScopedLock lock(mutex_);
    ++drains_completed_;
  }
  cv_.notify_all();
}

void BackgroundWriter::Stop() {
  // One caller runs the epilogue; a concurrent Stop blocks here and then
  // observes running_ == false.
  ScopedLock stop_lock(stop_mutex_);
  if (!running_.load()) {
    return;
  }
  stopping_ = true;
  cv_.notify_all();
  if (flusher_.joinable()) {
    // The held lock is stop_mutex_, which only serializes Stop/Start
    // callers; the flusher being joined never acquires it, so this join
    // cannot deadlock.
    // cwf-tidy-allow(cwf-blocking-under-lock): see rationale above
    flusher_.join();
  }
  // The flusher is gone; drain both buffers inline.
  DrainOnce();
  DrainOnce();
  running_ = false;
  cv_.notify_all();  // release any Flush() still waiting
}

}  // namespace cwf::net

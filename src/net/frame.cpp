#include "net/frame.h"

namespace cwf::net {

std::string EncodeFrame(uint16_t channel_id, std::string_view payload) {
  CWF_CHECK_MSG(payload.size() <= kMaxFramePayload,
                "frame payload " << payload.size() << " exceeds "
                                 << kMaxFramePayload);
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.push_back(static_cast<char>(kFrameMagic));
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>((channel_id >> 8) & 0xFF));
  out.push_back(static_cast<char>(channel_id & 0xFF));
  const uint32_t len = static_cast<uint32_t>(payload.size());
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>(len & 0xFF));
  out.append(payload);
  return out;
}

Status FrameDecoder::Feed(const char* data, size_t n, const FrameFn& on_frame) {
  if (poisoned_) {
    return Status::FailedPrecondition("frame decoder poisoned by earlier error");
  }
  buffer_.append(data, n);
  for (;;) {
    if (buffer_.size() < kFrameHeaderSize) {
      return Status::OK();
    }
    const auto* head = reinterpret_cast<const uint8_t*>(buffer_.data());
    if (head[0] != kFrameMagic) {
      poisoned_ = true;
      return Status::InvalidArgument("bad frame magic 0x" +
                                     std::to_string(head[0]));
    }
    if (head[1] != kFrameVersion) {
      poisoned_ = true;
      return Status::InvalidArgument("unsupported frame version " +
                                     std::to_string(head[1]));
    }
    const uint16_t channel_id =
        static_cast<uint16_t>((head[2] << 8) | head[3]);
    const uint32_t len = (static_cast<uint32_t>(head[4]) << 24) |
                         (static_cast<uint32_t>(head[5]) << 16) |
                         (static_cast<uint32_t>(head[6]) << 8) |
                         static_cast<uint32_t>(head[7]);
    if (len > kMaxFramePayload) {
      poisoned_ = true;
      return Status::OutOfRange("frame payload length " + std::to_string(len) +
                                " exceeds " + std::to_string(kMaxFramePayload));
    }
    if (buffer_.size() < kFrameHeaderSize + len) {
      return Status::OK();  // mid-frame; wait for more bytes
    }
    Frame frame;
    frame.version = head[1];
    frame.channel_id = channel_id;
    frame.payload = buffer_.substr(kFrameHeaderSize, len);
    buffer_.erase(0, kFrameHeaderSize + len);
    ++frames_decoded_;
    on_frame(std::move(frame));
  }
}

Status LineDecoder::Feed(const char* data, size_t n, const LineFn& on_line) {
  if (poisoned_) {
    return Status::FailedPrecondition("line decoder poisoned by earlier error");
  }
  pending_.append(data, n);
  size_t start = 0;
  size_t newline;
  while ((newline = pending_.find('\n', start)) != std::string::npos) {
    std::string_view line(pending_.data() + start, newline - start);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (!line.empty()) {
      on_line(line);
    }
    start = newline + 1;
  }
  pending_.erase(0, start);
  // Bound the undecoded tail: a client that streams newline-free bytes
  // must hit a wall, not grow this buffer until the server OOMs.
  if (pending_.size() > kMaxLineBytes) {
    poisoned_ = true;
    const size_t size = pending_.size();
    pending_.clear();
    pending_.shrink_to_fit();
    return Status::OutOfRange("line length " + std::to_string(size) +
                              " exceeds " + std::to_string(kMaxLineBytes));
  }
  return Status::OK();
}

void LineDecoder::Finish(const LineFn& on_line) {
  if (poisoned_ || pending_.empty()) {
    return;
  }
  std::string_view line(pending_);
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  if (!line.empty()) {
    on_line(line);
  }
  pending_.clear();
}

}  // namespace cwf::net

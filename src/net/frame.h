// Wire framing for the ingest front door.
//
// Two client protocols share one ingest server (src/net/ingest_server.h):
//
//  * Line protocol — newline-delimited `field=tag:value;...` bodies, the
//    same text format as trace files (stream/trace.h SerializeTokenBody).
//    Human-typable, telnet-compatible; every tuple lands on the
//    connection's default channel.
//
//  * Binary frame protocol — length-prefixed frames carrying an explicit
//    channel id, the serialization seam the planned distributed execution
//    (inter-partition wave transport) reuses:
//
//        offset 0   magic     0xCF  (also the protocol discriminator: no
//                                    line-protocol body starts with 0xCF)
//        offset 1   version   0x01
//        offset 2-3 channel   uint16, big-endian
//        offset 4-7 length    uint32, big-endian payload byte count
//        offset 8.. payload   `length` bytes, a SerializeTokenBody() text
//
// Both decoders are incremental: network reads hand over whatever bytes
// arrived and complete messages surface through a callback, so a tuple
// split across reads — or delivered byte by byte — reassembles exactly.
// Framing violations (bad magic/version, oversized declared length) are
// unrecoverable for a stream: the decoder reports an error Status and the
// server drops the connection rather than guess at a resync point.

#ifndef CONFLUENCE_NET_FRAME_H_
#define CONFLUENCE_NET_FRAME_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace cwf::net {

/// \brief First byte of every binary frame; doubles as the per-connection
/// protocol discriminator (printable line-protocol text never starts with
/// it).
inline constexpr uint8_t kFrameMagic = 0xCF;

/// \brief The one frame version this engine speaks.
inline constexpr uint8_t kFrameVersion = 0x01;

/// \brief Frame header size in bytes (magic + version + channel + length).
inline constexpr size_t kFrameHeaderSize = 8;

/// \brief Declared payloads above this are rejected as oversized (a
/// corrupt or hostile length prefix must not make the server allocate
/// gigabytes).
inline constexpr uint32_t kMaxFramePayload = 64 * 1024;

/// \brief Line-protocol counterpart of kMaxFramePayload: bytes buffered
/// toward a single line beyond this are a protocol violation (a client
/// streaming newline-free data must not grow a per-connection buffer
/// without bound).
inline constexpr size_t kMaxLineBytes = kMaxFramePayload;

/// \brief One decoded binary frame.
struct Frame {
  uint8_t version = kFrameVersion;
  uint16_t channel_id = 0;
  std::string payload;
};

/// \brief Encode a frame for `channel_id` carrying `payload`.
std::string EncodeFrame(uint16_t channel_id, std::string_view payload);

/// \brief Incremental binary-frame decoder (one per connection).
class FrameDecoder {
 public:
  using FrameFn = std::function<void(Frame&&)>;

  /// \brief Consume `n` bytes, invoking `on_frame` per completed frame.
  /// A non-OK return means the stream is corrupt (bad magic, unsupported
  /// version, oversized length); the decoder is then poisoned and the
  /// caller must drop the connection.
  Status Feed(const char* data, size_t n, const FrameFn& on_frame);

  /// \brief Bytes buffered toward an incomplete frame.
  size_t pending_bytes() const { return buffer_.size(); }

  /// \brief Whether the stream ended mid-frame (EOF truncation check).
  bool mid_frame() const { return !buffer_.empty(); }

  uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  std::string buffer_;
  bool poisoned_ = false;
  uint64_t frames_decoded_ = 0;
};

/// \brief Incremental newline-splitter (one per connection). Strips a
/// trailing '\r' (telnet clients); empty lines are skipped.
class LineDecoder {
 public:
  using LineFn = std::function<void(std::string_view)>;

  /// \brief Consume `n` bytes, invoking `on_line` per completed line.
  /// A non-OK return means the stream buffered more than kMaxLineBytes
  /// toward a single line; the decoder is then poisoned and the caller
  /// must drop the connection (the line-protocol mirror of the
  /// oversized-frame rejection).
  Status Feed(const char* data, size_t n, const LineFn& on_line);

  /// \brief Flush the trailing unterminated line at end of stream: a
  /// client that closes without a final newline still delivers its last
  /// tuple instead of silently losing it. No-op on a poisoned decoder.
  void Finish(const LineFn& on_line);

  size_t pending_bytes() const { return pending_.size(); }

 private:
  std::string pending_;
  bool poisoned_ = false;
};

}  // namespace cwf::net

#endif  // CONFLUENCE_NET_FRAME_H_

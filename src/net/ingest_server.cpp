#include "net/ingest_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "obs/profile.h"
#include "stream/trace.h"

namespace cwf::net {

namespace {

/// Host-side monotone microseconds for pause durations and access-log
/// stamps (independent of the engine Clock, which may be virtual).
int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string FormatPeer(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

enum class WireProtocol : uint8_t { kUndecided, kLine, kBinary };

}  // namespace

// ---------------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------------

struct IngestServer::ChannelSlot {
  uint16_t id = 0;
  std::string name;
  PushChannelPtr channel;
  obs::Counter* c_tuples = nullptr;
  std::atomic<uint64_t> tuples{0};
};

struct IngestServer::Connection {
  int fd = -1;
  std::string peer;
  WireProtocol protocol = WireProtocol::kUndecided;
  LineDecoder line_decoder;
  FrameDecoder frame_decoder;

  struct Staged {
    ChannelSlot* slot;
    TraceEntry entry;
  };
  /// Decoded tuples a full channel refused, in arrival order. While
  /// non-empty every further deposit appends here (ordering), and past
  /// staging_limit the fd leaves the epoll read-interest set.
  std::deque<Staged> staged;

  bool paused = false;      ///< fd removed from read interest
  bool eof = false;         ///< peer finished cleanly
  bool fatal = false;       ///< protocol/read/channel error; stop reading
  bool done = false;        ///< no more reads ever; destroy once drained
  bool backlogged = false;  ///< member of the shard's backlog list
  int64_t pause_start_us = 0;
  int parse_error_logs = 0;
};

/// One event-loop shard: an epoll fd over this shard's connections plus an
/// eventfd for adoption / space-available / shutdown wakeups. Everything
/// except the adoption queue is owned by the shard thread — no locks on the
/// read path.
class IngestServer::Shard {
 public:
  Shard(IngestServer* server, int index) : server_(server), index_(index) {}

  ~Shard() {
    Join();
    if (event_fd_ >= 0) {
      ::close(event_fd_);
    }
    if (epoll_fd_ >= 0) {
      ::close(epoll_fd_);
    }
  }

  Status Start() {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) {
      return Status::Internal("epoll_create1 failed: " +
                              std::string(std::strerror(errno)));
    }
    event_fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (event_fd_ < 0) {
      return Status::Internal("eventfd failed: " +
                              std::string(std::strerror(errno)));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = event_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) < 0) {
      return Status::Internal("epoll_ctl(eventfd) failed: " +
                              std::string(std::strerror(errno)));
    }
    thread_ = std::thread([this] { Loop(); });
    return Status::OK();
  }

  /// Hand an accepted fd to this shard (acceptor thread).
  void Adopt(int fd) {
    {
      ScopedLock lock(mutex_);
      pending_fds_.push_back(fd);
    }
    Wake();
  }

  /// Nudge the event loop (any thread; also the channels' space-available
  /// callback target).
  void Wake() {
    const uint64_t one = 1;
    if (event_fd_ >= 0) {
      [[maybe_unused]] const ssize_t n =
          ::write(event_fd_, &one, sizeof(one));
    }
  }

  void Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

 private:
  void Loop() {
    std::vector<epoll_event> events(128);
    read_buf_.resize(server_->options_.read_buffer_bytes);
    for (;;) {
      const int n = ::epoll_wait(epoll_fd_, events.data(),
                                 static_cast<int>(events.size()), -1);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;
      }
      bool woken = false;
      for (int i = 0; i < n; ++i) {
        if (events[i].data.fd == event_fd_) {
          DrainEventFd();
          woken = true;
          continue;
        }
        auto it = conns_.find(events[i].data.fd);
        if (it == conns_.end()) {
          continue;
        }
        Connection* conn = it->second.get();
        // A backpressure-paused fd is registered with events=0, but epoll
        // still reports error conditions (peer RST while paused). ReadFrom
        // skips paused connections, so without consuming the condition
        // here the level-triggered wait would return instantly forever.
        if (conn->paused &&
            (events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
          server_->LogAccess("peer_error", conn->fd, conn->peer);
          conn->fatal = true;
          FinishReads(conn);
          continue;
        }
        ReadFrom(conn);
      }
      if (server_->stopping_.load()) {
        break;
      }
      if (woken) {
        AdoptPending();
        DrainBacklog();
      }
    }
    ShutdownAll();
  }

  void DrainEventFd() {
    uint64_t buf;
    while (::read(event_fd_, &buf, sizeof(buf)) > 0) {
    }
  }

  void AdoptPending() {
    std::vector<int> fds;
    {
      ScopedLock lock(mutex_);
      fds.swap(pending_fds_);
    }
    for (int fd : fds) {
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      sockaddr_in peer{};
      socklen_t peer_len = sizeof(peer);
      if (::getpeername(fd, reinterpret_cast<sockaddr*>(&peer), &peer_len) ==
          0) {
        conn->peer = FormatPeer(peer);
      }
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP;
      ev.data.fd = fd;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
        server_->LogAccess("epoll_error", fd, std::strerror(errno));
        ::close(fd);
        server_->OnConnectionGone();
        continue;
      }
      conns_.emplace(fd, std::move(conn));
    }
  }

  /// Read until EAGAIN / pause / end-of-stream, decoding as we go.
  void ReadFrom(Connection* conn) {
    if (conn->done) {
      return;  // stale event for a connection already finishing
    }
    while (!conn->paused && !conn->fatal && !conn->eof) {
      const ssize_t n = ::read(conn->fd, read_buf_.data(), read_buf_.size());
      if (n > 0) {
        server_->bytes_.fetch_add(static_cast<uint64_t>(n));
        if (server_->c_bytes_ != nullptr) {
          server_->c_bytes_->Add(static_cast<uint64_t>(n));
        }
        DispatchBytes(conn, read_buf_.data(), static_cast<size_t>(n));
        if (!conn->staged.empty()) {
          TryDrainStaged(conn);
          SettleBacklog(conn);
        }
        if (conn->staged.size() >= server_->options_.staging_limit) {
          PauseConn(conn);
        }
      } else if (n == 0) {
        conn->eof = true;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else if (errno == EINTR) {
        continue;
      } else {
        server_->LogAccess("read_error", conn->fd, std::strerror(errno));
        conn->fatal = true;
      }
    }
    if (conn->eof || conn->fatal) {
      FinishReads(conn);
    }
  }

  void DispatchBytes(Connection* conn, const char* data, size_t n) {
    if (n == 0) {
      return;
    }
    if (conn->protocol == WireProtocol::kUndecided) {
      conn->protocol = (static_cast<uint8_t>(data[0]) == kFrameMagic)
                           ? WireProtocol::kBinary
                           : WireProtocol::kLine;
    }
    if (conn->protocol == WireProtocol::kBinary) {
      const Status st = conn->frame_decoder.Feed(
          data, n, [this, conn](Frame&& frame) {
            ChannelSlot* slot = server_->FindChannel(frame.channel_id);
            if (slot == nullptr) {
              server_->unknown_channel_.fetch_add(1);
              if (server_->c_frame_errors_ != nullptr) {
                server_->c_frame_errors_->Add(1);
              }
              return;  // drop the frame; the stream itself is still framed
            }
            HandleTuple(conn, slot, frame.payload);
          });
      if (!st.ok()) {
        server_->frame_errors_.fetch_add(1);
        if (server_->c_frame_errors_ != nullptr) {
          server_->c_frame_errors_->Add(1);
        }
        server_->LogAccess("frame_error", conn->fd, st.message());
        conn->fatal = true;
      }
    } else {
      const Status st = conn->line_decoder.Feed(
          data, n, [this, conn](std::string_view line) {
            if (server_->default_slot_ == nullptr) {
              server_->unknown_channel_.fetch_add(1);
              conn->fatal = true;  // no line-protocol channel on this server
              return;
            }
            HandleTuple(conn, server_->default_slot_, std::string(line));
          });
      if (!st.ok()) {
        // Oversized line: same boundary violation as an oversized frame.
        server_->frame_errors_.fetch_add(1);
        if (server_->c_frame_errors_ != nullptr) {
          server_->c_frame_errors_->Add(1);
        }
        server_->LogAccess("line_error", conn->fd, st.message());
        conn->fatal = true;
      }
    }
  }

  /// Decode one tuple body, schema-check it at the trust boundary, and
  /// deposit (or stage) it.
  void HandleTuple(Connection* conn, ChannelSlot* slot,
                   const std::string& body) {
    if (conn->fatal) {
      return;  // a deposit already hit a closed channel mid-buffer
    }
    Result<Token> parsed = [&] {
      CWF_PROFILE_SCOPE(server_->decode_site_);
      return ParseTokenBody(body);
    }();
    if (!parsed.ok()) {
      server_->parse_errors_.fetch_add(1);
      if (server_->c_parse_errors_ != nullptr) {
        server_->c_parse_errors_->Add(1);
      }
      if (conn->parse_error_logs++ < 3) {
        CWF_CLOG(kWarn, "net")
            << "ingest dropped malformed tuple from " << conn->peer << ": "
            << parsed.status().ToString();
      }
      return;
    }
    Token token = std::move(parsed).value();
    // Non-fatal schema check: a client pushing tuples that violate the
    // channel's declared schema must feed a counter, not trip the engine's
    // CWF7008 abort inside the channel.
    const Status schema = slot->channel->CheckToken(token);
    if (!schema.ok()) {
      server_->schema_rejects_.fetch_add(1);
      if (server_->c_schema_rejects_ != nullptr) {
        server_->c_schema_rejects_->Add(1);
      }
      if (conn->parse_error_logs++ < 3) {
        CWF_CLOG(kWarn, "net")
            << "ingest rejected off-schema tuple from " << conn->peer << ": "
            << schema.ToString();
      }
      return;
    }
    TraceEntry entry{server_->clock_->Now(), std::move(token)};
    if (!conn->staged.empty()) {
      // Ordering: while anything is staged, later tuples must queue behind
      // it even if the channel has room again.
      conn->staged.push_back({slot, std::move(entry)});
      return;
    }
    // Single-entry TryPushBatch rather than Offer: the batch API moves the
    // token only on acceptance, so a refused tuple is still whole and can
    // be staged (Offer consumes its by-value argument either way).
    size_t accepted;
    {
      CWF_PROFILE_SCOPE(server_->deposit_site_);
      accepted = slot->channel->TryPushBatch(std::span(&entry, 1));
    }
    if (accepted == 1) {
      CountDelivered(slot, 1);
    } else if (slot->channel->closed()) {
      server_->staged_dropped_.fetch_add(1);
      conn->fatal = true;  // engine is gone; stop reading
    } else {
      conn->staged.push_back({slot, std::move(entry)});
    }
  }

  void CountDelivered(ChannelSlot* slot, size_t n) {
    server_->tuples_.fetch_add(n);
    slot->tuples.fetch_add(n);
    if (slot->c_tuples != nullptr) {
      slot->c_tuples->Add(n);
    }
  }

  /// Drain the connection's staging buffer, batching runs of same-channel
  /// tuples through TryPushBatch (one lock acquisition per run).
  void TryDrainStaged(Connection* conn) {
    while (!conn->staged.empty()) {
      ChannelSlot* slot = conn->staged.front().slot;
      scratch_.clear();
      size_t run = 0;
      for (const auto& s : conn->staged) {
        if (s.slot != slot) {
          break;
        }
        ++run;
      }
      scratch_.reserve(run);
      for (size_t i = 0; i < run; ++i) {
        scratch_.push_back(std::move(conn->staged[i].entry));
      }
      size_t accepted;
      {
        CWF_PROFILE_SCOPE(server_->deposit_site_);
        accepted = slot->channel->TryPushBatch(scratch_);
      }
      if (accepted > 0) {
        CountDelivered(slot, accepted);
      }
      // Unaccepted entries were moved into scratch_; put them back.
      for (size_t i = accepted; i < run; ++i) {
        conn->staged[i].entry = std::move(scratch_[i]);
      }
      conn->staged.erase(conn->staged.begin(),
                         conn->staged.begin() +
                             static_cast<std::ptrdiff_t>(accepted));
      if (accepted == run) {
        continue;  // whole run landed; next channel's run
      }
      if (slot->channel->closed()) {
        // Undeliverable forever: shed this channel's staged run.
        server_->staged_dropped_.fetch_add(run - accepted);
        conn->staged.erase(conn->staged.begin(),
                           conn->staged.begin() +
                               static_cast<std::ptrdiff_t>(run - accepted));
        conn->fatal = true;
        continue;
      }
      return;  // still full; stay backlogged until the next space wakeup
    }
  }

  /// Post-drain bookkeeping: backlog membership, resume, destruction.
  void SettleBacklog(Connection* conn) {
    if (!conn->staged.empty()) {
      if (!conn->backlogged) {
        conn->backlogged = true;
        backlog_.push_back(conn);
      }
      return;
    }
    if (conn->paused && !conn->done) {
      ResumeConn(conn);
    }
  }

  void DrainBacklog() {
    std::vector<Connection*> work;
    work.swap(backlog_);
    for (Connection* conn : work) {
      conn->backlogged = false;
      TryDrainStaged(conn);
      SettleBacklog(conn);
      if (conn->done && conn->staged.empty()) {
        DestroyConn(conn);
      }
    }
  }

  void PauseConn(Connection* conn) {
    if (conn->paused || conn->done) {
      return;
    }
    epoll_event ev{};
    ev.events = 0;  // stay registered, report nothing: TCP pushes back
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->paused = true;
    conn->pause_start_us = SteadyMicros();
    server_->pauses_.fetch_add(1);
    server_->paused_now_.fetch_add(1);
    if (server_->c_pauses_ != nullptr) {
      server_->c_pauses_->Add(1);
    }
    if (server_->g_paused_ != nullptr) {
      server_->g_paused_->Add(1);
    }
  }

  void EndPauseBookkeeping(Connection* conn) {
    const int64_t dur = SteadyMicros() - conn->pause_start_us;
    conn->paused = false;
    server_->paused_now_.fetch_add(-1);
    server_->paused_us_.fetch_add(static_cast<uint64_t>(std::max<int64_t>(dur, 0)));
    if (server_->g_paused_ != nullptr) {
      server_->g_paused_->Add(-1);
    }
    if (server_->h_pause_us_ != nullptr) {
      server_->h_pause_us_->Record(dur);
    }
  }

  void ResumeConn(Connection* conn) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    EndPauseBookkeeping(conn);
  }

  /// The stream is over (clean EOF or fatal error): flush decoders, leave
  /// epoll, and either destroy now or park until staging drains. The fd
  /// stays open until destruction so its number cannot be recycled into a
  /// new connection while this one lingers in the backlog.
  void FinishReads(Connection* conn) {
    if (conn->done) {
      return;
    }
    if (conn->eof && !conn->fatal) {
      if (conn->protocol == WireProtocol::kLine) {
        // A client that closes without a trailing newline still delivers
        // its final tuple.
        conn->line_decoder.Finish([this, conn](std::string_view line) {
          if (server_->default_slot_ != nullptr) {
            HandleTuple(conn, server_->default_slot_, std::string(line));
          }
        });
      } else if (conn->protocol == WireProtocol::kBinary &&
                 conn->frame_decoder.mid_frame()) {
        server_->frame_errors_.fetch_add(1);
        if (server_->c_frame_errors_ != nullptr) {
          server_->c_frame_errors_->Add(1);
        }
        server_->LogAccess("frame_error", conn->fd, "truncated frame at EOF");
      }
    }
    conn->done = true;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    if (conn->paused) {
      EndPauseBookkeeping(conn);
    }
    TryDrainStaged(conn);
    SettleBacklog(conn);
    if (conn->staged.empty()) {
      DestroyConn(conn);
    }
  }

  void DestroyConn(Connection* conn) {
    if (conn->backlogged) {
      backlog_.erase(std::remove(backlog_.begin(), backlog_.end(), conn),
                     backlog_.end());
    }
    server_->LogAccess("close", conn->fd, conn->peer);
    const int fd = conn->fd;
    ::close(fd);
    server_->OnConnectionGone();
    conns_.erase(fd);  // destroys *conn
  }

  /// Shard-thread epilogue on shutdown: best-effort final drain, then shed
  /// and account for whatever no channel would take.
  void ShutdownAll() {
    {
      ScopedLock lock(mutex_);
      for (int fd : pending_fds_) {
        ::close(fd);
        server_->OnConnectionGone();
      }
      pending_fds_.clear();
    }
    for (auto& [fd, conn] : conns_) {
      TryDrainStaged(conn.get());
      if (!conn->staged.empty()) {
        server_->staged_dropped_.fetch_add(conn->staged.size());
      }
      if (conn->paused) {
        EndPauseBookkeeping(conn.get());
      }
      server_->LogAccess("close", fd, conn->peer);
      ::close(fd);
      server_->OnConnectionGone();
    }
    conns_.clear();
    backlog_.clear();
  }

  IngestServer* server_;
  [[maybe_unused]] int index_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::thread thread_;

  OrderedMutex mutex_{"net::IngestServer::Shard::mutex"};
  std::vector<int> pending_fds_ CWF_GUARDED_BY(mutex_);

  // Shard-thread-only state below (no lock by design).
  std::map<int, std::unique_ptr<Connection>> conns_;
  std::vector<Connection*> backlog_;
  std::vector<TraceEntry> scratch_;
  std::vector<char> read_buf_;
};

// ---------------------------------------------------------------------------
// IngestServer
// ---------------------------------------------------------------------------

IngestServer::IngestServer(Clock* clock, Options options)
    : clock_(clock), options_(std::move(options)) {
  CWF_CHECK(clock_ != nullptr);
  if (options_.shards < 1) {
    options_.shards = 1;
  }
  if (options_.staging_limit == 0) {
    options_.staging_limit = 1;
  }
  if (options_.read_buffer_bytes == 0) {
    options_.read_buffer_bytes = 4096;
  }
}

IngestServer::~IngestServer() { Stop(); }

void IngestServer::AddChannel(uint16_t channel_id, PushChannelPtr channel,
                              std::string name) {
  CWF_CHECK_MSG(!running_.load(), "AddChannel after Start");
  CWF_CHECK(channel != nullptr);
  CWF_CHECK_MSG(FindChannel(channel_id) == nullptr,
                "duplicate ingest channel id " << channel_id);
  auto slot = std::make_unique<ChannelSlot>();
  slot->id = channel_id;
  slot->name = name.empty() ? "ch" + std::to_string(channel_id)
                            : std::move(name);
  slot->channel = std::move(channel);
  channels_.push_back(std::move(slot));
}

IngestServer::ChannelSlot* IngestServer::FindChannel(uint16_t channel_id) {
  for (const auto& slot : channels_) {
    if (slot->id == channel_id) {
      return slot.get();
    }
  }
  return nullptr;
}

uint64_t IngestServer::channel_tuples(uint16_t channel_id) const {
  for (const auto& slot : channels_) {
    if (slot->id == channel_id) {
      return slot->tuples.load();
    }
  }
  return 0;
}

void IngestServer::OnConnectionGone() {
  live_.fetch_add(-1);
  if (g_connections_ != nullptr) {
    g_connections_->Add(-1);
  }
}

void IngestServer::ResolveInstruments() {
#ifdef CWF_OBS_ENABLED
  if (!obs::MetricsEnabled()) {
    return;
  }
  auto& reg = obs::MetricsRegistry::Global();
  reg.SetHelp("cwf_ingest_connections", "Live ingest connections");
  g_connections_ = reg.GetGauge("cwf_ingest_connections");
  reg.SetHelp("cwf_ingest_accepted_total", "Ingest connections accepted");
  c_accepted_ = reg.GetCounter("cwf_ingest_accepted_total");
  reg.SetHelp("cwf_ingest_rejected_total",
              "Ingest connections refused at the max_connections bound");
  c_rejected_ = reg.GetCounter("cwf_ingest_rejected_total");
  reg.SetHelp("cwf_ingest_bytes_total", "Bytes read off ingest sockets");
  c_bytes_ = reg.GetCounter("cwf_ingest_bytes_total");
  reg.SetHelp("cwf_ingest_parse_errors_total",
              "Ingest tuples dropped as unparseable");
  c_parse_errors_ = reg.GetCounter("cwf_ingest_parse_errors_total");
  reg.SetHelp("cwf_ingest_schema_rejects_total",
              "Ingest tuples rejected by the channel schema boundary check");
  c_schema_rejects_ = reg.GetCounter("cwf_ingest_schema_rejects_total");
  reg.SetHelp("cwf_ingest_frame_errors_total",
              "Wire-protocol violations, binary frames or oversized lines "
              "(connection dropped)");
  c_frame_errors_ = reg.GetCounter("cwf_ingest_frame_errors_total");
  reg.SetHelp("cwf_ingest_backpressure_paused",
              "Connections currently paused on channel backpressure");
  g_paused_ = reg.GetGauge("cwf_ingest_backpressure_paused");
  reg.SetHelp("cwf_ingest_backpressure_pauses_total",
              "Backpressure pauses (fd removed from read interest)");
  c_pauses_ = reg.GetCounter("cwf_ingest_backpressure_pauses_total");
  reg.SetHelp("cwf_ingest_backpressure_pause_us",
              "Microseconds a connection spent paused, per pause");
  h_pause_us_ = reg.GetHistogram("cwf_ingest_backpressure_pause_us");
  reg.SetHelp("cwf_ingest_tuples_total",
              "Tuples delivered into workflow channels, per channel");
  for (const auto& slot : channels_) {
    slot->c_tuples =
        reg.GetCounter("cwf_ingest_tuples_total", "channel", slot->name);
  }
  decode_site_ = obs::Profiler::Global().Site(
      "<ingest>", obs::ProfilePhase::kSerialization);
  deposit_site_ = obs::Profiler::Global().Site(
      "<ingest>", obs::ProfilePhase::kReceiverPut);
#endif
}

Status IngestServer::Start(uint16_t port) {
  if (running_.load()) {
    return Status::FailedPrecondition("ingest server already started");
  }
  if (channels_.empty()) {
    return Status::InvalidArgument("no channels registered");
  }
  default_slot_ = FindChannel(0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal("bind() failed: " +
                            std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return Status::Internal("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, 512) < 0) {
    ::close(fd);
    return Status::Internal("listen() failed: " +
                            std::string(std::strerror(errno)));
  }

  ResolveInstruments();
  if (!options_.access_log_path.empty()) {
    access_log_ = std::make_unique<BackgroundWriter>();
    const Status st = access_log_->StartFile(options_.access_log_path);
    if (!st.ok()) {
      ::close(fd);
      access_log_.reset();
      return st;
    }
  }

  stopping_ = false;
  shards_.clear();
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_shared<Shard>(this, i));
    const Status st = shards_.back()->Start();
    if (!st.ok()) {
      ::close(fd);
      stopping_ = true;
      for (auto& shard : shards_) {
        shard->Wake();
      }
      shards_.clear();  // dtors join
      if (access_log_) {
        access_log_->Stop();
      }
      return st;
    }
  }
  // The consumer side (PopArrived / Close) fires these; the callback must
  // be cheap — it is one eventfd write per shard. The callback captures a
  // snapshot of the shard vector by value (not `this->shards_`): channels
  // invoke their copy of the callback outside the channel lock, so an
  // invocation can still be running after Stop() cleared the callbacks,
  // and must not race a restart's shards_.clear().
  const std::vector<std::shared_ptr<Shard>> wake_shards = shards_;
  for (const auto& slot : channels_) {
    slot->channel->SetSpaceAvailableCallback([wake_shards] {
      for (const auto& shard : wake_shards) {
        shard->Wake();
      }
    });
  }

  listen_fd_.store(fd);
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void IngestServer::AcceptLoop() {
  size_t next_shard = 0;
  for (;;) {
    const int fd = listen_fd_.load();
    if (fd < 0) {
      return;  // Stop() already detached the listening socket
    }
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int client =
        ::accept(fd, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (client < 0) {
      if (stopping_.load()) {
        return;
      }
      if (errno != EINTR) {
        // Persistent errors (EMFILE/ENFILE when fds run out — likely
        // exactly under a connection storm) must not busy-spin the
        // acceptor; back off briefly before retrying.
        LogAccess("accept_error", -1, std::strerror(errno));
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      continue;
    }
    if (stopping_.load()) {
      ::close(client);
      return;
    }
    if (live_.load() >= static_cast<int64_t>(options_.max_connections)) {
      rejected_.fetch_add(1);
      if (c_rejected_ != nullptr) {
        c_rejected_->Add(1);
      }
      LogAccess("reject", client, FormatPeer(peer));
      ::close(client);
      continue;
    }
    if (!SetNonBlocking(client)) {
      ::close(client);
      continue;
    }
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepted_.fetch_add(1);
    live_.fetch_add(1);
    if (c_accepted_ != nullptr) {
      c_accepted_->Add(1);
    }
    if (g_connections_ != nullptr) {
      g_connections_->Add(1);
    }
    LogAccess("accept", client, FormatPeer(peer));
    shards_[next_shard]->Adopt(client);
    next_shard = (next_shard + 1) % shards_.size();
  }
}

void IngestServer::LogAccess(std::string_view event, int fd,
                             std::string_view detail) {
  if (!access_log_) {
    return;
  }
  std::string line;
  line.reserve(64 + detail.size());
  line += "ts_us=";
  line += std::to_string(SteadyMicros());
  line += " event=";
  line += event;
  line += " fd=";
  line += std::to_string(fd);
  if (!detail.empty()) {
    line += " detail=";
    line += detail;
  }
  access_log_->AppendLine(line);
}

void IngestServer::Stop() {
  stopping_.store(true);
  // Channel callbacks reference the shards; detach them before teardown.
  for (const auto& slot : channels_) {
    slot->channel->SetSpaceAvailableCallback(nullptr);
  }
  // fd discipline: shutdown() wakes the blocked accept, join, THEN close —
  // closing first would let the kernel recycle the number under the
  // acceptor's feet.
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd >= 0) {
    ::close(listen_fd);
  }
  for (const auto& shard : shards_) {
    shard->Wake();
  }
  for (const auto& shard : shards_) {
    shard->Join();
  }
  // Shard objects may outlive Stop(): a space-available callback taken out
  // of the channel lock just before the callbacks were cleared may still
  // be running, but it iterates its own shared_ptr snapshot (see Start),
  // so a restart's shards_.clear() cannot pull the vector out from under
  // it — Wake() on a joined shard is a harmless eventfd write.
  if (options_.close_channels_on_stop) {
    for (const auto& slot : channels_) {
      slot->channel->Close();
    }
  }
  if (access_log_) {
    access_log_->Stop();
  }
  running_ = false;
}

}  // namespace cwf::net

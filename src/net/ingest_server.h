// Front-door ingestion at connection scale: an epoll-based, non-blocking
// TCP server that fans thousands of concurrent client connections into the
// workflow's PushChannels.
//
// The paper's push actors "connect to external data streams (through TCP or
// HTTP connections)" and pump tuples "at a rate dictated by the director's
// execution model". stream/tcp_listener.h reproduces that with a
// thread-per-connection loop — fine for a handful of sources, hopeless for
// thousands. IngestServer is the scalable transport underneath:
//
//   * One acceptor thread owns the listening socket and hands accepted fds
//     to N event-loop shards round-robin. Each shard runs a level-triggered
//     epoll loop over its connections plus an eventfd used for adoption,
//     space-available and shutdown wakeups. A connection lives on exactly
//     one shard for its whole life, so per-connection state needs no lock.
//
//   * Both wire protocols of net/frame.h are spoken on every port; the
//     first byte of a connection picks the protocol (0xCF = binary frames
//     with explicit channel ids, anything else = newline line protocol into
//     the connection's default channel).
//
//   * Per-connection backpressure against bounded channels: when a deposit
//     is refused (PushOutcome::kFull) the tuple goes into the connection's
//     staging buffer — order is preserved, nothing is dropped — and once
//     staging reaches its bound the shard removes the fd from the epoll
//     read-interest set. The kernel's TCP receive window then pushes back
//     on the client. The channel's space-available callback (fired by the
//     consumer once the queue drains to half capacity) wakes every shard;
//     shards drain staging via TryPushBatch and re-arm EPOLLIN. Bounded
//     channel + paused reads + full staging = zero tuple loss under
//     overload, end to end.
//
//   * Boundary hardening: tuples are schema-checked with the non-fatal
//     PushChannel::CheckToken before deposit, so a malicious client feeds a
//     reject counter instead of tripping the engine's CWF7008 abort.
//
//   * Observability: cwf_ingest_* counters/gauges/histograms in the global
//     MetricsRegistry, `<ingest>` pseudo-actor profile phases
//     (serialization = decode+parse, receiver_put = channel deposit), and
//     an optional access log flushed through net/background_writer.h so the
//     event loops never block on disk.

#ifndef CONFLUENCE_NET_INGEST_SERVER_H_
#define CONFLUENCE_NET_INGEST_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/lock_registry.h"
#include "common/status.h"
#include "core/clock.h"
#include "net/background_writer.h"
#include "net/frame.h"
#include "stream/push_channel.h"

namespace cwf::obs {
struct ProfileSite;
class Counter;
class Gauge;
class Histogram;
}  // namespace cwf::obs

namespace cwf::net {

/// \brief Multi-client epoll ingest server. Register channels, Start(),
/// Stop(). All configuration happens before Start().
class IngestServer {
 public:
  struct Options {
    /// Event-loop shard (thread) count.
    int shards = 2;
    /// Live-connection bound; clients past it are accepted and immediately
    /// closed (counted in connections_rejected).
    size_t max_connections = 8192;
    /// Staged tuples per connection before its fd leaves the epoll
    /// read-interest set. Staging may transiently overshoot by the tuples
    /// decoded from one already-read buffer — the bound gates further
    /// socket reads, it never drops a decoded tuple.
    size_t staging_limit = 256;
    /// Bytes per socket read; also the unit of staging overshoot.
    size_t read_buffer_bytes = 16 * 1024;
    /// Access-log path ("" = no access log). Connect/close/error events,
    /// one line each, flushed off-thread by a BackgroundWriter.
    std::string access_log_path;
    /// Close every registered channel on Stop() so a draining workflow
    /// terminates (the TcpLineListener contract). Turn off when the
    /// channels outlive the server.
    bool close_channels_on_stop = true;
    /// Listen address (the loopback default keeps tests self-contained;
    /// "0.0.0.0" opens the front door).
    std::string bind_address = "127.0.0.1";
  };

  /// \brief Tuples are stamped with `clock->Now()` as their arrival time at
  /// the moment they are decoded.
  IngestServer(Clock* clock, Options options);
  explicit IngestServer(Clock* clock) : IngestServer(clock, Options()) {}
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// \brief Register `channel` under binary-frame `channel_id`. Id 0 is
  /// also the default channel line-protocol tuples land on. `name` labels
  /// the per-channel metrics (defaults to "ch<id>"). Call before Start().
  void AddChannel(uint16_t channel_id, PushChannelPtr channel,
                  std::string name = "");

  /// \brief Bind `bind_address`:`port` (0 picks an ephemeral port), start
  /// the acceptor and shard threads.
  Status Start(uint16_t port = 0);

  /// \brief The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// \brief Stop accepting, flush staging once, close every connection,
  /// join all threads (and close the channels when configured). Idempotent.
  void Stop();

  bool running() const { return running_.load(); }

  // Lifetime totals (monotone) and live state, readable from any thread.
  uint64_t connections_accepted() const { return accepted_.load(); }
  uint64_t connections_rejected() const { return rejected_.load(); }
  int64_t connections_live() const { return live_.load(); }
  uint64_t tuples_received() const { return tuples_.load(); }
  uint64_t bytes_received() const { return bytes_.load(); }
  uint64_t parse_errors() const { return parse_errors_.load(); }
  uint64_t schema_rejects() const { return schema_rejects_.load(); }
  uint64_t frame_errors() const { return frame_errors_.load(); }
  uint64_t unknown_channel_frames() const { return unknown_channel_.load(); }
  uint64_t backpressure_pauses() const { return pauses_.load(); }
  int64_t connections_paused() const { return paused_now_.load(); }
  uint64_t backpressure_paused_us() const { return paused_us_.load(); }
  /// Tuples still staged at Stop() that no channel would take (the one
  /// path that sheds data, and only at shutdown).
  uint64_t staged_dropped() const { return staged_dropped_.load(); }

  /// \brief Tuples delivered into the channel registered as `channel_id`
  /// (0 when the id is unknown).
  uint64_t channel_tuples(uint16_t channel_id) const;

  BackgroundWriter* access_log() { return access_log_.get(); }

 private:
  struct ChannelSlot;
  struct Connection;
  class Shard;

  void AcceptLoop();
  void LogAccess(std::string_view event, int fd, std::string_view detail);
  ChannelSlot* FindChannel(uint16_t channel_id);
  void ResolveInstruments();
  void OnConnectionGone();

  Clock* clock_;
  Options options_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::thread accept_thread_;

  // Channel table: fixed after Start(), read lock-free by every shard.
  std::vector<std::unique_ptr<ChannelSlot>> channels_;
  // Line-protocol tuples land on channel id 0 (null when not registered).
  ChannelSlot* default_slot_ = nullptr;

  // Shared with the channels' space-available callbacks: each callback
  // captures a snapshot copy of this vector, so an invocation in flight
  // across Stop()+Start() keeps the old shards alive instead of iterating
  // a vector the restart is clearing (Wake() on a joined shard is a
  // harmless eventfd write).
  std::vector<std::shared_ptr<Shard>> shards_;
  std::unique_ptr<BackgroundWriter> access_log_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<int64_t> live_{0};
  std::atomic<uint64_t> tuples_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> schema_rejects_{0};
  std::atomic<uint64_t> frame_errors_{0};
  std::atomic<uint64_t> unknown_channel_{0};
  std::atomic<uint64_t> pauses_{0};
  std::atomic<int64_t> paused_now_{0};
  std::atomic<uint64_t> paused_us_{0};
  std::atomic<uint64_t> staged_dropped_{0};

  // Instruments resolved once at Start (null when obs is compiled out or
  // disabled); shards touch only these pointers on the hot path.
  obs::Gauge* g_connections_ = nullptr;
  obs::Counter* c_accepted_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
  obs::Counter* c_bytes_ = nullptr;
  obs::Counter* c_parse_errors_ = nullptr;
  obs::Counter* c_schema_rejects_ = nullptr;
  obs::Counter* c_frame_errors_ = nullptr;
  obs::Gauge* g_paused_ = nullptr;
  obs::Counter* c_pauses_ = nullptr;
  obs::Histogram* h_pause_us_ = nullptr;
  const obs::ProfileSite* decode_site_ = nullptr;
  const obs::ProfileSite* deposit_site_ = nullptr;
};

}  // namespace cwf::net

#endif  // CONFLUENCE_NET_INGEST_SERVER_H_

#include "core/port.h"

#include "core/actor.h"
#include "obs/telemetry.h"

namespace cwf {
#ifdef CWF_OBS_ENABLED
namespace {

/// Profiler cell of a receiver's deposit/retrieval phases; nullptr (inert
/// scope) for unprobed receivers (telemetry off, boundary collectors).
const obs::ProfileSite* PutSite(const Receiver* r) {
  return r->probe() == nullptr ? nullptr : r->probe()->put_site;
}

const obs::ProfileSite* GetSite(const Receiver* r) {
  return r->probe() == nullptr ? nullptr : r->probe()->get_site;
}

}  // namespace
#endif

std::string Port::FullName() const {
  return (actor_ ? actor_->name() : std::string("<detached>")) + "." + name_;
}

Receiver* InputPort::SetReceiver(size_t channel,
                                 std::unique_ptr<Receiver> receiver) {
  if (receivers_.size() <= channel) {
    receivers_.resize(channel + 1);
  }
  receivers_[channel] = std::move(receiver);
  return receivers_[channel].get();
}

Receiver* InputPort::receiver(size_t channel) const {
  if (channel >= receivers_.size()) {
    return nullptr;
  }
  return receivers_[channel].get();
}

bool InputPort::HasWindow() const {
  for (const auto& r : receivers_) {
    if (r && r->HasWindow()) {
      return true;
    }
  }
  return false;
}

bool InputPort::HasWindowOn(size_t channel) const {
  const Receiver* r = receiver(channel);
  return r != nullptr && r->HasWindow();
}

std::optional<Window> InputPort::Get() {
  for (auto& r : receivers_) {
    if (r && r->HasWindow()) {
      CWF_PROFILE_SCOPE(GetSite(r.get()));
      std::optional<Window> w = r->Get();
      if (w.has_value()) {
        if (actor_ != nullptr) {
          actor_->NoteConsumedWindow(*w);
        }
        r->NoteGet();
      }
      return w;
    }
  }
  return std::nullopt;
}

std::optional<Window> InputPort::GetFrom(size_t channel) {
  Receiver* r = receiver(channel);
  if (r == nullptr) {
    return std::nullopt;
  }
  CWF_PROFILE_SCOPE(GetSite(r));
  std::optional<Window> w = r->Get();
  if (w.has_value()) {
    if (actor_ != nullptr) {
      actor_->NoteConsumedWindow(*w);
    }
    r->NoteGet();
  }
  return w;
}

size_t InputPort::ReadyWindowCount() const {
  size_t count = 0;
  for (const auto& r : receivers_) {
    if (r) {
      count += r->ReadyWindowCount();
    }
  }
  return count;
}

size_t InputPort::PendingEventCount() const {
  size_t count = 0;
  for (const auto& r : receivers_) {
    if (r) {
      count += r->PendingEventCount();
    }
  }
  return count;
}

std::vector<CWEvent> InputPort::DrainExpired() {
  std::vector<CWEvent> out;
  for (const auto& r : receivers_) {
    if (r) {
      std::vector<CWEvent> expired = r->DrainExpired();
      out.insert(out.end(), std::make_move_iterator(expired.begin()),
                 std::make_move_iterator(expired.end()));
    }
  }
  return out;
}

Status OutputPort::Broadcast(const CWEvent& event) {
  for (Receiver* r : remote_receivers_) {
#if CWF_SCHEMA_CHECK_IS_ON
    // Validate the deposit against the channel's resolved schema before it
    // crosses into the consumer: a violation surfaces here as an attributed
    // CWF7008 error instead of a CHECK-fail deep inside the consuming
    // actor. Compiled out in release builds (CONFLUENCE_DCHECKS=OFF).
    CWF_RETURN_NOT_OK(r->ValidateDeposit(event.token));
#endif
    CWF_PROFILE_SCOPE(PutSite(r));
    CWF_RETURN_NOT_OK(r->Put(event));
    r->NotePut();
  }
  return Status::OK();
}

}  // namespace cwf

#include "core/receiver.h"

#include "core/port.h"
#include "obs/telemetry.h"

#ifdef CWF_OBS_ENABLED
#include "obs/metrics.h"
#endif

// The probe helpers live out of line so core/receiver.h does not pull the
// obs headers into every translation unit that touches a receiver.

namespace cwf {

namespace {

void BumpSchemaViolationCounter() {
#ifdef CWF_OBS_ENABLED
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global().SetHelp(
        "cwf_schema_violations",
        "Tokens rejected by the runtime channel schema check (CWF7008)");
    obs::MetricsRegistry::Global().GetCounter("cwf_schema_violations")->Add(1);
  }
#endif
}

}  // namespace

Status Receiver::ValidateDeposit(const Token& token) const {
  if (expected_type_ == nullptr) {
    return Status::OK();
  }
  Status check = expected_type_->CheckToken(token);
  if (check.ok()) {
    return check;
  }
  BumpSchemaViolationCounter();
  return Status::FailedPrecondition(
      "CWF7008: runtime schema violation on channel '" +
      (channel_name_.empty() ? port_->FullName() : channel_name_) +
      "': " + check.message());
}

void Receiver::ProbeDeposit(size_t depth) {
  if (!obs::MetricsEnabled()) {
    return;
  }
  probe_->depth->Set(static_cast<int64_t>(depth));
}

void Receiver::NotePut() {
  if (probe_ == nullptr || !obs::MetricsEnabled()) {
    return;
  }
  probe_->puts->Add(1);
}

void Receiver::NoteGet() {
  if (probe_ == nullptr || !obs::MetricsEnabled()) {
    return;
  }
  probe_->gets->Add(1);
  // Deliberately no depth refresh here: QueueDepth() walks the window
  // groups (O(#groups), thousands for keyed LRB windows) and is already
  // paid on every deposit. The depth gauge is deposit-sampled; a get only
  // shrinks the queue, so the high-water mark cannot be missed.
}

void Receiver::NoteBlockedMicros(int64_t micros) {
  if (probe_ == nullptr || micros <= 0 || !obs::MetricsEnabled()) {
    return;
  }
  probe_->blocked_us->Add(static_cast<uint64_t>(micros));
}

}  // namespace cwf

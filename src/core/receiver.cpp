#include "core/receiver.h"

#include "obs/telemetry.h"

// The probe helpers live out of line so core/receiver.h does not pull the
// obs headers into every translation unit that touches a receiver.

namespace cwf {

void Receiver::ProbeDeposit(size_t depth) {
  if (!obs::MetricsEnabled()) {
    return;
  }
  probe_->depth->Set(static_cast<int64_t>(depth));
}

void Receiver::NotePut() {
  if (probe_ == nullptr || !obs::MetricsEnabled()) {
    return;
  }
  probe_->puts->Add(1);
}

void Receiver::NoteGet() {
  if (probe_ == nullptr || !obs::MetricsEnabled()) {
    return;
  }
  probe_->gets->Add(1);
  // Deliberately no depth refresh here: QueueDepth() walks the window
  // groups (O(#groups), thousands for keyed LRB windows) and is already
  // paid on every deposit. The depth gauge is deposit-sampled; a get only
  // shrinks the queue, so the high-water mark cannot be missed.
}

void Receiver::NoteBlockedMicros(int64_t micros) {
  if (probe_ == nullptr || micros <= 0 || !obs::MetricsEnabled()) {
    return;
  }
  probe_->blocked_us->Add(static_cast<uint64_t>(micros));
}

}  // namespace cwf

#include "core/receiver.h"

// Receiver and QueueReceiver are header-only; this TU anchors the vtable.

namespace cwf {}  // namespace cwf

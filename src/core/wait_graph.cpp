#include "core/wait_graph.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "core/actor.h"
#include "core/receiver.h"

#ifdef CWF_OBS_ENABLED
#include "obs/metrics.h"
#endif

namespace cwf {

namespace {

thread_local const Actor* t_current_actor = nullptr;

}  // namespace

// ---------------------------------------------------------------------------
// DeadlockEdge / DeadlockReport rendering
// ---------------------------------------------------------------------------

std::string DeadlockEdge::ToString() const {
  std::ostringstream oss;
  oss << waiter_name << (put_blocked ? " -blocked put-> " : " -blocked get-> ")
      << waits_on_name << " on '" << channel << "' ";
  if (put_blocked) {
    oss << "(capacity " << capacity << ", full)";
  } else {
    oss << "(no ready window)";
  }
  return oss.str();
}

std::string DeadlockReport::CycleString() const {
  std::ostringstream oss;
  for (size_t i = 0; i < cycle.size(); ++i) {
    oss << cycle[i].waiter_name << " -> ";
  }
  if (!cycle.empty()) {
    oss << cycle.front().waiter_name;
  }
  return oss.str();
}

std::string DeadlockReport::ToString() const {
  std::ostringstream oss;
  oss << "artificial deadlock: channel wait-for cycle " << CycleString()
      << ":\n";
  for (const DeadlockEdge& edge : cycle) {
    oss << "  " << edge.ToString() << "\n";
  }
  oss << "unable to progress:";
  for (size_t i = 0; i < dead_names.size(); ++i) {
    oss << (i == 0 ? " " : ", ") << dead_names[i];
  }
  return oss.str();
}

// ---------------------------------------------------------------------------
// EvaluateWaitGraph
// ---------------------------------------------------------------------------

DeadlockReport EvaluateWaitGraph(const std::vector<WaitNode>& blocked) {
  DeadlockReport report;
  std::map<const Actor*, const WaitNode*> nodes;
  for (const WaitNode& node : blocked) {
    // A get-node with no awaited ports waits on nothing: treat as live.
    if (!node.put_blocked && node.get_ports.empty()) {
      continue;
    }
    nodes[node.actor] = &node;
  }

  // Least fixpoint of "live": start from "every blocked actor may be dead"
  // and repeatedly mark actors live when what they wait on is live. An
  // actor not in the snapshot is live (it can run).
  std::set<const Actor*> live;
  const auto is_live = [&](const Actor* a) {
    return nodes.find(a) == nodes.end() || live.count(a) > 0;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [actor, node] : nodes) {
      if (live.count(actor) > 0) {
        continue;
      }
      bool now_live;
      if (node->put_blocked) {
        // The deposit resumes only when the (single) full channel drains,
        // i.e. when its consumer makes progress.
        now_live = true;
        for (const WaitTarget& t : node->put_targets) {
          now_live = now_live && is_live(t.actor);
        }
      } else {
        // Every port must eventually produce a window; a port is
        // satisfiable when any alternative's producer is live.
        now_live = true;
        for (const auto& port : node->get_ports) {
          bool port_ok = false;
          for (const WaitTarget& t : port) {
            port_ok = port_ok || is_live(t.actor);
          }
          now_live = now_live && port_ok;
        }
      }
      if (now_live) {
        live.insert(actor);
        changed = true;
      }
    }
  }

  for (const auto& [actor, node] : nodes) {
    if (live.count(actor) == 0) {
      report.dead.push_back(actor);
      report.dead_names.push_back(node->actor_name);
    }
  }
  if (report.dead.empty()) {
    return report;
  }

  // Extract one witness cycle: follow, from any dead actor, a wait edge
  // that leads to another dead actor (one must exist — otherwise the
  // fixpoint would have marked the actor live). The walk closes on itself
  // within |dead| steps.
  const auto next_edge = [&](const WaitNode* node) {
    DeadlockEdge edge;
    edge.waiter = node->actor;
    edge.waiter_name = node->actor_name;
    edge.put_blocked = node->put_blocked;
    if (node->put_blocked) {
      for (const WaitTarget& t : node->put_targets) {
        if (!is_live(t.actor)) {
          edge.waits_on = t.actor;
          edge.channel = t.channel;
          edge.capacity = t.capacity;
          break;
        }
      }
    } else {
      for (const auto& port : node->get_ports) {
        bool port_dead = !port.empty();
        for (const WaitTarget& t : port) {
          port_dead = port_dead && !is_live(t.actor);
        }
        if (port_dead) {
          edge.waits_on = port.front().actor;
          edge.channel = port.front().channel;
          edge.capacity = port.front().capacity;
          break;
        }
      }
    }
    return edge;
  };

  std::vector<DeadlockEdge> path;
  std::map<const Actor*, size_t> position;
  const Actor* cursor = report.dead.front();
  while (position.find(cursor) == position.end()) {
    position[cursor] = path.size();
    const WaitNode* node = nodes.at(cursor);
    DeadlockEdge edge = next_edge(node);
    if (edge.waits_on == nullptr) {
      break;  // defensive: malformed snapshot
    }
    const auto it = nodes.find(edge.waits_on);
    edge.waits_on_name =
        it != nodes.end() ? it->second->actor_name : edge.channel;
    path.push_back(std::move(edge));
    cursor = path.back().waits_on;
  }
  if (!path.empty() && position.find(cursor) != position.end()) {
    report.cycle.assign(path.begin() + position[cursor], path.end());
  } else {
    report.cycle = std::move(path);
  }
  return report;
}

// ---------------------------------------------------------------------------
// ChannelWaitGraph
// ---------------------------------------------------------------------------

ChannelWaitGraph::~ChannelWaitGraph() {
  // Blocked actors should have unregistered when their threads joined;
  // settle the gauge anyway so a torn-down director never leaks residue.
  ScopedLock lock(mutex_);
  if (!blocked_.empty()) {
    AdjustBlockedGauge(-static_cast<int64_t>(blocked_.size()));
  }
}

void ChannelWaitGraph::Reset() {
  ScopedLock lock(mutex_);
  if (!blocked_.empty()) {
    AdjustBlockedGauge(-static_cast<int64_t>(blocked_.size()));
  }
  channels_.clear();
  blocked_.clear();
  epochs_.clear();
}

void ChannelWaitGraph::RegisterChannel(const Receiver* receiver,
                                       const Actor* producer,
                                       const Actor* consumer,
                                       std::string channel) {
  ScopedLock lock(mutex_);
  channels_[receiver] = ChannelInfo{producer, consumer, std::move(channel)};
}

const Actor* ChannelWaitGraph::ProducerOf(const Receiver* receiver) const {
  ScopedLock lock(mutex_);
  const auto it = channels_.find(receiver);
  return it == channels_.end() ? nullptr : it->second.producer;
}

std::string ChannelWaitGraph::ChannelName(const Receiver* receiver) const {
  ScopedLock lock(mutex_);
  const auto it = channels_.find(receiver);
  return it == channels_.end() ? std::string("<unregistered channel>")
                               : it->second.name;
}

void ChannelWaitGraph::OnPutBlocked(const Actor* waiter,
                                    const Receiver* receiver) {
  if (waiter == nullptr) {
    return;  // external producer thread; nothing to attribute
  }
  ScopedLock lock(mutex_);
  const auto it = channels_.find(receiver);
  if (it == channels_.end()) {
    return;
  }
  WaitTarget target;
  target.actor = it->second.consumer;
  target.receiver = receiver;
  target.channel = it->second.name;
  target.capacity = receiver->capacity();
  Entry& entry = blocked_[waiter];
  const bool fresh = entry.put_targets.empty() && entry.get_ports.empty();
  entry.put_blocked = true;
  entry.get_ports.clear();
  entry.put_targets.assign(1, std::move(target));
  if (fresh) {
    AdjustBlockedGauge(1);
  }
}

void ChannelWaitGraph::OnPutUnblocked(const Actor* waiter) {
  if (waiter == nullptr) {
    return;
  }
  ScopedLock lock(mutex_);
  if (blocked_.erase(waiter) > 0) {
    ++epochs_[waiter];
    AdjustBlockedGauge(-1);
  }
}

void ChannelWaitGraph::OnGetBlocked(
    const Actor* waiter, std::vector<std::vector<WaitTarget>> ports) {
  if (waiter == nullptr) {
    return;
  }
  if (ports.empty()) {
    OnGetUnblocked(waiter);
    return;
  }
  ScopedLock lock(mutex_);
  Entry& entry = blocked_[waiter];
  const bool fresh = entry.put_targets.empty() && entry.get_ports.empty();
  entry.put_blocked = false;
  entry.put_targets.clear();
  entry.get_ports = std::move(ports);
  if (fresh) {
    AdjustBlockedGauge(1);
  }
}

void ChannelWaitGraph::OnGetUnblocked(const Actor* waiter) {
  if (waiter == nullptr) {
    return;
  }
  ScopedLock lock(mutex_);
  if (blocked_.erase(waiter) > 0) {
    ++epochs_[waiter];
    AdjustBlockedGauge(-1);
  }
}

size_t ChannelWaitGraph::BlockedCount() const {
  ScopedLock lock(mutex_);
  return blocked_.size();
}

std::vector<WaitNode> ChannelWaitGraph::Snapshot() const {
  ScopedLock lock(mutex_);
  std::vector<WaitNode> nodes;
  nodes.reserve(blocked_.size());
  for (const auto& [actor, entry] : blocked_) {
    WaitNode node;
    node.actor = actor;
    node.actor_name = actor->name();
    node.put_blocked = entry.put_blocked;
    node.put_targets = entry.put_targets;
    node.get_ports = entry.get_ports;
    const auto it = epochs_.find(actor);
    node.epoch = it == epochs_.end() ? 0 : it->second;
    nodes.push_back(std::move(node));
  }
  return nodes;
}

void ChannelWaitGraph::SetReportHandlerForTest(ReportHandler handler) {
  ScopedLock lock(mutex_);
  report_handler_ = std::move(handler);
}

void ChannelWaitGraph::InvokeReportHandler(const std::string& report) {
  ReportHandler handler;
  {
    ScopedLock lock(mutex_);
    handler = report_handler_;
  }
  if (handler) {
    handler(report);
  }
}

void ChannelWaitGraph::AdjustBlockedGauge(int64_t delta) {
#ifdef CWF_OBS_ENABLED
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global().SetHelp(
        "cwf_blocked_actors",
        "Actors currently blocked on a full (put) or empty (get) channel");
    obs::MetricsRegistry::Global().GetGauge("cwf_blocked_actors")->Add(delta);
  }
#else
  (void)delta;
#endif
}

// ---------------------------------------------------------------------------
// ScopedCurrentActor
// ---------------------------------------------------------------------------

ScopedCurrentActor::ScopedCurrentActor(const Actor* actor)
    : previous_(t_current_actor) {
  t_current_actor = actor;
}

ScopedCurrentActor::~ScopedCurrentActor() { t_current_actor = previous_; }

const Actor* ScopedCurrentActor::Current() { return t_current_actor; }

std::string CurrentActorContext() {
  const Actor* actor = t_current_actor;
  if (actor == nullptr) return std::string();
  return " (while firing actor '" + actor->name() + "')";
}

}  // namespace cwf

// Channel wait-for graph: runtime artificial-deadlock detection.
//
// PR 3 gave bounded receivers blocking-put backpressure under the PNCWF
// director, which imports the classic hazard of Kahn/PN execution with
// bounded buffers: a cycle of actors each blocked on a full downstream
// channel (Put) or an empty upstream window (Get) hangs forever without any
// thread being "deadlocked" in the lock sense — the lock-order registry
// (common/lock_registry.h) cannot see it. This module mirrors that
// registry's shape one level up, over *channel* wait edges:
//
//   - blocked producers register a put edge (waiter -> consumer of the full
//     channel) for the duration of the blocking Put;
//   - blocked consumers register a get edge set: one alternative list per
//     windowless input port (the port unblocks when ANY alternative channel
//     forms a window; the actor needs ALL ports — AND of ORs);
//   - EvaluateWaitGraph computes the actors that can never progress (a
//     least-fixpoint over "a blocked actor is live iff what it waits on is
//     live") and extracts one witness cycle for the report;
//   - the PNCWF director polls the graph from its drain loop, confirms a
//     stable candidate against actual receiver state, and turns the former
//     silent hang into a CWF6005 FailedPrecondition naming the cycle.
//
// The static liveness pass (analysis/liveness_pass.h) reuses
// EvaluateWaitGraph on simulated states so the runtime report and the
// static witness render identically.

#ifndef CONFLUENCE_CORE_WAIT_GRAPH_H_
#define CONFLUENCE_CORE_WAIT_GRAPH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/lock_registry.h"
#include "common/thread_annotations.h"

namespace cwf {

class Actor;
class Receiver;

/// \brief One channel an idle actor is waiting on.
struct WaitTarget {
  /// The actor whose progress would unblock the waiter: the consumer of a
  /// full channel (put edges) or the producer of an empty one (get edges).
  const Actor* actor = nullptr;
  /// The receiver at the consuming end of the channel (nullptr when the
  /// edge comes from a static simulation rather than a live receiver).
  const Receiver* receiver = nullptr;
  /// Human-readable channel name, "A.out -> B.in[0]".
  std::string channel;
  /// The channel's capacity bound (0 = unbounded; informational).
  size_t capacity = 0;
};

/// \brief The complete wait state of one blocked actor.
struct WaitNode {
  const Actor* actor = nullptr;
  std::string actor_name;
  /// True: blocked in Put against a full downstream receiver (put_targets).
  /// False: blocked for input windows (get_ports).
  bool put_blocked = false;
  /// Put edges: the full channel(s) the deposit is blocked against.
  std::vector<WaitTarget> put_targets;
  /// Get edges: one alternative list per windowless input port. The port is
  /// satisfied by ANY alternative; the actor needs EVERY port (AND of ORs).
  std::vector<std::vector<WaitTarget>> get_ports;
  /// Unblock generation at snapshot time; a changed epoch between polls
  /// means the actor made progress and the candidate must be discarded.
  uint64_t epoch = 0;
};

/// \brief One edge of a witness cycle.
struct DeadlockEdge {
  const Actor* waiter = nullptr;
  const Actor* waits_on = nullptr;
  std::string waiter_name;
  std::string waits_on_name;
  bool put_blocked = false;
  std::string channel;
  size_t capacity = 0;

  /// "A -blocked put-> B on 'A.out -> B.in[0]' (capacity 2)".
  std::string ToString() const;
};

/// \brief Result of evaluating a wait snapshot: the dead set plus one
/// witness cycle through it.
struct DeadlockReport {
  /// Actors that can never progress (empty = the snapshot is live).
  std::vector<const Actor*> dead;
  std::vector<std::string> dead_names;
  /// One cycle through the dead set demonstrating the deadlock.
  std::vector<DeadlockEdge> cycle;

  bool empty() const { return dead.empty(); }

  /// "A -> B -> A" over the witness cycle's actor names.
  std::string CycleString() const;

  /// Full CWF6005-style report: the cycle edge by edge plus the dead set.
  std::string ToString() const;
};

/// \brief Least-fixpoint liveness evaluation over a snapshot of blocked
/// actors. An actor absent from `blocked` is live; a put-blocked actor is
/// live iff every put target is live; a get-blocked actor is live iff every
/// port has at least one live alternative. Pure function: no locking, no
/// receiver access — callers validate the snapshot against live receiver
/// state separately.
DeadlockReport EvaluateWaitGraph(const std::vector<WaitNode>& blocked);

/// \brief Registry of currently-blocked actors for one director instance.
///
/// Mirrors the LockRegistry pattern: cheap O(1) registration on the
/// blocking paths, detection work deferred to the watchdog poll. All state
/// is guarded by one mutex; Snapshot() copies it out so evaluation and
/// receiver-state validation never run under this lock (registration
/// happens while the consumer's ActorSync mutex is held, so holding
/// mutex_ while touching receivers would invert that order).
class ChannelWaitGraph {
 public:
  ChannelWaitGraph() = default;
  ~ChannelWaitGraph();

  ChannelWaitGraph(const ChannelWaitGraph&) = delete;
  ChannelWaitGraph& operator=(const ChannelWaitGraph&) = delete;

  // ---- Channel metadata (director Initialize) ----

  /// \brief Forget all channel metadata and wait state (re-Initialize).
  void Reset() CWF_EXCLUDES(mutex_);

  /// \brief Record who produces into `receiver` and the channel's display
  /// name, so blocking-put registration (which only knows the receiver) can
  /// be resolved to a wait edge.
  void RegisterChannel(const Receiver* receiver, const Actor* producer,
                       const Actor* consumer, std::string channel)
      CWF_EXCLUDES(mutex_);

  const Actor* ProducerOf(const Receiver* receiver) const
      CWF_EXCLUDES(mutex_);
  std::string ChannelName(const Receiver* receiver) const
      CWF_EXCLUDES(mutex_);

  // ---- Registration (blocking Put/Get paths) ----

  /// \brief `waiter` entered a blocking Put against `receiver` (which must
  /// have been registered). No-op when either pointer is unknown.
  void OnPutBlocked(const Actor* waiter, const Receiver* receiver)
      CWF_EXCLUDES(mutex_);

  /// \brief The blocking Put completed (or was abandoned on stop).
  void OnPutUnblocked(const Actor* waiter) CWF_EXCLUDES(mutex_);

  /// \brief `waiter` is idle for want of input windows; `ports` holds one
  /// alternative list per still-windowless port. Re-registration while
  /// already blocked updates the edges without bumping the epoch. An empty
  /// `ports` unregisters (nothing is actually awaited).
  void OnGetBlocked(const Actor* waiter,
                    std::vector<std::vector<WaitTarget>> ports)
      CWF_EXCLUDES(mutex_);

  /// \brief The idle actor found a window (or exited its loop).
  void OnGetUnblocked(const Actor* waiter) CWF_EXCLUDES(mutex_);

  // ---- Watchdog side ----

  /// \brief Currently-blocked actor count (mirrors the obs gauge).
  size_t BlockedCount() const CWF_EXCLUDES(mutex_);

  /// \brief Copy of the current wait state, each node stamped with the
  /// waiter's current unblock epoch.
  std::vector<WaitNode> Snapshot() const CWF_EXCLUDES(mutex_);

  /// \brief Test hook: when set, confirmed deadlock reports are handed to
  /// `handler` (in addition to the error log).
  using ReportHandler = std::function<void(const std::string& report)>;
  void SetReportHandlerForTest(ReportHandler handler) CWF_EXCLUDES(mutex_);
  void InvokeReportHandler(const std::string& report) CWF_EXCLUDES(mutex_);

 private:
  struct Entry {
    bool put_blocked = false;
    std::vector<WaitTarget> put_targets;
    std::vector<std::vector<WaitTarget>> get_ports;
  };
  struct ChannelInfo {
    const Actor* producer = nullptr;
    const Actor* consumer = nullptr;
    std::string name;
  };

  /// Adjusts the cwf_blocked_actors gauge by `delta` (obs builds only).
  static void AdjustBlockedGauge(int64_t delta);

  mutable OrderedMutex mutex_{"ChannelWaitGraph::mutex"};
  std::map<const Receiver*, ChannelInfo> channels_ CWF_GUARDED_BY(mutex_);
  std::map<const Actor*, Entry> blocked_ CWF_GUARDED_BY(mutex_);
  std::map<const Actor*, uint64_t> epochs_ CWF_GUARDED_BY(mutex_);
  ReportHandler report_handler_ CWF_GUARDED_BY(mutex_);
};

/// \brief Identifies the actor running on the current thread so blocking
/// receivers can attribute a Put to its producer (the receiver only knows
/// its consumer). The PNCWF actor/source thread bodies install one around
/// each firing.
class ScopedCurrentActor {
 public:
  explicit ScopedCurrentActor(const Actor* actor);
  ~ScopedCurrentActor();

  ScopedCurrentActor(const ScopedCurrentActor&) = delete;
  ScopedCurrentActor& operator=(const ScopedCurrentActor&) = delete;

  /// The actor the current thread is firing, or nullptr outside a firing.
  static const Actor* Current();

 private:
  const Actor* previous_;
};

/// \brief " (while firing actor 'X')" when the current thread is inside a
/// director-managed firing, "" otherwise. Token/Value type-confusion CHECK
/// messages append it so an abort names the actor whose input channel fed
/// the mistyped token instead of dying anonymously.
std::string CurrentActorContext();

}  // namespace cwf

#endif  // CONFLUENCE_CORE_WAIT_GRAPH_H_

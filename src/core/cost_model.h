// Actor-cost model for virtual-time execution.
//
// Under a VirtualClock the engine charges each actor invocation a modeled
// duration instead of measuring host nanoseconds; the directors additionally
// charge their own dispatch/synchronization overheads. This is the
// substitution for the paper's wall-clock runs on a 2007 dual Xeon: actor
// logic executes for real, only the *time accounting* is modeled, so runs
// are deterministic and the scheduler comparison is platform-independent.
// Under a RealClock the cost model is bypassed and real elapsed time is
// measured.

#ifndef CONFLUENCE_CORE_COST_MODEL_H_
#define CONFLUENCE_CORE_COST_MODEL_H_

#include <map>
#include <string>

#include "common/time.h"

namespace cwf {

class Actor;

/// \brief Per-actor invocation cost parameters.
struct CostParams {
  /// Fixed cost charged on every firing.
  Duration base = 100;
  /// Added per event consumed in the firing.
  Duration per_input_event = 10;
  /// Added per event produced by the firing.
  Duration per_output_event = 10;
};

/// \brief Modeled execution costs for a workflow, plus the per-director
/// overheads that distinguish scheduled dispatch from thread-based
/// execution.
class CostModel {
 public:
  CostModel() = default;

  /// \brief Cost applied to actors with no specific entry.
  void SetDefault(CostParams params) { default_params_ = params; }
  const CostParams& default_params() const { return default_params_; }

  /// \brief Override the cost of one actor by name.
  void SetActorCost(const std::string& actor_name, CostParams params) {
    per_actor_[actor_name] = params;
  }

  /// \brief Parameters in effect for `actor_name`.
  const CostParams& ParamsFor(const std::string& actor_name) const;

  /// \brief Modeled duration of one firing.
  Duration FiringCost(const std::string& actor_name, size_t input_events,
                      size_t output_events) const;

  /// Scheduled (SCWF) dispatch overhead per firing: one priority-queue pop,
  /// one event transfer into the port buffer.
  Duration scheduled_dispatch_overhead = 5;

  /// Thread-based (PNCWF) overhead per context switch between actor
  /// threads. This is what caps the thread-based director's capacity below
  /// the STAFiLOS schedulers' in the paper's Figure 8.
  Duration context_switch_overhead = 40;

  /// Thread-based per-event synchronization surcharge (mutex + condvar
  /// signalling on every put/get crossing a thread boundary).
  Duration sync_per_event_overhead = 15;

  /// Simulated OS round-robin slice for thread-based execution.
  Duration os_time_slice = 10000;

 private:
  CostParams default_params_;
  std::map<std::string, CostParams> per_actor_;
};

}  // namespace cwf

#endif  // CONFLUENCE_CORE_COST_MODEL_H_

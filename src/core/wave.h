// Waves: CONFLuEnCE's provenance/synchronization mechanism.
//
// A wave is the set of internal events descended from one external event.
// When external event e_i enters the system it starts a wave tagged with
// e_i's identity. When any event of the wave is processed by a task that
// produces n outputs, the outputs get wave-tags t_i.1 … t_i.n and the n-th
// is marked "last in wave", so a downstream task can synchronize everything
// belonging to one wave. Processing t_i.3 into m events yields the sub-wave
// t_i.3.1 … t_i.3.m (a wave hierarchy).

#ifndef CONFLUENCE_CORE_WAVE_H_
#define CONFLUENCE_CORE_WAVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace cwf {

/// \brief Hierarchical wave identifier: a root external-event id plus the
/// serial-number path assigned as the wave forks through tasks.
///
/// Ordering is lexicographic on (root, path), which matches the order the
/// original external events entered the system and, within a wave, the order
/// events were produced.
class WaveTag {
 public:
  WaveTag() : root_(0) {}

  /// \brief Tag for a new external event (wave of depth 0).
  static WaveTag Root(uint64_t root_id) {
    WaveTag t;
    t.root_ = root_id;
    return t;
  }

  /// \brief Tag of the `serial`-th (1-based) event produced while processing
  /// an event carrying this tag — i.e. one level deeper in the hierarchy.
  WaveTag Child(uint32_t serial) const;

  /// \brief Identity of the originating external event.
  uint64_t root() const { return root_; }

  /// \brief Serial-number path below the root ("3.1" for t.3.1).
  const std::vector<uint32_t>& path() const { return path_; }

  /// \brief Depth in the wave hierarchy (0 = the external event itself).
  size_t depth() const { return path_.size(); }

  /// \brief True if `other` is this tag or a descendant of it — i.e. both
  /// belong to the same (sub-)wave rooted at this tag.
  bool Contains(const WaveTag& other) const;

  /// \brief Tag of the enclosing wave one level up; CHECK-fails at depth 0.
  WaveTag Parent() const;

  bool operator==(const WaveTag& o) const {
    return root_ == o.root_ && path_ == o.path_;
  }
  bool operator!=(const WaveTag& o) const { return !(*this == o); }
  bool operator<(const WaveTag& o) const {
    if (root_ != o.root_) {
      return root_ < o.root_;
    }
    return path_ < o.path_;
  }

  /// \brief "t42" or "t42.3.1".
  std::string ToString() const;

 private:
  uint64_t root_;
  std::vector<uint32_t> path_;
};

}  // namespace cwf

#endif  // CONFLUENCE_CORE_WAVE_H_

#include "core/token.h"

#include "core/wait_graph.h"

namespace cwf {

int64_t Token::AsInt() const {
  CWF_CHECK_MSG(is_int(), "Token is not an int: " << ToString()
                                                  << CurrentActorContext());
  return std::get<int64_t>(v_);
}

double Token::AsDouble() const {
  if (is_int()) {
    return static_cast<double>(std::get<int64_t>(v_));
  }
  CWF_CHECK_MSG(is_double(), "Token is not numeric: " << ToString()
                                                      << CurrentActorContext());
  return std::get<double>(v_);
}

bool Token::AsBool() const {
  CWF_CHECK_MSG(is_bool(), "Token is not a bool: " << ToString()
                                                   << CurrentActorContext());
  return std::get<bool>(v_);
}

const std::string& Token::AsString() const {
  CWF_CHECK_MSG(is_string(), "Token is not a string: " << ToString()
                                                       << CurrentActorContext());
  return std::get<std::string>(v_);
}

const RecordPtr& Token::AsRecord() const {
  CWF_CHECK_MSG(is_record(), "Token is not a record: " << ToString()
                                                       << CurrentActorContext());
  return std::get<RecordPtr>(v_);
}

Value Token::Field(const std::string& field) const {
  const RecordPtr& rec = AsRecord();
  CWF_CHECK(rec != nullptr);
  auto res = rec->Get(field);
  CWF_CHECK_MSG(res.ok(), "record " << rec->ToString() << " lacks field "
                                    << field << CurrentActorContext());
  return std::move(res).value();
}

const Value& Token::FieldAt(size_t index) const {
  const RecordPtr& rec = AsRecord();
  CWF_CHECK(rec != nullptr);
  return rec->ValueAt(index);
}

bool Token::operator==(const Token& o) const {
  if (v_.index() != o.v_.index()) {
    return false;
  }
  if (is_record()) {
    const RecordPtr& a = std::get<RecordPtr>(v_);
    const RecordPtr& b = std::get<RecordPtr>(o.v_);
    if (a == b) {
      return true;
    }
    if (a == nullptr || b == nullptr) {
      return false;
    }
    return *a == *b;
  }
  return v_ == o.v_;
}

std::string Token::ToString() const {
  switch (v_.index()) {
    case 0:
      return "nil";
    case 1:
      return std::to_string(std::get<int64_t>(v_));
    case 2:
      return std::to_string(std::get<double>(v_));
    case 3:
      return std::get<bool>(v_) ? "true" : "false";
    case 4:
      return '"' + std::get<std::string>(v_) + '"';
    case 5: {
      const RecordPtr& rec = std::get<RecordPtr>(v_);
      return rec ? rec->ToString() : "{null}";
    }
  }
  return "?";
}

}  // namespace cwf

#include "core/wave.h"

#include <sstream>

#include "common/status.h"

namespace cwf {

WaveTag WaveTag::Child(uint32_t serial) const {
  CWF_CHECK_MSG(serial >= 1, "wave serial numbers are 1-based");
  WaveTag child = *this;
  child.path_.push_back(serial);
  return child;
}

bool WaveTag::Contains(const WaveTag& other) const {
  if (root_ != other.root_ || other.path_.size() < path_.size()) {
    return false;
  }
  for (size_t i = 0; i < path_.size(); ++i) {
    if (path_[i] != other.path_[i]) {
      return false;
    }
  }
  return true;
}

WaveTag WaveTag::Parent() const {
  CWF_CHECK_MSG(!path_.empty(), "root wave tag has no parent");
  WaveTag parent = *this;
  parent.path_.pop_back();
  return parent;
}

std::string WaveTag::ToString() const {
  std::ostringstream oss;
  oss << "t" << root_;
  for (uint32_t serial : path_) {
    oss << "." << serial;
  }
  return oss.str();
}

}  // namespace cwf

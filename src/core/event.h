// CWEvent: the timestamped, wave-stamped envelope around a token.
//
// Every token entering a continuous workflow is encapsulated into a CWEvent
// by the timekeeping components: the receiving time of its external root
// event (used for window semantics and response-time QoS) plus its wave-tag
// (used for synchronization). Receivers, windows and schedulers all operate
// on CWEvents.

#ifndef CONFLUENCE_CORE_EVENT_H_
#define CONFLUENCE_CORE_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/token.h"
#include "core/wave.h"

namespace cwf {

/// \brief A timestamped, wave-stamped token.
struct CWEvent {
  /// Payload.
  Token token;
  /// Timestamp of the wave's root external event (arrival time into the
  /// engine). Response time of a result is completion time minus this.
  Timestamp timestamp;
  /// Position in the wave hierarchy.
  WaveTag wave;
  /// True for the last event its producer emitted into this (sub-)wave.
  bool last_in_wave = false;
  /// Global monotone sequence number; breaks FIFO ties deterministically.
  uint64_t seq = 0;

  CWEvent() = default;
  CWEvent(Token t, Timestamp ts, WaveTag w)
      : token(std::move(t)), timestamp(ts), wave(std::move(w)) {}

  std::string ToString() const;
};

/// \brief A bundle of events delivered to one actor firing.
///
/// Single-event (non-windowed) channels deliver windows of size 1; windowed
/// receivers deliver the finite, ever-changing bundle computed by their
/// window operator. `group_key` carries the group-by key the window was
/// formed for (nil token when no group-by is configured).
struct Window {
  std::vector<CWEvent> events;
  Token group_key;
  /// True when a window-formation timeout (not an arriving event) closed
  /// this window.
  bool closed_by_timeout = false;

  bool empty() const { return events.empty(); }
  size_t size() const { return events.size(); }
  const CWEvent& front() const { return events.front(); }
  const CWEvent& back() const { return events.back(); }
  const CWEvent& operator[](size_t i) const { return events[i]; }

  /// \brief Timestamp of the oldest event in the window; Max() if empty.
  Timestamp OldestTimestamp() const;

  std::string ToString() const;
};

}  // namespace cwf

#endif  // CONFLUENCE_CORE_EVENT_H_

#include "core/schema.h"

#include <sstream>

#include "common/check.h"

namespace cwf {

bool ScalarType::Accepts(const Value& value) const {
  if (value.is_null()) return (mask_ & kNull) != 0;
  if (value.is_int()) return (mask_ & kInt) != 0;
  if (value.is_double()) return (mask_ & kDouble) != 0;
  if (value.is_bool()) return (mask_ & kBool) != 0;
  return (mask_ & kString) != 0;
}

std::string ScalarType::ToString() const {
  if (empty()) return "none";
  if (is_any()) return "any";
  std::ostringstream out;
  const char* sep = "";
  const struct {
    uint8_t bit;
    const char* name;
  } kinds[] = {{kInt, "int"},
               {kDouble, "double"},
               {kBool, "bool"},
               {kString, "string"},
               {kNull, "null"}};
  for (const auto& k : kinds) {
    if (mask_ & k.bit) {
      out << sep << k.name;
      sep = "|";
    }
  }
  return out.str();
}

RecordSchema& RecordSchema::Field(std::string name, ScalarType type,
                                  bool required) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    // Re-declaring a field refines it in place rather than duplicating the
    // name in the layout.
    fields_[it->second].type = type;
    fields_[it->second].required = required;
    return *this;
  }
  index_.emplace(name, fields_.size());
  fields_.push_back(FieldSpec{std::move(name), type, required});
  return *this;
}

int RecordSchema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

const FieldSpec* RecordSchema::Find(const std::string& name) const {
  int idx = IndexOf(name);
  return idx < 0 ? nullptr : &fields_[static_cast<size_t>(idx)];
}

std::string RecordSchema::ToString() const {
  std::ostringstream out;
  out << "{";
  const char* sep = "";
  for (const FieldSpec& f : fields_) {
    out << sep << f.name << ":" << f.type.ToString() << (f.required ? "" : "?");
    sep = ", ";
  }
  out << "}";
  return out.str();
}

RecordSchema RecordSchema::JoinOf(const RecordSchema& a, const RecordSchema& b) {
  RecordSchema joined;
  for (const FieldSpec& fa : a.fields_) {
    const FieldSpec* fb = b.Find(fa.name);
    if (fb == nullptr) {
      joined.Field(fa.name, fa.type, /*required=*/false);
    } else {
      joined.Field(fa.name, fa.type.Union(fb->type),
                   fa.required && fb->required);
    }
  }
  for (const FieldSpec& fb : b.fields_) {
    if (a.Find(fb.name) == nullptr) {
      joined.Field(fb.name, fb.type, /*required=*/false);
    }
  }
  return joined;
}

TokenType TokenType::Any() {
  return TokenType(kNil | kInt | kDouble | kBool | kString | kRecord, nullptr);
}

TokenType TokenType::Record(RecordSchema schema) {
  return RecordOf(std::make_shared<const RecordSchema>(std::move(schema)));
}

TokenType TokenType::RecordOf(RecordSchemaPtr schema) {
  return TokenType(kRecord, std::move(schema));
}

TokenType TokenType::OrNil() const {
  if (is_unknown()) return *this;
  return TokenType(static_cast<uint8_t>(mask_ | kNil), record_);
}

bool TokenType::is_any() const {
  return mask_ == (kNil | kInt | kDouble | kBool | kString | kRecord) &&
         record_ == nullptr;
}

ScalarType TokenType::scalars() const {
  ScalarType s = ScalarType::None();
  if (mask_ & kInt) s = s.Union(ScalarType::Int());
  if (mask_ & kDouble) s = s.Union(ScalarType::Double());
  if (mask_ & kBool) s = s.Union(ScalarType::Bool());
  if (mask_ & kString) s = s.Union(ScalarType::Str());
  return s;
}

TokenType TokenType::Join(const TokenType& o) const {
  if (is_unknown()) return o;
  if (o.is_unknown()) return *this;
  if (is_any() || o.is_any()) return Any();
  RecordSchemaPtr record;
  if (allows_record() && o.allows_record()) {
    if (record_ != nullptr && o.record_ != nullptr) {
      record = std::make_shared<const RecordSchema>(
          RecordSchema::JoinOf(*record_, *o.record_));
    }
    // One side with an unconstrained record layout widens the join's layout
    // to unconstrained (nullptr).
  } else {
    record = allows_record() ? record_ : o.record_;
  }
  return TokenType(static_cast<uint8_t>(mask_ | o.mask_), std::move(record));
}

bool TokenType::IsSubtypeOf(const TokenType& o) const {
  if (o.is_any() || is_unknown() || o.is_unknown()) return true;
  if (is_any()) return false;
  if ((mask_ & ~o.mask_) != 0) return false;
  if (allows_record() && o.allows_record() && o.record_ != nullptr) {
    if (record_ == nullptr) return false;  // unconstrained into constrained
    for (const FieldSpec& need : o.record_->fields()) {
      const FieldSpec* have = record_->Find(need.name);
      if (have == nullptr || !have->type.IsSubtypeOf(need.type)) return false;
      if (need.required && !have->required) return false;
    }
  }
  return true;
}

Status TokenType::CheckToken(const Token& token) const {
  if (is_unknown() || is_any()) return Status::OK();
  const auto kind_error = [&](const char* kind) {
    return Status::FailedPrecondition("token of kind " + std::string(kind) +
                                      " where " + ToString() + " expected");
  };
  if (token.is_nil()) {
    return allows_nil() ? Status::OK() : kind_error("nil");
  }
  if (token.is_int()) {
    return (mask_ & kInt) != 0 ? Status::OK() : kind_error("int");
  }
  if (token.is_double()) {
    return (mask_ & kDouble) != 0 ? Status::OK() : kind_error("double");
  }
  if (token.is_bool()) {
    return (mask_ & kBool) != 0 ? Status::OK() : kind_error("bool");
  }
  if (token.is_string()) {
    return (mask_ & kString) != 0 ? Status::OK() : kind_error("string");
  }
  CWF_ASSERT(token.is_record());
  if (!allows_record()) return kind_error("record");
  if (record_ == nullptr) return Status::OK();
  const RecordPtr& rec = token.AsRecord();
  for (const FieldSpec& spec : record_->fields()) {
    Result<Value> got = rec->Get(spec.name);
    if (!got.ok()) {
      if (!spec.required) continue;
      return Status::FailedPrecondition("record missing required field '" +
                                        spec.name + "' (schema " +
                                        record_->ToString() + ", record " +
                                        rec->ToString() + ")");
    }
    if (!spec.type.Accepts(*got)) {
      return Status::FailedPrecondition(
          "record field '" + spec.name + "' = " + got->ToString() +
          " violates declared type " + spec.type.ToString() + " (schema " +
          record_->ToString() + ")");
    }
  }
  return Status::OK();
}

std::string TokenType::ToString() const {
  if (is_unknown()) return "unknown";
  if (is_any()) return "any";
  std::ostringstream out;
  const char* sep = "";
  ScalarType s = scalars();
  if (!s.empty()) {
    out << s.ToString();
    sep = "|";
  }
  if (allows_record()) {
    out << sep << "record" << (record_ != nullptr ? record_->ToString() : "");
    sep = "|";
  }
  if (allows_nil()) out << sep << "nil";
  return out.str();
}

bool TokenType::operator==(const TokenType& o) const {
  if (mask_ != o.mask_) return false;
  if ((record_ == nullptr) != (o.record_ == nullptr)) return false;
  return record_ == nullptr || *record_ == *o.record_;
}

}  // namespace cwf

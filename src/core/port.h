// Ports: the communication interfaces of actors.
//
// Actors exchange tokens through input and output ports; a connection
// between an output and an input port is a channel. The receiver at the
// consuming end is created by the director when the workflow is initialized,
// which is how a single workflow specification can execute under different
// models of computation.

#ifndef CONFLUENCE_CORE_PORT_H_
#define CONFLUENCE_CORE_PORT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/receiver.h"
#include "window/window_spec.h"

namespace cwf {

class Actor;
class OutputPort;

/// \brief Base port: a named attachment point on an actor.
class Port {
 public:
  Port(Actor* actor, std::string name)
      : actor_(actor), name_(std::move(name)) {}
  virtual ~Port() = default;

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  Actor* actor() const { return actor_; }
  const std::string& name() const { return name_; }

  /// \brief "ActorName.portName".
  std::string FullName() const;

 protected:
  Actor* actor_;
  std::string name_;
};

/// \brief A consuming port. Window semantics (WindowSpec) are a property of
/// the input port; the director instantiates a matching receiver per
/// incoming channel.
class InputPort : public Port {
 public:
  InputPort(Actor* actor, std::string name, WindowSpec spec)
      : Port(actor, std::move(name)), spec_(std::move(spec)) {}

  const WindowSpec& spec() const { return spec_; }

  /// \brief Redefine the window semantics; only valid before initialization
  /// (receivers are built from the spec at that point).
  void set_spec(WindowSpec spec) { spec_ = std::move(spec); }

  /// \brief Declare what this port requires of incoming tokens. The schema
  /// pass (analysis/schema_pass.h) checks every incoming channel's resolved
  /// producer type against it (CWF70xx); default Unknown = no requirement.
  void set_required_schema(TokenType type) {
    required_schema_ = std::move(type);
  }
  const TokenType& required_schema() const { return required_schema_; }

  /// \brief Install the director-supplied receiver for channel `channel`.
  /// Grows the channel list as needed. Returns the raw receiver.
  Receiver* SetReceiver(size_t channel, std::unique_ptr<Receiver> receiver);

  /// \brief Receiver of channel `channel` (nullptr if unconnected).
  Receiver* receiver(size_t channel = 0) const;

  /// \brief Number of channels fanning into this port.
  size_t ChannelCount() const { return receivers_.size(); }

  /// \brief Whether any channel has a ready window.
  bool HasWindow() const;

  /// \brief Whether channel `channel` has a ready window.
  bool HasWindowOn(size_t channel) const;

  /// \brief Pop the next ready window, scanning channels round-robin from
  /// channel 0. Records the read in the owning actor's firing context (used
  /// for wave stamping of the outputs of this firing).
  std::optional<Window> Get();

  /// \brief Pop the next ready window of one specific channel.
  std::optional<Window> GetFrom(size_t channel);

  /// \brief Sum of ready windows over all channels.
  size_t ReadyWindowCount() const;

  /// \brief Sum of buffered-but-unwindowed events over all channels.
  size_t PendingEventCount() const;

  /// \brief Collect expired events from all channels.
  std::vector<CWEvent> DrainExpired();

 private:
  WindowSpec spec_;
  TokenType required_schema_;
  std::vector<std::unique_ptr<Receiver>> receivers_;
};

/// \brief A producing port. When an actor fires, the director flushes the
/// actor's buffered outputs through this port to every remote receiver
/// ("broadcast to all the remote downstream receivers connected to it").
class OutputPort : public Port {
 public:
  OutputPort(Actor* actor, std::string name) : Port(actor, std::move(name)) {}

  /// \brief Declare the type of every token this port emits. The schema
  /// pass propagates it downstream; transforming actors may instead
  /// override Actor::OutputTokenType to derive it from their input types.
  /// Default Unknown = undeclared (the pass infers what it can).
  void set_schema(TokenType type) { schema_ = std::move(type); }
  const TokenType& schema() const { return schema_; }

  /// \brief Register the receiving end of one outgoing channel.
  void AddRemoteReceiver(Receiver* receiver) {
    remote_receivers_.push_back(receiver);
  }

  const std::vector<Receiver*>& remote_receivers() const {
    return remote_receivers_;
  }

  /// \brief Deliver one event to every connected remote receiver.
  Status Broadcast(const CWEvent& event);

  /// \brief Drop all registered receivers (re-initialization).
  void ClearRemoteReceivers() { remote_receivers_.clear(); }

 private:
  TokenType schema_;
  std::vector<Receiver*> remote_receivers_;
};

}  // namespace cwf

#endif  // CONFLUENCE_CORE_PORT_H_

// The channel type system: what kinds of tokens (and record layouts) flow
// over a channel.
//
// Every Token is a runtime variant (nil/int/double/bool/string/record), so
// nothing stops a workflow from wiring a record producer into a port that
// reads `token.AsInt()` — the confusion only surfaces as a CHECK-fail deep
// inside the consuming actor, mid-wave. This header gives channels a static
// type: a TokenType is a set of admissible token kinds, plus a RecordSchema
// (named, ordered, scalar-typed fields) when records are admissible. Actors
// declare TokenTypes on their ports (OutputPort::set_schema,
// InputPort::set_required_schema); the schema pass
// (analysis/schema_pass.h) propagates them across channels and composite
// boundaries and reports CWF70xx diagnostics; Director::Initialize attaches
// the resolved per-channel types to receivers so a debug-build deposit
// check (CWF_SCHEMA_CHECK) can attribute a mistyped token to its channel
// and field instead of aborting in the consumer.
//
// The lattice is deliberately flat: record fields hold scalar Values only
// (core/record.h), so a field type is a *set of scalar kinds* and the
// token level adds nil and record. Unknown (no declaration, bottom) and
// Any (declared polymorphic, top) bracket the lattice; Join moves up it.

#ifndef CONFLUENCE_CORE_SCHEMA_H_
#define CONFLUENCE_CORE_SCHEMA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/record.h"
#include "core/token.h"

// CWF_SCHEMA_CHECK: the runtime deposit validation rides the debug-grade
// invariant gate (CMake option CONFLUENCE_DCHECKS) — release builds compile
// the per-token check out entirely.
#if defined(CWF_DCHECK_IS_ON) && CWF_DCHECK_IS_ON
#define CWF_SCHEMA_CHECK_IS_ON 1
#else
#define CWF_SCHEMA_CHECK_IS_ON 0
#endif

namespace cwf {

/// \brief A set of scalar kinds a record field (a Value) may hold.
class ScalarType {
 public:
  /// Empty set ("none"): the type of a field no execution can produce.
  ScalarType() = default;

  static ScalarType None() { return ScalarType(); }
  static ScalarType Null() { return ScalarType(kNull); }
  static ScalarType Int() { return ScalarType(kInt); }
  static ScalarType Double() { return ScalarType(kDouble); }
  static ScalarType Bool() { return ScalarType(kBool); }
  static ScalarType Str() { return ScalarType(kString); }
  static ScalarType Any() {
    return ScalarType(kNull | kInt | kDouble | kBool | kString);
  }

  bool empty() const { return mask_ == 0; }
  bool is_any() const { return *this == Any(); }

  ScalarType Union(ScalarType o) const { return ScalarType(mask_ | o.mask_); }

  /// \brief Whether every kind in this set is also in `o`.
  bool IsSubtypeOf(ScalarType o) const { return (mask_ & ~o.mask_) == 0; }

  /// \brief Whether the two sets share any kind (a value could satisfy
  /// both); disjoint sets are a provable type mismatch.
  bool Intersects(ScalarType o) const { return (mask_ & o.mask_) != 0; }

  /// \brief Whether `value`'s runtime kind is in this set.
  bool Accepts(const Value& value) const;

  /// \brief "int", "int|null", "any", "none".
  std::string ToString() const;

  bool operator==(const ScalarType& o) const { return mask_ == o.mask_; }
  bool operator!=(const ScalarType& o) const { return mask_ != o.mask_; }

 private:
  enum : uint8_t {
    kNull = 1u << 0,
    kInt = 1u << 1,
    kDouble = 1u << 2,
    kBool = 1u << 3,
    kString = 1u << 4,
  };

  explicit ScalarType(uint8_t mask) : mask_(mask) {}

  uint8_t mask_ = 0;
};

/// \brief One declared record field: name, admissible scalar kinds, and
/// whether every record flowing on the channel must carry it (joins of
/// divergent branches demote one-sided fields to optional).
struct FieldSpec {
  std::string name;
  ScalarType type = ScalarType::Any();
  bool required = true;

  bool operator==(const FieldSpec& o) const {
    return name == o.name && type == o.type && required == o.required;
  }
};

/// \brief An ordered record layout with O(1) field lookup.
///
/// The per-schema field-index map is built as fields are declared — exactly
/// once per schema — so consumers resolve a field name to its position a
/// single time (at schema resolution) and use Record::ValueAt /
/// Token::FieldAt on the hot path instead of a per-access linear scan.
class RecordSchema {
 public:
  RecordSchema() = default;

  /// Builder-style field declarations; return *this for chaining.
  RecordSchema& Int(std::string name) {
    return Field(std::move(name), ScalarType::Int());
  }
  RecordSchema& Double(std::string name) {
    return Field(std::move(name), ScalarType::Double());
  }
  RecordSchema& Bool(std::string name) {
    return Field(std::move(name), ScalarType::Bool());
  }
  RecordSchema& Str(std::string name) {
    return Field(std::move(name), ScalarType::Str());
  }
  RecordSchema& Field(std::string name, ScalarType type, bool required = true);

  const std::vector<FieldSpec>& fields() const { return fields_; }
  size_t size() const { return fields_.size(); }

  /// \brief Position of `name` in the layout, or -1 when absent. O(1).
  int IndexOf(const std::string& name) const;

  /// \brief The field spec for `name`, or nullptr. O(1).
  const FieldSpec* Find(const std::string& name) const;

  /// \brief "{time:int, speed:double, tag:string?}" (? marks optional).
  std::string ToString() const;

  /// \brief Least upper bound of two layouts: common fields keep the union
  /// of their scalar kinds (required only when required on both sides);
  /// one-sided fields become optional. Field order: `a`'s fields first,
  /// then `b`'s extras.
  static RecordSchema JoinOf(const RecordSchema& a, const RecordSchema& b);

  bool operator==(const RecordSchema& o) const { return fields_ == o.fields_; }
  bool operator!=(const RecordSchema& o) const { return !(*this == o); }

 private:
  std::vector<FieldSpec> fields_;
  std::map<std::string, size_t> index_;  // name -> position in fields_
};

using RecordSchemaPtr = std::shared_ptr<const RecordSchema>;

/// \brief The static type of a channel (or port): which token kinds may
/// flow, and the record layout when records are among them.
///
/// Unknown is the bottom of the lattice — "nothing declared, nothing
/// inferred"; Any is the top — "deliberately polymorphic, every token
/// admissible". Between them a TokenType is a non-empty set drawn from
/// {nil, int, double, bool, string, record}.
class TokenType {
 public:
  /// Unknown (bottom).
  TokenType() = default;

  static TokenType Unknown() { return TokenType(); }
  static TokenType Any();
  static TokenType Nil() { return TokenType(kNil, nullptr); }
  static TokenType Int() { return TokenType(kInt, nullptr); }
  static TokenType Double() { return TokenType(kDouble, nullptr); }
  static TokenType Bool() { return TokenType(kBool, nullptr); }
  static TokenType Str() { return TokenType(kString, nullptr); }

  /// \brief A record type with the given layout.
  static TokenType Record(RecordSchema schema);
  static TokenType RecordOf(RecordSchemaPtr schema);

  /// \brief Widen this type to also admit nil (control tokens).
  TokenType OrNil() const;

  bool is_unknown() const { return mask_ == 0; }
  bool is_any() const;

  bool allows_nil() const { return (mask_ & kNil) != 0; }
  bool allows_record() const { return (mask_ & kRecord) != 0; }
  bool allows_scalar_data() const {
    return (mask_ & (kInt | kDouble | kBool | kString)) != 0;
  }
  /// \brief Whether only nil tokens are admissible (a pure control
  /// channel).
  bool is_nil_only() const { return mask_ == kNil; }

  /// \brief The record layout; nullptr unless a record kind with a known
  /// layout is admissible (an `Any` type admits records of any layout).
  const RecordSchemaPtr& record_schema() const { return record_; }

  /// \brief The admissible scalar kinds (nil and record excluded).
  ScalarType scalars() const;

  /// \brief Least upper bound.
  TokenType Join(const TokenType& o) const;

  /// \brief Whether every token this type admits is admitted by `o`
  /// (record layouts: every field `o` requires must be present, required
  /// and type-compatible here). Unknown is a subtype of nothing but
  /// Unknown/Any; everything is a subtype of Any.
  bool IsSubtypeOf(const TokenType& o) const;

  /// \brief Validate one runtime token against this type. On mismatch the
  /// status names the offending kind or record field — the payload of the
  /// CWF7008 runtime diagnostic. Unknown and Any accept everything.
  Status CheckToken(const Token& token) const;

  /// \brief "record{time:int, speed:double}", "int|nil", "any", "unknown".
  std::string ToString() const;

  bool operator==(const TokenType& o) const;
  bool operator!=(const TokenType& o) const { return !(*this == o); }

 private:
  enum : uint8_t {
    kNil = 1u << 0,
    kInt = 1u << 1,
    kDouble = 1u << 2,
    kBool = 1u << 3,
    kString = 1u << 4,
    kRecord = 1u << 5,
  };

  TokenType(uint8_t mask, RecordSchemaPtr record)
      : mask_(mask), record_(std::move(record)) {}

  uint8_t mask_ = 0;  // 0 = Unknown
  RecordSchemaPtr record_;
};

}  // namespace cwf

#endif  // CONFLUENCE_CORE_SCHEMA_H_

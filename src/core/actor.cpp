#include "core/actor.h"

namespace cwf {

void FiringContext::Absorb(const Window& window) {
  events_consumed += window.events.size();
  for (const CWEvent& e : window.events) {
    if (!valid || e.seq >= max_seq) {
      valid = true;
      max_seq = e.seq;
      wave = e.wave;
      timestamp = e.timestamp;
    }
  }
}

Actor::Actor(std::string name) : name_(std::move(name)) {}

Status Actor::Initialize(ExecutionContext* ctx) {
  ctx_ = ctx;
  total_firings_ = 0;
  firing_context_.Reset();
  pending_outputs_.clear();
  return Status::OK();
}

Result<bool> Actor::Prefire() {
  for (const auto& port : input_ports_) {
    if (port->ChannelCount() == 0) {
      continue;  // unconnected ports do not gate firing
    }
    if (!port->HasWindow()) {
      return false;
    }
  }
  return true;
}

Result<bool> Actor::Postfire() { return true; }

Status Actor::Wrapup() { return Status::OK(); }

InputPort* Actor::AddInputPort(const std::string& name, WindowSpec spec) {
  CWF_CHECK_MSG(GetInputPort(name) == nullptr,
                "duplicate input port '" << name << "' on actor " << name_);
  input_ports_.push_back(std::make_unique<InputPort>(this, name, std::move(spec)));
  return input_ports_.back().get();
}

OutputPort* Actor::AddOutputPort(const std::string& name) {
  CWF_CHECK_MSG(GetOutputPort(name) == nullptr,
                "duplicate output port '" << name << "' on actor " << name_);
  output_ports_.push_back(std::make_unique<OutputPort>(this, name));
  return output_ports_.back().get();
}

InputPort* Actor::GetInputPort(const std::string& name) const {
  for (const auto& port : input_ports_) {
    if (port->name() == name) {
      return port.get();
    }
  }
  return nullptr;
}

OutputPort* Actor::GetOutputPort(const std::string& name) const {
  for (const auto& port : output_ports_) {
    if (port->name() == name) {
      return port.get();
    }
  }
  return nullptr;
}

bool Actor::IsSource() const {
  for (const auto& port : input_ports_) {
    if (port->ChannelCount() > 0) {
      return false;
    }
  }
  return true;
}

int64_t Actor::ConsumptionRate(const InputPort*) const { return 1; }

int64_t Actor::ProductionRate(const OutputPort*) const { return 1; }

TokenType Actor::OutputTokenType(const OutputPort* port,
                                 const std::vector<TokenType>& inputs) const {
  (void)inputs;
  return port->schema();
}

TokenType Actor::IdentityTokenType(const OutputPort* port,
                                   const std::vector<TokenType>& inputs) const {
  if (!port->schema().is_unknown()) {
    return port->schema();
  }
  TokenType joined;
  for (const TokenType& in : inputs) {
    joined = joined.Join(in);
  }
  return joined;
}

void Actor::Send(OutputPort* port, Token token) {
  CWF_CHECK_MSG(port != nullptr && port->actor() == this,
                "Send() on a port not owned by actor " << name_);
  PendingOutput po;
  po.port = port;
  po.token = std::move(token);
  pending_outputs_.push_back(std::move(po));
}

void Actor::SendStamped(OutputPort* port, Token token,
                        Timestamp external_ts) {
  CWF_CHECK_MSG(port != nullptr && port->actor() == this,
                "SendStamped() on a port not owned by actor " << name_);
  PendingOutput po;
  po.port = port;
  po.token = std::move(token);
  po.external_timestamp = external_ts;
  pending_outputs_.push_back(std::move(po));
}

void Actor::SendPreserved(OutputPort* port, const CWEvent& original) {
  CWF_CHECK_MSG(port != nullptr && port->actor() == this,
                "SendPreserved() on a port not owned by actor " << name_);
  PendingOutput po;
  po.port = port;
  po.token = original.token;
  po.external_timestamp = original.timestamp;
  po.wave_override = original.wave;
  po.last_in_wave_override = original.last_in_wave;
  pending_outputs_.push_back(std::move(po));
}

void Actor::BeginFiring() {
  firing_context_.Reset();
  pending_outputs_.clear();
}

std::vector<PendingOutput> Actor::TakePendingOutputs() {
  std::vector<PendingOutput> out;
  out.swap(pending_outputs_);
  return out;
}

void Actor::NoteConsumedWindow(const Window& window) {
  firing_context_.Absorb(window);
}

}  // namespace cwf

// Record tokens: named, typed tuples flowing through a workflow.
//
// Kepler propagates "tokens" between actors; CONFLuEnCE wraps them in
// timestamped events. Most stream tuples (e.g. Linear Road position reports)
// are records — ordered collections of named scalar fields. Records are
// immutable once built and shared by reference, so fan-out to many
// downstream receivers never copies payloads.

#ifndef CONFLUENCE_CORE_RECORD_H_
#define CONFLUENCE_CORE_RECORD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace cwf {

/// \brief A scalar field value: null, int64, double, bool or string.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(int64_t v) : v_(v) {}              // NOLINT
  Value(int v) : v_(int64_t{v}) {}         // NOLINT
  Value(double v) : v_(v) {}               // NOLINT
  Value(bool v) : v_(v) {}                 // NOLINT
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  /// \brief Integer content; CHECK-fails unless is_int().
  int64_t AsInt() const;
  /// \brief Floating content; accepts int too (widening).
  double AsDouble() const;
  bool AsBool() const;
  const std::string& AsString() const;

  /// \brief Total order across types (type tag first, then value); makes
  /// Values usable as map keys and group-by components.
  bool operator<(const Value& o) const;
  bool operator==(const Value& o) const;
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// \brief Stable hash, consistent with operator==.
  size_t Hash() const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string> v_;
};

/// \brief An immutable named tuple. Field lookup is linear, which beats a
/// hash map for the ≤16-field records that flow through stream workflows.
class Record {
 public:
  Record() = default;

  /// \brief Builder-style append; returns *this for chaining.
  Record& Set(std::string name, Value value);

  /// \brief Whether a field of this name exists.
  bool Has(const std::string& name) const;

  /// \brief Field value, or error if absent.
  Result<Value> Get(const std::string& name) const;

  /// \brief Field value, or `fallback` if absent.
  Value GetOr(const std::string& name, Value fallback) const;

  /// \brief Field value by position — O(1), no name comparison. Pair with
  /// RecordSchema::IndexOf (core/schema.h): resolve the name to an index
  /// once at schema resolution, then access by index on the hot path.
  /// CHECK-fails when `index` is out of range.
  const Value& ValueAt(size_t index) const;

  /// \brief Field name at `index`; CHECK-fails when out of range.
  const std::string& NameAt(size_t index) const;

  /// \brief Field count.
  size_t size() const { return fields_.size(); }

  const std::vector<std::pair<std::string, Value>>& fields() const {
    return fields_;
  }

  bool operator==(const Record& o) const { return fields_ == o.fields_; }

  /// \brief "{a=1, b=2.5}".
  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, Value>> fields_;
};

using RecordPtr = std::shared_ptr<const Record>;

/// \brief Build a shared record from (name, value) pairs.
template <typename... Pairs>
RecordPtr MakeRecord(Pairs&&... pairs) {
  auto rec = std::make_shared<Record>();
  (rec->Set(pairs.first, pairs.second), ...);
  return rec;
}

}  // namespace cwf

#endif  // CONFLUENCE_CORE_RECORD_H_

// Actors: the independent components a workflow is composed of.
//
// Actors implement the Kepler lifecycle — initialize, prefire, fire,
// postfire, wrapup — and communicate only through ports. They are unaware
// of the model of computation: the director owns receivers, timing and
// scheduling. During fire() an actor buffers its outputs via Send(); the
// director flushes them afterwards, stamping wave-tags and timestamps (the
// "timekeeping components" of CONFLuEnCE).

#ifndef CONFLUENCE_CORE_ACTOR_H_
#define CONFLUENCE_CORE_ACTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/clock.h"
#include "core/port.h"

namespace cwf {

class Director;

/// \brief Shared execution services a director hands to its actors.
struct ExecutionContext {
  Clock* clock = nullptr;
  Director* director = nullptr;

  /// \brief Next global event sequence number.
  uint64_t NextSeq() { return seq.fetch_add(1, std::memory_order_relaxed); }

  /// \brief Next external-event (wave root) identity.
  uint64_t NextExternalId() {
    return external_id.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> seq{1};
  std::atomic<uint64_t> external_id{1};
};

/// \brief Wave/timestamp context of the firing currently in progress:
/// derived from the newest event the actor consumed, it determines the
/// stamps on the events the firing produces.
struct FiringContext {
  bool valid = false;
  WaveTag wave;
  Timestamp timestamp;
  uint64_t max_seq = 0;
  size_t events_consumed = 0;

  void Reset() { *this = FiringContext(); }

  /// \brief Fold one consumed window into the context (newest event wins).
  void Absorb(const Window& window);
};

/// \brief An output buffered during fire(), flushed by the director.
struct PendingOutput {
  OutputPort* port = nullptr;
  Token token;
  /// Sources stamp the *external* arrival time of the tuple, which may
  /// precede the flush instant (time spent queued before entering the
  /// workflow counts toward response time).
  std::optional<Timestamp> external_timestamp;
  /// Set by SendPreserved(): re-emit with this exact wave-tag and last-in-
  /// wave flag (plus external_timestamp) instead of joining the firing's
  /// wave — used by actors that buffer events across firings (e.g. a
  /// simulated network link) and must not launder their provenance.
  std::optional<WaveTag> wave_override;
  bool last_in_wave_override = true;
};

/// \brief Base class of every workflow component.
class Actor {
 public:
  explicit Actor(std::string name);
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  const std::string& name() const { return name_; }

  // ---- Lifecycle (invoked by the director) ----

  /// \brief One-time setup; receivers exist by the time this runs.
  virtual Status Initialize(ExecutionContext* ctx);

  /// \brief Whether the actor is ready to fire. Default: every connected
  /// input port has at least one ready window.
  virtual Result<bool> Prefire();

  /// \brief Consume windows from input ports, compute, Send() outputs.
  virtual Status Fire() = 0;

  /// \brief Post-firing bookkeeping; returning false asks the director to
  /// stop invoking this actor.
  virtual Result<bool> Postfire();

  /// \brief One-time teardown at end of execution.
  virtual Status Wrapup();

  // ---- Structure ----

  /// \brief Declare an input port. `spec` defines its window semantics.
  InputPort* AddInputPort(const std::string& name,
                          WindowSpec spec = WindowSpec::SingleEvent());

  /// \brief Declare an output port.
  OutputPort* AddOutputPort(const std::string& name);

  /// \brief Look up a port by name (nullptr if absent).
  InputPort* GetInputPort(const std::string& name) const;
  OutputPort* GetOutputPort(const std::string& name) const;

  const std::vector<std::unique_ptr<InputPort>>& input_ports() const {
    return input_ports_;
  }
  const std::vector<std::unique_ptr<OutputPort>>& output_ports() const {
    return output_ports_;
  }

  /// \brief Whether this actor injects external data (no connected inputs).
  /// Schedulers treat sources specially (paper §3.1).
  virtual bool IsSource() const;

  /// \brief Earliest future instant at which this actor needs to run even
  /// without new input (e.g. a composite whose inner workflow holds a timed
  /// window awaiting its formation timeout). Max() when none.
  virtual Timestamp NextDeadline() const { return Timestamp::Max(); }

  // ---- SDF rate declarations ----

  /// \brief Windows consumed per firing on `port` (SDF balance equations).
  virtual int64_t ConsumptionRate(const InputPort* port) const;

  /// \brief Tokens produced per firing on `port`.
  virtual int64_t ProductionRate(const OutputPort* port) const;

  // ---- Schema transfer (schema pass) ----

  /// \brief The type of tokens `port` emits, given the resolved types of
  /// this actor's input ports (`inputs[i]` matches `input_ports()[i]`; an
  /// entry is Unknown when nothing was declared or inferred upstream).
  ///
  /// The default returns the port's declared schema (OutputPort::set_schema)
  /// untouched. Transforming actors override this to act as a transfer
  /// function — e.g. identity forwards (filters, delays) return the joined
  /// input type, a join merges its two input layouts, a projection narrows
  /// the input layout. The schema pass calls this once per propagation
  /// round; it must be pure.
  virtual TokenType OutputTokenType(const OutputPort* port,
                                    const std::vector<TokenType>& inputs) const;

  // ---- Output buffering (called from Fire) ----

  /// \brief Buffer a token for emission on `port`; the director stamps and
  /// broadcasts it after fire() returns.
  void Send(OutputPort* port, Token token);

  /// \brief Source variant: also records the tuple's external arrival time.
  void SendStamped(OutputPort* port, Token token, Timestamp external_ts);

  /// \brief Re-emit a previously received event with its timestamp, wave-tag
  /// and last-in-wave flag intact (for actors that hold events across
  /// firings and forward them later).
  void SendPreserved(OutputPort* port, const CWEvent& original);

  // ---- Director-side hooks ----

  /// \brief Reset firing context and output buffer before fire().
  void BeginFiring();

  /// \brief Hand the buffered outputs to the director for stamping.
  std::vector<PendingOutput> TakePendingOutputs();

  /// \brief Called by InputPort::Get to update the firing context.
  void NoteConsumedWindow(const Window& window);

  const FiringContext& firing_context() const { return firing_context_; }

  ExecutionContext* context() const { return ctx_; }

  /// \brief Completed firings since initialization.
  uint64_t total_firings() const { return total_firings_; }
  void IncrementFirings() { ++total_firings_; }

 protected:
  /// \brief Transfer-function helper for identity-forwarding actors
  /// (filters, delays, unions, throttles): the port's declared schema when
  /// set, else the join of every input type.
  TokenType IdentityTokenType(const OutputPort* port,
                              const std::vector<TokenType>& inputs) const;

  ExecutionContext* ctx_ = nullptr;

 private:
  std::string name_;
  std::vector<std::unique_ptr<InputPort>> input_ports_;
  std::vector<std::unique_ptr<OutputPort>> output_ports_;
  std::vector<PendingOutput> pending_outputs_;
  FiringContext firing_context_;
  uint64_t total_firings_ = 0;
};

}  // namespace cwf

#endif  // CONFLUENCE_CORE_ACTOR_H_

#include "core/cost_model.h"

namespace cwf {

const CostParams& CostModel::ParamsFor(const std::string& actor_name) const {
  auto it = per_actor_.find(actor_name);
  return it == per_actor_.end() ? default_params_ : it->second;
}

Duration CostModel::FiringCost(const std::string& actor_name,
                               size_t input_events,
                               size_t output_events) const {
  const CostParams& p = ParamsFor(actor_name);
  return p.base +
         p.per_input_event * static_cast<Duration>(input_events) +
         p.per_output_event * static_cast<Duration>(output_events);
}

}  // namespace cwf

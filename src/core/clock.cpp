#include "core/clock.h"

// Clock implementations are header-only; this TU anchors the vtable.

namespace cwf {}  // namespace cwf

#include "core/record.h"

#include <functional>
#include <sstream>

#include "core/wait_graph.h"

namespace cwf {

int64_t Value::AsInt() const {
  CWF_CHECK_MSG(is_int(), "Value is not an int: " << ToString()
                                                  << CurrentActorContext());
  return std::get<int64_t>(v_);
}

double Value::AsDouble() const {
  if (is_int()) {
    return static_cast<double>(std::get<int64_t>(v_));
  }
  CWF_CHECK_MSG(is_double(), "Value is not numeric: " << ToString()
                                                      << CurrentActorContext());
  return std::get<double>(v_);
}

bool Value::AsBool() const {
  CWF_CHECK_MSG(is_bool(), "Value is not a bool: " << ToString()
                                                   << CurrentActorContext());
  return std::get<bool>(v_);
}

const std::string& Value::AsString() const {
  CWF_CHECK_MSG(is_string(), "Value is not a string: " << ToString()
                                                       << CurrentActorContext());
  return std::get<std::string>(v_);
}

bool Value::operator<(const Value& o) const {
  if (v_.index() != o.v_.index()) {
    return v_.index() < o.v_.index();
  }
  return v_ < o.v_;
}

bool Value::operator==(const Value& o) const { return v_ == o.v_; }

size_t Value::Hash() const {
  size_t h = v_.index() * 0x9E3779B97F4A7C15ULL;
  switch (v_.index()) {
    case 1:
      h ^= std::hash<int64_t>()(std::get<int64_t>(v_));
      break;
    case 2:
      h ^= std::hash<double>()(std::get<double>(v_));
      break;
    case 3:
      h ^= std::hash<bool>()(std::get<bool>(v_));
      break;
    case 4:
      h ^= std::hash<std::string>()(std::get<std::string>(v_));
      break;
    default:
      break;
  }
  return h;
}

std::string Value::ToString() const {
  std::ostringstream oss;
  switch (v_.index()) {
    case 0:
      oss << "null";
      break;
    case 1:
      oss << std::get<int64_t>(v_);
      break;
    case 2:
      oss << std::get<double>(v_);
      break;
    case 3:
      oss << (std::get<bool>(v_) ? "true" : "false");
      break;
    case 4:
      oss << '"' << std::get<std::string>(v_) << '"';
      break;
  }
  return oss.str();
}

Record& Record::Set(std::string name, Value value) {
  for (auto& [n, v] : fields_) {
    if (n == name) {
      v = std::move(value);
      return *this;
    }
  }
  fields_.emplace_back(std::move(name), std::move(value));
  return *this;
}

bool Record::Has(const std::string& name) const {
  for (const auto& [n, v] : fields_) {
    if (n == name) {
      return true;
    }
  }
  return false;
}

Result<Value> Record::Get(const std::string& name) const {
  for (const auto& [n, v] : fields_) {
    if (n == name) {
      return v;
    }
  }
  return Status::NotFound("record has no field '" + name + "'");
}

const Value& Record::ValueAt(size_t index) const {
  CWF_CHECK_MSG(index < fields_.size(),
                "record field index " << index << " out of range (size "
                                      << fields_.size() << ")"
                                      << CurrentActorContext());
  return fields_[index].second;
}

const std::string& Record::NameAt(size_t index) const {
  CWF_CHECK_MSG(index < fields_.size(),
                "record field index " << index << " out of range (size "
                                      << fields_.size() << ")"
                                      << CurrentActorContext());
  return fields_[index].first;
}

Value Record::GetOr(const std::string& name, Value fallback) const {
  for (const auto& [n, v] : fields_) {
    if (n == name) {
      return v;
    }
  }
  return fallback;
}

std::string Record::ToString() const {
  std::ostringstream oss;
  oss << "{";
  bool first = true;
  for (const auto& [n, v] : fields_) {
    if (!first) {
      oss << ", ";
    }
    first = false;
    oss << n << "=" << v.ToString();
  }
  oss << "}";
  return oss.str();
}

}  // namespace cwf

// Hierarchical composition: an actor whose behaviour is an inner workflow
// run by its own (inner) director.
//
// This mirrors the paper's two-level Linear Road structure: the top level is
// governed by a continuous-workflow director (PNCWF or a STAFiLOS SCWF)
// while second-level sub-workflows ("detect stopped cars", "count cars per
// segment", …) are governed by SDF or DDF directors.
//
// Boundary semantics: events crossing into the composite keep their outer
// stamps; events produced by the inner workflow are re-stamped at the
// boundary as outputs of the composite's firing (the composite is one task
// in the outer wave hierarchy).

#ifndef CONFLUENCE_CORE_COMPOSITE_ACTOR_H_
#define CONFLUENCE_CORE_COMPOSITE_ACTOR_H_

#include <memory>
#include <vector>

#include "core/actor.h"
#include "core/director.h"
#include "core/workflow.h"

namespace cwf {

/// \brief Receiver that simply accumulates events for boundary collection.
class CollectorReceiver : public Receiver {
 public:
  using Receiver::Receiver;

  Status Put(const CWEvent& event) override {
    events_.push_back(event);
    return Status::OK();
  }
  bool HasWindow() const override { return false; }
  std::optional<Window> Get() override { return std::nullopt; }
  size_t ReadyWindowCount() const override { return 0; }

  /// \brief Remove and return everything collected so far.
  std::vector<CWEvent> Drain() {
    std::vector<CWEvent> out;
    out.swap(events_);
    return out;
  }

 private:
  std::vector<CWEvent> events_;
};

/// \brief An actor implemented by an inner workflow + director.
class CompositeActor : public Actor {
 public:
  /// \brief `inner_director` defines the inner model of computation (SDF or
  /// DDF in the paper's usage).
  CompositeActor(std::string name, std::unique_ptr<Director> inner_director);
  ~CompositeActor() override;

  /// \brief The inner workflow to populate before initialization.
  Workflow* inner() { return &inner_workflow_; }
  const Workflow* inner() const { return &inner_workflow_; }

  Director* inner_director() { return inner_director_.get(); }
  const Director* inner_director() const { return inner_director_.get(); }

  /// \brief Declare an outer input port relaying into `inner_port` of an
  /// inner actor. `outer_spec` is the window semantics applied at the outer
  /// boundary (default: pass each event through individually).
  InputPort* ExposeInput(const std::string& name, InputPort* inner_port,
                         WindowSpec outer_spec = WindowSpec::SingleEvent());

  /// \brief Declare an outer output port fed by `inner_port` of an inner
  /// actor.
  OutputPort* ExposeOutput(const std::string& name, OutputPort* inner_port);

  Status Initialize(ExecutionContext* ctx) override;

  /// \brief Ready when an outer window is available *or* an inner timed
  /// window's formation deadline has passed (the inner workflow must run to
  /// close it even without new input).
  Result<bool> Prefire() override;

  /// \brief Earliest inner wakeup (source arrival or window deadline).
  Timestamp NextDeadline() const override {
    return inner_director_->NextWakeup();
  }

  /// \brief Relay ready outer windows inward, run the inner workflow to
  /// quiescence, relay collected inner outputs outward.
  Status Fire() override;

  Status Wrapup() override;

  /// \brief The inner input port an outer input port relays into, or
  /// nullptr when `outer` is not one of this composite's exposed inputs.
  /// The schema pass uses the boundary map to propagate types across the
  /// composite (outer channel type → inner port, inner resolved output
  /// type → outer port).
  InputPort* BoundInnerInput(const InputPort* outer) const;

  /// \brief The inner output port feeding an outer output port, or nullptr.
  OutputPort* BoundInnerOutput(const OutputPort* outer) const;

 private:
  struct InputBinding {
    InputPort* outer = nullptr;
    InputPort* inner = nullptr;
    Receiver* inner_receiver = nullptr;  // owned by the inner port
  };
  struct OutputBinding {
    OutputPort* outer = nullptr;
    OutputPort* inner = nullptr;
    std::unique_ptr<InputPort> collector_port;
    std::unique_ptr<CollectorReceiver> collector;
  };

  Workflow inner_workflow_;
  std::unique_ptr<Director> inner_director_;
  std::vector<InputBinding> input_bindings_;
  std::vector<OutputBinding> output_bindings_;
};

}  // namespace cwf

#endif  // CONFLUENCE_CORE_COMPOSITE_ACTOR_H_

#include "core/event.h"

#include <sstream>

namespace cwf {

std::string CWEvent::ToString() const {
  std::ostringstream oss;
  oss << "CWEvent(" << token.ToString() << " @" << timestamp.ToString() << " "
      << wave.ToString();
  if (last_in_wave) {
    oss << " [last]";
  }
  oss << ")";
  return oss.str();
}

Timestamp Window::OldestTimestamp() const {
  Timestamp oldest = Timestamp::Max();
  for (const CWEvent& e : events) {
    if (e.timestamp < oldest) {
      oldest = e.timestamp;
    }
  }
  return oldest;
}

std::string Window::ToString() const {
  std::ostringstream oss;
  oss << "Window(n=" << events.size();
  if (!group_key.is_nil()) {
    oss << ", key=" << group_key.ToString();
  }
  if (closed_by_timeout) {
    oss << ", timeout";
  }
  oss << ")";
  return oss.str();
}

}  // namespace cwf

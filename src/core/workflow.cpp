#include "core/workflow.h"

#include "analysis/diagnostic.h"
#include "analysis/structural_pass.h"
#include "core/composite_actor.h"

#include <algorithm>
#include <sstream>
#include <functional>
#include <map>
#include <set>

namespace cwf {

Actor* Workflow::AdoptActor(std::unique_ptr<Actor> actor) {
  CWF_CHECK(actor != nullptr);
  CWF_CHECK_MSG(FindActor(actor->name()) == nullptr,
                "duplicate actor name '" << actor->name() << "' in workflow "
                                         << name_);
  actors_.push_back(std::move(actor));
  return actors_.back().get();
}

Status Workflow::Connect(OutputPort* from, InputPort* to) {
  if (from == nullptr || to == nullptr) {
    return Status::InvalidArgument("Connect() requires non-null ports");
  }
  if (FindActor(from->actor()->name()) != from->actor() ||
      FindActor(to->actor()->name()) != to->actor()) {
    return Status::InvalidArgument(
        "Connect() ports must belong to actors of this workflow");
  }
  // Count existing channels into `to` to pick the next slot.
  size_t slot = 0;
  for (const ChannelSpec& ch : channels_) {
    if (ch.to == to) {
      slot = std::max(slot, ch.to_channel + 1);
    }
  }
  channels_.push_back({from, to, slot});
  return Status::OK();
}

Status Workflow::Connect(OutputPort* from, InputPort* to, size_t to_channel) {
  if (from == nullptr || to == nullptr) {
    return Status::InvalidArgument("Connect() requires non-null ports");
  }
  if (FindActor(from->actor()->name()) != from->actor() ||
      FindActor(to->actor()->name()) != to->actor()) {
    return Status::InvalidArgument(
        "Connect() ports must belong to actors of this workflow");
  }
  channels_.push_back({from, to, to_channel});
  return Status::OK();
}

Status Workflow::Connect(const std::string& from_actor,
                         const std::string& from_port,
                         const std::string& to_actor,
                         const std::string& to_port) {
  Actor* src = FindActor(from_actor);
  if (src == nullptr) {
    return Status::NotFound("no actor '" + from_actor + "'");
  }
  Actor* dst = FindActor(to_actor);
  if (dst == nullptr) {
    return Status::NotFound("no actor '" + to_actor + "'");
  }
  OutputPort* out = src->GetOutputPort(from_port);
  if (out == nullptr) {
    return Status::NotFound("actor '" + from_actor + "' has no output port '" +
                            from_port + "'");
  }
  InputPort* in = dst->GetInputPort(to_port);
  if (in == nullptr) {
    return Status::NotFound("actor '" + to_actor + "' has no input port '" +
                            to_port + "'");
  }
  return Connect(out, in);
}

Actor* Workflow::FindActor(const std::string& name) const {
  for (const auto& actor : actors_) {
    if (actor->name() == name) {
      return actor.get();
    }
  }
  return nullptr;
}

std::vector<Actor*> Workflow::Sources() const {
  std::vector<Actor*> out;
  for (const auto& actor : actors_) {
    bool has_input = false;
    for (const ChannelSpec& ch : channels_) {
      if (ch.to->actor() == actor.get()) {
        has_input = true;
        break;
      }
    }
    if (!has_input) {
      out.push_back(actor.get());
    }
  }
  return out;
}

std::vector<Actor*> Workflow::Sinks() const {
  std::vector<Actor*> out;
  for (const auto& actor : actors_) {
    bool has_output = false;
    for (const ChannelSpec& ch : channels_) {
      if (ch.from->actor() == actor.get()) {
        has_output = true;
        break;
      }
    }
    if (!has_output) {
      out.push_back(actor.get());
    }
  }
  return out;
}

std::vector<Actor*> Workflow::DownstreamOf(const Actor* actor) const {
  std::vector<Actor*> out;
  for (const ChannelSpec& ch : channels_) {
    if (ch.from->actor() == actor) {
      Actor* next = ch.to->actor();
      if (std::find(out.begin(), out.end(), next) == out.end()) {
        out.push_back(next);
      }
    }
  }
  return out;
}

std::vector<Actor*> Workflow::UpstreamOf(const Actor* actor) const {
  std::vector<Actor*> out;
  for (const ChannelSpec& ch : channels_) {
    if (ch.to->actor() == actor) {
      Actor* prev = ch.from->actor();
      if (std::find(out.begin(), out.end(), prev) == out.end()) {
        out.push_back(prev);
      }
    }
  }
  return out;
}

bool Workflow::HasCycle() const {
  enum class Mark { kUnseen, kInProgress, kDone };
  std::map<const Actor*, Mark> marks;
  std::function<bool(const Actor*)> visit = [&](const Actor* a) -> bool {
    Mark& m = marks[a];
    if (m == Mark::kInProgress) {
      return true;
    }
    if (m == Mark::kDone) {
      return false;
    }
    m = Mark::kInProgress;
    for (Actor* next : DownstreamOf(a)) {
      if (visit(next)) {
        return true;
      }
    }
    m = Mark::kDone;
    return false;
  };
  for (const auto& actor : actors_) {
    if (visit(actor.get())) {
      return true;
    }
  }
  return false;
}

Status Workflow::Validate() const {
  const analysis::StructuralPass pass;
  analysis::DiagnosticBag diags;
  pass.Run(*this, {}, &diags);
  for (const analysis::Diagnostic& d : diags.all()) {
    if (d.severity == analysis::Severity::kError) {
      return Status::InvalidArgument("[" + d.code + "] at " + d.location +
                                     ": " + d.message);
    }
  }
  return Status::OK();
}

namespace {

std::string DotId(const void* p) {
  std::ostringstream oss;
  oss << "n" << p;
  return oss.str();
}

std::string EscapeDot(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

void EmitActors(std::ostringstream& oss, const Workflow& wf,
                const Workflow::DotOptions& options, int depth);

void EmitActorNode(std::ostringstream& oss, const Actor* actor,
                   const Workflow::DotOptions& options, int depth) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  const auto fill = options.node_fill.find(actor);
  // Composites render as clusters containing their inner workflow.
  if (const auto* composite = dynamic_cast<const CompositeActor*>(actor)) {
    oss << indent << "subgraph cluster_" << DotId(actor) << " {\n"
        << indent << "  label=\"" << EscapeDot(actor->name()) << "\";\n";
    if (fill != options.node_fill.end()) {
      oss << indent << "  style=filled;\n"
          << indent << "  bgcolor=\"" << EscapeDot(fill->second) << "\";\n";
    }
    EmitActors(oss, *const_cast<CompositeActor*>(composite)->inner(), options,
               depth + 1);
    oss << indent << "}\n";
    return;
  }
  oss << indent << DotId(actor) << " [label=\"" << EscapeDot(actor->name())
      << "\"";
  if (actor->IsSource()) {
    oss << ", shape=invhouse";
  }
  if (fill != options.node_fill.end()) {
    oss << ", style=filled, fillcolor=\"" << EscapeDot(fill->second) << "\"";
  }
  oss << "];\n";
}

void EmitActors(std::ostringstream& oss, const Workflow& wf,
                const Workflow::DotOptions& options, int depth) {
  for (const auto& actor : wf.actors()) {
    EmitActorNode(oss, actor.get(), options, depth);
  }
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  for (const ChannelSpec& ch : wf.channels()) {
    oss << indent << DotId(ch.from->actor()) << " -> "
        << DotId(ch.to->actor());
    const auto style = options.edge_style.find({ch.to, ch.to_channel});
    std::string label;
    if (!ch.to->spec().IsTrivial()) {
      label = EscapeDot(ch.to->spec().ToString());
    }
    if (style != options.edge_style.end() && !style->second.label.empty()) {
      if (!label.empty()) {
        label += "\\n";
      }
      label += EscapeDot(style->second.label);
    }
    std::string attrs;
    if (!label.empty()) {
      attrs += "label=\"" + label + "\"";
    }
    if (style != options.edge_style.end() && !style->second.color.empty()) {
      if (!attrs.empty()) {
        attrs += ", ";
      }
      attrs += "color=\"" + EscapeDot(style->second.color) + "\", fontcolor=\"" +
               EscapeDot(style->second.color) + "\", penwidth=2";
    }
    if (!attrs.empty()) {
      oss << " [" << attrs << "]";
    }
    oss << ";\n";
  }
}

}  // namespace

std::string Workflow::ToDot() const { return ToDot(DotOptions{}); }

std::string Workflow::ToDot(const DotOptions& options) const {
  std::ostringstream oss;
  oss << "digraph \"" << EscapeDot(name_) << "\" {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=box];\n";
  EmitActors(oss, *this, options, 1);
  oss << "}\n";
  return oss.str();
}

}  // namespace cwf

// The data item propagated along a channel (Kepler's "token").

#ifndef CONFLUENCE_CORE_TOKEN_H_
#define CONFLUENCE_CORE_TOKEN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>

#include "core/record.h"

namespace cwf {

/// \brief A unit of data exchanged between actors.
///
/// Tokens are cheap to copy: scalars by value, records by shared pointer.
/// A default-constructed token is the "nil" token, used by pure-control
/// channels (triggers).
class Token {
 public:
  Token() : v_(std::monostate{}) {}
  Token(int64_t v) : v_(v) {}                 // NOLINT
  Token(int v) : v_(int64_t{v}) {}            // NOLINT
  Token(double v) : v_(v) {}                  // NOLINT
  Token(bool v) : v_(v) {}                    // NOLINT
  Token(std::string v) : v_(std::move(v)) {}  // NOLINT
  Token(const char* v) : v_(std::string(v)) {}  // NOLINT
  Token(RecordPtr v) : v_(std::move(v)) {}    // NOLINT

  bool is_nil() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_record() const { return std::holds_alternative<RecordPtr>(v_); }

  int64_t AsInt() const;
  /// \brief Numeric content (ints widen to double).
  double AsDouble() const;
  bool AsBool() const;
  const std::string& AsString() const;
  /// \brief Record content; CHECK-fails unless is_record().
  const RecordPtr& AsRecord() const;

  /// \brief Record field shortcut: token must be a record holding `field`.
  Value Field(const std::string& field) const;

  /// \brief Record field by position — O(1) counterpart of Field() for hot
  /// paths where the index was resolved once via RecordSchema::IndexOf.
  /// CHECK-fails unless the token is a record with `index` in range.
  const Value& FieldAt(size_t index) const;

  bool operator==(const Token& o) const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string, RecordPtr> v_;
};

}  // namespace cwf

#endif  // CONFLUENCE_CORE_TOKEN_H_

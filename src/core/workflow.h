// The workflow graph: actors plus the channels connecting their ports.
//
// A workflow is a *specification*; which model of computation executes it is
// decided by attaching a director (core/director.h). The same graph can run
// under the thread-based PNCWF director, the scheduled SCWF director, or as
// a sub-workflow under SDF/DDF — receivers are created per-director at
// initialization time.

#ifndef CONFLUENCE_CORE_WORKFLOW_H_
#define CONFLUENCE_CORE_WORKFLOW_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/actor.h"

namespace cwf {

/// \brief One channel: an output port wired to a specific channel slot of an
/// input port.
struct ChannelSpec {
  OutputPort* from = nullptr;
  InputPort* to = nullptr;
  size_t to_channel = 0;
};

/// \brief A composition of actors and channels.
class Workflow {
 public:
  explicit Workflow(std::string name) : name_(std::move(name)) {}

  Workflow(const Workflow&) = delete;
  Workflow& operator=(const Workflow&) = delete;

  const std::string& name() const { return name_; }

  /// \brief Construct an actor in place and take ownership.
  template <typename T, typename... Args>
  T* AddActor(Args&&... args) {
    auto actor = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = actor.get();
    AdoptActor(std::move(actor));
    return raw;
  }

  /// \brief Take ownership of a pre-built actor.
  Actor* AdoptActor(std::unique_ptr<Actor> actor);

  /// \brief Wire `from` to the next free channel slot of `to`.
  Status Connect(OutputPort* from, InputPort* to);

  /// \brief Wire `from` into an explicit channel slot of `to`. Like the
  /// Ptolemy composition API this does not reject duplicate wirings
  /// eagerly — construct freely, then Validate() (or the analyzer) flags
  /// a slot wired twice as CWF1004.
  Status Connect(OutputPort* from, InputPort* to, size_t to_channel);

  /// \brief Convenience overload: look ports up by actor/port name.
  Status Connect(const std::string& from_actor, const std::string& from_port,
                 const std::string& to_actor, const std::string& to_port);

  /// \brief Actor by name, or nullptr.
  Actor* FindActor(const std::string& name) const;

  const std::vector<std::unique_ptr<Actor>>& actors() const { return actors_; }
  const std::vector<ChannelSpec>& channels() const { return channels_; }

  /// \brief Actors with no connected inputs (external data injectors).
  std::vector<Actor*> Sources() const;

  /// \brief Actors with no connected outputs.
  std::vector<Actor*> Sinks() const;

  /// \brief Actors directly downstream of `actor` (via any channel),
  /// deduplicated.
  std::vector<Actor*> DownstreamOf(const Actor* actor) const;

  /// \brief Actors directly upstream of `actor`, deduplicated.
  std::vector<Actor*> UpstreamOf(const Actor* actor) const;

  /// \brief Whether the channel graph contains a directed cycle.
  bool HasCycle() const;

  /// \brief Structural checks — a thin wrapper over the analyzer's
  /// structural pass (analysis/structural_pass.h): unique actor names,
  /// valid window specs, no self-loop channels, no channel slot wired
  /// twice. The first error-severity finding maps to InvalidArgument;
  /// warnings (dead subgraphs, missing sources/sinks) never fail it.
  Status Validate() const;

  /// \brief Rendering knobs for ToDot().
  struct DotOptions {
    /// Fill color per actor ("red", "#ffcccc", ...); actors absent from
    /// the map render unfilled. Composite actors tint their cluster.
    std::map<const Actor*, std::string> node_fill;

    /// Extra styling for one channel (schema layouts, mismatch highlights).
    struct EdgeStyle {
      std::string label;  ///< extra label line under the window semantics
      std::string color;  ///< edge + font color ("red" for mismatches)
    };
    /// Keyed by (consuming port, channel slot) — the same key that names a
    /// channel uniquely everywhere else in the engine.
    std::map<std::pair<const InputPort*, size_t>, EdgeStyle> edge_style;
  };

  /// \brief Render the graph in Graphviz DOT format (actors as nodes —
  /// composites shown as clusters with their inner workflow — channels as
  /// edges labelled with the consuming port's window semantics).
  std::string ToDot() const;
  std::string ToDot(const DotOptions& options) const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<ChannelSpec> channels_;
};

}  // namespace cwf

#endif  // CONFLUENCE_CORE_WORKFLOW_H_

// The director: a workflow's controlling entity.
//
// The director defines the execution and communication models of the
// workflow: it creates the receivers, transitions actors through their
// lifecycle stages, and — acting as the CONFLuEnCE timekeeper — stamps
// every produced token with a timestamp and a wave-tag before broadcasting
// it downstream.

#ifndef CONFLUENCE_CORE_DIRECTOR_H_
#define CONFLUENCE_CORE_DIRECTOR_H_

#include <memory>
#include <set>
#include <string>

#include "common/lock_registry.h"
#include "common/status.h"
#include "core/clock.h"
#include "core/cost_model.h"
#include "core/receiver.h"
#include "core/workflow.h"
#include "obs/telemetry.h"

namespace cwf {

namespace analysis {
struct CapacityPlan;
}  // namespace analysis

/// \brief Base class of every model of computation.
class Director {
 public:
  Director() = default;
  virtual ~Director() = default;

  Director(const Director&) = delete;
  Director& operator=(const Director&) = delete;

  /// \brief Short identifier of the model of computation ("PNCWF", "SCWF",
  /// "SDF", "DDF").
  virtual const char* kind() const = 0;

  /// \brief Bind the workflow, build all receivers, initialize all actors.
  ///
  /// `cost_model` may be nullptr when running on a real clock (real elapsed
  /// time is measured instead of modeled).
  virtual Status Initialize(Workflow* workflow, Clock* clock,
                            const CostModel* cost_model);

  /// \brief Execute until the clock passes `until`, until all work drains,
  /// or until every actor halted via postfire() — whichever comes first.
  virtual Status Run(Timestamp until) = 0;

  /// \brief Invoke wrapup() on every actor.
  virtual Status Wrapup();

  /// \brief Factory for the receiver this model of computation places at the
  /// consuming end of a channel into `port`.
  virtual std::unique_ptr<Receiver> CreateReceiver(InputPort* port) = 0;

  /// \brief Stamp and broadcast the outputs an actor buffered during its
  /// firing (timekeeper role; see class comment). `emitted` reports how many
  /// events were sent.
  Status FlushActorOutputs(Actor* actor, size_t* emitted = nullptr);

  Workflow* workflow() const { return workflow_; }
  Clock* clock() const { return clock_; }
  const CostModel* cost_model() const { return cost_model_; }
  ExecutionContext* context() { return ctx_; }

  /// \brief Share an enclosing director's execution context (sequence and
  /// wave-id counters). Used by composite actors so inner sub-workflows
  /// stamp events consistently with the outer workflow. Must be called
  /// before Initialize().
  void AdoptContext(ExecutionContext* ctx) { ctx_ = ctx; }

  /// \brief Whether actor halted itself (postfire returned false).
  /// Thread-safe: PNCWF actor threads consult it concurrently.
  bool IsHalted(const Actor* actor) const CWF_EXCLUDES(halted_mutex_) {
    ScopedLock lock(halted_mutex_);
    return halted_.count(actor) > 0;
  }

  /// \brief Install a static capacity plan (analysis/capacity_planner.h) to
  /// be consumed by the next Initialize(): BuildReceivers() pre-sizes every
  /// planned channel to its bound with this director's overflow policy
  /// (planned_overflow_policy()). Call before Initialize(); pass-by-value is
  /// copied, the plan does not need to outlive this call.
  void set_capacity_plan(const analysis::CapacityPlan& plan);

  /// \brief Remove an installed plan (subsequent initializations build
  /// unbounded receivers again).
  void clear_capacity_plan() { capacity_plan_.reset(); }

  /// \brief The installed plan, or nullptr.
  const analysis::CapacityPlan* capacity_plan() const {
    return capacity_plan_.get();
  }

  /// \brief Opt out of the MoC-aware static analysis gate in Initialize()
  /// (analysis::VerifyForDirector); plain Workflow::Validate() still runs.
  /// For experiments that deliberately construct inadmissible graphs.
  void set_static_analysis_enabled(bool enabled) {
    static_analysis_enabled_ = enabled;
  }
  bool static_analysis_enabled() const { return static_analysis_enabled_; }

  /// \brief Earliest future instant at which new work appears with no new
  /// firing: a pending source arrival, a window-formation deadline on any
  /// receiver, or an actor-internal deadline. Max() when none.
  virtual Timestamp NextWakeup() const;

  /// \brief Whether a Run() call right now would fire at least one actor
  /// (events queued, windows ready or a wakeup due). Used by the top-level
  /// scheduler of the multi-workflow framework.
  virtual bool HasPendingWork() const;

  /// \brief This director's telemetry frontend (observers can be added
  /// after Initialize; instruments rebind on every Initialize).
  obs::WorkflowTelemetry* telemetry() { return &telemetry_; }

 protected:
  /// \brief Create a receiver for every channel and register it with both
  /// ends; called from Initialize(). With a capacity plan installed, planned
  /// channels are bounded to their per-channel capacity.
  Status BuildReceivers();

  /// \brief Overflow policy applied to plan-bounded receivers. The default
  /// keeps capacity advisory (bound + high-water mark only); the PNCWF
  /// director overrides this with kBlock to get blocking-put backpressure.
  virtual OverflowPolicy planned_overflow_policy() const {
    return OverflowPolicy::kUnbounded;
  }

  /// \brief Observation hook: one event was stamped and broadcast.
  virtual void OnEventEmitted(Actor* producer, OutputPort* port,
                              const CWEvent& event) {
    (void)producer;
    (void)port;
    (void)event;
  }

  /// Thread-safe (see IsHalted).
  void MarkHalted(const Actor* actor) CWF_EXCLUDES(halted_mutex_) {
    ScopedLock lock(halted_mutex_);
    halted_.insert(actor);
  }

  /// \brief Drop every halted mark (Initialize re-entry).
  void ClearHalted() CWF_EXCLUDES(halted_mutex_) {
    ScopedLock lock(halted_mutex_);
    halted_.clear();
  }

  obs::WorkflowTelemetry telemetry_;
  Workflow* workflow_ = nullptr;
  Clock* clock_ = nullptr;
  const CostModel* cost_model_ = nullptr;
  ExecutionContext own_ctx_;
  ExecutionContext* ctx_ = &own_ctx_;
  bool initialized_ = false;
  bool static_analysis_enabled_ = true;
  /// shared_ptr so the header only needs the forward declaration.
  std::shared_ptr<const analysis::CapacityPlan> capacity_plan_;
  /// Liveness verdict of the installed plan under this deployment, stamped
  /// by Initialize() when the plan's bounds will actually block
  /// ("provably-live", "unknown", ...; empty when not analyzed). The PNCWF
  /// watchdog cross-validates against it: a runtime deadlock on a
  /// provably-live plan is an engine bug, not a planning error.
  std::string installed_plan_liveness_;

 private:
  /// Serializes the halted set: in OS-thread PNCWF, actor threads mark and
  /// poll halt states concurrently with the drain loop.
  mutable OrderedMutex halted_mutex_{"Director::halted_mutex"};
  std::set<const Actor*> halted_ CWF_GUARDED_BY(halted_mutex_);
};

}  // namespace cwf

#endif  // CONFLUENCE_CORE_DIRECTOR_H_

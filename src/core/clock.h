// The engine time source.
//
// CONFLuEnCE measures everything — event timestamps, window timeouts, actor
// costs, quanta, response times — on one time axis. `RealClock` maps it to
// wall-clock time for live deployments; `VirtualClock` lets the benchmark
// harness replay the paper's 600-second Linear Road runs deterministically
// and in milliseconds of host time (see DESIGN.md, "Virtual-time
// methodology").

#ifndef CONFLUENCE_CORE_CLOCK_H_
#define CONFLUENCE_CORE_CLOCK_H_

#include <chrono>

#include "common/status.h"
#include "common/time.h"

namespace cwf {

/// \brief Abstract monotone time source.
class Clock {
 public:
  virtual ~Clock() = default;

  /// \brief Current instant on the engine time axis.
  virtual Timestamp Now() const = 0;

  /// \brief Whether time is simulation-driven (advanced by the director)
  /// rather than wall-clock-driven.
  virtual bool is_virtual() const = 0;

  /// \brief Move time forward to `t` (virtual clocks only; never backward).
  virtual void AdvanceTo(Timestamp t) = 0;

  /// \brief Move time forward by `d` (virtual clocks only).
  void AdvanceBy(Duration d) { AdvanceTo(Now() + d); }
};

/// \brief Simulation clock advanced explicitly by directors/harnesses.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(Timestamp start = Timestamp(0)) : now_(start) {}

  Timestamp Now() const override { return now_; }
  bool is_virtual() const override { return true; }

  void AdvanceTo(Timestamp t) override {
    CWF_CHECK_MSG(t >= now_, "virtual clock moved backward: "
                                 << now_.ToString() << " -> " << t.ToString());
    now_ = t;
  }

 private:
  Timestamp now_;
};

/// \brief Wall-clock time since construction (steady, monotone).
class RealClock : public Clock {
 public:
  RealClock() : start_(std::chrono::steady_clock::now()) {}

  Timestamp Now() const override {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return Timestamp(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }

  bool is_virtual() const override { return false; }

  void AdvanceTo(Timestamp) override {
    CWF_CHECK_MSG(false, "cannot advance a real clock");
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cwf

#endif  // CONFLUENCE_CORE_CLOCK_H_

#include "core/director.h"

#include "analysis/analyzer.h"
#include "analysis/capacity_planner.h"
#include "analysis/liveness_pass.h"
#include "analysis/schema_pass.h"
#include "stream/stream_source.h"

namespace cwf {

void Director::set_capacity_plan(const analysis::CapacityPlan& plan) {
  capacity_plan_ = std::make_shared<const analysis::CapacityPlan>(plan);
}

Status Director::Initialize(Workflow* workflow, Clock* clock,
                            const CostModel* cost_model) {
  if (workflow == nullptr || clock == nullptr) {
    return Status::InvalidArgument("Initialize() needs a workflow and a clock");
  }
  workflow_ = workflow;
  clock_ = clock;
  cost_model_ = cost_model;
  ClearHalted();
  if (ctx_ == &own_ctx_) {
    own_ctx_.seq = 1;
    own_ctx_.external_id = 1;
    own_ctx_.clock = clock_;
    own_ctx_.director = this;
  }
  if (static_analysis_enabled_) {
    // Full MoC-aware gate: structural errors plus admission errors for this
    // director's model of computation (analysis/analyzer.h).
    CWF_RETURN_NOT_OK(analysis::VerifyForDirector(*workflow_, kind()));
  } else {
    CWF_RETURN_NOT_OK(workflow_->Validate());
  }
  installed_plan_liveness_.clear();
  if (capacity_plan_ != nullptr && static_analysis_enabled_ &&
      planned_overflow_policy() == OverflowPolicy::kBlock) {
    // This deployment enforces the plan's bounds with blocking puts:
    // refuse a plan the liveness pass can prove will artificially
    // deadlock, and remember the verdict so the runtime watchdog can
    // cross-validate (analysis/liveness_pass.h).
    analysis::AnalysisOptions liveness_options;
    liveness_options.target_director = kind();
    const analysis::LivenessReport report = analysis::AnalyzeLiveness(
        *workflow_, liveness_options, *capacity_plan_);
    if (report.verdict == analysis::LivenessVerdict::kProvablyDeadlocking) {
      return Status::InvalidArgument(
          "CWF6001: installed capacity plan provably deadlocks under " +
          std::string(kind()) + " blocking backpressure\n" +
          report.witness.ToString());
    }
    installed_plan_liveness_ = analysis::LivenessVerdictName(report.verdict);
  }
  CWF_RETURN_NOT_OK(BuildReceivers());
  // Initialize re-entry starts a fresh run: receiver high-water marks must
  // not leak across runs. Channel receivers are rebuilt above, but
  // subclasses and tests may install receivers outside BuildReceivers(), so
  // sweep everything attached to the workflow.
  for (const auto& actor : workflow_->actors()) {
    for (const auto& port : actor->input_ports()) {
      for (size_t c = 0; c < port->ChannelCount(); ++c) {
        if (Receiver* r = port->receiver(c)) {
          r->ResetHighWaterMark();
        }
      }
    }
  }
  if (static_analysis_enabled_) {
    // Analysis->runtime feedback edge: attach each channel's statically
    // resolved token type to its receiver so debug builds (CWF_SCHEMA_CHECK)
    // validate every deposit against the schema the pass verified, turning
    // deep-in-actor CHECK-fails into CWF7008 errors naming the channel.
    for (const auto& [key, resolved] : analysis::ResolveChannelTypes(*workflow_)) {
      if (Receiver* r = key.first->receiver(key.second)) {
        r->SetExpectedType(std::make_shared<const TokenType>(resolved.type),
                           resolved.channel_name);
      }
    }
  }
  telemetry_.Bind(*workflow_, kind());
  for (const auto& actor : workflow_->actors()) {
    CWF_RETURN_NOT_OK(actor->Initialize(ctx_));
  }
  initialized_ = true;
  return Status::OK();
}

Status Director::Wrapup() {
  if (workflow_ == nullptr) {
    return Status::OK();
  }
  for (const auto& actor : workflow_->actors()) {
    CWF_RETURN_NOT_OK(actor->Wrapup());
  }
  return Status::OK();
}

Status Director::BuildReceivers() {
  // Reset any previous wiring (re-initialization support).
  for (const auto& actor : workflow_->actors()) {
    for (const auto& out : actor->output_ports()) {
      out->ClearRemoteReceivers();
    }
  }
  for (const ChannelSpec& ch : workflow_->channels()) {
    // Receiver-ownership invariant: a director only wires channels between
    // ports of the workflow it was bound to.
    CWF_DCHECK_MSG(
        workflow_->FindActor(ch.to->actor()->name()) == ch.to->actor(),
        "channel into " << ch.to->FullName()
                        << " targets an actor outside this workflow");
    CWF_DCHECK_MSG(
        workflow_->FindActor(ch.from->actor()->name()) == ch.from->actor(),
        "channel out of " << ch.from->FullName()
                          << " leaves an actor outside this workflow");
    std::unique_ptr<Receiver> receiver = CreateReceiver(ch.to);
    Receiver* raw = ch.to->SetReceiver(ch.to_channel, std::move(receiver));
    raw->set_owner(this);
    raw->set_probe(
        telemetry_.CreateReceiverProbe(ch.to->FullName(), ch.to_channel));
    // Analysis→runtime feedback edge: pre-size the queue to the planner's
    // bound (Floe-style buffer sizing, computed once by cwf_analyze --plan
    // or PlanCapacity and reused here).
    if (capacity_plan_ != nullptr) {
      const size_t bound =
          capacity_plan_->CapacityFor(ch.to->FullName(), ch.to_channel);
      if (bound > 0) {
        raw->SetCapacity(bound, planned_overflow_policy());
      }
    }
    ch.from->AddRemoteReceiver(raw);
  }
  return Status::OK();
}

Status Director::FlushActorOutputs(Actor* actor, size_t* emitted) {
#ifdef CWF_OBS_ENABLED
  static const obs::ProfileSite* alloc_site = obs::Profiler::Global().Site(
      "<director>", obs::ProfilePhase::kAllocation);
  static const obs::ProfileSite* open_site =
      obs::Profiler::Global().Site("<director>", obs::ProfilePhase::kWaveOpen);
#endif
  std::vector<PendingOutput> outputs;
  {
    CWF_PROFILE_SCOPE(alloc_site);
    outputs = actor->TakePendingOutputs();
  }
  if (emitted != nullptr) {
    *emitted = outputs.size();
  }
  if (outputs.empty()) {
    return Status::OK();
  }
  // Wave-open phase: stamping + broadcast bookkeeping. Receiver deposits
  // nested under Broadcast profile as receiver_put and are subtracted from
  // this scope's self time.
  CWF_PROFILE_SCOPE(open_site);
  const FiringContext& fc = actor->firing_context();
  // Wave serial numbers cover only the outputs that join the firing's wave;
  // stamp-preserved re-emissions keep their original tags.
  uint32_t n_regular = 0;
  for (const PendingOutput& po : outputs) {
    if (!po.wave_override.has_value()) {
      ++n_regular;
    }
  }
  uint32_t serial = 0;
  for (PendingOutput& po : outputs) {
    // Receiver-ownership invariant: everything this flush broadcasts into
    // must be a receiver this director built (or a directorless boundary
    // collector) — a foreign owner means a stale wiring from a previous
    // initialization is still attached.
    for (Receiver* r : po.port->remote_receivers()) {
      CWF_DCHECK_MSG(r->owner() == nullptr || r->owner() == this,
                     "port " << po.port->FullName()
                             << " still feeds a receiver built by a "
                                "different director");
    }
    CWEvent event;
    event.token = std::move(po.token);
    event.seq = ctx_->NextSeq();
    if (po.wave_override.has_value()) {
      // Re-emission of a previously stamped event (SendPreserved).
      event.wave = *po.wave_override;
      event.timestamp = po.external_timestamp.value_or(clock_->Now());
      event.last_in_wave = po.last_in_wave_override;
    } else if (fc.valid) {
      // Internal event: joins the wave of the event being processed.
      ++serial;
      event.wave = fc.wave.Child(serial);
      event.timestamp = fc.timestamp;
      event.last_in_wave = (serial == n_regular);
    } else {
      // External event: starts a new wave. Its timestamp is the tuple's
      // arrival time (sources stamp it explicitly) or "now".
      event.wave = WaveTag::Root(ctx_->NextExternalId());
      event.timestamp = po.external_timestamp.value_or(clock_->Now());
      event.last_in_wave = true;
    }
    CWF_RETURN_NOT_OK(po.port->Broadcast(event));
    OnEventEmitted(actor, po.port, event);
    telemetry_.RecordEmit(event, po.port->remote_receivers().size(),
                          clock_->Now());
  }
  return Status::OK();
}

Timestamp Director::NextWakeup() const {
  Timestamp next = Timestamp::Max();
  if (workflow_ == nullptr) {
    return next;
  }
  for (const auto& actor : workflow_->actors()) {
    if (const auto* src = dynamic_cast<const TimedSource*>(actor.get())) {
      const Timestamp arrival = src->NextPendingArrival();
      if (arrival < next) {
        next = arrival;
      }
    }
    const Timestamp own = actor->NextDeadline();
    if (own < next) {
      next = own;
    }
    for (const auto& port : actor->input_ports()) {
      for (size_t c = 0; c < port->ChannelCount(); ++c) {
        const Receiver* r = port->receiver(c);
        if (r != nullptr && r->NextDeadline() < next) {
          next = r->NextDeadline();
        }
      }
    }
  }
  return next;
}

bool Director::HasPendingWork() const {
  if (workflow_ == nullptr) {
    return false;
  }
  for (const ChannelSpec& ch : workflow_->channels()) {
    const Receiver* r = ch.to->receiver(ch.to_channel);
    if (r != nullptr && r->ReadyWindowCount() > 0) {
      return true;
    }
  }
  return NextWakeup() <= clock_->Now();
}

}  // namespace cwf

// Receivers: the channel endpoints owned by the director.
//
// In Kepler/Ptolemy the receiving end of a channel is a receiver object
// supplied by the *director*, not by the actor — the director thereby
// decides whether communication is synchronous, buffered, windowed, etc.
// CONFLuEnCE introduces windowed receivers; STAFiLOS adds a scheduled
// variant that hands produced windows to the scheduler instead of the actor.

#ifndef CONFLUENCE_CORE_RECEIVER_H_
#define CONFLUENCE_CORE_RECEIVER_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "common/time.h"
#include "core/event.h"
#include "core/schema.h"

namespace cwf {

class Director;
class InputPort;

namespace obs {
struct ReceiverProbe;
}  // namespace obs

/// \brief What Put() does when a capacity-bounded receiver is full.
enum class OverflowPolicy {
  /// Capacity is advisory: deposits always succeed (the bound still drives
  /// AtCapacity() for director-level backpressure and the high-water mark).
  kUnbounded,
  /// Producers must not deposit while AtCapacity(): the PNCWF OS-thread
  /// receivers block the producing thread until the consumer drains
  /// (backpressure); the simulated director defers the producer's firing.
  kBlock,
};

/// \brief Abstract channel endpoint. Producers call Put(); the consuming
/// actor's fire() obtains windows via Get().
class Receiver {
 public:
  explicit Receiver(InputPort* port) : port_(port) {}
  virtual ~Receiver() = default;

  Receiver(const Receiver&) = delete;
  Receiver& operator=(const Receiver&) = delete;

  /// \brief Deposit one event arriving over the channel.
  virtual Status Put(const CWEvent& event) = 0;

  /// \brief Whether Get() would currently return a window.
  virtual bool HasWindow() const = 0;

  /// \brief Retrieve the next window, or nullopt when none is ready.
  virtual std::optional<Window> Get() = 0;

  /// \brief Windows ready for retrieval.
  virtual size_t ReadyWindowCount() const = 0;

  /// \brief Events buffered but not yet part of a produced window.
  virtual size_t PendingEventCount() const { return 0; }

  /// \brief Remove and return events that expired out of the window scope.
  virtual std::vector<CWEvent> DrainExpired() { return {}; }

  /// \brief Earliest timer this receiver needs (time-window formation
  /// timeouts); Timestamp::Max() when none.
  virtual Timestamp NextDeadline() const { return Timestamp::Max(); }

  /// \brief Fire any window whose formation timeout has passed.
  virtual void OnTimeout(Timestamp now) { (void)now; }

  /// \brief Force-close pending windows (end-of-stream).
  virtual void Flush() {}

  /// \brief The input port this receiver feeds.
  InputPort* port() const { return port_; }

  /// \brief The director whose initialization installed this receiver
  /// (receiver-ownership invariant; nullptr for boundary collectors built
  /// outside a director).
  const Director* owner() const { return owner_; }
  void set_owner(const Director* director) { owner_ = director; }

  // ---- Capacity (static capacity planner → runtime feedback edge) ----

  /// \brief Bound the queue to `capacity` queued units (pending events +
  /// ready windows, i.e. QueueDepth()); 0 restores the unbounded default.
  /// Directors apply the CapacityPlan's per-channel bounds here at
  /// Initialize.
  void SetCapacity(size_t capacity, OverflowPolicy policy) {
    capacity_ = capacity;
    overflow_policy_ = capacity == 0 ? OverflowPolicy::kUnbounded : policy;
  }

  size_t capacity() const { return capacity_; }
  OverflowPolicy overflow_policy() const { return overflow_policy_; }

  /// \brief Current queued units: buffered-but-unwindowed events plus ready
  /// windows — the quantity the planner bounds.
  size_t QueueDepth() const { return PendingEventCount() + ReadyWindowCount(); }

  /// \brief Whether a bounded receiver is full (always false when
  /// unbounded).
  bool AtCapacity() const {
    return capacity_ > 0 && QueueDepth() >= capacity_;
  }

  /// \brief Highest QueueDepth() ever observed after a deposit. Compared
  /// against the planner's per-channel bound (tests) and surfaced through
  /// stafilos::ActorStatistics under the SCWF director.
  uint64_t high_water_mark() const { return high_water_mark_; }
  void ResetHighWaterMark() { high_water_mark_ = 0; }

  // ---- Schema (static schema pass → runtime feedback edge) ----

  /// \brief Attach the channel's resolved token type and display name
  /// ("From.out -> To.in[0]"). Director::Initialize installs both from the
  /// schema pass resolution; the CWF_SCHEMA_CHECK deposit validation in
  /// OutputPort::Broadcast consults them to attribute a mistyped token to
  /// its channel. nullptr detaches (no validation).
  void SetExpectedType(std::shared_ptr<const TokenType> type,
                       std::string channel_name) {
    expected_type_ = std::move(type);
    channel_name_ = std::move(channel_name);
  }

  const TokenType* expected_type() const { return expected_type_.get(); }
  const std::string& channel_name() const { return channel_name_; }

  /// \brief Validate one token against the attached expected type. Returns
  /// a CWF7008 FailedPrecondition naming the channel and offending field on
  /// mismatch (and bumps the cwf_schema_violations counter when metrics are
  /// on); OK when no type is attached.
  Status ValidateDeposit(const Token& token) const;

  // ---- Telemetry (src/obs) ----

  /// \brief Attach the per-channel instrument handles resolved by the
  /// director's WorkflowTelemetry (nullptr detaches; boundary collectors
  /// built outside a director run uninstrumented).
  void set_probe(const obs::ReceiverProbe* probe) { probe_ = probe; }
  const obs::ReceiverProbe* probe() const { return probe_; }

  /// \brief Called once per event deposited (by the delivery paths in
  /// OutputPort::Deliver / composite boundary forwarding), so the puts
  /// counter is independent of how often subclasses refresh the depth.
  void NotePut();

  /// \brief Called by InputPort::Get/GetFrom after a successful window pop
  /// (consumption-side counterpart of NotePut).
  void NoteGet();

  /// \brief Blocking-put receivers report host microseconds a producer
  /// spent blocked against this channel's capacity bound.
  void NoteBlockedMicros(int64_t micros);

 protected:
  /// \brief Update the high-water mark; subclasses call this after every
  /// deposit (Put, timeout/flush window production, scheduled delivery).
  /// Caller provides any locking its Put already uses.
  void RecordDepth() {
    const size_t depth = QueueDepth();
    if (depth > high_water_mark_) {
      high_water_mark_ = depth;
    }
    if (probe_ != nullptr) {
      ProbeDeposit(depth);
    }
  }

  InputPort* port_;

 private:
  /// Out-of-line so this header stays free of obs includes.
  void ProbeDeposit(size_t depth);

  const Director* owner_ = nullptr;
  const obs::ReceiverProbe* probe_ = nullptr;
  std::shared_ptr<const TokenType> expected_type_;
  std::string channel_name_;
  size_t capacity_ = 0;
  OverflowPolicy overflow_policy_ = OverflowPolicy::kUnbounded;
  uint64_t high_water_mark_ = 0;
};

/// \brief The plain FIFO receiver: every event is delivered alone, in arrival
/// order, as a window of size one. Used for trivial (non-windowed) inputs.
class QueueReceiver : public Receiver {
 public:
  explicit QueueReceiver(InputPort* port) : Receiver(port) {}

  Status Put(const CWEvent& event) override {
    queue_.push_back(event);
    RecordDepth();
    return Status::OK();
  }

  bool HasWindow() const override { return !queue_.empty(); }

  std::optional<Window> Get() override {
    if (queue_.empty()) {
      return std::nullopt;
    }
    Window w;
    w.events.push_back(std::move(queue_.front()));
    queue_.pop_front();
    return w;
  }

  size_t ReadyWindowCount() const override { return queue_.size(); }

 private:
  std::deque<CWEvent> queue_;
};

}  // namespace cwf

#endif  // CONFLUENCE_CORE_RECEIVER_H_

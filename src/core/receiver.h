// Receivers: the channel endpoints owned by the director.
//
// In Kepler/Ptolemy the receiving end of a channel is a receiver object
// supplied by the *director*, not by the actor — the director thereby
// decides whether communication is synchronous, buffered, windowed, etc.
// CONFLuEnCE introduces windowed receivers; STAFiLOS adds a scheduled
// variant that hands produced windows to the scheduler instead of the actor.

#ifndef CONFLUENCE_CORE_RECEIVER_H_
#define CONFLUENCE_CORE_RECEIVER_H_

#include <deque>
#include <optional>

#include "common/status.h"
#include "common/time.h"
#include "core/event.h"

namespace cwf {

class Director;
class InputPort;

/// \brief Abstract channel endpoint. Producers call Put(); the consuming
/// actor's fire() obtains windows via Get().
class Receiver {
 public:
  explicit Receiver(InputPort* port) : port_(port) {}
  virtual ~Receiver() = default;

  Receiver(const Receiver&) = delete;
  Receiver& operator=(const Receiver&) = delete;

  /// \brief Deposit one event arriving over the channel.
  virtual Status Put(const CWEvent& event) = 0;

  /// \brief Whether Get() would currently return a window.
  virtual bool HasWindow() const = 0;

  /// \brief Retrieve the next window, or nullopt when none is ready.
  virtual std::optional<Window> Get() = 0;

  /// \brief Windows ready for retrieval.
  virtual size_t ReadyWindowCount() const = 0;

  /// \brief Events buffered but not yet part of a produced window.
  virtual size_t PendingEventCount() const { return 0; }

  /// \brief Remove and return events that expired out of the window scope.
  virtual std::vector<CWEvent> DrainExpired() { return {}; }

  /// \brief Earliest timer this receiver needs (time-window formation
  /// timeouts); Timestamp::Max() when none.
  virtual Timestamp NextDeadline() const { return Timestamp::Max(); }

  /// \brief Fire any window whose formation timeout has passed.
  virtual void OnTimeout(Timestamp now) { (void)now; }

  /// \brief Force-close pending windows (end-of-stream).
  virtual void Flush() {}

  /// \brief The input port this receiver feeds.
  InputPort* port() const { return port_; }

  /// \brief The director whose initialization installed this receiver
  /// (receiver-ownership invariant; nullptr for boundary collectors built
  /// outside a director).
  const Director* owner() const { return owner_; }
  void set_owner(const Director* director) { owner_ = director; }

 protected:
  InputPort* port_;

 private:
  const Director* owner_ = nullptr;
};

/// \brief The plain FIFO receiver: every event is delivered alone, in arrival
/// order, as a window of size one. Used for trivial (non-windowed) inputs.
class QueueReceiver : public Receiver {
 public:
  explicit QueueReceiver(InputPort* port) : Receiver(port) {}

  Status Put(const CWEvent& event) override {
    queue_.push_back(event);
    return Status::OK();
  }

  bool HasWindow() const override { return !queue_.empty(); }

  std::optional<Window> Get() override {
    if (queue_.empty()) {
      return std::nullopt;
    }
    Window w;
    w.events.push_back(std::move(queue_.front()));
    queue_.pop_front();
    return w;
  }

  size_t ReadyWindowCount() const override { return queue_.size(); }

 private:
  std::deque<CWEvent> queue_;
};

}  // namespace cwf

#endif  // CONFLUENCE_CORE_RECEIVER_H_

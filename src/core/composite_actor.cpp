#include "core/composite_actor.h"

namespace cwf {

CompositeActor::CompositeActor(std::string name,
                               std::unique_ptr<Director> inner_director)
    : Actor(std::move(name)),
      inner_workflow_(this->name() + ".inner"),
      inner_director_(std::move(inner_director)) {
  CWF_CHECK_MSG(inner_director_ != nullptr,
                "CompositeActor needs an inner director");
}

CompositeActor::~CompositeActor() = default;

InputPort* CompositeActor::ExposeInput(const std::string& name,
                                       InputPort* inner_port,
                                       WindowSpec outer_spec) {
  CWF_CHECK_MSG(inner_port != nullptr, "null inner port");
  InputPort* outer = AddInputPort(name, std::move(outer_spec));
  // The boundary inherits the inner port's schema requirement so outer
  // channels are checked against it without a separate declaration.
  outer->set_required_schema(inner_port->required_schema());
  input_bindings_.push_back({outer, inner_port, nullptr});
  return outer;
}

OutputPort* CompositeActor::ExposeOutput(const std::string& name,
                                         OutputPort* inner_port) {
  CWF_CHECK_MSG(inner_port != nullptr, "null inner port");
  OutputPort* outer = AddOutputPort(name);
  outer->set_schema(inner_port->schema());
  OutputBinding binding;
  binding.outer = outer;
  binding.inner = inner_port;
  output_bindings_.push_back(std::move(binding));
  return outer;
}

Status CompositeActor::Initialize(ExecutionContext* ctx) {
  CWF_RETURN_NOT_OK(Actor::Initialize(ctx));
  // The inner director stamps events with the outer counters so sequence
  // numbers and wave identities stay globally consistent.
  inner_director_->AdoptContext(ctx);
  const CostModel* cost_model =
      ctx->director != nullptr ? ctx->director->cost_model() : nullptr;
  CWF_RETURN_NOT_OK(
      inner_director_->Initialize(&inner_workflow_, ctx->clock, cost_model));

  // Wire boundary inputs: an exposed inner port gets a receiver from the
  // inner director; outer events are deposited into it directly.
  for (InputBinding& binding : input_bindings_) {
    if (binding.inner->actor() == nullptr ||
        inner_workflow_.FindActor(binding.inner->actor()->name()) !=
            binding.inner->actor()) {
      return Status::InvalidArgument(
          "exposed input port does not belong to the inner workflow of " +
          name());
    }
    std::unique_ptr<Receiver> receiver =
        inner_director_->CreateReceiver(binding.inner);
    binding.inner_receiver =
        binding.inner->SetReceiver(binding.inner->ChannelCount(),
                                   std::move(receiver));
    binding.inner_receiver->set_owner(inner_director_.get());
  }

  // Wire boundary outputs: the exposed inner port broadcasts into a
  // collector drained after each inner run.
  for (OutputBinding& binding : output_bindings_) {
    if (binding.inner->actor() == nullptr ||
        inner_workflow_.FindActor(binding.inner->actor()->name()) !=
            binding.inner->actor()) {
      return Status::InvalidArgument(
          "exposed output port does not belong to the inner workflow of " +
          name());
    }
    binding.collector_port =
        std::make_unique<InputPort>(nullptr, "collector:" + binding.outer->name(),
                                    WindowSpec::SingleEvent());
    binding.collector =
        std::make_unique<CollectorReceiver>(binding.collector_port.get());
    binding.inner->AddRemoteReceiver(binding.collector.get());
  }
  return Status::OK();
}

Result<bool> CompositeActor::Prefire() {
  auto base = Actor::Prefire();
  if (!base.ok() || base.value()) {
    return base;
  }
  // No full set of outer windows — but fire anyway if any outer port has
  // data or an inner deadline expired (inner sub-workflows decide
  // themselves what they can process).
  for (const auto& port : input_ports()) {
    if (port->HasWindow()) {
      return true;
    }
  }
  return NextDeadline() <= ctx_->clock->Now();
}

Status CompositeActor::Fire() {
  // 1. Relay every ready outer window inward, event by event (windows formed
  //    at the boundary then re-form inside per the inner ports' specs).
  for (InputBinding& binding : input_bindings_) {
    while (binding.outer->HasWindow()) {
      std::optional<Window> w = binding.outer->Get();
      if (!w.has_value()) {
        break;
      }
      for (const CWEvent& event : w->events) {
        CWF_RETURN_NOT_OK(binding.inner_receiver->Put(event));
        binding.inner_receiver->NotePut();
      }
    }
  }

  // 2. Run the inner model of computation to quiescence at the current
  //    instant (inner directors do not advance the clock).
  CWF_RETURN_NOT_OK(inner_director_->Run(ctx_->clock->Now()));

  // 3. Relay whatever reached the boundary collectors outward; the outer
  //    director will stamp these as outputs of this composite firing.
  for (OutputBinding& binding : output_bindings_) {
    for (CWEvent& event : binding.collector->Drain()) {
      Send(binding.outer, std::move(event.token));
    }
  }
  return Status::OK();
}

Status CompositeActor::Wrapup() {
  CWF_RETURN_NOT_OK(inner_director_->Wrapup());
  return Actor::Wrapup();
}

InputPort* CompositeActor::BoundInnerInput(const InputPort* outer) const {
  for (const InputBinding& b : input_bindings_) {
    if (b.outer == outer) {
      return b.inner;
    }
  }
  return nullptr;
}

OutputPort* CompositeActor::BoundInnerOutput(const OutputPort* outer) const {
  for (const OutputBinding& b : output_bindings_) {
    if (b.outer == outer) {
      return b.inner;
    }
  }
  return nullptr;
}

}  // namespace cwf

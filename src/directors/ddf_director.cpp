#include "directors/ddf_director.h"

#include "core/wait_graph.h"

#include "stream/stream_source.h"

namespace cwf {

DDFDirector::DDFDirector(DDFOptions options) : options_(options) {}

std::unique_ptr<Receiver> DDFDirector::CreateReceiver(InputPort* port) {
  return std::make_unique<WindowedReceiver>(port, port->spec());
}

void DDFDirector::FireTimeouts(Timestamp now) {
  for (const auto& actor : workflow_->actors()) {
    for (const auto& port : actor->input_ports()) {
      for (size_t c = 0; c < port->ChannelCount(); ++c) {
        Receiver* r = port->receiver(c);
        if (r != nullptr && r->NextDeadline() <= now) {
          r->OnTimeout(now);
        }
      }
    }
  }
}

Result<size_t> DDFDirector::FireReadyOnce() {
  size_t fired = 0;
  for (const auto& actor : workflow_->actors()) {
    Actor* a = actor.get();
    if (IsHalted(a)) {
      continue;
    }
    auto ready = a->Prefire();
    if (!ready.ok()) {
      return ready.status();
    }
    if (!ready.value()) {
      continue;
    }
    a->BeginFiring();
    ScopedCurrentActor current_actor(a);
    const Timestamp fire_start = clock_->Now();
    const int64_t host_t0 =
        telemetry_.host_timing_active() ? obs::HostMonotonicMicros() : 0;
    CWF_RETURN_NOT_OK(a->Fire());
    size_t emitted = 0;
    CWF_RETURN_NOT_OK(FlushActorOutputs(a, &emitted));
    a->IncrementFirings();
    ++total_firings_;
    ++fired;
    auto cont = a->Postfire();
    if (!cont.ok()) {
      return cont.status();
    }
    obs::FiringRecord record;
    record.actor = a;
    record.consumed = a->firing_context().events_consumed;
    record.emitted = emitted;
    record.fire_host_us =
        host_t0 != 0 ? obs::HostMonotonicMicros() - host_t0 : 0;
    record.cost = record.fire_host_us;
    record.start = fire_start;
    record.end = clock_->Now();
    const FiringContext& fc = a->firing_context();
    record.wave = fc.valid ? &fc.wave : nullptr;
    telemetry_.RecordFiring(record);
    if (!cont.value()) {
      MarkHalted(a);
    }
  }
  return fired;
}

Status DDFDirector::Run(Timestamp until) {
  if (!initialized_) {
    return Status::FailedPrecondition("DDFDirector::Run before Initialize");
  }
  uint64_t fired_this_run = 0;
  for (;;) {
    FireTimeouts(clock_->Now());
    CWF_ASSIGN_OR_RETURN(size_t fired, FireReadyOnce());
    fired_this_run += fired;
    if (options_.max_firings_per_run != 0 &&
        fired_this_run > options_.max_firings_per_run) {
      return Status::ResourceExhausted(
          "DDF fired more than max_firings_per_run; livelock?");
    }
    if (fired > 0) {
      continue;
    }
    // Quiescent at the current instant. Advance virtual time to the next
    // scheduled wakeup if one exists within the horizon.
    const Timestamp next = NextWakeup();
    if (!clock_->is_virtual() || next == Timestamp::Max() || next > until ||
        next <= clock_->Now()) {
      break;
    }
    clock_->AdvanceTo(next);
  }
  return Status::OK();
}

}  // namespace cwf

#include "directors/ddf_director.h"

#include "stream/stream_source.h"

namespace cwf {

DDFDirector::DDFDirector(DDFOptions options) : options_(options) {}

std::unique_ptr<Receiver> DDFDirector::CreateReceiver(InputPort* port) {
  return std::make_unique<WindowedReceiver>(port, port->spec());
}

void DDFDirector::FireTimeouts(Timestamp now) {
  for (const auto& actor : workflow_->actors()) {
    for (const auto& port : actor->input_ports()) {
      for (size_t c = 0; c < port->ChannelCount(); ++c) {
        Receiver* r = port->receiver(c);
        if (r != nullptr && r->NextDeadline() <= now) {
          r->OnTimeout(now);
        }
      }
    }
  }
}

Result<size_t> DDFDirector::FireReadyOnce() {
  size_t fired = 0;
  for (const auto& actor : workflow_->actors()) {
    Actor* a = actor.get();
    if (IsHalted(a)) {
      continue;
    }
    auto ready = a->Prefire();
    if (!ready.ok()) {
      return ready.status();
    }
    if (!ready.value()) {
      continue;
    }
    a->BeginFiring();
    CWF_RETURN_NOT_OK(a->Fire());
    CWF_RETURN_NOT_OK(FlushActorOutputs(a));
    a->IncrementFirings();
    ++total_firings_;
    ++fired;
    auto cont = a->Postfire();
    if (!cont.ok()) {
      return cont.status();
    }
    if (!cont.value()) {
      MarkHalted(a);
    }
  }
  return fired;
}

Status DDFDirector::Run(Timestamp until) {
  if (!initialized_) {
    return Status::FailedPrecondition("DDFDirector::Run before Initialize");
  }
  uint64_t fired_this_run = 0;
  for (;;) {
    FireTimeouts(clock_->Now());
    CWF_ASSIGN_OR_RETURN(size_t fired, FireReadyOnce());
    fired_this_run += fired;
    if (options_.max_firings_per_run != 0 &&
        fired_this_run > options_.max_firings_per_run) {
      return Status::ResourceExhausted(
          "DDF fired more than max_firings_per_run; livelock?");
    }
    if (fired > 0) {
      continue;
    }
    // Quiescent at the current instant. Advance virtual time to the next
    // scheduled wakeup if one exists within the horizon.
    const Timestamp next = NextWakeup();
    if (!clock_->is_virtual() || next == Timestamp::Max() || next > until ||
        next <= clock_->Now()) {
      break;
    }
    clock_->AdvanceTo(next);
  }
  return Status::OK();
}

}  // namespace cwf

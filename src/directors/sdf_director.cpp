#include "directors/sdf_director.h"

#include <numeric>

namespace cwf {
namespace {

/// Exact rational for balance-equation solving.
struct Rational {
  int64_t num = 0;
  int64_t den = 1;

  static Rational Of(int64_t n, int64_t d) {
    CWF_CHECK(d != 0);
    if (d < 0) {
      n = -n;
      d = -d;
    }
    const int64_t g = std::gcd(n < 0 ? -n : n, d);
    return g == 0 ? Rational{0, 1} : Rational{n / g, d / g};
  }

  Rational Times(int64_t n, int64_t d) const {
    return Of(num * n, den * d);
  }

  bool Equals(const Rational& o) const {
    return num == o.num && den == o.den;
  }
};

}  // namespace

int64_t SDFDirector::ChannelDemand(const ChannelSpec& ch) {
  const WindowSpec& spec = ch.to->spec();
  const int64_t windows = ch.to->actor()->ConsumptionRate(ch.to);
  // One tuple-window of step S absorbs S fresh events in steady state
  // (consumption mode absorbs `size` per window instead).
  const int64_t per_window = spec.delete_used_events ? spec.size : spec.step;
  return windows * per_window;
}

Status SDFDirector::Initialize(Workflow* workflow, Clock* clock,
                               const CostModel* cost_model) {
  CWF_RETURN_NOT_OK(Director::Initialize(workflow, clock, cost_model));
  for (const ChannelSpec& ch : workflow->channels()) {
    if (ch.to->spec().unit != WindowUnit::kTuples) {
      return Status::InvalidArgument(
          "SDF requires tuple-based (constant-rate) windows; port " +
          ch.to->FullName() + " uses " + ch.to->spec().ToString() +
          " — use DDF for data-dependent rates");
    }
  }
  CWF_RETURN_NOT_OK(SolveBalanceEquations());
  return CompileSchedule();
}

std::unique_ptr<Receiver> SDFDirector::CreateReceiver(InputPort* port) {
  return std::make_unique<WindowedReceiver>(port, port->spec());
}

Status SDFDirector::SolveBalanceEquations() {
  repetitions_.clear();
  std::map<const Actor*, Rational> rates;

  // Propagate firing-rate ratios across each connected component.
  for (const auto& seed : workflow_->actors()) {
    if (rates.count(seed.get())) {
      continue;
    }
    rates[seed.get()] = Rational{1, 1};
    std::vector<const Actor*> frontier{seed.get()};
    while (!frontier.empty()) {
      const Actor* a = frontier.back();
      frontier.pop_back();
      for (const ChannelSpec& ch : workflow_->channels()) {
        const Actor* from = ch.from->actor();
        const Actor* to = ch.to->actor();
        if (from != a && to != a) {
          continue;
        }
        const int64_t produce = from->ProductionRate(ch.from);
        const int64_t consume = ChannelDemand(ch);
        if (produce <= 0 || consume <= 0) {
          return Status::InvalidArgument(
              "SDF rates must be positive on channel " +
              ch.from->FullName() + " -> " + ch.to->FullName());
        }
        // rate(from) * produce == rate(to) * consume
        const Actor* known = rates.count(from) ? from : to;
        const Actor* other = known == from ? to : from;
        Rational derived =
            known == from
                ? rates[from].Times(produce, consume)
                : rates[to].Times(consume, produce);
        auto it = rates.find(other);
        if (it == rates.end()) {
          rates[other] = derived;
          frontier.push_back(other);
        } else if (!it->second.Equals(derived)) {
          return Status::InvalidArgument(
              "inconsistent SDF rates around actor '" + other->name() + "'");
        }
      }
    }
  }

  // Scale each component to the smallest integer repetition vector.
  int64_t lcm_den = 1;
  for (const auto& [actor, r] : rates) {
    lcm_den = std::lcm(lcm_den, r.den);
  }
  int64_t gcd_num = 0;
  for (const auto& [actor, r] : rates) {
    gcd_num = std::gcd(gcd_num, r.num * (lcm_den / r.den));
  }
  if (gcd_num == 0) {
    gcd_num = 1;
  }
  for (const auto& [actor, r] : rates) {
    repetitions_[actor] = (r.num * (lcm_den / r.den)) / gcd_num;
  }
  return Status::OK();
}

Status SDFDirector::CompileSchedule() {
  schedule_.clear();
  // Symbolic token counts per channel.
  std::map<const ChannelSpec*, int64_t> tokens;
  std::map<const Actor*, int64_t> remaining;
  size_t total = 0;
  for (const auto& actor : workflow_->actors()) {
    const int64_t reps = repetitions_[actor.get()];
    remaining[actor.get()] = reps;
    total += static_cast<size_t>(reps);
  }
  while (schedule_.size() < total) {
    bool progressed = false;
    for (const auto& actor : workflow_->actors()) {
      Actor* a = actor.get();
      if (remaining[a] <= 0) {
        continue;
      }
      bool ready = true;
      for (const ChannelSpec& ch : workflow_->channels()) {
        if (ch.to->actor() == a && tokens[&ch] < ChannelDemand(ch)) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        continue;
      }
      for (const ChannelSpec& ch : workflow_->channels()) {
        if (ch.to->actor() == a) {
          tokens[&ch] -= ChannelDemand(ch);
        }
        if (ch.from->actor() == a) {
          tokens[&ch] += a->ProductionRate(ch.from);
        }
      }
      schedule_.push_back(a);
      --remaining[a];
      progressed = true;
    }
    if (!progressed) {
      return Status::FailedPrecondition(
          "SDF schedule deadlocked while compiling (insufficient tokens)");
    }
  }
  return Status::OK();
}

Result<int64_t> SDFDirector::Repetitions(const Actor* actor) const {
  auto it = repetitions_.find(actor);
  if (it == repetitions_.end()) {
    return Status::NotFound("actor '" + actor->name() +
                            "' not in SDF repetition vector");
  }
  return it->second;
}

Status SDFDirector::Run(Timestamp until) {
  if (!initialized_) {
    return Status::FailedPrecondition("SDFDirector::Run before Initialize");
  }
  (void)until;
  // Execute schedule iterations while at least one actor of the iteration
  // can actually fire (runtime data may run short of the static rates —
  // e.g. boundary inputs of a composite — in which case ready actors fire
  // and starved ones are skipped; a pass firing nothing terminates).
  for (;;) {
    size_t fired = 0;
    for (Actor* a : schedule_) {
      if (IsHalted(a)) {
        continue;
      }
      auto ready = a->Prefire();
      if (!ready.ok()) {
        return ready.status();
      }
      if (!ready.value()) {
        continue;
      }
      a->BeginFiring();
      CWF_RETURN_NOT_OK(a->Fire());
      CWF_RETURN_NOT_OK(FlushActorOutputs(a));
      a->IncrementFirings();
      ++fired;
      auto cont = a->Postfire();
      if (!cont.ok()) {
        return cont.status();
      }
      if (!cont.value()) {
        MarkHalted(a);
      }
    }
    if (fired == 0) {
      break;
    }
  }
  return Status::OK();
}

}  // namespace cwf

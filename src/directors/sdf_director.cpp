#include "directors/sdf_director.h"

#include "core/wait_graph.h"

#include <utility>

#include "analysis/sdf_balance.h"

namespace cwf {

Status SDFDirector::Initialize(Workflow* workflow, Clock* clock,
                               const CostModel* cost_model) {
  CWF_RETURN_NOT_OK(Director::Initialize(workflow, clock, cost_model));
  CWF_ASSIGN_OR_RETURN(analysis::SdfSolution solution,
                       analysis::SolveSdf(*workflow));
  repetitions_ = std::move(solution.repetitions);
  schedule_ = std::move(solution.schedule);
  return Status::OK();
}

std::unique_ptr<Receiver> SDFDirector::CreateReceiver(InputPort* port) {
  return std::make_unique<WindowedReceiver>(port, port->spec());
}

Result<int64_t> SDFDirector::Repetitions(const Actor* actor) const {
  auto it = repetitions_.find(actor);
  if (it == repetitions_.end()) {
    return Status::NotFound("actor '" + actor->name() +
                            "' not in SDF repetition vector");
  }
  return it->second;
}

Status SDFDirector::Run(Timestamp until) {
  if (!initialized_) {
    return Status::FailedPrecondition("SDFDirector::Run before Initialize");
  }
  (void)until;
  // Execute schedule iterations while at least one actor of the iteration
  // can actually fire (runtime data may run short of the static rates —
  // e.g. boundary inputs of a composite — in which case ready actors fire
  // and starved ones are skipped; a pass firing nothing terminates).
  for (;;) {
    size_t fired = 0;
    for (Actor* a : schedule_) {
      if (IsHalted(a)) {
        continue;
      }
      auto ready = a->Prefire();
      if (!ready.ok()) {
        return ready.status();
      }
      if (!ready.value()) {
        continue;
      }
      a->BeginFiring();
      ScopedCurrentActor current_actor(a);
      const Timestamp fire_start = clock_->Now();
      const int64_t host_t0 =
          telemetry_.host_timing_active() ? obs::HostMonotonicMicros() : 0;
      CWF_RETURN_NOT_OK(a->Fire());
      size_t emitted = 0;
      CWF_RETURN_NOT_OK(FlushActorOutputs(a, &emitted));
      a->IncrementFirings();
      ++fired;
      auto cont = a->Postfire();
      if (!cont.ok()) {
        return cont.status();
      }
      obs::FiringRecord record;
      record.actor = a;
      record.consumed = a->firing_context().events_consumed;
      record.emitted = emitted;
      record.fire_host_us =
          host_t0 != 0 ? obs::HostMonotonicMicros() - host_t0 : 0;
      record.cost = record.fire_host_us;
      record.start = fire_start;
      record.end = clock_->Now();
      const FiringContext& fc = a->firing_context();
      record.wave = fc.valid ? &fc.wave : nullptr;
      telemetry_.RecordFiring(record);
      if (!cont.value()) {
        MarkHalted(a);
      }
    }
    if (fired == 0) {
      break;
    }
  }
  return Status::OK();
}

}  // namespace cwf

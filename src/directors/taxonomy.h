// The director taxonomy of the paper's Table 1: models of computation found
// in Kepler (first group) and PtolemyII (second group), plus CONFLuEnCE's
// PNCWF and STAFiLOS's SCWF. Exposed as a static registry so the table can
// be regenerated programmatically (bench_table1_taxonomy) and so tooling can
// reason about director capabilities.

#ifndef CONFLUENCE_DIRECTORS_TAXONOMY_H_
#define CONFLUENCE_DIRECTORS_TAXONOMY_H_

#include <string>
#include <vector>

namespace cwf {

/// \brief One row of the taxonomy.
struct DirectorInfo {
  std::string name;
  std::string group;                ///< "Kepler", "PtolemyII", "CONFLuEnCE"
  std::string actor_interaction;    ///< push/pull style
  std::string computation_driver;   ///< what drives computation
  std::string scheduling;           ///< scheduling discipline
  std::string time_based;           ///< notion of time
  std::string qos;                  ///< QoS support
  bool implemented_here = false;    ///< has a C++ implementation in src/
};

/// \brief All taxonomy rows, in the paper's order.
const std::vector<DirectorInfo>& DirectorTaxonomy();

/// \brief Render the taxonomy as an aligned text table.
std::string RenderDirectorTaxonomy();

}  // namespace cwf

#endif  // CONFLUENCE_DIRECTORS_TAXONOMY_H_

// The Scheduled Continuous Workflow (SCWF) director.
//
// "The SCWF director is the main component that interacts with the workflow
// model and the management modules. It is responsible for initializing the
// actors, ports, receivers and the scheduler, as well as transitioning the
// workflow model through the various execution stages within each
// iteration. The SCWF director is schedule-independent: a scheduling policy
// implementation, which extends the Abstract Scheduler, is being enacted by
// it."
//
// Per director iteration: getNextActor() → (for internal/output actors)
// dequeue an event from the scheduler's per-actor queue onto the actor's
// input-port buffer → prefire → fire (with cost timers running) → outputs
// flow through TM windowed receivers back into the scheduler → postfire and
// statistics/state updates. getNextActor() returning null ends the
// iteration: the scheduler performs maintenance (re-quantification, period
// release, priority refresh) and the cycle restarts.

#ifndef CONFLUENCE_DIRECTORS_SCWF_DIRECTOR_H_
#define CONFLUENCE_DIRECTORS_SCWF_DIRECTOR_H_

#include <memory>
#include <vector>

#include "core/director.h"
#include "stafilos/abstract_scheduler.h"
#include "stream/stream_source.h"

namespace cwf {

class SCWFDirector : public Director, public SchedulerHost {
 public:
  /// \brief The policy is plugged in at construction (plug-and-play).
  explicit SCWFDirector(std::unique_ptr<AbstractScheduler> scheduler);

  const char* kind() const override { return "SCWF"; }

  Status Initialize(Workflow* workflow, Clock* clock,
                    const CostModel* cost_model) override;

  std::unique_ptr<Receiver> CreateReceiver(InputPort* port) override;

  Status Run(Timestamp until) override;

  bool HasPendingWork() const override {
    return scheduler_->TotalQueuedEvents() > 0 ||
           NextWakeup() <= clock_->Now();
  }

  // ---- SchedulerHost ----
  Timestamp Now() const override { return clock_->Now(); }
  bool SourceHasData(const Actor* actor) const override;
  ActorStatistics* statistics() override { return &stats_; }
  /// Arrival notifications route through telemetry so the statistics module
  /// (a registered observer) and the metrics layer see the same stream.
  void NotifyEventsArrived(const Actor* actor, size_t n,
                           Timestamp now) override {
    telemetry_.RecordArrival(actor, n, now);
  }

  AbstractScheduler* scheduler() { return scheduler_.get(); }
  const ActorStatistics& stats() const { return stats_; }

  uint64_t total_firings() const { return total_firings_; }
  uint64_t director_iterations() const { return director_iterations_; }

 private:
  /// Route a produced window into the scheduler (TM receiver callback).
  void OnWindowReady(TMWindowedReceiver* receiver, Window window);

  /// Close timed windows whose formation deadline passed; run actors whose
  /// internal deadline passed (composites with pending inner timeouts).
  Status FireTimeouts(Timestamp now);

  /// Deliver queued windows and fire one actor; updates statistics and
  /// notifies the scheduler.
  Status DispatchActor(Actor* actor);

  std::unique_ptr<AbstractScheduler> scheduler_;
  ActorStatistics stats_;
  std::vector<Receiver*> all_receivers_;
  uint64_t total_firings_ = 0;
  uint64_t director_iterations_ = 0;
};

}  // namespace cwf

#endif  // CONFLUENCE_DIRECTORS_SCWF_DIRECTOR_H_

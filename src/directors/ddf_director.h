// Dynamic Dataflow (DDF) director.
//
// Fires any actor whose prefire() is satisfied until the workflow
// quiesces — the model of computation the paper assigns to sub-workflows
// whose consumption/production rates are fluid (decision points, variable
// production). Data-driven, no static schedule.

#ifndef CONFLUENCE_DIRECTORS_DDF_DIRECTOR_H_
#define CONFLUENCE_DIRECTORS_DDF_DIRECTOR_H_

#include <memory>

#include "core/director.h"
#include "window/windowed_receiver.h"

namespace cwf {

/// \brief Options for the DDF director.
struct DDFOptions {
  /// Safety valve against livelock in misbehaving workflows: the maximum
  /// firings per Run() call. 0 disables the limit.
  uint64_t max_firings_per_run = 0;
};

class DDFDirector : public Director {
 public:
  explicit DDFDirector(DDFOptions options = {});

  const char* kind() const override { return "DDF"; }

  std::unique_ptr<Receiver> CreateReceiver(InputPort* port) override;

  /// \brief Fire ready actors until quiescent. Standing alone on a virtual
  /// clock, advances time to the next source arrival / window timeout up to
  /// `until`; as an inner director (invoked with until == now) it runs a
  /// single quiescence pass.
  Status Run(Timestamp until) override;

  uint64_t total_firings() const { return total_firings_; }

 protected:
  /// \brief One pass over all actors; fires each ready one once. Returns
  /// the number of firings.
  Result<size_t> FireReadyOnce();

  /// \brief Close any timed windows whose deadline passed.
  void FireTimeouts(Timestamp now);

  DDFOptions options_;
  uint64_t total_firings_ = 0;
};

}  // namespace cwf

#endif  // CONFLUENCE_DIRECTORS_DDF_DIRECTOR_H_

#include "directors/pncwf_director.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

/// Receiver for OS-thread mode: every operation locks the *consuming*
/// actor's synchronization domain and put() wakes its thread — the
/// "blocking read" of the PNCWF execution model. With a planner-assigned
/// capacity the put side blocks too: a producer thread at a full queue
/// waits until the consumer drains (backpressure), turning the paper's
/// unbounded-deque overload regime into a bounded pipeline.
class BlockingWindowedReceiver : public WindowedReceiver {
 public:
  BlockingWindowedReceiver(InputPort* port, WindowSpec spec,
                           OrderedRecursiveMutex* mutex,
                           std::condition_variable_any* cv,
                           const std::atomic<bool>* stop,
                           ChannelWaitGraph* wait_graph)
      : WindowedReceiver(port, std::move(spec)),
        mutex_(mutex),
        cv_(cv),
        stop_(stop),
        wait_graph_(wait_graph) {}

  // ts-allowlist: condition-variable wait — blocking-put backpressure parks
  // the producer on the consumer domain's cv via std::unique_lock, which
  // the thread-safety analysis cannot model.
  Status Put(const CWEvent& event) override CWF_NO_THREAD_SAFETY_ANALYSIS {
    Status st;
    {
      std::unique_lock<OrderedRecursiveMutex> lock(*mutex_);
      // Blocking-put backpressure. Timed waits keep the producer
      // responsive to shutdown; after stop the deposit proceeds regardless
      // (an event the producer already committed to must not be lost), so
      // the capacity invariant is a steady-state property.
      if (overflow_policy() == OverflowPolicy::kBlock && AtCapacity() &&
          !stop_->load()) {
        // Register the put edge so the watchdog sees this producer parked
        // against a full channel (no-op for threads outside a firing).
        const Actor* waiter = ScopedCurrentActor::Current();
        wait_graph_->OnPutBlocked(waiter, this);
        // Charge the wait to the channel's blocked-time counter — the
        // backpressure share of end-to-end latency.
        const int64_t blocked_from = obs::HostMonotonicMicros();
        while (overflow_policy() == OverflowPolicy::kBlock && AtCapacity() &&
               !stop_->load()) {
          // Timed poll: the enclosing while re-checks capacity, the stop
          // flag and the overflow policy on every tick.
          // cwf-tidy-allow(cwf-unbounded-wait): deliberate re-checking poll
          cv_->wait_for(lock, std::chrono::milliseconds(1));
        }
        wait_graph_->OnPutUnblocked(waiter);
        const int64_t blocked_us = obs::HostMonotonicMicros() - blocked_from;
        NoteBlockedMicros(blocked_us);
#ifdef CWF_OBS_ENABLED
        // The wait was timed above; credit it to the blocked phase without
        // a scope (RecordExternal never nests).
        if (probe() != nullptr) {
          obs::Profiler::RecordExternal(probe()->blocked_site,
                                        blocked_us * 1000);
        }
#endif
      }
      st = WindowedReceiver::Put(event);
    }
    cv_->notify_all();
    return st;
  }

  bool HasWindow() const override {
    ScopedLock lock(*mutex_);
    return WindowedReceiver::HasWindow();
  }

  std::optional<Window> Get() override {
    std::optional<Window> w;
    {
      ScopedLock lock(*mutex_);
      w = WindowedReceiver::Get();
    }
    // A drained slot may unblock a producer waiting in Put().
    cv_->notify_all();
    return w;
  }

  size_t ReadyWindowCount() const override {
    ScopedLock lock(*mutex_);
    return WindowedReceiver::ReadyWindowCount();
  }

  size_t PendingEventCount() const override {
    ScopedLock lock(*mutex_);
    return WindowedReceiver::PendingEventCount();
  }

  std::vector<CWEvent> DrainExpired() override {
    ScopedLock lock(*mutex_);
    return WindowedReceiver::DrainExpired();
  }

  Timestamp NextDeadline() const override {
    ScopedLock lock(*mutex_);
    return WindowedReceiver::NextDeadline();
  }

  void OnTimeout(Timestamp now) override {
    {
      ScopedLock lock(*mutex_);
      WindowedReceiver::OnTimeout(now);
    }
    cv_->notify_all();
  }

  void Flush() override {
    {
      ScopedLock lock(*mutex_);
      WindowedReceiver::Flush();
    }
    cv_->notify_all();
  }

 private:
  OrderedRecursiveMutex* mutex_;
  std::condition_variable_any* cv_;
  const std::atomic<bool>* stop_;
  ChannelWaitGraph* wait_graph_;
};

}  // namespace

PNCWFDirector::PNCWFDirector(PNCWFOptions options) : options_(options) {}

PNCWFDirector::~PNCWFDirector() {
  stop_ = true;
  for (auto& [actor, sync] : syncs_) {
    sync->cv.notify_all();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

Status PNCWFDirector::Initialize(Workflow* workflow, Clock* clock,
                                 const CostModel* cost_model) {
  if (clock != nullptr) {
    if (options_.mode == PNCWFMode::kSimulatedThreads) {
      if (!clock->is_virtual()) {
        return Status::InvalidArgument(
            "simulated-thread PNCWF requires a virtual clock");
      }
      if (cost_model == nullptr) {
        return Status::InvalidArgument(
            "simulated-thread PNCWF requires a cost model");
      }
    } else if (clock->is_virtual()) {
      return Status::InvalidArgument(
          "OS-thread PNCWF requires a real clock");
    }
  }
  // Build the per-actor synchronization domains before receivers are
  // created (CreateReceiver consults them in OS-thread mode).
  syncs_.clear();
  if (workflow != nullptr) {
    for (const auto& actor : workflow->actors()) {
      syncs_[actor.get()] = std::make_unique<ActorSync>();
    }
  }
  stop_ = false;
  busy_ = 0;
  total_firings_ = 0;
  context_switches_ = 0;
  CWF_RETURN_NOT_OK(Director::Initialize(workflow, clock, cost_model));
  // Teach the wait graph this workflow's channel topology so blocking
  // receivers (which only know their consumer) resolve to full wait edges.
  wait_graph_.Reset();
  for (const ChannelSpec& ch : workflow_->channels()) {
    const Receiver* r = ch.to->receiver(ch.to_channel);
    if (r == nullptr) {
      continue;
    }
    std::string name = ch.from->FullName() + " -> " + ch.to->FullName() +
                       "[" + std::to_string(ch.to_channel) + "]";
    wait_graph_.RegisterChannel(r, ch.from->actor(), ch.to->actor(),
                                std::move(name));
  }
  return Status::OK();
}

std::unique_ptr<Receiver> PNCWFDirector::CreateReceiver(InputPort* port) {
  if (options_.mode == PNCWFMode::kSimulatedThreads) {
    return std::make_unique<WindowedReceiver>(port, port->spec());
  }
  ActorSync* sync = syncs_.at(port->actor()).get();
  return std::make_unique<BlockingWindowedReceiver>(
      port, port->spec(), &sync->mutex, &sync->cv, &stop_, &wait_graph_);
}

bool PNCWFDirector::DownstreamAtCapacity(const Actor* actor) const {
  for (const auto& port : actor->output_ports()) {
    for (const Receiver* r : port->remote_receivers()) {
      if (r->overflow_policy() == OverflowPolicy::kBlock && r->AtCapacity()) {
        return true;
      }
    }
  }
  return false;
}

Result<Duration> PNCWFDirector::FireOnce(Actor* actor, size_t* consumed,
                                         size_t* emitted) {
  // Attribute blocking Puts this firing performs to their producer: the
  // downstream receiver only knows its consumer, the wait graph needs the
  // producing end of the edge.
  ScopedCurrentActor current_actor(actor);
#ifdef CWF_OBS_ENABLED
  const obs::WorkflowTelemetry::ActorProfileSites sites =
      obs::ProfilingEnabled() ? telemetry_.ProfileSitesFor(actor)
                              : obs::WorkflowTelemetry::ActorProfileSites{};
#endif
  const bool timed = telemetry_.host_timing_active();
  actor->BeginFiring();
  const Timestamp fire_start = clock_->Now();
  const int64_t host_t0 = timed ? obs::HostMonotonicMicros() : 0;
  const auto host_start = std::chrono::steady_clock::now();
  {
    CWF_PROFILE_SCOPE(sites.fire);
    CWF_RETURN_NOT_OK(actor->Fire());
    CWF_RETURN_NOT_OK(FlushActorOutputs(actor, emitted));
  }
  *consumed = actor->firing_context().events_consumed;
  actor->IncrementFirings();
  total_firings_.fetch_add(1, std::memory_order_relaxed);
  Duration cost;
  if (clock_->is_virtual()) {
    cost = cost_model_->FiringCost(actor->name(), *consumed, *emitted) +
           cost_model_->sync_per_event_overhead *
               static_cast<Duration>(*consumed + *emitted);
  } else {
    cost = std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - host_start)
               .count();
  }
  const int64_t host_t1 = timed ? obs::HostMonotonicMicros() : 0;
  auto cont = [&] {
    CWF_PROFILE_SCOPE(sites.postfire);
    return actor->Postfire();
  }();
  if (!cont.ok()) {
    return cont.status();
  }
  {
    obs::FiringRecord record;
    record.actor = actor;
    record.cost = cost;
    record.consumed = *consumed;
    record.emitted = *emitted;
    record.fire_host_us = timed ? host_t1 - host_t0 : 0;
    record.postfire_host_us =
        timed ? obs::HostMonotonicMicros() - host_t1 : 0;
    record.start = fire_start;
    // The simulated caller advances the virtual clock by `cost` after this
    // returns; stamp the span end where it will land.
    record.end = clock_->is_virtual() ? fire_start + cost : clock_->Now();
    const FiringContext& fc = actor->firing_context();
    record.wave = fc.valid ? &fc.wave : nullptr;
    telemetry_.RecordFiring(record);
  }
  if (!cont.value()) {
    MarkHalted(actor);
  }
  return cost;
}

void PNCWFDirector::FireReceiverTimeouts(Timestamp now) {
  for (const auto& actor : workflow_->actors()) {
    for (const auto& port : actor->input_ports()) {
      for (size_t c = 0; c < port->ChannelCount(); ++c) {
        Receiver* r = port->receiver(c);
        if (r != nullptr && r->NextDeadline() <= now) {
          r->OnTimeout(now);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Simulated-thread mode: deterministic round-robin preemption on the
// virtual clock.
// ---------------------------------------------------------------------------

Status PNCWFDirector::RunSimulated(Timestamp until) {
#ifdef CWF_OBS_ENABLED
  static const obs::ProfileSite* dispatch_site = obs::Profiler::Global().Site(
      "<director>", obs::ProfilePhase::kSchedulerDispatch);
#endif
  CWF_PROFILE_WALL_SCOPE();
  const auto& actors = workflow_->actors();
  const size_t n = actors.size();
  size_t cursor = 0;
  for (;;) {
    if (clock_->Now() > until) {
      break;
    }

    // The simulated OS picks the next runnable "thread" round-robin. A
    // "thread" whose downstream queue is at its planned capacity is treated
    // as blocked in put() — the single-threaded simulation of the OS-mode
    // blocking-put backpressure.
    Actor* chosen = nullptr;
    {
      CWF_PROFILE_SCOPE(dispatch_site);
      FireReceiverTimeouts(clock_->Now());
      for (size_t k = 0; k < n; ++k) {
        Actor* a = actors[(cursor + k) % n].get();
        if (IsHalted(a)) {
          continue;
        }
        if (DownstreamAtCapacity(a)) {
          telemetry_.RecordBackpressureDeferral(a);
          continue;
        }
        auto pf = a->Prefire();
        if (!pf.ok()) {
          return pf.status();
        }
        if (pf.value()) {
          chosen = a;
          cursor = (cursor + k + 1) % n;
          break;
        }
      }
    }
    if (chosen == nullptr) {
      const Timestamp next = NextWakeup();
      if (next != Timestamp::Max() && next > until) {
        break;  // remaining work lies beyond the horizon
      }
      if (next != Timestamp::Max() && next > clock_->Now()) {
        clock_->AdvanceTo(next);
        continue;
      }
      // Nothing can fire and no future instant changes that: either the
      // workflow drained, or the blocked "threads" form an artificial
      // deadlock. Rebuild their wait edges from scheduler state and let
      // the shared evaluator decide (the simulated twin of the OS-mode
      // watchdog, deterministic by construction).
      std::vector<WaitNode> blocked;
      for (const auto& entry : actors) {
        Actor* a = entry.get();
        if (IsHalted(a)) {
          continue;
        }
        auto pf = a->Prefire();
        if (!pf.ok()) {
          return pf.status();
        }
        WaitNode node;
        node.actor = a;
        node.actor_name = a->name();
        if (pf.value()) {
          if (!DownstreamAtCapacity(a)) {
            continue;  // defensive: a fireable actor should have been chosen
          }
          // Parked in put() against the first full planned queue.
          node.put_blocked = true;
          for (const auto& port : a->output_ports()) {
            for (Receiver* r : port->remote_receivers()) {
              if (r->overflow_policy() == OverflowPolicy::kBlock &&
                  r->AtCapacity()) {
                WaitTarget target;
                target.actor = r->port()->actor();
                target.receiver = r;
                target.channel = wait_graph_.ChannelName(r);
                target.capacity = r->capacity();
                node.put_targets.push_back(std::move(target));
                break;
              }
            }
            if (!node.put_targets.empty()) {
              break;
            }
          }
          blocked.push_back(std::move(node));
          continue;
        }
        node.put_blocked = false;
        node.get_ports = BuildGetWaits(a);
        if (!node.get_ports.empty()) {
          blocked.push_back(std::move(node));
        }
      }
      const DeadlockReport report = EvaluateWaitGraph(blocked);
      if (!report.empty()) {
        return ConfirmDeadlock(report);
      }
      break;
    }

    // Context switch to the chosen thread, then let it run until it blocks
    // (no input) or its OS time slice expires.
#ifdef CWF_OBS_ENABLED
    const obs::WorkflowTelemetry::ActorProfileSites chosen_sites =
        obs::ProfilingEnabled() ? telemetry_.ProfileSitesFor(chosen)
                                : obs::WorkflowTelemetry::ActorProfileSites{};
#endif
    clock_->AdvanceBy(cost_model_->context_switch_overhead);
    ++context_switches_;
    Duration slice = cost_model_->os_time_slice;
    while (slice > 0 && clock_->Now() <= until) {
      if (DownstreamAtCapacity(chosen)) {
        telemetry_.RecordBackpressureDeferral(chosen);
        break;  // blocks in put() against a full planned queue
      }
      auto pf = [&] {
        CWF_PROFILE_SCOPE(chosen_sites.prefire);
        return chosen->Prefire();
      }();
      if (!pf.ok()) {
        return pf.status();
      }
      if (!pf.value()) {
        break;  // blocks on empty input
      }
      size_t consumed = 0;
      size_t emitted = 0;
      auto cost = FireOnce(chosen, &consumed, &emitted);
      if (!cost.ok()) {
        return cost.status();
      }
      clock_->AdvanceBy(cost.value());
      slice -= cost.value();
      if (IsHalted(chosen)) {
        break;
      }
      FireReceiverTimeouts(clock_->Now());
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// OS-thread mode: one thread per actor, blocking windowed receivers.
// ---------------------------------------------------------------------------

// ts-allowlist: condition-variable wait — the blocked-on-empty-input sleep
// releases/reacquires the actor's sync mutex through cv.wait_for() on a
// std::unique_lock, which the thread-safety analysis cannot model.
void PNCWFDirector::ActorThreadBody(Actor* actor)
    CWF_NO_THREAD_SAFETY_ANALYSIS {
  ActorSync* sync = syncs_.at(actor).get();
#ifdef CWF_OBS_ENABLED
  // One lookup per thread lifetime; scopes stay inert until profiling is
  // enabled at runtime.
  const obs::WorkflowTelemetry::ActorProfileSites sites =
      telemetry_.ProfileSitesFor(actor);
#endif
  for (;;) {
    {
      std::unique_lock<OrderedRecursiveMutex> lock(sync->mutex);
      for (;;) {
        if (stop_.load()) {
          // Drain what is ready, then exit.
          auto pf = actor->Prefire();
          if (!pf.ok() || !pf.value()) {
            wait_graph_.OnGetUnblocked(actor);
            return;
          }
          break;
        }
        auto pf = [&] {
          CWF_PROFILE_SCOPE(sites.prefire);
          return actor->Prefire();
        }();
        if (!pf.ok()) {
          wait_graph_.OnGetUnblocked(actor);
          return;
        }
        if (pf.value()) {
          break;
        }
        // Blocked on empty inputs: honour pending window-formation
        // timeouts, then sleep until data, a deadline, or a poll tick.
        Timestamp deadline = Timestamp::Max();
        for (const auto& port : actor->input_ports()) {
          for (size_t c = 0; c < port->ChannelCount(); ++c) {
            Receiver* r = port->receiver(c);
            if (r == nullptr) {
              continue;
            }
            if (r->NextDeadline() <= clock_->Now()) {
              r->OnTimeout(clock_->Now());
            } else if (r->NextDeadline() < deadline) {
              deadline = r->NextDeadline();
            }
          }
        }
        auto again = [&] {
          CWF_PROFILE_SCOPE(sites.prefire);
          return actor->Prefire();
        }();
        if (!again.ok()) {
          wait_graph_.OnGetUnblocked(actor);
          return;
        }
        if (again.value()) {
          break;
        }
        // Input-starved: publish the get edges (one alternative list per
        // windowless port) for the watchdog. Re-registration each lap is
        // an upsert — it refreshes the edges without bumping the unblock
        // epoch, so a stable candidate stays stable.
        wait_graph_.OnGetBlocked(actor, BuildGetWaits(actor));
        Duration wait = options_.poll_interval;
        if (deadline != Timestamp::Max()) {
          wait = std::min<Duration>(
              wait * 10, std::max<Duration>(deadline - clock_->Now(), 100));
        }
        // Timed poll: the enclosing for re-runs the prefire predicate and
        // the stop flag after every wakeup.
        // cwf-tidy-allow(cwf-unbounded-wait): deliberate re-checking poll
        sync->cv.wait_for(lock, std::chrono::microseconds(wait));
      }
      wait_graph_.OnGetUnblocked(actor);
    }
    busy_.fetch_add(1);
    size_t consumed = 0;
    size_t emitted = 0;
    auto cost = FireOnce(actor, &consumed, &emitted);
    busy_.fetch_sub(1);
    if (!cost.ok()) {
      CWF_CLOG(kError, "pncwf") << "actor '" << actor->name()
                      << "' failed: " << cost.status().ToString();
      return;
    }
    if (IsHalted(actor)) {
      return;
    }
  }
}

void PNCWFDirector::SourceThreadBody(Actor* actor) {
  auto* src = dynamic_cast<TimedSource*>(actor);
  for (;;) {
    if (stop_.load()) {
      return;
    }
    const Timestamp next =
        src != nullptr ? src->NextPendingArrival() : Timestamp(0);
    const Timestamp now = clock_->Now();
    if (next == Timestamp::Max()) {
      if (src != nullptr && src->Exhausted()) {
        return;
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.poll_interval));
      continue;
    }
    if (next > now) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          std::min<Duration>(next - now, options_.poll_interval * 10)));
      continue;
    }
    busy_.fetch_add(1);
    size_t consumed = 0;
    size_t emitted = 0;
    auto cost = FireOnce(actor, &consumed, &emitted);
    busy_.fetch_sub(1);
    if (!cost.ok()) {
      CWF_CLOG(kError, "pncwf") << "source '" << actor->name()
                      << "' failed: " << cost.status().ToString();
      return;
    }
    if (IsHalted(actor)) {
      return;
    }
  }
}

std::vector<std::vector<WaitTarget>> PNCWFDirector::BuildGetWaits(
    const Actor* actor) const {
  std::vector<std::vector<WaitTarget>> ports;
  for (const auto& port : actor->input_ports()) {
    if (port->ChannelCount() == 0 || port->HasWindow()) {
      continue;
    }
    bool timer_pending = false;
    std::vector<WaitTarget> alternatives;
    for (size_t c = 0; c < port->ChannelCount(); ++c) {
      const Receiver* r = port->receiver(c);
      if (r == nullptr) {
        continue;
      }
      if (r->NextDeadline() != Timestamp::Max()) {
        // A registered window-formation timer will close a window here
        // without any producer progress: the port is not deadlock-prone.
        timer_pending = true;
        break;
      }
      WaitTarget target;
      target.actor = wait_graph_.ProducerOf(r);
      target.receiver = r;
      target.channel = wait_graph_.ChannelName(r);
      target.capacity = r->capacity();
      if (target.actor != nullptr) {
        alternatives.push_back(std::move(target));
      }
    }
    if (timer_pending || alternatives.empty()) {
      continue;  // satisfied without modeled producer progress: treat live
    }
    ports.push_back(std::move(alternatives));
  }
  return ports;
}

bool PNCWFDirector::StillBlocked(const WaitNode& node) const {
  if (node.put_blocked) {
    if (node.put_targets.empty()) {
      return false;
    }
    for (const WaitTarget& target : node.put_targets) {
      if (target.receiver == nullptr ||
          target.receiver->overflow_policy() != OverflowPolicy::kBlock ||
          !target.receiver->AtCapacity()) {
        return false;
      }
    }
    return true;
  }
  if (node.get_ports.empty()) {
    return false;
  }
  for (const auto& port : node.get_ports) {
    for (const WaitTarget& target : port) {
      if (target.receiver == nullptr || target.receiver->HasWindow() ||
          target.receiver->NextDeadline() != Timestamp::Max()) {
        return false;
      }
    }
  }
  return true;
}

Status PNCWFDirector::ConfirmDeadlock(const DeadlockReport& report) {
  const std::string rendered = report.ToString();
  CWF_CLOG(kError, "pncwf") << "CWF6005: " << rendered;
  wait_graph_.InvokeReportHandler(rendered);
  // Cross-validation with the static liveness pass: Initialize() stamped
  // the installed plan's verdict; a confirmed runtime deadlock under a
  // provably-live plan means the engine violated the model the proof was
  // built on — an invariant failure, not a capacity-planning error.
  CWF_ASSERT_MSG(installed_plan_liveness_ != "provably-live",
                 "runtime artificial deadlock on a statically provably-live "
                 "capacity plan: "
                     << rendered);
  return Status::FailedPrecondition("CWF6005: " + rendered);
}

bool PNCWFDirector::AllQuiescent() const {
  if (busy_.load() != 0) {
    return false;
  }
  for (const auto& actor : workflow_->actors()) {
    if (const auto* src = dynamic_cast<const TimedSource*>(actor.get())) {
      if (!src->Exhausted()) {
        return false;
      }
    }
    for (const auto& port : actor->input_ports()) {
      if (port->ReadyWindowCount() > 0) {
        return false;
      }
      // A pending window-formation deadline is future work: the blocked
      // reader will still close and consume that window.
      for (size_t c = 0; c < port->ChannelCount(); ++c) {
        const Receiver* r = port->receiver(c);
        if (r != nullptr && r->NextDeadline() != Timestamp::Max()) {
          return false;
        }
      }
    }
  }
  return true;
}

Status PNCWFDirector::RunThreaded(Timestamp until) {
  CWF_PROFILE_WALL_SCOPE();
  threads_.clear();
  stop_ = false;
  for (const auto& actor : workflow_->actors()) {
    Actor* a = actor.get();
    if (a->IsSource()) {
      threads_.emplace_back([this, a] { SourceThreadBody(a); });
    } else {
      threads_.emplace_back([this, a] { ActorThreadBody(a); });
    }
  }
  int quiet = 0;
  // Artificial-deadlock watchdog state: a candidate dead set must stay
  // identical (same actors, same unblock epochs) across this many polls
  // before it is revalidated against live receiver state and reported.
  std::vector<std::pair<const Actor*, uint64_t>> candidate;
  int stable_polls = 0;
  Status deadlock_status = Status::OK();
  for (;;) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.poll_interval));
    if (until != Timestamp::Max() && clock_->Now() >= until) {
      break;
    }
    if (AllQuiescent()) {
      if (++quiet >= options_.quiet_polls_to_drain) {
        break;
      }
    } else {
      quiet = 0;
    }

    // Watchdog: evaluate the wait graph over a lock-free copy. A cycle of
    // blocked actors never wakes itself, so an actual deadlock is a stable
    // candidate; transient backpressure churns epochs and resets it.
    std::vector<WaitNode> snapshot = wait_graph_.Snapshot();
    const DeadlockReport report = EvaluateWaitGraph(snapshot);
    if (report.empty()) {
      candidate.clear();
      stable_polls = 0;
      continue;
    }
    std::set<const Actor*> dead(report.dead.begin(), report.dead.end());
    std::vector<std::pair<const Actor*, uint64_t>> signature;
    for (const WaitNode& node : snapshot) {
      if (dead.count(node.actor) > 0) {
        signature.emplace_back(node.actor, node.epoch);
      }
    }
    std::sort(signature.begin(), signature.end());
    if (signature == candidate) {
      ++stable_polls;
    } else {
      candidate = std::move(signature);
      stable_polls = 1;
    }
    if (stable_polls < 3) {
      continue;
    }
    // Confirm against the receivers themselves (snapshot state can lag):
    // every dead actor must still be genuinely unable to progress. No
    // wait-graph lock is held here — receiver methods take the consumer's
    // ActorSync mutex, which must stay outermost.
    bool confirmed = true;
    for (const WaitNode& node : snapshot) {
      if (dead.count(node.actor) > 0 && !StillBlocked(node)) {
        confirmed = false;
        break;
      }
    }
    if (!confirmed) {
      candidate.clear();
      stable_polls = 0;
      continue;
    }
    deadlock_status = ConfirmDeadlock(report);
    break;  // stop_ below releases the blocked threads
  }
  stop_ = true;
  for (auto& [actor, sync] : syncs_) {
    sync->cv.notify_all();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  threads_.clear();
  return deadlock_status;
}

Status PNCWFDirector::Run(Timestamp until) {
  if (!initialized_) {
    return Status::FailedPrecondition("PNCWFDirector::Run before Initialize");
  }
  if (options_.mode == PNCWFMode::kSimulatedThreads) {
    return RunSimulated(until);
  }
  return RunThreaded(until);
}

}  // namespace cwf

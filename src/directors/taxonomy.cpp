#include "directors/taxonomy.h"

#include <sstream>

namespace cwf {

const std::vector<DirectorInfo>& DirectorTaxonomy() {
  static const std::vector<DirectorInfo> kRows = {
      // Kepler group
      {"SDF", "Kepler", "Director: Topology-driven", "Pre-compiled",
       "Pre-compiled", "N/A", "N/A", true},
      {"DDF", "Kepler", "Push", "Data-driven",
       "Iterative/Consumption Based", "N/A", "N/A", true},
      {"PN", "Kepler", "Push", "Data-driven", "Thread/OS", "N/A", "N/A",
       false},
      {"DE", "Kepler", "Director: Event Queue", "Event-driven", "Event Order",
       "Yes (global)", "N/A", false},
      // PtolemyII group
      {"CN", "PtolemyII", "Director: Topology-driven Push/Pull",
       "Pre-compiled", "Pre-compiled", "Yes (global)", "N/A", false},
      {"CI", "PtolemyII", "Push", "Data-driven", "Thread/OS", "N/A", "N/A",
       false},
      {"CSP", "PtolemyII", "Push Synchronous", "Data-driven", "Thread/OS",
       "Yes (global)", "N/A", false},
      {"DT", "PtolemyII", "Director: Topology-driven", "Pre-compiled",
       "Pre-compiled", "Yes (global or local)", "N/A", false},
      {"HDF", "PtolemyII", "Director: Topology-driven", "Pre-compiled",
       "Multiple Pre-compiled", "N/A", "N/A", false},
      {"SR", "PtolemyII", "Synchronous Reactive", "Pre-compiled",
       "Pre-compiled", "Yes (global tick)", "N/A", false},
      {"TM", "PtolemyII", "Director: Priority Queue", "Priority-based",
       "Pre-emptive Priority-based", "N/A", "Priority", false},
      {"TPN", "PtolemyII", "Push", "Data-Time-driven", "Thread/OS",
       "Yes (global)", "N/A", false},
      // CONFLuEnCE group
      {"PNCWF", "CONFLuEnCE", "Push-Windowed", "Data-Windowed-driven",
       "Thread/OS", "Yes (local)", "N/A", true},
      {"SCWF", "CONFLuEnCE", "Push-Windowed", "Data-Windowed-driven",
       "Pluggable (STAFiLOS)", "Yes (local)", "QoS via scheduler", true},
  };
  return kRows;
}

std::string RenderDirectorTaxonomy() {
  const auto& rows = DirectorTaxonomy();
  const std::vector<std::string> headers = {
      "Director", "Group",      "Actor Interaction", "Computation Driver",
      "Scheduling", "Time based", "QoS",              "In src/"};
  std::vector<std::vector<std::string>> cells;
  cells.push_back(headers);
  for (const DirectorInfo& d : rows) {
    cells.push_back({d.name, d.group, d.actor_interaction,
                     d.computation_driver, d.scheduling, d.time_based, d.qos,
                     d.implemented_here ? "yes" : "-"});
  }
  std::vector<size_t> widths(headers.size(), 0);
  for (const auto& row : cells) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream oss;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t i = 0; i < cells[r].size(); ++i) {
      oss << cells[r][i];
      if (i + 1 < cells[r].size()) {
        oss << std::string(widths[i] - cells[r][i].size() + 2, ' ');
      }
    }
    oss << "\n";
    if (r == 0) {
      size_t total = 0;
      for (size_t w : widths) {
        total += w + 2;
      }
      oss << std::string(total, '-') << "\n";
    }
  }
  return oss.str();
}

}  // namespace cwf

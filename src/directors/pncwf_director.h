// The PNCWF director: CONFLuEnCE's original thread-based model of
// computation (based on Kepler's PN, CN and DE directors).
//
// "It enables concurrent execution by wrapping every actor in its own
// thread, allowing them to run in parallel and blocking them whenever there
// are no more data to consume." Resource allocation is handled by the
// Operating System; there is no QoS-aware scheduling — this is the baseline
// STAFiLOS is compared against.
//
// Two execution modes:
//  * kOsThreads — one std::thread per actor with blocking windowed
//    receivers; requires a RealClock. This is the faithful deployment mode.
//  * kSimulatedThreads — a deterministic virtual-time simulation of
//    OS round-robin preemptive scheduling (time slice + context-switch and
//    per-event synchronization overheads from the CostModel); requires a
//    VirtualClock. This is the mode the benchmark harness uses to reproduce
//    the paper's Figure 8 deterministically.

#ifndef CONFLUENCE_DIRECTORS_PNCWF_DIRECTOR_H_
#define CONFLUENCE_DIRECTORS_PNCWF_DIRECTOR_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/lock_registry.h"
#include "core/director.h"
#include "core/wait_graph.h"
#include "window/windowed_receiver.h"

namespace cwf {

/// \brief Execution mode of the PNCWF director.
enum class PNCWFMode {
  kOsThreads,
  kSimulatedThreads,
};

/// \brief PNCWF options.
struct PNCWFOptions {
  PNCWFMode mode = PNCWFMode::kSimulatedThreads;
  /// OS-thread mode: granularity of quiescence/stop polling.
  Duration poll_interval = Millis(1);
  /// OS-thread mode: consecutive quiet polls before declaring the workflow
  /// drained (sources exhausted and no in-flight work).
  int quiet_polls_to_drain = 3;
};

class PNCWFDirector : public Director {
 public:
  explicit PNCWFDirector(PNCWFOptions options = {});
  ~PNCWFDirector() override;

  const char* kind() const override { return "PNCWF"; }

  Status Initialize(Workflow* workflow, Clock* clock,
                    const CostModel* cost_model) override;

  std::unique_ptr<Receiver> CreateReceiver(InputPort* port) override;

  Status Run(Timestamp until) override;

  uint64_t total_firings() const { return total_firings_.load(); }

  /// \brief Simulated context switches performed (simulation mode).
  uint64_t context_switches() const { return context_switches_; }

  /// \brief The channel wait-for graph the artificial-deadlock watchdog
  /// polls (core/wait_graph.h). Exposed for tests (report handler,
  /// blocked-count assertions).
  ChannelWaitGraph* wait_graph() { return &wait_graph_; }

 protected:
  /// Plan-bounded channels get blocking-put backpressure under PNCWF: OS
  /// mode blocks the producing thread in Put(); simulated mode defers the
  /// producer's firing while its downstream queue is full.
  OverflowPolicy planned_overflow_policy() const override {
    return OverflowPolicy::kBlock;
  }

 private:
  /// Per-actor synchronization domain for OS-thread mode (recursive: the
  /// prefire predicate re-enters receiver methods under the lock).
  struct ActorSync {
    OrderedRecursiveMutex mutex{"PNCWFDirector::ActorSync::mutex"};
    std::condition_variable_any cv;
  };

  Status RunSimulated(Timestamp until);
  Status RunThreaded(Timestamp until);

  void ActorThreadBody(Actor* actor);
  void SourceThreadBody(Actor* actor);

  /// One actor firing (either mode); returns modeled/measured cost.
  Result<Duration> FireOnce(Actor* actor, size_t* consumed, size_t* emitted);

  void FireReceiverTimeouts(Timestamp now);

  /// Whether any plan-bounded queue downstream of `actor` is full — the
  /// simulated-mode stand-in for a producer thread blocked in Put().
  bool DownstreamAtCapacity(const Actor* actor) const;

  bool AllQuiescent() const;

  /// Wait-graph get edges of an input-starved actor: one alternative list
  /// per connected, windowless input port (skipping ports a registered
  /// window-formation timer will eventually satisfy). Empty when the actor
  /// is not actually waiting on any channel.
  std::vector<std::vector<WaitTarget>> BuildGetWaits(
      const Actor* actor) const;

  /// Revalidate a wait-graph snapshot node against live receiver state:
  /// true when the actor is still genuinely blocked (put: the target
  /// channel is still full and blocking; get: no awaited channel has a
  /// ready window). Takes no wait-graph lock — receiver methods acquire
  /// the consumer's ActorSync mutex, which must stay outermost.
  bool StillBlocked(const WaitNode& node) const;

  /// The artificial deadlock `report` was confirmed against live receiver
  /// state: log it, notify the test handler, cross-validate against the
  /// installed plan's static liveness verdict, and stop all actor threads.
  /// Returns the CWF6005 FailedPrecondition for Run() to surface.
  Status ConfirmDeadlock(const DeadlockReport& report);

  PNCWFOptions options_;
  std::map<const Actor*, std::unique_ptr<ActorSync>> syncs_;
  /// Blocked put/get edges between this workflow's actors; fed by the
  /// blocking receivers and thread bodies, polled by the drain loop.
  ChannelWaitGraph wait_graph_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<int> busy_{0};
  std::atomic<uint64_t> total_firings_{0};
  uint64_t context_switches_ = 0;
};

}  // namespace cwf

#endif  // CONFLUENCE_DIRECTORS_PNCWF_DIRECTOR_H_

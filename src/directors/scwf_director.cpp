#include "directors/scwf_director.h"

#include "core/wait_graph.h"

#include <chrono>
#include <thread>

namespace cwf {

SCWFDirector::SCWFDirector(std::unique_ptr<AbstractScheduler> scheduler)
    : scheduler_(std::move(scheduler)) {
  CWF_CHECK_MSG(scheduler_ != nullptr, "SCWFDirector needs a scheduler");
}

Status SCWFDirector::Initialize(Workflow* workflow, Clock* clock,
                                const CostModel* cost_model) {
  if (clock != nullptr && clock->is_virtual() && cost_model == nullptr) {
    return Status::InvalidArgument(
        "virtual-clock execution requires a cost model");
  }
  all_receivers_.clear();
  total_firings_ = 0;
  director_iterations_ = 0;
  CWF_RETURN_NOT_OK(Director::Initialize(workflow, clock, cost_model));
  // Fresh statistics per initialization (stale cost/selectivity figures
  // must not steer the scheduler of a relaunched workflow), re-seated as an
  // observer of the shared telemetry hook points.
  stats_.Initialize(*workflow);
  telemetry_.AddObserver(&stats_);
  std::vector<Actor*> actors;
  actors.reserve(workflow->actors().size());
  for (const auto& actor : workflow->actors()) {
    actors.push_back(actor.get());
  }
  CWF_RETURN_NOT_OK(scheduler_->Initialize(this, actors));
  return Status::OK();
}

std::unique_ptr<Receiver> SCWFDirector::CreateReceiver(InputPort* port) {
  auto receiver = std::make_unique<TMWindowedReceiver>(
      port, port->spec(),
      [this](TMWindowedReceiver* r, Window w) {
        OnWindowReady(r, std::move(w));
      });
  all_receivers_.push_back(receiver.get());
  return receiver;
}

void SCWFDirector::OnWindowReady(TMWindowedReceiver* receiver, Window window) {
  ReadyWindow rw;
  rw.receiver = receiver;
  rw.window = std::move(window);
  scheduler_->Enqueue(receiver->port()->actor(), std::move(rw));
}

bool SCWFDirector::SourceHasData(const Actor* actor) const {
  if (const auto* src = dynamic_cast<const TimedSource*>(actor)) {
    return src->NextPendingArrival() <= clock_->Now();
  }
  // Non-stream sources (generators with no timing) are always ready unless
  // halted.
  return !IsHalted(actor);
}

Status SCWFDirector::FireTimeouts(Timestamp now) {
  for (Receiver* r : all_receivers_) {
    if (r->NextDeadline() <= now) {
      r->OnTimeout(now);  // produced windows flow through OnWindowReady
    }
  }
  // Composites holding expired inner deadlines must run even with no queued
  // window; dispatch them directly.
  for (const auto& actor : workflow_->actors()) {
    if (!IsHalted(actor.get()) && actor->NextDeadline() <= now) {
      CWF_RETURN_NOT_OK(DispatchActor(actor.get()));
    }
  }
  return Status::OK();
}

Status SCWFDirector::DispatchActor(Actor* actor) {
#ifdef CWF_OBS_ENABLED
  // Profile cells were resolved at Bind; the branch keeps the disabled cost
  // to one relaxed load (no map lookup).
  const obs::WorkflowTelemetry::ActorProfileSites sites =
      obs::ProfilingEnabled() ? telemetry_.ProfileSitesFor(actor)
                              : obs::WorkflowTelemetry::ActorProfileSites{};
#endif
  // Per-phase host timing is measured only while metrics are live; the
  // clock reads vanish entirely when telemetry is compiled out.
  const bool timed = telemetry_.host_timing_active();
  const int64_t host_t0 = timed ? obs::HostMonotonicMicros() : 0;
  // Deliver queued windows onto the actor's receiver buffers until its
  // firing precondition holds (one window in the common single-input case).
  bool can_fire = false;
  {
    CWF_PROFILE_SCOPE(sites.prefire);
    auto ready = actor->Prefire();
    if (!ready.ok()) {
      return ready.status();
    }
    can_fire = ready.value();
    while (!can_fire) {
      std::optional<ReadyWindow> rw = scheduler_->PopWindow(actor);
      if (!rw.has_value()) {
        break;
      }
      rw->receiver->DeliverBuffered(std::move(rw->window));
      auto again = actor->Prefire();
      if (!again.ok()) {
        return again.status();
      }
      can_fire = again.value();
    }
  }

  Duration cost = 0;
  bool fired = false;
  if (can_fire) {
    actor->BeginFiring();
    // Attribute CHECK-fail context (token/record accessors) to this actor.
    ScopedCurrentActor current_actor(actor);
    const Timestamp fire_start = clock_->Now();
    const int64_t host_t1 = timed ? obs::HostMonotonicMicros() : 0;
    const auto host_start = std::chrono::steady_clock::now();
    size_t emitted = 0;
    {
      CWF_PROFILE_SCOPE(sites.fire);
      CWF_RETURN_NOT_OK(actor->Fire());
      CWF_RETURN_NOT_OK(FlushActorOutputs(actor, &emitted));
    }
    const size_t consumed = actor->firing_context().events_consumed;
    if (clock_->is_virtual()) {
      cost = cost_model_->FiringCost(actor->name(), consumed, emitted);
      clock_->AdvanceBy(cost + cost_model_->scheduled_dispatch_overhead);
    } else {
      cost = std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - host_start)
                 .count();
    }
    const int64_t host_t2 = timed ? obs::HostMonotonicMicros() : 0;
    actor->IncrementFirings();
    ++total_firings_;
    fired = true;
    // Surface the receiver high-water marks (max over input receivers) so
    // schedulers and tests can compare runtime depth against the planner's
    // bound without walking the receiver graph themselves.
    uint64_t high_water = 0;
    for (const auto& port : actor->input_ports()) {
      for (size_t c = 0; c < port->ChannelCount(); ++c) {
        const Receiver* r = port->receiver(c);
        if (r != nullptr && r->high_water_mark() > high_water) {
          high_water = r->high_water_mark();
        }
      }
    }
    telemetry_.RecordQueueDepth(actor, high_water);
    auto cont = [&] {
      CWF_PROFILE_SCOPE(sites.postfire);
      return actor->Postfire();
    }();
    if (!cont.ok()) {
      return cont.status();
    }
    obs::FiringRecord record;
    record.actor = actor;
    record.cost = cost;
    record.consumed = consumed;
    record.emitted = emitted;
    record.prefire_host_us = timed ? host_t1 - host_t0 : 0;
    record.fire_host_us = timed ? host_t2 - host_t1 : 0;
    record.postfire_host_us = timed ? obs::HostMonotonicMicros() - host_t2 : 0;
    record.start = fire_start;
    record.end = clock_->Now();
    const FiringContext& fc = actor->firing_context();
    record.wave = fc.valid ? &fc.wave : nullptr;
    telemetry_.RecordFiring(record);
    if (!cont.value()) {
      MarkHalted(actor);
    }
  }
  scheduler_->OnActorFired(actor, cost, fired);
  return Status::OK();
}

Status SCWFDirector::Run(Timestamp until) {
  if (!initialized_) {
    return Status::FailedPrecondition("SCWFDirector::Run before Initialize");
  }
#ifdef CWF_OBS_ENABLED
  static const obs::ProfileSite* dispatch_site = obs::Profiler::Global().Site(
      "<scheduler>", obs::ProfilePhase::kSchedulerDispatch);
#endif
  CWF_PROFILE_WALL_SCOPE();
  constexpr uint64_t kMaxIdleIterations = 1000000;
  uint64_t idle_iterations = 0;
  for (;;) {
    // ---- one director iteration ----
    scheduler_->OnIterationStart();
    ++director_iterations_;
    while (clock_->Now() <= until) {
      Actor* next = nullptr;
      {
        // Scheduler-dispatch phase: timer service + policy pick + decision
        // bookkeeping. Deadline-driven dispatches inside FireTimeouts nest
        // their own prefire/fire scopes and are subtracted from this one.
        CWF_PROFILE_SCOPE(dispatch_site);
        CWF_RETURN_NOT_OK(FireTimeouts(clock_->Now()));
        next = scheduler_->GetNextActor();
        if (next != nullptr &&
            (telemetry_.host_timing_active() || obs::TracingEnabled())) {
          obs::SchedulerDecision decision;
          decision.policy = scheduler_->name();
          decision.chosen = next;
          decision.actor_queued_windows = scheduler_->QueuedWindows(next);
          decision.total_queued_events = scheduler_->TotalQueuedEvents();
          decision.now = clock_->Now();
          telemetry_.RecordDecision(decision);
        }
      }
      if (next == nullptr) {
        break;
      }
      if (IsHalted(next)) {
        // Drop its pending work so the scheduler does not spin on it.
        while (scheduler_->PopWindow(next).has_value()) {
        }
        scheduler_->OnActorFired(next, 0, false);
        continue;
      }
      CWF_RETURN_NOT_OK(DispatchActor(next));
    }
    scheduler_->OnIterationEnd();

    if (clock_->Now() > until) {
      break;
    }
    if (scheduler_->HasImmediateWork()) {
      idle_iterations = 0;
      continue;
    }
    if (scheduler_->TotalQueuedEvents() > 0) {
      // Nothing ACTIVE yet but events remain queued (e.g. every quantum
      // actor is WAITING): keep iterating — the policy's end-of-iteration
      // maintenance (re-quantification, period release) will activate them.
      if (++idle_iterations > kMaxIdleIterations) {
        return Status::ResourceExhausted(
            "scheduler '" + std::string(scheduler_->name()) +
            "' made no progress over " + std::to_string(kMaxIdleIterations) +
            " iterations with events queued");
      }
      continue;
    }
    idle_iterations = 0;
    // Quiescent: advance (or wait) to the next timer if any.
    const Timestamp next = NextWakeup();
    if (next == Timestamp::Max() || next > until) {
      break;
    }
    if (clock_->is_virtual()) {
      if (next > clock_->Now()) {
        clock_->AdvanceTo(next);
      }
    } else {
      const Duration gap = next - clock_->Now();
      if (gap > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            std::min<Duration>(gap, Millis(10))));
      }
    }
  }
  return Status::OK();
}

}  // namespace cwf

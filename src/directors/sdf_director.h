// Synchronous Dataflow (SDF) director.
//
// Consumes the balance-equation solver of analysis/sdf_balance.h — the
// single home of SDF rate logic — at initialization time to obtain a
// repetition vector and a pre-compiled firing schedule. The model of
// computation the paper assigns to sub-workflows whose consumption and
// production rates are constant; time- and wave-based windows have
// data-dependent rates and are rejected (use DDF for those).

#ifndef CONFLUENCE_DIRECTORS_SDF_DIRECTOR_H_
#define CONFLUENCE_DIRECTORS_SDF_DIRECTOR_H_

#include <map>
#include <memory>
#include <vector>

#include "core/director.h"
#include "window/windowed_receiver.h"

namespace cwf {

class SDFDirector : public Director {
 public:
  SDFDirector() = default;

  const char* kind() const override { return "SDF"; }

  Status Initialize(Workflow* workflow, Clock* clock,
                    const CostModel* cost_model) override;

  std::unique_ptr<Receiver> CreateReceiver(InputPort* port) override;

  /// \brief Execute complete schedule iterations while data allows.
  Status Run(Timestamp until) override;

  /// \brief Repetitions of `actor` per schedule iteration.
  Result<int64_t> Repetitions(const Actor* actor) const;

  /// \brief The pre-compiled firing order (length = sum of repetitions).
  const std::vector<Actor*>& schedule() const { return schedule_; }

 private:
  std::map<const Actor*, int64_t> repetitions_;
  std::vector<Actor*> schedule_;
};

}  // namespace cwf

#endif  // CONFLUENCE_DIRECTORS_SDF_DIRECTOR_H_

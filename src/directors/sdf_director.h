// Synchronous Dataflow (SDF) director.
//
// Solves the balance equations of the dataflow graph at initialization time
// to obtain a repetition vector and a pre-compiled firing schedule — the
// model of computation the paper assigns to sub-workflows whose consumption
// and production rates are constant.
//
// Rates: a producer emits ProductionRate(port) events per firing on each
// channel of that port; a consumer with a tuple-based window of step S on an
// input port absorbs S events per window in steady state, so its per-firing
// demand on that channel is ConsumptionRate(port) * S. Time- and wave-based
// windows have data-dependent rates and are rejected (use DDF for those).

#ifndef CONFLUENCE_DIRECTORS_SDF_DIRECTOR_H_
#define CONFLUENCE_DIRECTORS_SDF_DIRECTOR_H_

#include <map>
#include <memory>
#include <vector>

#include "core/director.h"
#include "window/windowed_receiver.h"

namespace cwf {

class SDFDirector : public Director {
 public:
  SDFDirector() = default;

  const char* kind() const override { return "SDF"; }

  Status Initialize(Workflow* workflow, Clock* clock,
                    const CostModel* cost_model) override;

  std::unique_ptr<Receiver> CreateReceiver(InputPort* port) override;

  /// \brief Execute complete schedule iterations while data allows.
  Status Run(Timestamp until) override;

  /// \brief Repetitions of `actor` per schedule iteration.
  Result<int64_t> Repetitions(const Actor* actor) const;

  /// \brief The pre-compiled firing order (length = sum of repetitions).
  const std::vector<Actor*>& schedule() const { return schedule_; }

 private:
  /// Solve the balance equations; fails on rate-inconsistent graphs.
  Status SolveBalanceEquations();

  /// Order the repetition vector into a sequential schedule via symbolic
  /// token simulation; fails on deadlocked graphs.
  Status CompileSchedule();

  /// Per-firing event demand of the consumer side of a channel.
  static int64_t ChannelDemand(const ChannelSpec& ch);

  std::map<const Actor*, int64_t> repetitions_;
  std::vector<Actor*> schedule_;
};

}  // namespace cwf

#endif  // CONFLUENCE_DIRECTORS_SDF_DIRECTOR_H_

#include "obs/telemetry.h"

#include "core/actor.h"
#include "core/workflow.h"

namespace cwf::obs {

WaveTracer& GlobalTracer() {
  static WaveTracer* tracer = new WaveTracer();
  return *tracer;
}

void ResetGlobalTracer() { GlobalTracer().ResetTopology(/*clear_buffer=*/true); }

namespace {

void RegisterHelp(MetricsRegistry& reg) {
  reg.SetHelp("cwf_actor_firings_total", "Completed firings per actor");
  reg.SetHelp("cwf_actor_cost_us",
              "Engine-time firing cost in microseconds (modeled on a virtual "
              "clock, measured on a real clock)");
  reg.SetHelp("cwf_actor_prefire_us",
              "Host microseconds spent delivering windows and evaluating "
              "prefire before a firing");
  reg.SetHelp("cwf_actor_fire_us",
              "Host microseconds spent in fire() plus output flushing");
  reg.SetHelp("cwf_actor_postfire_us", "Host microseconds spent in postfire()");
  reg.SetHelp("cwf_actor_events_consumed_total",
              "Events consumed by firings, per actor");
  reg.SetHelp("cwf_actor_events_emitted_total",
              "Events emitted by firings, per actor");
  reg.SetHelp("cwf_actor_events_arrived_total",
              "Events that arrived at the actor's scheduler queues");
  reg.SetHelp("cwf_actor_queue_hwm",
              "Highest input-receiver queue depth observed after a dispatch");
  reg.SetHelp("cwf_sched_decisions_total",
              "Times the scheduler picked this actor");
  reg.SetHelp("cwf_backpressure_deferrals_total",
              "Producer firings deferred against a full plan-bounded queue "
              "(simulated-thread PNCWF)");
  reg.SetHelp("cwf_events_emitted_total",
              "Events stamped and broadcast engine-wide");
  reg.SetHelp("cwf_sched_ready_events",
              "Events queued engine-wide at each scheduler decision");
  reg.SetHelp("cwf_wave_latency_us",
              "Wave birth-to-closure latency in engine microseconds "
              "(recorded while tracing is enabled)");
  reg.SetHelp("cwf_receiver_puts_total", "Events deposited, per channel");
  reg.SetHelp("cwf_receiver_gets_total", "Windows retrieved, per channel");
  reg.SetHelp("cwf_receiver_depth",
              "Queued units (pending events + ready windows) per channel; "
              "the gauge maximum is the high-water mark");
  reg.SetHelp("cwf_receiver_blocked_us_total",
              "Host microseconds producer threads spent blocked in Put() "
              "against this channel's capacity bound");
}

}  // namespace

void WorkflowTelemetry::Bind(const Workflow& workflow,
                             const char* director_kind) {
  observers_.clear();
#ifdef CWF_OBS_ENABLED
  actors_.clear();
  MetricsRegistry& reg = MetricsRegistry::Global();
  RegisterHelp(reg);
  events_emitted_ = reg.GetCounter("cwf_events_emitted_total");
  ready_queue_events_ = reg.GetHistogram("cwf_sched_ready_events");
  GlobalTracer().set_latency_sink(reg.GetHistogram("cwf_wave_latency_us"));
  for (const auto& actor : workflow.actors()) {
    const std::string& name = actor->name();
    ActorInstruments ai;
    ai.firings = reg.GetCounter("cwf_actor_firings_total", "actor", name);
    ai.cost_us = reg.GetHistogram("cwf_actor_cost_us", "actor", name);
    ai.prefire_host_us = reg.GetHistogram("cwf_actor_prefire_us", "actor", name);
    ai.fire_host_us = reg.GetHistogram("cwf_actor_fire_us", "actor", name);
    ai.postfire_host_us =
        reg.GetHistogram("cwf_actor_postfire_us", "actor", name);
    ai.consumed =
        reg.GetCounter("cwf_actor_events_consumed_total", "actor", name);
    ai.emitted =
        reg.GetCounter("cwf_actor_events_emitted_total", "actor", name);
    ai.arrived =
        reg.GetCounter("cwf_actor_events_arrived_total", "actor", name);
    ai.queue_hwm = reg.GetGauge("cwf_actor_queue_hwm", "actor", name);
    ai.decisions = reg.GetCounter("cwf_sched_decisions_total", "actor", name);
    ai.deferrals =
        reg.GetCounter("cwf_backpressure_deferrals_total", "actor", name);
    ai.tid = GlobalTracer().RegisterTrack(std::string(director_kind) + ":" +
                                          name);
    Profiler& profiler = Profiler::Global();
    ai.profile.prefire = profiler.Site(name, ProfilePhase::kPrefire);
    ai.profile.fire = profiler.Site(name, ProfilePhase::kFire);
    ai.profile.postfire = profiler.Site(name, ProfilePhase::kPostfire);
    actors_.emplace(actor.get(), ai);
  }
#else
  (void)workflow;
  (void)director_kind;
#endif
}

void WorkflowTelemetry::AddObserver(ExecutionObserver* observer) {
  if (observer == nullptr) {
    return;
  }
  for (ExecutionObserver* o : observers_) {
    if (o == observer) {
      return;
    }
  }
  observers_.push_back(observer);
}

const ReceiverProbe* WorkflowTelemetry::CreateReceiverProbe(
    const std::string& port_name, size_t channel) {
#ifdef CWF_OBS_ENABLED
  std::string label = port_name;
  if (channel > 0) {
    label += "#" + std::to_string(channel);
  }
  MetricsRegistry& reg = MetricsRegistry::Global();
  // Probes are owned by the registry-adjacent static store so receiver
  // lifetime (director-owned) never outlives them.
  static OrderedMutex* mutex =
      new OrderedMutex("obs::CreateReceiverProbe::mutex");
  static std::map<std::string, ReceiverProbe>* probes =
      new std::map<std::string, ReceiverProbe>();
  ScopedLock lock(*mutex);
  auto [it, inserted] = probes->try_emplace(label);
  if (inserted) {
    it->second.puts = reg.GetCounter("cwf_receiver_puts_total", "port", label);
    it->second.gets = reg.GetCounter("cwf_receiver_gets_total", "port", label);
    it->second.depth = reg.GetGauge("cwf_receiver_depth", "port", label);
    it->second.blocked_us =
        reg.GetCounter("cwf_receiver_blocked_us_total", "port", label);
    Profiler& profiler = Profiler::Global();
    it->second.put_site = profiler.Site(label, ProfilePhase::kReceiverPut);
    it->second.get_site = profiler.Site(label, ProfilePhase::kReceiverGet);
    it->second.blocked_site = profiler.Site(label, ProfilePhase::kBlocked);
  }
  return &it->second;
#else
  (void)port_name;
  (void)channel;
  return nullptr;
#endif
}

const WorkflowTelemetry::ActorInstruments* WorkflowTelemetry::Find(
    const Actor* actor) const {
  auto it = actors_.find(actor);
  return it == actors_.end() ? nullptr : &it->second;
}

uint32_t WorkflowTelemetry::TrackFor(const Actor* actor) const {
  const ActorInstruments* ai = Find(actor);
  return ai == nullptr ? 0 : ai->tid;
}

WorkflowTelemetry::ActorProfileSites WorkflowTelemetry::ProfileSitesFor(
    const Actor* actor) const {
  const ActorInstruments* ai = Find(actor);
  return ai == nullptr ? ActorProfileSites{} : ai->profile;
}

void WorkflowTelemetry::RecordFiring(const FiringRecord& record) {
  for (ExecutionObserver* o : observers_) {
    o->OnFiring(record);
  }
#ifdef CWF_OBS_ENABLED
  const ActorInstruments* ai = Find(record.actor);
  if (ai == nullptr) {
    return;
  }
  if (MetricsEnabled()) {
    ai->firings->Add(1);
    ai->cost_us->Record(record.cost);
    if (record.fire_host_us != 0 || record.prefire_host_us != 0) {
      ai->prefire_host_us->Record(record.prefire_host_us);
      ai->fire_host_us->Record(record.fire_host_us);
      ai->postfire_host_us->Record(record.postfire_host_us);
    }
    if (record.consumed > 0) {
      ai->consumed->Add(record.consumed);
    }
    if (record.emitted > 0) {
      ai->emitted->Add(record.emitted);
    }
  }
  if (TracingEnabled()) {
    static const ProfileSite* close_site =
        Profiler::Global().Site("<tracer>", ProfilePhase::kWaveClose);
    CWF_PROFILE_SCOPE(close_site);
    GlobalTracer().OnFiring(ai->tid, record.wave, record.start, record.end,
                            record.consumed, record.emitted);
  }
#endif
}

void WorkflowTelemetry::RecordArrival(const Actor* actor, size_t n,
                                      Timestamp now) {
  for (ExecutionObserver* o : observers_) {
    o->OnEventsArrived(actor, n, now);
  }
#ifdef CWF_OBS_ENABLED
  const ActorInstruments* ai = Find(actor);
  if (ai != nullptr && MetricsEnabled()) {
    ai->arrived->Add(n);
  }
#endif
}

void WorkflowTelemetry::RecordQueueDepth(const Actor* actor,
                                         uint64_t high_water) {
  for (ExecutionObserver* o : observers_) {
    o->OnQueueDepth(actor, high_water);
  }
#ifdef CWF_OBS_ENABLED
  const ActorInstruments* ai = Find(actor);
  if (ai != nullptr && MetricsEnabled()) {
    ai->queue_hwm->Set(static_cast<int64_t>(high_water));
  }
#endif
}

void WorkflowTelemetry::RecordDecision(const SchedulerDecision& decision) {
  for (ExecutionObserver* o : observers_) {
    o->OnSchedulerDecision(decision);
  }
#ifdef CWF_OBS_ENABLED
  const ActorInstruments* ai = Find(decision.chosen);
  if (ai == nullptr) {
    return;
  }
  if (MetricsEnabled()) {
    ai->decisions->Add(1);
    ready_queue_events_->Record(
        static_cast<int64_t>(decision.total_queued_events));
  }
  if (TracingEnabled()) {
    GlobalTracer().Instant(ai->tid, decision.now);
  }
#endif
}

void WorkflowTelemetry::RecordBackpressureDeferral(const Actor* actor) {
#ifdef CWF_OBS_ENABLED
  const ActorInstruments* ai = Find(actor);
  if (ai != nullptr && MetricsEnabled()) {
    ai->deferrals->Add(1);
  }
#else
  (void)actor;
#endif
}

}  // namespace cwf::obs

// Low-overhead runtime metrics: counters, gauges and log-bucketed latency
// histograms behind a process-wide registry.
//
// The engine's hot paths (actor firings, receiver deposits, scheduler
// decisions) resolve their instruments ONCE at Director::Initialize and
// afterwards touch nothing but relaxed atomics — the registry lock is never
// taken on a hot path. Instrument pointers returned by the registry stay
// valid for the registry's lifetime (Reset() zeroes values but never
// invalidates pointers).
//
// Export formats: Prometheus text exposition (RenderPrometheus) and a JSON
// snapshot (RenderJson); both are served over TCP by obs::MetricsServer.
//
// Compile-time removal: the hook *sites* in core/directors vanish when the
// CMake option CONFLUENCE_OBS is OFF (macro CWF_OBS_ENABLED undefined); the
// classes here always compile so export surfaces and tools keep building.

#ifndef CONFLUENCE_OBS_METRICS_H_
#define CONFLUENCE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/lock_registry.h"

namespace cwf::obs {

// ---------------------------------------------------------------------------
// Runtime toggles (independent of the compile-time CONFLUENCE_OBS gate).
// Metrics default ON, tracing default OFF (tracing buffers every firing).
// ---------------------------------------------------------------------------

bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// \brief Host monotonic clock, microseconds since process start. Cheap
/// enough for per-firing phase timing; shared with common/logging so log
/// lines and host-side measurements read off one base.
int64_t HostMonotonicMicros();

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// \brief Monotone counter, sharded across cache lines so concurrent
/// producers (PNCWF actor threads, TCP readers) don't contend on one word.
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Add(uint64_t n = 1) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) {
      s.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  static size_t ShardIndex();

  Shard shards_[kShards];
};

/// \brief Last-value gauge with an additional monotone maximum (the
/// high-water-mark companion of queue-depth style gauges).
class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    UpdateMax(v);
  }

  void Add(int64_t delta) {
    const int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    UpdateMax(now);
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void UpdateMax(int64_t v) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// \brief Point-in-time view of a histogram (plain data, copyable).
struct HistogramSnapshot {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  /// (inclusive upper bound, events in bucket) for every non-empty bucket,
  /// in ascending bound order. The last bound may be the overflow bucket's.
  std::vector<std::pair<int64_t, uint64_t>> buckets;
};

/// \brief Log-bucketed (power-of-two) histogram of non-negative integer
/// samples — microsecond latencies in practice.
///
/// Bucket 0 holds values <= 0; bucket i (1 <= i < kBuckets-1) holds
/// [2^(i-1), 2^i - 1]; the final bucket is the overflow bucket holding
/// everything >= 2^(kBuckets-2). Updates are relaxed atomics; percentiles
/// interpolate linearly inside a bucket.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(int64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// \brief p-th percentile (0..100). 0 when empty.
  double Percentile(double p) const;

  /// \brief Fold another histogram's samples into this one (aggregation
  /// across shards / runs; used by tests and the LRB bench export).
  void MergeFrom(const Histogram& other);

  HistogramSnapshot Snapshot() const;

  void Reset();

  /// \brief Bucket index a value lands in (exposed for boundary tests).
  static size_t BucketIndex(int64_t value);

  /// \brief Inclusive upper bound of bucket `i` (lower bound of the
  /// overflow bucket's range for the final bucket).
  static int64_t BucketUpperBound(size_t i);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// \brief Name + single optional label pair identifying one instrument.
/// One label dimension (actor / port / policy) covers every engine metric
/// and keeps the exposition fast to render.
struct MetricKey {
  std::string name;
  std::string label_key;
  std::string label_value;

  bool operator<(const MetricKey& o) const {
    if (name != o.name) return name < o.name;
    if (label_key != o.label_key) return label_key < o.label_key;
    return label_value < o.label_value;
  }
};

/// \brief Process-wide instrument registry with stable instrument pointers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \brief The engine-wide default registry every director binds to.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const std::string& label_key = "",
                      const std::string& label_value = "");
  Gauge* GetGauge(const std::string& name, const std::string& label_key = "",
                  const std::string& label_value = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& label_key = "",
                          const std::string& label_value = "");

  /// \brief Attach HELP text rendered into the Prometheus exposition.
  void SetHelp(const std::string& name, const std::string& help);

  /// \brief Prometheus text exposition format 0.0.4.
  std::string RenderPrometheus() const;

  /// \brief JSON snapshot: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} with histogram percentiles precomputed.
  std::string RenderJson() const;

  /// \brief Distinct label values seen for `name` (e.g. every actor with a
  /// firings counter) in sorted order — drives the /top table.
  std::vector<std::string> LabelValues(const std::string& name) const;

  /// \brief Zero every instrument's value. Pointers stay valid — cached
  /// instrument handles in directors keep working (Initialize re-entry).
  void Reset();

  /// \brief Instrument count (tests).
  size_t size() const;

 private:
  mutable OrderedMutex mutex_{"obs::MetricsRegistry::mutex"};
  std::map<MetricKey, std::unique_ptr<Counter>> counters_
      CWF_GUARDED_BY(mutex_);
  std::map<MetricKey, std::unique_ptr<Gauge>> gauges_ CWF_GUARDED_BY(mutex_);
  std::map<MetricKey, std::unique_ptr<Histogram>> histograms_
      CWF_GUARDED_BY(mutex_);
  std::map<std::string, std::string> help_ CWF_GUARDED_BY(mutex_);
};

}  // namespace cwf::obs

#endif  // CONFLUENCE_OBS_METRICS_H_

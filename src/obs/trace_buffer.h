// Wave-lineage tracing: decompose end-to-end wave latency into per-actor
// queueing and processing spans.
//
// Every wave-tag (the provenance unit of CONFLuEnCE) gets a birth timestamp
// when its root external event is stamped and a closure timestamp when its
// last in-flight descendant is consumed. Between the two, every actor
// firing attributed to the wave is recorded as a processing span on the
// actor's track, preceded by a queueing span covering the time the wave sat
// in receiver queues since it last finished processing anywhere.
//
// Spans land in a bounded ring buffer (oldest events are overwritten; the
// drop count is reported) and export as Chrome trace-event JSON — load the
// file in Perfetto (ui.perfetto.dev) or chrome://tracing. Timestamps are
// engine time (virtual or real), so a virtual-clock Linear Road run renders
// its full 600-second timeline.

#ifndef CONFLUENCE_OBS_TRACE_BUFFER_H_
#define CONFLUENCE_OBS_TRACE_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/lock_registry.h"
#include "common/status.h"
#include "common/time.h"

namespace cwf {
class Actor;
class WaveTag;
}  // namespace cwf

namespace cwf::obs {

class Histogram;

/// \brief One entry of the trace ring buffer (fixed-size, no allocation on
/// the hot path; names resolve through the tracer's track table at export).
struct TraceEvent {
  enum class Kind : uint8_t {
    kFiringBegin,   // ph "B" on the actor's processing track
    kFiringEnd,     // ph "E" matching kFiringBegin
    kQueued,        // ph "X" (complete span) on the actor's queueing track
    kWaveBorn,      // ph "i" instant on the wave track
    kWaveClosed,    // ph "i" instant on the wave track
    kWaveSpan,      // ph "X" birth→closure on the wave track
    kInstant,       // ph "i" generic (scheduler picks etc.)
  };

  int64_t ts = 0;        ///< engine time, µs
  int64_t dur = 0;       ///< span length for kQueued / kWaveSpan
  uint64_t wave_root = 0;
  uint32_t tid = 0;
  Kind kind = Kind::kInstant;
  uint32_t consumed = 0;
  uint32_t emitted = 0;
};

/// \brief Bounded MPSC-safe ring buffer of trace events.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 1 << 17);

  void Append(const TraceEvent& event);

  /// \brief Copy out the buffered events in append order (oldest first).
  std::vector<TraceEvent> SnapshotEvents() const;

  uint64_t total_appended() const;
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }

  void Clear();

 private:
  const size_t capacity_;
  mutable OrderedMutex mutex_{"obs::TraceBuffer::mutex"};
  std::vector<TraceEvent> ring_ CWF_GUARDED_BY(mutex_);
  size_t next_ CWF_GUARDED_BY(mutex_) = 0;  ///< ring write cursor
  uint64_t appended_ CWF_GUARDED_BY(mutex_) = 0;
};

/// \brief The tracer a director feeds: owns the ring buffer, the live-wave
/// table (birth / in-flight counts / last-processed), and the track naming
/// used by the Chrome export.
///
/// Track layout: tid 1 is the wave track; actor i gets tid 10+2i for
/// processing spans and tid 11+2i for queueing spans.
class WaveTracer {
 public:
  explicit WaveTracer(size_t capacity = 1 << 17) : buffer_(capacity) {}

  /// \brief Register an actor track; returns the processing-track tid.
  /// Called once per actor at Director::Initialize.
  uint32_t RegisterTrack(const std::string& actor_name);

  /// \brief Forget tracks and live waves (Initialize re-entry). The ring
  /// buffer itself survives unless `clear_buffer`.
  void ResetTopology(bool clear_buffer = false);

  /// \brief An event was stamped and broadcast to `fanout` receivers.
  /// Depth-0 tags birth a wave.
  void OnEventEmitted(const WaveTag& wave, Timestamp event_ts, Timestamp now,
                      size_t fanout);

  /// \brief A firing attributed to `wave` ran on the actor with processing
  /// track `tid` over [start, end] engine time, consuming `consumed`
  /// delivered events and emitting `emitted`. Records queueing + processing
  /// spans and closes the wave when nothing of it remains in flight.
  void OnFiring(uint32_t tid, const WaveTag* wave, Timestamp start,
                Timestamp end, size_t consumed, size_t emitted);

  /// \brief Generic instant marker on an actor's processing track
  /// (scheduler decisions).
  void Instant(uint32_t tid, Timestamp now);

  /// \brief Optional metrics bridge: every wave closure also records the
  /// birth→closure latency (µs) into `sink`. nullptr detaches.
  void set_latency_sink(Histogram* sink) {
    latency_sink_.store(sink, std::memory_order_release);
  }

  /// \brief Live (born, not yet closed) wave count.
  size_t live_waves() const;

  uint64_t waves_born() const;
  uint64_t waves_closed() const;

  const TraceBuffer& buffer() const { return buffer_; }

  /// \brief Registered actor-track names, index = (tid - 10) / 2 (drives
  /// critical-path attribution in obs/profile).
  std::vector<std::string> TrackNames() const;

  /// \brief Render everything as Chrome trace-event JSON: metadata first,
  /// then all events sorted by ts (stable, so B precedes its E at equal
  /// ts). Loadable in Perfetto / chrome://tracing.
  std::string RenderChromeJson() const;

  /// \brief Write RenderChromeJson() to a file.
  Status WriteChromeJson(const std::string& path) const;

 private:
  struct LiveWave {
    Timestamp birth;
    Timestamp last_done;  ///< engine time the wave last finished processing
    int64_t in_flight = 0;
  };

  TraceBuffer buffer_;
  std::atomic<Histogram*> latency_sink_{nullptr};
  mutable OrderedMutex mutex_{"obs::WaveTracer::mutex"};
  /// index = (tid - 10) / 2
  std::vector<std::string> track_names_ CWF_GUARDED_BY(mutex_);
  std::map<uint64_t, LiveWave> live_ CWF_GUARDED_BY(mutex_);
  uint64_t waves_born_ CWF_GUARDED_BY(mutex_) = 0;
  uint64_t waves_closed_ CWF_GUARDED_BY(mutex_) = 0;
};

}  // namespace cwf::obs

#endif  // CONFLUENCE_OBS_TRACE_BUFFER_H_

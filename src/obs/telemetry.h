// The hook layer between the engine's hot paths and the observability
// backends (obs/metrics.h, obs/trace_buffer.h) plus any registered
// ExecutionObserver (stafilos::ActorStatistics is one).
//
// Design rules:
//  * Instruments are resolved ONCE, at Director::Initialize (Bind /
//    CreateReceiverProbe). The hot-path hooks touch nothing but relaxed
//    atomics and one read-only map lookup — the registry lock is never
//    taken while the workflow runs.
//  * Observer fan-out ALWAYS fires: STAFiLOS schedulers need
//    ActorStatistics regardless of whether metrics are being collected.
//    Only the metric/tracer sinks are gated — at compile time by
//    CWF_OBS_ENABLED (CMake option CONFLUENCE_OBS) and at runtime by
//    obs::MetricsEnabled() / obs::TracingEnabled().
//  * All directors share one process-global WaveTracer so composite
//    actors' inner directors land on the same Perfetto timeline.

#ifndef CONFLUENCE_OBS_TELEMETRY_H_
#define CONFLUENCE_OBS_TELEMETRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/event.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace_buffer.h"

namespace cwf {
class Actor;
class Workflow;
}  // namespace cwf

namespace cwf::obs {

/// \brief The engine-wide wave tracer every director feeds (composite inner
/// directors included — one timeline).
WaveTracer& GlobalTracer();

/// \brief Clear the global tracer's tracks, live waves and ring buffer.
/// Tools and tests call this between runs; directors never do (another
/// director may still be live).
void ResetGlobalTracer();

/// \brief Per-channel receiver instruments, resolved when the director
/// builds the receiver. Receivers hold a const pointer and update through
/// Receiver::RecordDepth/NoteGet/NoteBlockedMicros; nullptr (telemetry
/// compiled out, or a boundary collector built outside a director) means no
/// instrumentation.
struct ReceiverProbe {
  Counter* puts = nullptr;        ///< cwf_receiver_puts_total{port}
  Counter* gets = nullptr;        ///< cwf_receiver_gets_total{port}
  Gauge* depth = nullptr;         ///< cwf_receiver_depth{port}; Max = HWM
  Counter* blocked_us = nullptr;  ///< cwf_receiver_blocked_us_total{port}
  /// Host-profiler cells for this channel (labelled by port name); nullptr
  /// only when the whole probe is (compiled-out telemetry).
  const ProfileSite* put_site = nullptr;      ///< receiver_put phase
  const ProfileSite* get_site = nullptr;      ///< receiver_get phase
  const ProfileSite* blocked_site = nullptr;  ///< blocked phase
};

/// \brief Everything known about one completed firing, handed to
/// RecordFiring by the director that drove it.
struct FiringRecord {
  const Actor* actor = nullptr;
  /// Engine-time cost: modeled (virtual clock) or measured (real clock).
  Duration cost = 0;
  /// Host-side phase durations (µs); zero when host timing is off. The
  /// prefire figure covers window delivery + prefire evaluation (SCWF).
  int64_t prefire_host_us = 0;
  int64_t fire_host_us = 0;
  int64_t postfire_host_us = 0;
  size_t consumed = 0;
  size_t emitted = 0;
  Timestamp start;  ///< engine time the firing began
  Timestamp end;    ///< engine time the firing completed
  /// Wave attribution of the firing (nullptr for source firings, which
  /// consume nothing).
  const WaveTag* wave = nullptr;
};

/// \brief One scheduler pick (SCWF): which actor, under which policy, and
/// the ready-queue state it was picked out of.
struct SchedulerDecision {
  const char* policy = "";
  const Actor* chosen = nullptr;
  size_t actor_queued_windows = 0;  ///< windows still queued for `chosen`
  size_t total_queued_events = 0;   ///< events queued engine-wide
  Timestamp now;
};

/// \brief Consumer interface for execution events. ActorStatistics
/// implements this; the fan-out is unconditional (never gated by the
/// metrics toggles), so schedulers keep their statistics with telemetry
/// compiled out.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  virtual void OnFiring(const FiringRecord& record) { (void)record; }
  virtual void OnEventsArrived(const Actor* actor, size_t n, Timestamp now) {
    (void)actor;
    (void)n;
    (void)now;
  }
  virtual void OnQueueDepth(const Actor* actor, uint64_t high_water) {
    (void)actor;
    (void)high_water;
  }
  virtual void OnSchedulerDecision(const SchedulerDecision& decision) {
    (void)decision;
  }
};

/// \brief One director's telemetry frontend: owns the resolved instrument
/// handles and the observer list, and routes every hook to (a) observers,
/// (b) the metrics registry, (c) the global wave tracer.
class WorkflowTelemetry {
 public:
  WorkflowTelemetry() = default;
  WorkflowTelemetry(const WorkflowTelemetry&) = delete;
  WorkflowTelemetry& operator=(const WorkflowTelemetry&) = delete;

  /// \brief Resolve per-actor instruments against the global registry and
  /// register trace tracks for every actor of `workflow`. Clears the
  /// observer list (Initialize re-entry starts from a clean slate; the
  /// SCWF director re-adds its statistics module afterwards). No-op when
  /// telemetry is compiled out.
  void Bind(const Workflow& workflow, const char* director_kind);

  /// \brief Register an execution-event consumer (not owned).
  void AddObserver(ExecutionObserver* observer);

  /// \brief Resolve the per-channel receiver instruments for the channel
  /// into `port_name` (channel > 0 gets a "#<channel>" suffix). Returns
  /// nullptr when telemetry is compiled out. Stable for the process
  /// lifetime; independent of Bind().
  const ReceiverProbe* CreateReceiverProbe(const std::string& port_name,
                                           size_t channel);

  // ---- Hot-path hooks ----

  /// \brief A firing completed. Observers always; metrics and trace spans
  /// when the respective toggles are on.
  void RecordFiring(const FiringRecord& record);

  /// \brief `n` events were queued toward `actor` (scheduler enqueue).
  void RecordArrival(const Actor* actor, size_t n, Timestamp now);

  /// \brief Max input-receiver high-water mark observed after a dispatch.
  void RecordQueueDepth(const Actor* actor, uint64_t high_water);

  /// \brief The scheduler picked an actor.
  void RecordDecision(const SchedulerDecision& decision);

  /// \brief A producer's firing was deferred because a plan-bounded
  /// downstream queue is full (simulated-thread PNCWF backpressure).
  void RecordBackpressureDeferral(const Actor* actor);

  /// \brief One event was stamped and broadcast to `fanout` receivers
  /// (Director::FlushActorOutputs). Births waves in the tracer.
  void RecordEmit(const CWEvent& event, size_t fanout, Timestamp now) {
#ifdef CWF_OBS_ENABLED
    if (events_emitted_ != nullptr && MetricsEnabled()) {
      events_emitted_->Add(1);
    }
    if (TracingEnabled()) {
      GlobalTracer().OnEventEmitted(event.wave, event.timestamp, now, fanout);
    }
#else
    (void)event;
    (void)fanout;
    (void)now;
#endif
  }

  /// \brief Whether the director should spend clock reads on per-phase host
  /// timing this firing (metrics compiled in, enabled, and bound).
  bool host_timing_active() const {
#ifdef CWF_OBS_ENABLED
    return !actors_.empty() && MetricsEnabled();
#else
    return false;
#endif
  }

  /// \brief Trace track (tid) of `actor`; 0 when unknown / unbound.
  uint32_t TrackFor(const Actor* actor) const;

  /// \brief Host-profiler cells of one actor's firing phases, resolved at
  /// Bind. All-null when the actor is unbound or telemetry is compiled out
  /// (CWF_PROFILE_SCOPE(nullptr) is inert, so callers never branch).
  struct ActorProfileSites {
    const ProfileSite* prefire = nullptr;
    const ProfileSite* fire = nullptr;
    const ProfileSite* postfire = nullptr;
  };
  ActorProfileSites ProfileSitesFor(const Actor* actor) const;

  size_t observer_count() const { return observers_.size(); }

 private:
  /// Instrument handles of one actor, resolved at Bind.
  struct ActorInstruments {
    Counter* firings = nullptr;
    Histogram* cost_us = nullptr;
    Histogram* prefire_host_us = nullptr;
    Histogram* fire_host_us = nullptr;
    Histogram* postfire_host_us = nullptr;
    Counter* consumed = nullptr;
    Counter* emitted = nullptr;
    Counter* arrived = nullptr;
    Gauge* queue_hwm = nullptr;
    Counter* decisions = nullptr;
    Counter* deferrals = nullptr;
    uint32_t tid = 0;  ///< processing-track id in the global tracer
    ActorProfileSites profile;  ///< host-profiler cells (obs/profile.h)
  };

  const ActorInstruments* Find(const Actor* actor) const;

  std::vector<ExecutionObserver*> observers_;
  /// Read-only after Bind (PNCWF actor threads look up concurrently).
  std::map<const Actor*, ActorInstruments> actors_;
  Counter* events_emitted_ = nullptr;      ///< cwf_events_emitted_total
  Histogram* ready_queue_events_ = nullptr;  ///< cwf_sched_ready_events
};

}  // namespace cwf::obs

#endif  // CONFLUENCE_OBS_TELEMETRY_H_

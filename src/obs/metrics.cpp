#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <sstream>
#include <thread>

namespace cwf::obs {
namespace {

std::atomic<bool> g_metrics_enabled{true};
std::atomic<bool> g_tracing_enabled{false};

/// Inclusive lower bound of bucket `i`.
int64_t BucketLowerBound(size_t i) {
  return i == 0 ? 0 : int64_t{1} << (i - 1);
}

/// Escape a Prometheus label value (backslash, quote, newline).
std::string EscapeLabel(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderKey(const MetricKey& key, const std::string& suffix = "",
                      const std::string& extra_label = "") {
  std::string out = key.name + suffix;
  const bool has_label = !key.label_key.empty();
  if (has_label || !extra_label.empty()) {
    out += '{';
    if (has_label) {
      out += key.label_key + "=\"" + EscapeLabel(key.label_value) + "\"";
      if (!extra_label.empty()) {
        out += ',';
      }
    }
    out += extra_label;
    out += '}';
  }
  return out;
}

/// JSON object key for one instrument: `name` or `name{label="value"}`.
std::string JsonKey(const MetricKey& key) { return RenderKey(key); }

std::string JsonEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}
bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}
void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

int64_t HostMonotonicMicros() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

size_t Counter::ShardIndex() {
  static thread_local const size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return index;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

size_t Histogram::BucketIndex(int64_t value) {
  if (value <= 0) {
    return 0;
  }
  const size_t width = std::bit_width(static_cast<uint64_t>(value));
  return std::min(width, kBuckets - 1);
}

int64_t Histogram::BucketUpperBound(size_t i) {
  if (i == 0) {
    return 0;
  }
  if (i >= kBuckets - 1) {
    return std::numeric_limits<int64_t>::max();  // overflow bucket
  }
  return (int64_t{1} << i) - 1;
}

void Histogram::Record(int64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
}

double Histogram::Percentile(double p) const {
  const uint64_t n = Count();
  if (n == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Rank in (0, n]; p=100 selects the last sample's bucket.
  double target = p / 100.0 * static_cast<double>(n);
  if (target < 1.0) {
    target = 1.0;
  }
  uint64_t cum = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) {
      continue;
    }
    if (static_cast<double>(cum + c) >= target) {
      const double lower = static_cast<double>(BucketLowerBound(i));
      // The overflow bucket has no finite upper boundary: the observed
      // maximum is the tightest bound we have. Same for the top of any
      // bucket containing the max.
      const double upper = std::min(static_cast<double>(Max()),
                                    static_cast<double>(BucketUpperBound(i)));
      const double fraction =
          (target - static_cast<double>(cum)) / static_cast<double>(c);
      return lower + fraction * std::max(0.0, upper - lower);
    }
    cum += c;
  }
  return static_cast<double>(Max());
}

void Histogram::MergeFrom(const Histogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) {
      buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.Count(), std::memory_order_relaxed);
  sum_.fetch_add(other.Sum(), std::memory_order_relaxed);
  const int64_t other_max = other.Max();
  int64_t cur = max_.load(std::memory_order_relaxed);
  while (other_max > cur &&
         !max_.compare_exchange_weak(cur, other_max,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = Count();
  snap.sum = Sum();
  snap.max = Max();
  snap.mean = Mean();
  snap.p50 = Percentile(50);
  snap.p95 = Percentile(95);
  snap.p99 = Percentile(99);
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) {
      snap.buckets.emplace_back(BucketUpperBound(i), c);
    }
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& label_key,
                                     const std::string& label_value) {
  ScopedLock lock(mutex_);
  auto& slot = counters_[MetricKey{name, label_key, label_value}];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& label_key,
                                 const std::string& label_value) {
  ScopedLock lock(mutex_);
  auto& slot = gauges_[MetricKey{name, label_key, label_value}];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& label_key,
                                         const std::string& label_value) {
  ScopedLock lock(mutex_);
  auto& slot = histograms_[MetricKey{name, label_key, label_value}];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

void MetricsRegistry::SetHelp(const std::string& name,
                              const std::string& help) {
  ScopedLock lock(mutex_);
  help_[name] = help;
}

std::string MetricsRegistry::RenderPrometheus() const {
  ScopedLock lock(mutex_);
  std::ostringstream out;
  std::string last_name;
  auto header = [&](const std::string& name, const char* type) {
    if (name == last_name) {
      return;
    }
    last_name = name;
    auto help = help_.find(name);
    if (help != help_.end()) {
      out << "# HELP " << name << " " << help->second << "\n";
    }
    out << "# TYPE " << name << " " << type << "\n";
  };

  for (const auto& [key, counter] : counters_) {
    header(key.name, "counter");
    out << RenderKey(key) << " " << counter->Value() << "\n";
  }
  last_name.clear();
  for (const auto& [key, gauge] : gauges_) {
    header(key.name, "gauge");
    out << RenderKey(key) << " " << gauge->Value() << "\n";
  }
  last_name.clear();
  for (const auto& [key, hist] : histograms_) {
    header(key.name, "histogram");
    const HistogramSnapshot snap = hist->Snapshot();
    uint64_t cum = 0;
    for (const auto& [bound, count] : snap.buckets) {
      cum += count;
      if (bound == std::numeric_limits<int64_t>::max()) {
        continue;  // folded into the +Inf bucket below
      }
      out << RenderKey(key, "_bucket",
                       "le=\"" + std::to_string(bound) + "\"")
          << " " << cum << "\n";
    }
    out << RenderKey(key, "_bucket", "le=\"+Inf\"") << " " << snap.count
        << "\n";
    out << RenderKey(key, "_sum") << " " << snap.sum << "\n";
    out << RenderKey(key, "_count") << " " << snap.count << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  ScopedLock lock(mutex_);
  std::ostringstream out;
  out << "{";
  out << "\"counters\":{";
  bool first = true;
  for (const auto& [key, counter] : counters_) {
    out << (first ? "" : ",") << "\"" << JsonEscape(JsonKey(key))
        << "\":" << counter->Value();
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [key, gauge] : gauges_) {
    out << (first ? "" : ",") << "\"" << JsonEscape(JsonKey(key))
        << "\":{\"value\":" << gauge->Value() << ",\"max\":" << gauge->Max()
        << "}";
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [key, hist] : histograms_) {
    const HistogramSnapshot snap = hist->Snapshot();
    char stats[256];
    std::snprintf(stats, sizeof(stats),
                  "{\"count\":%" PRIu64 ",\"sum\":%" PRId64
                  ",\"max\":%" PRId64
                  ",\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f,"
                  "\"buckets\":[",
                  snap.count, snap.sum, snap.max, snap.mean, snap.p50,
                  snap.p95, snap.p99);
    out << (first ? "" : ",") << "\"" << JsonEscape(JsonKey(key))
        << "\":" << stats;
    bool first_bucket = true;
    for (const auto& [bound, count] : snap.buckets) {
      out << (first_bucket ? "" : ",") << "[";
      if (bound == std::numeric_limits<int64_t>::max()) {
        out << "\"+Inf\"";
      } else {
        out << bound;
      }
      out << "," << count << "]";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << "}}";
  return out.str();
}

std::vector<std::string> MetricsRegistry::LabelValues(
    const std::string& name) const {
  ScopedLock lock(mutex_);
  std::vector<std::string> values;
  auto collect = [&](const auto& map) {
    for (const auto& [key, unused] : map) {
      (void)unused;
      if (key.name == name && !key.label_value.empty()) {
        values.push_back(key.label_value);
      }
    }
  };
  collect(counters_);
  collect(gauges_);
  collect(histograms_);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

void MetricsRegistry::Reset() {
  ScopedLock lock(mutex_);
  for (auto& [key, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [key, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [key, hist] : histograms_) {
    hist->Reset();
  }
}

size_t MetricsRegistry::size() const {
  ScopedLock lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace cwf::obs

#include "obs/profile.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "obs/trace_buffer.h"

namespace cwf::obs {
namespace {

std::atomic<bool> g_profiling_enabled{false};

constexpr const char* kPhaseNames[kProfilePhaseCount] = {
    "scheduler_dispatch", "receiver_put", "receiver_get", "prefire",
    "fire",               "postfire",     "wave_open",    "wave_close",
    "allocation",         "blocked",      "serialization",
};

constexpr const char* kWallCounterName = "cwf_profile_wall_ns_total";

std::string PhaseNsMetricName(ProfilePhase phase) {
  return std::string("cwf_profile_") + ProfilePhaseName(phase) + "_ns_total";
}

std::string PhaseSamplesMetricName(ProfilePhase phase) {
  return std::string("cwf_profile_") + ProfilePhaseName(phase) +
         "_samples_total";
}

std::string JsonEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatPct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", fraction * 100.0);
  return buf;
}

// ---------------------------------------------------------------------------
// Thread-local measurement state: a strict-nesting frame stack (self-time
// accounting) plus a bounded sample ring drained into the registry counters
// when full and at thread exit. Everything here is single-thread private;
// the only cross-thread operations are the relaxed Counter::Add calls in
// Flush.
// ---------------------------------------------------------------------------

constexpr size_t kMaxFrameDepth = 32;
constexpr size_t kSampleRingSize = 256;

struct Frame {
  const ProfileSite* site = nullptr;
  int64_t start_ns = 0;
  int64_t child_ns = 0;  ///< summed duration of directly nested scopes
};

struct Sample {
  const ProfileSite* site = nullptr;
  int64_t self_ns = 0;
};

struct ThreadState {
  Frame frames[kMaxFrameDepth];
  size_t depth = 0;
  Sample ring[kSampleRingSize];
  size_t ring_size = 0;

  ~ThreadState() { Flush(); }

  void Flush() {
    for (size_t i = 0; i < ring_size; ++i) {
      const Sample& s = ring[i];
      s.site->self_ns->Add(static_cast<uint64_t>(s.self_ns));
      s.site->samples->Add(1);
    }
    ring_size = 0;
  }

  void Push(const ProfileSite* site, int64_t self_ns) {
    if (ring_size == kSampleRingSize) {
      Flush();
    }
    ring[ring_size].site = site;
    ring[ring_size].self_ns = self_ns;
    ++ring_size;
  }
};

ThreadState& State() {
  thread_local ThreadState state;
  return state;
}

}  // namespace

// ---------------------------------------------------------------------------
// Taxonomy + toggles
// ---------------------------------------------------------------------------

const char* ProfilePhaseName(ProfilePhase phase) {
  const size_t i = static_cast<size_t>(phase);
  return i < kProfilePhaseCount ? kPhaseNames[i] : "unknown";
}

ProfilePhase ProfilePhaseAt(size_t index) {
  return static_cast<ProfilePhase>(index);
}

bool ProfilingEnabled() {
  return g_profiling_enabled.load(std::memory_order_relaxed);
}

void SetProfilingEnabled(bool enabled) {
  g_profiling_enabled.store(enabled, std::memory_order_relaxed);
}

int64_t ProfileClockNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

Profiler& Profiler::Global() {
  static Profiler profiler;
  return profiler;
}

const ProfileSite* Profiler::Site(const std::string& actor,
                                  ProfilePhase phase) {
  ScopedLock lock(mutex_);
  auto key = std::make_pair(actor, static_cast<uint8_t>(phase));
  auto it = sites_.find(key);
  if (it != sites_.end()) {
    return &it->second;
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  ProfileSite site;
  site.self_ns = registry.GetCounter(PhaseNsMetricName(phase), "actor", actor);
  site.samples =
      registry.GetCounter(PhaseSamplesMetricName(phase), "actor", actor);
  registry.SetHelp(PhaseNsMetricName(phase),
                   std::string("Host self-time (ns) spent in the ") +
                       ProfilePhaseName(phase) + " phase, per actor.");
  registry.SetHelp(PhaseSamplesMetricName(phase),
                   std::string("Profiled scope count for the ") +
                       ProfilePhaseName(phase) + " phase, per actor.");
  auto [inserted, ok] = sites_.emplace(std::move(key), site);
  static_cast<void>(ok);
  return &inserted->second;
}

void Profiler::FlushCurrentThread() { State().Flush(); }

void Profiler::RecordExternal(const ProfileSite* site, int64_t ns) {
  if (site == nullptr || ns <= 0 || !ProfilingEnabled()) {
    return;
  }
  State().Push(site, ns);
}

void Profiler::AddWallNanos(int64_t ns) {
  if (ns <= 0) {
    return;
  }
  static Counter* wall = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.SetHelp(kWallCounterName,
                     "Host wall time (ns) covered by profiled director runs.");
    return registry.GetCounter(kWallCounterName);
  }();
  wall->Add(static_cast<uint64_t>(ns));
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

ScopedProfilePhase::ScopedProfilePhase(const ProfileSite* site)
    : active_(false) {
  if (site == nullptr || !ProfilingEnabled()) {
    return;
  }
  ThreadState& state = State();
  if (state.depth == kMaxFrameDepth) {
    return;
  }
  Frame& frame = state.frames[state.depth++];
  frame.site = site;
  frame.child_ns = 0;
  frame.start_ns = ProfileClockNanos();
  active_ = true;
}

ScopedProfilePhase::~ScopedProfilePhase() {
  if (!active_) {
    return;
  }
  ThreadState& state = State();
  Frame& frame = state.frames[--state.depth];
  const int64_t duration = ProfileClockNanos() - frame.start_ns;
  const int64_t self = std::max<int64_t>(0, duration - frame.child_ns);
  if (state.depth > 0) {
    state.frames[state.depth - 1].child_ns += duration;
  }
  state.Push(frame.site, self);
}

ScopedProfileWall::ScopedProfileWall()
    : start_ns_(ProfilingEnabled() ? ProfileClockNanos() : -1) {}

ScopedProfileWall::~ScopedProfileWall() {
  if (start_ns_ < 0) {
    return;
  }
  Profiler::AddWallNanos(ProfileClockNanos() - start_ns_);
  Profiler::FlushCurrentThread();
}

// ---------------------------------------------------------------------------
// Snapshot + rendering
// ---------------------------------------------------------------------------

double ProfileSnapshot::CoverageFraction() const {
  if (wall_ns == 0) {
    return 0;
  }
  uint64_t covered = 0;
  for (const ProfileEntry& e : entries) {
    covered += e.self_ns;
  }
  return static_cast<double>(covered) / static_cast<double>(wall_ns);
}

std::map<std::string, double> ProfileSnapshot::PhaseTotalsUs() const {
  std::map<std::string, double> totals;
  for (const ProfileEntry& e : entries) {
    totals[ProfilePhaseName(e.phase)] += static_cast<double>(e.self_ns) / 1e3;
  }
  return totals;
}

ProfileSnapshot SnapshotProfile(MetricsRegistry& registry) {
  Profiler::FlushCurrentThread();
  ProfileSnapshot snapshot;
  snapshot.wall_ns = registry.GetCounter(kWallCounterName)->Value();
  for (size_t i = 0; i < kProfilePhaseCount; ++i) {
    const ProfilePhase phase = ProfilePhaseAt(i);
    const std::string ns_name = PhaseNsMetricName(phase);
    const std::string samples_name = PhaseSamplesMetricName(phase);
    for (const std::string& actor : registry.LabelValues(ns_name)) {
      ProfileEntry entry;
      entry.actor = actor;
      entry.phase = phase;
      entry.self_ns = registry.GetCounter(ns_name, "actor", actor)->Value();
      entry.samples =
          registry.GetCounter(samples_name, "actor", actor)->Value();
      if (entry.self_ns == 0 && entry.samples == 0) {
        continue;
      }
      snapshot.entries.push_back(std::move(entry));
    }
  }
  std::sort(snapshot.entries.begin(), snapshot.entries.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              if (a.actor != b.actor) return a.actor < b.actor;
              return a.phase < b.phase;
            });
  return snapshot;
}

std::string RenderProfileText(const ProfileSnapshot& snapshot) {
  std::ostringstream out;
  out << "# wall_us " << snapshot.wall_ns / 1000 << "\n";
  out << "# coverage_pct " << FormatPct(snapshot.CoverageFraction()) << "\n";
  out << "actor\tphase\tself_us\tsamples\tpct_wall\n";
  for (const ProfileEntry& e : snapshot.entries) {
    const double pct_wall =
        snapshot.wall_ns == 0
            ? 0
            : static_cast<double>(e.self_ns) /
                  static_cast<double>(snapshot.wall_ns);
    out << e.actor << '\t' << ProfilePhaseName(e.phase) << '\t'
        << e.self_ns / 1000 << '\t' << e.samples << '\t'
        << FormatPct(pct_wall) << "\n";
  }
  return out.str();
}

std::string RenderProfileJson(const ProfileSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"wall_us\":" << snapshot.wall_ns / 1000 << ",\"coverage_pct\":"
      << FormatPct(snapshot.CoverageFraction()) << ",\"entries\":[";
  bool first = true;
  for (const ProfileEntry& e : snapshot.entries) {
    if (!first) out << ',';
    first = false;
    out << "{\"actor\":\"" << JsonEscape(e.actor) << "\",\"phase\":\""
        << ProfilePhaseName(e.phase) << "\",\"self_us\":" << e.self_ns / 1000
        << ",\"samples\":" << e.samples << '}';
  }
  out << "]}";
  return out.str();
}

// ---------------------------------------------------------------------------
// Critical-path attribution
// ---------------------------------------------------------------------------

namespace {

/// Per-wave reconstruction scratch: spans grouped while walking the ring.
struct WaveScratch {
  bool born_seen = false;
  bool closed = false;
  int64_t latency_us = 0;
  uint32_t terminal_tid = 0;  ///< processing track of the last firing
  /// (tid, queueing?) → summed span µs
  std::map<std::pair<uint32_t, bool>, int64_t> spans;
  /// open kFiringBegin timestamps per processing track (LIFO per tid)
  std::map<uint32_t, std::vector<int64_t>> open_firings;
};

struct GroupScratch {
  uint64_t waves = 0;
  int64_t total_latency_us = 0;
  std::map<std::pair<std::string, bool>, int64_t> contributors;
};

}  // namespace

CriticalPathReport ComputeCriticalPaths(const WaveTracer& tracer,
                                        size_t top_n) {
  const std::vector<TraceEvent> events = tracer.buffer().SnapshotEvents();
  const std::vector<std::string> tracks = tracer.TrackNames();
  const auto track_name = [&tracks](uint32_t tid) -> std::string {
    if (tid < 10) {
      return "<wave>";
    }
    const size_t index = (tid - 10) / 2;
    if (index < tracks.size()) {
      return tracks[index];
    }
    return "<track " + std::to_string(tid) + ">";
  };

  // Pass 1: reconstruct every wave present in the ring. Events are oldest
  // first, so a wave whose kWaveBorn marker is absent lost its head to ring
  // wraparound — it must not be attributed from a partial chain.
  std::unordered_map<uint64_t, WaveScratch> waves;
  for (const TraceEvent& event : events) {
    WaveScratch& wave = waves[event.wave_root];
    switch (event.kind) {
      case TraceEvent::Kind::kWaveBorn:
        wave.born_seen = true;
        break;
      case TraceEvent::Kind::kWaveSpan:
        wave.closed = true;
        wave.latency_us = event.dur;
        break;
      case TraceEvent::Kind::kFiringBegin:
        wave.open_firings[event.tid].push_back(event.ts);
        break;
      case TraceEvent::Kind::kFiringEnd: {
        auto it = wave.open_firings.find(event.tid);
        if (it == wave.open_firings.end() || it->second.empty()) {
          // The matching begin predates the ring: partial chain.
          wave.born_seen = false;
          break;
        }
        const int64_t begin_ts = it->second.back();
        it->second.pop_back();
        wave.spans[{event.tid, false}] += event.ts - begin_ts;
        wave.terminal_tid = event.tid;
        break;
      }
      case TraceEvent::Kind::kQueued:
        wave.spans[{event.tid, true}] += event.dur;
        break;
      case TraceEvent::Kind::kWaveClosed:
      case TraceEvent::Kind::kInstant:
        break;
    }
  }

  // Pass 2: aggregate attributable waves per terminal actor.
  CriticalPathReport report;
  std::map<std::string, GroupScratch> groups;
  for (const auto& [root, wave] : waves) {
    static_cast<void>(root);
    if (!wave.closed) {
      continue;  // still in flight; neither analyzed nor truncated
    }
    if (!wave.born_seen) {
      ++report.truncated_waves;
      continue;
    }
    ++report.waves_analyzed;
    const std::string terminal = wave.terminal_tid == 0
                                     ? "<no-firing>"
                                     : track_name(wave.terminal_tid);
    GroupScratch& group = groups[terminal];
    ++group.waves;
    group.total_latency_us += wave.latency_us;
    for (const auto& [span_key, us] : wave.spans) {
      const auto& [tid, queueing] = span_key;
      // Queueing spans live on tid 11+2i; resolve to the consuming actor.
      const std::string actor = track_name(queueing ? tid - 1 : tid);
      group.contributors[{actor, queueing}] += us;
    }
  }

  for (auto& [terminal, scratch] : groups) {
    CriticalPathGroup group;
    group.terminal_actor = terminal;
    group.waves = scratch.waves;
    group.total_latency_us = scratch.total_latency_us;
    std::vector<CriticalPathContributor> ranked;
    ranked.reserve(scratch.contributors.size());
    for (const auto& [key, us] : scratch.contributors) {
      CriticalPathContributor c;
      c.actor = key.first;
      c.queueing = key.second;
      c.total_us = us;
      c.share = scratch.total_latency_us > 0
                    ? static_cast<double>(us) /
                          static_cast<double>(scratch.total_latency_us)
                    : 0;
      ranked.push_back(std::move(c));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const CriticalPathContributor& a,
                 const CriticalPathContributor& b) {
                if (a.total_us != b.total_us) return a.total_us > b.total_us;
                if (a.actor != b.actor) return a.actor < b.actor;
                return a.queueing < b.queueing;
              });
    if (ranked.size() > top_n) {
      ranked.resize(top_n);
    }
    group.top = std::move(ranked);
    report.groups.push_back(std::move(group));
  }
  std::sort(report.groups.begin(), report.groups.end(),
            [](const CriticalPathGroup& a, const CriticalPathGroup& b) {
              if (a.total_latency_us != b.total_latency_us) {
                return a.total_latency_us > b.total_latency_us;
              }
              return a.terminal_actor < b.terminal_actor;
            });

#ifdef CWF_OBS_ENABLED
  // Mirror the truncation count so scrapes see it without recomputing the
  // report; Set (not Add) keeps recomputation idempotent.
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.SetHelp("cwf_trace_truncated_waves",
                   "Closed waves dropped from critical-path attribution "
                   "because trace-ring wraparound evicted their birth span.");
  registry.GetGauge("cwf_trace_truncated_waves")
      ->Set(static_cast<int64_t>(report.truncated_waves));
#endif
  return report;
}

std::string RenderCriticalPathText(const CriticalPathReport& report) {
  std::ostringstream out;
  out << "# waves_analyzed " << report.waves_analyzed << "\n";
  out << "# truncated_waves " << report.truncated_waves << "\n";
  for (const CriticalPathGroup& group : report.groups) {
    const int64_t mean_us =
        group.waves > 0
            ? group.total_latency_us / static_cast<int64_t>(group.waves)
            : 0;
    out << "terminal=" << group.terminal_actor << " waves=" << group.waves
        << " mean_latency_us=" << mean_us << "\n";
    size_t rank = 1;
    for (const CriticalPathContributor& c : group.top) {
      out << "  " << rank++ << ". " << c.actor << ' '
          << (c.queueing ? "queueing" : "processing") << ' ' << c.total_us
          << "us " << FormatPct(c.share) << "%\n";
    }
  }
  return out.str();
}

std::string RenderCriticalPathJson(const CriticalPathReport& report) {
  std::ostringstream out;
  out << "{\"waves_analyzed\":" << report.waves_analyzed
      << ",\"truncated_waves\":" << report.truncated_waves << ",\"groups\":[";
  bool first_group = true;
  for (const CriticalPathGroup& group : report.groups) {
    if (!first_group) out << ',';
    first_group = false;
    out << "{\"terminal\":\"" << JsonEscape(group.terminal_actor)
        << "\",\"waves\":" << group.waves
        << ",\"total_latency_us\":" << group.total_latency_us
        << ",\"contributors\":[";
    bool first = true;
    for (const CriticalPathContributor& c : group.top) {
      if (!first) out << ',';
      first = false;
      out << "{\"actor\":\"" << JsonEscape(c.actor) << "\",\"kind\":\""
          << (c.queueing ? "queueing" : "processing")
          << "\",\"total_us\":" << c.total_us
          << ",\"share_pct\":" << FormatPct(c.share) << '}';
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace cwf::obs

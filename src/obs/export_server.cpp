#include "obs/export_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "common/logging.h"
#include "obs/telemetry.h"

namespace cwf::obs {

std::string RenderTopTsv(const MetricsRegistry& registry) {
  // The registry creates instruments on lookup, so only label values that
  // already exist are queried (LabelValues never creates).
  MetricsRegistry& reg = const_cast<MetricsRegistry&>(registry);
  std::ostringstream out;
  out << "# ts_us " << HostMonotonicMicros() << "\n";
  out << "actor\tfirings\tcost_mean_us\tconsumed\temitted\tarrived\t"
         "queue_hwm\tblocked_us\tdecisions\tdeferrals\n";
  const std::vector<std::string> ports =
      reg.LabelValues("cwf_receiver_blocked_us_total");
  for (const std::string& actor : reg.LabelValues("cwf_actor_firings_total")) {
    const uint64_t firings =
        reg.GetCounter("cwf_actor_firings_total", "actor", actor)->Value();
    const double cost_mean =
        reg.GetHistogram("cwf_actor_cost_us", "actor", actor)->Mean();
    const uint64_t consumed =
        reg.GetCounter("cwf_actor_events_consumed_total", "actor", actor)
            ->Value();
    const uint64_t emitted =
        reg.GetCounter("cwf_actor_events_emitted_total", "actor", actor)
            ->Value();
    const uint64_t arrived =
        reg.GetCounter("cwf_actor_events_arrived_total", "actor", actor)
            ->Value();
    const int64_t hwm =
        reg.GetGauge("cwf_actor_queue_hwm", "actor", actor)->Max();
    // Backpressure blocked time is tracked per channel; attribute every
    // "Actor.port" channel of this actor.
    uint64_t blocked = 0;
    const std::string prefix = actor + ".";
    for (const std::string& port : ports) {
      if (port.rfind(prefix, 0) == 0) {
        blocked +=
            reg.GetCounter("cwf_receiver_blocked_us_total", "port", port)
                ->Value();
      }
    }
    const uint64_t decisions =
        reg.GetCounter("cwf_sched_decisions_total", "actor", actor)->Value();
    const uint64_t deferrals =
        reg.GetCounter("cwf_backpressure_deferrals_total", "actor", actor)
            ->Value();
    out << actor << '\t' << firings << '\t' << cost_mean << '\t' << consumed
        << '\t' << emitted << '\t' << arrived << '\t' << hwm << '\t'
        << blocked << '\t' << decisions << '\t' << deferrals << "\n";
  }
  // Ingest-server rows ride along as '#' comment lines so the 10-field
  // actor-row contract above stays untouched (older parsers that skip
  // comments keep working). Gated on the per-channel tuple counter: it
  // only exists once an IngestServer resolved its instruments, so a
  // workflow without network ingest emits no extra lines.
  const std::vector<std::string> ingest_channels =
      reg.LabelValues("cwf_ingest_tuples_total");
  if (!ingest_channels.empty()) {
    out << "# ingest live="
        << reg.GetGauge("cwf_ingest_connections")->Value()
        << " accepted=" << reg.GetCounter("cwf_ingest_accepted_total")->Value()
        << " rejected=" << reg.GetCounter("cwf_ingest_rejected_total")->Value()
        << " paused=" << reg.GetGauge("cwf_ingest_backpressure_paused")->Value()
        << " pauses="
        << reg.GetCounter("cwf_ingest_backpressure_pauses_total")->Value()
        << " bytes=" << reg.GetCounter("cwf_ingest_bytes_total")->Value()
        << " parse_errors="
        << reg.GetCounter("cwf_ingest_parse_errors_total")->Value()
        << " schema_rejects="
        << reg.GetCounter("cwf_ingest_schema_rejects_total")->Value()
        << " frame_errors="
        << reg.GetCounter("cwf_ingest_frame_errors_total")->Value() << "\n";
    for (const std::string& channel : ingest_channels) {
      out << "# ingest_channel " << channel << " tuples="
          << reg.GetCounter("cwf_ingest_tuples_total", "channel", channel)
                 ->Value()
          << "\n";
    }
  }
  return out.str();
}

namespace {

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.0 " << status << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

}  // namespace

MetricsServer::MetricsServer(MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry : &MetricsRegistry::Global()) {}

MetricsServer::~MetricsServer() { Stop(); }

Status MetricsServer::Start(uint16_t port) {
  if (listen_fd_.load() >= 0) {
    return Status::FailedPrecondition("metrics server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal("bind() failed: " +
                            std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return Status::Internal("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    return Status::Internal("listen() failed: " +
                            std::string(std::strerror(errno)));
  }
  stopping_ = false;
  listen_fd_.store(fd);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MetricsServer::AcceptLoop() {
  for (;;) {
    const int fd = listen_fd_.load();
    if (fd < 0) {
      return;
    }
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load()) {
        return;
      }
      continue;
    }
    ServeClient(client);
    ::close(client);
  }
}

void MetricsServer::ServeClient(int client_fd) {
  // Read up to the end of the request line; scrapers send tiny requests so
  // a bounded read loop suffices.
  std::string request;
  char buf[1024];
  while (request.find('\n') == std::string::npos && request.size() < 8192) {
    const ssize_t n = ::read(client_fd, buf, sizeof(buf));
    if (n <= 0) {
      return;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  std::string path = "/";
  {
    // "GET <path> HTTP/1.x"
    const size_t sp1 = request.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : request.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      path = request.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }
  const std::string response = HandleRequest(path);
  size_t off = 0;
  while (off < response.size()) {
    const ssize_t n =
        ::write(client_fd, response.data() + off, response.size() - off);
    if (n <= 0) {
      return;
    }
    off += static_cast<size_t>(n);
  }
  requests_.fetch_add(1);
}

std::string MetricsServer::HandleRequest(const std::string& path) const {
#ifdef CWF_OBS_ENABLED
  // Exposition rendering is itself host time; attribute it so a scrape-heavy
  // run shows up in its own decomposition instead of inflating other phases.
  static const ProfileSite* serialize_site =
      Profiler::Global().Site("<export>", ProfilePhase::kSerialization);
#endif
  CWF_PROFILE_SCOPE(serialize_site);
  if (path == "/metrics") {
    return HttpResponse("200 OK", "text/plain; version=0.0.4",
                        registry_->RenderPrometheus());
  }
  if (path == "/metrics.json") {
    return HttpResponse("200 OK", "application/json",
                        registry_->RenderJson());
  }
  if (path == "/top") {
    return HttpResponse("200 OK", "text/tab-separated-values",
                        RenderTopTsv(*registry_));
  }
  if (path == "/trace.json") {
    return HttpResponse("200 OK", "application/json",
                        GlobalTracer().RenderChromeJson());
  }
  if (path == "/profile") {
    // Phase-decomposition TSV followed by the critical-path section; rows
    // of the first part have exactly 5 tab-separated columns (cwf_top
    // --profile keys on that).
    return HttpResponse(
        "200 OK", "text/tab-separated-values",
        RenderProfileText(SnapshotProfile(*registry_)) + "\n" +
            RenderCriticalPathText(ComputeCriticalPaths(GlobalTracer())));
  }
  if (path == "/profile.json") {
    return HttpResponse(
        "200 OK", "application/json",
        "{\"profile\":" + RenderProfileJson(SnapshotProfile(*registry_)) +
            ",\"critical_path\":" +
            RenderCriticalPathJson(ComputeCriticalPaths(GlobalTracer())) +
            "}");
  }
  if (path == "/") {
    return HttpResponse("200 OK", "text/plain",
                        "confluence metrics server\n"
                        "endpoints: /metrics /metrics.json /top /trace.json "
                        "/profile /profile.json\n");
  }
  return HttpResponse("404 Not Found", "text/plain", "not found\n");
}

void MetricsServer::Stop() {
  stopping_ = true;
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    // shutdown() wakes the blocked accept(); the fd is closed only after
    // the accept thread joined (fd-recycling hazard, see TcpLineListener).
    ::shutdown(listen_fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd >= 0) {
    ::close(listen_fd);
  }
}

}  // namespace cwf::obs

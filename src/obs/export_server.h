// The metrics/trace export server: a minimal HTTP/1.0 endpoint over the
// same loopback-TCP infrastructure as stream/tcp_listener.
//
// Endpoints:
//   GET /metrics       Prometheus text exposition 0.0.4
//   GET /metrics.json  JSON snapshot of every instrument
//   GET /top           TSV per-actor table consumed by tools/cwf_top
//   GET /trace.json    Chrome trace-event JSON from the global wave tracer
//
// One accept thread serves requests synchronously (scrapes are cheap and a
// diagnostics endpoint does not need concurrency); every response closes
// the connection. Bind to port 0 for an ephemeral port (tests).

#ifndef CONFLUENCE_OBS_EXPORT_SERVER_H_
#define CONFLUENCE_OBS_EXPORT_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"

namespace cwf::obs {

/// \brief Render the /top per-actor TSV table from `registry`. First line
/// is "# ts_us <host monotonic µs>" (the client's rate time base), second
/// the column header, then one row per actor known to the registry.
std::string RenderTopTsv(const MetricsRegistry& registry);

class MetricsServer {
 public:
  /// \brief Serve `registry` (nullptr = the global registry).
  explicit MetricsServer(MetricsRegistry* registry = nullptr);
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// \brief Bind 127.0.0.1:`port` (0 = ephemeral) and start serving.
  Status Start(uint16_t port);

  /// \brief Shut the socket down and join the accept thread. Idempotent.
  void Stop();

  /// \brief The bound port (valid after Start succeeds).
  uint16_t port() const { return port_; }

  uint64_t requests_served() const { return requests_.load(); }

 private:
  void AcceptLoop();
  void ServeClient(int client_fd);

  /// \brief Build the full HTTP response for `path`.
  std::string HandleRequest(const std::string& path) const;

  MetricsRegistry* registry_;
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_{0};
  uint16_t port_ = 0;
  std::thread accept_thread_;
};

}  // namespace cwf::obs

#endif  // CONFLUENCE_OBS_EXPORT_SERVER_H_

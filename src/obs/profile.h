// Host-time profiler: attribute wall-clock host time to engine phases,
// per (actor, phase), with per-wave critical-path attribution on top of the
// wave-lineage tracer.
//
// Design:
//  * A fixed phase taxonomy (scheduler dispatch, receiver put/get,
//    prefire/fire/postfire, wave open/close, allocation,
//    blocked-on-backpressure, serialization) — every hot-path hook names one
//    phase, so the decomposition is comparable across directors and runs.
//  * Scoped measurement (ScopedProfilePhase / CWF_PROFILE_SCOPE) with
//    SELF-TIME semantics: a nested scope's duration is subtracted from its
//    enclosing scope, so summing every (actor, phase) cell approximates the
//    instrumented wall time without double counting (the "decomposition sums
//    to wall" invariant tests/obs/profile_test.cpp locks in).
//  * Thread-local ring buffers: a closing scope appends one fixed-size
//    sample to its thread's ring; the ring drains into the sharded
//    MetricsRegistry counters (relaxed atomics, no lock) when full, when the
//    thread exits, or on FlushCurrentThread(). The hot path never takes the
//    registry lock — sites are resolved once, at Director::Initialize.
//  * Compile-out: hook sites vanish when CONFLUENCE_OBS is OFF (macro
//    CWF_PROFILE_SCOPE expands to nothing); at runtime a single relaxed
//    atomic gate (SetProfilingEnabled, default OFF) keeps the cost of a
//    compiled-in but disabled profiler to one load per scope.
//
// Aggregates land in MetricsRegistry::Global() as one counter family per
// phase (`cwf_profile_<phase>_ns_total{actor=...}` plus a sample counter)
// and export through the MetricsServer's /profile and /profile.json
// endpoints next to the regular exposition.

#ifndef CONFLUENCE_OBS_PROFILE_H_
#define CONFLUENCE_OBS_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cwf::obs {

class WaveTracer;

// ---------------------------------------------------------------------------
// Phase taxonomy
// ---------------------------------------------------------------------------

/// \brief The fixed set of engine phases host time is attributed to.
enum class ProfilePhase : uint8_t {
  kSchedulerDispatch = 0,  ///< scheduler pick + director loop bookkeeping
  kReceiverPut,            ///< depositing an event into a receiver
  kReceiverGet,            ///< retrieving a window from a receiver
  kPrefire,                ///< window delivery + prefire evaluation
  kFire,                   ///< actor fire() proper (self time)
  kPostfire,               ///< postfire()
  kWaveOpen,               ///< stamping/broadcast bookkeeping of new events
  kWaveClose,              ///< wave-closure bookkeeping in the tracer
  kAllocation,             ///< wave/token/output-buffer allocation
  kBlocked,                ///< producer blocked on backpressure (Put wait)
  kSerialization,          ///< wire encode/decode + exposition rendering
};

inline constexpr size_t kProfilePhaseCount = 11;

/// \brief Stable lowercase slug ("scheduler_dispatch", "fire", ...) used in
/// metric names, /profile rows and BENCH_*.json keys.
const char* ProfilePhaseName(ProfilePhase phase);

/// \brief All phases in declaration order (iteration helper).
ProfilePhase ProfilePhaseAt(size_t index);

// ---------------------------------------------------------------------------
// Runtime toggle (independent of the CONFLUENCE_OBS compile-time gate).
// Default OFF: profiling spends two clock reads per scope, so it is opt-in
// per process (cwf_lrb_serve --profile, SetProfilingEnabled in code).
// ---------------------------------------------------------------------------

bool ProfilingEnabled();
void SetProfilingEnabled(bool enabled);

/// \brief Monotonic nanosecond clock the profiler stamps scopes with.
int64_t ProfileClockNanos();

// ---------------------------------------------------------------------------
// Sites and scopes
// ---------------------------------------------------------------------------

/// \brief One (actor label, phase) aggregation cell. Counter pointers are
/// stable for the process lifetime (registry-owned); a ring flush folds the
/// thread's samples into them with relaxed atomics.
struct ProfileSite {
  Counter* self_ns = nullptr;  ///< cwf_profile_<phase>_ns_total{actor}
  Counter* samples = nullptr;  ///< cwf_profile_<phase>_samples_total{actor}
};

/// \brief Process-wide site resolver + thread-ring management. Sites are
/// resolved at bind time (Director::Initialize via WorkflowTelemetry), never
/// on the hot path.
class Profiler {
 public:
  /// \brief The engine-wide profiler every director feeds.
  static Profiler& Global();

  /// \brief Resolve (and memoize) the aggregation cell for `actor` x
  /// `phase`. Stable for the process lifetime. `actor` is an actor name or
  /// a pseudo-label ("<scheduler>", "<ingest>", "<export>").
  const ProfileSite* Site(const std::string& actor, ProfilePhase phase);

  /// \brief Drain the calling thread's sample ring into the registry
  /// counters. Threads flush automatically when the ring fills and at
  /// thread exit; call this before reading aggregates on another thread.
  static void FlushCurrentThread();

  /// \brief Credit `ns` of already-measured host time to `site` without a
  /// scope (used for externally timed waits). Participates in the calling
  /// thread's ring like a scope would, but never in nesting.
  static void RecordExternal(const ProfileSite* site, int64_t ns);

  /// \brief Add `ns` to the instrumented-wall-time counter
  /// (cwf_profile_wall_ns_total) that /profile divides the decomposition
  /// by. Directors' run loops report their wall time here.
  static void AddWallNanos(int64_t ns);

 private:
  Profiler() = default;

  mutable OrderedMutex mutex_{"obs::Profiler::mutex"};
  std::map<std::pair<std::string, uint8_t>, ProfileSite> sites_
      CWF_GUARDED_BY(mutex_);
};

/// \brief RAII phase scope with self-time semantics. A scope built with a
/// null site, or while profiling is disabled, is inert (one relaxed load).
/// Scopes must strictly nest per thread (they are stack objects, so they
/// do).
class ScopedProfilePhase {
 public:
  explicit ScopedProfilePhase(const ProfileSite* site);
  ~ScopedProfilePhase();

  ScopedProfilePhase(const ScopedProfilePhase&) = delete;
  ScopedProfilePhase& operator=(const ScopedProfilePhase&) = delete;

 private:
  bool active_;
};

/// \brief RAII wall-time reporter for a director run loop: adds the scope's
/// host duration to cwf_profile_wall_ns_total when profiling is enabled.
class ScopedProfileWall {
 public:
  ScopedProfileWall();
  ~ScopedProfileWall();

  ScopedProfileWall(const ScopedProfileWall&) = delete;
  ScopedProfileWall& operator=(const ScopedProfileWall&) = delete;

 private:
  int64_t start_ns_;
};

// The hook-site macro: compiles to nothing when telemetry is off, so an
// -DCONFLUENCE_OBS=OFF build carries zero profiler hooks.
#ifdef CWF_OBS_ENABLED
#define CWF_PROFILE_CONCAT_INNER(a, b) a##b
#define CWF_PROFILE_CONCAT(a, b) CWF_PROFILE_CONCAT_INNER(a, b)
#define CWF_PROFILE_SCOPE(site)                   \
  ::cwf::obs::ScopedProfilePhase CWF_PROFILE_CONCAT( \
      cwf_profile_scope_, __LINE__)(site)
#define CWF_PROFILE_WALL_SCOPE()                     \
  ::cwf::obs::ScopedProfileWall CWF_PROFILE_CONCAT( \
      cwf_profile_wall_, __LINE__)
#else
#define CWF_PROFILE_SCOPE(site) static_cast<void>(0)
#define CWF_PROFILE_WALL_SCOPE() static_cast<void>(0)
#endif

// ---------------------------------------------------------------------------
// Snapshot + rendering (the /profile endpoint and cwf_top --profile)
// ---------------------------------------------------------------------------

/// \brief One aggregated (actor, phase) row.
struct ProfileEntry {
  std::string actor;
  ProfilePhase phase = ProfilePhase::kFire;
  uint64_t self_ns = 0;
  uint64_t samples = 0;
};

struct ProfileSnapshot {
  std::vector<ProfileEntry> entries;  ///< sorted by self_ns descending
  uint64_t wall_ns = 0;               ///< cwf_profile_wall_ns_total
  /// Fraction of wall_ns the entries cover (0 when wall_ns == 0).
  double CoverageFraction() const;
  /// Total self time per phase, µs (BENCH_*.json host_phase_us section).
  std::map<std::string, double> PhaseTotalsUs() const;
};

/// \brief Read every profile counter out of `registry`. Flushes the calling
/// thread's ring first.
ProfileSnapshot SnapshotProfile(MetricsRegistry& registry);

/// \brief TSV: "# wall_us N", "# coverage_pct P", header, one row per
/// (actor, phase) — the machine-readable side consumed by cwf_top
/// --profile.
std::string RenderProfileText(const ProfileSnapshot& snapshot);

/// \brief JSON: {"wall_us":..,"coverage_pct":..,"entries":[...]}.
std::string RenderProfileJson(const ProfileSnapshot& snapshot);

// ---------------------------------------------------------------------------
// Per-wave critical-path attribution
// ---------------------------------------------------------------------------

/// \brief One contributor on the aggregated critical path: an actor's
/// processing spans or its queueing spans (the channel wait feeding it).
struct CriticalPathContributor {
  std::string actor;
  bool queueing = false;  ///< true: time queued toward `actor`
  int64_t total_us = 0;   ///< summed engine-time contribution across waves
  double share = 0;       ///< of the group's total birth→closure latency
};

/// \brief All analyzed waves that terminated at one actor (for LRB: the
/// query type — TollNotification vs AccidentNotificationOut).
struct CriticalPathGroup {
  std::string terminal_actor;
  uint64_t waves = 0;
  int64_t total_latency_us = 0;  ///< summed birth→closure across the group
  std::vector<CriticalPathContributor> top;  ///< descending, <= top_n
};

struct CriticalPathReport {
  std::vector<CriticalPathGroup> groups;  ///< by total_latency_us descending
  uint64_t waves_analyzed = 0;
  /// Closed waves dropped because ring wraparound evicted their birth (or
  /// any earlier span): counted, never attributed partially. Mirrored into
  /// the cwf_trace_truncated_waves gauge.
  uint64_t truncated_waves = 0;
};

/// \brief Reconstruct each closed wave's birth→closure chain from the
/// tracer's ring buffer and aggregate the dominating contributors, top
/// `top_n` per terminal actor. Waves whose early spans were evicted by ring
/// wraparound are dropped and counted (cwf_trace_truncated_waves), not
/// partially attributed.
CriticalPathReport ComputeCriticalPaths(const WaveTracer& tracer,
                                        size_t top_n = 3);

std::string RenderCriticalPathText(const CriticalPathReport& report);
std::string RenderCriticalPathJson(const CriticalPathReport& report);

}  // namespace cwf::obs

#endif  // CONFLUENCE_OBS_PROFILE_H_

#include "obs/trace_buffer.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/wave.h"
#include "obs/metrics.h"

namespace cwf::obs {
namespace {

/// Live-wave table cap: waves whose events expire out of window scope are
/// never consumed, so the oldest entry is evicted once the table fills.
constexpr size_t kMaxLiveWaves = 8192;

}  // namespace

// ---------------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------------

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<size_t>(capacity_, 4096));
}

void TraceBuffer::Append(const TraceEvent& event) {
  ScopedLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_ % capacity_] = event;
  }
  ++next_;
  ++appended_;
}

std::vector<TraceEvent> TraceBuffer::SnapshotEvents() const {
  ScopedLock lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring wrapped: oldest entry is at the write cursor.
    const size_t start = next_ % capacity_;
    out.insert(out.end(), ring_.begin() + start, ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + start);
  }
  return out;
}

uint64_t TraceBuffer::total_appended() const {
  ScopedLock lock(mutex_);
  return appended_;
}

uint64_t TraceBuffer::dropped() const {
  ScopedLock lock(mutex_);
  return appended_ > ring_.size() ? appended_ - ring_.size() : 0;
}

void TraceBuffer::Clear() {
  ScopedLock lock(mutex_);
  ring_.clear();
  next_ = 0;
  appended_ = 0;
}

// ---------------------------------------------------------------------------
// WaveTracer
// ---------------------------------------------------------------------------

uint32_t WaveTracer::RegisterTrack(const std::string& actor_name) {
  ScopedLock lock(mutex_);
  track_names_.push_back(actor_name);
  return 10 + 2 * static_cast<uint32_t>(track_names_.size() - 1);
}

void WaveTracer::ResetTopology(bool clear_buffer) {
  {
    ScopedLock lock(mutex_);
    track_names_.clear();
    live_.clear();
  }
  if (clear_buffer) {
    buffer_.Clear();
  }
}

void WaveTracer::OnEventEmitted(const WaveTag& wave, Timestamp event_ts,
                                Timestamp now, size_t fanout) {
  const uint64_t root = wave.root();
  bool born = false;
  {
    ScopedLock lock(mutex_);
    auto [it, inserted] = live_.try_emplace(root);
    if (inserted) {
      if (live_.size() > kMaxLiveWaves) {
        // Evict the entry with the oldest birth (expired, never closing).
        auto oldest = live_.begin();
        for (auto walk = live_.begin(); walk != live_.end(); ++walk) {
          if (walk->second.birth < oldest->second.birth) {
            oldest = walk;
          }
        }
        if (oldest != it) {
          live_.erase(oldest);
        }
      }
      it->second.birth = event_ts;
      it->second.last_done = event_ts;
      if (wave.depth() == 0) {
        born = true;
        ++waves_born_;
      }
    }
    it->second.in_flight += static_cast<int64_t>(fanout);
  }
  if (born) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kWaveBorn;
    ev.ts = event_ts.micros();
    ev.tid = 1;
    ev.wave_root = root;
    buffer_.Append(ev);
  }
}

void WaveTracer::OnFiring(uint32_t tid, const WaveTag* wave, Timestamp start,
                          Timestamp end, size_t consumed, size_t emitted) {
  uint64_t root = 0;
  bool queued_span = false;
  Timestamp queued_from;
  bool closed = false;
  Timestamp birth;
  if (wave != nullptr) {
    root = wave->root();
    ScopedLock lock(mutex_);
    auto it = live_.find(root);
    if (it != live_.end()) {
      LiveWave& lw = it->second;
      if (start > lw.last_done) {
        queued_span = true;
        queued_from = lw.last_done;
      }
      lw.last_done = end;
      lw.in_flight -= static_cast<int64_t>(consumed);
      if (lw.in_flight <= 0) {
        closed = true;
        birth = lw.birth;
        ++waves_closed_;
        live_.erase(it);
      }
    }
  }

  if (queued_span) {
    TraceEvent q;
    q.kind = TraceEvent::Kind::kQueued;
    q.ts = queued_from.micros();
    q.dur = start - queued_from;
    q.tid = tid + 1;  // the actor's queueing track
    q.wave_root = root;
    buffer_.Append(q);
  }
  TraceEvent b;
  b.kind = TraceEvent::Kind::kFiringBegin;
  b.ts = start.micros();
  b.tid = tid;
  b.wave_root = root;
  b.consumed = static_cast<uint32_t>(consumed);
  b.emitted = static_cast<uint32_t>(emitted);
  buffer_.Append(b);
  TraceEvent e;
  e.kind = TraceEvent::Kind::kFiringEnd;
  e.ts = end.micros();
  e.tid = tid;
  e.wave_root = root;
  buffer_.Append(e);
  if (closed) {
    if (Histogram* sink = latency_sink_.load(std::memory_order_acquire)) {
      sink->Record(end - birth);
    }
    TraceEvent c;
    c.kind = TraceEvent::Kind::kWaveClosed;
    c.ts = end.micros();
    c.tid = 1;
    c.wave_root = root;
    buffer_.Append(c);
    TraceEvent span;
    span.kind = TraceEvent::Kind::kWaveSpan;
    span.ts = birth.micros();
    span.dur = end - birth;
    span.tid = 1;
    span.wave_root = root;
    buffer_.Append(span);
  }
}

void WaveTracer::Instant(uint32_t tid, Timestamp now) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kInstant;
  ev.ts = now.micros();
  ev.tid = tid;
  buffer_.Append(ev);
}

size_t WaveTracer::live_waves() const {
  ScopedLock lock(mutex_);
  return live_.size();
}

uint64_t WaveTracer::waves_born() const {
  ScopedLock lock(mutex_);
  return waves_born_;
}

uint64_t WaveTracer::waves_closed() const {
  ScopedLock lock(mutex_);
  return waves_closed_;
}

std::vector<std::string> WaveTracer::TrackNames() const {
  ScopedLock lock(mutex_);
  return track_names_;
}

std::string WaveTracer::RenderChromeJson() const {
  std::vector<TraceEvent> events = buffer_.SnapshotEvents();
  std::vector<std::string> tracks;
  {
    ScopedLock lock(mutex_);
    tracks = track_names_;
  }
  // The exported timeline must be ts-ordered (and a stable sort keeps each
  // B before its matching E when a firing has zero duration).
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts < b.ts;
                   });

  auto track_name = [&](uint32_t tid) -> std::string {
    if (tid == 1) {
      return "waves";
    }
    const size_t index = (tid - 10) / 2;
    if (index >= tracks.size()) {
      return "track" + std::to_string(tid);
    }
    return (tid % 2 == 0) ? tracks[index] : tracks[index] + " (queue)";
  };

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Metadata first: process name plus one thread_name record per track.
  out << R"({"name":"process_name","cat":"__metadata","ph":"M","ts":0,)"
      << R"("pid":1,"tid":1,"args":{"name":"confluence"}})";
  out << ",\n"
      << R"({"name":"thread_name","cat":"__metadata","ph":"M","ts":0,)"
      << R"("pid":1,"tid":1,"args":{"name":"waves"}})";
  for (size_t i = 0; i < tracks.size(); ++i) {
    for (uint32_t offset = 0; offset < 2; ++offset) {
      const uint32_t tid = 10 + 2 * static_cast<uint32_t>(i) + offset;
      out << ",\n"
          << R"({"name":"thread_name","cat":"__metadata","ph":"M","ts":0,)"
          << R"("pid":1,"tid":)" << tid << R"(,"args":{"name":")"
          << track_name(tid) << R"("}})";
    }
  }

  char line[512];
  for (const TraceEvent& ev : events) {
    const std::string wave = "t" + std::to_string(ev.wave_root);
    switch (ev.kind) {
      case TraceEvent::Kind::kFiringBegin:
        std::snprintf(line, sizeof(line),
                      "{\"name\":\"%s\",\"cat\":\"firing\",\"ph\":\"B\","
                      "\"ts\":%" PRId64
                      ",\"pid\":1,\"tid\":%u,\"args\":{\"wave\":\"%s\","
                      "\"consumed\":%u,\"emitted\":%u}}",
                      track_name(ev.tid).c_str(), ev.ts, ev.tid, wave.c_str(),
                      ev.consumed, ev.emitted);
        break;
      case TraceEvent::Kind::kFiringEnd:
        std::snprintf(line, sizeof(line),
                      "{\"name\":\"%s\",\"cat\":\"firing\",\"ph\":\"E\","
                      "\"ts\":%" PRId64 ",\"pid\":1,\"tid\":%u}",
                      track_name(ev.tid).c_str(), ev.ts, ev.tid);
        break;
      case TraceEvent::Kind::kQueued:
        std::snprintf(line, sizeof(line),
                      "{\"name\":\"queued\",\"cat\":\"queue\",\"ph\":\"X\","
                      "\"ts\":%" PRId64 ",\"dur\":%" PRId64
                      ",\"pid\":1,\"tid\":%u,\"args\":{\"wave\":\"%s\"}}",
                      ev.ts, ev.dur, ev.tid, wave.c_str());
        break;
      case TraceEvent::Kind::kWaveBorn:
      case TraceEvent::Kind::kWaveClosed:
        std::snprintf(
            line, sizeof(line),
            "{\"name\":\"wave %s %s\",\"cat\":\"wave\",\"ph\":\"i\","
            "\"ts\":%" PRId64
            ",\"pid\":1,\"tid\":1,\"s\":\"p\",\"args\":{\"wave\":\"%s\"}}",
            wave.c_str(),
            ev.kind == TraceEvent::Kind::kWaveBorn ? "born" : "closed", ev.ts,
            wave.c_str());
        break;
      case TraceEvent::Kind::kWaveSpan:
        std::snprintf(line, sizeof(line),
                      "{\"name\":\"wave %s\",\"cat\":\"wave\",\"ph\":\"X\","
                      "\"ts\":%" PRId64 ",\"dur\":%" PRId64
                      ",\"pid\":1,\"tid\":1,\"args\":{\"wave\":\"%s\"}}",
                      wave.c_str(), ev.ts, ev.dur, wave.c_str());
        break;
      case TraceEvent::Kind::kInstant:
        std::snprintf(line, sizeof(line),
                      "{\"name\":\"pick\",\"cat\":\"sched\",\"ph\":\"i\","
                      "\"ts\":%" PRId64
                      ",\"pid\":1,\"tid\":%u,\"s\":\"t\"}",
                      ev.ts, ev.tid);
        break;
    }
    out << ",\n" << line;
  }
  out << "\n]}\n";
  return out.str();
}

Status WaveTracer::WriteChromeJson(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  file << RenderChromeJson();
  file.close();
  if (!file) {
    return Status::Internal("failed writing trace output file: " + path);
  }
  return Status::OK();
}

}  // namespace cwf::obs

// The window operator that runs on an input queue.
//
// "The windows are calculated by a window operator running on the queue. The
// window operator will try to produce a window whenever it is asked by the
// attached workflow activity. When events expire they are pushed to an
// expired items queue which are optionally handled by another workflow
// activity."
//
// The operator maintains one logical queue per group-by key and implements
// tuple-, time- and wave-based window formation with the five-parameter
// semantics of WindowSpec. Time windows may be closed either by the arrival
// of an event belonging to a later window or by a registered timeout
// (`NextDeadline` / `OnTimeout`), exactly as the TM windowed receiver does in
// the paper.

#ifndef CONFLUENCE_WINDOW_WINDOW_OPERATOR_H_
#define CONFLUENCE_WINDOW_WINDOW_OPERATOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/event.h"
#include "window/window_spec.h"

namespace cwf {

/// \brief Group-by key: the tuple of Values extracted from a record.
using GroupKey = std::vector<Value>;

/// \brief Stateful window formation over a (possibly partitioned) queue.
///
/// Not thread-safe; callers (receivers) serialize access.
class WindowOperator {
 public:
  explicit WindowOperator(WindowSpec spec);

  const WindowSpec& spec() const { return spec_; }

  /// \brief Insert an event; any windows it completes are appended to `out`.
  ///
  /// Returns InvalidArgument if the spec has a group-by but the event's token
  /// is not a record carrying all group-by fields.
  Status Put(const CWEvent& event, std::vector<Window>* out);

  /// \brief Earliest instant at which a pending time window must be closed by
  /// a timer; Timestamp::Max() when no timer is needed.
  Timestamp NextDeadline() const;

  /// \brief Close (and emit into `out`) every group window whose deadline is
  /// <= `now`. No-op for non-time windows.
  void OnTimeout(Timestamp now, std::vector<Window>* out);

  /// \brief Force-close any non-empty pending window in every group
  /// (end-of-stream flush).
  void Flush(std::vector<Window>* out);

  /// \brief Remove and return events that slid out of every future window.
  std::vector<CWEvent> DrainExpired();

  /// \brief Events currently buffered across all groups.
  size_t PendingEventCount() const;

  /// \brief Number of distinct group-by partitions seen so far.
  size_t GroupCount() const { return groups_.size(); }

  /// \brief Total windows produced over the operator's lifetime.
  uint64_t windows_produced() const { return windows_produced_; }

 private:
  struct GroupState {
    std::deque<CWEvent> queue;
    // Tuple windows with step > size: events between windows to skip.
    size_t skip_next = 0;
    // -- time windows --
    bool start_set = false;
    Timestamp window_start;  // inclusive; window covers [start, start+size)
    // -- wave windows --
    // Events buffered per (sub-)wave until the wave is complete; completed
    // waves queue up in completion order.
    std::map<WaveTag, std::vector<CWEvent>> wave_buffers;
    std::map<WaveTag, uint32_t> wave_last_serial;
    std::deque<WaveTag> completed_waves;
    /// Greatest wave already consumed into a produced window; arrivals at
    /// or behind it (wave-tag monotonicity invariant) abort via CWF_DCHECK.
    WaveTag consumed_wave_frontier;
    bool has_consumed_frontier = false;
    Token group_key_token;
    /// Deadline currently registered in deadline_index_ (Max = none).
    Timestamp registered_deadline = Timestamp::Max();
  };

  Status ExtractKey(const CWEvent& event, GroupKey* key,
                    Token* key_token) const;

  void PutTuple(GroupState* g, const CWEvent& event, std::vector<Window>* out);
  void PutTime(GroupState* g, const CWEvent& event, std::vector<Window>* out);
  void PutWave(GroupState* g, const CWEvent& event, std::vector<Window>* out);

  /// Emit the current time window of `g` and slide it forward by `step`.
  void CloseTimeWindow(GroupState* g, std::vector<Window>* out);

  /// Re-register `g`'s formation deadline in deadline_index_ after any
  /// mutation (keeps NextDeadline()/OnTimeout() off the O(groups) path).
  void UpdateDeadline(const GroupKey& key, GroupState* g);

  Window MakeWindow(const GroupState& g, size_t count) const;

  WindowSpec spec_;
  std::map<GroupKey, GroupState> groups_;
  /// Pending time-window deadlines, earliest first.
  std::multimap<Timestamp, GroupKey> deadline_index_;
  std::vector<CWEvent> expired_;
  uint64_t windows_produced_ = 0;
};

}  // namespace cwf

#endif  // CONFLUENCE_WINDOW_WINDOW_OPERATOR_H_

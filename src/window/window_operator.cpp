#include "window/window_operator.h"

#include <algorithm>

namespace cwf {

WindowOperator::WindowOperator(WindowSpec spec) : spec_(std::move(spec)) {
  Status st = spec_.Validate();
  CWF_CHECK_MSG(st.ok(), "invalid WindowSpec: " << st.ToString());
}

Status WindowOperator::ExtractKey(const CWEvent& event, GroupKey* key,
                                  Token* key_token) const {
  key->clear();
  if (spec_.group_by.empty()) {
    *key_token = Token();
    return Status::OK();
  }
  if (!event.token.is_record()) {
    return Status::InvalidArgument(
        "group-by window requires record tokens, got " +
        event.token.ToString());
  }
  const RecordPtr& rec = event.token.AsRecord();
  auto key_rec = std::make_shared<Record>();
  for (const std::string& field : spec_.group_by) {
    auto value = rec->Get(field);
    if (!value.ok()) {
      return Status::InvalidArgument("group-by field '" + field +
                                     "' missing from " + rec->ToString());
    }
    key->push_back(value.value());
    key_rec->Set(field, std::move(value).value());
  }
  *key_token = Token(RecordPtr(std::move(key_rec)));
  return Status::OK();
}

Window WindowOperator::MakeWindow(const GroupState& g, size_t count) const {
  Window w;
  w.group_key = g.group_key_token;
  w.events.assign(g.queue.begin(), g.queue.begin() + count);
  return w;
}

Status WindowOperator::Put(const CWEvent& event, std::vector<Window>* out) {
  GroupKey key;
  Token key_token;
  CWF_RETURN_NOT_OK(ExtractKey(event, &key, &key_token));
  GroupState& g = groups_[key];
  g.group_key_token = key_token;

  switch (spec_.unit) {
    case WindowUnit::kTuples:
      PutTuple(&g, event, out);
      break;
    case WindowUnit::kTime:
      PutTime(&g, event, out);
      UpdateDeadline(key, &g);
      break;
    case WindowUnit::kWaves:
      PutWave(&g, event, out);
      break;
  }
  return Status::OK();
}

void WindowOperator::PutTuple(GroupState* g, const CWEvent& event,
                              std::vector<Window>* out) {
  if (g->skip_next > 0) {
    // step > size: this event falls in the gap between windows and will
    // never be part of one.
    --g->skip_next;
    expired_.push_back(event);
    return;
  }
  g->queue.push_back(event);
  const size_t size = static_cast<size_t>(spec_.size);
  const size_t step = static_cast<size_t>(spec_.step);
  while (g->queue.size() >= size) {
    out->push_back(MakeWindow(*g, size));
    ++windows_produced_;
    if (spec_.delete_used_events) {
      // Consumption semantics: the produced window uses up its events.
      g->queue.erase(g->queue.begin(), g->queue.begin() + size);
    } else {
      // Slide by `step`; whatever falls before the new window start has left
      // every future window and expires. If the step reaches past the queue
      // (step > size), remember how many upcoming events to skip.
      const size_t drop = std::min(step, g->queue.size());
      g->skip_next = step - drop;
      for (size_t i = 0; i < drop; ++i) {
        expired_.push_back(std::move(g->queue.front()));
        g->queue.pop_front();
      }
    }
  }
}

void WindowOperator::PutTime(GroupState* g, const CWEvent& event,
                             std::vector<Window>* out) {
  const Duration size = spec_.size;
  const Duration step = spec_.step;
  if (!g->start_set) {
    // Epoch-align the first window so tumbling minutes land on minute
    // boundaries regardless of when the first event of the group arrives.
    g->window_start =
        Timestamp((event.timestamp.micros() / step) * step);
    g->start_set = true;
  }
  for (;;) {
    if (event.timestamp < g->window_start) {
      // Straggler: before the (possibly just advanced) current window.
      expired_.push_back(event);
      return;
    }
    if (event.timestamp < g->window_start + size) {
      g->queue.push_back(event);
      return;
    }
    if (g->queue.empty()) {
      // Nothing pending: fast-forward the window to cover the new event.
      const int64_t target = event.timestamp.micros();
      g->window_start = Timestamp((target / step) * step);
      // Ensure the event is inside [start, start+size).
      while (g->window_start + size <= event.timestamp) {
        g->window_start += step;
      }
      continue;
    }
    CloseTimeWindow(g, out);
  }
}

void WindowOperator::CloseTimeWindow(GroupState* g, std::vector<Window>* out) {
  if (!g->queue.empty()) {
    out->push_back(MakeWindow(*g, g->queue.size()));
    ++windows_produced_;
  }
  g->window_start += spec_.step;
  if (spec_.delete_used_events) {
    g->queue.clear();
  } else {
    while (!g->queue.empty() &&
           g->queue.front().timestamp < g->window_start) {
      expired_.push_back(std::move(g->queue.front()));
      g->queue.pop_front();
    }
  }
}

void WindowOperator::UpdateDeadline(const GroupKey& key, GroupState* g) {
  Timestamp deadline = Timestamp::Max();
  if (spec_.unit == WindowUnit::kTime && spec_.formation_timeout >= 0 &&
      g->start_set && !g->queue.empty()) {
    deadline = g->window_start + spec_.size + spec_.formation_timeout;
  }
  if (deadline == g->registered_deadline) {
    return;
  }
  if (g->registered_deadline != Timestamp::Max()) {
    auto range = deadline_index_.equal_range(g->registered_deadline);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == key) {
        deadline_index_.erase(it);
        break;
      }
    }
  }
  if (deadline != Timestamp::Max()) {
    deadline_index_.emplace(deadline, key);
  }
  g->registered_deadline = deadline;
}

void WindowOperator::PutWave(GroupState* g, const CWEvent& event,
                             std::vector<Window>* out) {
  // The wave an event synchronizes under is its parent tag (events t.3.1 …
  // t.3.m synchronize as sub-wave t.3); a root external event is a complete
  // singleton wave by itself.
  WaveTag wave_id =
      event.wave.depth() == 0 ? event.wave : event.wave.Parent();
  // Wave-tag monotonicity: an event may not arrive for a wave that was
  // already consumed into a produced window — it could never be
  // synchronized, and its resurrected buffer would strand forever. Pending
  // (buffered or completed-but-unwindowed) waves legitimately interleave.
  CWF_DCHECK_MSG(
      !g->has_consumed_frontier || g->consumed_wave_frontier < wave_id ||
          g->wave_buffers.count(wave_id) > 0 ||
          std::find(g->completed_waves.begin(), g->completed_waves.end(),
                    wave_id) != g->completed_waves.end(),
      "wave-tag monotonicity violated: event "
          << event.wave.ToString() << " regresses behind consumed wave "
          << g->consumed_wave_frontier.ToString());
  auto& buffer = g->wave_buffers[wave_id];
  buffer.push_back(event);
  if (event.last_in_wave) {
    g->wave_last_serial[wave_id] =
        event.wave.depth() == 0 ? 1 : event.wave.path().back();
  }
  auto last_it = g->wave_last_serial.find(wave_id);
  if (last_it != g->wave_last_serial.end() &&
      buffer.size() >= last_it->second) {
    g->completed_waves.push_back(wave_id);
    g->wave_last_serial.erase(last_it);
  }

  const size_t size = static_cast<size_t>(spec_.size);
  const size_t step = static_cast<size_t>(spec_.step);
  while (g->completed_waves.size() >= size) {
    Window w;
    w.group_key = g->group_key_token;
    for (size_t i = 0; i < size; ++i) {
      const auto& events = g->wave_buffers[g->completed_waves[i]];
      w.events.insert(w.events.end(), events.begin(), events.end());
    }
    out->push_back(std::move(w));
    ++windows_produced_;
    const size_t drop =
        spec_.delete_used_events ? size
                                 : std::min(step, g->completed_waves.size());
    for (size_t i = 0; i < drop; ++i) {
      const WaveTag& dropped = g->completed_waves.front();
      if (!g->has_consumed_frontier || g->consumed_wave_frontier < dropped) {
        g->consumed_wave_frontier = dropped;
        g->has_consumed_frontier = true;
      }
      if (!spec_.delete_used_events) {
        auto& events = g->wave_buffers[dropped];
        expired_.insert(expired_.end(), events.begin(), events.end());
      }
      g->wave_buffers.erase(dropped);
      g->completed_waves.pop_front();
    }
  }
}

Timestamp WindowOperator::NextDeadline() const {
  return deadline_index_.empty() ? Timestamp::Max()
                                 : deadline_index_.begin()->first;
}

void WindowOperator::OnTimeout(Timestamp now, std::vector<Window>* out) {
  if (spec_.unit != WindowUnit::kTime || spec_.formation_timeout < 0) {
    return;
  }
  while (!deadline_index_.empty() && deadline_index_.begin()->first <= now) {
    const GroupKey key = deadline_index_.begin()->second;
    GroupState& g = groups_[key];
    while (g.start_set && !g.queue.empty() &&
           g.window_start + spec_.size + spec_.formation_timeout <= now) {
      const size_t before = out->size();
      CloseTimeWindow(&g, out);
      for (size_t i = before; i < out->size(); ++i) {
        (*out)[i].closed_by_timeout = true;
      }
    }
    UpdateDeadline(key, &g);
  }
}

void WindowOperator::Flush(std::vector<Window>* out) {
  for (auto& [key, g] : groups_) {
    if (spec_.unit == WindowUnit::kWaves) {
      // Emit any complete-but-unwindowed waves as one final bundle.
      Window w;
      w.group_key = g.group_key_token;
      for (const WaveTag& tag : g.completed_waves) {
        auto& events = g.wave_buffers[tag];
        w.events.insert(w.events.end(), events.begin(), events.end());
      }
      if (!w.events.empty()) {
        out->push_back(std::move(w));
        ++windows_produced_;
      }
      g.completed_waves.clear();
      g.wave_buffers.clear();
      g.wave_last_serial.clear();
      continue;
    }
    if (!g.queue.empty()) {
      out->push_back(MakeWindow(g, g.queue.size()));
      ++windows_produced_;
      g.queue.clear();
    }
    UpdateDeadline(key, &g);
  }
}

std::vector<CWEvent> WindowOperator::DrainExpired() {
  std::vector<CWEvent> out;
  out.swap(expired_);
  return out;
}

size_t WindowOperator::PendingEventCount() const {
  size_t count = 0;
  for (const auto& [key, g] : groups_) {
    count += g.queue.size();
    for (const auto& [tag, events] : g.wave_buffers) {
      count += events.size();
    }
  }
  return count;
}

}  // namespace cwf

#include "window/window_spec.h"

#include <sstream>

namespace cwf {

const char* WindowUnitName(WindowUnit unit) {
  switch (unit) {
    case WindowUnit::kTuples:
      return "tuples";
    case WindowUnit::kTime:
      return "time";
    case WindowUnit::kWaves:
      return "waves";
  }
  return "?";
}

WindowSpec WindowSpec::SingleEvent() {
  WindowSpec spec;
  spec.unit = WindowUnit::kTuples;
  spec.size = 1;
  spec.step = 1;
  spec.delete_used_events = true;
  return spec;
}

WindowSpec WindowSpec::Tuples(int64_t size, int64_t step) {
  WindowSpec spec;
  spec.unit = WindowUnit::kTuples;
  spec.size = size;
  spec.step = step;
  return spec;
}

WindowSpec WindowSpec::Time(Duration size, Duration step) {
  WindowSpec spec;
  spec.unit = WindowUnit::kTime;
  spec.size = size;
  spec.step = step;
  return spec;
}

WindowSpec WindowSpec::Waves(int64_t size, int64_t step) {
  WindowSpec spec;
  spec.unit = WindowUnit::kWaves;
  spec.size = size;
  spec.step = step;
  return spec;
}

WindowSpec& WindowSpec::GroupBy(std::vector<std::string> fields) {
  group_by = std::move(fields);
  return *this;
}

WindowSpec& WindowSpec::DeleteUsedEvents(bool del) {
  delete_used_events = del;
  return *this;
}

WindowSpec& WindowSpec::FormationTimeout(Duration timeout) {
  formation_timeout = timeout;
  return *this;
}

ConsumptionMode WindowSpec::consumption_mode() const {
  if (delete_used_events) {
    return ConsumptionMode::kRecent;
  }
  return step < size ? ConsumptionMode::kContinuous
                     : ConsumptionMode::kUnrestricted;
}

bool WindowSpec::IsTrivial() const {
  return unit == WindowUnit::kTuples && size == 1 && step == 1 &&
         group_by.empty() && delete_used_events;
}

Status WindowSpec::Validate() const {
  if (size <= 0) {
    return Status::InvalidArgument("window size must be positive, got " +
                                   std::to_string(size));
  }
  if (step <= 0) {
    return Status::InvalidArgument("window step must be positive, got " +
                                   std::to_string(step));
  }
  if (unit != WindowUnit::kTime && formation_timeout > 0) {
    return Status::InvalidArgument(
        "formation_timeout only applies to time windows");
  }
  for (const std::string& field : group_by) {
    if (field.empty()) {
      return Status::InvalidArgument("empty group-by field name");
    }
  }
  return Status::OK();
}

std::string WindowSpec::ToString() const {
  std::ostringstream oss;
  oss << "Window{unit=" << WindowUnitName(unit) << ", size=" << size
      << ", step=" << step;
  if (unit == WindowUnit::kTime) {
    oss << ", timeout=" << formation_timeout << "us";
  }
  if (!group_by.empty()) {
    oss << ", group_by=[";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) {
        oss << ",";
      }
      oss << group_by[i];
    }
    oss << "]";
  }
  oss << ", delete_used=" << (delete_used_events ? "true" : "false") << "}";
  return oss.str();
}

}  // namespace cwf

#include "window/tm_windowed_receiver.h"

// TMWindowedReceiver is header-only; this TU anchors the vtable.

namespace cwf {}  // namespace cwf

// Window semantics on actor-input queues.
//
// CONFLuEnCE attaches windows to the *queues on activity inputs* (not to
// query operators as a DSMS does). Five parameters define the semantics:
//
//   size, step, window_formation_timeout, group-by, delete_used_events
//
// `size`/`step` are measured in tuples, time, or waves. Together with the
// delete_used_events flag they express the hybrid window/consumption modes
// of Adaikkalavan & Chakravarthy (unrestricted / recent / continuous).

#ifndef CONFLUENCE_WINDOW_WINDOW_SPEC_H_
#define CONFLUENCE_WINDOW_WINDOW_SPEC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace cwf {

/// \brief Unit in which window size and step are measured.
enum class WindowUnit {
  kTuples,  ///< count-based windows ("last 4 position reports")
  kTime,    ///< time-based windows ("1 minute, sliding every minute")
  kWaves,   ///< wave-based windows ("all events of one external event")
};

const char* WindowUnitName(WindowUnit unit);

/// \brief Consumption mode shorthand (maps onto delete_used_events + step).
enum class ConsumptionMode {
  kUnrestricted,  ///< events stay until they slide out of range
  kContinuous,    ///< overlapping windows share events (delete on expiry only)
  kRecent,        ///< every produced window consumes its events
};

/// \brief Full description of the window semantics on one input port.
struct WindowSpec {
  WindowUnit unit = WindowUnit::kTuples;

  /// Window extent: tuple count, microseconds, or wave count.
  int64_t size = 1;

  /// Slide between consecutive windows, in the same unit as `size`.
  int64_t step = 1;

  /// For time windows: how long after a window's logical close the receiver
  /// may wait for straggling events before a timer closes it. 0 means the
  /// window closes exactly at its boundary via a registered timeout event.
  /// Negative means "no timeout": only an arriving later event closes it.
  Duration formation_timeout = 0;

  /// Record fields whose values partition the stream into per-key queues.
  std::vector<std::string> group_by;

  /// If true, every event delivered in a produced window is deleted from the
  /// queue (recent/consumption semantics). If false, events persist until
  /// they slide out of all future windows, at which point they move to the
  /// expired-items queue.
  bool delete_used_events = false;

  /// \brief Trivial spec: deliver every event alone, consuming it.
  static WindowSpec SingleEvent();

  /// \brief Count-based window of `size` tuples sliding by `step`.
  static WindowSpec Tuples(int64_t size, int64_t step);

  /// \brief Time-based window of `size` sliding by `step` microseconds.
  static WindowSpec Time(Duration size, Duration step);

  /// \brief Wave-synchronization window over `size` complete waves.
  static WindowSpec Waves(int64_t size = 1, int64_t step = 1);

  /// \brief Builder-style group-by setter.
  WindowSpec& GroupBy(std::vector<std::string> fields);

  /// \brief Builder-style consumption flag setter.
  WindowSpec& DeleteUsedEvents(bool del);

  /// \brief Builder-style timeout setter.
  WindowSpec& FormationTimeout(Duration timeout);

  /// \brief Derived consumption mode, for introspection.
  ConsumptionMode consumption_mode() const;

  /// \brief True for the SingleEvent spec (receivers take a fast path).
  bool IsTrivial() const;

  /// \brief Reject non-positive sizes/steps and unit mismatches.
  Status Validate() const;

  std::string ToString() const;
};

}  // namespace cwf

#endif  // CONFLUENCE_WINDOW_WINDOW_SPEC_H_

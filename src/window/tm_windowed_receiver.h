// The TM windowed receiver used by the scheduled (SCWF) director.
//
// Event flow (paper Figure 4): put() evaluates the window semantics; a
// produced window is *not* kept locally — it is enqueued at the consuming
// actor's ready queue inside the scheduler. When the director decides to run
// that actor it dequeues the window and deposits it into this receiver's
// buffer, making it available to the next get() issued by the actor's
// fire().

#ifndef CONFLUENCE_WINDOW_TM_WINDOWED_RECEIVER_H_
#define CONFLUENCE_WINDOW_TM_WINDOWED_RECEIVER_H_

#include <functional>

#include "window/windowed_receiver.h"

namespace cwf {

/// \brief Scheduled variant of WindowedReceiver.
class TMWindowedReceiver : public WindowedReceiver {
 public:
  /// Invoked (synchronously, inside put()) whenever a window is produced;
  /// the SCWF director routes it to the scheduler's per-actor event queue.
  using ReadyCallback = std::function<void(TMWindowedReceiver*, Window)>;

  TMWindowedReceiver(InputPort* port, WindowSpec spec, ReadyCallback callback)
      : WindowedReceiver(port, std::move(spec)),
        callback_(std::move(callback)) {}

  /// \brief Director-side: deposit a scheduler-dequeued window into the
  /// buffer read by the actor's next get().
  void DeliverBuffered(Window w) { buffer_.push_back(std::move(w)); }

  bool HasWindow() const override { return !buffer_.empty(); }

  std::optional<Window> Get() override {
    if (buffer_.empty()) {
      return std::nullopt;
    }
    Window w = std::move(buffer_.front());
    buffer_.pop_front();
    return w;
  }

  size_t ReadyWindowCount() const override { return buffer_.size(); }

 protected:
  void OnWindowProduced(Window w) override { callback_(this, std::move(w)); }

 private:
  ReadyCallback callback_;
  std::deque<Window> buffer_;
};

}  // namespace cwf

#endif  // CONFLUENCE_WINDOW_TM_WINDOWED_RECEIVER_H_

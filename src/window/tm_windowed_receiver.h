// The TM windowed receiver used by the scheduled (SCWF) director.
//
// Event flow (paper Figure 4): put() evaluates the window semantics; a
// produced window is *not* kept locally — it is enqueued at the consuming
// actor's ready queue inside the scheduler. When the director decides to run
// that actor it dequeues the window and deposits it into this receiver's
// buffer, making it available to the next get() issued by the actor's
// fire().

#ifndef CONFLUENCE_WINDOW_TM_WINDOWED_RECEIVER_H_
#define CONFLUENCE_WINDOW_TM_WINDOWED_RECEIVER_H_

#include <functional>

#include "common/check.h"
#include "window/windowed_receiver.h"

namespace cwf {

/// \brief Scheduled variant of WindowedReceiver.
class TMWindowedReceiver : public WindowedReceiver {
 public:
  /// Invoked (synchronously, inside put()) whenever a window is produced;
  /// the SCWF director routes it to the scheduler's per-actor event queue.
  using ReadyCallback = std::function<void(TMWindowedReceiver*, Window)>;

  TMWindowedReceiver(InputPort* port, WindowSpec spec, ReadyCallback callback)
      : WindowedReceiver(port, std::move(spec)),
        callback_(std::move(callback)) {}

  /// \brief Director-side: deposit a scheduler-dequeued window into the
  /// buffer read by the actor's next get().
  ///
  /// Only windows this receiver itself produced (routed out through the
  /// ready callback) may come back: more deliveries than productions means
  /// the director misrouted another receiver's window. Schedulers may
  /// legally reorder deliveries (STAFiLOS pops timestamp-earliest) and may
  /// shed some windows entirely, so only the count is checked.
  void DeliverBuffered(Window w) {
    CWF_DCHECK_MSG(delivered_ < produced_,
                   "window delivered to a receiver that has no outstanding "
                   "produced window (misrouted delivery; "
                       << delivered_ << " delivered, " << produced_
                       << " produced)");
    ++delivered_;
    buffer_.push_back(std::move(w));
    RecordDepth();
  }

  bool HasWindow() const override { return !buffer_.empty(); }

  std::optional<Window> Get() override {
    if (buffer_.empty()) {
      return std::nullopt;
    }
    Window w = std::move(buffer_.front());
    buffer_.pop_front();
    return w;
  }

  size_t ReadyWindowCount() const override { return buffer_.size(); }

 protected:
  void OnWindowProduced(Window w) override {
    ++produced_;
    callback_(this, std::move(w));
  }

 private:
  ReadyCallback callback_;
  std::deque<Window> buffer_;
  uint64_t produced_ = 0;
  uint64_t delivered_ = 0;
};

}  // namespace cwf

#endif  // CONFLUENCE_WINDOW_TM_WINDOWED_RECEIVER_H_

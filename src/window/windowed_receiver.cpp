#include "window/windowed_receiver.h"

// WindowedReceiver is header-only; this TU anchors the vtable.

namespace cwf {}  // namespace cwf

// The windowed receiver: CONFLuEnCE's generic receiver type.
//
// "When adding a token into this receiver the generic put() method is used
// ... it inserts the event into the appropriate queue, after evaluating the
// group-by clause. Within the same call it also checks to see if a new
// window is produced and if it does then it stores it into the output queue.
// When the actor ... calls the get() method, a window from the output queue
// is returned."

#ifndef CONFLUENCE_WINDOW_WINDOWED_RECEIVER_H_
#define CONFLUENCE_WINDOW_WINDOWED_RECEIVER_H_

#include <deque>

#include "core/port.h"
#include "core/receiver.h"
#include "window/window_operator.h"

namespace cwf {

/// \brief Receiver that runs a WindowOperator on its queue and hands the
/// consuming actor *windows* rather than raw events.
class WindowedReceiver : public Receiver {
 public:
  WindowedReceiver(InputPort* port, WindowSpec spec)
      : Receiver(port), op_(std::move(spec)) {}

  Status Put(const CWEvent& event) override {
    produced_scratch_.clear();
    CWF_RETURN_NOT_OK(op_.Put(event, &produced_scratch_));
    for (Window& w : produced_scratch_) {
      OnWindowProduced(std::move(w));
    }
    RecordDepth();
    return Status::OK();
  }

  bool HasWindow() const override { return !ready_.empty(); }

  std::optional<Window> Get() override {
    if (ready_.empty()) {
      return std::nullopt;
    }
    Window w = std::move(ready_.front());
    ready_.pop_front();
    return w;
  }

  size_t ReadyWindowCount() const override { return ready_.size(); }

  size_t PendingEventCount() const override { return op_.PendingEventCount(); }

  std::vector<CWEvent> DrainExpired() override { return op_.DrainExpired(); }

  Timestamp NextDeadline() const override { return op_.NextDeadline(); }

  void OnTimeout(Timestamp now) override {
    produced_scratch_.clear();
    op_.OnTimeout(now, &produced_scratch_);
    for (Window& w : produced_scratch_) {
      OnWindowProduced(std::move(w));
    }
    RecordDepth();
  }

  void Flush() override {
    produced_scratch_.clear();
    op_.Flush(&produced_scratch_);
    for (Window& w : produced_scratch_) {
      OnWindowProduced(std::move(w));
    }
    RecordDepth();
  }

  const WindowOperator& window_operator() const { return op_; }

 protected:
  /// \brief Route a freshly produced window; the default stores it on the
  /// local output queue for the next Get(). The TM variant overrides this to
  /// enqueue at the scheduler instead.
  virtual void OnWindowProduced(Window w) { ready_.push_back(std::move(w)); }

  WindowOperator op_;
  std::deque<Window> ready_;

 private:
  std::vector<Window> produced_scratch_;
};

}  // namespace cwf

#endif  // CONFLUENCE_WINDOW_WINDOWED_RECEIVER_H_

#include "actors/stream_ops.h"

namespace cwf {

// ---------------------------------------------------------------------------
// KeyedJoinActor
// ---------------------------------------------------------------------------

KeyedJoinActor::KeyedJoinActor(std::string name,
                               std::vector<std::string> key_fields,
                               size_t max_buffer_per_key)
    : Actor(std::move(name)),
      key_fields_(std::move(key_fields)),
      max_buffer_per_key_(max_buffer_per_key) {
  CWF_CHECK_MSG(!key_fields_.empty(), "join needs at least one key field");
  CWF_CHECK_MSG(max_buffer_per_key_ > 0, "join buffer must hold >= 1 event");
  left_ = AddInputPort("left");
  right_ = AddInputPort("right");
  out_ = AddOutputPort("out");
  RecordSchema keys;
  for (const std::string& field : key_fields_) {
    keys.Field(field, ScalarType::Any());
  }
  left_->set_required_schema(TokenType::Record(keys));
  right_->set_required_schema(TokenType::Record(std::move(keys)));
}

Result<bool> KeyedJoinActor::Prefire() {
  return left_->HasWindow() || right_->HasWindow();
}

Result<KeyedJoinActor::Key> KeyedJoinActor::ExtractKey(
    const Token& token) const {
  if (!token.is_record()) {
    return Status::InvalidArgument("join requires record tokens, got " +
                                   token.ToString());
  }
  Key key;
  key.reserve(key_fields_.size());
  for (const std::string& field : key_fields_) {
    auto value = token.AsRecord()->Get(field);
    if (!value.ok()) {
      return Status::InvalidArgument("join key field '" + field +
                                     "' missing from " + token.ToString());
    }
    key.push_back(std::move(value).value());
  }
  return key;
}

Status KeyedJoinActor::Consume(
    InputPort* in, std::map<Key, std::deque<Token>>* own,
    const std::map<Key, std::deque<Token>>& other, bool own_is_left) {
  while (in->HasWindow()) {
    std::optional<Window> w = in->Get();
    if (!w.has_value()) {
      break;
    }
    for (const CWEvent& e : w->events) {
      CWF_ASSIGN_OR_RETURN(Key key, ExtractKey(e.token));
      // Probe the opposite buffer.
      auto it = other.find(key);
      if (it != other.end()) {
        for (const Token& partner : it->second) {
          auto merged = std::make_shared<Record>();
          const Token& left_tok = own_is_left ? e.token : partner;
          const Token& right_tok = own_is_left ? partner : e.token;
          // Right side first so that left fields win name clashes.
          for (const auto& [n, v] : right_tok.AsRecord()->fields()) {
            merged->Set(n, v);
          }
          for (const auto& [n, v] : left_tok.AsRecord()->fields()) {
            merged->Set(n, v);
          }
          Send(out_, Token(RecordPtr(std::move(merged))));
          ++matches_;
        }
      }
      // Remember for future partners, bounded per key.
      auto& bucket = (*own)[key];
      bucket.push_back(e.token);
      if (bucket.size() > max_buffer_per_key_) {
        bucket.pop_front();
      }
    }
  }
  return Status::OK();
}

Status KeyedJoinActor::Fire() {
  CWF_RETURN_NOT_OK(Consume(left_, &left_buffer_, right_buffer_, true));
  CWF_RETURN_NOT_OK(Consume(right_, &right_buffer_, left_buffer_, false));
  return Status::OK();
}

TokenType KeyedJoinActor::OutputTokenType(
    const OutputPort* port, const std::vector<TokenType>& inputs) const {
  if (!port->schema().is_unknown()) {
    return port->schema();
  }
  if (inputs.size() < 2 || !inputs[0].allows_record() ||
      !inputs[1].allows_record()) {
    return TokenType::Unknown();
  }
  const RecordSchemaPtr left = inputs[0].record_schema();
  const RecordSchemaPtr right = inputs[1].record_schema();
  if (left == nullptr || right == nullptr) {
    return TokenType::Unknown();
  }
  RecordSchema merged;
  for (const FieldSpec& f : left->fields()) {
    merged.Field(f.name, f.type, f.required);
  }
  for (const FieldSpec& f : right->fields()) {
    if (merged.IndexOf(f.name) < 0) {
      merged.Field(f.name, f.type, f.required);
    }
  }
  return TokenType::Record(std::move(merged));
}

// ---------------------------------------------------------------------------
// UnionActor
// ---------------------------------------------------------------------------

UnionActor::UnionActor(std::string name) : Actor(std::move(name)) {
  in_ = AddInputPort("in");
  out_ = AddOutputPort("out");
}

Status UnionActor::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value()) {
    return Status::OK();
  }
  for (const CWEvent& e : w->events) {
    Send(out_, e.token);
  }
  return Status::OK();
}

TokenType UnionActor::OutputTokenType(
    const OutputPort* port, const std::vector<TokenType>& inputs) const {
  return IdentityTokenType(port, inputs);
}

// ---------------------------------------------------------------------------
// ThrottleActor
// ---------------------------------------------------------------------------

ThrottleActor::ThrottleActor(std::string name, int64_t max_per_second)
    : Actor(std::move(name)), max_per_second_(max_per_second) {
  CWF_CHECK_MSG(max_per_second_ > 0, "throttle rate must be positive");
  in_ = AddInputPort("in");
  out_ = AddOutputPort("out");
}

Status ThrottleActor::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value()) {
    return Status::OK();
  }
  const int64_t now_s = ctx_->clock->Now().micros() / 1000000;
  for (const CWEvent& e : w->events) {
    if (now_s != bucket_start_s_) {
      bucket_start_s_ = now_s;
      in_bucket_ = 0;
    }
    if (in_bucket_ < max_per_second_) {
      ++in_bucket_;
      Send(out_, e.token);
    } else {
      ++dropped_;
    }
  }
  return Status::OK();
}

TokenType ThrottleActor::OutputTokenType(
    const OutputPort* port, const std::vector<TokenType>& inputs) const {
  return IdentityTokenType(port, inputs);
}

// ---------------------------------------------------------------------------
// DelayActor
// ---------------------------------------------------------------------------

DelayActor::DelayActor(std::string name, Duration delay)
    : Actor(std::move(name)), delay_(delay) {
  CWF_CHECK_MSG(delay_ >= 0, "delay must be non-negative");
  in_ = AddInputPort("in");
  out_ = AddOutputPort("out");
}

Result<bool> DelayActor::Prefire() {
  if (in_->HasWindow()) {
    return true;
  }
  return !held_.empty() && held_.front().release <= ctx_->clock->Now();
}

Status DelayActor::Fire() {
  const Timestamp now = ctx_->clock->Now();
  while (in_->HasWindow()) {
    std::optional<Window> w = in_->Get();
    if (!w.has_value()) {
      break;
    }
    for (const CWEvent& e : w->events) {
      held_.push_back({now + delay_, e});
    }
  }
  while (!held_.empty() && held_.front().release <= now) {
    SendPreserved(out_, held_.front().event);
    held_.pop_front();
  }
  return Status::OK();
}

Timestamp DelayActor::NextDeadline() const {
  return held_.empty() ? Timestamp::Max() : held_.front().release;
}

TokenType DelayActor::OutputTokenType(
    const OutputPort* port, const std::vector<TokenType>& inputs) const {
  return IdentityTokenType(port, inputs);
}

// ---------------------------------------------------------------------------
// CounterSource
// ---------------------------------------------------------------------------

CounterSource::CounterSource(std::string name, int64_t count,
                             int64_t per_firing)
    : Actor(std::move(name)), count_(count), per_firing_(per_firing) {
  CWF_CHECK_MSG(per_firing_ > 0, "per_firing must be positive");
  out_ = AddOutputPort("out");
  out_->set_schema(TokenType::Int());
}

Result<bool> CounterSource::Prefire() { return next_ < count_; }

Status CounterSource::Fire() {
  for (int64_t i = 0; i < per_firing_ && next_ < count_; ++i) {
    Send(out_, Token(next_++));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DbUpsertActor / DbLookupActor
// ---------------------------------------------------------------------------

DbUpsertActor::DbUpsertActor(std::string name, db::Database* database,
                             std::string table_name,
                             std::vector<std::string> key_columns)
    : Actor(std::move(name)),
      database_(database),
      table_name_(std::move(table_name)),
      key_columns_(std::move(key_columns)) {
  CWF_CHECK(database_ != nullptr);
  in_ = AddInputPort("in");
}

Status DbUpsertActor::Initialize(ExecutionContext* ctx) {
  CWF_RETURN_NOT_OK(Actor::Initialize(ctx));
  CWF_ASSIGN_OR_RETURN(table_, database_->GetTable(table_name_));
  return Status::OK();
}

Status DbUpsertActor::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value()) {
    return Status::OK();
  }
  const db::Schema& schema = table_->schema();
  for (const CWEvent& e : w->events) {
    if (!e.token.is_record()) {
      return Status::InvalidArgument("DbUpsertActor needs record tokens");
    }
    db::Row row;
    row.reserve(schema.num_columns());
    for (const auto& column : schema.columns()) {
      row.push_back(e.token.AsRecord()->GetOr(column.name, Value()));
    }
    auto upserted = table_->Upsert(key_columns_, std::move(row));
    if (!upserted.ok()) {
      return upserted.status();
    }
    ++rows_written_;
  }
  return Status::OK();
}

DbLookupActor::DbLookupActor(std::string name, db::Database* database,
                             std::string table_name,
                             std::vector<std::string> key_columns)
    : Actor(std::move(name)),
      database_(database),
      table_name_(std::move(table_name)),
      key_columns_(std::move(key_columns)) {
  CWF_CHECK(database_ != nullptr);
  in_ = AddInputPort("in");
  out_ = AddOutputPort("out");
}

Status DbLookupActor::Initialize(ExecutionContext* ctx) {
  CWF_RETURN_NOT_OK(Actor::Initialize(ctx));
  CWF_ASSIGN_OR_RETURN(table_, database_->GetTable(table_name_));
  return Status::OK();
}

Status DbLookupActor::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value()) {
    return Status::OK();
  }
  for (const CWEvent& e : w->events) {
    if (!e.token.is_record()) {
      return Status::InvalidArgument("DbLookupActor needs record tokens");
    }
    std::vector<db::PredicatePtr> eqs;
    eqs.reserve(key_columns_.size());
    for (const std::string& column : key_columns_) {
      auto value = e.token.AsRecord()->Get(column);
      if (!value.ok()) {
        return Status::InvalidArgument("lookup key field '" + column +
                                       "' missing from record");
      }
      eqs.push_back(db::Eq(column, std::move(value).value()));
    }
    auto row = table_->SelectOne(db::And(std::move(eqs)));
    if (!row.ok()) {
      return row.status();
    }
    if (!row.value().has_value()) {
      Send(out_, e.token);  // pass through unmatched
      continue;
    }
    auto merged = std::make_shared<Record>();
    for (const auto& [n, v] : e.token.AsRecord()->fields()) {
      merged->Set(n, v);
    }
    const db::Schema& schema = table_->schema();
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      merged->Set(schema.column(c).name, (*row.value())[c]);
    }
    Send(out_, Token(RecordPtr(std::move(merged))));
    ++hits_;
  }
  return Status::OK();
}

TokenType DbLookupActor::OutputTokenType(
    const OutputPort* port, const std::vector<TokenType>& inputs) const {
  if (!port->schema().is_unknown()) {
    return port->schema();
  }
  if (inputs.empty() || !inputs[0].allows_record()) {
    return TokenType::Unknown();
  }
  const RecordSchemaPtr in_layout = inputs[0].record_schema();
  if (in_layout == nullptr) {
    return inputs[0];
  }
  RecordSchema enriched = *in_layout;
  auto table = database_->GetTable(table_name_);
  if (table.ok()) {
    const db::Schema& schema = (*table)->schema();
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      const db::Column& col = schema.column(c);
      if (enriched.IndexOf(col.name) >= 0) {
        continue;  // the record's own field wins the clash
      }
      ScalarType type = ScalarType::Null();  // columns are nullable
      switch (col.type) {
        case db::ColumnType::kInt64:
          type = type.Union(ScalarType::Int());
          break;
        case db::ColumnType::kDouble:
          type = type.Union(ScalarType::Double());
          break;
        case db::ColumnType::kBool:
          type = type.Union(ScalarType::Bool());
          break;
        case db::ColumnType::kString:
          type = type.Union(ScalarType::Str());
          break;
      }
      enriched.Field(col.name, type, /*required=*/false);
    }
  }
  return TokenType::Record(std::move(enriched));
}

}  // namespace cwf

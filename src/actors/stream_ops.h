// Stream-processing actors beyond the basic transforms: keyed joins,
// stream union, rate limiting, counter sources and relational-store
// adapters. These are the "stream optimized atomic actors" the paper's
// discussion wishes Kepler's off-the-shelf actors had been.

#ifndef CONFLUENCE_ACTORS_STREAM_OPS_H_
#define CONFLUENCE_ACTORS_STREAM_OPS_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/actor.h"
#include "db/database.h"

namespace cwf {

/// \brief Symmetric keyed stream join.
///
/// Events from the `left` and `right` ports are matched on the values of
/// `key_fields`; every match emits one record merging both sides' fields
/// (left fields win name clashes). Each side buffers its most recent
/// `max_buffer_per_key` events per key, so memory stays bounded on
/// unbounded streams.
class KeyedJoinActor : public Actor {
 public:
  KeyedJoinActor(std::string name, std::vector<std::string> key_fields,
                 size_t max_buffer_per_key = 16);

  InputPort* left() const { return left_; }
  InputPort* right() const { return right_; }
  OutputPort* out() const { return out_; }

  /// \brief Ready when either side has input (a join never blocks on the
  /// slower stream).
  Result<bool> Prefire() override;
  Status Fire() override;

  /// \brief Matches emitted so far.
  uint64_t matches() const { return matches_; }

  /// A join emits the merge of both sides' layouts (left wins clashes);
  /// unknown when either side's layout is unresolved.
  TokenType OutputTokenType(const OutputPort* port,
                            const std::vector<TokenType>& inputs) const override;

 private:
  using Key = std::vector<Value>;

  Result<Key> ExtractKey(const Token& token) const;
  Status Consume(InputPort* in, std::map<Key, std::deque<Token>>* own,
                 const std::map<Key, std::deque<Token>>& other,
                 bool own_is_left);

  std::vector<std::string> key_fields_;
  size_t max_buffer_per_key_;
  InputPort* left_;
  InputPort* right_;
  OutputPort* out_;
  std::map<Key, std::deque<Token>> left_buffer_;
  std::map<Key, std::deque<Token>> right_buffer_;
  uint64_t matches_ = 0;
};

/// \brief Merges any number of input channels into one output stream (fan
/// in; per-channel FIFO order preserved). Connect several producers to the
/// single `in` port.
class UnionActor : public Actor {
 public:
  explicit UnionActor(std::string name);

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Status Fire() override;

  /// A union forwards tokens unchanged: joined input type.
  TokenType OutputTokenType(const OutputPort* port,
                            const std::vector<TokenType>& inputs) const override;

 private:
  InputPort* in_;
  OutputPort* out_;
};

/// \brief Drop-tail rate limiter: forwards at most `max_per_second` events
/// per one-second bucket of engine time and drops the rest (a simple load
/// shedder at a workflow edge).
class ThrottleActor : public Actor {
 public:
  ThrottleActor(std::string name, int64_t max_per_second);

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Status Fire() override;

  uint64_t dropped() const { return dropped_; }

  /// A throttle forwards tokens unchanged: joined input type.
  TokenType OutputTokenType(const OutputPort* port,
                            const std::vector<TokenType>& inputs) const override;

 private:
  int64_t max_per_second_;
  InputPort* in_;
  OutputPort* out_;
  int64_t bucket_start_s_ = -1;
  int64_t in_bucket_ = 0;
  uint64_t dropped_ = 0;
};

/// \brief Holds every event for a fixed latency before forwarding it —
/// models an inter-node network link for single-process simulations of the
/// paper's distributed-SCWF direction (§5). Release is deadline-driven:
/// directors wake the actor via NextDeadline() even when no new input
/// arrives.
class DelayActor : public Actor {
 public:
  DelayActor(std::string name, Duration delay);

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Result<bool> Prefire() override;
  Status Fire() override;
  Timestamp NextDeadline() const override;

  /// \brief Events currently in flight across the simulated link.
  size_t in_flight() const { return held_.size(); }

  /// A link forwards events unchanged: joined input type.
  TokenType OutputTokenType(const OutputPort* port,
                            const std::vector<TokenType>& inputs) const override;

 private:
  struct Held {
    Timestamp release;
    CWEvent event;  // provenance re-emitted intact via SendPreserved
  };

  Duration delay_;
  InputPort* in_;
  OutputPort* out_;
  std::deque<Held> held_;  // FIFO: releases are monotone in arrival order
};

/// \brief Finite source emitting the integers 0..count-1, `per_firing` per
/// firing — handy for SDF sub-workflows and examples; no external channel.
class CounterSource : public Actor {
 public:
  CounterSource(std::string name, int64_t count, int64_t per_firing = 1);

  OutputPort* out() const { return out_; }

  Result<bool> Prefire() override;
  Status Fire() override;
  int64_t ProductionRate(const OutputPort*) const override {
    return per_firing_;
  }

 private:
  int64_t count_;
  int64_t per_firing_;
  int64_t next_ = 0;
  OutputPort* out_;
};

/// \brief Writes each incoming record into a table, upserting on
/// `key_columns`. Record fields are matched to columns by name; missing
/// fields store NULL.
class DbUpsertActor : public Actor {
 public:
  DbUpsertActor(std::string name, db::Database* database,
                std::string table_name, std::vector<std::string> key_columns);

  InputPort* in() const { return in_; }

  Status Initialize(ExecutionContext* ctx) override;
  Status Fire() override;

  uint64_t rows_written() const { return rows_written_; }

 private:
  db::Database* database_;
  std::string table_name_;
  std::vector<std::string> key_columns_;
  db::Table* table_ = nullptr;
  InputPort* in_;
  uint64_t rows_written_ = 0;
};

/// \brief Enriches each incoming record with columns looked up from a table
/// row whose `key_columns` equal the record's fields of the same names.
/// Unmatched records pass through unchanged (left outer join against the
/// store).
class DbLookupActor : public Actor {
 public:
  DbLookupActor(std::string name, db::Database* database,
                std::string table_name, std::vector<std::string> key_columns);

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Status Initialize(ExecutionContext* ctx) override;
  Status Fire() override;

  uint64_t hits() const { return hits_; }

  /// Input layout plus the table's columns as optional fields (unmatched
  /// records pass through without them).
  TokenType OutputTokenType(const OutputPort* port,
                            const std::vector<TokenType>& inputs) const override;

 private:
  db::Database* database_;
  std::string table_name_;
  std::vector<std::string> key_columns_;
  db::Table* table_ = nullptr;
  InputPort* in_;
  OutputPort* out_;
  uint64_t hits_ = 0;
};

}  // namespace cwf

#endif  // CONFLUENCE_ACTORS_STREAM_OPS_H_

// A small library of reusable actors for building workflows.
//
// These play the role of Kepler's off-the-shelf actors: stateless
// transforms, filters, window aggregates and sinks that application
// workflows (and tests/examples) compose. Each actor consumes exactly one
// window per connected input port per firing.

#ifndef CONFLUENCE_ACTORS_LIBRARY_H_
#define CONFLUENCE_ACTORS_LIBRARY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/lock_registry.h"
#include "core/actor.h"

namespace cwf {

/// \brief Emits fn(token) for every event in the consumed window.
class MapActor : public Actor {
 public:
  using MapFn = std::function<Token(const Token&)>;

  MapActor(std::string name, MapFn fn,
           WindowSpec spec = WindowSpec::SingleEvent());

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Status Fire() override;

 private:
  MapFn fn_;
  InputPort* in_;
  OutputPort* out_;
};

/// \brief Forwards events whose token satisfies the predicate.
class FilterActor : public Actor {
 public:
  using PredFn = std::function<bool(const Token&)>;

  FilterActor(std::string name, PredFn pred,
              WindowSpec spec = WindowSpec::SingleEvent());

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Status Fire() override;

  /// A filter forwards tokens unchanged: its output type is its input type.
  TokenType OutputTokenType(const OutputPort* port,
                            const std::vector<TokenType>& inputs) const override;

 private:
  PredFn pred_;
  InputPort* in_;
  OutputPort* out_;
};

/// \brief Emits fn(token) — zero or more tokens — for every event.
class FlatMapActor : public Actor {
 public:
  using FlatMapFn = std::function<std::vector<Token>(const Token&)>;

  FlatMapActor(std::string name, FlatMapFn fn,
               WindowSpec spec = WindowSpec::SingleEvent());

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Status Fire() override;

 private:
  FlatMapFn fn_;
  InputPort* in_;
  OutputPort* out_;
};

/// \brief Applies an arbitrary function to each consumed *window* (the
/// general windowed-computation actor; aggregations, joins-on-window,
/// detection logic all fit here).
class WindowFnActor : public Actor {
 public:
  /// Receives the window; appends output tokens to `out`.
  using WindowFn =
      std::function<Status(const Window& window, std::vector<Token>* out)>;

  WindowFnActor(std::string name, WindowSpec spec, WindowFn fn);

  InputPort* in() const { return in_; }
  OutputPort* out() const { return out_; }

  Status Fire() override;

 private:
  WindowFn fn_;
  InputPort* in_;
  OutputPort* out_;
};

/// \brief Terminal actor that records everything it receives, with arrival
/// metadata and the engine time at consumption — the instrumentation point
/// for response-time measurements. Thread-safe.
class CollectorSink : public Actor {
 public:
  struct Received {
    Token token;
    Timestamp event_timestamp;  ///< root external event arrival
    WaveTag wave;
    Timestamp completed_at;  ///< engine time when the sink consumed it
  };

  explicit CollectorSink(std::string name,
                         WindowSpec spec = WindowSpec::SingleEvent());

  InputPort* in() const { return in_; }

  Status Fire() override;

  /// \brief Snapshot of everything received so far.
  std::vector<Received> TakeSnapshot() const;

  size_t count() const;

 private:
  InputPort* in_;
  mutable OrderedMutex mutex_{"CollectorSink::mutex"};
  std::vector<Received> received_ CWF_GUARDED_BY(mutex_);
};

/// \brief Terminal actor that discards its input (load sink).
class NullSink : public Actor {
 public:
  explicit NullSink(std::string name,
                    WindowSpec spec = WindowSpec::SingleEvent());

  InputPort* in() const { return in_; }

  Status Fire() override;

  uint64_t consumed_events() const { return consumed_; }

 private:
  InputPort* in_;
  uint64_t consumed_ = 0;
};

}  // namespace cwf

#endif  // CONFLUENCE_ACTORS_LIBRARY_H_

#include "actors/library.h"

namespace cwf {

MapActor::MapActor(std::string name, MapFn fn, WindowSpec spec)
    : Actor(std::move(name)), fn_(std::move(fn)) {
  in_ = AddInputPort("in", std::move(spec));
  out_ = AddOutputPort("out");
}

Status MapActor::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value()) {
    return Status::OK();
  }
  for (const CWEvent& e : w->events) {
    Send(out_, fn_(e.token));
  }
  return Status::OK();
}

FilterActor::FilterActor(std::string name, PredFn pred, WindowSpec spec)
    : Actor(std::move(name)), pred_(std::move(pred)) {
  in_ = AddInputPort("in", std::move(spec));
  out_ = AddOutputPort("out");
}

Status FilterActor::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value()) {
    return Status::OK();
  }
  for (const CWEvent& e : w->events) {
    if (pred_(e.token)) {
      Send(out_, e.token);
    }
  }
  return Status::OK();
}

TokenType FilterActor::OutputTokenType(
    const OutputPort* port, const std::vector<TokenType>& inputs) const {
  return IdentityTokenType(port, inputs);
}

FlatMapActor::FlatMapActor(std::string name, FlatMapFn fn, WindowSpec spec)
    : Actor(std::move(name)), fn_(std::move(fn)) {
  in_ = AddInputPort("in", std::move(spec));
  out_ = AddOutputPort("out");
}

Status FlatMapActor::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value()) {
    return Status::OK();
  }
  for (const CWEvent& e : w->events) {
    for (Token& t : fn_(e.token)) {
      Send(out_, std::move(t));
    }
  }
  return Status::OK();
}

WindowFnActor::WindowFnActor(std::string name, WindowSpec spec, WindowFn fn)
    : Actor(std::move(name)), fn_(std::move(fn)) {
  in_ = AddInputPort("in", std::move(spec));
  out_ = AddOutputPort("out");
}

Status WindowFnActor::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value()) {
    return Status::OK();
  }
  std::vector<Token> outputs;
  CWF_RETURN_NOT_OK(fn_(*w, &outputs));
  for (Token& t : outputs) {
    Send(out_, std::move(t));
  }
  return Status::OK();
}

CollectorSink::CollectorSink(std::string name, WindowSpec spec)
    : Actor(std::move(name)) {
  in_ = AddInputPort("in", std::move(spec));
}

Status CollectorSink::Fire() {
  std::optional<Window> w = in_->Get();
  if (!w.has_value()) {
    return Status::OK();
  }
  const Timestamp now = ctx_->clock->Now();
  ScopedLock lock(mutex_);
  for (const CWEvent& e : w->events) {
    received_.push_back({e.token, e.timestamp, e.wave, now});
  }
  return Status::OK();
}

std::vector<CollectorSink::Received> CollectorSink::TakeSnapshot() const {
  ScopedLock lock(mutex_);
  return received_;
}

size_t CollectorSink::count() const {
  ScopedLock lock(mutex_);
  return received_.size();
}

NullSink::NullSink(std::string name, WindowSpec spec) : Actor(std::move(name)) {
  in_ = AddInputPort("in", std::move(spec));
}

Status NullSink::Fire() {
  std::optional<Window> w = in_->Get();
  if (w.has_value()) {
    consumed_ += w->events.size();
  }
  return Status::OK();
}

}  // namespace cwf

#include "analysis/liveness_pass.h"

#include <gtest/gtest.h>

#include <string>

#include "analysis/capacity_planner.h"
#include "analysis/diagnostic.h"
#include "test_actors.h"

namespace cwf::analysis {
namespace {

using analysis_test::Node;

AnalysisOptions Under(const std::string& target) {
  AnalysisOptions options;
  options.target_director = target;
  return options;
}

// Hand-built plan: one bounded entry per (consumer, slot) pair.
CapacityPlan ManualPlan(
    std::vector<std::tuple<std::string, std::string, size_t>> bounds) {
  CapacityPlan plan;
  for (auto& [producer, consumer, capacity] : bounds) {
    ChannelCapacity ch;
    ch.producer = producer;
    ch.consumer = consumer;
    ch.to_channel = 0;
    ch.capacity = capacity;
    ch.bounded = true;
    plan.channels.push_back(std::move(ch));
  }
  return plan;
}

TEST(LivenessPassTest, ChannelDemandViolationIsProvablyDeadlocking) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 0, WindowSpec::Tuples(5, 5));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  // Capacity 2 < the 5 events the first tumbling window needs: the producer
  // blocks on the full channel before a window can ever form.
  const LivenessReport report = AnalyzeLiveness(
      wf, Under("PNCWF"), ManualPlan({{"src.out", "agg.in", 2}}));
  EXPECT_TRUE(report.blocking_deployment);
  EXPECT_EQ(report.verdict, LivenessVerdict::kProvablyDeadlocking);
  EXPECT_EQ(report.method, "channel-demand");
  ASSERT_FALSE(report.witness.cycle.empty());
  const std::string cycle = report.witness.CycleString();
  EXPECT_NE(cycle.find("src"), std::string::npos);
  EXPECT_NE(cycle.find("agg"), std::string::npos);
}

TEST(LivenessPassTest, TokenStarvedLoopDeadlocksInSimulation) {
  Workflow wf("w");
  auto* a = wf.AddActor<Node>("A", 1, 1);
  auto* b = wf.AddActor<Node>("B", 1, 1);
  ASSERT_TRUE(wf.Connect(a->out(), b->in()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), a->in()).ok());
  // Per-channel demand (1) is met, so only the bounded-execution simulation
  // can see that neither actor ever accumulates a first token.
  const LivenessReport report = AnalyzeLiveness(
      wf, Under("PNCWF"),
      ManualPlan({{"A.out", "B.in", 1}, {"B.out", "A.in", 1}}));
  EXPECT_EQ(report.verdict, LivenessVerdict::kProvablyDeadlocking);
  EXPECT_EQ(report.method, "sdf-simulation");
  EXPECT_FALSE(report.witness.cycle.empty());
}

TEST(LivenessPassTest, BoundedChainSimulatesLive) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* map = wf.AddActor<Node>("map", 1, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(src->out(), map->in()).ok());
  ASSERT_TRUE(wf.Connect(map->out(), sink->in()).ok());
  const LivenessReport report = AnalyzeLiveness(
      wf, Under("PNCWF"),
      ManualPlan({{"src.out", "map.in", 1}, {"map.out", "sink.in", 1}}));
  EXPECT_EQ(report.verdict, LivenessVerdict::kProvablyLive);
  EXPECT_EQ(report.method, "sdf-simulation");
  EXPECT_TRUE(report.witness.empty());
}

TEST(LivenessPassTest, NonBlockingDeploymentIsLiveByConstruction) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 0, WindowSpec::Tuples(5, 5));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  const LivenessReport report = AnalyzeLiveness(
      wf, Under("SCWF"), ManualPlan({{"src.out", "agg.in", 2}}));
  // SCWF keeps plan bounds advisory: puts never block, so the deployment
  // verdict is live while the blocking what-if still carries the hazard.
  EXPECT_FALSE(report.blocking_deployment);
  EXPECT_EQ(report.verdict, LivenessVerdict::kProvablyLive);
  EXPECT_EQ(report.method, "non-blocking deployment");
  EXPECT_EQ(report.blocking_verdict, LivenessVerdict::kProvablyDeadlocking);
  EXPECT_EQ(report.blocking_method, "channel-demand");
}

TEST(LivenessPassTest, GroupByWindowOnDiamondIsUnknown) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 2);
  auto* left = wf.AddActor<Node>("left", 1, 1);
  auto* right = wf.AddActor<Node>("right", 1, 1);
  auto* join = wf.AddActor<Node>(
      "join", 2, 0, WindowSpec::Tuples(2, 2).GroupBy({"key"}));
  ASSERT_TRUE(wf.Connect(src->out(0), left->in()).ok());
  ASSERT_TRUE(wf.Connect(src->out(1), right->in()).ok());
  ASSERT_TRUE(wf.Connect(left->out(), join->in(0)).ok());
  ASSERT_TRUE(wf.Connect(right->out(), join->in(1)).ok());
  // Group-by windows have data-dependent formation (no certifiable drain)
  // and the diamond puts every channel on an undirected cycle: neither the
  // simulator nor the structural certificate applies.
  const LivenessReport report = AnalyzeLiveness(
      wf, Under("PNCWF"),
      ManualPlan({{"src.out0", "left.in", 8},
                  {"src.out1", "right.in", 8},
                  {"left.out", "join.in0", 8},
                  {"right.out", "join.in1", 8}}));
  EXPECT_EQ(report.verdict, LivenessVerdict::kUnknown);
  EXPECT_FALSE(report.notes.empty());
}

TEST(LivenessPassTest, SynthesisBumpsCapacityToFirstWindowDemand) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 0, WindowSpec::Tuples(5, 5));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  CapacityPlan plan = ManualPlan({{"src.out", "agg.in", 2}});
  const LivenessReport report =
      SynthesizeLiveCapacities(wf, Under("PNCWF"), &plan);
  EXPECT_EQ(report.blocking_verdict, LivenessVerdict::kProvablyLive);
  EXPECT_EQ(plan.channels[0].capacity, 5u);
  ASSERT_EQ(plan.liveness_bumps.size(), 1u);
  EXPECT_EQ(plan.liveness_bumps[0].from_capacity, 2u);
  EXPECT_EQ(plan.liveness_bumps[0].to_capacity, 5u);
  EXPECT_EQ(plan.liveness_verdict, "provably-live");
}

TEST(LivenessPassTest, PlanCapacityEmitsLivePlansByConstruction) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 0, WindowSpec::Tuples(5, 5));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  AnalysisOptions options = Under("PNCWF");
  options.source_rates = {{"src", RateInterval::Exact(100.0)}};
  const CapacityPlan plan = PlanCapacity(wf, options);
  EXPECT_EQ(plan.liveness_verdict, "provably-live");
  // The quantitative bounds already exceed first-window demand here, so
  // synthesis had nothing to fix.
  EXPECT_TRUE(plan.liveness_bumps.empty());
}

TEST(LivenessPassTest, ReportLivenessMapsVerdictsToDiagnostics) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 0, WindowSpec::Tuples(5, 5));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  const AnalysisOptions pncwf = Under("PNCWF");

  DiagnosticBag deadlocking;
  ReportLiveness(AnalyzeLiveness(wf, pncwf,
                                 ManualPlan({{"src.out", "agg.in", 2}})),
                 pncwf, &deadlocking);
  EXPECT_TRUE(deadlocking.HasCode("CWF6002"));
  EXPECT_EQ(deadlocking.ErrorCount(), 1u);

  // The same undersized plan under a non-blocking deployment is silent.
  const AnalysisOptions scwf = Under("SCWF");
  DiagnosticBag advisory;
  ReportLiveness(AnalyzeLiveness(wf, scwf,
                                 ManualPlan({{"src.out", "agg.in", 2}})),
                 scwf, &advisory);
  EXPECT_TRUE(advisory.empty());

  // A live plan is silent even under the blocking deployment.
  DiagnosticBag live;
  ReportLiveness(AnalyzeLiveness(wf, pncwf,
                                 ManualPlan({{"src.out", "agg.in", 8}})),
                 pncwf, &live);
  EXPECT_TRUE(live.empty());
}

TEST(LivenessPassTest, AnalyzerSurfacesCWF6003ForUnknownBlockingPlans) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 2);
  auto* left = wf.AddActor<Node>("left", 1, 1);
  auto* right = wf.AddActor<Node>("right", 1, 1);
  auto* join = wf.AddActor<Node>(
      "join", 2, 0, WindowSpec::Tuples(2, 2).GroupBy({"key"}));
  ASSERT_TRUE(wf.Connect(src->out(0), left->in()).ok());
  ASSERT_TRUE(wf.Connect(src->out(1), right->in()).ok());
  ASSERT_TRUE(wf.Connect(left->out(), join->in(0)).ok());
  ASSERT_TRUE(wf.Connect(right->out(), join->in(1)).ok());
  AnalysisOptions options = Under("PNCWF");
  const LivenessReport report = AnalyzeLiveness(
      wf, options,
      ManualPlan({{"src.out0", "left.in", 8},
                  {"src.out1", "right.in", 8},
                  {"left.out", "join.in0", 8},
                  {"right.out", "join.in1", 8}}));
  DiagnosticBag diagnostics;
  ReportLiveness(report, options, &diagnostics);
  EXPECT_TRUE(diagnostics.HasCode("CWF6003"));
  EXPECT_EQ(diagnostics.ErrorCount(), 0u);
}

}  // namespace
}  // namespace cwf::analysis

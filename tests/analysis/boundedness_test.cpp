#include "analysis/boundedness_pass.h"

#include <gtest/gtest.h>

#include <map>

#include "analysis/diagnostic.h"
#include "core/cost_model.h"
#include "test_actors.h"

namespace cwf::analysis {
namespace {

using analysis_test::Node;

DiagnosticBag RunBoundedness(const Workflow& wf, const std::string& target,
                             std::map<std::string, RateInterval> rates,
                             const CostModel* costs = nullptr) {
  BoundednessPass pass;
  AnalysisOptions options;
  options.target_director = target;
  options.source_rates = std::move(rates);
  options.cost_model = costs;
  DiagnosticBag diags;
  pass.Run(wf, options, &diags);
  return diags;
}

Workflow* Pipeline(Workflow* wf) {
  auto* src = wf->AddActor<Node>("src", 0, 1);
  auto* work = wf->AddActor<Node>("work", 1, 1);
  auto* sink = wf->AddActor<Node>("sink", 1, 0);
  CWF_CHECK(wf->Connect(src->out(), work->in()).ok());
  CWF_CHECK(wf->Connect(work->out(), sink->in()).ok());
  return wf;
}

TEST(BoundednessPassTest, Cwf5002PncwfInflowExceedsServiceRate) {
  Workflow wf("w");
  Pipeline(&wf);
  // 100 ms per firing -> ~10 firings/s sustainable against 1000 ev/s.
  CostModel costs;
  costs.SetActorCost("work", {100000, 0, 0});
  const DiagnosticBag diags = RunBoundedness(
      wf, "PNCWF", {{"src", RateInterval::Exact(1000.0)}}, &costs);
  ASSERT_TRUE(diags.HasCode("CWF5002")) << diags.ToText();
  EXPECT_EQ(diags.WithCode("CWF5002")[0]->severity, Severity::kWarning);
  EXPECT_EQ(diags.WithCode("CWF5002")[0]->location, "w/work.in");
}

TEST(BoundednessPassTest, Cwf5002SilentWhenServiceKeepsUp) {
  Workflow wf("w");
  Pipeline(&wf);
  const DiagnosticBag diags =
      RunBoundedness(wf, "PNCWF", {{"src", RateInterval::Exact(10.0)}});
  EXPECT_TRUE(diags.empty()) << diags.ToText();
}

TEST(BoundednessPassTest, Cwf5002SilentWhenInflowUnknown) {
  // Unknown inflow is CWF5001 territory; no unfounded overload warning.
  Workflow wf("w");
  Pipeline(&wf);
  CostModel costs;
  costs.SetActorCost("work", {100000, 0, 0});
  EXPECT_FALSE(RunBoundedness(wf, "PNCWF", {}, &costs).HasCode("CWF5002"));
}

TEST(BoundednessPassTest, Cwf5004ScwfSingleActorOverload) {
  Workflow wf("w");
  Pipeline(&wf);
  // 20 ms per firing at 100 firings/s: utilization 2.0 on one actor.
  CostModel costs;
  costs.SetActorCost("work", {20000, 0, 0});
  const DiagnosticBag diags = RunBoundedness(
      wf, "SCWF", {{"src", RateInterval::Exact(100.0)}}, &costs);
  ASSERT_TRUE(diags.HasCode("CWF5004")) << diags.ToText();
  EXPECT_EQ(diags.WithCode("CWF5004")[0]->severity, Severity::kWarning);
  EXPECT_EQ(diags.WithCode("CWF5004")[0]->location, "w/work");
  // A single saturated actor also saturates the executor.
  EXPECT_TRUE(diags.HasCode("CWF5003"));
}

TEST(BoundednessPassTest, Cwf5003TotalOverloadWithoutSingleCulprit) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* a = wf.AddActor<Node>("a", 1, 0);
  auto* b = wf.AddActor<Node>("b", 1, 0);
  ASSERT_TRUE(wf.Connect(src->out(), a->in()).ok());
  ASSERT_TRUE(wf.Connect(src->out(), b->in()).ok());
  // Each consumer at utilization ~0.6: no single actor over 1, but the
  // executor is asked for 1.2+ in total.
  CostModel costs;
  costs.SetActorCost("a", {6000, 0, 0});
  costs.SetActorCost("b", {6000, 0, 0});
  costs.SetActorCost("src", {1, 0, 0});
  const DiagnosticBag diags = RunBoundedness(
      wf, "SCWF", {{"src", RateInterval::Exact(100.0)}}, &costs);
  ASSERT_TRUE(diags.HasCode("CWF5003")) << diags.ToText();
  EXPECT_EQ(diags.WithCode("CWF5003")[0]->severity, Severity::kWarning);
  EXPECT_EQ(diags.WithCode("CWF5003")[0]->location, "w");
  EXPECT_FALSE(diags.HasCode("CWF5004"));
}

TEST(BoundednessPassTest, Cwf5003SilentUnderLightLoad) {
  Workflow wf("w");
  Pipeline(&wf);
  const DiagnosticBag diags =
      RunBoundedness(wf, "SCWF", {{"src", RateInterval::Exact(10.0)}});
  EXPECT_TRUE(diags.empty()) << diags.ToText();
}

TEST(BoundednessPassTest, OnlyRunsForPncwfAndScwfTargets) {
  Workflow wf("w");
  Pipeline(&wf);
  CostModel costs;
  costs.SetActorCost("work", {10000000, 0, 0});
  for (const char* target : {"", "SDF", "DDF", "PN"}) {
    const DiagnosticBag diags = RunBoundedness(
        wf, target, {{"src", RateInterval::Exact(100000.0)}}, &costs);
    EXPECT_TRUE(diags.empty()) << target << ": " << diags.ToText();
  }
}

}  // namespace
}  // namespace cwf::analysis

#include "analysis/scheduler_config_pass.h"

#include <gtest/gtest.h>

#include "lrb/workflow_builder.h"
#include "stafilos/qbs_scheduler.h"
#include "test_actors.h"

namespace cwf::analysis {
namespace {

using analysis_test::Node;

DiagnosticBag RunScheduler(const Workflow& wf,
                           std::optional<SchedulerConfig> cfg) {
  SchedulerConfigPass pass;
  AnalysisOptions options;
  options.target_director = "SCWF";
  options.scheduler = std::move(cfg);
  DiagnosticBag diags;
  pass.Run(wf, options, &diags);
  return diags;
}

SchedulerConfig Policy(const char* policy) {
  SchedulerConfig cfg;
  cfg.policy = policy;
  return cfg;
}

void BuildPipeline(Workflow* wf) {
  auto* src = wf->AddActor<Node>("src", 0, 1);
  auto* sink = wf->AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf->Connect(src->out(), sink->in()).ok());
}

TEST(SchedulerConfigPassTest, NoSchedulerIsNoOp) {
  Workflow wf("w");
  BuildPipeline(&wf);
  EXPECT_TRUE(RunScheduler(wf, std::nullopt).empty());
}

TEST(SchedulerConfigPassTest, DefaultOptionsAreCleanForEveryPolicy) {
  Workflow wf("w");
  BuildPipeline(&wf);
  for (const char* policy : {"QBS", "RR", "RB", "EDF", "FIFO"}) {
    const DiagnosticBag diags = RunScheduler(wf, Policy(policy));
    EXPECT_TRUE(diags.empty()) << policy << ": " << diags.ToText();
  }
}

TEST(SchedulerConfigPassTest, Cwf4001NonPositiveQuantum) {
  Workflow wf("w");
  BuildPipeline(&wf);
  SchedulerConfig cfg = Policy("QBS");
  cfg.qbs.basic_quantum = 0;
  const DiagnosticBag diags = RunScheduler(wf, cfg);
  ASSERT_TRUE(diags.HasCode("CWF4001"));
  EXPECT_EQ(diags.WithCode("CWF4001")[0]->severity, Severity::kError);
}

TEST(SchedulerConfigPassTest, Cwf4002PriorityOutsideQuantumRange) {
  Workflow wf("w");
  BuildPipeline(&wf);
  SchedulerConfig cfg = Policy("QBS");
  cfg.actor_priorities = {{"src", 40}, {"sink", -1}};
  const DiagnosticBag diags = RunScheduler(wf, cfg);
  EXPECT_EQ(diags.WithCode("CWF4002").size(), 2u);
  // Only QBS derives quanta from priorities (Eq. 1); RR ignores them.
  SchedulerConfig rr = Policy("RR");
  rr.actor_priorities = {{"src", 40}};
  EXPECT_FALSE(RunScheduler(wf, rr).HasCode("CWF4002"));
  // In-range priorities are clean.
  SchedulerConfig ok = Policy("QBS");
  ok.actor_priorities = {{"src", 0}, {"sink", 39}};
  EXPECT_TRUE(RunScheduler(wf, ok).empty());
}

TEST(SchedulerConfigPassTest, Cwf4003PriorityForMissingActor) {
  Workflow wf("w");
  BuildPipeline(&wf);
  SchedulerConfig cfg = Policy("QBS");
  cfg.actor_priorities = {{"ghost", 5}};
  const DiagnosticBag diags = RunScheduler(wf, cfg);
  ASSERT_TRUE(diags.HasCode("CWF4003"));
  EXPECT_NE(diags.WithCode("CWF4003")[0]->message.find("ghost"),
            std::string::npos);
}

TEST(SchedulerConfigPassTest, Cwf4003CatchesFlatLrbWithTable3Priorities) {
  // The paper's Table-3 priorities target AccidentDetection — the composite
  // that only exists in the hierarchical build. Applying them to the
  // flattened ablation build silently priorities a non-existent actor; the
  // analyzer makes that visible.
  SchedulerConfig cfg = Policy("QBS");
  {
    QBSScheduler scheduler;
    lrb::ApplyLRBPriorities(&scheduler);
    cfg.actor_priorities = scheduler.designer_priorities();
  }

  auto flat = lrb::BuildLRBApplication(std::make_shared<PushChannel>(),
                                       /*hierarchical=*/false);
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  const DiagnosticBag flat_diags = RunScheduler(*flat->workflow, cfg);
  ASSERT_TRUE(flat_diags.HasCode("CWF4003"));
  EXPECT_NE(flat_diags.WithCode("CWF4003")[0]->message.find(
                "AccidentDetection"),
            std::string::npos);

  // Hierarchical build: the name resolution descends into composites, so
  // the same priority table is clean.
  auto hier = lrb::BuildLRBApplication(std::make_shared<PushChannel>(),
                                       /*hierarchical=*/true);
  ASSERT_TRUE(hier.ok()) << hier.status().ToString();
  EXPECT_FALSE(RunScheduler(*hier->workflow, cfg).HasCode("CWF4003"));
}

TEST(SchedulerConfigPassTest, Cwf4004BankedEpochsBelowOne) {
  Workflow wf("w");
  BuildPipeline(&wf);
  SchedulerConfig cfg = Policy("QBS");
  cfg.qbs.max_banked_epochs = 0;
  EXPECT_TRUE(RunScheduler(wf, cfg).HasCode("CWF4004"));
  cfg.qbs.max_banked_epochs = 1;
  EXPECT_FALSE(RunScheduler(wf, cfg).HasCode("CWF4004"));
}

TEST(SchedulerConfigPassTest, Cwf4005NonPositiveSlice) {
  Workflow wf("w");
  BuildPipeline(&wf);
  SchedulerConfig cfg = Policy("RR");
  cfg.rr.slice = 0;
  EXPECT_TRUE(RunScheduler(wf, cfg).HasCode("CWF4005"));
}

TEST(SchedulerConfigPassTest, Cwf4006NegativeSourceInterval) {
  Workflow wf("w");
  BuildPipeline(&wf);
  SchedulerConfig cfg = Policy("RB");
  cfg.rb.source_interval = -1;
  const DiagnosticBag diags = RunScheduler(wf, cfg);
  ASSERT_TRUE(diags.HasCode("CWF4006"));
  EXPECT_EQ(diags.WithCode("CWF4006")[0]->severity, Severity::kError);
}

TEST(SchedulerConfigPassTest, Cwf4007EdfWithoutSink) {
  Workflow wf("ring");
  auto* a = wf.AddActor<Node>("a", 1, 1);
  auto* b = wf.AddActor<Node>("b", 1, 1);
  ASSERT_TRUE(wf.Connect(a->out(), b->in()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), a->in()).ok());
  const DiagnosticBag diags = RunScheduler(wf, Policy("EDF"));
  ASSERT_TRUE(diags.HasCode("CWF4007"));
  EXPECT_EQ(diags.WithCode("CWF4007")[0]->severity, Severity::kWarning);
  // Same ring under QBS: quantum accounting does not need a sink.
  EXPECT_FALSE(RunScheduler(wf, Policy("QBS")).HasCode("CWF4007"));
}

}  // namespace
}  // namespace cwf::analysis

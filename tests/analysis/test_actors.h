// Shared inert actors for the analyzer tests: configurable port structure
// and SDF rates, no behavior.

#ifndef CONFLUENCE_TESTS_ANALYSIS_TEST_ACTORS_H_
#define CONFLUENCE_TESTS_ANALYSIS_TEST_ACTORS_H_

#include <string>
#include <vector>

#include "core/actor.h"
#include "core/workflow.h"

namespace cwf::analysis_test {

/// Inert actor: `inputs` input ports sharing one window spec, `outputs`
/// output ports. Single ports are named "in"/"out"; multiple ports are
/// "in0", "in1", ... to keep diagnostics readable.
class Node : public Actor {
 public:
  Node(std::string name, int inputs, int outputs,
       WindowSpec spec = WindowSpec::SingleEvent())
      : Actor(std::move(name)) {
    for (int i = 0; i < inputs; ++i) {
      in_.push_back(AddInputPort(
          inputs == 1 ? "in" : "in" + std::to_string(i), spec));
    }
    for (int i = 0; i < outputs; ++i) {
      out_.push_back(AddOutputPort(
          outputs == 1 ? "out" : "out" + std::to_string(i)));
    }
  }

  Status Fire() override { return Status::OK(); }

  InputPort* in(size_t i = 0) { return in_[i]; }
  OutputPort* out(size_t i = 0) { return out_[i]; }

 private:
  std::vector<InputPort*> in_;
  std::vector<OutputPort*> out_;
};

/// Node with a second input port carrying its own window spec (for
/// mixed-window checks).
class TwoSpecNode : public Actor {
 public:
  TwoSpecNode(std::string name, WindowSpec first, WindowSpec second)
      : Actor(std::move(name)) {
    a_ = AddInputPort("a", std::move(first));
    b_ = AddInputPort("b", std::move(second));
    out_ = AddOutputPort("out");
  }

  Status Fire() override { return Status::OK(); }

  InputPort* a() { return a_; }
  InputPort* b() { return b_; }
  OutputPort* out() { return out_; }

 private:
  InputPort* a_;
  InputPort* b_;
  OutputPort* out_;
};

/// Source with a declared SDF production rate.
class RateSource : public Actor {
 public:
  RateSource(std::string name, int64_t rate) : Actor(std::move(name)),
                                               rate_(rate) {
    out_ = AddOutputPort("out");
  }

  Status Fire() override { return Status::OK(); }
  int64_t ProductionRate(const OutputPort*) const override { return rate_; }

  OutputPort* out() { return out_; }

 private:
  int64_t rate_;
  OutputPort* out_;
};

}  // namespace cwf::analysis_test

#endif  // CONFLUENCE_TESTS_ANALYSIS_TEST_ACTORS_H_

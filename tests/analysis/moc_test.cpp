#include "analysis/moc_admission_pass.h"

#include <gtest/gtest.h>

#include "actors/library.h"
#include "analysis/sdf_balance.h"
#include "directors/sdf_director.h"
#include "test_actors.h"

namespace cwf::analysis {
namespace {

using analysis_test::Node;
using analysis_test::RateSource;

DiagnosticBag RunMoc(const Workflow& wf, const std::string& target) {
  MocAdmissionPass pass;
  AnalysisOptions options;
  options.target_director = target;
  DiagnosticBag diags;
  pass.Run(wf, options, &diags);
  return diags;
}

/// src(2/firing) -> consumer of 3-tuple tumbling windows -> sink.
void BuildSdfGraph(Workflow* wf) {
  auto* src = wf->AddActor<RateSource>("src", 2);
  auto* sum = wf->AddActor<Node>(
      "sum", 1, 1, WindowSpec::Tuples(3, 3).DeleteUsedEvents(true));
  auto* sink = wf->AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf->Connect(src->out(), sum->in()).ok());
  ASSERT_TRUE(wf->Connect(sum->out(), sink->in()).ok());
}

TEST(MocAdmissionTest, NoTargetEmitsNothing) {
  Workflow wf("w");
  auto* a = wf.AddActor<Node>("a", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 0,
                                WindowSpec::Time(Seconds(60), Seconds(60)));
  ASSERT_TRUE(wf.Connect(a->out(), agg->in()).ok());
  EXPECT_TRUE(RunMoc(wf, "").empty());
}

TEST(MocAdmissionTest, Cwf2001TimeWindowUnderSdf) {
  Workflow wf("w");
  auto* a = wf.AddActor<Node>("a", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 0,
                                WindowSpec::Time(Seconds(60), Seconds(60)));
  ASSERT_TRUE(wf.Connect(a->out(), agg->in()).ok());
  const DiagnosticBag diags = RunMoc(wf, "SDF");
  ASSERT_TRUE(diags.HasCode("CWF2001"));
  EXPECT_EQ(diags.WithCode("CWF2001")[0]->location, "w/agg.in");
  EXPECT_EQ(diags.WithCode("CWF2001")[0]->severity, Severity::kError);
  // The same window is fine under every other director.
  EXPECT_TRUE(RunMoc(wf, "SCWF").empty());
  EXPECT_TRUE(RunMoc(wf, "DDF").empty());
  EXPECT_TRUE(RunMoc(wf, "PNCWF").empty());
}

TEST(MocAdmissionTest, Cwf2002InconsistentRates) {
  // Diamond with mismatched rates: src -(1)-> a and src -(2-window)-> b
  // both feed sink's single port.
  Workflow wf("bad");
  auto* src = wf.AddActor<RateSource>("src", 1);
  auto* a = wf.AddActor<Node>("a", 1, 1);
  auto* b = wf.AddActor<Node>(
      "b", 1, 1, WindowSpec::Tuples(2, 2).DeleteUsedEvents(true));
  auto* sink = wf.AddActor<Node>(
      "sink", 1, 0, WindowSpec::Tuples(1, 1).DeleteUsedEvents(true));
  ASSERT_TRUE(wf.Connect(src->out(), a->in()).ok());
  ASSERT_TRUE(wf.Connect(src->out(), b->in()).ok());
  ASSERT_TRUE(wf.Connect(a->out(), sink->in()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), sink->in()).ok());
  const DiagnosticBag diags = RunMoc(wf, "SDF");
  ASSERT_TRUE(diags.HasCode("CWF2002"));
  EXPECT_EQ(diags.WithCode("CWF2002")[0]->severity, Severity::kError);
}

TEST(MocAdmissionTest, Cwf2003ScheduleDeadlockOnCycle) {
  Workflow wf("cyc");
  auto* a = wf.AddActor<Node>("a", 1, 1);
  auto* b = wf.AddActor<Node>("b", 1, 1);
  ASSERT_TRUE(wf.Connect(a->out(), b->in()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), a->in()).ok());
  const DiagnosticBag diags = RunMoc(wf, "SDF");
  ASSERT_TRUE(diags.HasCode("CWF2003"));
  EXPECT_NE(diags.WithCode("CWF2003")[0]->message.find("cycle"),
            std::string::npos);
}

TEST(MocAdmissionTest, Cwf2004CycleUnderPnAndDdf) {
  Workflow wf("cyc");
  auto* a = wf.AddActor<Node>("a", 1, 1);
  auto* b = wf.AddActor<Node>("b", 1, 1);
  auto* c = wf.AddActor<Node>("c", 1, 1);
  ASSERT_TRUE(wf.Connect(a->out(), b->in()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), c->in()).ok());
  ASSERT_TRUE(wf.Connect(c->out(), a->in()).ok());
  for (const char* target : {"PNCWF", "DDF"}) {
    const DiagnosticBag diags = RunMoc(wf, target);
    ASSERT_TRUE(diags.HasCode("CWF2004")) << target;
    const Diagnostic* d = diags.WithCode("CWF2004")[0];
    EXPECT_EQ(d->severity, Severity::kError);
    EXPECT_NE(d->message.find(" -> "), std::string::npos);
  }
  // SCWF admits the graph (the scheduler just never finds them ready).
  EXPECT_TRUE(RunMoc(wf, "SCWF").empty());
}

TEST(MocAdmissionTest, AcyclicGraphAdmittedEverywhere) {
  Workflow wf("w");
  BuildSdfGraph(&wf);
  for (const char* target : {"PNCWF", "SCWF", "SDF", "DDF"}) {
    EXPECT_TRUE(RunMoc(wf, target).empty()) << target;
  }
}

TEST(FindCycleTest, ReturnsCycleMembersInOrder) {
  Workflow wf("w");
  auto* pre = wf.AddActor<Node>("pre", 0, 1);
  auto* a = wf.AddActor<Node>("a", 1, 1);
  auto* b = wf.AddActor<Node>("b", 1, 1);
  ASSERT_TRUE(wf.Connect(pre->out(), a->in()).ok());
  ASSERT_TRUE(wf.Connect(a->out(), b->in()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), a->in()).ok());
  const auto cycle = FindCycle(wf);
  ASSERT_EQ(cycle.size(), 2u);  // pre is NOT part of the cycle
  EXPECT_EQ(cycle[0]->name(), "a");
  EXPECT_EQ(cycle[1]->name(), "b");
  Workflow acyclic("ok");
  auto* s = acyclic.AddActor<Node>("s", 0, 1);
  auto* t = acyclic.AddActor<Node>("t", 1, 0);
  ASSERT_TRUE(acyclic.Connect(s->out(), t->in()).ok());
  EXPECT_TRUE(FindCycle(acyclic).empty());
}

// ---- sdf_balance: the single home of the SDF solver ----

TEST(SdfBalanceTest, SolutionMatchesDirector) {
  Workflow wf("w");
  BuildSdfGraph(&wf);
  auto solution = SolveSdf(wf);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution->repetitions.at(wf.FindActor("src")), 3);
  EXPECT_EQ(solution->repetitions.at(wf.FindActor("sum")), 2);
  EXPECT_EQ(solution->repetitions.at(wf.FindActor("sink")), 2);
  EXPECT_EQ(solution->schedule.size(), 7u);

  // The director consumes the same solver, so Initialize must agree.
  VirtualClock clock;
  SDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  EXPECT_EQ(d.Repetitions(wf.FindActor("src")).value(), 3);
  EXPECT_EQ(d.Repetitions(wf.FindActor("sum")).value(), 2);
  EXPECT_EQ(d.schedule().size(), 7u);
}

TEST(SdfBalanceTest, ChannelDemandHonorsConsumptionMode) {
  Workflow wf("w");
  auto* src = wf.AddActor<RateSource>("src", 1);
  auto* sliding = wf.AddActor<Node>("sliding", 1, 1,
                                    WindowSpec::Tuples(4, 2));
  auto* tumbling = wf.AddActor<Node>(
      "tumbling", 1, 0, WindowSpec::Tuples(4, 2).DeleteUsedEvents(true));
  ASSERT_TRUE(wf.Connect(src->out(), sliding->in()).ok());
  ASSERT_TRUE(wf.Connect(sliding->out(), tumbling->in()).ok());
  // Sliding absorbs step=2 per window; consuming absorbs size=4.
  EXPECT_EQ(SdfChannelDemand(wf.channels()[0]), 2);
  EXPECT_EQ(SdfChannelDemand(wf.channels()[1]), 4);
}

TEST(SdfBalanceTest, DataDependentRatePortsListsTimeAndWaveWindows) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* timed = wf.AddActor<Node>("timed", 1, 1,
                                  WindowSpec::Time(Seconds(1), Seconds(1)));
  auto* waved = wf.AddActor<Node>("waved", 1, 0, WindowSpec::Waves(1, 1));
  ASSERT_TRUE(wf.Connect(src->out(), timed->in()).ok());
  ASSERT_TRUE(wf.Connect(timed->out(), waved->in()).ok());
  EXPECT_EQ(DataDependentRatePorts(wf).size(), 2u);
  const auto status = SolveSdf(wf).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cwf::analysis

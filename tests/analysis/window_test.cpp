#include "analysis/window_pass.h"

#include <gtest/gtest.h>

#include "test_actors.h"

namespace cwf::analysis {
namespace {

using analysis_test::Node;
using analysis_test::TwoSpecNode;

DiagnosticBag RunWindow(const Workflow& wf, const std::string& target = "") {
  WindowPass pass;
  AnalysisOptions options;
  options.target_director = target;
  DiagnosticBag diags;
  pass.Run(wf, options, &diags);
  return diags;
}

TEST(WindowPassTest, CleanSpecsEmitNothing) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>(
      "agg", 1, 1,
      WindowSpec::Time(Seconds(60), Seconds(60)).FormationTimeout(Seconds(5)));
  auto* sink = wf.AddActor<Node>("sink", 1, 0, WindowSpec::Waves(1, 1));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  ASSERT_TRUE(wf.Connect(agg->out(), sink->in()).ok());
  const DiagnosticBag diags = RunWindow(wf, "SCWF");
  EXPECT_TRUE(diags.empty()) << diags.ToText();
}

TEST(WindowPassTest, Cwf3001MixedWaveAndNonWaveInputs) {
  Workflow wf("w");
  auto* a = wf.AddActor<Node>("a", 0, 1);
  auto* b = wf.AddActor<Node>("b", 0, 1);
  auto* mix = wf.AddActor<TwoSpecNode>("mix", WindowSpec::Waves(1, 1),
                                       WindowSpec::Tuples(4, 4));
  ASSERT_TRUE(wf.Connect(a->out(), mix->a()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), mix->b()).ok());
  const DiagnosticBag diags = RunWindow(wf);
  ASSERT_TRUE(diags.HasCode("CWF3001"));
  EXPECT_EQ(diags.WithCode("CWF3001")[0]->location, "w/mix");
  EXPECT_EQ(diags.WithCode("CWF3001")[0]->severity, Severity::kWarning);
}

TEST(WindowPassTest, Cwf3001NotFiredWhenWavePortIsUnwired) {
  // The tuple port is wired but the wave port is not: receivers are only
  // built for wired ports, so there is no mixed firing to warn about.
  Workflow wf("w");
  auto* b = wf.AddActor<Node>("b", 0, 1);
  auto* mix = wf.AddActor<TwoSpecNode>("mix", WindowSpec::Waves(1, 1),
                                       WindowSpec::Tuples(4, 4));
  ASSERT_TRUE(wf.Connect(b->out(), mix->b()).ok());
  EXPECT_FALSE(RunWindow(wf).HasCode("CWF3001"));
}

TEST(WindowPassTest, Cwf3002WaveWindowWithGroupBy) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0,
                                 WindowSpec::Waves(1, 1).GroupBy({"object"}));
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const DiagnosticBag diags = RunWindow(wf);
  ASSERT_TRUE(diags.HasCode("CWF3002"));
  EXPECT_EQ(diags.WithCode("CWF3002")[0]->location, "w/sink.in");
  // GroupBy on a tuple window is ordinary partitioning — no warning.
  Workflow ok("ok");
  auto* s = ok.AddActor<Node>("s", 0, 1);
  auto* t = ok.AddActor<Node>(
      "t", 1, 0, WindowSpec::Tuples(2, 2).GroupBy({"object"}));
  ASSERT_TRUE(ok.Connect(s->out(), t->in()).ok());
  EXPECT_TRUE(RunWindow(ok).empty());
}

TEST(WindowPassTest, Cwf3003WaveWindowOnFanInPort) {
  Workflow wf("w");
  auto* a = wf.AddActor<Node>("a", 0, 1);
  auto* b = wf.AddActor<Node>("b", 0, 1);
  auto* merge = wf.AddActor<Node>("merge", 1, 0, WindowSpec::Waves(1, 1));
  ASSERT_TRUE(wf.Connect(a->out(), merge->in()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), merge->in()).ok());
  const DiagnosticBag diags = RunWindow(wf);
  ASSERT_TRUE(diags.HasCode("CWF3003"));
  EXPECT_NE(diags.WithCode("CWF3003")[0]->message.find("2 incoming"),
            std::string::npos);
  // Fan-in on a non-wave port is plain merging — no warning.
  Workflow ok("ok");
  auto* s1 = ok.AddActor<Node>("s1", 0, 1);
  auto* s2 = ok.AddActor<Node>("s2", 0, 1);
  auto* t = ok.AddActor<Node>("t", 1, 0);
  ASSERT_TRUE(ok.Connect(s1->out(), t->in()).ok());
  ASSERT_TRUE(ok.Connect(s2->out(), t->in()).ok());
  EXPECT_TRUE(RunWindow(ok).empty());
}

TEST(WindowPassTest, Cwf3004UnclosableTimeWindowUnderScwf) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>(
      "agg", 1, 0,
      WindowSpec::Time(Seconds(60), Seconds(60)).FormationTimeout(-1));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  const DiagnosticBag scwf = RunWindow(wf, "SCWF");
  ASSERT_TRUE(scwf.HasCode("CWF3004"));
  EXPECT_EQ(scwf.WithCode("CWF3004")[0]->location, "w/agg.in");
  // PNCWF receivers block in their own thread; the pattern is fine there.
  EXPECT_FALSE(RunWindow(wf, "PNCWF").HasCode("CWF3004"));
  // With a timeout the SCWF timer wheel closes the window.
  Workflow ok("ok");
  auto* s = ok.AddActor<Node>("s", 0, 1);
  auto* t = ok.AddActor<Node>(
      "t", 1, 0, WindowSpec::Time(Seconds(60), Seconds(60)));
  ASSERT_TRUE(ok.Connect(s->out(), t->in()).ok());
  EXPECT_FALSE(RunWindow(ok, "SCWF").HasCode("CWF3004"));
}

TEST(WindowPassTest, Cwf3005StepExceedsSize) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* gap = wf.AddActor<Node>("gap", 1, 0, WindowSpec::Tuples(1, 5));
  ASSERT_TRUE(wf.Connect(src->out(), gap->in()).ok());
  const DiagnosticBag diags = RunWindow(wf);
  ASSERT_TRUE(diags.HasCode("CWF3005"));
  EXPECT_EQ(diags.WithCode("CWF3005")[0]->severity, Severity::kNote);
  // size == step (tumbling) is the common clean case.
  Workflow ok("ok");
  auto* s = ok.AddActor<Node>("s", 0, 1);
  auto* t = ok.AddActor<Node>("t", 1, 0, WindowSpec::Tuples(5, 5));
  ASSERT_TRUE(ok.Connect(s->out(), t->in()).ok());
  EXPECT_FALSE(RunWindow(ok).HasCode("CWF3005"));
}

}  // namespace
}  // namespace cwf::analysis

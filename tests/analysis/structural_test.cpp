#include "analysis/structural_pass.h"

#include <gtest/gtest.h>

#include "actors/library.h"
#include "test_actors.h"

namespace cwf::analysis {
namespace {

using analysis_test::Node;

DiagnosticBag RunStructural(const Workflow& wf) {
  StructuralPass pass;
  DiagnosticBag diags;
  pass.Run(wf, {}, &diags);
  return diags;
}

/// src -> mid -> sink: triggers nothing.
void BuildClean(Workflow* wf) {
  auto* src = wf->AddActor<Node>("src", 0, 1);
  auto* mid = wf->AddActor<Node>("mid", 1, 1);
  auto* sink = wf->AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf->Connect(src->out(), mid->in()).ok());
  ASSERT_TRUE(wf->Connect(mid->out(), sink->in()).ok());
}

TEST(StructuralPassTest, CleanGraphHasNoDiagnostics) {
  Workflow wf("clean");
  BuildClean(&wf);
  const DiagnosticBag diags = RunStructural(wf);
  EXPECT_TRUE(diags.empty()) << diags.ToText();
  EXPECT_TRUE(wf.Validate().ok());
}

TEST(StructuralPassTest, Cwf1002InvalidWindowSpec) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* bad = wf.AddActor<Node>("bad", 1, 0, WindowSpec::Tuples(0, 1));
  ASSERT_TRUE(wf.Connect(src->out(), bad->in()).ok());
  const DiagnosticBag diags = RunStructural(wf);
  ASSERT_TRUE(diags.HasCode("CWF1002"));
  EXPECT_EQ(diags.WithCode("CWF1002")[0]->location, "w/bad.in");
  EXPECT_EQ(diags.WithCode("CWF1002")[0]->severity, Severity::kError);
  EXPECT_FALSE(wf.Validate().ok());
}

TEST(StructuralPassTest, Cwf1003SelfLoop) {
  Workflow wf("w");
  auto* loop = wf.AddActor<Node>("loop", 1, 1);
  ASSERT_TRUE(wf.Connect(loop->out(), loop->in()).ok());
  const DiagnosticBag diags = RunStructural(wf);
  ASSERT_TRUE(diags.HasCode("CWF1003"));
  EXPECT_EQ(diags.WithCode("CWF1003")[0]->severity, Severity::kError);
  EXPECT_EQ(diags.WithCode("CWF1003")[0]->actor->name(), "loop");
  EXPECT_EQ(wf.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(StructuralPassTest, Cwf1004DuplicateChannelSlot) {
  Workflow wf("w");
  auto* a = wf.AddActor<Node>("a", 0, 1);
  auto* b = wf.AddActor<Node>("b", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(a->out(), sink->in(), 0).ok());
  ASSERT_TRUE(wf.Connect(b->out(), sink->in(), 0).ok());
  const DiagnosticBag diags = RunStructural(wf);
  ASSERT_TRUE(diags.HasCode("CWF1004"));
  EXPECT_EQ(diags.WithCode("CWF1004")[0]->location, "w/sink.in[0]");
  EXPECT_EQ(wf.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(StructuralPassTest, ExplicitDistinctSlotsAreLegal) {
  Workflow wf("w");
  auto* a = wf.AddActor<Node>("a", 0, 1);
  auto* b = wf.AddActor<Node>("b", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(a->out(), sink->in(), 0).ok());
  ASSERT_TRUE(wf.Connect(b->out(), sink->in(), 1).ok());
  EXPECT_FALSE(RunStructural(wf).HasCode("CWF1004"));
  EXPECT_TRUE(wf.Validate().ok());
}

TEST(StructuralPassTest, Cwf1005PartiallyConnectedInputs) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* join = wf.AddActor<Node>("join", 2, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(src->out(), join->in(0)).ok());
  ASSERT_TRUE(wf.Connect(join->out(), sink->in()).ok());
  const DiagnosticBag diags = RunStructural(wf);
  ASSERT_TRUE(diags.HasCode("CWF1005"));
  EXPECT_EQ(diags.WithCode("CWF1005")[0]->location, "w/join.in1");
  EXPECT_EQ(diags.WithCode("CWF1005")[0]->severity, Severity::kWarning);
  // Warnings never fail Validate().
  EXPECT_TRUE(wf.Validate().ok());
}

TEST(StructuralPassTest, SourceWithUnusedInputsIsNotPartiallyConnected) {
  // An actor with NO connected inputs is a source; its unconnected ports
  // are its interface, not a wiring mistake.
  Workflow wf("w");
  auto* lonely = wf.AddActor<Node>("lonely", 2, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(lonely->out(), sink->in()).ok());
  EXPECT_FALSE(RunStructural(wf).HasCode("CWF1005"));
}

TEST(StructuralPassTest, Cwf1006UnreachableCycleActors) {
  Workflow wf("w");
  BuildClean(&wf);
  auto* a = wf.AddActor<Node>("orbit_a", 1, 1);
  auto* b = wf.AddActor<Node>("orbit_b", 1, 1);
  ASSERT_TRUE(wf.Connect(a->out(), b->in()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), a->in()).ok());
  const DiagnosticBag diags = RunStructural(wf);
  EXPECT_EQ(diags.WithCode("CWF1006").size(), 2u);
  EXPECT_FALSE(diags.HasCode("CWF1007"));  // src still exists
}

TEST(StructuralPassTest, Cwf1007And1008PureRing) {
  Workflow wf("ring");
  auto* a = wf.AddActor<Node>("a", 1, 1);
  auto* b = wf.AddActor<Node>("b", 1, 1);
  ASSERT_TRUE(wf.Connect(a->out(), b->in()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), a->in()).ok());
  const DiagnosticBag diags = RunStructural(wf);
  EXPECT_TRUE(diags.HasCode("CWF1007"));
  EXPECT_TRUE(diags.HasCode("CWF1008"));
  EXPECT_EQ(diags.ErrorCount(), 0u);  // shape smells, not errors
}

TEST(StructuralPassTest, CleanGraphHasSourceAndSink) {
  Workflow wf("clean");
  BuildClean(&wf);
  const DiagnosticBag diags = RunStructural(wf);
  EXPECT_FALSE(diags.HasCode("CWF1007"));
  EXPECT_FALSE(diags.HasCode("CWF1008"));
  EXPECT_FALSE(diags.HasCode("CWF1009"));
}

TEST(StructuralPassTest, Cwf1009EmptyWorkflow) {
  Workflow wf("empty");
  const DiagnosticBag diags = RunStructural(wf);
  ASSERT_TRUE(diags.HasCode("CWF1009"));
  EXPECT_EQ(diags.all().size(), 1u);  // early return: nothing else piles on
}

TEST(StructuralPassTest, LocationsUseExplicitPrefix) {
  Workflow wf("w");
  auto* loop = wf.AddActor<Node>("loop", 1, 1);
  ASSERT_TRUE(wf.Connect(loop->out(), loop->in()).ok());
  StructuralPass pass;
  AnalysisOptions options;
  options.location_prefix = "outer/comp";
  DiagnosticBag diags;
  pass.Run(wf, options, &diags);
  EXPECT_EQ(diags.WithCode("CWF1003")[0]->location, "outer/comp/loop");
}

}  // namespace
}  // namespace cwf::analysis

#include "analysis/diagnostic.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace cwf::analysis {
namespace {

TEST(DiagnosticBagTest, CountsBySeverity) {
  DiagnosticBag bag;
  EXPECT_TRUE(bag.empty());
  bag.Error("CWF1003", "w/A", "self loop");
  bag.Warning("CWF1006", "w/B", "dead actor");
  bag.Warning("CWF1006", "w/C", "dead actor");
  bag.Note("CWF3005", "w/D.in", "gap");
  EXPECT_EQ(bag.ErrorCount(), 1u);
  EXPECT_EQ(bag.WarningCount(), 2u);
  EXPECT_EQ(bag.NoteCount(), 1u);
  EXPECT_TRUE(bag.HasErrors());
  EXPECT_EQ(bag.all().size(), 4u);
}

TEST(DiagnosticBagTest, HasCodeAndWithCode) {
  DiagnosticBag bag;
  bag.Warning("CWF1006", "w/B", "dead actor");
  bag.Warning("CWF1006", "w/C", "dead actor");
  EXPECT_TRUE(bag.HasCode("CWF1006"));
  EXPECT_FALSE(bag.HasCode("CWF1003"));
  EXPECT_EQ(bag.WithCode("CWF1006").size(), 2u);
  EXPECT_EQ(bag.WithCode("CWF1006")[1]->location, "w/C");
}

TEST(DiagnosticBagTest, ToTextFormat) {
  DiagnosticBag bag;
  bag.Error("CWF1003", "w/A", "self-loop channel");
  EXPECT_EQ(bag.ToText(), "error CWF1003 at w/A: self-loop channel\n");
}

TEST(DiagnosticBagTest, ToJsonEscapesSpecials) {
  DiagnosticBag bag;
  bag.Error("CWF1002", "w/A.in", "bad \"spec\" \\ here\nline2");
  const std::string json = bag.ToJson();
  EXPECT_NE(json.find("\\\"spec\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\ here"), std::string::npos);
  EXPECT_NE(json.find("\\nline2"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

TEST(DiagnosticBagTest, EmptyBagRendersEmptyJsonArray) {
  DiagnosticBag bag;
  EXPECT_EQ(bag.ToJson(), "[]");
  EXPECT_EQ(bag.ToText(), "");
}

TEST(DiagnosticRegistryTest, CodesAreUniqueOrderedAndDocumented) {
  const auto& codes = DiagnosticCodes();
  ASSERT_FALSE(codes.empty());
  std::set<std::string> seen;
  std::string prev;
  for (const DiagnosticCodeInfo& info : codes) {
    EXPECT_TRUE(seen.insert(info.code).second) << info.code << " duplicated";
    EXPECT_LT(prev, info.code) << "registry must stay in code order";
    prev = info.code;
    EXPECT_GT(std::string(info.summary).size(), 10u)
        << info.code << " needs a real summary";
  }
}

TEST(DiagnosticRegistryTest, CoversAllFourPassRanges) {
  const auto& codes = DiagnosticCodes();
  bool r1 = false, r2 = false, r3 = false, r4 = false;
  for (const DiagnosticCodeInfo& info : codes) {
    const std::string code = info.code;
    r1 |= code.rfind("CWF1", 0) == 0;
    r2 |= code.rfind("CWF2", 0) == 0;
    r3 |= code.rfind("CWF3", 0) == 0;
    r4 |= code.rfind("CWF4", 0) == 0;
  }
  EXPECT_TRUE(r1 && r2 && r3 && r4);
}

}  // namespace
}  // namespace cwf::analysis

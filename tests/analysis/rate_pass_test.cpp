#include "analysis/rate_pass.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "analysis/diagnostic.h"
#include "test_actors.h"

namespace cwf::analysis {
namespace {

using analysis_test::Node;
using analysis_test::RateSource;

AnalysisOptions Declared(std::map<std::string, RateInterval> rates,
                         const std::string& target = "SCWF") {
  AnalysisOptions options;
  options.target_director = target;
  options.source_rates = std::move(rates);
  return options;
}

TEST(RateIntervalTest, LatticeOperations) {
  const RateInterval top;
  EXPECT_FALSE(top.bounded());
  const RateInterval exact = RateInterval::Exact(10.0);
  EXPECT_TRUE(exact.bounded());
  EXPECT_DOUBLE_EQ(exact.min, 10.0);
  EXPECT_DOUBLE_EQ(exact.max, 10.0);
  const RateInterval scaled = exact.Scaled(0.5);
  EXPECT_DOUBLE_EQ(scaled.max, 5.0);
  const RateInterval sum = exact.Plus(RateInterval::Of(1.0, 2.0));
  EXPECT_DOUBLE_EQ(sum.min, 11.0);
  EXPECT_DOUBLE_EQ(sum.max, 12.0);
  const RateInterval met = top.Meet(exact);
  EXPECT_DOUBLE_EQ(met.max, 10.0);
  EXPECT_EQ(exact.ToString(), "[10, 10]/s");
}

TEST(RatePassTest, UnknownSourceRateDegradesToTop) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const RateModel model = ComputeRateModel(wf, Declared({}));
  ASSERT_EQ(model.channels.size(), 1u);
  EXPECT_FALSE(model.channels[0].events.bounded());
  ASSERT_EQ(model.unknown_rate_sources.size(), 1u);
  EXPECT_EQ(model.unknown_rate_sources[0]->name(), "src");
}

TEST(RatePassTest, DeclaredRatePropagatesThroughPipeline) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* map = wf.AddActor<Node>("map", 1, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(src->out(), map->in()).ok());
  ASSERT_TRUE(wf.Connect(map->out(), sink->in()).ok());
  const RateModel model =
      ComputeRateModel(wf, Declared({{"src", RateInterval::Exact(100.0)}}));
  ASSERT_EQ(model.channels.size(), 2u);
  EXPECT_DOUBLE_EQ(model.channels[0].events.max, 100.0);
  EXPECT_DOUBLE_EQ(model.channels[1].events.max, 100.0);
  EXPECT_TRUE(model.unknown_rate_sources.empty());
}

TEST(RatePassTest, TumblingTupleWindowDividesByStep) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 1, WindowSpec::Tuples(5, 5));
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  ASSERT_TRUE(wf.Connect(agg->out(), sink->in()).ok());
  const RateModel model =
      ComputeRateModel(wf, Declared({{"src", RateInterval::Exact(100.0)}}));
  // 100 ev/s through a 5-step tumbling window: 20 windows/s, 5 events
  // each, residency bounded by size + step.
  EXPECT_DOUBLE_EQ(model.channels[0].windows.max, 20.0);
  EXPECT_DOUBLE_EQ(model.channels[0].events_per_window_max, 5.0);
  EXPECT_DOUBLE_EQ(model.channels[0].resident_events_max, 10.0);
  // agg fires once per window and re-emits one token per firing.
  const auto agg_rates = model.actors.find(agg);
  ASSERT_NE(agg_rates, model.actors.end());
  EXPECT_DOUBLE_EQ(agg_rates->second.firings.max, 20.0);
  EXPECT_DOUBLE_EQ(model.channels[1].events.max, 20.0);
}

TEST(RatePassTest, SlidingTupleWindowKeepsPerEventRate) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 0, WindowSpec::Tuples(3, 1));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  const RateModel model =
      ComputeRateModel(wf, Declared({{"src", RateInterval::Exact(50.0)}}));
  EXPECT_DOUBLE_EQ(model.channels[0].windows.max, 50.0);
  EXPECT_DOUBLE_EQ(model.channels[0].events_per_window_max, 3.0);
}

TEST(RatePassTest, TimeWindowRateIsCappedByStep) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 0,
                                WindowSpec::Time(Seconds(60), Seconds(60)));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  const RateModel model =
      ComputeRateModel(wf, Declared({{"src", RateInterval::Exact(25.0)}}));
  // At most one window per 60-second step regardless of the arrival rate.
  EXPECT_DOUBLE_EQ(model.channels[0].windows.max, 1.0 / 60.0);
  // A keeping-up consumer still holds a full window span of events.
  EXPECT_DOUBLE_EQ(model.channels[0].resident_events_max, 25.0 * 120.0);
}

TEST(RatePassTest, GroupByResidencyIsStaticallyUnbounded) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>(
      "agg", 1, 0, WindowSpec::Tuples(2, 2).GroupBy({"key"}));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  const RateModel model =
      ComputeRateModel(wf, Declared({{"src", RateInterval::Exact(10.0)}}));
  EXPECT_TRUE(model.channels[0].windows.bounded());
  EXPECT_TRUE(std::isinf(model.channels[0].resident_events_max));
}

TEST(RatePassTest, SdfBalanceEquationsPinExactRates) {
  Workflow wf("w");
  auto* src = wf.AddActor<RateSource>("src", 2);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const RateModel model = ComputeRateModel(
      wf, Declared({{"src", RateInterval::Exact(10.0)}}, "SDF"));
  EXPECT_TRUE(model.exact_sdf);
  // 10 ev/s from a produce-2 source: 5 firings/s; the consume-1 sink
  // fires once per event.
  const auto src_rates = model.actors.find(src);
  ASSERT_NE(src_rates, model.actors.end());
  EXPECT_DOUBLE_EQ(src_rates->second.firings.max, 5.0);
  const auto sink_rates = model.actors.find(sink);
  ASSERT_NE(sink_rates, model.actors.end());
  EXPECT_DOUBLE_EQ(sink_rates->second.firings.max, 10.0);
}

DiagnosticBag RunRatePass(const Workflow& wf, AnalysisOptions options) {
  RatePass pass;
  DiagnosticBag diags;
  pass.Run(wf, options, &diags);
  return diags;
}

TEST(RatePassTest, Cwf5001UndeclaredSourceRate) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const DiagnosticBag diags = RunRatePass(wf, Declared({}));
  ASSERT_TRUE(diags.HasCode("CWF5001"));
  EXPECT_EQ(diags.WithCode("CWF5001")[0]->severity, Severity::kNote);
  EXPECT_EQ(diags.WithCode("CWF5001")[0]->location, "w/src");
}

TEST(RatePassTest, Cwf5001SilentWhenRateDeclared) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const DiagnosticBag diags =
      RunRatePass(wf, Declared({{"src", RateInterval::Exact(10.0)}}));
  EXPECT_FALSE(diags.HasCode("CWF5001")) << diags.ToText();
}

TEST(RatePassTest, Cwf5005WaveWindowWithBoundedInflow) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0, WindowSpec::Waves(1, 1));
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const DiagnosticBag diags =
      RunRatePass(wf, Declared({{"src", RateInterval::Exact(10.0)}}));
  ASSERT_TRUE(diags.HasCode("CWF5005"));
  EXPECT_EQ(diags.WithCode("CWF5005")[0]->severity, Severity::kNote);
  EXPECT_EQ(diags.WithCode("CWF5005")[0]->location, "w/sink.in");
}

TEST(RatePassTest, Cwf5005SilentWithoutRateInformation) {
  // With no inflow bound there is nothing quantitative to degrade — the
  // CWF5001 note already covers the unknown source.
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0, WindowSpec::Waves(1, 1));
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const DiagnosticBag diags = RunRatePass(wf, Declared({}));
  EXPECT_FALSE(diags.HasCode("CWF5005")) << diags.ToText();
}

}  // namespace
}  // namespace cwf::analysis

#include "analysis/capacity_planner.h"

#include <gtest/gtest.h>

#include <map>

#include "analysis/builtin_graphs.h"
#include "core/cost_model.h"
#include "test_actors.h"

namespace cwf::analysis {
namespace {

using analysis_test::Node;

AnalysisOptions Declared(std::map<std::string, RateInterval> rates,
                         const std::string& target = "SCWF") {
  AnalysisOptions options;
  options.target_director = target;
  options.source_rates = std::move(rates);
  return options;
}

TEST(CapacityPlannerTest, BoundedChannelUsesResidencyPlusBacklog) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 0, WindowSpec::Tuples(5, 5));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  const CapacityPlan plan = PlanCapacity(
      wf, Declared({{"src", RateInterval::Exact(100.0)}}));
  ASSERT_EQ(plan.channels.size(), 1u);
  const ChannelCapacity& ch = plan.channels[0];
  EXPECT_TRUE(ch.bounded);
  EXPECT_EQ(ch.producer, "src.out");
  EXPECT_EQ(ch.consumer, "agg.in");
  // burst_slack + ceil(safety * (resident + windows * delay_budget))
  //   = 64 + ceil(2 * (10 + 20 * 1)) = 124.
  EXPECT_EQ(ch.capacity, 124u);
  EXPECT_EQ(plan.CapacityFor("agg.in", 0), 124u);
}

TEST(CapacityPlannerTest, PlanningOptionsScaleTheBound) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 0, WindowSpec::Tuples(5, 5));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  PlanningOptions planning;
  planning.burst_slack = 0;
  planning.safety_factor = 1.0;
  planning.queueing_delay_budget_seconds = 0.0;
  const CapacityPlan plan = PlanCapacity(
      wf, Declared({{"src", RateInterval::Exact(100.0)}}), planning);
  // Pure residency: window size + step.
  EXPECT_EQ(plan.channels[0].capacity, 10u);
}

TEST(CapacityPlannerTest, UnknownInflowStaysUnbounded) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const CapacityPlan plan = PlanCapacity(wf, Declared({}));
  ASSERT_EQ(plan.channels.size(), 1u);
  EXPECT_FALSE(plan.channels[0].bounded);
  EXPECT_EQ(plan.channels[0].capacity, 0u);
  EXPECT_EQ(plan.CapacityFor("sink.in", 0), 0u);
}

TEST(CapacityPlannerTest, GroupByResidencyFallsBackToHorizon) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>(
      "agg", 1, 0, WindowSpec::Tuples(2, 2).GroupBy({"key"}));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  const CapacityPlan plan =
      PlanCapacity(wf, Declared({{"src", RateInterval::Exact(10.0)}}));
  // Residency is statically unbounded (per-key retention): hold a full
  // 60-second horizon of arrivals instead.
  //   64 + ceil(2 * (10 * 60 + 5 * 1)) = 64 + 1210 = 1274.
  EXPECT_TRUE(plan.channels[0].bounded);
  EXPECT_EQ(plan.channels[0].capacity, 1274u);
}

TEST(CapacityPlannerTest, CapacityForMatchesConsumerAndSlot) {
  Workflow wf("w");
  auto* a = wf.AddActor<Node>("a", 0, 1);
  auto* b = wf.AddActor<Node>("b", 0, 1);
  auto* join = wf.AddActor<Node>("join", 1, 0);
  ASSERT_TRUE(wf.Connect(a->out(), join->in()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), join->in()).ok());
  const CapacityPlan plan =
      PlanCapacity(wf, Declared({{"a", RateInterval::Exact(10.0)},
                                 {"b", RateInterval::Exact(10.0)}}));
  ASSERT_EQ(plan.channels.size(), 2u);
  EXPECT_GT(plan.CapacityFor("join.in", 0), 0u);
  EXPECT_GT(plan.CapacityFor("join.in", 1), 0u);
  EXPECT_EQ(plan.CapacityFor("join.in", 7), 0u);
  EXPECT_EQ(plan.CapacityFor("absent.in", 0), 0u);
}

TEST(CapacityPlannerTest, CriticalPathFollowsModeledCosts) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* cheap = wf.AddActor<Node>("cheap", 1, 0);
  auto* costly = wf.AddActor<Node>("costly", 1, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(src->out(), cheap->in()).ok());
  ASSERT_TRUE(wf.Connect(src->out(), costly->in()).ok());
  ASSERT_TRUE(wf.Connect(costly->out(), sink->in()).ok());
  CostModel costs;
  costs.SetDefault({100, 0, 0});
  costs.SetActorCost("costly", {5000, 0, 0});
  AnalysisOptions options = Declared({{"src", RateInterval::Exact(10.0)}});
  options.cost_model = &costs;
  const CapacityPlan plan = PlanCapacity(wf, options);
  ASSERT_EQ(plan.critical_path.size(), 3u);
  EXPECT_EQ(plan.critical_path[0], "src");
  EXPECT_EQ(plan.critical_path[1], "costly");
  EXPECT_EQ(plan.critical_path[2], "sink");
  // Each node carries base + scheduled dispatch overhead (5 us).
  EXPECT_DOUBLE_EQ(plan.critical_path_latency_micros, 105 + 5005 + 105);
  EXPECT_NEAR(plan.total_utilization,
              10.0 * (105 + 105 + 5005 + 105) / 1e6, 1e-9);
}

TEST(CapacityPlannerTest, JsonRendersInfinityAsString) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const CapacityPlan plan = PlanCapacity(wf, Declared({}));
  const std::string json = plan.ToJson();
  EXPECT_NE(json.find("\"inflow_events_max\":\"inf\""), std::string::npos)
      << json;
  EXPECT_EQ(json.find("inf,"), std::string::npos) << json;  // never bare
}

TEST(CapacityPlannerTest, BuiltinCatalogPlansAreFullyBounded) {
  // Every catalog deployment declares its source rates, so the planner
  // must bound every channel — the invariant the runtime tests then check
  // against observed high-water marks.
  for (const BuiltinGraph& graph : BuildBuiltinGraphs()) {
    const CapacityPlan plan =
        PlanCapacity(*graph.workflow, AnalysisOptionsFor(graph));
    EXPECT_FALSE(plan.channels.empty()) << graph.name;
    for (const ChannelCapacity& ch : plan.channels) {
      EXPECT_TRUE(ch.bounded)
          << graph.name << ": " << ch.producer << " -> " << ch.consumer;
      EXPECT_GT(ch.capacity, 0u) << graph.name;
    }
    EXPECT_FALSE(plan.critical_path.empty()) << graph.name;
    EXPECT_GT(plan.total_utilization, 0.0) << graph.name;
    EXPECT_LT(plan.total_utilization, 1.0)
        << graph.name << " is overloaded as declared";
  }
}

}  // namespace
}  // namespace cwf::analysis

// Control fixture (EXPECT=pass): correctly locked code must compile cleanly
// under the exact flags the failing fixtures use — proving those fixtures
// fail because of their defects, not because of the flags.
//
// Exercises the annotation surface the engine relies on: CWF_GUARDED_BY
// with ScopedLock, CWF_REQUIRES helpers, CWF_EXCLUDES public entry points,
// and try_lock via CWF_TRY_ACQUIRE.

#include "common/lock_registry.h"

namespace {

class Account {
 public:
  void Deposit(int amount) CWF_EXCLUDES(mutex_) {
    cwf::ScopedLock lock(mutex_);
    AddLocked(amount);
  }

  int balance() const CWF_EXCLUDES(mutex_) {
    cwf::ScopedLock lock(mutex_);
    return balance_;
  }

  bool TryDeposit(int amount) CWF_EXCLUDES(mutex_) {
    if (!mutex_.try_lock()) {
      return false;
    }
    AddLocked(amount);
    mutex_.unlock();
    return true;
  }

 private:
  void AddLocked(int amount) CWF_REQUIRES(mutex_) { balance_ += amount; }

  mutable cwf::OrderedMutex mutex_{"negcompile::clean::mutex"};
  int balance_ CWF_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(2);
  account.TryDeposit(3);
  return account.balance() == 5 ? 0 : 1;
}

// Negative-compilation fixture (EXPECT=fail): reading a CWF_GUARDED_BY
// member without holding its mutex must be rejected under
// -Wthread-safety -Werror=thread-safety-analysis.
//
// Registered by tests/CMakeLists.txt only when the compiler supports
// -Wthread-safety (clang); see cmake/NegativeCompile.cmake.

#include "common/lock_registry.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    cwf::ScopedLock lock(mutex_);
    balance_ += amount;
  }

  // BAD: guarded read with no lock held — the thread-safety analysis must
  // error out here.
  int balance() const { return balance_; }

 private:
  mutable cwf::OrderedMutex mutex_{"negcompile::Account::mutex"};
  int balance_ CWF_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.balance();
}

// Negative-compilation fixture (EXPECT=fail): acquiring a capability that
// is already held must be rejected under -Wthread-safety
// -Werror=thread-safety-analysis (ScopedLock is a SCOPED_CAPABILITY, so the
// analysis tracks both acquisitions).
//
// Registered by tests/CMakeLists.txt only when the compiler supports
// -Wthread-safety (clang); see cmake/NegativeCompile.cmake.

#include "common/lock_registry.h"

int main() {
  cwf::OrderedMutex mutex{"negcompile::double_acquire"};
  cwf::ScopedLock first(mutex);
  cwf::ScopedLock second(mutex);  // BAD: mutex is already held
  return 0;
}

// Golden snapshot of the machine-readable diagnostic-code registry
// (`cwf_analyze --codes --json` prints exactly DiagnosticCodesJson()).
//
// Downstream tooling keys on these codes and summaries; a change here must
// be deliberate. To update: rebuild, run `cwf_analyze --codes --json`, and
// paste the output below.

#include <gtest/gtest.h>

#include "analysis/diagnostic.h"

namespace cwf::analysis {
namespace {

constexpr const char* kGoldenCodesJson =
    R"json([{"code":"CWF1001","severity":"warning","summary":"duplicate actor name (error within one workflow level; warning when an inner composite actor shadows an outer name)"},{"code":"CWF1002","severity":"error","summary":"invalid window spec on an input port"},{"code":"CWF1003","severity":"error","summary":"self-loop channel on an actor"},{"code":"CWF1004","severity":"error","summary":"two channels wired into the same input-channel slot"},{"code":"CWF1005","severity":"warning","summary":"actor has both connected and unconnected input ports (the unconnected port can never receive data and never gates firing)"},{"code":"CWF1006","severity":"warning","summary":"actor unreachable from any source actor (dead subgraph)"},{"code":"CWF1007","severity":"warning","summary":"workflow has no source actor (no external data can enter)"},{"code":"CWF1008","severity":"warning","summary":"workflow has no sink actor (no terminal output)"},{"code":"CWF1009","severity":"warning","summary":"workflow is empty"},{"code":"CWF2001","severity":"error","summary":"SDF inadmissible: data-dependent-rate (time/wave) window"},{"code":"CWF2002","severity":"error","summary":"SDF inadmissible: balance equations are inconsistent"},{"code":"CWF2003","severity":"error","summary":"SDF inadmissible: static schedule deadlocks (cycle without delay)"},{"code":"CWF2004","severity":"error","summary":"PN/DDF inadmissible: directed cycle without delay deadlocks blocking reads"},{"code":"CWF3001","severity":"warning","summary":"actor mixes wave-based and non-wave windows across its input ports"},{"code":"CWF3002","severity":"warning","summary":"wave window combined with group-by can strand waves split across groups"},{"code":"CWF3003","severity":"warning","summary":"wave window on a fan-in port synchronizes each channel independently"},{"code":"CWF3004","severity":"warning","summary":"time window with negative formation timeout may never close under the SCWF director"},{"code":"CWF3005","severity":"note","summary":"window step exceeds size: events in the gap silently expire"},{"code":"CWF4001","severity":"error","summary":"QBS basic quantum must be positive"},{"code":"CWF4002","severity":"error","summary":"designer priority outside [0, 39] breaks the QBS quantum formula"},{"code":"CWF4003","severity":"warning","summary":"designer priority names an actor absent from the workflow"},{"code":"CWF4004","severity":"error","summary":"QBS max banked epochs must be >= 1"},{"code":"CWF4005","severity":"error","summary":"RR slice must be positive"},{"code":"CWF4006","severity":"error","summary":"source interval must be non-negative"},{"code":"CWF4007","severity":"warning","summary":"EDF scheduling without any sink actor has no deadline-bearing output"},{"code":"CWF5001","severity":"note","summary":"source has no declared arrival rate; downstream rates degrade to [0, inf]/s"},{"code":"CWF5002","severity":"warning","summary":"PNCWF channel whose steady-state inflow can exceed the consumer's service rate (unbounded queue growth risk)"},{"code":"CWF5003","severity":"warning","summary":"SCWF workload overload-infeasible: total utilization exceeds the single scheduled executor"},{"code":"CWF5004","severity":"warning","summary":"SCWF actor whose lone utilization exceeds 1 (no policy can keep up)"},{"code":"CWF5005","severity":"note","summary":"wave window rate is data-dependent; capacity planning falls back to horizon bounds"},{"code":"CWF6001","severity":"error","summary":"capacity plan provably deadlocks: bounded-execution simulation reached a state where a cycle of blocked channels can never progress"},{"code":"CWF6002","severity":"error","summary":"channel capacity below the consumer's first-window demand: the producer blocks before a window can ever form"},{"code":"CWF6003","severity":"note","summary":"liveness unknown: bounded channel on an undirected cycle or with data-dependent window formation; blocking deployment may deadlock"},{"code":"CWF6004","severity":"note","summary":"capacity plan adjusted by deadlock-freedom synthesis: minimal capacity bumps restore provable liveness"},{"code":"CWF6005","severity":"error","summary":"artificial deadlock detected at runtime: the channel wait-for graph contains a cycle of blocked actors (watchdog report)"},{"code":"CWF7001","severity":"error","summary":"channel token-kind mismatch: producer emits scalar kinds the consuming port does not accept"},{"code":"CWF7002","severity":"error","summary":"record field type mismatch: a field's resolved type is incompatible with what the consuming port requires"},{"code":"CWF7003","severity":"error","summary":"required record field missing from the channel's resolved layout"},{"code":"CWF7004","severity":"error","summary":"record-vs-scalar shape mismatch: records into a scalar port, or scalars into a record-requiring port"},{"code":"CWF7005","severity":"error","summary":"nil (control) tokens may flow into a port that requires data"},{"code":"CWF7006","severity":"warning","summary":"producer schema undeclared but the consuming port is strict: the channel cannot be checked statically"},{"code":"CWF7007","severity":"warning","summary":"window group-by field absent from the channel's resolved record layout"},{"code":"CWF7008","severity":"error","summary":"runtime schema violation: a deposited token failed the channel's resolved schema (CWF_SCHEMA_CHECK report)"}])json";

TEST(DiagnosticCodesGoldenTest, JsonRegistryMatchesSnapshot) {
  EXPECT_EQ(DiagnosticCodesJson(), kGoldenCodesJson);
}

TEST(DiagnosticCodesGoldenTest, EveryRegisteredCodeAppearsInJson) {
  const std::string json = DiagnosticCodesJson();
  for (const auto& info : DiagnosticCodes()) {
    EXPECT_NE(json.find(std::string("\"") + info.code + "\""),
              std::string::npos)
        << info.code;
  }
}

}  // namespace
}  // namespace cwf::analysis

#include "analysis/analyzer.h"

#include <gtest/gtest.h>

#include "analysis/builtin_graphs.h"
#include "core/composite_actor.h"
#include "directors/ddf_director.h"
#include "test_actors.h"

namespace cwf::analysis {
namespace {

using analysis_test::Node;

/// outer: src -> comp -> sink, where comp's inner workflow is `inner_fn`'s
/// responsibility to populate (it must leave an actor named "entry" with a
/// free input and "exit" with a free output for the boundary relays).
template <typename InnerFn>
void BuildWithComposite(Workflow* wf, InnerFn inner_fn) {
  auto* src = wf->AddActor<Node>("src", 0, 1);
  auto* comp =
      wf->AddActor<CompositeActor>("comp", std::make_unique<DDFDirector>());
  auto* sink = wf->AddActor<Node>("sink", 1, 0);
  inner_fn(comp->inner());
  auto* entry = dynamic_cast<Node*>(comp->inner()->FindActor("entry"));
  auto* exit_actor = dynamic_cast<Node*>(comp->inner()->FindActor("exit"));
  InputPort* in = comp->ExposeInput("in", entry->in());
  OutputPort* out = comp->ExposeOutput("out", exit_actor->out());
  CWF_CHECK(wf->Connect(src->out(), in).ok());
  CWF_CHECK(wf->Connect(out, sink->in()).ok());
}

TEST(AnalyzerTest, RecursesIntoCompositesWithPrefixedLocations) {
  Workflow wf("outer");
  BuildWithComposite(&wf, [](Workflow* inner) {
    auto* entry = inner->AddActor<Node>("entry", 1, 1);
    auto* loop = inner->AddActor<Node>("loop", 1, 1);
    auto* exit_actor = inner->AddActor<Node>("exit", 1, 1);
    CWF_CHECK(inner->Connect(entry->out(), exit_actor->in()).ok());
    CWF_CHECK(inner->Connect(loop->out(), loop->in()).ok());
  });
  const Analyzer analyzer;
  const DiagnosticBag diags = analyzer.Analyze(wf);
  ASSERT_TRUE(diags.HasCode("CWF1003"));
  EXPECT_EQ(diags.WithCode("CWF1003")[0]->location, "outer/comp/loop");

  // Recursion can be turned off: the inner defect disappears.
  AnalysisOptions flat_only;
  flat_only.recurse_composites = false;
  EXPECT_FALSE(analyzer.Analyze(wf, flat_only).HasCode("CWF1003"));
}

TEST(AnalyzerTest, InnerDirectorKindDrivesInnerMocAnalysis) {
  // The inner workflow cycles; the composite's DDF director makes that a
  // CWF2004 error *inside* even though the outer target is SCWF.
  Workflow wf("outer");
  BuildWithComposite(&wf, [](Workflow* inner) {
    auto* entry = inner->AddActor<Node>("entry", 1, 1);
    auto* back = inner->AddActor<Node>("back", 1, 1);
    auto* exit_actor = inner->AddActor<Node>("exit", 2, 1);
    CWF_CHECK(inner->Connect(entry->out(), exit_actor->in(0)).ok());
    CWF_CHECK(inner->Connect(exit_actor->out(), back->in()).ok());
    CWF_CHECK(inner->Connect(back->out(), exit_actor->in(1)).ok());
  });
  AnalysisOptions options;
  options.target_director = "SCWF";  // outer SCWF would not flag cycles
  const DiagnosticBag diags = Analyzer().Analyze(wf, options);
  ASSERT_TRUE(diags.HasCode("CWF2004"));
  EXPECT_EQ(diags.WithCode("CWF2004")[0]->location.rfind("outer/comp/", 0),
            0u);
}

TEST(AnalyzerTest, Cwf1001CrossLevelNameShadowing) {
  Workflow wf("outer");
  BuildWithComposite(&wf, [](Workflow* inner) {
    // "src" shadows the outer source of the same name.
    auto* entry = inner->AddActor<Node>("entry", 1, 1);
    auto* shadow = inner->AddActor<Node>("src", 1, 1);
    auto* exit_actor = inner->AddActor<Node>("exit", 1, 1);
    CWF_CHECK(inner->Connect(entry->out(), shadow->in()).ok());
    CWF_CHECK(inner->Connect(shadow->out(), exit_actor->in()).ok());
  });
  const DiagnosticBag diags = Analyzer().Analyze(wf);
  ASSERT_TRUE(diags.HasCode("CWF1001"));
  const Diagnostic* d = diags.WithCode("CWF1001")[0];
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->location, "outer/comp/src");
}

TEST(AnalyzerTest, DistinctInnerNamesDoNotShadow) {
  Workflow wf("outer");
  BuildWithComposite(&wf, [](Workflow* inner) {
    auto* entry = inner->AddActor<Node>("entry", 1, 1);
    auto* exit_actor = inner->AddActor<Node>("exit", 1, 1);
    CWF_CHECK(inner->Connect(entry->out(), exit_actor->in()).ok());
  });
  EXPECT_FALSE(Analyzer().Analyze(wf).HasCode("CWF1001"));
}

TEST(AnalyzerTest, AddPassRunsAtEveryLevel) {
  class CountingPass : public AnalysisPass {
   public:
    explicit CountingPass(int* runs) : runs_(runs) {}
    const char* name() const override { return "counting"; }
    void Run(const Workflow&, const AnalysisOptions&,
             DiagnosticBag*) const override {
      ++*runs_;
    }

   private:
    int* runs_;
  };
  Workflow wf("outer");
  BuildWithComposite(&wf, [](Workflow* inner) {
    auto* entry = inner->AddActor<Node>("entry", 1, 1);
    auto* exit_actor = inner->AddActor<Node>("exit", 1, 1);
    CWF_CHECK(inner->Connect(entry->out(), exit_actor->in()).ok());
  });
  int runs = 0;
  Analyzer analyzer;
  analyzer.AddPass(std::make_unique<CountingPass>(&runs));
  analyzer.Analyze(wf);
  EXPECT_EQ(runs, 2);  // outer level + one composite level
}

TEST(AnalyzerTest, BuiltinGraphCatalogAnalyzesClean) {
  // The shipped example mirrors and both LRB builds must stay lint-clean:
  // this is what `cwf_analyze --strict` gates on in check.sh.
  const Analyzer analyzer;
  for (const BuiltinGraph& graph : BuildBuiltinGraphs()) {
    AnalysisOptions options;
    options.target_director = graph.director;
    options.scheduler = graph.scheduler;
    const DiagnosticBag diags = analyzer.Analyze(*graph.workflow, options);
    EXPECT_EQ(diags.ErrorCount(), 0u) << graph.name << ":\n" << diags.ToText();
    EXPECT_EQ(diags.WarningCount(), 0u)
        << graph.name << ":\n" << diags.ToText();
  }
}

TEST(AdmissionMatrixTest, TimeWindowGraphExcludesOnlySdf) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 0,
                                WindowSpec::Time(Seconds(60), Seconds(60)));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  const auto matrix = ComputeAdmissionMatrix(wf);
  ASSERT_EQ(matrix.size(), 4u);
  for (const DirectorAdmission& entry : matrix) {
    if (entry.director == "SDF") {
      EXPECT_FALSE(entry.admissible);
      EXPECT_NE(entry.reason.find("CWF2001"), std::string::npos);
    } else {
      EXPECT_TRUE(entry.admissible) << entry.director << ": " << entry.reason;
    }
  }
}

TEST(VerifyForDirectorTest, GatesInitializeAndHonorsOptOut) {
  Workflow wf("cyc");
  auto* a = wf.AddActor<Node>("a", 1, 1);
  auto* b = wf.AddActor<Node>("b", 1, 1);
  ASSERT_TRUE(wf.Connect(a->out(), b->in()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), a->in()).ok());

  const Status verdict = VerifyForDirector(wf, "DDF");
  EXPECT_EQ(verdict.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(verdict.message().find("CWF2004"), std::string::npos);

  VirtualClock clock;
  {
    DDFDirector gated;
    const Status init = gated.Initialize(&wf, &clock, nullptr);
    EXPECT_EQ(init.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(init.message().find("static analysis rejected"),
              std::string::npos);
  }
  {
    // Opt-out drops back to plain Validate(), which tolerates the ring
    // (deliberately inadmissible graphs are used by deadlock experiments).
    DDFDirector unguarded;
    unguarded.set_static_analysis_enabled(false);
    EXPECT_TRUE(unguarded.Initialize(&wf, &clock, nullptr).ok());
  }
}

TEST(DotHighlightTest, DiagnosticActorsCanBeFilled) {
  Workflow wf("w");
  auto* loop = wf.AddActor<Node>("loop", 1, 1);
  ASSERT_TRUE(wf.Connect(loop->out(), loop->in()).ok());
  const DiagnosticBag diags = Analyzer().Analyze(wf);
  Workflow::DotOptions options;
  for (const Diagnostic& d : diags.all()) {
    if (d.actor != nullptr && d.severity == Severity::kError) {
      options.node_fill[d.actor] = "red";
    }
  }
  const std::string dot = wf.ToDot(options);
  EXPECT_NE(dot.find("fillcolor=\"red\""), std::string::npos);
  EXPECT_EQ(wf.ToDot().find("fillcolor"), std::string::npos);
}

}  // namespace
}  // namespace cwf::analysis

// The schema/type-flow pass (analysis/schema_pass.h): forward propagation,
// per-channel compatibility checks (one CWF70xx trigger + one clean case
// per code), transfer-function inference, fan-in joins, and composite
// boundary propagation.

#include "analysis/schema_pass.h"

#include <gtest/gtest.h>

#include <string>

#include "actors/stream_ops.h"
#include "core/composite_actor.h"
#include "directors/ddf_director.h"
#include "test_actors.h"

namespace cwf::analysis {
namespace {

using analysis_test::Node;

const SchemaFinding* FindCode(const SchemaReport& report,
                              const std::string& code) {
  for (const SchemaFinding& f : report.findings) {
    if (f.code == code) {
      return &f;
    }
  }
  return nullptr;
}

SchemaReport Analyze(const Workflow& wf) {
  return AnalyzeSchemas(wf, AnalysisOptions{});
}

RecordSchema TimedSpeed() {
  RecordSchema s;
  s.Int("time").Double("speed");
  return s;
}

TEST(SchemaPassTest, CleanTypedChainResolvesAndReportsNothing) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  src->out()->set_schema(TokenType::Int());
  sink->in()->set_required_schema(TokenType::Int());
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  EXPECT_TRUE(report.findings.empty()) << report.ToText();
  ASSERT_EQ(report.channels.size(), 1u);
  EXPECT_EQ(report.channels[0].resolved, TokenType::Int());
  EXPECT_TRUE(report.channels[0].declared);
  EXPECT_FALSE(report.channels[0].mismatched);
  EXPECT_EQ(report.ErrorCount(), 0u);
}

TEST(SchemaPassTest, ScalarKindMismatchIsCWF7001) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  src->out()->set_schema(TokenType::Str());
  sink->in()->set_required_schema(TokenType::Int());
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  const SchemaFinding* f = FindCode(report, "CWF7001");
  ASSERT_NE(f, nullptr) << report.ToText();
  EXPECT_EQ(f->severity, Severity::kError);
  // The finding names the channel, both endpoints included.
  EXPECT_NE(f->message.find("src.out"), std::string::npos);
  EXPECT_NE(f->message.find("sink.in"), std::string::npos);
  ASSERT_EQ(report.channels.size(), 1u);
  EXPECT_TRUE(report.channels[0].mismatched);
}

TEST(SchemaPassTest, DisjointFieldTypeIsCWF7002Error) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  RecordSchema have;
  have.Str("speed");
  src->out()->set_schema(TokenType::Record(have));
  RecordSchema need;
  need.Double("speed");
  sink->in()->set_required_schema(TokenType::Record(need));
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  const SchemaFinding* f = FindCode(report, "CWF7002");
  ASSERT_NE(f, nullptr) << report.ToText();
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_NE(f->message.find("speed"), std::string::npos);
}

TEST(SchemaPassTest, OverlappingFieldTypeIsCWF7002Warning) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  RecordSchema have;
  have.Field("speed", ScalarType::Double().Union(ScalarType::Null()));
  src->out()->set_schema(TokenType::Record(have));
  RecordSchema need;
  need.Double("speed");
  sink->in()->set_required_schema(TokenType::Record(need));
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  const SchemaFinding* f = FindCode(report, "CWF7002");
  ASSERT_NE(f, nullptr) << report.ToText();
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(report.ErrorCount(), 0u);
}

TEST(SchemaPassTest, MissingRequiredFieldIsCWF7003) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  RecordSchema have;
  have.Int("time");
  src->out()->set_schema(TokenType::Record(have));
  sink->in()->set_required_schema(TokenType::Record(TimedSpeed()));
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  const SchemaFinding* f = FindCode(report, "CWF7003");
  ASSERT_NE(f, nullptr) << report.ToText();
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_NE(f->message.find("speed"), std::string::npos);
}

TEST(SchemaPassTest, OptionalFieldSatisfiesOptionalRequirementCleanly) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  RecordSchema have;
  have.Int("time").Field("speed", ScalarType::Double(), /*required=*/false);
  src->out()->set_schema(TokenType::Record(have));
  RecordSchema need;
  need.Int("time").Field("speed", ScalarType::Double(), /*required=*/false);
  sink->in()->set_required_schema(TokenType::Record(need));
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  EXPECT_TRUE(Analyze(wf).findings.empty());
}

TEST(SchemaPassTest, OptionalFieldIntoRequiredFieldIsCWF7003Warning) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  RecordSchema have;
  have.Int("time").Field("speed", ScalarType::Double(), /*required=*/false);
  src->out()->set_schema(TokenType::Record(have));
  sink->in()->set_required_schema(TokenType::Record(TimedSpeed()));
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  const SchemaFinding* f = FindCode(report, "CWF7003");
  ASSERT_NE(f, nullptr) << report.ToText();
  EXPECT_EQ(f->severity, Severity::kWarning);
}

TEST(SchemaPassTest, RecordIntoScalarPortIsCWF7004) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  src->out()->set_schema(TokenType::Record(TimedSpeed()));
  sink->in()->set_required_schema(TokenType::Int());
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  const SchemaFinding* f = FindCode(report, "CWF7004");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
}

TEST(SchemaPassTest, ScalarIntoRecordPortIsCWF7004) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  src->out()->set_schema(TokenType::Int());
  sink->in()->set_required_schema(TokenType::Record(TimedSpeed()));
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  const SchemaFinding* f = FindCode(report, "CWF7004");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
}

TEST(SchemaPassTest, NilIntoDataPortIsCWF7005) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  src->out()->set_schema(TokenType::Int().OrNil());
  sink->in()->set_required_schema(TokenType::Int());
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  const SchemaFinding* f = FindCode(report, "CWF7005");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
}

TEST(SchemaPassTest, NilTolerantPortAcceptsControlTokensCleanly) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  src->out()->set_schema(TokenType::Int().OrNil());
  sink->in()->set_required_schema(TokenType::Int().OrNil());
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  EXPECT_TRUE(Analyze(wf).findings.empty());
}

TEST(SchemaPassTest, UndeclaredProducerIntoStrictPortIsCWF7006) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  sink->in()->set_required_schema(TokenType::Int());
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  const SchemaFinding* f = FindCode(report, "CWF7006");
  ASSERT_NE(f, nullptr) << report.ToText();
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(report.ErrorCount(), 0u);
}

TEST(SchemaPassTest, FullyUndeclaredChannelReportsNothing) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  EXPECT_TRUE(report.findings.empty());
  ASSERT_EQ(report.channels.size(), 1u);
  EXPECT_TRUE(report.channels[0].resolved.is_unknown());
}

TEST(SchemaPassTest, GroupByFieldAbsentIsCWF7007) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 0,
                                WindowSpec::Tuples(2, 2).GroupBy({"key"}));
  RecordSchema have;
  have.Int("time");
  src->out()->set_schema(TokenType::Record(have));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  const SchemaReport report = Analyze(wf);
  const SchemaFinding* f = FindCode(report, "CWF7007");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_NE(f->message.find("key"), std::string::npos);
}

TEST(SchemaPassTest, GroupByFieldPresentIsClean) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* agg = wf.AddActor<Node>("agg", 1, 0,
                                WindowSpec::Tuples(2, 2).GroupBy({"key"}));
  RecordSchema have;
  have.Int("key").Int("time");
  src->out()->set_schema(TokenType::Record(have));
  ASSERT_TRUE(wf.Connect(src->out(), agg->in()).ok());
  EXPECT_TRUE(Analyze(wf).findings.empty());
}

TEST(SchemaPassTest, IdentityTransferInfersIntermediateChannel) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* throttle = wf.AddActor<ThrottleActor>("throttle", 1000);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  src->out()->set_schema(TokenType::Int());
  sink->in()->set_required_schema(TokenType::Int());
  ASSERT_TRUE(wf.Connect(src->out(), throttle->in()).ok());
  ASSERT_TRUE(wf.Connect(throttle->out(), sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  EXPECT_TRUE(report.findings.empty()) << report.ToText();
  ASSERT_EQ(report.channels.size(), 2u);
  // throttle.out was never declared but resolves through the identity
  // transfer function.
  const ChannelSchema& inferred = report.channels[1];
  EXPECT_EQ(inferred.resolved, TokenType::Int());
  EXPECT_FALSE(inferred.declared);
}

TEST(SchemaPassTest, MistypedSourceSurfacesThroughIdentityChain) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* throttle = wf.AddActor<ThrottleActor>("throttle", 1000);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  src->out()->set_schema(TokenType::Str());
  sink->in()->set_required_schema(TokenType::Int());
  ASSERT_TRUE(wf.Connect(src->out(), throttle->in()).ok());
  ASSERT_TRUE(wf.Connect(throttle->out(), sink->in()).ok());
  // The mismatch is attributed to the channel feeding the strict port, two
  // hops downstream of the bad declaration.
  const SchemaReport report = Analyze(wf);
  const SchemaFinding* f = FindCode(report, "CWF7001");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("throttle.out"), std::string::npos) << f->message;
}

TEST(SchemaPassTest, FanInChecksEachChannelAgainstTheSharedPort) {
  Workflow wf("w");
  auto* ints = wf.AddActor<Node>("ints", 0, 1);
  auto* strs = wf.AddActor<Node>("strs", 0, 1);
  auto* merge = wf.AddActor<UnionActor>("merge");
  ints->out()->set_schema(TokenType::Int());
  strs->out()->set_schema(TokenType::Str());
  merge->in()->set_required_schema(TokenType::Int());
  ASSERT_TRUE(wf.Connect(ints->out(), merge->in()).ok());
  ASSERT_TRUE(wf.Connect(strs->out(), merge->in()).ok());
  const SchemaReport report = Analyze(wf);
  // Only the string channel violates the shared port's requirement.
  const SchemaFinding* f = FindCode(report, "CWF7001");
  ASSERT_NE(f, nullptr) << report.ToText();
  EXPECT_NE(f->message.find("strs.out"), std::string::npos);
  ASSERT_EQ(report.findings.size(), 1u);
}

TEST(SchemaPassTest, FanInJoinFlowsThroughUnionTransfer) {
  Workflow wf("w");
  auto* left = wf.AddActor<Node>("left", 0, 1);
  auto* right = wf.AddActor<Node>("right", 0, 1);
  auto* merge = wf.AddActor<UnionActor>("merge");
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  RecordSchema ls;
  ls.Int("key").Int("x");
  RecordSchema rs;
  rs.Int("key").Str("y");
  left->out()->set_schema(TokenType::Record(ls));
  right->out()->set_schema(TokenType::Record(rs));
  RecordSchema need;
  need.Int("key");
  sink->in()->set_required_schema(TokenType::Record(need));
  ASSERT_TRUE(wf.Connect(left->out(), merge->in()).ok());
  ASSERT_TRUE(wf.Connect(right->out(), merge->in()).ok());
  ASSERT_TRUE(wf.Connect(merge->out(), sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  EXPECT_TRUE(report.findings.empty()) << report.ToText();
  // The union's output layout is the join: common "key" required, the
  // one-sided fields demoted to optional.
  const ChannelSchema& joined = report.channels.back();
  ASSERT_NE(joined.resolved.record_schema(), nullptr);
  const RecordSchema& layout = *joined.resolved.record_schema();
  ASSERT_NE(layout.Find("key"), nullptr);
  EXPECT_TRUE(layout.Find("key")->required);
  ASSERT_NE(layout.Find("x"), nullptr);
  EXPECT_FALSE(layout.Find("x")->required);
  ASSERT_NE(layout.Find("y"), nullptr);
  EXPECT_FALSE(layout.Find("y")->required);
}

TEST(SchemaPassTest, ExposeInputInheritsInnerRequirementAtTheBoundary) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* composite = wf.AddActor<CompositeActor>(
      "comp", std::make_unique<DDFDirector>());
  auto* inner = composite->inner()->AddActor<Node>("inner", 1, 0);
  inner->in()->set_required_schema(TokenType::Str());
  InputPort* boundary = composite->ExposeInput("in", inner->in());
  src->out()->set_schema(TokenType::Int());
  ASSERT_TRUE(wf.Connect(src->out(), boundary).ok());
  // The outer channel is checked against the requirement declared inside
  // the composite — no separate boundary declaration needed.
  const SchemaReport report = Analyze(wf);
  const SchemaFinding* f = FindCode(report, "CWF7001");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("comp.in"), std::string::npos);
}

TEST(SchemaPassTest, ExposeOutputPropagatesInnerDeclarationOutward) {
  Workflow wf("w");
  auto* composite = wf.AddActor<CompositeActor>(
      "comp", std::make_unique<DDFDirector>());
  auto* inner = composite->inner()->AddActor<Node>("inner", 0, 1);
  inner->out()->set_schema(TokenType::Record(TimedSpeed()));
  OutputPort* boundary = composite->ExposeOutput("out", inner->out());
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  sink->in()->set_required_schema(TokenType::Record(TimedSpeed()));
  ASSERT_TRUE(wf.Connect(boundary, sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  EXPECT_TRUE(report.findings.empty()) << report.ToText();
  ASSERT_EQ(report.channels.size(), 1u);
  ASSERT_NE(report.channels[0].resolved.record_schema(), nullptr);
  EXPECT_NE(report.channels[0].resolved.record_schema()->Find("speed"),
            nullptr);
}

TEST(SchemaPassTest, TypeFlowsThroughCompositeToInnerConsumer) {
  // Outer declaration -> composite boundary -> inner identity -> exposed
  // output: the resolved type crosses both boundary directions.
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* composite = wf.AddActor<CompositeActor>(
      "comp", std::make_unique<DDFDirector>());
  auto* pass = composite->inner()->AddActor<ThrottleActor>("pass", 100);
  InputPort* bin = composite->ExposeInput("in", pass->in());
  OutputPort* bout = composite->ExposeOutput("out", pass->out());
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  src->out()->set_schema(TokenType::Double());
  sink->in()->set_required_schema(TokenType::Double());
  ASSERT_TRUE(wf.Connect(src->out(), bin).ok());
  ASSERT_TRUE(wf.Connect(bout, sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  EXPECT_TRUE(report.findings.empty()) << report.ToText();
  EXPECT_EQ(report.channels.back().resolved, TokenType::Double());
}

TEST(SchemaPassTest, ResolveChannelTypesCoversEnforceableChannels) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* mid = wf.AddActor<Node>("mid", 1, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  src->out()->set_schema(TokenType::Int());
  sink->in()->set_required_schema(TokenType::Double());
  ASSERT_TRUE(wf.Connect(src->out(), mid->in()).ok());
  ASSERT_TRUE(wf.Connect(mid->out(), sink->in()).ok());
  const auto resolved = ResolveChannelTypes(wf);
  ASSERT_EQ(resolved.size(), 2u);
  const auto first = resolved.find({mid->in(), 0});
  ASSERT_NE(first, resolved.end());
  EXPECT_EQ(first->second.type, TokenType::Int());
  EXPECT_NE(first->second.channel_name.find("src.out"), std::string::npos);
  // mid's output is undeclared (Node has no transfer), so the consumer's
  // own requirement backs the runtime check.
  const auto second = resolved.find({sink->in(), 0});
  ASSERT_NE(second, resolved.end());
  EXPECT_EQ(second->second.type, TokenType::Double());
}

TEST(SchemaPassTest, PassFoldsFindingsIntoDiagnosticBag) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  src->out()->set_schema(TokenType::Str());
  sink->in()->set_required_schema(TokenType::Int());
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  DiagnosticBag diags;
  SchemaPass().Run(wf, AnalysisOptions{}, &diags);
  EXPECT_TRUE(diags.HasCode("CWF7001"));
  EXPECT_EQ(diags.ErrorCount(), 1u);
}

TEST(SchemaPassTest, ReportSerializesToTextAndJson) {
  Workflow wf("w");
  auto* src = wf.AddActor<Node>("src", 0, 1);
  auto* sink = wf.AddActor<Node>("sink", 1, 0);
  src->out()->set_schema(TokenType::Record(TimedSpeed()));
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  const SchemaReport report = Analyze(wf);
  const std::string text = report.ToText();
  EXPECT_NE(text.find("src.out"), std::string::npos);
  EXPECT_NE(text.find("speed"), std::string::npos);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"channels\""), std::string::npos);
  EXPECT_NE(json.find("\"type\""), std::string::npos);
}

}  // namespace
}  // namespace cwf::analysis

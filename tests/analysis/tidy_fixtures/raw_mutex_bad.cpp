// cwf_tidy fixture: every banned raw primitive must be reported by
// cwf-raw-mutex (this file lives under tests/, outside the scanned tree).
// Expected: nonzero exit, findings on the lines below.

#include <condition_variable>
#include <mutex>

namespace fixture {

struct Stragglers {
  std::mutex plain;                // finding
  std::recursive_mutex recursive;  // finding
  std::condition_variable cv;      // finding
  // Not a finding: the _any variant waits on OrderedMutex.
  // (Spelled in a comment so the clean-line assertion below stays honest:
  // std::condition_variable_any)
};

inline int Locked(Stragglers* s) {
  std::lock_guard<std::mutex> lock(s->plain);  // two findings on this line
  return 0;
}

// Suppression forms must silence the check:
inline void Exempt() {
  static std::mutex allowed_a;  // NOLINT(cwf-raw-mutex)
  // cwf-tidy-allow(cwf-raw-mutex): fixture exercising the allow directive
  static std::mutex allowed_b;
}

}  // namespace fixture

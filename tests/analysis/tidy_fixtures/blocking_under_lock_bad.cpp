// cwf_tidy fixture: blocking operations inside a critical section must be
// reported by cwf-blocking-under-lock. Expected: nonzero exit.

#include <chrono>
#include <thread>

#include "common/lock_registry.h"
#include "common/logging.h"

namespace fixture {

inline cwf::OrderedMutex& Mutex() {
  static cwf::OrderedMutex* mutex = new cwf::OrderedMutex("fixture::mutex");
  return *mutex;
}

inline void SleepUnderLock() {
  cwf::ScopedLock lock(Mutex());
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // finding
}

inline void LogUnderLock() {
  cwf::ScopedLock lock(Mutex());
  CWF_CLOG(kWarn, "fixture") << "logging inside a critical section";  // finding
}

inline void JoinUnderLock(std::thread* worker) {
  cwf::ScopedLock lock(Mutex());
  worker->join();  // finding
}

// Control: the same operations outside the guard's scope are clean.
inline void SleepOutsideLock() {
  {
    cwf::ScopedLock lock(Mutex());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace fixture

// cwf_tidy fixture: a Field("...") accessor whose literal matches no
// declared schema field — the typo class the static schema pass cannot see
// because the access never flows through a declared port. Expected: exit 1
// under --check cwf-stringly-field.

#include "core/schema.h"
#include "core/token.h"

namespace fixture {

inline cwf::RecordSchema ReportSchema() {
  cwf::RecordSchema s;
  s.Int("time").Double("speed");
  return s;
}

inline double Speed(const cwf::Token& token) {
  // Typo: the schema above declares "speed".
  return token.Field("speeed").AsDouble();
}

}  // namespace fixture

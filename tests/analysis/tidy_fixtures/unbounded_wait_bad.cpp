// cwf_tidy fixture: condition-variable waits without a predicate (or with a
// discarded timed-wait result) must be reported by cwf-unbounded-wait.
// Expected: nonzero exit under `--check cwf-unbounded-wait`.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lock_registry.h"

namespace fixture {

class UnboundedWait {
 public:
  void WaitForeverNoPredicate() {
    std::unique_lock<cwf::OrderedMutex> lock(mutex_);
    cv_.wait(lock);  // finding: no predicate, spurious wakeup hangs here
  }

  void DiscardedTimedWait() {
    std::unique_lock<cwf::OrderedMutex> lock(mutex_);
    cv_.wait_for(lock, std::chrono::milliseconds(5));  // finding: discarded
  }

  void DiscardedDeadlineWait() {
    std::unique_lock<cwf::OrderedMutex> lock(mutex_);
    cv_.wait_until(  // finding: discarded
        lock, std::chrono::steady_clock::now() + std::chrono::milliseconds(5));
  }

  // Control: the same calls with a predicate (or a consumed result) are
  // clean even in this fixture — the check targets the unbounded forms only.
  void PredicateWait() {
    std::unique_lock<cwf::OrderedMutex> lock(mutex_);
    cv_.wait(lock, [this] { return ready_; });
  }

  bool ConsumedTimedWait() {
    std::unique_lock<cwf::OrderedMutex> lock(mutex_);
    return cv_.wait_for(lock, std::chrono::milliseconds(5)) ==
           std::cv_status::no_timeout;
  }

  void Notify() {
    {
      std::unique_lock<cwf::OrderedMutex> lock(mutex_);
      ready_ = true;
    }
    cv_.notify_all();
  }

 private:
  cwf::OrderedMutex mutex_{"fixture::UnboundedWait::mutex"};
  std::condition_variable_any cv_;
  bool ready_ = false;
};

}  // namespace fixture

// cwf_tidy fixture: side effects inside CWF_ASSERT / CWF_DCHECK conditions
// must be reported by cwf-assert-side-effects. Expected: nonzero exit.

#include "common/check.h"

namespace fixture {

inline int Increment(int* v) { return ++*v; }

inline void Bad() {
  int n = 0;
  CWF_ASSERT(n++ < 3);                     // finding: increment
  CWF_DCHECK(n = 2);                       // finding: assignment
  CWF_CHECK_MSG(n += 1, "compound");       // finding: compound assignment
}

inline void Good() {
  int n = 1;
  CWF_ASSERT(n == 1);      // comparison, not assignment
  CWF_DCHECK(n <= 2);      // <= is not an assignment
  CWF_CHECK(n >= 0);       // >= is not an assignment
  CWF_ASSERT(n != 3);      // != is not an assignment
}

}  // namespace fixture

// cwf_tidy control fixture: idiomatic engine code — OrderedMutex,
// ScopedLock, comparisons in assertions, no blocking under locks — must
// produce zero findings for every check. Expected: exit 0.

#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/lock_registry.h"
#include "common/logging.h"

namespace fixture {

class Clean {
 public:
  void Add(int amount) {
    cwf::ScopedLock lock(mutex_);
    total_ += amount;
  }

  int total() const {
    cwf::ScopedLock lock(mutex_);
    return total_;
  }

  void Report() const {
    int snapshot = 0;
    {
      cwf::ScopedLock lock(mutex_);
      snapshot = total_;
    }
    // Blocking and logging happen after the guard's scope closed.
    CWF_CLOG(kDebug, "fixture") << "total " << snapshot;
    std::this_thread::sleep_for(std::chrono::milliseconds(0));
    CWF_ASSERT(snapshot >= 0);
  }

 private:
  mutable cwf::OrderedMutex mutex_{"fixture::Clean::mutex"};
  int total_ CWF_GUARDED_BY(mutex_) = 0;
};

}  // namespace fixture

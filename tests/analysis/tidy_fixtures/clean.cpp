// cwf_tidy control fixture: idiomatic engine code — OrderedMutex,
// ScopedLock, comparisons in assertions, no blocking under locks — must
// produce zero findings for every check. Expected: exit 0.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/lock_registry.h"
#include "common/logging.h"
#include "core/schema.h"
#include "core/token.h"

namespace fixture {

// Stringly field access paired with its schema declaration: the
// cwf-stringly-field check must stay silent.
inline cwf::RecordSchema ReportSchema() {
  cwf::RecordSchema s;
  s.Int("time").Double("speed");
  return s;
}

inline double Speed(const cwf::Token& token) {
  return token.Field("speed").AsDouble();
}

class Clean {
 public:
  void Add(int amount) {
    cwf::ScopedLock lock(mutex_);
    total_ += amount;
  }

  int total() const {
    cwf::ScopedLock lock(mutex_);
    return total_;
  }

  void Report() const {
    int snapshot = 0;
    {
      cwf::ScopedLock lock(mutex_);
      snapshot = total_;
    }
    // Blocking and logging happen after the guard's scope closed.
    CWF_CLOG(kDebug, "fixture") << "total " << snapshot;
    std::this_thread::sleep_for(std::chrono::milliseconds(0));
    CWF_ASSERT(snapshot >= 0);
  }

 private:
  mutable cwf::OrderedMutex mutex_{"fixture::Clean::mutex"};
  int total_ CWF_GUARDED_BY(mutex_) = 0;
};

// Condition-variable idioms cwf-unbounded-wait must accept: a predicate
// overload, a consumed timed-wait result, and a rationale-annotated wait.
class CleanWaiter {
 public:
  void WaitReady() {
    std::unique_lock<cwf::OrderedMutex> lock(mutex_);
    cv_.wait(lock, [this] { return ready_; });
  }

  bool WaitReadyFor(std::chrono::milliseconds budget) {
    std::unique_lock<cwf::OrderedMutex> lock(mutex_);
    return cv_.wait_for(lock, budget, [this] { return ready_; });
  }

  bool PollOnce(std::chrono::milliseconds budget) {
    std::unique_lock<cwf::OrderedMutex> lock(mutex_);
    const std::cv_status status = cv_.wait_for(lock, budget);
    return status == std::cv_status::no_timeout && ready_;
  }

  void WaitInRecheckLoop() {
    std::unique_lock<cwf::OrderedMutex> lock(mutex_);
    while (!ready_) {
      // cwf-tidy-allow(cwf-unbounded-wait): predicate is the enclosing while
      cv_.wait(lock);
    }
  }

  void SetReady() {
    {
      std::unique_lock<cwf::OrderedMutex> lock(mutex_);
      ready_ = true;
    }
    cv_.notify_all();
  }

 private:
  cwf::OrderedMutex mutex_{"fixture::CleanWaiter::mutex"};
  std::condition_variable_any cv_;
  bool ready_ = false;
};

}  // namespace fixture

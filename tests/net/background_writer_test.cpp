#include "net/background_writer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/lock_registry.h"

namespace cwf::net {
namespace {

TEST(BackgroundWriterTest, FlushDeliversEverythingAppended) {
  std::string captured;
  OrderedMutex mu{"test::bw_capture"};
  BackgroundWriter writer;
  ASSERT_TRUE(writer
                  .Start([&](const std::string& chunk) {
                    ScopedLock lock(mu);
                    captured += chunk;
                  })
                  .ok());
  for (int i = 0; i < 100; ++i) {
    writer.AppendLine("line " + std::to_string(i));
  }
  writer.Flush();
  {
    ScopedLock lock(mu);
    EXPECT_NE(captured.find("line 0\n"), std::string::npos);
    EXPECT_NE(captured.find("line 99\n"), std::string::npos);
  }
  writer.Stop();
  EXPECT_GT(writer.bytes_written(), 0u);
  EXPECT_EQ(writer.dropped_appends(), 0u);
}

TEST(BackgroundWriterTest, SinkNeverRunsConcurrentlyWithItself) {
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  BackgroundWriter writer;
  BackgroundWriter::Options options;
  options.flush_interval_ms = 1;
  options.flush_watermark = 16;
  ASSERT_TRUE(writer
                  .Start(
                      [&](const std::string&) {
                        if (inside.fetch_add(1) != 0) {
                          overlapped = true;
                        }
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(200));
                        inside.fetch_sub(1);
                      },
                      options)
                  .ok());
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&writer, t] {
      for (int i = 0; i < 200; ++i) {
        writer.AppendLine("t" + std::to_string(t) + " line " +
                          std::to_string(i));
      }
    });
  }
  for (auto& p : producers) {
    p.join();
  }
  writer.Stop();
  EXPECT_FALSE(overlapped.load());
}

TEST(BackgroundWriterTest, OverflowDropsAndCounts) {
  std::atomic<bool> block{true};
  BackgroundWriter writer;
  BackgroundWriter::Options options;
  options.buffer_limit = 64;
  options.flush_interval_ms = 1;
  ASSERT_TRUE(writer
                  .Start(
                      [&](const std::string&) {
                        while (block.load()) {
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(1));
                        }
                      },
                      options)
                  .ok());
  // Two buffer-fulls saturate both buffers while the sink is blocked.
  for (int i = 0; i < 64; ++i) {
    writer.Append(std::string(16, 'x'));
  }
  EXPECT_GT(writer.dropped_appends(), 0u);
  block = false;
  writer.Stop();
}

TEST(BackgroundWriterTest, StopFlushesRemainderAndIsIdempotent) {
  std::string captured;
  OrderedMutex mu{"test::bw_capture2"};
  BackgroundWriter writer;
  BackgroundWriter::Options options;
  options.flush_interval_ms = 10'000;  // only Stop() can flush this
  ASSERT_TRUE(writer
                  .Start(
                      [&](const std::string& chunk) {
                        ScopedLock lock(mu);
                        captured += chunk;
                      },
                      options)
                  .ok());
  writer.AppendLine("tail line");
  writer.Stop();
  writer.Stop();
  EXPECT_NE(captured.find("tail line\n"), std::string::npos);
  EXPECT_FALSE(writer.running());
  // Appends after Stop are dropped, not lost silently.
  writer.Append("after stop");
  EXPECT_GE(writer.dropped_appends(), 1u);
}

TEST(BackgroundWriterTest, ConcurrentStopsRunEpilogueOnce) {
  // Stop() racing Stop() (owner teardown vs destructor path) must not run
  // the drain epilogue twice: the sink would observe itself re-entered
  // and a buffer could be cleared under the other caller's write.
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  BackgroundWriter writer;
  BackgroundWriter::Options options;
  options.flush_interval_ms = 10'000;  // only Stop() flushes
  ASSERT_TRUE(writer
                  .Start(
                      [&](const std::string&) {
                        if (inside.fetch_add(1) != 0) {
                          overlapped = true;
                        }
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                        inside.fetch_sub(1);
                      },
                      options)
                  .ok());
  for (int i = 0; i < 32; ++i) {
    writer.AppendLine("line " + std::to_string(i));
  }
  std::vector<std::thread> stoppers;
  for (int t = 0; t < 4; ++t) {
    stoppers.emplace_back([&writer] { writer.Stop(); });
  }
  for (auto& s : stoppers) {
    s.join();
  }
  EXPECT_FALSE(overlapped.load());
  EXPECT_FALSE(writer.running());
  EXPECT_GT(writer.bytes_written(), 0u);
}

TEST(BackgroundWriterTest, FileSinkWritesLines) {
  const std::string path = ::testing::TempDir() + "/bw_test_access.log";
  std::remove(path.c_str());
  {
    BackgroundWriter writer;
    ASSERT_TRUE(writer.StartFile(path).ok());
    writer.AppendLine("event=accept fd=5");
    writer.AppendLine("event=close fd=5");
    writer.Stop();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "event=accept fd=5");
  EXPECT_EQ(lines[1], "event=close fd=5");
  std::remove(path.c_str());
}

TEST(BackgroundWriterTest, StartValidatesArguments) {
  BackgroundWriter writer;
  EXPECT_FALSE(writer.Start(nullptr).ok());
  BackgroundWriter::Options bad;
  bad.flush_interval_ms = 0;
  EXPECT_FALSE(writer.Start([](const std::string&) {}, bad).ok());
  ASSERT_TRUE(writer.Start([](const std::string&) {}).ok());
  EXPECT_FALSE(writer.Start([](const std::string&) {}).ok());  // double start
  writer.Stop();
}

}  // namespace
}  // namespace cwf::net

#include "net/frame.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace cwf::net {
namespace {

std::vector<Frame> DecodeAll(FrameDecoder& decoder, const std::string& bytes,
                             Status* status = nullptr) {
  std::vector<Frame> frames;
  const Status st = decoder.Feed(bytes.data(), bytes.size(),
                                 [&](Frame&& f) { frames.push_back(std::move(f)); });
  if (status != nullptr) {
    *status = st;
  } else {
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return frames;
}

// ---------------------------------------------------------------------------
// Golden vectors: the byte layout is a wire contract. If these break,
// deployed clients break.
// ---------------------------------------------------------------------------

TEST(FrameCodecTest, GoldenEncodeEmptyPayload) {
  const std::string bytes = EncodeFrame(0, "");
  ASSERT_EQ(bytes.size(), kFrameHeaderSize);
  const unsigned char expected[] = {0xCF, 0x01, 0x00, 0x00,
                                    0x00, 0x00, 0x00, 0x00};
  for (size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[i]), expected[i]) << "byte " << i;
  }
}

TEST(FrameCodecTest, GoldenEncodeChannelAndLengthBigEndian) {
  const std::string bytes = EncodeFrame(0x0102, "abc");
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + 3);
  const unsigned char expected[] = {0xCF, 0x01, 0x01, 0x02, 0x00, 0x00,
                                    0x00, 0x03, 'a',  'b',  'c'};
  for (size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[i]), expected[i]) << "byte " << i;
  }
}

TEST(FrameCodecTest, GoldenDecodeKnownBytes) {
  const std::string bytes{'\xCF', '\x01', '\x00', '\x07', '\x00',
                          '\x00', '\x00', '\x04', 'x',    '=',
                          'i',    ':'};
  FrameDecoder decoder;
  const auto frames = DecodeAll(decoder, bytes);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].version, kFrameVersion);
  EXPECT_EQ(frames[0].channel_id, 7u);
  EXPECT_EQ(frames[0].payload, "x=i:");
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameCodecTest, RoundTripManyFrames) {
  std::string wire;
  for (int i = 0; i < 50; ++i) {
    wire += EncodeFrame(static_cast<uint16_t>(i % 5),
                        "car=i:" + std::to_string(i) + ";speed=d:1.5");
  }
  FrameDecoder decoder;
  const auto frames = DecodeAll(decoder, wire);
  ASSERT_EQ(frames.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(frames[i].channel_id, static_cast<uint16_t>(i % 5));
    EXPECT_EQ(frames[i].payload,
              "car=i:" + std::to_string(i) + ";speed=d:1.5");
  }
  EXPECT_EQ(decoder.frames_decoded(), 50u);
}

TEST(FrameCodecTest, MaxPayloadRoundTrips) {
  const std::string payload(kMaxFramePayload, 'z');
  FrameDecoder decoder;
  const auto frames = DecodeAll(decoder, EncodeFrame(9, payload));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload.size(), kMaxFramePayload);
}

// ---------------------------------------------------------------------------
// Rejection: corrupt or hostile streams must poison the decoder, not
// resync or allocate unbounded memory.
// ---------------------------------------------------------------------------

TEST(FrameCodecTest, BadMagicRejected) {
  FrameDecoder decoder;
  Status st;
  const auto frames = DecodeAll(decoder, std::string(8, 'A'), &st);
  EXPECT_TRUE(frames.empty());
  EXPECT_FALSE(st.ok());
  // Poisoned: further feeds fail immediately.
  Status again;
  DecodeAll(decoder, EncodeFrame(1, "ok"), &again);
  EXPECT_FALSE(again.ok());
}

TEST(FrameCodecTest, BadVersionRejected) {
  std::string bytes = EncodeFrame(1, "ok");
  bytes[1] = '\x02';
  FrameDecoder decoder;
  Status st;
  DecodeAll(decoder, bytes, &st);
  EXPECT_FALSE(st.ok());
}

TEST(FrameCodecTest, OversizedLengthRejectedBeforePayloadArrives) {
  // Declared length 2^31: a hostile prefix must be rejected from the
  // header alone.
  const std::string header{'\xCF', '\x01', '\x00', '\x01',
                           '\x80', '\x00', '\x00', '\x00'};
  FrameDecoder decoder;
  Status st;
  DecodeAll(decoder, header, &st);
  EXPECT_FALSE(st.ok());
}

TEST(FrameCodecTest, TruncatedFrameReportsMidFrame) {
  const std::string bytes = EncodeFrame(3, "hello");
  FrameDecoder decoder;
  const auto frames =
      DecodeAll(decoder, bytes.substr(0, bytes.size() - 1));
  EXPECT_TRUE(frames.empty());
  EXPECT_TRUE(decoder.mid_frame());
  // The missing byte completes it.
  const auto rest = DecodeAll(decoder, bytes.substr(bytes.size() - 1));
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].payload, "hello");
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(FrameCodecTest, GarbageAfterValidFramePoisons) {
  std::string wire = EncodeFrame(1, "fine") + "garbage-not-a-frame";
  FrameDecoder decoder;
  Status st;
  const auto frames = DecodeAll(decoder, wire, &st);
  ASSERT_EQ(frames.size(), 1u);  // the valid frame surfaced first
  EXPECT_FALSE(st.ok());
}

// ---------------------------------------------------------------------------
// Randomized-split fuzz: any partition of the byte stream — down to one
// byte per feed — must reassemble the identical frame sequence.
// ---------------------------------------------------------------------------

TEST(FrameCodecTest, RandomizedSplitFuzzReassemblesExactly) {
  std::string wire;
  std::vector<std::string> payloads;
  for (int i = 0; i < 40; ++i) {
    payloads.push_back("seq=i:" + std::to_string(i) + ";pad=s:" +
                       std::string(static_cast<size_t>(i * 7 % 90), 'p'));
    wire += EncodeFrame(static_cast<uint16_t>(i % 3), payloads.back());
  }
  std::mt19937 rng(20260809);
  for (int round = 0; round < 30; ++round) {
    FrameDecoder decoder;
    std::vector<Frame> frames;
    size_t off = 0;
    while (off < wire.size()) {
      std::uniform_int_distribution<size_t> chunk(1, 13);
      const size_t n = std::min(chunk(rng), wire.size() - off);
      const Status st = decoder.Feed(
          wire.data() + off, n, [&](Frame&& f) { frames.push_back(std::move(f)); });
      ASSERT_TRUE(st.ok()) << st.ToString();
      off += n;
    }
    ASSERT_EQ(frames.size(), payloads.size());
    for (size_t i = 0; i < payloads.size(); ++i) {
      EXPECT_EQ(frames[i].payload, payloads[i]);
      EXPECT_EQ(frames[i].channel_id, static_cast<uint16_t>(i % 3));
    }
    EXPECT_FALSE(decoder.mid_frame());
  }
}

// ---------------------------------------------------------------------------
// LineDecoder: splits, CR stripping, and the EOF flush that fixes the
// silently-dropped final line.
// ---------------------------------------------------------------------------

TEST(LineDecoderTest, ByteByByteSplitsReassemble) {
  const std::string input = "first=i:1\r\nsecond=i:2\nthird=i:3\n";
  LineDecoder decoder;
  std::vector<std::string> lines;
  for (char c : input) {
    const Status st =
        decoder.Feed(&c, 1, [&](std::string_view l) { lines.emplace_back(l); });
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "first=i:1");
  EXPECT_EQ(lines[1], "second=i:2");
  EXPECT_EQ(lines[2], "third=i:3");
}

TEST(LineDecoderTest, FinishFlushesUnterminatedTail) {
  LineDecoder decoder;
  std::vector<std::string> lines;
  const auto sink = [&](std::string_view l) { lines.emplace_back(l); };
  const std::string input = "done=i:1\nlast=i:2";  // no trailing newline
  EXPECT_TRUE(decoder.Feed(input.data(), input.size(), sink).ok());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(decoder.pending_bytes(), 8u);
  decoder.Finish(sink);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "last=i:2");
  EXPECT_EQ(decoder.pending_bytes(), 0u);
  decoder.Finish(sink);  // idempotent
  EXPECT_EQ(lines.size(), 2u);
}

TEST(LineDecoderTest, EmptyLinesAndBareCrSkipped) {
  LineDecoder decoder;
  std::vector<std::string> lines;
  const auto sink = [&](std::string_view l) { lines.emplace_back(l); };
  const std::string input = "\n\r\na=i:1\n\r\n";
  EXPECT_TRUE(decoder.Feed(input.data(), input.size(), sink).ok());
  decoder.Finish(sink);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "a=i:1");
}

TEST(LineDecoderTest, OversizedLinePoisonsInsteadOfGrowing) {
  // A hostile client streaming newline-free bytes must hit the bound, not
  // grow the per-connection buffer until the server OOMs.
  LineDecoder decoder;
  std::vector<std::string> lines;
  const auto sink = [&](std::string_view l) { lines.emplace_back(l); };
  const std::string chunk(4096, 'x');
  Status st;
  size_t fed = 0;
  while (fed <= kMaxLineBytes + chunk.size()) {
    st = decoder.Feed(chunk.data(), chunk.size(), sink);
    fed += chunk.size();
    if (!st.ok()) {
      break;
    }
  }
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(lines.empty());
  EXPECT_EQ(decoder.pending_bytes(), 0u);  // buffer released, not retained
  // Poisoned: further feeds fail and the EOF flush emits nothing.
  EXPECT_FALSE(decoder.Feed("a=i:1\n", 6, sink).ok());
  decoder.Finish(sink);
  EXPECT_TRUE(lines.empty());
}

TEST(LineDecoderTest, MaxLengthLineStillDelivered) {
  // Exactly-at-bound content is legal: the bound gates the undecoded
  // tail, and a line completed by its newline is delivered whole.
  LineDecoder decoder;
  std::vector<std::string> lines;
  const auto sink = [&](std::string_view l) { lines.emplace_back(l); };
  const std::string body(kMaxLineBytes, 'y');
  ASSERT_TRUE(decoder.Feed(body.data(), body.size(), sink).ok());
  ASSERT_TRUE(decoder.Feed("\n", 1, sink).ok());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].size(), kMaxLineBytes);
}

}  // namespace
}  // namespace cwf::net

#include "net/ingest_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <thread>
#include <vector>

#include "core/clock.h"
#include "net/frame.h"
#include "stream/trace.h"

namespace cwf::net {
namespace {

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CWF_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  CWF_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
            0);
  return fd;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    CWF_CHECK(n > 0);
    sent += static_cast<size_t>(n);
  }
}

void WaitFor(const std::function<bool()>& cond, int timeout_ms = 5000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (cond()) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(IngestServerTest, LineProtocolAcrossShards) {
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  IngestServer::Options options;
  options.shards = 3;
  IngestServer server(&clock, options);
  server.AddChannel(0, channel, "feed");
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  std::vector<int> fds;
  for (int i = 0; i < 6; ++i) {
    fds.push_back(ConnectTo(server.port()));
  }
  WaitFor([&] { return server.connections_live() >= 6; });
  EXPECT_EQ(server.connections_accepted(), 6u);
  for (int i = 0; i < 6; ++i) {
    SendAll(fds[i], "client=i:" + std::to_string(i) + "\n");
  }
  WaitFor([&] { return server.tuples_received() >= 6; });
  EXPECT_EQ(server.tuples_received(), 6u);
  EXPECT_EQ(server.channel_tuples(0), 6u);
  for (int fd : fds) {
    ::close(fd);
  }
  WaitFor([&] { return server.connections_live() == 0; });
  EXPECT_EQ(server.connections_live(), 0);
  server.Stop();
  EXPECT_TRUE(channel->closed());
  EXPECT_EQ(channel->Pending(), 6u);
}

TEST(IngestServerTest, BinaryFramesRouteByChannelId) {
  auto alpha = std::make_shared<PushChannel>();
  auto beta = std::make_shared<PushChannel>();
  RealClock clock;
  IngestServer server(&clock);
  server.AddChannel(0, alpha, "alpha");
  server.AddChannel(7, beta, "beta");
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = ConnectTo(server.port());
  SendAll(fd, EncodeFrame(0, "a=i:1") + EncodeFrame(7, "b=i:2") +
                  EncodeFrame(7, "b=i:3"));
  WaitFor([&] { return server.tuples_received() >= 3; });
  ::close(fd);
  EXPECT_EQ(server.channel_tuples(0), 1u);
  EXPECT_EQ(server.channel_tuples(7), 2u);
  auto from_beta = beta->PopArrived(Timestamp::Max());
  ASSERT_EQ(from_beta.size(), 2u);
  EXPECT_EQ(from_beta[0].token.Field("b").AsInt(), 2);
  EXPECT_EQ(from_beta[1].token.Field("b").AsInt(), 3);
  server.Stop();
}

TEST(IngestServerTest, MixedProtocolsOnOnePort) {
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  IngestServer server(&clock);
  server.AddChannel(0, channel);
  ASSERT_TRUE(server.Start(0).ok());

  const int line_fd = ConnectTo(server.port());
  const int frame_fd = ConnectTo(server.port());
  SendAll(line_fd, "text=i:1\n");
  SendAll(frame_fd, EncodeFrame(0, "bin=i:2"));
  WaitFor([&] { return server.tuples_received() >= 2; });
  EXPECT_EQ(server.tuples_received(), 2u);
  ::close(line_fd);
  ::close(frame_fd);
  server.Stop();
}

TEST(IngestServerTest, ByteByByteDeliveryAndEofFlush) {
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  IngestServer server(&clock);
  server.AddChannel(0, channel);
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = ConnectTo(server.port());
  // One byte per write, and the final tuple has NO trailing newline: the
  // EOF flush must still deliver it (the old listener dropped it).
  const std::string wire = "first=i:1\nsecond=i:2";
  for (char c : wire) {
    SendAll(fd, std::string(1, c));
  }
  WaitFor([&] { return server.tuples_received() >= 1; });
  EXPECT_EQ(server.tuples_received(), 1u);  // unterminated tail still held
  ::close(fd);
  WaitFor([&] { return server.tuples_received() >= 2; });
  EXPECT_EQ(server.tuples_received(), 2u);
  auto batch = channel->PopArrived(Timestamp::Max());
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[1].token.Field("second").AsInt(), 2);
  server.Stop();
}

TEST(IngestServerTest, BackpressureZeroLossOnBoundedChannel) {
  auto channel = std::make_shared<PushChannel>();
  channel->SetCapacity(8);
  RealClock clock;
  IngestServer::Options options;
  options.shards = 2;
  options.staging_limit = 4;
  IngestServer server(&clock, options);
  server.AddChannel(0, channel);
  ASSERT_TRUE(server.Start(0).ok());

  constexpr int kTuples = 500;
  std::thread producer([&] {
    const int fd = ConnectTo(server.port());
    for (int i = 0; i < kTuples; ++i) {
      SendAll(fd, "seq=i:" + std::to_string(i) + "\n");
    }
    ::close(fd);
  });

  // Slow consumer: the 8-tuple bound forces the connection through
  // stage -> pause -> resume cycles while we drain.
  std::vector<TraceEntry> got;
  while (got.size() < kTuples) {
    auto batch = channel->PopArrived(Timestamp::Max(), 4);
    for (auto& e : batch) {
      got.push_back(std::move(e));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  producer.join();

  ASSERT_EQ(got.size(), static_cast<size_t>(kTuples));
  for (int i = 0; i < kTuples; ++i) {
    EXPECT_EQ(got[i].token.Field("seq").AsInt(), i) << "order broken at " << i;
  }
  EXPECT_EQ(server.tuples_received(), static_cast<uint64_t>(kTuples));
  EXPECT_GT(server.backpressure_pauses(), 0u);
  EXPECT_EQ(server.connections_paused(), 0);
  EXPECT_EQ(server.staged_dropped(), 0u);
  server.Stop();
}

TEST(IngestServerTest, PeerResetWhilePausedFinishesConnection) {
  auto channel = std::make_shared<PushChannel>();
  channel->SetCapacity(1);
  RealClock clock;
  IngestServer::Options options;
  options.shards = 1;
  options.staging_limit = 1;
  IngestServer server(&clock, options);
  server.AddChannel(0, channel);
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = ConnectTo(server.port());
  SendAll(fd, "a=i:1\nb=i:2\nc=i:3\n");  // capacity 1 + staging 1 => pause
  WaitFor([&] { return server.connections_paused() >= 1; });
  ASSERT_EQ(server.connections_paused(), 1);

  // Abort the client: SO_LINGER{1,0} turns close() into a RST. The paused
  // fd is registered with events=0, but epoll still reports the error
  // condition; the shard must consume it and finish the connection — a
  // paused connection that ignores EPOLLERR/EPOLLHUP leaves the
  // level-triggered loop spinning and the pause gauge stuck at 1.
  struct linger lg {};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);
  WaitFor([&] { return server.connections_paused() == 0; });
  EXPECT_EQ(server.connections_paused(), 0);
  server.Stop();
}

TEST(IngestServerTest, MaxConnectionsRejectsExtras) {
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  IngestServer::Options options;
  options.max_connections = 2;
  IngestServer server(&clock, options);
  server.AddChannel(0, channel);
  ASSERT_TRUE(server.Start(0).ok());

  const int a = ConnectTo(server.port());
  const int b = ConnectTo(server.port());
  WaitFor([&] { return server.connections_live() >= 2; });
  const int c = ConnectTo(server.port());
  WaitFor([&] { return server.connections_rejected() >= 1; });
  EXPECT_EQ(server.connections_rejected(), 1u);
  // The rejected socket reads EOF.
  char buf[8];
  EXPECT_EQ(::read(c, buf, sizeof(buf)), 0);
  ::close(a);
  ::close(b);
  ::close(c);
  server.Stop();
}

TEST(IngestServerTest, SchemaViolationsRejectedNotFatal) {
  auto channel = std::make_shared<PushChannel>();
  RecordSchema schema;
  schema.Int("car");
  channel->SetExpectedSchema(TokenType::Record(schema), "typed_feed");
  RealClock clock;
  IngestServer server(&clock);
  server.AddChannel(0, channel);
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = ConnectTo(server.port());
  SendAll(fd, "wrong=s:field\ncar=i:5\n");
  WaitFor([&] { return server.tuples_received() >= 1; });
  ::close(fd);
  EXPECT_EQ(server.schema_rejects(), 1u);
  EXPECT_EQ(server.tuples_received(), 1u);  // the server is still alive
  server.Stop();
}

TEST(IngestServerTest, FrameViolationDropsConnection) {
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  IngestServer server(&clock);
  server.AddChannel(0, channel);
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = ConnectTo(server.port());
  // Valid frame, then garbage where the next magic byte should be.
  SendAll(fd, EncodeFrame(0, "ok=i:1") + std::string(16, 'Z'));
  WaitFor([&] { return server.frame_errors() >= 1; });
  EXPECT_EQ(server.frame_errors(), 1u);
  EXPECT_EQ(server.tuples_received(), 1u);
  WaitFor([&] { return server.connections_live() == 0; });
  EXPECT_EQ(server.connections_live(), 0);
  ::close(fd);
  server.Stop();
}

TEST(IngestServerTest, OversizedLineDropsConnection) {
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  IngestServer server(&clock);
  server.AddChannel(0, channel);
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = ConnectTo(server.port());
  // A newline-free stream past kMaxLineBytes must poison the connection
  // instead of growing its buffer without bound.
  const std::string chunk(8192, 'x');
  size_t sent = 0;
  while (sent <= kMaxLineBytes + chunk.size()) {
    // MSG_NOSIGNAL: the server closes on us mid-stream by design, and a
    // late write must fail with EPIPE instead of raising SIGPIPE.
    const ssize_t n = ::send(fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      break;
    }
    sent += static_cast<size_t>(n);
  }
  WaitFor([&] { return server.frame_errors() >= 1; });
  EXPECT_GE(server.frame_errors(), 1u);
  EXPECT_EQ(server.tuples_received(), 0u);
  WaitFor([&] { return server.connections_live() == 0; });
  EXPECT_EQ(server.connections_live(), 0);
  ::close(fd);
  server.Stop();
}

TEST(IngestServerTest, RestartAfterStopServesAgain) {
  auto first = std::make_shared<PushChannel>();
  first->SetCapacity(2);  // small bound: arm the space-available callback
  RealClock clock;
  IngestServer::Options options;
  options.close_channels_on_stop = false;
  IngestServer server(&clock, options);
  server.AddChannel(0, first);
  ASSERT_TRUE(server.Start(0).ok());
  {
    const int fd = ConnectTo(server.port());
    SendAll(fd, "a=i:1\nb=i:2\nc=i:3\n");  // third tuple stages on the bound
    WaitFor([&] { return server.tuples_received() >= 2; });
    (void)first->PopArrived(Timestamp::Max());  // fires the space callback
    WaitFor([&] { return server.tuples_received() >= 3; });
    ::close(fd);
    WaitFor([&] { return server.connections_live() == 0; });
  }
  server.Stop();

  // The same server restarts cleanly (the first generation's callbacks
  // must not leave anything dangling over Start's shard teardown).
  ASSERT_TRUE(server.Start(0).ok());
  const int fd = ConnectTo(server.port());
  SendAll(fd, "d=i:4\n");
  WaitFor([&] { return server.tuples_received() >= 4; });
  EXPECT_EQ(server.tuples_received(), 4u);
  ::close(fd);
  server.Stop();
}

TEST(IngestServerTest, UnknownFrameChannelCountedAndDropped) {
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  IngestServer server(&clock);
  server.AddChannel(0, channel);
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = ConnectTo(server.port());
  SendAll(fd, EncodeFrame(42, "lost=i:1") + EncodeFrame(0, "kept=i:2"));
  WaitFor([&] { return server.tuples_received() >= 1; });
  EXPECT_EQ(server.unknown_channel_frames(), 1u);
  EXPECT_EQ(server.tuples_received(), 1u);
  ::close(fd);
  server.Stop();
}

TEST(IngestServerTest, AccessLogRecordsLifecycle) {
  const std::string path = ::testing::TempDir() + "/ingest_access_test.log";
  std::remove(path.c_str());
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  IngestServer::Options options;
  options.access_log_path = path;
  IngestServer server(&clock, options);
  server.AddChannel(0, channel);
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = ConnectTo(server.port());
  SendAll(fd, "x=i:1\n");
  WaitFor([&] { return server.tuples_received() >= 1; });
  ::close(fd);
  WaitFor([&] { return server.connections_live() == 0; });
  server.Stop();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("event=accept"), std::string::npos);
  EXPECT_NE(contents.find("event=close"), std::string::npos);
  std::remove(path.c_str());
}

TEST(IngestServerTest, StopIsIdempotentAndClosesChannels) {
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  IngestServer server(&clock);
  server.AddChannel(0, channel);
  ASSERT_TRUE(server.Start(0).ok());
  server.Stop();
  server.Stop();
  EXPECT_TRUE(channel->closed());
  EXPECT_FALSE(server.running());
}

TEST(IngestServerTest, StartRequiresChannels) {
  RealClock clock;
  IngestServer server(&clock);
  EXPECT_FALSE(server.Start(0).ok());
}

}  // namespace
}  // namespace cwf::net

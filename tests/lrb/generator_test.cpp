#include <gtest/gtest.h>

#include "lrb/generator.h"

namespace cwf::lrb {
namespace {

GeneratorOptions ShortRun() {
  GeneratorOptions o;
  o.duration = Seconds(120);
  return o;
}

TEST(GeneratorTest, DeterministicPerSeed) {
  Generator g1(ShortRun()), g2(ShortRun());
  Trace t1 = g1.Generate();
  Trace t2 = g2.Generate();
  ASSERT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); i += 97) {
    EXPECT_EQ(t1[i].arrival, t2[i].arrival);
    EXPECT_EQ(t1[i].token, t2[i].token);
  }
  GeneratorOptions other = ShortRun();
  other.seed = 43;
  Generator g3(other);
  EXPECT_NE(g3.Generate().size(), 0u);
}

TEST(GeneratorTest, TraceIsSortedByArrival) {
  Generator g(ShortRun());
  Trace t = g.Generate();
  for (size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t[i - 1].arrival, t[i].arrival);
  }
}

TEST(GeneratorTest, RateRampMatchesFigure5) {
  GeneratorOptions o;  // full 600 s
  Generator g(o);
  Trace t = g.Generate();
  // Target rate formula endpoints.
  EXPECT_NEAR(g.TargetRate(0), 20.0, 1e-9);
  EXPECT_NEAR(g.TargetRate(440), 20.0 + 0.32 * 440, 1e-9);
  EXPECT_NEAR(g.TargetRate(10000), 200.0, 1e-9);  // capped
  // Achieved rates track the ramp (reports/sec over 30 s spans).
  const double early =
      t.CountInRange(Timestamp::Seconds(60), Timestamp::Seconds(90)) / 30.0;
  const double late =
      t.CountInRange(Timestamp::Seconds(500), Timestamp::Seconds(530)) / 30.0;
  EXPECT_NEAR(early, g.TargetRate(75), g.TargetRate(75) * 0.35);
  EXPECT_NEAR(late, g.TargetRate(515), g.TargetRate(515) * 0.35);
  EXPECT_GT(late, early * 2);
}

TEST(GeneratorTest, ReportsAreValidPositionReports) {
  Generator g(ShortRun());
  Trace t = g.Generate();
  ASSERT_GT(t.size(), 100u);
  for (size_t i = 0; i < t.size(); i += 53) {
    const PositionReport r = PositionReport::FromToken(t[i].token);
    EXPECT_GE(r.seg, 0);
    EXPECT_LT(r.seg, kSegmentsPerXway);
    EXPECT_EQ(r.seg, r.pos / kFeetPerSegment);
    EXPECT_GE(r.speed, 0.0);
    EXPECT_LE(r.speed, 100.0);
    EXPECT_GE(r.lane, 1);
    EXPECT_LE(r.lane, 3);
    EXPECT_EQ(r.xway, 0);  // L = 0.5: one expressway
    EXPECT_EQ(r.dir, 0);   // one direction
  }
}

TEST(GeneratorTest, CarsReportEveryThirtySeconds) {
  Generator g(ShortRun());
  Trace t = g.Generate();
  // Pick one car and check its report spacing.
  const int64_t car = PositionReport::FromToken(t[0].token).car;
  std::vector<int64_t> times;
  for (size_t i = 0; i < t.size(); ++i) {
    const PositionReport r = PositionReport::FromToken(t[i].token);
    if (r.car == car) {
      times.push_back(r.time);
    }
  }
  ASSERT_GE(times.size(), 2u);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_EQ(times[i] - times[i - 1], kReportIntervalSeconds);
  }
}

TEST(GeneratorTest, AccidentsProduceStoppedPairs) {
  GeneratorOptions o;
  o.duration = Seconds(300);
  o.mean_accident_gap = 30.0;  // force several accidents
  Generator g(o);
  Trace t = g.Generate();
  ASSERT_GT(g.report().accidents_injected, 0u);
  // Find a position reported with speed 0 by two different cars.
  std::map<std::pair<int64_t, int64_t>, std::set<int64_t>> stopped_at;
  for (size_t i = 0; i < t.size(); ++i) {
    const PositionReport r = PositionReport::FromToken(t[i].token);
    if (r.speed == 0.0) {
      stopped_at[{r.pos, r.lane}].insert(r.car);
    }
  }
  bool pair_found = false;
  for (const auto& [pos, cars] : stopped_at) {
    if (cars.size() >= 2) {
      pair_found = true;
      break;
    }
  }
  EXPECT_TRUE(pair_found);
}

TEST(GeneratorTest, AccidentCarsEmitFourIdenticalReports) {
  GeneratorOptions o;
  o.duration = Seconds(300);
  o.mean_accident_gap = 30.0;
  Generator g(o);
  Trace t = g.Generate();
  // Group reports per car; look for >= kStoppedReportCount consecutive
  // identical positions.
  std::map<int64_t, std::vector<int64_t>> car_positions;
  for (size_t i = 0; i < t.size(); ++i) {
    const PositionReport r = PositionReport::FromToken(t[i].token);
    car_positions[r.car].push_back(r.pos);
  }
  bool found = false;
  for (const auto& [car, positions] : car_positions) {
    int run = 1;
    for (size_t i = 1; i < positions.size(); ++i) {
      run = positions[i] == positions[i - 1] ? run + 1 : 1;
      if (run >= kStoppedReportCount) {
        found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(TollFormulaTest, MatchesPaperSql) {
  // 2*(cars-50)^2 when lav<40, cars>50, no accident.
  EXPECT_DOUBLE_EQ(ComputeToll(39.0, 60, false), 2 * 10 * 10);
  EXPECT_DOUBLE_EQ(ComputeToll(40.0, 60, false), 0.0);  // lav not < 40
  EXPECT_DOUBLE_EQ(ComputeToll(39.0, 50, false), 0.0);  // cars not > 50
  EXPECT_DOUBLE_EQ(ComputeToll(39.0, 60, true), 0.0);   // accident waives
}

TEST(PositionReportTest, TokenRoundTrip) {
  PositionReport r{120, 77, 55.5, 0, 2, 0, 12, 12 * 5280 + 100};
  const PositionReport back = PositionReport::FromToken(r.ToToken());
  EXPECT_EQ(back.time, 120);
  EXPECT_EQ(back.car, 77);
  EXPECT_DOUBLE_EQ(back.speed, 55.5);
  EXPECT_EQ(back.seg, 12);
  EXPECT_EQ(back.pos, 12 * 5280 + 100);
  EXPECT_NE(r.ToString().find("car=77"), std::string::npos);
}

}  // namespace
}  // namespace cwf::lrb

#include <gtest/gtest.h>

#include "core/clock.h"
#include "core/receiver.h"
#include "lrb/metrics.h"

namespace cwf::lrb {
namespace {

TEST(ResponseTimeSeriesTest, BasicStats) {
  ResponseTimeSeries s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.OverallAvgSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(s.MaxSeconds(), 0.0);
  s.Record(Timestamp::Seconds(0), Timestamp::Seconds(1));    // 1 s
  s.Record(Timestamp::Seconds(1), Timestamp::Seconds(4));    // 3 s
  s.Record(Timestamp::Seconds(2), Timestamp::Seconds(4));    // 2 s
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.OverallAvgSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(s.MaxSeconds(), 3.0);
}

TEST(ResponseTimeSeriesTest, Percentiles) {
  ResponseTimeSeries s;
  for (int i = 1; i <= 100; ++i) {
    s.Record(Timestamp(0), Timestamp::Seconds(i));
  }
  EXPECT_NEAR(s.PercentileSeconds(0), 1.0, 1e-9);
  EXPECT_NEAR(s.PercentileSeconds(50), 50.0, 1.0);
  EXPECT_NEAR(s.PercentileSeconds(95), 95.0, 1.0);
  EXPECT_NEAR(s.PercentileSeconds(100), 100.0, 1e-9);
}

TEST(ResponseTimeSeriesTest, FractionUnderTarget) {
  ResponseTimeSeries s;
  EXPECT_DOUBLE_EQ(s.FractionUnder(Seconds(5)), 1.0);  // vacuously met
  s.Record(Timestamp(0), Timestamp::Seconds(1));
  s.Record(Timestamp(0), Timestamp::Seconds(4));
  s.Record(Timestamp(0), Timestamp::Seconds(9));
  EXPECT_NEAR(s.FractionUnder(Seconds(5)), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.FractionUnder(Seconds(100)), 1.0);
}

TEST(ResponseTimeSeriesTest, SeriesBucketsByCompletionTime) {
  ResponseTimeSeries s;
  // Two results completing in bucket [10,20), one in [30,40).
  s.Record(Timestamp::Seconds(9), Timestamp::Seconds(12));   // 3 s
  s.Record(Timestamp::Seconds(10), Timestamp::Seconds(15));  // 5 s
  s.Record(Timestamp::Seconds(30), Timestamp::Seconds(31));  // 1 s
  auto series = s.Series(Seconds(10));
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].t_seconds, 10.0);
  EXPECT_DOUBLE_EQ(series[0].avg_response_s, 4.0);
  EXPECT_DOUBLE_EQ(series[0].max_response_s, 5.0);
  EXPECT_EQ(series[0].n, 2u);
  EXPECT_DOUBLE_EQ(series[1].t_seconds, 30.0);
  EXPECT_EQ(series[1].n, 1u);
}

TEST(ResponseTimeSeriesTest, SeriesEdgeCases) {
  ResponseTimeSeries s;
  EXPECT_TRUE(s.Series(Seconds(10)).empty());
  s.Record(Timestamp(0), Timestamp::Seconds(1));
  EXPECT_TRUE(s.Series(0).empty());  // degenerate bucket
}

TEST(OutputActorTest, RecordsResponsePerEvent) {
  ResponseTimeSeries series;
  OutputActor out("TollNotification", &series);
  out.in()->SetReceiver(0, std::make_unique<QueueReceiver>(out.in()));
  ExecutionContext ctx;
  VirtualClock clock;
  ctx.clock = &clock;
  ASSERT_TRUE(out.Initialize(&ctx).ok());
  CWEvent e(Token(1), Timestamp::Seconds(2), WaveTag::Root(1));
  ASSERT_TRUE(out.in()->receiver(0)->Put(e).ok());
  clock.AdvanceTo(Timestamp::Seconds(5));
  out.BeginFiring();
  ASSERT_TRUE(out.Fire().ok());
  EXPECT_EQ(out.notifications(), 1u);
  ASSERT_EQ(series.count(), 1u);
  EXPECT_DOUBLE_EQ(series.OverallAvgSeconds(), 3.0);
}

}  // namespace
}  // namespace cwf::lrb

#include <gtest/gtest.h>

#include <cmath>

#include "lrb/harness.h"

namespace cwf::lrb {
namespace {

ExperimentOptions ShortExperiment(SchedulerKind kind) {
  ExperimentOptions opt;
  opt.scheduler = kind;
  opt.workload.duration = Seconds(120);
  return opt;
}

class HarnessPerScheduler : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(HarnessPerScheduler, RunsAndProducesTolls) {
  auto res = RunLRBExperiment(ShortExperiment(GetParam()));
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->status.ok());
  EXPECT_GT(res->reports_generated, 1000u);
  EXPECT_GT(res->toll_notifications, 100u);
  EXPECT_EQ(res->toll_notifications, res->tolls_calculated);
  EXPECT_FALSE(res->toll_curve.empty());
  EXPECT_GT(res->total_firings, 0u);
  // Low load: response times are comfortably sub-second.
  EXPECT_LT(res->toll_avg_response_s, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, HarnessPerScheduler,
    ::testing::Values(SchedulerKind::kQBS, SchedulerKind::kRR,
                      SchedulerKind::kRB, SchedulerKind::kFIFO,
                      SchedulerKind::kEDF, SchedulerKind::kPNCWF),
    [](const auto& info) { return SchedulerKindName(info.param); });

TEST(HarnessTest, DeterministicAcrossRuns) {
  auto r1 = RunLRBExperiment(ShortExperiment(SchedulerKind::kQBS));
  auto r2 = RunLRBExperiment(ShortExperiment(SchedulerKind::kQBS));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->toll_notifications, r2->toll_notifications);
  EXPECT_DOUBLE_EQ(r1->toll_avg_response_s, r2->toll_avg_response_s);
  EXPECT_EQ(r1->total_firings, r2->total_firings);
}

TEST(HarnessTest, SchedulerKindNames) {
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kQBS), "QBS");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kPNCWF), "PNCWF");
}

TEST(HarnessTest, ThrashTimeDetection) {
  ExperimentResult r;
  r.toll_curve = {{0, 0.1, 0.2, 10},  {10, 0.5, 0.9, 10}, {20, 2.5, 3.0, 10},
                  {30, 1.0, 1.5, 10}, {40, 2.5, 3.0, 10}, {50, 4.0, 5.0, 10}};
  // Sustained >= 2s only from t=40 (the t=20 spike recovers at t=30).
  EXPECT_DOUBLE_EQ(r.ThrashTimeSeconds(2.0), 40.0);
  EXPECT_TRUE(std::isinf(r.ThrashTimeSeconds(10.0)));
}

TEST(HarnessTest, RenderCurveFormatsRows) {
  ExperimentResult r;
  r.toll_curve = {{10, 0.5, 0.9, 3}};
  const std::string out = RenderCurve(r, "label");
  EXPECT_NE(out.find("# label"), std::string::npos);
  EXPECT_NE(out.find("10.0"), std::string::npos);
}

TEST(HarnessTest, MakeSchedulerMatchesKind) {
  ExperimentOptions opt;
  opt.scheduler = SchedulerKind::kRB;
  EXPECT_STREQ(MakeScheduler(opt)->name(), "RB");
  opt.scheduler = SchedulerKind::kPNCWF;
  EXPECT_EQ(MakeScheduler(opt), nullptr);
}

TEST(HarnessTest, AccidentPipelineDeliversNotifications) {
  // Longer run with frequent accidents so notifications materialize.
  ExperimentOptions opt = ShortExperiment(SchedulerKind::kFIFO);
  opt.workload.duration = Seconds(400);
  opt.workload.mean_accident_gap = 40.0;
  auto res = RunLRBExperiment(opt);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->accidents_injected, 0u);
  EXPECT_GT(res->accidents_recorded, 0u);
  EXPECT_GT(res->accident_notifications, 0u);
}

TEST(HarnessTest, FlatStructureMatchesHierarchicalResults) {
  ExperimentOptions h = ShortExperiment(SchedulerKind::kFIFO);
  ExperimentOptions f = ShortExperiment(SchedulerKind::kFIFO);
  f.hierarchical = false;
  // The flat workflow pays per-actor costs instead of the composite's; use
  // identical tolls as the invariant (results, not timing).
  auto rh = RunLRBExperiment(h);
  auto rf = RunLRBExperiment(f);
  ASSERT_TRUE(rh.ok());
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rh->tolls_calculated, rf->tolls_calculated);
  EXPECT_EQ(rh->accidents_recorded, rf->accidents_recorded);
}

}  // namespace
}  // namespace cwf::lrb

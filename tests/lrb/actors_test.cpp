#include <gtest/gtest.h>

#include "core/clock.h"
#include "core/receiver.h"
#include "lrb/actors.h"
#include "window/windowed_receiver.h"

namespace cwf::lrb {
namespace {

CWEvent ReportEv(const PositionReport& r, uint64_t seq) {
  CWEvent e;
  e.token = r.ToToken();
  e.timestamp = Timestamp::Seconds(static_cast<double>(r.time));
  e.wave = WaveTag::Root(seq);
  e.last_in_wave = true;
  e.seq = seq;
  return e;
}

PositionReport Report(int64_t time, int64_t car, double speed, int64_t seg,
                      int64_t pos, int64_t lane = 2) {
  PositionReport r;
  r.time = time;
  r.car = car;
  r.speed = speed;
  r.xway = 0;
  r.lane = lane;
  r.dir = 0;
  r.seg = seg;
  r.pos = pos;
  return r;
}

/// Drive a standalone actor: wire a windowed receiver per its input spec,
/// feed events, fire while ready, collect outputs.
std::vector<Token> Drive(Actor* actor, InputPort* in,
                         const std::vector<CWEvent>& events) {
  in->SetReceiver(0, std::make_unique<WindowedReceiver>(in, in->spec()));
  static ExecutionContext ctx;
  static VirtualClock clock;
  ctx.clock = &clock;
  CWF_CHECK(actor->Initialize(&ctx).ok());
  std::vector<Token> out;
  for (const CWEvent& e : events) {
    CWF_CHECK(in->receiver(0)->Put(e).ok());
    while (actor->Prefire().value()) {
      actor->BeginFiring();
      CWF_CHECK(actor->Fire().ok());
      for (auto& po : actor->TakePendingOutputs()) {
        out.push_back(std::move(po.token));
      }
    }
  }
  return out;
}

TEST(StoppedCarDetectorTest, DetectsFourIdenticalReports) {
  StoppedCarDetector det("d");
  std::vector<CWEvent> events;
  for (int k = 0; k < 4; ++k) {
    events.push_back(ReportEv(Report(k * 30, 7, 0, 10, 53000), k + 1));
  }
  auto out = Drive(&det, det.in(), events);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Field("car").AsInt(), 7);
  EXPECT_EQ(out[0].Field("time").AsInt(), 0);  // the FIRST of the four
}

TEST(StoppedCarDetectorTest, MovingCarNotDetected) {
  StoppedCarDetector det("d");
  std::vector<CWEvent> events;
  for (int k = 0; k < 6; ++k) {
    events.push_back(
        ReportEv(Report(k * 30, 7, 50, 10, 53000 + k * 100), k + 1));
  }
  EXPECT_TRUE(Drive(&det, det.in(), events).empty());
}

TEST(StoppedCarDetectorTest, ExitLaneIgnored) {
  StoppedCarDetector det("d");
  std::vector<CWEvent> events;
  for (int k = 0; k < 4; ++k) {
    events.push_back(
        ReportEv(Report(k * 30, 7, 0, 10, 53000, kExitLane), k + 1));
  }
  EXPECT_TRUE(Drive(&det, det.in(), events).empty());
}

TEST(StoppedCarDetectorTest, SlidingWindowKeepsDetectingWhileStopped) {
  StoppedCarDetector det("d");
  std::vector<CWEvent> events;
  for (int k = 0; k < 6; ++k) {
    events.push_back(ReportEv(Report(k * 30, 7, 0, 10, 53000), k + 1));
  }
  // Windows [0..3], [1..4], [2..5] all detect.
  EXPECT_EQ(Drive(&det, det.in(), events).size(), 3u);
}

TEST(StoppedCarDetectorTest, GroupByCarSeparatesVehicles) {
  StoppedCarDetector det("d");
  std::vector<CWEvent> events;
  // Interleave two cars, only car 1 is stopped.
  for (int k = 0; k < 4; ++k) {
    events.push_back(ReportEv(Report(k * 30, 1, 0, 10, 53000), 2 * k + 1));
    events.push_back(
        ReportEv(Report(k * 30 + 1, 2, 50, 10, 53000 + k * 200), 2 * k + 2));
  }
  auto out = Drive(&det, det.in(), events);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Field("car").AsInt(), 1);
}

TEST(AccidentDetectorTest, TwoCarsSamePositionIsAccident) {
  AccidentDetector det("a");
  std::vector<CWEvent> events;
  events.push_back(ReportEv(Report(90, 1, 0, 10, 53000), 1));
  events.push_back(ReportEv(Report(92, 2, 0, 10, 53000), 2));
  auto out = Drive(&det, det.in(), events);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Field("car1").AsInt(), 1);
  EXPECT_EQ(out[0].Field("car2").AsInt(), 2);
  EXPECT_EQ(out[0].Field("seg").AsInt(), 10);
  EXPECT_EQ(out[0].Field("time").AsInt(), 92);
}

TEST(AccidentDetectorTest, SameCarTwiceIsNotAccident) {
  AccidentDetector det("a");
  std::vector<CWEvent> events;
  events.push_back(ReportEv(Report(90, 1, 0, 10, 53000), 1));
  events.push_back(ReportEv(Report(120, 1, 0, 10, 53000), 2));
  EXPECT_TRUE(Drive(&det, det.in(), events).empty());
}

TEST(AccidentDetectorTest, DifferentPositionsDoNotCollide) {
  AccidentDetector det("a");
  std::vector<CWEvent> events;
  events.push_back(ReportEv(Report(90, 1, 0, 10, 53000), 1));
  events.push_back(ReportEv(Report(92, 2, 0, 10, 54000), 2));
  EXPECT_TRUE(Drive(&det, det.in(), events).empty());
}

class DbFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = CreateLRBDatabase().value();
    ctx_.clock = &clock_;
  }

  Status SeedAccident(int64_t seg, int64_t ts) {
    auto table = db_->GetTable(kTableAccidents).value();
    return table
        ->Insert({Value(int64_t{0}), Value(int64_t{0}), Value(seg),
                  Value(seg * 5280), Value(int64_t{1}), Value(int64_t{2}),
                  Value(ts)})
        .status();
  }

  std::shared_ptr<db::Database> db_;
  VirtualClock clock_;
  ExecutionContext ctx_;
};

TEST_F(DbFixture, AccidentInScopeDirectionality) {
  ASSERT_TRUE(SeedAccident(10, 100).ok());
  auto table = db_->GetTable(kTableAccidents).value();
  // dir 0 (increasing segs): accident must be in [seg, seg+4].
  EXPECT_TRUE(AccidentInScope(table, 0, 0, 8, 50).value());   // 10 in [8,12]
  EXPECT_TRUE(AccidentInScope(table, 0, 0, 10, 50).value());  // own segment
  EXPECT_FALSE(AccidentInScope(table, 0, 0, 11, 50).value()); // behind car
  EXPECT_FALSE(AccidentInScope(table, 0, 0, 5, 50).value());  // too far ahead
  // dir 1 (decreasing segs): accident must be in [seg-4, seg].
  EXPECT_FALSE(AccidentInScope(table, 0, 1, 8, 50).value());  // wrong dir row
}

TEST_F(DbFixture, AccidentInScopeRecencyFilter) {
  ASSERT_TRUE(SeedAccident(10, 100).ok());
  auto table = db_->GetTable(kTableAccidents).value();
  EXPECT_TRUE(AccidentInScope(table, 0, 0, 10, 100).value());
  EXPECT_FALSE(AccidentInScope(table, 0, 0, 10, 101).value());  // stale
}

TEST_F(DbFixture, InsertAccidentDedupsPairs) {
  InsertAccident ia("ia", db_.get());
  ia.in()->SetReceiver(
      0, std::make_unique<WindowedReceiver>(ia.in(), ia.in()->spec()));
  ASSERT_TRUE(ia.Initialize(&ctx_).ok());
  auto accident = [&](int64_t ts, uint64_t seq) {
    auto rec = std::make_shared<Record>();
    rec->Set("time", Value(ts));
    rec->Set("xway", Value(int64_t{0}));
    rec->Set("dir", Value(int64_t{0}));
    rec->Set("seg", Value(int64_t{10}));
    rec->Set("pos", Value(int64_t{53000}));
    rec->Set("car1", Value(int64_t{1}));
    rec->Set("car2", Value(int64_t{2}));
    CWEvent e;
    e.token = Token(RecordPtr(rec));
    e.timestamp = Timestamp::Seconds(static_cast<double>(ts));
    e.wave = WaveTag::Root(seq);
    e.seq = seq;
    return e;
  };
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ia.in()->receiver(0)->Put(accident(90 + i * 30, i + 1)).ok());
    ia.BeginFiring();
    ASSERT_TRUE(ia.Fire().ok());
  }
  EXPECT_EQ(ia.accidents_recorded(), 1u);  // one incident, refreshed twice
  auto table = db_->GetTable(kTableAccidents).value();
  EXPECT_EQ(table->RowCount(), 1u);
  // Timestamp was refreshed to the latest detection.
  auto row = table->SelectOne(db::True()).value();
  EXPECT_EQ((*row)[6].AsInt(), 150);
}

TEST_F(DbFixture, TollCalculatorFiresOnSegmentChange) {
  // Seed segment statistics: congested segment 11.
  auto stats = db_->GetTable(kTableSegmentStats).value();
  ASSERT_TRUE(stats
                  ->Insert({Value(int64_t{0}), Value(int64_t{0}),
                            Value(int64_t{11}), Value(30.0), Value(int64_t{80}),
                            Value(int64_t{1})})
                  .ok());
  TollCalculator tc("tc", db_.get());
  std::vector<CWEvent> events;
  events.push_back(ReportEv(Report(0, 5, 50, 10, 10 * 5280), 1));
  events.push_back(ReportEv(Report(30, 5, 50, 11, 11 * 5280), 2));
  auto out = Drive(&tc, tc.in(), events);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Field("car").AsInt(), 5);
  EXPECT_EQ(out[0].Field("seg").AsInt(), 11);
  EXPECT_DOUBLE_EQ(out[0].Field("toll").AsDouble(), 2 * 30 * 30);
}

TEST_F(DbFixture, TollZeroWithoutCongestion) {
  TollCalculator tc("tc", db_.get());
  std::vector<CWEvent> events;
  events.push_back(ReportEv(Report(0, 5, 50, 10, 10 * 5280), 1));
  events.push_back(ReportEv(Report(30, 5, 50, 11, 11 * 5280), 2));
  auto out = Drive(&tc, tc.in(), events);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].Field("toll").AsDouble(), 0.0);
}

TEST_F(DbFixture, TollWaivedNearAccident) {
  auto stats = db_->GetTable(kTableSegmentStats).value();
  ASSERT_TRUE(stats
                  ->Insert({Value(int64_t{0}), Value(int64_t{0}),
                            Value(int64_t{11}), Value(30.0), Value(int64_t{80}),
                            Value(int64_t{1})})
                  .ok());
  ASSERT_TRUE(SeedAccident(12, 25).ok());  // within [11, 15], fresh at t=30
  TollCalculator tc("tc", db_.get());
  std::vector<CWEvent> events;
  events.push_back(ReportEv(Report(0, 5, 50, 10, 10 * 5280), 1));
  events.push_back(ReportEv(Report(30, 5, 50, 11, 11 * 5280), 2));
  auto out = Drive(&tc, tc.in(), events);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].Field("toll").AsDouble(), 0.0);
}

TEST_F(DbFixture, TollNotCalculatedWithinSameSegment) {
  TollCalculator tc("tc", db_.get());
  std::vector<CWEvent> events;
  events.push_back(ReportEv(Report(0, 5, 50, 10, 10 * 5280), 1));
  events.push_back(ReportEv(Report(30, 5, 50, 10, 10 * 5280 + 500), 2));
  EXPECT_TRUE(Drive(&tc, tc.in(), events).empty());
  EXPECT_EQ(tc.tolls_calculated(), 0u);
}

TEST_F(DbFixture, AccidentNotifierEmitsForCarsInRange) {
  ASSERT_TRUE(SeedAccident(12, 95).ok());
  AccidentNotifier an("an", db_.get());
  std::vector<CWEvent> events;
  events.push_back(ReportEv(Report(100, 9, 50, 10, 10 * 5280), 1));   // in range
  events.push_back(ReportEv(Report(100, 10, 50, 3, 3 * 5280), 2));    // too far
  events.push_back(
      ReportEv(Report(100, 11, 50, 13, 13 * 5280), 3));  // behind accident
  auto out = Drive(&an, an.in(), events);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Field("car").AsInt(), 9);
}

TEST_F(DbFixture, AvgsvComputesPerCarSegmentAverage) {
  AvgsvActor avgsv("avgsv");
  std::vector<CWEvent> events;
  events.push_back(ReportEv(Report(10, 1, 40, 10, 53000), 1));
  events.push_back(ReportEv(Report(40, 1, 60, 10, 53100), 2));
  // Close the minute window with an event in the next minute.
  events.push_back(ReportEv(Report(70, 1, 99, 10, 53200), 3));
  auto out = Drive(&avgsv, avgsv.in(), events);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].Field("avg_speed").AsDouble(), 50.0);
  EXPECT_EQ(out[0].Field("car").AsInt(), 1);
  EXPECT_EQ(out[0].Field("minute").AsInt(), 0);
}

TEST_F(DbFixture, AvgsMaintainsLavOverFiveMinutes) {
  AvgsActor avgs("avgs", db_.get());
  avgs.in()->SetReceiver(
      0, std::make_unique<WindowedReceiver>(avgs.in(), avgs.in()->spec()));
  ASSERT_TRUE(avgs.Initialize(&ctx_).ok());
  auto minute_avg = [&](int64_t minute, double avg, uint64_t seq) {
    auto rec = std::make_shared<Record>();
    rec->Set("car", Value(int64_t{1}));
    rec->Set("xway", Value(int64_t{0}));
    rec->Set("dir", Value(int64_t{0}));
    rec->Set("seg", Value(int64_t{10}));
    rec->Set("minute", Value(minute));
    rec->Set("avg_speed", Value(avg));
    CWEvent e;
    e.token = Token(RecordPtr(rec));
    e.timestamp = Timestamp::Seconds(static_cast<double>(minute * 60 + 30));
    e.wave = WaveTag::Root(seq);
    e.seq = seq;
    return e;
  };
  std::vector<double> speeds = {50, 40, 30, 20, 10, 60};
  uint64_t seq = 0;
  for (int64_t m = 0; m < 6; ++m) {
    ASSERT_TRUE(
        avgs.in()->receiver(0)->Put(minute_avg(m, speeds[m], ++seq)).ok());
    while (avgs.Prefire().value()) {
      avgs.BeginFiring();
      ASSERT_TRUE(avgs.Fire().ok());
      avgs.TakePendingOutputs();
    }
  }
  // Force the last window out.
  avgs.in()->receiver(0)->Flush();
  while (avgs.Prefire().value()) {
    avgs.BeginFiring();
    ASSERT_TRUE(avgs.Fire().ok());
    avgs.TakePendingOutputs();
  }
  // LAV after minute 5 closes: avg of minutes 1..5 = (40+30+20+10+60)/5 = 32.
  auto stats = db_->GetTable(kTableSegmentStats).value();
  auto row = stats->SelectOne(db::Eq("seg", Value(int64_t{10}))).value();
  ASSERT_TRUE(row.has_value());
  EXPECT_NEAR((*row)[3].AsDouble(), 32.0, 1e-9);
}

TEST_F(DbFixture, CarCountsDistinctCarsPerMinute) {
  CarCountActor cars("cars", db_.get());
  std::vector<CWEvent> events;
  // Three reports, two distinct cars in minute 0.
  events.push_back(ReportEv(Report(5, 1, 50, 10, 53000), 1));
  events.push_back(ReportEv(Report(15, 2, 50, 10, 53100), 2));
  events.push_back(ReportEv(Report(35, 1, 50, 10, 53200), 3));
  events.push_back(ReportEv(Report(65, 3, 50, 10, 53300), 4));  // closes min 0
  auto out = Drive(&cars, cars.in(), events);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Field("cars").AsInt(), 2);
  auto stats = db_->GetTable(kTableSegmentStats).value();
  auto row = stats->SelectOne(db::Eq("seg", Value(int64_t{10}))).value();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[4].AsInt(), 2);
}

}  // namespace
}  // namespace cwf::lrb

#include <gtest/gtest.h>

#include "directors/scwf_director.h"
#include "lrb/generator.h"
#include "lrb/workflow_builder.h"
#include "stafilos/qbs_scheduler.h"

namespace cwf::lrb {
namespace {

TEST(LRBWorkflowTest, BuildsValidHierarchicalGraph) {
  auto feed = std::make_shared<PushChannel>();
  auto app = BuildLRBApplication(feed, /*hierarchical=*/true);
  ASSERT_TRUE(app.ok());
  Workflow* wf = app->workflow.get();
  EXPECT_TRUE(wf->Validate().ok());
  EXPECT_FALSE(wf->HasCycle());
  // Top level: Source, AccidentDetection (composite), InsertAccident,
  // AccidentNotification, AccidentNotificationOut, Avgsv, Avgs, cars,
  // TollCalculation, TollNotification.
  EXPECT_EQ(wf->actors().size(), 10u);
  EXPECT_NE(wf->FindActor("AccidentDetection"), nullptr);
  EXPECT_EQ(wf->FindActor("DetectStoppedCars"), nullptr);  // inside composite
  // Single source: the position-report feed.
  auto sources = wf->Sources();
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources[0], app->source);
}

TEST(LRBWorkflowTest, FlatVariantExposesDetectionActors) {
  auto feed = std::make_shared<PushChannel>();
  auto app = BuildLRBApplication(feed, /*hierarchical=*/false);
  ASSERT_TRUE(app.ok());
  EXPECT_NE(app->workflow->FindActor("DetectStoppedCars"), nullptr);
  EXPECT_NE(app->workflow->FindActor("DetectAccidents"), nullptr);
  EXPECT_EQ(app->workflow->FindActor("AccidentDetection"), nullptr);
  EXPECT_EQ(app->workflow->actors().size(), 11u);
}

TEST(LRBWorkflowTest, DatabaseHasBothRelations) {
  auto feed = std::make_shared<PushChannel>();
  auto app = BuildLRBApplication(feed);
  ASSERT_TRUE(app.ok());
  EXPECT_TRUE(app->database->GetTable(kTableSegmentStats).ok());
  EXPECT_TRUE(app->database->GetTable(kTableAccidents).ok());
  EXPECT_TRUE(app->database->GetTable(kTableSegmentAvgSpeed).ok());
}

TEST(LRBWorkflowTest, WindowSemanticsMatchAppendixA) {
  auto feed = std::make_shared<PushChannel>();
  auto app = BuildLRBApplication(feed, /*hierarchical=*/false);
  ASSERT_TRUE(app.ok());
  Workflow* wf = app->workflow.get();
  // Stopped cars: {Size: 4 tokens, Step: 1, Group-by: car}.
  const WindowSpec& stopped =
      wf->FindActor("DetectStoppedCars")->GetInputPort("in")->spec();
  EXPECT_EQ(stopped.unit, WindowUnit::kTuples);
  EXPECT_EQ(stopped.size, 4);
  EXPECT_EQ(stopped.step, 1);
  EXPECT_EQ(stopped.group_by, std::vector<std::string>{"car"});
  // Toll: {Size: 2 tokens, Step: 1, Group-by: car}.
  const WindowSpec& toll =
      wf->FindActor("TollCalculation")->GetInputPort("in")->spec();
  EXPECT_EQ(toll.size, 2);
  EXPECT_EQ(toll.step, 1);
  // Avgsv: {1 minute, 1 minute, group-by car/xway/dir/seg}.
  const WindowSpec& avgsv = wf->FindActor("Avgsv")->GetInputPort("in")->spec();
  EXPECT_EQ(avgsv.unit, WindowUnit::kTime);
  EXPECT_EQ(avgsv.size, Seconds(60));
  EXPECT_EQ(avgsv.step, Seconds(60));
  EXPECT_EQ(avgsv.group_by.size(), 4u);
  // cars: {1 minute, 1 minute, group-by xway/dir/seg}.
  const WindowSpec& cars = wf->FindActor("cars")->GetInputPort("in")->spec();
  EXPECT_EQ(cars.unit, WindowUnit::kTime);
  EXPECT_EQ(cars.group_by.size(), 3u);
}

TEST(LRBWorkflowTest, PrioritiesFollowTable3) {
  QBSScheduler sched;
  ApplyLRBPriorities(&sched);
  auto feed = std::make_shared<PushChannel>();
  auto app = BuildLRBApplication(feed);
  ASSERT_TRUE(app.ok());
  // Verified through the quantum formula: priority 5 actors receive
  // (40-5)*4b, priority 10 receive (40-10)*4b.
  EXPECT_DOUBLE_EQ(sched.QuantumFor(5), 35 * 4 * 500.0);
  EXPECT_DOUBLE_EQ(sched.QuantumFor(10), 30 * 4 * 500.0);
}

TEST(LRBWorkflowTest, EndToEndSmokeOnTinyWorkload) {
  GeneratorOptions gen_opt;
  gen_opt.duration = Seconds(90);
  Generator gen(gen_opt);
  Trace trace = gen.Generate();
  auto feed = std::make_shared<PushChannel>();
  feed->PushTrace(trace);
  feed->Close();
  auto app = BuildLRBApplication(feed);
  ASSERT_TRUE(app.ok());
  VirtualClock clock;
  CostModel cm;  // light defaults are fine for a smoke run
  SCWFDirector d(std::make_unique<QBSScheduler>());
  ASSERT_TRUE(d.Initialize(app->workflow.get(), &clock, &cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Seconds(120)).ok());
  EXPECT_GT(app->source->injected(), 0u);
  EXPECT_GT(app->toll_calculator->tolls_calculated(), 0u);
  EXPECT_GT(app->toll_series->count(), 0u);
}

}  // namespace
}  // namespace cwf::lrb
